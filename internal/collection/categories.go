package collection

import "fmt"

// Category is a coarse news desk category. Static user profiles in the
// paper express interest at exactly this granularity ("politics",
// "sports", "science" are the paper's own examples).
type Category uint8

// News categories. NumCategories bounds loops over the category space.
const (
	CatPolitics Category = iota
	CatSports
	CatBusiness
	CatScience
	CatHealth
	CatEntertainment
	CatWeather
	CatInternational
	CatTechnology
	CatCrime
	NumCategories int = iota
)

var categoryNames = [...]string{
	"politics", "sports", "business", "science", "health",
	"entertainment", "weather", "international", "technology", "crime",
}

// String returns the lower-case category name.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// ParseCategory maps a name back to its Category.
func ParseCategory(name string) (Category, error) {
	for i, n := range categoryNames {
		if n == name {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("collection: unknown category %q", name)
}

// AllCategories returns every category in declaration order.
func AllCategories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// ConceptVocabulary is the fixed high-level concept lexicon, modelled
// on the TRECVID/LSCOM-lite sets the paper's TRECVID discussion refers
// to. Detector simulations and topic definitions draw from this list.
var ConceptVocabulary = []Concept{
	"anchor_person", "studio_setting", "outdoor", "indoor", "crowd",
	"face", "person", "government_leader", "politician", "podium",
	"flag", "building", "cityscape", "road", "vehicle", "aircraft",
	"boat_ship", "military", "weapon", "explosion_fire", "natural_disaster",
	"sports_venue", "football_match", "athlete", "stadium", "scoreboard",
	"weather_map", "charts", "maps", "computer_screen", "animal",
	"vegetation", "sky", "snow", "waterscape", "mountain", "desert",
	"court_room", "hospital", "classroom", "press_conference",
	"demonstration_protest", "meeting", "interview_setting", "graphics_text",
}

// conceptIndex maps concepts to their vocabulary positions.
var conceptIndex = func() map[Concept]int {
	m := make(map[Concept]int, len(ConceptVocabulary))
	for i, c := range ConceptVocabulary {
		m[c] = i
	}
	return m
}()

// ConceptIndex returns the vocabulary position of c and whether c is a
// known concept.
func ConceptIndex(c Concept) (int, bool) {
	i, ok := conceptIndex[c]
	return i, ok
}

// categoryConcepts associates each category with the concepts that
// plausibly co-occur with its stories. The synthetic generator samples
// ground-truth shot concepts from these pools (plus the generic pool).
var categoryConcepts = map[Category][]Concept{
	CatPolitics:      {"government_leader", "politician", "podium", "flag", "press_conference", "meeting", "building"},
	CatSports:        {"sports_venue", "football_match", "athlete", "stadium", "scoreboard", "crowd"},
	CatBusiness:      {"charts", "building", "computer_screen", "meeting", "cityscape"},
	CatScience:       {"computer_screen", "charts", "classroom", "graphics_text", "sky"},
	CatHealth:        {"hospital", "person", "indoor", "interview_setting"},
	CatEntertainment: {"crowd", "face", "indoor", "person", "interview_setting"},
	CatWeather:       {"weather_map", "maps", "sky", "snow", "graphics_text"},
	CatInternational: {"flag", "cityscape", "military", "aircraft", "demonstration_protest", "road"},
	CatTechnology:    {"computer_screen", "graphics_text", "charts", "indoor"},
	CatCrime:         {"court_room", "weapon", "building", "person", "road"},
}

// genericConcepts occur across all categories.
var genericConcepts = []Concept{
	"anchor_person", "studio_setting", "face", "person", "outdoor", "indoor",
}

// CategoryConcepts returns the concept pool for a category: its
// specific concepts followed by the generic pool. The returned slice is
// fresh on every call.
func CategoryConcepts(c Category) []Concept {
	spec := categoryConcepts[c]
	out := make([]Concept, 0, len(spec)+len(genericConcepts))
	out = append(out, spec...)
	out = append(out, genericConcepts...)
	return out
}
