package collection

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// buildTiny constructs a two-video, three-story, five-shot collection
// used across the tests.
func buildTiny(t *testing.T) *Collection {
	t.Helper()
	c := New()
	mustAdd := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	mustAdd(c.AddVideo(&Video{ID: "v1", Title: "News Mon", Channel: "BBC1", Broadcast: time.Date(2007, 3, 5, 13, 0, 0, 0, time.UTC)}))
	mustAdd(c.AddVideo(&Video{ID: "v2", Title: "News Tue", Channel: "BBC1", Broadcast: time.Date(2007, 3, 6, 13, 0, 0, 0, time.UTC)}))
	mustAdd(c.AddStory(&Story{ID: "st1", VideoID: "v1", Index: 0, Title: "Budget vote", Category: CatPolitics, TopicID: 1}))
	mustAdd(c.AddStory(&Story{ID: "st2", VideoID: "v1", Index: 1, Title: "Cup final", Category: CatSports, TopicID: 2}))
	mustAdd(c.AddStory(&Story{ID: "st3", VideoID: "v2", Index: 0, Title: "Flu outbreak", Category: CatHealth, TopicID: 3}))
	addShot := func(id ShotID, vid VideoID, sid StoryID, idx int, start, dur time.Duration, txt string) {
		t.Helper()
		mustAdd(c.AddShot(&Shot{
			ID: id, VideoID: vid, StoryID: sid, Index: idx,
			Start: start, Duration: dur, Transcript: txt,
			Keyframes:    []Keyframe{{ShotID: id, Offset: dur / 2}},
			Concepts:     []ConceptScore{{Concept: "anchor_person", Confidence: 0.9}},
			TrueConcepts: []Concept{"anchor_person"},
		}))
	}
	addShot("sh1", "v1", "st1", 0, 0, 10*time.Second, "the chancellor announced the budget")
	addShot("sh2", "v1", "st1", 1, 10*time.Second, 12*time.Second, "opposition reaction to the vote")
	addShot("sh3", "v1", "st2", 2, 22*time.Second, 8*time.Second, "the cup final kicked off at wembley")
	addShot("sh4", "v2", "st3", 0, 0, 15*time.Second, "hospitals report rising flu cases")
	addShot("sh5", "v2", "st3", 1, 15*time.Second, 9*time.Second, "vaccination campaign begins")
	return c
}

func TestBuildAndLookup(t *testing.T) {
	c := buildTiny(t)
	if c.NumVideos() != 2 || c.NumStories() != 3 || c.NumShots() != 5 {
		t.Fatalf("sizes = %d/%d/%d, want 2/3/5", c.NumVideos(), c.NumStories(), c.NumShots())
	}
	if v := c.Video("v1"); v == nil || v.Title != "News Mon" {
		t.Errorf("Video(v1) = %+v", v)
	}
	if s := c.Story("st2"); s == nil || s.Category != CatSports {
		t.Errorf("Story(st2) = %+v", s)
	}
	if sh := c.Shot("sh4"); sh == nil || sh.StoryID != "st3" {
		t.Errorf("Shot(sh4) = %+v", sh)
	}
	if c.Video("nope") != nil || c.Story("nope") != nil || c.Shot("nope") != nil {
		t.Error("lookups of missing ids should return nil")
	}
	if st := c.StoryOfShot("sh3"); st == nil || st.ID != "st2" {
		t.Errorf("StoryOfShot(sh3) = %+v", st)
	}
	if c.StoryOfShot("nope") != nil {
		t.Error("StoryOfShot(missing) should be nil")
	}
}

func TestLinkMaintenance(t *testing.T) {
	c := buildTiny(t)
	v1 := c.Video("v1")
	if len(v1.Stories) != 2 || len(v1.Shots) != 3 {
		t.Errorf("v1 has %d stories, %d shots; want 2, 3", len(v1.Stories), len(v1.Shots))
	}
	st1 := c.Story("st1")
	if len(st1.Shots) != 2 {
		t.Errorf("st1 has %d shots, want 2", len(st1.Shots))
	}
}

func TestDuplicateAndMissingRefs(t *testing.T) {
	c := buildTiny(t)
	if err := c.AddVideo(&Video{ID: "v1"}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup video err = %v", err)
	}
	if err := c.AddStory(&Story{ID: "st1", VideoID: "v1"}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup story err = %v", err)
	}
	if err := c.AddStory(&Story{ID: "stX", VideoID: "vX"}); !errors.Is(err, ErrUnknownID) {
		t.Errorf("story missing video err = %v", err)
	}
	if err := c.AddShot(&Shot{ID: "sh1", VideoID: "v1", StoryID: "st1", Duration: time.Second}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("dup shot err = %v", err)
	}
	if err := c.AddShot(&Shot{ID: "shX", VideoID: "vX", StoryID: "st1", Duration: time.Second}); !errors.Is(err, ErrUnknownID) {
		t.Errorf("shot missing video err = %v", err)
	}
	if err := c.AddShot(&Shot{ID: "shX", VideoID: "v1", StoryID: "stX", Duration: time.Second}); !errors.Is(err, ErrUnknownID) {
		t.Errorf("shot missing story err = %v", err)
	}
	// Story belongs to v1; attaching its shot to v2 must fail.
	if err := c.AddShot(&Shot{ID: "shX", VideoID: "v2", StoryID: "st1", Duration: time.Second}); !errors.Is(err, ErrInvalid) {
		t.Errorf("cross-video shot err = %v", err)
	}
	if err := c.AddVideo(&Video{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty video id err = %v", err)
	}
	if err := c.AddShot(&Shot{ID: "shZ", VideoID: "v1", StoryID: "st1", Duration: 0}); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero duration err = %v", err)
	}
}

func TestIterationOrderDeterministic(t *testing.T) {
	c := buildTiny(t)
	var ids []ShotID
	c.Shots(func(s *Shot) bool {
		ids = append(ids, s.ID)
		return true
	})
	want := []ShotID{"sh1", "sh2", "sh3", "sh4", "sh5"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", ids, want)
		}
	}
	// Early stop.
	n := 0
	c.Shots(func(*Shot) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestIDSlicesAreCopies(t *testing.T) {
	c := buildTiny(t)
	ids := c.ShotIDs()
	ids[0] = "mutated"
	if c.ShotIDs()[0] != "sh1" {
		t.Error("ShotIDs returned aliased storage")
	}
}

func TestValidateClean(t *testing.T) {
	c := buildTiny(t)
	if err := c.Validate(); err != nil {
		t.Errorf("Validate on clean collection: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	c := buildTiny(t)
	// Corrupt: keyframe pointing elsewhere, bad confidence, overlap.
	sh := c.Shot("sh2")
	sh.Keyframes[0].ShotID = "other"
	sh.Concepts[0].Confidence = 1.5
	sh.Start = 5 * time.Second // overlaps sh1 (0-10s)
	err := c.Validate()
	if err == nil {
		t.Fatal("Validate should fail on corrupted collection")
	}
	msg := err.Error()
	for _, frag := range []string{"keyframe references", "confidence", "overlap"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("Validate error %q missing %q", msg, frag)
		}
	}
}

func TestValidateEmptyStory(t *testing.T) {
	c := New()
	if err := c.AddVideo(&Video{ID: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddStory(&Story{ID: "s", VideoID: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "no shots") {
		t.Errorf("Validate = %v, want no-shots error", err)
	}
}

func TestShotHelpers(t *testing.T) {
	c := buildTiny(t)
	sh := c.Shot("sh1")
	if sh.End() != 10*time.Second {
		t.Errorf("End = %v", sh.End())
	}
	if !sh.HasTrueConcept("anchor_person") || sh.HasTrueConcept("weapon") {
		t.Error("HasTrueConcept wrong")
	}
	if conf := sh.DetectorConfidence("anchor_person"); conf != 0.9 {
		t.Errorf("DetectorConfidence = %v", conf)
	}
	if conf := sh.DetectorConfidence("weapon"); conf != 0 {
		t.Errorf("DetectorConfidence(missing) = %v", conf)
	}
}

func TestComputeStats(t *testing.T) {
	c := buildTiny(t)
	st := c.ComputeStats()
	if st.Videos != 2 || st.Stories != 3 || st.Shots != 5 {
		t.Errorf("stats sizes wrong: %+v", st)
	}
	if st.ShotsPerCategory[CatPolitics] != 2 || st.ShotsPerCategory[CatHealth] != 2 || st.ShotsPerCategory[CatSports] != 1 {
		t.Errorf("per-category counts wrong: %v", st.ShotsPerCategory)
	}
	wantMean := (10.0 + 12 + 8 + 15 + 9) / 5
	if st.MeanShotSeconds != wantMean {
		t.Errorf("MeanShotSeconds = %v, want %v", st.MeanShotSeconds, wantMean)
	}
	if st.MeanTranscriptTerms <= 0 {
		t.Errorf("MeanTranscriptTerms = %v", st.MeanTranscriptTerms)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := New().ComputeStats()
	if st.MeanShotSeconds != 0 || st.Shots != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestCategories(t *testing.T) {
	if len(AllCategories()) != NumCategories {
		t.Fatal("AllCategories size mismatch")
	}
	for _, cat := range AllCategories() {
		name := cat.String()
		got, err := ParseCategory(name)
		if err != nil || got != cat {
			t.Errorf("round trip %v -> %q -> %v, err=%v", cat, name, got, err)
		}
	}
	if _, err := ParseCategory("astrology"); err == nil {
		t.Error("ParseCategory should reject unknown names")
	}
	if s := Category(200).String(); !strings.Contains(s, "200") {
		t.Errorf("out-of-range String = %q", s)
	}
}

func TestShotKindString(t *testing.T) {
	names := map[ShotKind]string{
		ShotAnchor: "anchor", ShotReport: "report", ShotInterview: "interview",
		ShotGraphics: "graphics", ShotWeather: "weather",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if s := ShotKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind String = %q", s)
	}
}

func TestConceptVocabulary(t *testing.T) {
	seen := map[Concept]bool{}
	for _, c := range ConceptVocabulary {
		if seen[c] {
			t.Errorf("duplicate concept %q", c)
		}
		seen[c] = true
		if i, ok := ConceptIndex(c); !ok || ConceptVocabulary[i] != c {
			t.Errorf("ConceptIndex(%q) broken", c)
		}
	}
	if _, ok := ConceptIndex("no_such_concept"); ok {
		t.Error("ConceptIndex should miss unknown concepts")
	}
}

func TestCategoryConceptsCoverAllCategories(t *testing.T) {
	for _, cat := range AllCategories() {
		pool := CategoryConcepts(cat)
		if len(pool) == 0 {
			t.Errorf("category %v has empty concept pool", cat)
		}
		for _, c := range pool {
			if _, ok := ConceptIndex(c); !ok {
				t.Errorf("category %v references unknown concept %q", cat, c)
			}
		}
	}
	// Returned slices must be independent.
	a := CategoryConcepts(CatSports)
	a[0] = "mutated"
	if CategoryConcepts(CatSports)[0] == "mutated" {
		t.Error("CategoryConcepts returned shared storage")
	}
}
