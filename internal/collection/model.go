// Package collection defines the news-video data model the rest of the
// system operates on: broadcast videos segmented into stories, stories
// into shots, shots carrying keyframes, ASR transcripts and (noisy)
// high-level concept annotations.
//
// The retrieval unit throughout the system is the Shot, matching the
// TRECVID evaluation convention the paper builds on; Story and Video
// provide the grouping and metadata layers the interfaces expose
// (result lists group shots by story, the TV interface browses at story
// granularity).
package collection

import (
	"fmt"
	"time"
)

// VideoID identifies a recorded broadcast (e.g. one One O'Clock News
// bulletin).
type VideoID string

// StoryID identifies a news story within a broadcast.
type StoryID string

// ShotID identifies a single shot, the retrieval unit.
type ShotID string

// Concept is a high-level semantic concept label in the style of the
// TRECVID/LSCOM vocabularies ("anchor_person", "sports_venue", ...).
type Concept string

// ShotKind describes the production role of a shot inside a news story.
type ShotKind uint8

// Shot kinds, in the order a typical story cycles through them.
const (
	ShotAnchor    ShotKind = iota // anchor person in studio
	ShotReport                    // field report footage
	ShotInterview                 // interview / talking head
	ShotGraphics                  // maps, charts, stills
	ShotWeather                   // weather segment footage
	numShotKinds
)

// String returns the lower-case name of the shot kind.
func (k ShotKind) String() string {
	switch k {
	case ShotAnchor:
		return "anchor"
	case ShotReport:
		return "report"
	case ShotInterview:
		return "interview"
	case ShotGraphics:
		return "graphics"
	case ShotWeather:
		return "weather"
	}
	return fmt.Sprintf("ShotKind(%d)", uint8(k))
}

// ConceptScore is a detector output: a concept with a confidence in
// [0,1]. Detector outputs are intentionally distinct from ground truth
// (Shot.TrueConcepts) so experiments can sweep detector quality.
type ConceptScore struct {
	Concept    Concept
	Confidence float64
}

// Keyframe is a representative still extracted from a shot. Interfaces
// display keyframes in result lists; clicking one is a core implicit
// indicator in the paper.
type Keyframe struct {
	ShotID ShotID
	// Offset is the keyframe's time offset from the shot start.
	Offset time.Duration
}

// Shot is the retrieval unit: a contiguous camera take with its ASR
// transcript and concept annotations.
type Shot struct {
	ID      ShotID
	VideoID VideoID
	StoryID StoryID
	// Index is the zero-based position of the shot within its video.
	Index int
	Kind  ShotKind
	// Start is the shot's offset from the beginning of the video.
	Start    time.Duration
	Duration time.Duration
	// Transcript is the ASR output for the shot: in synthetic
	// collections this is the ground-truth text passed through a
	// word-error channel.
	Transcript string
	// Keyframes extracted from the shot; never empty for a valid shot.
	Keyframes []Keyframe
	// Concepts are detector outputs (noisy).
	Concepts []ConceptScore
	// TrueConcepts is the ground-truth concept set. It exists only to
	// drive simulation and evaluation; retrieval code must not read it.
	TrueConcepts []Concept
}

// End returns the shot's end offset within its video.
func (s *Shot) End() time.Duration { return s.Start + s.Duration }

// HasTrueConcept reports whether c is in the shot's ground truth.
func (s *Shot) HasTrueConcept(c Concept) bool {
	for _, tc := range s.TrueConcepts {
		if tc == c {
			return true
		}
	}
	return false
}

// DetectorConfidence returns the detector confidence for c, or 0 if the
// detector did not fire for this shot.
func (s *Shot) DetectorConfidence(c Concept) float64 {
	for _, cs := range s.Concepts {
		if cs.Concept == c {
			return cs.Confidence
		}
	}
	return 0
}

// Story is an editorially coherent news item: a headline, a category,
// and a run of shots.
type Story struct {
	ID      StoryID
	VideoID VideoID
	// Index is the zero-based position of the story within its video.
	Index    int
	Title    string
	Category Category
	// TopicID links the story to the ground-truth topic that generated
	// it; used for qrels construction, never by retrieval code.
	TopicID int
	Shots   []ShotID
}

// Video is one recorded broadcast.
type Video struct {
	ID      VideoID
	Title   string
	Channel string
	// Broadcast is the air date/time.
	Broadcast time.Time
	Duration  time.Duration
	Stories   []StoryID
	Shots     []ShotID
}
