package collection

import (
	"errors"
	"fmt"
	"sort"
)

// Collection is an in-memory news-video archive with referential
// integrity between videos, stories and shots. It is the substrate the
// indexer, the interfaces and the simulator all read from.
//
// A Collection is built once (AddVideo/AddStory/AddShot or via the
// synth generator) and is read-only afterwards; reads are safe for
// concurrent use once building is complete.
type Collection struct {
	videos  map[VideoID]*Video
	stories map[StoryID]*Story
	shots   map[ShotID]*Shot

	// order preserves insertion order for deterministic iteration.
	videoOrder []VideoID
	storyOrder []StoryID
	shotOrder  []ShotID
}

// New returns an empty Collection ready for building.
func New() *Collection {
	return &Collection{
		videos:  make(map[VideoID]*Video),
		stories: make(map[StoryID]*Story),
		shots:   make(map[ShotID]*Shot),
	}
}

// Errors returned by the builder methods.
var (
	ErrDuplicateID = errors.New("collection: duplicate id")
	ErrUnknownID   = errors.New("collection: unknown id")
	ErrInvalid     = errors.New("collection: invalid record")
)

// AddVideo inserts a video shell. Stories and shots are attached later
// and must reference the video by ID.
func (c *Collection) AddVideo(v *Video) error {
	if v.ID == "" {
		return fmt.Errorf("%w: video with empty id", ErrInvalid)
	}
	if _, ok := c.videos[v.ID]; ok {
		return fmt.Errorf("%w: video %q", ErrDuplicateID, v.ID)
	}
	c.videos[v.ID] = v
	c.videoOrder = append(c.videoOrder, v.ID)
	return nil
}

// AddStory inserts a story and links it to its video.
func (c *Collection) AddStory(s *Story) error {
	if s.ID == "" {
		return fmt.Errorf("%w: story with empty id", ErrInvalid)
	}
	if _, ok := c.stories[s.ID]; ok {
		return fmt.Errorf("%w: story %q", ErrDuplicateID, s.ID)
	}
	v, ok := c.videos[s.VideoID]
	if !ok {
		return fmt.Errorf("%w: story %q references video %q", ErrUnknownID, s.ID, s.VideoID)
	}
	c.stories[s.ID] = s
	c.storyOrder = append(c.storyOrder, s.ID)
	v.Stories = append(v.Stories, s.ID)
	return nil
}

// AddShot inserts a shot and links it to its story and video.
func (c *Collection) AddShot(s *Shot) error {
	if s.ID == "" {
		return fmt.Errorf("%w: shot with empty id", ErrInvalid)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("%w: shot %q has non-positive duration", ErrInvalid, s.ID)
	}
	if _, ok := c.shots[s.ID]; ok {
		return fmt.Errorf("%w: shot %q", ErrDuplicateID, s.ID)
	}
	v, ok := c.videos[s.VideoID]
	if !ok {
		return fmt.Errorf("%w: shot %q references video %q", ErrUnknownID, s.ID, s.VideoID)
	}
	st, ok := c.stories[s.StoryID]
	if !ok {
		return fmt.Errorf("%w: shot %q references story %q", ErrUnknownID, s.ID, s.StoryID)
	}
	if st.VideoID != s.VideoID {
		return fmt.Errorf("%w: shot %q story %q belongs to video %q, not %q",
			ErrInvalid, s.ID, s.StoryID, st.VideoID, s.VideoID)
	}
	c.shots[s.ID] = s
	c.shotOrder = append(c.shotOrder, s.ID)
	v.Shots = append(v.Shots, s.ID)
	st.Shots = append(st.Shots, s.ID)
	return nil
}

// Video returns the video with the given ID, or nil.
func (c *Collection) Video(id VideoID) *Video { return c.videos[id] }

// Story returns the story with the given ID, or nil.
func (c *Collection) Story(id StoryID) *Story { return c.stories[id] }

// Shot returns the shot with the given ID, or nil.
func (c *Collection) Shot(id ShotID) *Shot { return c.shots[id] }

// StoryOfShot returns the story a shot belongs to, or nil.
func (c *Collection) StoryOfShot(id ShotID) *Story {
	s := c.shots[id]
	if s == nil {
		return nil
	}
	return c.stories[s.StoryID]
}

// NumVideos, NumStories and NumShots report collection sizes.
func (c *Collection) NumVideos() int  { return len(c.videos) }
func (c *Collection) NumStories() int { return len(c.stories) }
func (c *Collection) NumShots() int   { return len(c.shots) }

// Videos iterates videos in insertion order.
func (c *Collection) Videos(fn func(*Video) bool) {
	for _, id := range c.videoOrder {
		if !fn(c.videos[id]) {
			return
		}
	}
}

// Stories iterates stories in insertion order.
func (c *Collection) Stories(fn func(*Story) bool) {
	for _, id := range c.storyOrder {
		if !fn(c.stories[id]) {
			return
		}
	}
}

// Shots iterates shots in insertion order.
func (c *Collection) Shots(fn func(*Shot) bool) {
	for _, id := range c.shotOrder {
		if !fn(c.shots[id]) {
			return
		}
	}
}

// ShotIDs returns all shot IDs in insertion order (a fresh slice).
func (c *Collection) ShotIDs() []ShotID {
	out := make([]ShotID, len(c.shotOrder))
	copy(out, c.shotOrder)
	return out
}

// StoryIDs returns all story IDs in insertion order (a fresh slice).
func (c *Collection) StoryIDs() []StoryID {
	out := make([]StoryID, len(c.storyOrder))
	copy(out, c.storyOrder)
	return out
}

// VideoIDs returns all video IDs in insertion order (a fresh slice).
func (c *Collection) VideoIDs() []VideoID {
	out := make([]VideoID, len(c.videoOrder))
	copy(out, c.videoOrder)
	return out
}

// Stats summarises a collection.
type Stats struct {
	Videos, Stories, Shots int
	ShotsPerCategory       map[Category]int
	MeanShotSeconds        float64
	MeanTranscriptTerms    float64
}

// ComputeStats walks the collection once and returns summary statistics.
func (c *Collection) ComputeStats() Stats {
	st := Stats{
		Videos:           len(c.videos),
		Stories:          len(c.stories),
		Shots:            len(c.shots),
		ShotsPerCategory: make(map[Category]int),
	}
	var totalSec float64
	var totalTerms int
	for _, id := range c.shotOrder {
		s := c.shots[id]
		totalSec += s.Duration.Seconds()
		totalTerms += approxTermCount(s.Transcript)
		if story := c.stories[s.StoryID]; story != nil {
			st.ShotsPerCategory[story.Category]++
		}
	}
	if len(c.shots) > 0 {
		st.MeanShotSeconds = totalSec / float64(len(c.shots))
		st.MeanTranscriptTerms = float64(totalTerms) / float64(len(c.shots))
	}
	return st
}

// approxTermCount counts whitespace-separated fields without allocating.
func approxTermCount(s string) int {
	n := 0
	inField := false
	for i := 0; i < len(s); i++ {
		isSpace := s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r'
		if !isSpace && !inField {
			n++
		}
		inField = !isSpace
	}
	return n
}

// Validate checks full referential integrity: every cross-reference
// resolves, shot orderings are consistent, and every shot has at least
// one keyframe. It returns all problems found, joined.
func (c *Collection) Validate() error {
	var errs []error
	for _, id := range c.videoOrder {
		v := c.videos[id]
		for _, sid := range v.Stories {
			if st := c.stories[sid]; st == nil {
				errs = append(errs, fmt.Errorf("video %q lists missing story %q", id, sid))
			} else if st.VideoID != id {
				errs = append(errs, fmt.Errorf("video %q lists story %q owned by %q", id, sid, st.VideoID))
			}
		}
		for _, shid := range v.Shots {
			if sh := c.shots[shid]; sh == nil {
				errs = append(errs, fmt.Errorf("video %q lists missing shot %q", id, shid))
			}
		}
	}
	for _, id := range c.storyOrder {
		st := c.stories[id]
		if len(st.Shots) == 0 {
			errs = append(errs, fmt.Errorf("story %q has no shots", id))
		}
		for _, shid := range st.Shots {
			sh := c.shots[shid]
			if sh == nil {
				errs = append(errs, fmt.Errorf("story %q lists missing shot %q", id, shid))
				continue
			}
			if sh.StoryID != id {
				errs = append(errs, fmt.Errorf("story %q lists shot %q owned by %q", id, shid, sh.StoryID))
			}
		}
	}
	for _, id := range c.shotOrder {
		sh := c.shots[id]
		if len(sh.Keyframes) == 0 {
			errs = append(errs, fmt.Errorf("shot %q has no keyframes", id))
		}
		for _, kf := range sh.Keyframes {
			if kf.ShotID != id {
				errs = append(errs, fmt.Errorf("shot %q keyframe references %q", id, kf.ShotID))
			}
			if kf.Offset < 0 || kf.Offset > sh.Duration {
				errs = append(errs, fmt.Errorf("shot %q keyframe offset %v outside [0,%v]", id, kf.Offset, sh.Duration))
			}
		}
		for _, cs := range sh.Concepts {
			if cs.Confidence < 0 || cs.Confidence > 1 {
				errs = append(errs, fmt.Errorf("shot %q concept %q confidence %v outside [0,1]", id, cs.Concept, cs.Confidence))
			}
		}
	}
	// Shots within each video must be ordered by Index and have
	// non-overlapping, increasing time extents.
	for _, vid := range c.videoOrder {
		v := c.videos[vid]
		shots := make([]*Shot, 0, len(v.Shots))
		for _, shid := range v.Shots {
			if sh := c.shots[shid]; sh != nil {
				shots = append(shots, sh)
			}
		}
		sort.Slice(shots, func(i, j int) bool { return shots[i].Index < shots[j].Index })
		for i := 1; i < len(shots); i++ {
			if shots[i].Index == shots[i-1].Index {
				errs = append(errs, fmt.Errorf("video %q has duplicate shot index %d", vid, shots[i].Index))
			}
			if shots[i].Start < shots[i-1].End() {
				errs = append(errs, fmt.Errorf("video %q shots %q and %q overlap", vid, shots[i-1].ID, shots[i].ID))
			}
		}
	}
	return errors.Join(errs...)
}
