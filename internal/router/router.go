// Package router is the session-affine front tier: a thin HTTP proxy
// that spreads /api/v1 traffic over N ivrserve replicas sharing one
// session store and one segment tier.
//
// Affinity is rendezvous hashing (highest random weight) of the
// session ID over the healthy replicas: every request for a session
// lands on the same replica (so its RAM copy stays hot and its result
// cache keeps hitting), no table has to be kept, and when a replica
// dies only its sessions move — each to a deterministic next owner,
// which restores them from the shared session store on first touch.
// Requests without a session (create, shot metadata, listings) round-
// robin over the healthy replicas.
//
// A background probe loop polls each replica's /api/v1/healthz:
// FailThreshold consecutive probe failures take a replica out of
// rotation, a "draining" answer routes new work away while the
// replica flushes, and a later healthy probe brings it back. The
// proxy itself also reacts mid-request: a connection failure or a
// draining 503 re-routes the request to the session's next-best
// replica, so one kill -TERM loses zero queries.
//
// The router serves its own /api/v1/healthz (aggregated liveness),
// /api/v1/metrics (per-replica request/error/re-route counters plus
// each replica's last known health; ?format=prometheus for text
// exposition, also aliased at /metrics) and /api/v1/debug/traces (the
// ring of recent proxied-request traces), so dashboards see the whole
// front tier in one place.
//
// Every proxied request is traced: the router honours an inbound
// X-Request-Id (minting one otherwise), always asks the upstream
// replica for its span tree (X-IVR-Trace: 1) and grafts the echo under
// its own per-attempt "proxy" span — so one trace shows the router
// hop, each forward attempt, and the serve tier's internal stages. The
// assembled tree is echoed to the end client only when the client
// itself asked.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/trace"
)

// Defaults for Config knobs left zero.
const (
	DefaultProbeInterval = time.Second
	DefaultProbeTimeout  = 2 * time.Second
	DefaultFailThreshold = 3
	// DefaultSearchDeadline is the X-IVR-Deadline budget minted for
	// search requests that arrive without one: the whole-query wall
	// budget the lower tiers decrement and enforce.
	DefaultSearchDeadline = 10 * time.Second
	// maxBufferedBody bounds how much request body the proxy buffers
	// for replay on re-route (event batches are small; this is generous).
	maxBufferedBody = 8 << 20
)

// Config parameterises a Router.
type Config struct {
	// Replicas are the ivrserve base URLs ("http://host:port"). At
	// least one is required.
	Replicas []string
	// ProbeInterval is the health poll cadence (0 = 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0 = 2s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures take a
	// replica out of rotation (0 = 3). One mid-request connection
	// failure takes it out immediately regardless.
	FailThreshold int
	// Client overrides the proxy/probe HTTP client (tests).
	Client *http.Client
	// Logger receives re-route and health-transition logs (nil = discard).
	Logger *slog.Logger
	// SlowQuery logs any proxied request at least this slow as a
	// structured slow-query line with its full span tree (0 disables).
	SlowQuery time.Duration
	// TraceRing bounds the ring of recent traces served at
	// /api/v1/debug/traces (0 = the trace package default).
	TraceRing int
	// SearchDeadline is the X-IVR-Deadline budget minted for
	// /api/v1/search* requests that arrive without one (0 = 10s,
	// negative = mint nothing). Inbound budgets from SDK clients are
	// honoured as-is — decremented across the router hop, never raised.
	SearchDeadline time.Duration
	// Clock drives deadline-budget expiry (tests; nil = real time).
	Clock overload.Clock
}

// replica is one backend and its routing state.
type replica struct {
	name string // base URL, no trailing slash
	host string

	healthy  atomic.Bool
	draining atomic.Bool
	// probeFails is touched only by the probe loop.
	probeFails int

	requests atomic.Int64
	errors   atomic.Int64
	rerouted atomic.Int64
}

// Router is the front-tier proxy. Safe for concurrent use. Close
// stops the probe loop.
type Router struct {
	replicas []*replica
	client   *http.Client
	log      *slog.Logger
	cfg      Config
	tracer   *trace.Collector
	start    time.Time

	rr atomic.Uint64 // round-robin cursor for session-less requests

	// deadlines counts requests the router itself answered
	// deadline_exceeded (budget spent before or between forwards).
	deadlines atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
	probeWG   sync.WaitGroup
}

// New builds a router and starts its health probe loop. All replicas
// start healthy (optimistic: the first probe round corrects this
// within ProbeInterval, and a mid-request failure corrects it
// immediately).
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas")
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailThreshold == 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.ProbeInterval < 0 || cfg.ProbeTimeout < 0 || cfg.FailThreshold < 0 {
		return nil, fmt.Errorf("router: negative config value")
	}
	switch {
	case cfg.SearchDeadline == 0:
		cfg.SearchDeadline = DefaultSearchDeadline
	case cfg.SearchDeadline < 0:
		cfg.SearchDeadline = 0 // minting disabled; inbound budgets still enforced
	}
	rt := &Router{client: cfg.Client, log: cfg.Logger, cfg: cfg, closed: make(chan struct{}), start: time.Now()}
	rt.tracer = trace.NewCollector(trace.CollectorConfig{
		Tier:          trace.TierRouter,
		RingSize:      cfg.TraceRing,
		SlowThreshold: cfg.SlowQuery,
	})
	if rt.client == nil {
		// Every timeout is bounded explicitly: dials and header waits
		// cannot hang forever on a wedged replica. There is deliberately
		// no whole-request Timeout — NDJSON search streams may legally
		// outlive any fixed cap, and per-request deadline budgets (plus
		// the client's own context) bound the slow cases.
		rt.client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConnsPerHost:   32,
			IdleConnTimeout:       90 * time.Second,
		}}
	}
	if rt.log == nil {
		rt.log = slog.New(slog.DiscardHandler)
	}
	seen := map[string]bool{}
	for _, raw := range cfg.Replicas {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: invalid replica URL %q", raw)
		}
		name := strings.TrimSuffix(raw, "/")
		if seen[name] {
			return nil, fmt.Errorf("router: duplicate replica %q", name)
		}
		seen[name] = true
		rep := &replica{name: name, host: u.Host}
		rep.healthy.Store(true)
		rt.replicas = append(rt.replicas, rep)
	}
	rt.probeWG.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the probe loop. Idempotent.
func (rt *Router) Close() error {
	rt.closeOnce.Do(func() { close(rt.closed) })
	rt.probeWG.Wait()
	return nil
}

// rendezvousOrder ranks every replica for a session, best first:
// highest FNV-1a(sessionID, replicaName) wins. Deterministic for a
// given replica set, so every router instance and every request agree
// on the owner — and on the successor when the owner is down.
func (rt *Router) rendezvousOrder(sessionID string) []*replica {
	type scored struct {
		rep   *replica
		score uint64
	}
	ranked := make([]scored, len(rt.replicas))
	for i, rep := range rt.replicas {
		h := fnv.New64a()
		_, _ = io.WriteString(h, sessionID)
		_, _ = h.Write([]byte{0})
		_, _ = io.WriteString(h, rep.name)
		ranked[i] = scored{rep, h.Sum64()}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		return ranked[a].rep.name < ranked[b].rep.name
	})
	out := make([]*replica, len(ranked))
	for i, s := range ranked {
		out[i] = s.rep
	}
	return out
}

// Owner reports which replica base URL a session routes to right now
// (ops introspection and tests).
func (rt *Router) Owner(sessionID string) string {
	for _, rep := range rt.rendezvousOrder(sessionID) {
		if rep.healthy.Load() && !rep.draining.Load() {
			return rep.name
		}
	}
	return ""
}

// roundRobinOrder ranks replicas for session-less requests: a moving
// start over the replica list, each followed by the rest as failover
// candidates.
func (rt *Router) roundRobinOrder() []*replica {
	n := len(rt.replicas)
	start := int(rt.rr.Add(1)-1) % n
	out := make([]*replica, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rt.replicas[(start+i)%n])
	}
	return out
}

// sessionID extracts the session a request is about ("" when none):
// the ?session= query parameter (search), the /api/v1/sessions/{id}
// path (state, delete), or the session_id field of a buffered JSON
// body (event batches).
func sessionID(r *http.Request, body []byte) string {
	if sid := r.URL.Query().Get("session"); sid != "" {
		return sid
	}
	// Cut from the escaped path so a %2F inside the ID is not mistaken
	// for a path separator (the replica's mux makes the same call).
	if rest, ok := strings.CutPrefix(r.URL.EscapedPath(), "/api/v1/sessions/"); ok && rest != "" && !strings.Contains(rest, "/") {
		if sid, err := url.PathUnescape(rest); err == nil {
			return sid
		}
		return rest
	}
	if len(body) > 0 && strings.HasPrefix(r.URL.Path, "/api/v1/events") {
		var peek struct {
			SessionID string `json:"session_id"`
		}
		if err := json.Unmarshal(body, &peek); err == nil {
			return peek.SessionID
		}
	}
	return ""
}

// hopHeaders are not forwarded between hops.
var hopHeaders = []string{"Connection", "Keep-Alive", "Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade"}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}

// ServeHTTP routes one request: the router's own endpoints first,
// everything else proxied with session affinity and failover.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/api/v1/healthz":
		rt.serveHealthz(w)
		return
	case r.Method == http.MethodGet && r.URL.Path == "/api/v1/metrics":
		if r.URL.Query().Get("format") == "prometheus" {
			rt.servePrometheus(w)
			return
		}
		rt.serveMetrics(w)
		return
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		rt.servePrometheus(w)
		return
	case r.Method == http.MethodGet && r.URL.Path == "/api/v1/debug/traces":
		rt.serveTraces(w)
		return
	}
	rt.proxy(w, r)
}

// proxy forwards a request down its candidate list until a replica
// answers (or answers with anything but "I'm draining/unreachable").
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxBufferedBody+1))
		r.Body.Close()
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid_request", "read body: %v", err)
			return
		}
		if len(body) > maxBufferedBody {
			writeError(w, http.StatusRequestEntityTooLarge, "invalid_request", "body over %d bytes", maxBufferedBody)
			return
		}
	}

	// Correlation: honour the client's request ID or mint one; the
	// forwarded request carries it (copyHeaders), so serve and segment
	// stamp their spans with the same ID. The client's echo request
	// (X-IVR-Trace: 1) is remembered here — the router ALWAYS asks the
	// upstream for its tree, but re-echoes the assembled tree to the
	// end client only when asked.
	reqID := r.Header.Get(trace.RequestIDHeader)
	if reqID == "" {
		reqID = trace.NewID()
		r.Header.Set(trace.RequestIDHeader, reqID)
	}
	w.Header().Set(trace.RequestIDHeader, reqID)
	echoClient := r.Header.Get(trace.Header) == trace.RequestEcho
	tr, root := trace.New(reqID, trace.TierRouter, r.Method+" "+r.URL.Path)
	ctx := trace.NewContext(r.Context(), tr, root)
	defer rt.tracer.Finish(tr)

	// Deadline budget: honour an inbound X-IVR-Deadline (the SDK's),
	// minting the configured default for search requests that arrive
	// without one. The budget is bound into the request context here and
	// re-encoded per forward attempt with the elapsed time subtracted —
	// so a re-routed request carries only what is left of the original
	// budget, and lower tiers never see it grow.
	budget, derr := overload.ParseDeadline(r.Header.Get(overload.DeadlineHeader))
	if derr != nil {
		if errors.Is(derr, overload.ErrDeadlineExpired) {
			rt.deadlines.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", "deadline budget spent before arrival")
		} else {
			writeError(w, http.StatusBadRequest, "invalid_request", "bad %s header: %v", overload.DeadlineHeader, derr)
		}
		return
	}
	if budget == 0 && rt.cfg.SearchDeadline > 0 && strings.HasPrefix(r.URL.Path, "/api/v1/search") {
		budget = rt.cfg.SearchDeadline
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = overload.WithBudget(ctx, budget, rt.cfg.Clock)
		defer cancel()
	}
	r = r.WithContext(ctx)

	sid := sessionID(r, body)
	var candidates []*replica
	if sid != "" {
		candidates = rt.rendezvousOrder(sid)
	} else {
		candidates = rt.roundRobinOrder()
	}

	// Try healthy, non-draining replicas first (in affinity order),
	// then — only if every replica looked bad — the rest anyway,
	// rather than failing the query without asking anyone. Each
	// replica is tried at most once per request.
	good := make([]bool, len(candidates))
	for i, rep := range candidates {
		good[i] = rep.healthy.Load() && !rep.draining.Load()
	}
	order := make([]*replica, 0, len(candidates))
	for i, rep := range candidates {
		if good[i] {
			order = append(order, rep)
		}
	}
	for i, rep := range candidates {
		if !good[i] {
			order = append(order, rep)
		}
	}

	for i, rep := range order {
		done, retriable := rt.forward(ctx, w, r, rep, body, i > 0, echoClient)
		if done || !retriable {
			return
		}
	}
	writeError(w, http.StatusBadGateway, "no_replica", "no replica available for %s %s", r.Method, r.URL.Path)
}

// forward sends the request to one replica and relays the answer.
// done=true means a response went out; retriable=true means nothing
// was written and the next candidate should be tried.
func (rt *Router) forward(ctx context.Context, w http.ResponseWriter, r *http.Request, rep *replica, body []byte, isReroute, echoClient bool) (done, retriable bool) {
	rep.requests.Add(1)
	if isReroute {
		rep.rerouted.Add(1)
	}
	// One "proxy" span per forward attempt: a re-routed request shows
	// every replica it tried, each attempt carrying the upstream's own
	// grafted span tree when one came back.
	_, sp := trace.StartSpan(ctx, "proxy")
	sp.SetAttr("replica", rep.name)
	defer sp.End()
	outURL := rep.name + r.URL.Path
	if r.URL.RawQuery != "" {
		outURL += "?" + r.URL.RawQuery
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method, outURL, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return true, false
	}
	copyHeaders(out.Header, r.Header)
	// Re-encode the remaining deadline budget for this attempt
	// (overriding the stale inbound header copied above). A budget too
	// small to be worth a network hop is answered here instead.
	if rem, ok := overload.RemainingFromContext(r.Context()); ok {
		if rem < overload.MinForward {
			rt.deadlines.Add(1)
			sp.SetAttr("error", "deadline")
			writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", "deadline budget spent at router")
			return true, false
		}
		out.Header.Set(overload.DeadlineHeader, overload.FormatDeadline(rem))
	}
	// Always ask the upstream for its server-side tree, whatever the
	// end client asked for; the graft below is what makes the router's
	// ring and slow-query log self-contained.
	out.Header.Set(trace.Header, trace.RequestEcho)
	resp, err := rt.client.Do(out)
	if err != nil {
		// Transport failure: the replica is gone right now — take it
		// out of rotation immediately (the probe loop brings it back)
		// and move on. Nothing was written, so the retry is invisible.
		rep.errors.Add(1)
		sp.SetAttr("error", "transport")
		if rep.healthy.CompareAndSwap(true, false) {
			rt.log.Warn("replica down (request failed)", "replica", rep.name, "err", err)
		}
		if r.Context().Err() != nil {
			return true, false // client gone; stop trying
		}
		return false, true
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		// Draining (or overloaded) replica: its sessions are in the
		// shared store, so the next candidate can adopt this one now.
		if isDrainingResponse(resp) {
			rep.draining.Store(true)
			sp.SetAttr("error", "draining")
			rt.log.Info("replica draining, re-routing", "replica", rep.name)
			io.Copy(io.Discard, resp.Body)
			return false, true
		}
	}
	// Graft the upstream's server-observed tree under this attempt's
	// span, then strip the transport headers the router owns: the
	// upstream echo must not leak to a client that never asked, and the
	// correlation ID is already set on the response.
	if remote, derr := trace.DecodeSpan(resp.Header.Get(trace.Header)); derr == nil {
		sp.Graft(remote)
	}
	resp.Header.Del(trace.Header)
	resp.Header.Del(trace.RequestIDHeader)
	// Relay everything else verbatim, including application errors.
	copyHeaders(w.Header(), resp.Header)
	if echoClient {
		w.Header().Set(trace.Header, trace.EncodeSpan(trace.FromContext(ctx).SnapshotRoot()))
	}
	w.WriteHeader(resp.StatusCode)
	flushingCopy(w, resp.Body)
	return true, false
}

// isDrainingResponse peeks a 503's envelope for code "draining"
// without consuming more than a small prefix.
func isDrainingResponse(resp *http.Response) bool {
	if resp.Header.Get("Retry-After") == "" {
		return false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return false
	}
	// The body is consumed either way; stash it back for the relay
	// path? Not needed: callers only relay when this returns false,
	// and a false return here means the 503 body was already read —
	// so re-wrap it for the caller.
	resp.Body = io.NopCloser(bytes.NewReader(data))
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	return json.Unmarshal(data, &env) == nil && env.Error.Code == "draining"
}

// flushingCopy streams body to w, flushing after every chunk so NDJSON
// search streams flow through the proxy hit by hit.
func flushingCopy(w http.ResponseWriter, body io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": fmt.Sprintf(format, args...)},
	})
}

// --- health probing ---

// probeLoop polls every replica until Close.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	rt.probeAll() // settle real health before the first interval
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.closed:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probeOne(rep)
		}(rep)
	}
	wg.Wait()
}

func (rt *Router) probeOne(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.name+"/api/v1/healthz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.probeFails++
		if rep.probeFails >= rt.cfg.FailThreshold && rep.healthy.CompareAndSwap(true, false) {
			rt.log.Warn("replica down (probes failed)", "replica", rep.name, "fails", rep.probeFails)
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		rep.probeFails++
		if rep.probeFails >= rt.cfg.FailThreshold && rep.healthy.CompareAndSwap(true, false) {
			rt.log.Warn("replica down (healthz non-200)", "replica", rep.name, "status", resp.StatusCode)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return
	}
	var hz struct {
		Draining bool `json:"draining"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hz)
	rep.probeFails = 0
	if rep.healthy.CompareAndSwap(false, true) {
		rt.log.Info("replica back", "replica", rep.name)
	}
	if hz.Draining != rep.draining.Swap(hz.Draining) {
		rt.log.Info("replica drain state", "replica", rep.name, "draining", hz.Draining)
	}
}

// --- router-owned endpoints ---

// ReplicaStatus is one backend's row in the router's telemetry.
type ReplicaStatus struct {
	Replica  string `json:"replica"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	Rerouted int64  `json:"rerouted"`
}

// Status snapshots every replica's routing state, in configured order.
func (rt *Router) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, len(rt.replicas))
	for i, rep := range rt.replicas {
		out[i] = ReplicaStatus{
			Replica:  rep.name,
			Healthy:  rep.healthy.Load(),
			Draining: rep.draining.Load(),
			Requests: rep.requests.Load(),
			Errors:   rep.errors.Load(),
			Rerouted: rep.rerouted.Load(),
		}
	}
	return out
}

func (rt *Router) serveHealthz(w http.ResponseWriter) {
	healthy := 0
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			healthy++
		}
	}
	status, code := "ok", http.StatusOK
	if healthy == 0 {
		status, code = "down", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"router":   true,
		"replicas": len(rt.replicas),
		"healthy":  healthy,
	})
}

func (rt *Router) serveMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"router":            true,
		"replicas":          rt.Status(),
		"deadline_exceeded": rt.deadlines.Load(),
	})
}

// servePrometheus writes the router's text exposition: tier info,
// uptime, and per-replica routing counters.
func (rt *Router) servePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	w.WriteHeader(http.StatusOK)
	pw := metrics.NewPromWriter(w)
	pw.Family("ivr_tier_info", "gauge")
	pw.Sample("ivr_tier_info", 1, "tier", trace.TierRouter)
	pw.Family("ivr_uptime_seconds", "gauge")
	pw.Sample("ivr_uptime_seconds", time.Since(rt.start).Seconds())
	status := rt.Status()
	bool01 := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	pw.Family("ivr_replica_healthy", "gauge")
	for _, st := range status {
		pw.Sample("ivr_replica_healthy", bool01(st.Healthy), "replica", st.Replica)
	}
	pw.Family("ivr_replica_draining", "gauge")
	for _, st := range status {
		pw.Sample("ivr_replica_draining", bool01(st.Draining), "replica", st.Replica)
	}
	pw.Family("ivr_replica_requests_total", "counter")
	for _, st := range status {
		pw.Sample("ivr_replica_requests_total", float64(st.Requests), "replica", st.Replica)
	}
	pw.Family("ivr_replica_errors_total", "counter")
	for _, st := range status {
		pw.Sample("ivr_replica_errors_total", float64(st.Errors), "replica", st.Replica)
	}
	pw.Family("ivr_replica_rerouted_total", "counter")
	for _, st := range status {
		pw.Sample("ivr_replica_rerouted_total", float64(st.Rerouted), "replica", st.Replica)
	}
	pw.Family("ivr_deadline_exceeded_total", "counter")
	pw.Sample("ivr_deadline_exceeded_total", float64(rt.deadlines.Load()))
}

// serveTraces serves the ring of recent proxied-request traces,
// newest first.
func (rt *Router) serveTraces(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(struct {
		Traces []*trace.Entry `json:"traces"`
	}{rt.tracer.Traces()})
}

// Tracer exposes the router's trace collector (ops and tests).
func (rt *Router) Tracer() *trace.Collector { return rt.tracer }

// Healthy reports how many replicas are currently in rotation.
func (rt *Router) Healthy() int {
	n := 0
	for _, rep := range rt.replicas {
		if rep.healthy.Load() && !rep.draining.Load() {
			n++
		}
	}
	return n
}

var _ http.Handler = (*Router)(nil)
