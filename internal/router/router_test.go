package router_test

// Integration tests: a real front tier over real webapi replicas
// sharing one session store — the deployment ivrroute + N ivrserve
// -session-store processes form, compressed into one test binary.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/ilog"
	"repro/internal/router"
	"repro/internal/sessionstore"
	"repro/internal/synth"
	"repro/internal/webapi"
)

// tier is a running front tier: a router in front of live replicas
// that share one archive and one session store.
type tier struct {
	rt    *router.Router
	front *httptest.Server
	reps  []*replicaProc
	arch  *synth.Archive
	store sessionstore.SessionStore
}

// replicaProc stands in for one ivrserve process.
type replicaProc struct {
	id  string
	ts  *httptest.Server
	srv *webapi.Server
}

func newTier(t *testing.T, n int) *tier {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	store := sessionstore.NewMemoryStore()
	tr := &tier{arch: arch, store: store}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{UseImplicit: true})
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("r%d", i+1)
		srv, err := webapi.NewServer(sys,
			webapi.WithSessionStore(store),
			webapi.WithReplicaID(id),
		)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		rep := &replicaProc{id: id, ts: ts, srv: srv}
		t.Cleanup(func() { rep.ts.Close(); rep.srv.Close() })
		tr.reps = append(tr.reps, rep)
		urls[i] = ts.URL
	}
	rt, err := router.New(router.Config{
		Replicas:      urls,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	tr.rt = rt
	tr.front = httptest.NewServer(rt)
	t.Cleanup(tr.front.Close)
	return tr
}

// byURL maps a replica base URL (as the router reports it) back to
// the replica process.
func (tr *tier) byURL(u string) *replicaProc {
	for _, rep := range tr.reps {
		if rep.ts.URL == u {
			return rep
		}
	}
	return nil
}

// servedBy issues a GET through the front tier and reports which
// replica answered (X-IVR-Replica) plus the status code.
func (tr *tier) servedBy(t *testing.T, path string) (string, int) {
	t.Helper()
	resp, err := http.Get(tr.front.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_ = json.NewDecoder(resp.Body).Decode(&struct{}{})
	return resp.Header.Get(webapi.ReplicaHeader), resp.StatusCode
}

// clickTop sends click_keyframe events for the first k hits, the
// "clicker" stereotype one webapi hop at a time.
func clickTop(t *testing.T, c *client.Client, sid string, hits []client.Hit, k int) {
	t.Helper()
	var evs []ilog.Event
	for i := 0; i < k && i < len(hits); i++ {
		evs = append(evs, ilog.Event{Action: ilog.ActionClickKeyframe, ShotID: hits[i].ShotID, Rank: i})
	}
	if len(evs) == 0 {
		return
	}
	if _, err := c.SendEvents(context.Background(), sid, evs); err != nil {
		t.Fatalf("events: %v", err)
	}
}

func TestRouterAffinity(t *testing.T) {
	tr := newTier(t, 2)
	c, err := client.New(tr.front.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, client.CreateSessionRequest{UserID: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	owner := tr.byURL(tr.rt.Owner(sid))
	if owner == nil {
		t.Fatalf("Owner(%s) = %q, not a replica", sid, tr.rt.Owner(sid))
	}
	q := tr.arch.Truth.SearchTopics[0].Query
	searchPath := "/api/v1/search?session=" + sid + "&q=" + strings.ReplaceAll(q, " ", "+")
	for i := 0; i < 3; i++ {
		rep, status := tr.servedBy(t, searchPath)
		if status != http.StatusOK {
			t.Fatalf("search %d: status %d", i, status)
		}
		if rep != owner.id {
			t.Fatalf("search %d served by %s, owner is %s (affinity broken)", i, rep, owner.id)
		}
	}
	// Session-state reads extract the ID from the path...
	if rep, status := tr.servedBy(t, "/api/v1/sessions/"+sid); status != http.StatusOK || rep != owner.id {
		t.Fatalf("session read: status %d via %s, want 200 via %s", status, rep, owner.id)
	}
	// ...and event batches from the JSON body. The batch is invalid
	// (empty), but even the 400 must come from the session's owner.
	resp, err := http.Post(tr.front.URL+"/api/v1/events", "application/json",
		strings.NewReader(`{"session_id":"`+sid+`","events":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(webapi.ReplicaHeader); got != owner.id {
		t.Fatalf("events routed to %s, owner is %s", got, owner.id)
	}
}

func TestRouterKillAdoption(t *testing.T) {
	tr := newTier(t, 2)
	c, err := client.New(tr.front.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, client.CreateSessionRequest{UserID: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]string, 4)
	for i := range queries {
		queries[i] = tr.arch.Truth.SearchTopics[i%len(tr.arch.Truth.SearchTopics)].Query
	}

	// Two iterations through the router, then kill the owner replica.
	for i := 0; i < 2; i++ {
		page, err := c.Search(ctx, client.SearchRequest{SessionID: sid, Query: queries[i]})
		if err != nil {
			t.Fatal(err)
		}
		clickTop(t, c, sid, page.Hits, 2)
	}
	before, err := c.Session(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	owner := tr.byURL(tr.rt.Owner(sid))
	if owner == nil {
		t.Fatal("no owner")
	}
	owner.ts.CloseClientConnections()
	owner.ts.Close()

	// The study continues through the router with zero failed queries:
	// the surviving replica adopts the session from the shared store.
	var lastPage *client.SearchPage
	for i := 2; i < 4; i++ {
		lastPage, err = c.Search(ctx, client.SearchRequest{SessionID: sid, Query: queries[i]})
		if err != nil {
			t.Fatalf("search %d after killing owner: %v", i, err)
		}
		clickTop(t, c, sid, lastPage.Hits, 2)
	}
	after, err := c.Session(ctx, sid)
	if err != nil {
		t.Fatal(err)
	}
	if after.Step != before.Step+2 || after.Evidence < before.Evidence {
		t.Fatalf("adopted session lost state: before %+v, after %+v", before, after)
	}

	// The adopted run's rankings are bit-identical to the same study
	// against one uninterrupted replica.
	refArch := tr.arch
	refSys, err := core.NewSystemFromCollection(refArch.Collection, core.Config{UseImplicit: true})
	if err != nil {
		t.Fatal(err)
	}
	refSrv, err := webapi.NewServer(refSys)
	if err != nil {
		t.Fatal(err)
	}
	defer refSrv.Close()
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	rc, err := client.New(refTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	refSID, err := rc.CreateSession(ctx, client.CreateSessionRequest{UserID: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	var refPage *client.SearchPage
	for i := 0; i < 4; i++ {
		refPage, err = rc.Search(ctx, client.SearchRequest{SessionID: refSID, Query: queries[i]})
		if err != nil {
			t.Fatal(err)
		}
		clickTop(t, rc, refSID, refPage.Hits, 2)
	}
	if len(refPage.Hits) == 0 || len(lastPage.Hits) != len(refPage.Hits) {
		t.Fatalf("hit counts differ: %d vs %d", len(lastPage.Hits), len(refPage.Hits))
	}
	for i := range refPage.Hits {
		if lastPage.Hits[i].ShotID != refPage.Hits[i].ShotID {
			t.Fatalf("rank %d: adopted run %s, uninterrupted %s",
				i, lastPage.Hits[i].ShotID, refPage.Hits[i].ShotID)
		}
	}

	// Telemetry saw all of it: the dead replica is out of rotation and
	// someone re-routed.
	var dead, rerouted bool
	for _, st := range tr.rt.Status() {
		if tr.byURL(st.Replica) == owner {
			dead = !st.Healthy
		}
		rerouted = rerouted || st.Rerouted > 0
	}
	if !dead || !rerouted {
		t.Fatalf("router status missed the failover: %+v", tr.rt.Status())
	}
}

func TestRouterDrainReroute(t *testing.T) {
	tr := newTier(t, 2)
	c, err := client.New(tr.front.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, client.CreateSessionRequest{UserID: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	q := tr.arch.Truth.SearchTopics[0].Query
	if _, err := c.Search(ctx, client.SearchRequest{SessionID: sid, Query: q}); err != nil {
		t.Fatal(err)
	}
	owner := tr.byURL(tr.rt.Owner(sid))
	if owner == nil {
		t.Fatal("no owner")
	}
	if _, err := owner.srv.BeginDrain(); err != nil {
		t.Fatal(err)
	}
	// The next search must not fail and must not land on the draining
	// replica — the router reacts to the 503 mid-request, before any
	// probe has run.
	rep, status := tr.servedBy(t, "/api/v1/search?session="+sid+"&q="+strings.ReplaceAll(q, " ", "+"))
	if status != http.StatusOK {
		t.Fatalf("search against draining tier: status %d", status)
	}
	if rep == owner.id {
		t.Fatalf("request served by draining replica %s", rep)
	}
}

func TestRouterOwnEndpoints(t *testing.T) {
	tr := newTier(t, 2)
	var hz struct {
		Status   string `json:"status"`
		Router   bool   `json:"router"`
		Replicas int    `json:"replicas"`
		Healthy  int    `json:"healthy"`
	}
	resp, err := http.Get(tr.front.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.Router || hz.Status != "ok" || hz.Replicas != 2 || hz.Healthy != 2 {
		t.Fatalf("healthz = %+v", hz)
	}

	var mx struct {
		Router   bool                   `json:"router"`
		Replicas []router.ReplicaStatus `json:"replicas"`
	}
	r2, err := http.Get(tr.front.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&mx); err != nil {
		t.Fatal(err)
	}
	if !mx.Router || len(mx.Replicas) != 2 {
		t.Fatalf("metrics = %+v", mx)
	}
}

func TestRouterSpreadsCreates(t *testing.T) {
	tr := newTier(t, 2)
	c, err := client.New(tr.front.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.CreateSession(context.Background(), client.CreateSessionRequest{UserID: "u"}); err != nil {
			t.Fatal(err)
		}
	}
	for _, st := range tr.rt.Status() {
		if st.Requests == 0 {
			t.Fatalf("replica %s saw no creates (round-robin broken): %+v", st.Replica, tr.rt.Status())
		}
	}
}

// benchTier builds a single replica, with and without the router in
// front, so BenchmarkSearchDirect vs BenchmarkSearchViaRouter isolates
// the front-tier hop (BENCH_search.json tracks the delta).
func benchSetup(b *testing.B, viaRouter bool) (*client.Client, string, string) {
	b.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{UseImplicit: true})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := webapi.NewServer(sys)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	base := ts.URL
	if viaRouter {
		rt, err := router.New(router.Config{Replicas: []string{ts.URL}, ProbeInterval: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { rt.Close() })
		front := httptest.NewServer(rt)
		b.Cleanup(front.Close)
		base = front.URL
	}
	c, err := client.New(base)
	if err != nil {
		b.Fatal(err)
	}
	sid, err := c.CreateSession(context.Background(), client.CreateSessionRequest{UserID: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	return c, sid, arch.Truth.SearchTopics[0].Query
}

func benchSearch(b *testing.B, viaRouter bool) {
	c, sid, q := benchSetup(b, viaRouter)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(ctx, client.SearchRequest{SessionID: sid, Query: q}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchDirect(b *testing.B)    { benchSearch(b, false) }
func BenchmarkSearchViaRouter(b *testing.B) { benchSearch(b, true) }
