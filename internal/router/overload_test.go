package router_test

// Overload-protocol tests for the front tier: the router mints an
// X-IVR-Deadline budget for search traffic, decrements (never raises)
// an inbound budget across its hop, and answers spent or malformed
// budgets itself without burning a forward on them.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/overload"
	"repro/internal/router"
)

// deadlineEcho is a stand-in replica that records the deadline header
// of every forwarded request.
type deadlineEcho struct {
	hits    atomic.Int64
	lastRaw atomic.Value // string
}

func (d *deadlineEcho) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/healthz" {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, `{"status":"ok"}`)
			return
		}
		d.hits.Add(1)
		d.lastRaw.Store(r.Header.Get(overload.DeadlineHeader))
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{}`)
	})
}

func (d *deadlineEcho) last(t *testing.T) (time.Duration, bool) {
	t.Helper()
	raw, _ := d.lastRaw.Load().(string)
	if raw == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("upstream saw unparseable deadline %q", raw)
	}
	return time.Duration(ms) * time.Millisecond, true
}

func newDeadlineTier(t *testing.T, cfg router.Config) (*deadlineEcho, *httptest.Server) {
	t.Helper()
	echo := &deadlineEcho{}
	up := httptest.NewServer(echo.handler())
	t.Cleanup(up.Close)
	cfg.Replicas = []string{up.URL}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // no background probes during the test
	}
	rt, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	return echo, front
}

func TestRouterMintsSearchDeadline(t *testing.T) {
	echo, front := newDeadlineTier(t, router.Config{SearchDeadline: 2 * time.Second})
	resp, err := http.Get(front.URL + "/api/v1/search?session=s&q=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got, ok := echo.last(t)
	if !ok {
		t.Fatal("router forwarded search without minting a deadline budget")
	}
	if got <= 0 || got > 2*time.Second {
		t.Fatalf("minted budget %v outside (0, 2s]", got)
	}

	// Non-search traffic gets no minted budget.
	resp, err = http.Get(front.URL + "/api/v1/shots/abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := echo.last(t); ok {
		t.Fatal("router minted a deadline for non-search traffic")
	}
}

func TestRouterDecrementsInboundDeadline(t *testing.T) {
	echo, front := newDeadlineTier(t, router.Config{})
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/api/v1/shots/abc", nil)
	req.Header.Set(overload.DeadlineHeader, "5000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got, ok := echo.last(t)
	if !ok {
		t.Fatal("inbound deadline budget was dropped at the router hop")
	}
	if got <= 0 || got > 5*time.Second {
		t.Fatalf("forwarded budget %v outside (0, 5s] — a budget must never grow across a hop", got)
	}
}

func TestRouterAnswersSpentAndMalformedDeadlines(t *testing.T) {
	echo, front := newDeadlineTier(t, router.Config{})
	for _, tc := range []struct {
		raw    string
		status int
		code   string
	}{
		{"0", http.StatusGatewayTimeout, "deadline_exceeded"},
		{"-40", http.StatusGatewayTimeout, "deadline_exceeded"},
		{"bogus", http.StatusBadRequest, "invalid_request"},
		{"+250", http.StatusBadRequest, "invalid_request"},
	} {
		req, _ := http.NewRequest(http.MethodGet, front.URL+"/api/v1/search?session=s&q=x", nil)
		req.Header.Set(overload.DeadlineHeader, tc.raw)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("deadline %q: undecodable error body: %v", tc.raw, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || env.Error.Code != tc.code {
			t.Fatalf("deadline %q: got %d/%q, want %d/%q", tc.raw, resp.StatusCode, env.Error.Code, tc.status, tc.code)
		}
	}
	if n := echo.hits.Load(); n != 0 {
		t.Fatalf("router burned %d forwards on requests it should have answered itself", n)
	}
}
