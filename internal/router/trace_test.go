package router_test

// End-to-end trace propagation across the full three-tier deployment:
// ivrroute → ivrserve → 2× ivrsegment, compressed into one test
// binary. One traced search must come back with a single correlation
// ID and one span tree whose grafts cover every tier.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/router"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/webapi"
)

// threeTier is the full distributed deployment under one roof.
type threeTier struct {
	front   *httptest.Server
	rt      *router.Router
	serve   *webapi.Server
	segTS   []*httptest.Server
	queries []string
}

func newThreeTier(t *testing.T) *threeTier {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.BuildShardedIndex(arch.Collection, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	tt := &threeTier{}
	for _, topic := range arch.Truth.SearchTopics {
		tt.queries = append(tt.queries, topic.Query)
	}
	// Two segment servers, one hosted ordinal each — the smallest
	// topology where "one child span per backend" is distinguishable
	// from "one span total".
	var segURLs []string
	for i := 0; i < 2; i++ {
		seg, err := distrib.NewSegmentServer(distrib.ServerConfig{
			Sharded:    sh,
			Hosted:     []int{i},
			SourceHash: distrib.CollectionSourceHash(arch.Collection),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(seg.Handler())
		t.Cleanup(ts.Close)
		tt.segTS = append(tt.segTS, ts)
		segURLs = append(segURLs, ts.URL)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cluster, err := distrib.Connect(ctx, segURLs)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(cluster.NewEngine(nil, cluster.NumSegments()), arch.Collection,
		core.Config{UseImplicit: true, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetBackendTelemetry(cluster.BackendSummaries)
	srv, err := webapi.NewServer(sys, webapi.WithReplicaID("r1"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	tt.serve = srv
	serveTS := httptest.NewServer(srv.Handler())
	t.Cleanup(serveTS.Close)
	rt, err := router.New(router.Config{
		Replicas:      []string{serveTS.URL},
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	tt.rt = rt
	tt.front = httptest.NewServer(rt)
	t.Cleanup(tt.front.Close)
	return tt
}

// spanNames collects the names of s and everything under it.
func spanNames(s *trace.Span, into map[string]int) {
	into[s.Name]++
	for _, ch := range s.Children {
		spanNames(ch, into)
	}
}

// findAll returns every span named name anywhere under s.
func findAll(s *trace.Span, name string) []*trace.Span {
	var out []*trace.Span
	if s.Name == name {
		out = append(out, s)
	}
	for _, ch := range s.Children {
		out = append(out, findAll(ch, name)...)
	}
	return out
}

func TestEndToEndTracePropagation(t *testing.T) {
	tt := newThreeTier(t)
	c, err := client.New(tt.front.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, client.CreateSessionRequest{UserID: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	page, err := c.Search(ctx, client.SearchRequest{
		SessionID: sid, Query: tt.queries[0], Limit: 5, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if page.RequestID == "" {
		t.Fatal("traced search returned no X-Request-Id")
	}
	root := page.Trace
	if root == nil {
		t.Fatal("traced search returned no X-IVR-Trace span tree")
	}

	// The tree starts at the router and grafts the serve tier's echo
	// under the per-attempt proxy span.
	if root.Tier != trace.TierRouter {
		t.Fatalf("root tier = %q, want %q\n%s", root.Tier, trace.TierRouter, trace.FormatTree(root))
	}
	proxies := findAll(root, "proxy")
	if len(proxies) != 1 {
		t.Fatalf("proxy spans = %d, want 1\n%s", len(proxies), trace.FormatTree(root))
	}
	if proxies[0].Attrs["replica"] == "" {
		t.Errorf("proxy span has no replica attr: %v", proxies[0].Attrs)
	}
	var serveRoot *trace.Span
	for _, ch := range proxies[0].Children {
		if ch.Tier == trace.TierServe {
			serveRoot = ch
		}
	}
	if serveRoot == nil {
		t.Fatalf("no serve-tier subtree grafted under proxy\n%s", trace.FormatTree(root))
	}

	// The serve subtree covers every stage of a cold query.
	names := map[string]int{}
	spanNames(serveRoot, names)
	for _, want := range []string{"session", "expand", "prepare", "merge", "encode", "segment"} {
		if names[want] == 0 {
			t.Errorf("serve subtree lacks %q span\n%s", want, trace.FormatTree(root))
		}
	}

	// One scatter span per segment backend, each with the backend's
	// own grafted segment-tier tree carrying server-side timing.
	segSpans := findAll(serveRoot, "segment")
	if len(segSpans) != 2 {
		t.Fatalf("segment scatter spans = %d, want 2\n%s", len(segSpans), trace.FormatTree(root))
	}
	backends := map[string]bool{}
	for _, sp := range segSpans {
		backends[sp.Attrs["backend"]] = true
		var grafted *trace.Span
		for _, ch := range sp.Children {
			if ch.Tier == trace.TierSegment {
				grafted = ch
			}
		}
		if grafted == nil {
			t.Fatalf("segment span has no grafted segment-tier child\n%s", trace.FormatTree(sp))
		}
		if grafted.DurUS <= 0 {
			t.Errorf("grafted segment tree has no server-side duration: %+v", grafted)
		}
	}
	if len(backends) != 2 || backends[""] {
		t.Errorf("segment spans name %d distinct backends, want 2: %v", len(backends), backends)
	}

	// One correlation ID across all three tiers: the router's and
	// serve replica's rings hold the same ID the client saw, and each
	// segment server's debug endpoint reports it too.
	if entries := tt.rt.Tracer().Traces(); len(entries) == 0 || entries[0].ID != page.RequestID {
		t.Errorf("router ring does not lead with request ID %s", page.RequestID)
	}
	found := false
	for _, e := range tt.serve.Tracer().Traces() {
		if e.ID == page.RequestID {
			found = true
			if e.Tier != trace.TierServe {
				t.Errorf("serve ring entry tier = %q", e.Tier)
			}
		}
	}
	if !found {
		t.Errorf("serve ring has no entry for request ID %s", page.RequestID)
	}
	for i, ts := range tt.segTS {
		resp, err := http.Get(ts.URL + distrib.TracesPath)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Traces []*trace.Entry `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		found := false
		for _, e := range body.Traces {
			if e.ID == page.RequestID && e.Tier == trace.TierSegment {
				found = true
			}
		}
		if !found {
			t.Errorf("segment server %d ring has no entry for request ID %s", i, page.RequestID)
		}
	}
}

// TestUntracedSearchCarriesNoTraceHeader pins the negative: without
// the echo request the router responds with the correlation ID only.
func TestUntracedSearchCarriesNoTraceHeader(t *testing.T) {
	tt := newThreeTier(t)
	c, err := client.New(tt.front.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sid, err := c.CreateSession(ctx, client.CreateSessionRequest{UserID: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("GET",
		tt.front.URL+"/api/v1/search?session="+sid+"&q="+url.QueryEscape(tt.queries[0]), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get(trace.RequestIDHeader) == "" {
		t.Error("response missing X-Request-Id")
	}
	if v := resp.Header.Get(trace.Header); v != "" {
		t.Errorf("untraced response leaked X-IVR-Trace header %q", v)
	}
}
