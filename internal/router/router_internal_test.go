package router

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newIdleRouter builds a router whose probe loop is effectively
// parked, for unit tests that never talk to a backend.
func newIdleRouter(t *testing.T, replicas ...string) *Router {
	t.Helper()
	rt, err := New(Config{Replicas: replicas, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func TestRendezvousDeterministicAndStable(t *testing.T) {
	reps := []string{"http://a:1", "http://b:1", "http://c:1"}
	rt := newIdleRouter(t, reps...)
	rt2 := newIdleRouter(t, reps[2], reps[0], reps[1]) // different config order

	owners := map[string]int{}
	for i := 0; i < 200; i++ {
		sid := fmt.Sprintf("sess-%d", i)
		order := rt.rendezvousOrder(sid)
		if len(order) != 3 {
			t.Fatalf("order length %d", len(order))
		}
		// Same session, same answer — on every call and on every
		// router instance, regardless of replica list order.
		if again := rt.rendezvousOrder(sid); again[0] != order[0] {
			t.Fatalf("session %s: owner flapped", sid)
		}
		if other := rt2.rendezvousOrder(sid); other[0].name != order[0].name {
			t.Fatalf("session %s: routers disagree (%s vs %s)", sid, order[0].name, other[0].name)
		}
		owners[order[0].name]++
	}
	// HRW should spread sessions over all replicas (not necessarily
	// evenly at n=200, but nobody should be starved).
	for _, rep := range reps {
		if owners[rep] == 0 {
			t.Fatalf("replica %s owns no sessions: %v", rep, owners)
		}
	}
}

func TestRendezvousFailoverIsMinimal(t *testing.T) {
	rt := newIdleRouter(t, "http://a:1", "http://b:1", "http://c:1")
	moved := 0
	for i := 0; i < 200; i++ {
		sid := fmt.Sprintf("sess-%d", i)
		before := rt.Owner(sid)
		// Take one specific replica down: only its sessions may move.
		for _, rep := range rt.replicas {
			if rep.name == "http://b:1" {
				rep.healthy.Store(false)
			}
		}
		after := rt.Owner(sid)
		for _, rep := range rt.replicas {
			rep.healthy.Store(true)
		}
		if before == "http://b:1" {
			if after == "http://b:1" || after == "" {
				t.Fatalf("session %s: not re-routed off dead owner", sid)
			}
			moved++
		} else if after != before {
			t.Fatalf("session %s: moved from %s to %s though its owner stayed up", sid, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("dead replica owned no sessions; test proved nothing")
	}
}

func TestSessionIDExtraction(t *testing.T) {
	cases := []struct {
		method, url string
		body        string
		want        string
	}{
		{"GET", "/api/v1/search?session=s42&q=x", "", "s42"},
		{"GET", "/api/v1/search/stream?session=s42&q=x", "", "s42"},
		{"GET", "/api/v1/sessions/s42", "", "s42"},
		{"DELETE", "/api/v1/sessions/s%2F42", "", "s/42"},
		{"GET", "/api/v1/sessions", "", ""},
		{"POST", "/api/v1/events", `{"session_id":"s42","events":[]}`, "s42"},
		{"POST", "/api/v1/events", `not json`, ""},
		{"POST", "/api/v1/sessions", `{"user_id":"u"}`, ""},
		{"GET", "/api/v1/shots/v0001_s003", "", ""},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(tc.method, tc.url, nil)
		if got := sessionID(r, []byte(tc.body)); got != tc.want {
			t.Errorf("%s %s (body %q): session %q, want %q", tc.method, tc.url, tc.body, got, tc.want)
		}
	}
}

func TestRoundRobinCoversAllReplicas(t *testing.T) {
	rt := newIdleRouter(t, "http://a:1", "http://b:1")
	first := map[string]int{}
	for i := 0; i < 10; i++ {
		order := rt.roundRobinOrder()
		if len(order) != 2 || order[0] == order[1] {
			t.Fatalf("bad round-robin order %v", order)
		}
		first[order[0].name]++
	}
	if first["http://a:1"] != 5 || first["http://b:1"] != 5 {
		t.Fatalf("round-robin skew: %v", first)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no replicas accepted")
	}
	if _, err := New(Config{Replicas: []string{"not a url"}}); err == nil {
		t.Fatal("bad URL accepted")
	}
	if _, err := New(Config{Replicas: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	if _, err := New(Config{Replicas: []string{"http://a:1"}, FailThreshold: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestIsDrainingResponse(t *testing.T) {
	mk := func(retryAfter, body string) *http.Response {
		rec := httptest.NewRecorder()
		if retryAfter != "" {
			rec.Header().Set("Retry-After", retryAfter)
		}
		rec.WriteHeader(http.StatusServiceUnavailable)
		rec.WriteString(body)
		return rec.Result()
	}
	if !isDrainingResponse(mk("1", `{"error":{"code":"draining","message":"x"}}`)) {
		t.Fatal("draining envelope not recognised")
	}
	if isDrainingResponse(mk("", `{"error":{"code":"draining","message":"x"}}`)) {
		t.Fatal("503 without Retry-After treated as draining")
	}
	// A rate-limit style 503 with Retry-After but another code must be
	// relayed, not re-routed — and its body must survive the peek.
	resp := mk("1", `{"error":{"code":"overloaded","message":"x"}}`)
	if isDrainingResponse(resp) {
		t.Fatal("non-draining 503 treated as draining")
	}
	buf := make([]byte, 64)
	n, _ := resp.Body.Read(buf)
	if got := string(buf[:n]); got == "" || got[0] != '{' {
		t.Fatalf("peeked body not restored: %q", got)
	}
}

// TestDefaultClientHasBoundedTimeouts is the regression test for the
// bare &http.Client{} the router once shipped with: a wedged replica
// that accepted connections but never answered could pin proxy
// goroutines forever. The default client must bound dial and
// response-header waits (but deliberately not the whole request, so
// NDJSON streams can run long).
func TestDefaultClientHasBoundedTimeouts(t *testing.T) {
	rt, err := New(Config{Replicas: []string{"http://a:1"}, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	tr, ok := rt.client.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("default client transport is %T, want *http.Transport with bounded timeouts", rt.client.Transport)
	}
	if tr.DialContext == nil {
		t.Fatal("default transport has no bounded dialer")
	}
	if tr.ResponseHeaderTimeout <= 0 {
		t.Fatal("default transport does not bound the response-header wait")
	}
	if tr.TLSHandshakeTimeout <= 0 {
		t.Fatal("default transport does not bound the TLS handshake")
	}
	if rt.client.Timeout != 0 {
		t.Fatal("default client sets a whole-request timeout, which would cut long NDJSON streams")
	}
}
