package ui

import (
	"math"
	"testing"

	"repro/internal/ilog"
)

func TestBuiltinsValid(t *testing.T) {
	for _, f := range Environments() {
		if err := f.Validate(); err != nil {
			t.Errorf("%s invalid: %v", f.Name, err)
		}
	}
}

func TestDesktopAffordsMoreImplicit(t *testing.T) {
	d, tv := Desktop(), TV()
	dCount, tvCount := 0, 0
	for _, a := range ilog.ImplicitActions() {
		if d.Supports(a) {
			dCount++
		}
		if tv.Supports(a) {
			tvCount++
		}
	}
	if dCount <= tvCount {
		t.Errorf("desktop affords %d implicit actions, tv %d; want desktop > tv", dCount, tvCount)
	}
	if tv.Supports(ilog.ActionSlide) || tv.Supports(ilog.ActionHighlight) {
		t.Error("tv should not afford slide/highlight")
	}
}

func TestTVExplicitCheaperDesktopTextCheaper(t *testing.T) {
	d, tv := Desktop(), TV()
	if tv.ActionCost(ilog.ActionRate) >= d.ActionCost(ilog.ActionRate) {
		t.Error("explicit rating should be cheaper on tv")
	}
	if d.QueryCost(12) >= tv.QueryCost(12) {
		t.Error("text query should be cheaper on desktop")
	}
}

func TestActionCostUnsupportedIsInfinite(t *testing.T) {
	tv := TV()
	if !math.IsInf(tv.ActionCost(ilog.ActionSlide), 1) {
		t.Error("unsupported action should cost +Inf")
	}
}

func TestQueryCostScalesWithLength(t *testing.T) {
	d := Desktop()
	if d.QueryCost(40) <= d.QueryCost(4) {
		t.Error("longer queries should cost more")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []func(*Interface){
		func(f *Interface) { f.Name = "" },
		func(f *Interface) { f.PageSize = 0 },
		func(f *Interface) { f.SessionBudget = 0 },
		func(f *Interface) { delete(f.Cost, ilog.ActionPlay) },
		func(f *Interface) { f.Cost[ilog.ActionPlay] = -1 },
		func(f *Interface) { f.Cost[ilog.ActionPlay] = math.Inf(1) },
		func(f *Interface) { f.TextEntryCostPerChar = -0.1 },
	}
	for i, mutate := range cases {
		f := Desktop()
		mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid interface accepted", i)
		}
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("tv")
	if err != nil || f.Name != "tv" {
		t.Errorf("ByName(tv) = %v, %v", f, err)
	}
	if _, err := ByName("holodeck"); err == nil {
		t.Error("unknown interface accepted")
	}
}

func TestPageSizes(t *testing.T) {
	if Desktop().PageSize <= TV().PageSize {
		t.Error("desktop page should show more results than tv")
	}
}
