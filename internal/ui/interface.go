// Package ui models the interaction environments the paper contrasts:
// a desktop video-search interface (keyboard + mouse, rich implicit
// interaction, cheap text entry) and an interactive-TV interface
// (remote control, expensive text entry, cheap explicit rating keys).
//
// An Interface here is a *capability and cost model*, not a widget
// tree: it describes which actions the environment affords, what each
// costs in user effort, and the result-page geometry. Simulated users
// spend an effort budget against these costs, which is what produces
// the environment-dependent feedback volumes the paper predicts
// ("users will possibly avoid to enter key words" on TV).
package ui

import (
	"fmt"
	"math"

	"repro/internal/ilog"
)

// Interface is an interaction-environment model.
type Interface struct {
	// Name labels logs and tables ("desktop", "tv").
	Name string
	// PageSize is the number of results shown per page.
	PageSize int
	// Affordances lists the actions this environment supports.
	Affordances map[ilog.Action]bool
	// Cost is the effort price of each afforded action, in abstract
	// effort units (1.0 = one casual mouse click).
	Cost map[ilog.Action]float64
	// TextEntryCostPerChar prices query typing; dominates on TV.
	TextEntryCostPerChar float64
	// SessionBudget is the default effort a user will spend in one
	// session in this environment before giving up.
	SessionBudget float64
	// RateAffinity scales the user's base propensity to rate in this
	// environment: >1 where rating is a primary affordance (dedicated
	// remote keys), <1 where it is buried in the UI.
	RateAffinity float64
}

// Supports reports whether the environment affords action a.
func (f *Interface) Supports(a ilog.Action) bool { return f.Affordances[a] }

// ActionCost returns the effort price of a (infinite when unsupported,
// so budget arithmetic naturally forbids it).
func (f *Interface) ActionCost(a ilog.Action) float64 {
	if !f.Affordances[a] {
		return math.Inf(1)
	}
	return f.Cost[a]
}

// QueryCost prices issuing a text query of the given length: the base
// query action cost plus per-character entry cost.
func (f *Interface) QueryCost(queryLen int) float64 {
	return f.ActionCost(ilog.ActionQuery) + float64(queryLen)*f.TextEntryCostPerChar
}

// Validate checks internal consistency: every afforded action must be
// priced, costs must be positive and finite.
func (f *Interface) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("ui: interface without name")
	}
	if f.PageSize <= 0 {
		return fmt.Errorf("ui: %s: page size must be positive", f.Name)
	}
	if f.SessionBudget <= 0 {
		return fmt.Errorf("ui: %s: session budget must be positive", f.Name)
	}
	for a, on := range f.Affordances {
		if !on {
			continue
		}
		c, ok := f.Cost[a]
		if !ok {
			return fmt.Errorf("ui: %s: afforded action %q has no cost", f.Name, a)
		}
		if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
			return fmt.Errorf("ui: %s: action %q has invalid cost %v", f.Name, a, c)
		}
	}
	if f.TextEntryCostPerChar < 0 {
		return fmt.Errorf("ui: %s: negative text entry cost", f.Name)
	}
	if f.RateAffinity < 0 {
		return fmt.Errorf("ui: %s: negative rate affinity", f.Name)
	}
	return nil
}

// Desktop returns the desktop environment: full affordance set, cheap
// typing, 20-keyframe result pages — "the highest amount of possible
// implicit relevance feedback" in the paper's words.
func Desktop() *Interface {
	return &Interface{
		Name:     "desktop",
		PageSize: 20,
		Affordances: map[ilog.Action]bool{
			ilog.ActionQuery:         true,
			ilog.ActionBrowse:        true,
			ilog.ActionClickKeyframe: true,
			ilog.ActionPlay:          true,
			ilog.ActionSlide:         true,
			ilog.ActionHighlight:     true,
			ilog.ActionRate:          true, // possible, but priced high: desktop users rarely rate
		},
		Cost: map[ilog.Action]float64{
			ilog.ActionQuery:         1.0,
			ilog.ActionBrowse:        0.5,
			ilog.ActionClickKeyframe: 1.0,
			ilog.ActionPlay:          1.0,
			ilog.ActionSlide:         1.5,
			ilog.ActionHighlight:     0.8,
			ilog.ActionRate:          4.0,
		},
		TextEntryCostPerChar: 0.05,
		SessionBudget:        120,
		RateAffinity:         0.3, // rating is a buried menu action
	}
}

// TV returns the interactive-TV environment: story-granularity
// browsing on a small page, no metadata highlighting or scrubbing,
// text entry via channel keys priced an order of magnitude above the
// desktop, and cheap explicit rating keys on the remote.
func TV() *Interface {
	return &Interface{
		Name:     "tv",
		PageSize: 6,
		Affordances: map[ilog.Action]bool{
			ilog.ActionQuery:         true,
			ilog.ActionBrowse:        true,
			ilog.ActionClickKeyframe: true, // select + OK on the remote
			ilog.ActionPlay:          true,
			ilog.ActionSlide:         false,
			ilog.ActionHighlight:     false,
			ilog.ActionRate:          true, // dedicated +/- keys
		},
		Cost: map[ilog.Action]float64{
			ilog.ActionQuery:         2.0,
			ilog.ActionBrowse:        1.5, // per-page stepping with arrow keys
			ilog.ActionClickKeyframe: 2.0, // navigate-to-cell + OK
			ilog.ActionPlay:          1.5,
			ilog.ActionRate:          0.8,
		},
		TextEntryCostPerChar: 1.2, // multi-tap on channel keys
		SessionBudget:        60,  // lean-back sessions are shorter
		RateAffinity:         3.0, // dedicated +/- keys on the remote
	}
}

// Environments returns the two studied environments in a fixed order.
func Environments() []*Interface {
	return []*Interface{Desktop(), TV()}
}

// ByName resolves an environment by its log label.
func ByName(name string) (*Interface, error) {
	for _, f := range Environments() {
		if f.Name == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("ui: unknown interface %q", name)
}
