// JournalStore: the crash-safe, shareable SessionStore. State changes
// are appended to one journal file as versioned, CRC-checksummed
// binary records (the internal/store magic/CRC container idiom applied
// to a log instead of a snapshot):
//
//	magic    8 bytes  "IVRSJL\x00\x01"
//	record*  each:    4-byte big-endian body length
//	                  body  = version(1) op(1) uvarint(len(id)) id payload
//	                  4-byte big-endian IEEE CRC32 of body
//
// Durability: appends are buffered by the OS and fsynced in batches
// (SyncInterval), so the hot path pays one write syscall per session
// mutation, not one fsync. Flush forces the fsync (drain paths call it
// before handing sessions to another replica); a crash loses at most
// one sync interval of tail records, and a torn tail record is
// detected by its CRC and dropped on the next open.
//
// Sharing: replicas of one front tier open the same journal path.
// Appends use O_APPEND (whole-record single writes, so records from
// concurrent processes interleave but never interleave bytes), and
// every read re-scans the journal tail first, so a session persisted
// by one replica is immediately visible to the replica that adopts it.
// An advisory flock marks live openers: compaction and torn-tail
// truncation only run when an opener holds the file exclusively.
//
// Compaction: on open (when exclusive), the journal is rewritten to
// one record per live session once dead bytes (overwritten or deleted
// records) exceed CompactMinWaste, so long-lived deployments do not
// grow without bound.
package sessionstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"
)

var journalMagic = [8]byte{'I', 'V', 'R', 'S', 'J', 'L', 0, 1}

// ErrBadFormat reports a journal whose header is not a supported
// journal file (torn tail records are tolerated, a bad header is not).
var ErrBadFormat = errors.New("sessionstore: not a session journal or unsupported version")

const (
	recVersion byte = 1
	opPut      byte = 1
	opDelete   byte = 2

	// recFrame is the framing overhead per record: 4-byte length +
	// 4-byte CRC around the body.
	recFrame = 8
	// maxRecordBytes bounds a single record body; larger lengths are
	// treated as corruption rather than allocated.
	maxRecordBytes = 64 << 20
)

// JournalOptions tunes a JournalStore. The zero value is usable.
type JournalOptions struct {
	// SyncInterval batches fsyncs: 0 fsyncs every append (safest,
	// slowest), >0 fsyncs dirty state at this cadence on a background
	// goroutine, <0 never fsyncs (the OS decides; tests). Open's
	// default when unset via OpenJournal options is 100ms.
	SyncInterval time.Duration
	// CompactMinWaste is the dead-byte threshold above which an
	// exclusive open rewrites the journal compacted (default: compact
	// whenever dead bytes exceed live bytes and 64KiB).
	CompactMinWaste int64
}

// JournalOption configures OpenJournal.
type JournalOption func(*JournalOptions)

// WithSyncInterval sets the fsync batching cadence (see
// JournalOptions.SyncInterval).
func WithSyncInterval(d time.Duration) JournalOption {
	return func(o *JournalOptions) { o.SyncInterval = d }
}

// WithCompactMinWaste sets the compaction-on-open threshold in dead
// bytes (0 restores the default heuristic).
func WithCompactMinWaste(n int64) JournalOption {
	return func(o *JournalOptions) { o.CompactMinWaste = n }
}

// JournalStore is the append-only journal SessionStore. Safe for
// concurrent use within a process and shareable across processes (see
// the package comment for the sharing contract).
type JournalStore struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	sessions map[string][]byte
	// scanOff is how far into the file the sessions map has replayed.
	// Appends from this or other processes land beyond it; refresh
	// catches the map up before every read.
	scanOff int64
	dirty   bool
	closed  bool

	opts      JournalOptions
	compacted bool

	stopSync chan struct{}
	syncWG   sync.WaitGroup
}

// OpenJournal opens (creating if absent) the journal at path, replays
// it into memory, truncates a torn tail and compacts dead records when
// this process is the only opener, and starts the fsync batcher.
func OpenJournal(path string, options ...JournalOption) (*JournalStore, error) {
	opts := JournalOptions{SyncInterval: 100 * time.Millisecond}
	for _, o := range options {
		o(&opts)
	}
	j := &JournalStore{
		path:     path,
		sessions: make(map[string][]byte),
		opts:     opts,
		stopSync: make(chan struct{}),
	}
	if err := j.openLocked(); err != nil {
		return nil, err
	}
	if j.opts.SyncInterval > 0 {
		j.syncWG.Add(1)
		go j.syncLoop()
	}
	return j, nil
}

// openLocked opens the path, acquires the advisory lock, and replays
// the journal. It retries when the file is swapped by a concurrent
// compaction between open and lock (the inode no longer matches the
// path).
func (j *JournalStore) openLocked() error {
	for attempt := 0; ; attempt++ {
		f, err := os.OpenFile(j.path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("sessionstore: open journal: %w", err)
		}
		exclusive := true
		if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
			exclusive = false
			if err := syscall.Flock(int(f.Fd()), syscall.LOCK_SH); err != nil {
				f.Close()
				return fmt.Errorf("sessionstore: lock journal: %w", err)
			}
		}
		// A concurrent exclusive opener may have compacted (renamed a
		// new file over the path) while we waited for the lock; verify
		// we locked the inode the path still names.
		pathInfo, err := os.Stat(j.path)
		if err != nil || !os.SameFile(pathInfo, statOf(f)) {
			f.Close()
			if attempt > 10 {
				return fmt.Errorf("sessionstore: journal kept moving underneath open")
			}
			continue
		}
		j.f = f
		if err := j.replay(exclusive); err != nil {
			f.Close()
			return err
		}
		if exclusive {
			if err := j.maybeCompact(); err != nil {
				j.f.Close()
				return err
			}
			// Downgrade so other replicas can open the journal too.
			if err := syscall.Flock(int(j.f.Fd()), syscall.LOCK_SH); err != nil {
				j.f.Close()
				return fmt.Errorf("sessionstore: downgrade journal lock: %w", err)
			}
		}
		return nil
	}
}

func statOf(f *os.File) os.FileInfo {
	info, err := f.Stat()
	if err != nil {
		return nil
	}
	return info
}

// replay loads the journal into the sessions map. A fresh file gets
// the magic header; a torn or corrupt tail stops the scan at the last
// good record and is truncated away when this opener is exclusive.
func (j *JournalStore) replay(exclusive bool) error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("sessionstore: stat journal: %w", err)
	}
	if info.Size() == 0 {
		if _, err := j.f.Write(journalMagic[:]); err != nil {
			return fmt.Errorf("sessionstore: write journal header: %w", err)
		}
		j.scanOff = int64(len(journalMagic))
		return nil
	}
	if info.Size() < int64(len(journalMagic)) {
		return ErrBadFormat
	}
	var hdr [8]byte
	if _, err := j.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("sessionstore: read journal header: %w", err)
	}
	if hdr != journalMagic {
		return ErrBadFormat
	}
	j.scanOff = int64(len(journalMagic))
	j.scanTail()
	if exclusive && j.scanOff < info.Size() {
		// Torn tail (crash mid-append): drop it so future appends are
		// readable again.
		if err := j.f.Truncate(j.scanOff); err != nil {
			return fmt.Errorf("sessionstore: truncate torn tail: %w", err)
		}
	}
	return nil
}

// scanTail replays records in [scanOff, EOF) into the sessions map,
// advancing scanOff past every well-formed record. It stops (without
// advancing) at the first truncated or corrupt record. Callers hold mu
// (or are inside open, before the store is shared).
func (j *JournalStore) scanTail() {
	info, err := j.f.Stat()
	if err != nil {
		return
	}
	size := info.Size()
	for j.scanOff < size {
		var lenBuf [4]byte
		if j.scanOff+recFrame > size {
			return
		}
		if _, err := j.f.ReadAt(lenBuf[:], j.scanOff); err != nil {
			return
		}
		n := int64(binary.BigEndian.Uint32(lenBuf[:]))
		if n <= 0 || n > maxRecordBytes || j.scanOff+4+n+4 > size {
			return
		}
		body := make([]byte, n+4)
		if _, err := j.f.ReadAt(body, j.scanOff+4); err != nil {
			return
		}
		crc := binary.BigEndian.Uint32(body[n:])
		body = body[:n]
		if crc32.ChecksumIEEE(body) != crc {
			return
		}
		id, payload, op, err := decodeBody(body)
		if err != nil {
			return
		}
		switch op {
		case opPut:
			j.sessions[id] = payload
		case opDelete:
			delete(j.sessions, id)
		}
		j.scanOff += 4 + n + 4
	}
}

// decodeBody splits a record body into its parts. The payload aliases
// body's backing array (callers copy on the way out of the store).
func decodeBody(body []byte) (id string, payload []byte, op byte, err error) {
	if len(body) < 2 || body[0] != recVersion {
		return "", nil, 0, ErrBadFormat
	}
	op = body[1]
	if op != opPut && op != opDelete {
		return "", nil, 0, ErrBadFormat
	}
	idLen, m := binary.Uvarint(body[2:])
	if m <= 0 || int(idLen) > len(body)-2-m {
		return "", nil, 0, ErrBadFormat
	}
	off := 2 + m
	id = string(body[off : off+int(idLen)])
	payload = body[off+int(idLen):]
	return id, payload, op, nil
}

// encodeRecord frames one record ready to append.
func encodeRecord(op byte, id string, payload []byte) []byte {
	var idLen [binary.MaxVarintLen64]byte
	m := binary.PutUvarint(idLen[:], uint64(len(id)))
	n := 2 + m + len(id) + len(payload)
	rec := make([]byte, 4+n+4)
	binary.BigEndian.PutUint32(rec[:4], uint32(n))
	body := rec[4 : 4+n]
	body[0] = recVersion
	body[1] = op
	copy(body[2:], idLen[:m])
	copy(body[2+m:], id)
	copy(body[2+m+len(id):], payload)
	binary.BigEndian.PutUint32(rec[4+n:], crc32.ChecksumIEEE(body))
	return rec
}

// maybeCompact rewrites the journal to one record per live session
// when dead bytes exceed the configured threshold. Only called while
// holding the exclusive lock on open.
func (j *JournalStore) maybeCompact() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("sessionstore: stat journal: %w", err)
	}
	var live int64
	for id, payload := range j.sessions {
		var idLen [binary.MaxVarintLen64]byte
		m := binary.PutUvarint(idLen[:], uint64(len(id)))
		live += recFrame + 2 + int64(m) + int64(len(id)) + int64(len(payload))
	}
	dead := info.Size() - int64(len(journalMagic)) - live
	threshold := j.opts.CompactMinWaste
	if threshold == 0 && (dead <= live || dead <= 64<<10) {
		return nil // default heuristic: >50% dead and >64KiB
	}
	if dead < threshold || dead <= 0 {
		return nil
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".ivrsjl-*")
	if err != nil {
		return fmt.Errorf("sessionstore: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(journalMagic[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("sessionstore: compact: %w", err)
	}
	ids := make([]string, 0, len(j.sessions))
	for id := range j.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, err := tmp.Write(encodeRecord(opPut, id, j.sessions[id])); err != nil {
			tmp.Close()
			return fmt.Errorf("sessionstore: compact: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sessionstore: compact: %w", err)
	}
	// Lock the replacement before it becomes visible so an opener that
	// races the rename blocks until we finish, then sees the new inode.
	if err := syscall.Flock(int(tmp.Fd()), syscall.LOCK_EX); err != nil {
		tmp.Close()
		return fmt.Errorf("sessionstore: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		tmp.Close()
		return fmt.Errorf("sessionstore: compact: %w", err)
	}
	old := j.f
	j.f = tmp
	old.Close()
	info, err = j.f.Stat()
	if err != nil {
		return fmt.Errorf("sessionstore: compact: %w", err)
	}
	j.scanOff = info.Size()
	j.compacted = true
	return nil
}

// Compacted reports whether the open rewrote the journal (telemetry
// and tests).
func (j *JournalStore) Compacted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compacted
}

// append writes one framed record and applies the fsync policy.
func (j *JournalStore) append(rec []byte) error {
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("sessionstore: append: %w", err)
	}
	j.dirty = true
	if j.opts.SyncInterval == 0 {
		return j.syncNow()
	}
	return nil
}

func (j *JournalStore) syncNow() error {
	if !j.dirty {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sessionstore: fsync: %w", err)
	}
	j.dirty = false
	return nil
}

// syncLoop fsyncs dirty state at the configured cadence until Close.
func (j *JournalStore) syncLoop() {
	defer j.syncWG.Done()
	t := time.NewTicker(j.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-j.stopSync:
			return
		case <-t.C:
			j.mu.Lock()
			if !j.closed {
				_ = j.syncNow()
			}
			j.mu.Unlock()
		}
	}
}

// Put implements SessionStore: append a put record and index it.
func (j *JournalStore) Put(id string, state []byte) error {
	if id == "" {
		return fmt.Errorf("sessionstore: empty session id")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.append(encodeRecord(opPut, id, state)); err != nil {
		return err
	}
	cp := make([]byte, len(state))
	copy(cp, state)
	j.sessions[id] = cp
	return nil
}

// Get implements SessionStore. The journal tail is re-scanned first so
// records appended by other replica processes are visible.
func (j *JournalStore) Get(id string) ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, ErrClosed
	}
	j.scanTail()
	state, ok := j.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(state))
	copy(cp, state)
	return cp, nil
}

// Delete implements SessionStore: append a tombstone. Unknown IDs are
// a no-op (after a tail re-scan), so racing replicas can both clean up.
func (j *JournalStore) Delete(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.scanTail()
	if _, ok := j.sessions[id]; !ok {
		return nil
	}
	if err := j.append(encodeRecord(opDelete, id, nil)); err != nil {
		return err
	}
	delete(j.sessions, id)
	return nil
}

// List implements SessionStore (tail re-scan included).
func (j *JournalStore) List() ([]string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, ErrClosed
	}
	j.scanTail()
	ids := make([]string, 0, len(j.sessions))
	for id := range j.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Len reports the number of live sessions in the journal's view.
func (j *JournalStore) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.scanTail()
	return len(j.sessions)
}

// Flush forces an fsync of any batched appends. Drain/handoff paths
// call it before another replica is expected to adopt the sessions.
func (j *JournalStore) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncNow()
}

// Close flushes, releases the advisory lock and closes the file.
// Idempotent.
func (j *JournalStore) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	err := j.syncNow()
	j.mu.Unlock()
	close(j.stopSync)
	j.syncWG.Wait()
	_ = syscall.Flock(int(j.f.Fd()), syscall.LOCK_UN)
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Ensure both implementations satisfy the interface.
var (
	_ SessionStore = (*MemoryStore)(nil)
	_ SessionStore = (*JournalStore)(nil)
	_ io.Closer    = (*JournalStore)(nil)
)
