// Package sessionstore persists session state blobs so interactive
// sessions survive process restarts and migrate between API replicas.
// The paper's methodology rests on long-lived sessions whose implicit
// evidence accumulates across iterations; a SessionStore makes that
// evidence durable instead of living in one process's RAM.
//
// The store deals in opaque byte payloads keyed by session ID — the
// codec (internal/core's versioned session snapshot) is the caller's
// business. Two implementations ship: an in-memory store (tests,
// single-process deployments that only want the interface) and a
// crash-safe append-only journal (JournalStore) that multiple replica
// processes can share.
package sessionstore

import (
	"errors"
	"sort"
	"sync"
)

// Errors shared by every implementation.
var (
	// ErrNotFound reports an unknown (or deleted) session ID.
	ErrNotFound = errors.New("sessionstore: session not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("sessionstore: store closed")
)

// SessionStore persists session state blobs by session ID. All
// methods are safe for concurrent use. Get returns ErrNotFound for
// unknown IDs; Delete of an unknown ID is a no-op (replicas race on
// cleanup, so idempotence is the useful contract).
type SessionStore interface {
	// Put stores (or replaces) a session's serialized state.
	Put(id string, state []byte) error
	// Get returns a copy of a session's latest serialized state.
	Get(id string) ([]byte, error)
	// Delete removes a session. Unknown IDs are not an error.
	Delete(id string) error
	// List returns the stored session IDs, sorted.
	List() ([]string, error)
	// Close releases resources; further calls return ErrClosed.
	Close() error
}

// MemoryStore is the trivial in-RAM SessionStore: durable across
// SessionManager evictions but not across process restarts. Useful in
// tests and anywhere the interface is wanted without a disk footprint.
type MemoryStore struct {
	mu     sync.RWMutex
	m      map[string][]byte
	closed bool
}

// NewMemoryStore creates an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{m: make(map[string][]byte)}
}

// Put implements SessionStore.
func (s *MemoryStore) Put(id string, state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cp := make([]byte, len(state))
	copy(cp, state)
	s.m[id] = cp
	return nil
}

// Get implements SessionStore.
func (s *MemoryStore) Get(id string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	state, ok := s.m[id]
	if !ok {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(state))
	copy(cp, state)
	return cp, nil
}

// Delete implements SessionStore.
func (s *MemoryStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.m, id)
	return nil
}

// List implements SessionStore.
func (s *MemoryStore) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	ids := make([]string, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Close implements SessionStore. Idempotent.
func (s *MemoryStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
