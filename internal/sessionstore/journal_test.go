package sessionstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTestJournal(t *testing.T, path string, options ...JournalOption) *JournalStore {
	t.Helper()
	options = append([]JournalOption{WithSyncInterval(-1)}, options...)
	j, err := OpenJournal(path, options...)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalReopenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jnl")
	j := openTestJournal(t, path)
	if err := j.Put("s1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := j.Put("s2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := j.Put("s1", []byte("one-v2")); err != nil {
		t.Fatal(err)
	}
	if err := j.Delete("s2"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, path)
	got, err := j2.Get("s1")
	if err != nil || string(got) != "one-v2" {
		t.Fatalf("after reopen Get(s1) = %q, %v", got, err)
	}
	if _, err := j2.Get("s2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted session survived reopen: err = %v", err)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jnl")
	j := openTestJournal(t, path)
	if err := j.Put("s1", []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a full bogus record frame whose CRC
	// is wrong, then a half-written length prefix.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := encodeRecord(opPut, "s2", []byte("torn"))
	rec[len(rec)-1] ^= 0xff // corrupt the CRC
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize := fileSize(t, path)

	j2 := openTestJournal(t, path)
	if _, err := j2.Get("s2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn record resurrected: err = %v", err)
	}
	got, err := j2.Get("s1")
	if err != nil || string(got) != "good" {
		t.Fatalf("record before torn tail lost: %q, %v", got, err)
	}
	if sz := fileSize(t, path); sz >= tornSize {
		t.Fatalf("torn tail not truncated: size %d >= %d", sz, tornSize)
	}

	// And appends after the truncation are readable on yet another
	// reopen.
	if err := j2.Put("s3", []byte("after")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openTestJournal(t, path)
	if got, err := j3.Get("s3"); err != nil || string(got) != "after" {
		t.Fatalf("post-truncation append lost: %q, %v", got, err)
	}
}

func TestJournalBadHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jnl")
	if err := os.WriteFile(path, []byte("NOTAJOURNALFILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, WithSyncInterval(-1)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("OpenJournal on garbage = %v, want ErrBadFormat", err)
	}
}

func TestJournalCompactionShrinks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jnl")
	j := openTestJournal(t, path)
	payload := bytes.Repeat([]byte("x"), 1024)
	// Overwrite a handful of sessions many times: most of the journal
	// becomes dead bytes.
	for round := 0; round < 50; round++ {
		for s := 0; s < 4; s++ {
			if err := j.Put(fmt.Sprintf("s%d", s), payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Delete("s3"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	before := fileSize(t, path)

	j2 := openTestJournal(t, path, WithCompactMinWaste(1))
	if !j2.Compacted() {
		t.Fatal("open did not compact despite waste")
	}
	after := fileSize(t, path)
	if after >= before/4 {
		t.Fatalf("compaction barely shrank the journal: %d -> %d", before, after)
	}
	for s := 0; s < 3; s++ {
		got, err := j2.Get(fmt.Sprintf("s%d", s))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("session s%d lost in compaction: %v", s, err)
		}
	}
	if _, err := j2.Get("s3"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted session resurrected by compaction: err = %v", err)
	}

	// The compacted journal must itself reopen cleanly, and appends
	// after compaction must persist.
	if err := j2.Put("s9", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openTestJournal(t, path)
	if got, err := j3.Get("s9"); err != nil || string(got) != "fresh" {
		t.Fatalf("append after compaction lost: %q, %v", got, err)
	}
}

// TestJournalSharedBetweenStores models two replica processes sharing
// one journal path: writes by either handle must be visible to the
// other without reopening, and concurrent writers must not corrupt the
// file.
func TestJournalSharedBetweenStores(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jnl")
	a := openTestJournal(t, path)
	b := openTestJournal(t, path)

	if err := a.Put("owned-by-a", []byte("evidence-a")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("owned-by-a")
	if err != nil || string(got) != "evidence-a" {
		t.Fatalf("b cannot see a's write: %q, %v", got, err)
	}

	if err := b.Put("owned-by-a", []byte("evidence-b")); err != nil {
		t.Fatal(err)
	}
	got, err = a.Get("owned-by-a")
	if err != nil || string(got) != "evidence-b" {
		t.Fatalf("a cannot see b's overwrite: %q, %v", got, err)
	}

	if err := a.Delete("owned-by-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("owned-by-a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("b cannot see a's delete: err = %v", err)
	}

	// Hammer both handles concurrently; afterwards every session must
	// decode cleanly from a fresh open (no interleaved/corrupt bytes).
	var wg sync.WaitGroup
	for i, h := range []*JournalStore{a, b} {
		wg.Add(1)
		go func(i int, h *JournalStore) {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				id := fmt.Sprintf("w%d-%d", i, n%20)
				if err := h.Put(id, []byte(id+"-payload")); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, h)
	}
	wg.Wait()
	a.Close()
	b.Close()

	c := openTestJournal(t, path)
	ids, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 40 {
		t.Fatalf("after concurrent writes, %d sessions live, want 40", len(ids))
	}
	for _, id := range ids {
		got, err := c.Get(id)
		if err != nil || string(got) != id+"-payload" {
			t.Fatalf("session %s corrupted: %q, %v", id, got, err)
		}
	}
}

func TestJournalNoCompactionWhileShared(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jnl")
	a := openTestJournal(t, path)
	for round := 0; round < 50; round++ {
		if err := a.Put("s", bytes.Repeat([]byte("y"), 512)); err != nil {
			t.Fatal(err)
		}
	}
	// a still holds the journal open (shared lock): b must not compact
	// out from under it even with an aggressive threshold.
	b := openTestJournal(t, path, WithCompactMinWaste(1))
	if b.Compacted() {
		t.Fatal("compacted while another store held the journal")
	}
	if got, err := b.Get("s"); err != nil || len(got) != 512 {
		t.Fatalf("Get via shared opener: %d bytes, %v", len(got), err)
	}
}

func TestJournalFlushSyncsBatchedAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jnl")
	j := openTestJournal(t, path) // SyncInterval < 0: only Flush syncs
	if err := j.Put("s", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	dirty := j.dirty
	j.mu.Unlock()
	if dirty {
		t.Fatal("Flush left the journal dirty")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}
