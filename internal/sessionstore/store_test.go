package sessionstore

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// storeConformance exercises the SessionStore contract that both
// implementations must share.
func storeConformance(t *testing.T, s SessionStore) {
	t.Helper()

	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) err = %v, want ErrNotFound", err)
	}
	if err := s.Delete("missing"); err != nil {
		t.Fatalf("Delete(missing) = %v, want nil (idempotent)", err)
	}

	if err := s.Put("b", []byte("beta")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("a")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", got, err)
	}

	// Overwrite replaces.
	if err := s.Put("a", []byte("alpha2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	got, _ = s.Get("a")
	if string(got) != "alpha2" {
		t.Fatalf("Get after overwrite = %q", got)
	}

	// List is sorted.
	ids, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("List = %v, want %v", ids, want)
	}

	// Returned payloads are copies: mutating them must not corrupt
	// the store.
	got[0] = 'X'
	again, _ := s.Get("a")
	if string(again) != "alpha2" {
		t.Fatalf("store payload aliased by Get: %q", again)
	}

	// So are inputs.
	in := []byte("gamma")
	if err := s.Put("c", in); err != nil {
		t.Fatalf("Put: %v", err)
	}
	in[0] = 'X'
	got, _ = s.Get("c")
	if string(got) != "gamma" {
		t.Fatalf("store payload aliased by Put: %q", got)
	}

	if err := s.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete err = %v, want ErrNotFound", err)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if _, err := s.Get("b"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after close err = %v, want ErrClosed", err)
	}
	if err := s.Put("b", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close err = %v, want ErrClosed", err)
	}
}

func TestMemoryStoreConformance(t *testing.T) {
	storeConformance(t, NewMemoryStore())
}

func TestJournalStoreConformance(t *testing.T) {
	j, err := OpenJournal(t.TempDir()+"/sessions.jnl", WithSyncInterval(-1))
	if err != nil {
		t.Fatal(err)
	}
	storeConformance(t, j)
}

func TestMemoryStoreConcurrent(t *testing.T) {
	s := NewMemoryStore()
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("s%d-%d", w, i%10)
				if err := s.Put(id, []byte(id)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(id); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.List(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
