package trace

import (
	"net/http"

	"repro/internal/metrics"
)

// HTTPConfig wires the per-request tracing middleware one tier's HTTP
// server mounts in front of its route table.
type HTTPConfig struct {
	// Tier stamps every span this process creates ("router", "serve",
	// "segment").
	Tier string
	// Collector receives finished traces (ring + slow-query log +
	// per-stage histograms). Required.
	Collector *Collector
	// Skip reports request paths that should not be traced (health
	// probes, metrics scrapes, the trace ring itself). Skipped requests
	// still get request-ID propagation. Nil traces everything.
	Skip func(path string) bool
}

// HTTPMiddleware returns middleware implementing the tier-side half of
// the trace header contract:
//
//   - X-Request-Id: an inbound ID is honoured (never re-minted), so one
//     correlation ID survives router → serve → segment; absent, a fresh
//     ID is minted. The ID is always echoed on the response.
//   - X-IVR-Trace: every non-skipped request is traced into the
//     collector regardless; when the inbound header is RequestEcho ("1")
//     the finished span tree is additionally serialised into the same
//     response header, just before the response headers flush, so the
//     caller can graft this tier's server-side view under its own
//     client-side span.
//
// The request context carries the trace; handlers pick it up with
// StartSpan and it costs them one context lookup when the middleware is
// not mounted.
func HTTPMiddleware(cfg HTTPConfig) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(RequestIDHeader)
			if id == "" {
				id = NewID()
			}
			w.Header().Set(RequestIDHeader, id)
			if cfg.Skip != nil && cfg.Skip(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			t, root := New(id, cfg.Tier, r.Method+" "+r.URL.Path)
			rec := metrics.NewStatusRecorder(w)
			if r.Header.Get(Header) == RequestEcho {
				// The tree must reach the wire in the response headers,
				// which flush before the handler's body write returns —
				// hence the pre-flush hook, encoding a stamped snapshot
				// of the still-open tree.
				rec.SetBeforeWrite(func() {
					rec.Header().Set(Header, EncodeSpan(t.SnapshotRoot()))
				})
			}
			next.ServeHTTP(rec, r.WithContext(NewContext(r.Context(), t, root)))
			// Handlers that never write still owe the caller its echo.
			rec.FireBeforeWrite()
			cfg.Collector.Finish(t)
		})
	}
}
