// Package trace is the cross-tier query tracing subsystem: one
// correlation ID and one span tree covering a request's full path —
// router hop → serve middleware → session restore → expansion →
// query compilation → cache → per-backend scatter → merge → encode.
//
// Design constraints, in order:
//
//  1. Free when off. The engine hot path (search.Engine, the scoring
//     kernel) calls StartSpan on every query; when the context
//     carries no trace that must cost one context lookup and zero
//     allocations, so the PR 5 kernel numbers survive. All Span
//     methods are nil-receiver safe for the same reason — callers
//     never branch on "am I traced".
//  2. Safe under scatter. The merge tier starts one span per backend
//     from concurrent goroutines; all tree mutation is guarded by the
//     owning Trace's mutex.
//  3. Wire-portable. A finished (or in-flight) tree serialises to a
//     single JSON header value (X-IVR-Trace) so a downstream tier can
//     echo its timing to the tier that called it, which grafts the
//     remote tree under its own client-side span — the two views of
//     the same hop (client-observed vs server-observed) sit parent
//     and child, making network/queue time visible as the gap.
//
// Wire contract (see OBSERVABILITY.md): a request carrying
// "X-IVR-Trace: 1" asks the server to echo its span tree in the
// X-IVR-Trace response header; X-Request-Id is the correlation ID and
// is honoured (never re-minted) by every tier that receives one.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Header is the trace propagation header. On requests the value "1"
// asks the server to echo its span tree; on responses the value is
// the EncodeSpan-serialised tree.
const Header = "X-IVR-Trace"

// RequestIDHeader is the cross-tier correlation ID header. Tiers
// honour an inbound value and mint one only when absent.
const RequestIDHeader = "X-Request-Id"

// RequestEcho is the request-header value asking for a span-tree echo.
const RequestEcho = "1"

// Canonical tier names for the three processes a query crosses.
const (
	TierRouter  = "router"
	TierServe   = "serve"
	TierSegment = "segment"
)

// NewID mints a request/correlation ID: 8 random bytes, hex, "r"
// prefix (the same shape the webapi middleware has always used).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-fallback"
	}
	return "r" + hex.EncodeToString(b[:])
}

// Span is one timed operation in a trace tree. Exported fields are
// the wire schema; a Span decoded from a header has only those.
// Start/duration are microseconds since the Unix epoch — absolute, so
// spans from different processes order correctly modulo clock skew.
type Span struct {
	// Name labels the operation ("expand", "segment", "GET /api/v1/search").
	Name string `json:"name"`
	// Tier marks process roots ("router", "serve", "segment"); empty
	// on interior spans.
	Tier string `json:"tier,omitempty"`
	// StartUS is the span start, microseconds since the Unix epoch.
	StartUS int64 `json:"start_us"`
	// DurUS is the span duration in microseconds (0 while open).
	DurUS int64 `json:"dur_us"`
	// Attrs carries small key=value annotations (backend addr, cache
	// hit, replica).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Children are sub-operations, in start order.
	Children []*Span `json:"children,omitempty"`

	// start is the live-side monotonic clock; zero on decoded spans.
	start time.Time
	// t owns the tree lock; nil on decoded/detached spans, whose
	// mutators fall back to unsynchronised access (single-owner).
	t *Trace
}

// Trace is one request's span tree under construction.
type Trace struct {
	// ID is the correlation ID (the X-Request-Id value).
	ID string
	// Tier names the process that started this trace.
	Tier string

	mu   sync.Mutex
	root *Span
}

// New starts a trace rooted at rootName and returns it with the open
// root span.
func New(id, tier, rootName string) (*Trace, *Span) {
	t := &Trace{ID: id, Tier: tier}
	now := time.Now()
	t.root = &Span{
		Name:    rootName,
		Tier:    tier,
		StartUS: now.UnixMicro(),
		start:   now,
		t:       t,
	}
	return t, t.root
}

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// End closes the span, stamping its duration. Ending an already-ended
// or nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.t != nil {
		s.t.mu.Lock()
		defer s.t.mu.Unlock()
	}
	if s.DurUS == 0 && !s.start.IsZero() {
		s.DurUS = time.Since(s.start).Microseconds()
		if s.DurUS == 0 {
			s.DurUS = 1 // sub-microsecond spans still read as closed
		}
	}
}

// SetAttr annotates the span. Nil-safe.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.t != nil {
		s.t.mu.Lock()
		defer s.t.mu.Unlock()
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 2)
	}
	s.Attrs[k] = v
}

// Graft attaches a detached span tree (typically decoded from a
// downstream tier's X-IVR-Trace echo) as a child of s. Nil-safe on
// both sides.
func (s *Span) Graft(child *Span) {
	if s == nil || child == nil {
		return
	}
	if s.t != nil {
		s.t.mu.Lock()
		defer s.t.mu.Unlock()
	}
	s.Children = append(s.Children, child)
}

// newChild appends an open child span. Caller must hold t.mu when t
// is non-nil.
func (s *Span) newChild(name string) *Span {
	now := time.Now()
	c := &Span{Name: name, StartUS: now.UnixMicro(), start: now, t: s.t}
	s.Children = append(s.Children, c)
	return c
}

// ctxKey is the single context key; the value bundles trace and
// current span so the untraced fast path costs one Value lookup.
type ctxKey struct{}

type ctxVal struct {
	t *Trace
	s *Span
}

// NewContext returns ctx carrying t with s as the current span.
func NewContext(ctx context.Context, t *Trace, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, &ctxVal{t: t, s: s})
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if v, ok := ctx.Value(ctxKey{}).(*ctxVal); ok {
		return v.t
	}
	return nil
}

// SpanFromContext returns the current span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if v, ok := ctx.Value(ctxKey{}).(*ctxVal); ok {
		return v.s
	}
	return nil
}

// StartSpan opens a child of ctx's current span and returns a context
// with the child current. When ctx carries no trace it returns
// (ctx, nil) without allocating — the zero-cost untraced path; the
// nil *Span accepts End/SetAttr/Graft as no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	v, ok := ctx.Value(ctxKey{}).(*ctxVal)
	if !ok {
		return ctx, nil
	}
	v.t.mu.Lock()
	c := v.s.newChild(name)
	v.t.mu.Unlock()
	return context.WithValue(ctx, ctxKey{}, &ctxVal{t: v.t, s: c}), c
}

// SnapshotRoot deep-copies the tree, stamping still-open spans with
// their duration so far. Needed because the X-IVR-Trace echo header
// must be written before the handler's final spans close.
func (t *Trace) SnapshotRoot() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	return snapshotSpan(t.root, now)
}

func snapshotSpan(s *Span, now time.Time) *Span {
	c := &Span{
		Name:    s.Name,
		Tier:    s.Tier,
		StartUS: s.StartUS,
		DurUS:   s.DurUS,
	}
	if c.DurUS == 0 && !s.start.IsZero() {
		c.DurUS = now.Sub(s.start).Microseconds()
	}
	if len(s.Attrs) > 0 {
		c.Attrs = make(map[string]string, len(s.Attrs))
		for k, v := range s.Attrs {
			c.Attrs[k] = v
		}
	}
	if len(s.Children) > 0 {
		c.Children = make([]*Span, len(s.Children))
		for i, ch := range s.Children {
			c.Children[i] = snapshotSpan(ch, now)
		}
	}
	return c
}

// maxEncodedSpan bounds the header value EncodeSpan emits; a tree
// past the cap is re-encoded without children rather than truncated
// into invalid JSON.
const maxEncodedSpan = 32 * 1024

// EncodeSpan serialises a span tree to a single-line JSON string
// suitable for an HTTP header value.
func EncodeSpan(s *Span) string {
	if s == nil {
		return ""
	}
	data, err := json.Marshal(s)
	if err != nil {
		return ""
	}
	if len(data) > maxEncodedSpan {
		top := *s
		top.Children = nil
		top.SetAttr("truncated", "1")
		data, err = json.Marshal(&top)
		if err != nil {
			return ""
		}
	}
	return string(data)
}

// DecodeSpan parses an EncodeSpan value back into a detached tree.
func DecodeSpan(v string) (*Span, error) {
	if v == "" || v == RequestEcho {
		return nil, fmt.Errorf("trace: no span tree in header value %q", v)
	}
	var s Span
	if err := json.Unmarshal([]byte(v), &s); err != nil {
		return nil, fmt.Errorf("trace: decode span: %w", err)
	}
	return &s, nil
}

// FormatTree renders a span tree as an indented text block, one span
// per line: name, sorted attrs, duration, and the child's start
// offset from its parent.
func FormatTree(s *Span) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	formatSpan(&b, s, 0, s.StartUS)
	return b.String()
}

func formatSpan(b *strings.Builder, s *Span, depth int, parentStartUS int64) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if s.Tier != "" {
		fmt.Fprintf(b, "[%s] ", s.Tier)
	}
	b.WriteString(s.Name)
	for _, k := range sortedKeys(s.Attrs) {
		fmt.Fprintf(b, " %s=%s", k, s.Attrs[k])
	}
	fmt.Fprintf(b, "  %.3fms", float64(s.DurUS)/1000)
	if off := s.StartUS - parentStartUS; off > 0 && depth > 0 {
		fmt.Fprintf(b, " (+%.3fms)", float64(off)/1000)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		formatSpan(b, c, depth+1, s.StartUS)
	}
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; attr maps are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
