package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Entry is one finished trace as kept in the ring buffer and served
// by the debug/traces endpoints.
type Entry struct {
	// ID is the correlation ID.
	ID string `json:"id"`
	// Tier is the collecting process's tier.
	Tier string `json:"tier"`
	// Time is the completion wall-clock time.
	Time time.Time `json:"time"`
	// DurationMS is the root span's duration.
	DurationMS float64 `json:"duration_ms"`
	// Root is the full span tree (downstream grafts included).
	Root *Span `json:"root"`
}

// Ring is a fixed-size buffer of the most recent finished traces.
type Ring struct {
	mu   sync.Mutex
	buf  []*Entry
	next int
	n    int
}

// NewRing sizes a ring (n <= 0 defaults to 128).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 128
	}
	return &Ring{buf: make([]*Entry, n)}
}

// Add records one finished trace, evicting the oldest past capacity.
func (r *Ring) Add(e *Entry) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered traces, newest first.
func (r *Ring) Snapshot() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Entry, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// StageSummary is one span name's duration distribution, fed from
// every finished trace this process collected. The serve tier surfaces
// these through retrieval.Snapshot as the per-stage latency block.
type StageSummary struct {
	Stage   string                 `json:"stage"`
	Count   uint64                 `json:"count"`
	Latency metrics.LatencySummary `json:"latency"`
}

// CollectorConfig parameterises a Collector.
type CollectorConfig struct {
	// Tier names this process ("router", "serve", "segment").
	Tier string
	// RingSize bounds the finished-trace ring (<= 0: 128).
	RingSize int
	// SlowThreshold emits any trace at least this slow to SlowWriter
	// as one structured-JSON line (0 disables the slow-query log).
	SlowThreshold time.Duration
	// SlowWriter receives slow-query lines (nil: os.Stderr).
	SlowWriter io.Writer
}

// Collector owns a process's finished traces: the debug ring, the
// slow-query log, and the per-stage duration histograms.
type Collector struct {
	tier string
	ring *Ring
	slow time.Duration

	logMu sync.Mutex
	logW  io.Writer

	stagesMu sync.RWMutex
	stages   map[string]*metrics.Histogram
}

// NewCollector builds a collector from cfg.
func NewCollector(cfg CollectorConfig) *Collector {
	w := cfg.SlowWriter
	if w == nil {
		w = os.Stderr
	}
	return &Collector{
		tier:   cfg.Tier,
		ring:   NewRing(cfg.RingSize),
		slow:   cfg.SlowThreshold,
		logW:   w,
		stages: make(map[string]*metrics.Histogram),
	}
}

// Finish closes t's root if still open, snapshots the tree, and files
// it: ring, stage histograms, and — past the slow threshold — the
// slow-query log. Nil-safe on both receiver and trace, so callers
// need no "is tracing on" branches.
func (c *Collector) Finish(t *Trace) {
	if c == nil || t == nil {
		return
	}
	t.root.End()
	root := t.SnapshotRoot()
	e := &Entry{
		ID:         t.ID,
		Tier:       c.tier,
		Time:       time.Now(),
		DurationMS: float64(root.DurUS) / 1000,
		Root:       root,
	}
	c.ring.Add(e)
	c.recordStages(root, true)
	if c.slow > 0 && time.Duration(root.DurUS)*time.Microsecond >= c.slow {
		c.logSlow(e)
	}
}

// recordStages walks the local tree feeding per-span-name duration
// histograms. The root is skipped (route-level latency already lives
// in the metrics registry) and so are grafted remote subtrees — a
// span carrying a foreign Tier and everything under it belongs to the
// tier that measured it.
func (c *Collector) recordStages(s *Span, isRoot bool) {
	if !isRoot {
		if s.Tier != "" && s.Tier != c.tier {
			return
		}
		c.stage(s.Name).Observe(time.Duration(s.DurUS) * time.Microsecond)
	}
	for _, ch := range s.Children {
		c.recordStages(ch, false)
	}
}

func (c *Collector) stage(name string) *metrics.Histogram {
	c.stagesMu.RLock()
	h := c.stages[name]
	c.stagesMu.RUnlock()
	if h != nil {
		return h
	}
	c.stagesMu.Lock()
	defer c.stagesMu.Unlock()
	if h = c.stages[name]; h == nil {
		h = &metrics.Histogram{}
		c.stages[name] = h
	}
	return h
}

// slowLine is the slow-query log record: one JSON object per line on
// SlowWriter (stderr by default), greppable by request_id.
type slowLine struct {
	SlowQuery  bool    `json:"slow_query"`
	RequestID  string  `json:"request_id"`
	Tier       string  `json:"tier"`
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	Trace      *Span   `json:"trace"`
}

func (c *Collector) logSlow(e *Entry) {
	line, err := json.Marshal(slowLine{
		SlowQuery:  true,
		RequestID:  e.ID,
		Tier:       e.Tier,
		Name:       e.Root.Name,
		DurationMS: e.DurationMS,
		Trace:      e.Root,
	})
	if err != nil {
		return
	}
	c.logMu.Lock()
	c.logW.Write(append(line, '\n'))
	c.logMu.Unlock()
}

// Traces returns the ring contents, newest first. Nil-safe.
func (c *Collector) Traces() []*Entry {
	if c == nil {
		return nil
	}
	return c.ring.Snapshot()
}

// StageSummaries returns the per-stage duration distributions, sorted
// by stage name. Nil-safe.
func (c *Collector) StageSummaries() []StageSummary {
	if c == nil {
		return nil
	}
	c.stagesMu.RLock()
	out := make([]StageSummary, 0, len(c.stages))
	for name, h := range c.stages {
		s := h.Summary()
		out = append(out, StageSummary{Stage: name, Count: s.Count, Latency: s})
	}
	c.stagesMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}
