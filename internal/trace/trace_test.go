package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestUntracedContextIsFreeAndNilSafe(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatalf("StartSpan on untraced ctx returned a span")
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan on untraced ctx returned a new context")
	}
	// All nil-span mutators must be no-ops, not panics.
	sp.End()
	sp.SetAttr("k", "v")
	sp.Graft(&Span{Name: "x"})
	if FromContext(ctx) != nil || SpanFromContext(ctx) != nil {
		t.Fatalf("untraced ctx claims a trace")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c, s := StartSpan(ctx, "hot")
		_ = c
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("untraced StartSpan allocates: %v allocs/op", allocs)
	}
}

func TestSpanTreeShape(t *testing.T) {
	tr, root := New("r1", "serve", "GET /api/v1/search")
	ctx := NewContext(context.Background(), tr, root)
	if FromContext(ctx) != tr || SpanFromContext(ctx) != root {
		t.Fatalf("context round-trip lost trace/span")
	}
	ctx1, expand := StartSpan(ctx, "expand")
	expand.SetAttr("terms", "5")
	expand.End()
	// Sibling started from the original ctx, child from ctx1's scope.
	_, inner := StartSpan(ctx1, "inner")
	inner.End()
	_, merge := StartSpan(ctx, "merge")
	merge.End()
	root.End()

	if tr.Root() != root {
		t.Fatalf("root mismatch")
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	if root.Children[0].Name != "expand" || root.Children[1].Name != "merge" {
		t.Fatalf("children = %q,%q", root.Children[0].Name, root.Children[1].Name)
	}
	if len(root.Children[0].Children) != 1 || root.Children[0].Children[0].Name != "inner" {
		t.Fatalf("expand's child missing")
	}
	if root.Children[0].Attrs["terms"] != "5" {
		t.Fatalf("attr lost")
	}
	if root.DurUS <= 0 {
		t.Fatalf("ended root has DurUS %d", root.DurUS)
	}
}

func TestConcurrentSpansUnderOneParent(t *testing.T) {
	tr, root := New("r2", "serve", "scatter")
	ctx := NewContext(context.Background(), tr, root)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "segment")
			sp.SetAttr("k", "v")
			sp.Graft(&Span{Name: "remote", Tier: "segment", DurUS: 5})
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if len(root.Children) != 32 {
		t.Fatalf("children = %d, want 32", len(root.Children))
	}
	for _, c := range root.Children {
		if len(c.Children) != 1 || c.Children[0].Tier != "segment" {
			t.Fatalf("graft lost on %+v", c)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr, root := New("r3", "segment", "POST /rpc/v1/search")
	ctx := NewContext(context.Background(), tr, root)
	_, sp := StartSpan(ctx, "score")
	sp.SetAttr("segment", "2")
	sp.End()
	root.End()

	enc := EncodeSpan(tr.SnapshotRoot())
	if enc == "" {
		t.Fatalf("empty encoding")
	}
	if strings.ContainsAny(enc, "\r\n") {
		t.Fatalf("header value contains newline: %q", enc)
	}
	dec, err := DecodeSpan(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != "POST /rpc/v1/search" || dec.Tier != "segment" {
		t.Fatalf("decoded root %+v", dec)
	}
	if len(dec.Children) != 1 || dec.Children[0].Attrs["segment"] != "2" {
		t.Fatalf("decoded children %+v", dec.Children)
	}
	if dec.DurUS <= 0 || dec.Children[0].DurUS <= 0 {
		t.Fatalf("durations lost: %d / %d", dec.DurUS, dec.Children[0].DurUS)
	}
	// The echo-request sentinel and garbage both fail cleanly.
	if _, err := DecodeSpan(RequestEcho); err == nil {
		t.Fatalf("decoded the request sentinel")
	}
	if _, err := DecodeSpan("{nope"); err == nil {
		t.Fatalf("decoded garbage")
	}
}

func TestEncodeSpanCapsOversizedTrees(t *testing.T) {
	root := &Span{Name: "root", DurUS: 10}
	for i := 0; i < 4000; i++ {
		root.Children = append(root.Children, &Span{
			Name:  "child-with-a-reasonably-long-name",
			Attrs: map[string]string{"backend": "http://segment-host:18091"},
		})
	}
	enc := EncodeSpan(root)
	if len(enc) > maxEncodedSpan {
		t.Fatalf("encoded size %d past cap %d", len(enc), maxEncodedSpan)
	}
	dec, err := DecodeSpan(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Children) != 0 || dec.Attrs["truncated"] != "1" {
		t.Fatalf("oversized tree not truncated-and-marked: %+v", dec)
	}
}

func TestSnapshotStampsOpenSpans(t *testing.T) {
	tr, root := New("r4", "serve", "slow")
	ctx := NewContext(context.Background(), tr, root)
	_, open := StartSpan(ctx, "still-running")
	time.Sleep(2 * time.Millisecond)
	snap := tr.SnapshotRoot()
	if snap.DurUS <= 0 {
		t.Fatalf("open root not stamped in snapshot")
	}
	if len(snap.Children) != 1 || snap.Children[0].DurUS <= 0 {
		t.Fatalf("open child not stamped: %+v", snap.Children)
	}
	// The live spans stay open: snapshot must not end them.
	if root.DurUS != 0 || open.DurUS != 0 {
		t.Fatalf("snapshot ended live spans")
	}
	open.End()
	root.End()
}

func TestCollectorRingSlowLogAndStages(t *testing.T) {
	var slow bytes.Buffer
	c := NewCollector(CollectorConfig{
		Tier:          "serve",
		RingSize:      2,
		SlowThreshold: time.Microsecond,
		SlowWriter:    &slow,
	})
	finishOne := func(id string) {
		tr, root := New(id, "serve", "GET /api/v1/search")
		ctx := NewContext(context.Background(), tr, root)
		_, sp := StartSpan(ctx, "expand")
		time.Sleep(time.Millisecond)
		sp.End()
		// A grafted remote subtree must not pollute serve's stages.
		root.Graft(&Span{Name: "score", Tier: "segment", DurUS: 900})
		c.Finish(tr)
	}
	for _, id := range []string{"ra", "rb", "rc"} {
		finishOne(id)
	}

	got := c.Traces()
	if len(got) != 2 {
		t.Fatalf("ring kept %d, want 2", len(got))
	}
	if got[0].ID != "rc" || got[1].ID != "rb" {
		t.Fatalf("ring order %q,%q; want rc,rb (newest first)", got[0].ID, got[1].ID)
	}
	if got[0].DurationMS <= 0 || got[0].Root == nil {
		t.Fatalf("ring entry unfinished: %+v", got[0])
	}

	stages := c.StageSummaries()
	if len(stages) != 1 || stages[0].Stage != "expand" {
		t.Fatalf("stages = %+v, want only expand (remote tier skipped)", stages)
	}
	if stages[0].Count != 3 || stages[0].Latency.P50MS <= 0 {
		t.Fatalf("expand stage %+v", stages[0])
	}

	lines := strings.Split(strings.TrimSpace(slow.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("slow log has %d lines, want 3:\n%s", len(lines), slow.String())
	}
	var rec struct {
		SlowQuery  bool    `json:"slow_query"`
		RequestID  string  `json:"request_id"`
		Tier       string  `json:"tier"`
		DurationMS float64 `json:"duration_ms"`
		Trace      *Span   `json:"trace"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatalf("slow line not JSON: %v\n%s", err, lines[2])
	}
	if !rec.SlowQuery || rec.RequestID != "rc" || rec.Tier != "serve" || rec.Trace == nil {
		t.Fatalf("slow line %+v", rec)
	}

	// Nil collector and nil trace are safe.
	var nilC *Collector
	nilC.Finish(nil)
	if nilC.Traces() != nil || nilC.StageSummaries() != nil {
		t.Fatalf("nil collector returned data")
	}
	c.Finish(nil)
}

func TestFormatTree(t *testing.T) {
	root := &Span{
		Name: "GET /api/v1/search", Tier: "router", StartUS: 1000, DurUS: 12000,
		Children: []*Span{{
			Name: "proxy", StartUS: 1500, DurUS: 11000,
			Attrs: map[string]string{"replica": "http://r1"},
			Children: []*Span{{
				Name: "GET /api/v1/search", Tier: "serve", StartUS: 2000, DurUS: 10000,
			}},
		}},
	}
	out := FormatTree(root)
	want := []string{
		"[router] GET /api/v1/search  12.000ms",
		"  proxy replica=http://r1  11.000ms (+0.500ms)",
		"    [serve] GET /api/v1/search  10.000ms (+0.500ms)",
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("FormatTree lines:\n%s", out)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d:\n got %q\nwant %q", i, lines[i], want[i])
		}
	}
	if FormatTree(nil) != "" {
		t.Fatalf("nil tree formatted non-empty")
	}
}

func TestNewIDShape(t *testing.T) {
	a, b := NewID(), NewID()
	if a == b {
		t.Fatalf("two IDs collided: %q", a)
	}
	if len(a) != 17 || a[0] != 'r' {
		t.Fatalf("ID shape %q", a)
	}
}
