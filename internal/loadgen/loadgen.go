// Package loadgen drives simulated user studies against a remote
// retrieval server over HTTP — the scale test of the /api/v1 contract.
// Where internal/simulation runs stereotype users against an
// in-process core.System, loadgen replays the same per-iteration
// behaviour policy (simulation.Policy) through the typed
// internal/client SDK: a worker pool of N virtual users, each running
// the create-session → search → send-events → shot-view loop.
//
// Two pacing disciplines are supported:
//
//   - closed-loop (the default): each virtual user starts its next
//     session as soon as the previous one finishes, with optional
//     think-time pauses between query iterations — a fixed-concurrency
//     saturation test;
//   - open-loop: sessions arrive at a fixed rate regardless of how
//     fast the server answers; arrivals that find every worker busy
//     and the backlog full are counted as dropped rather than
//     silently degrading into closed-loop pacing.
//
// Telemetry is collected lock-free: every worker owns a histogram
// shard per endpoint (internal/metrics.Histogram), merged into one
// Report after the run, so a thousand workers never contend on a
// collector mutex. The Report's per-endpoint request totals are
// directly comparable to the server's /api/v1/metrics counters.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/ilog"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// Endpoint labels used in reports; chosen to mirror the server's
// route table one-to-one.
const (
	EndpointCreateSession = "create_session"
	EndpointSearch        = "search"
	EndpointEvents        = "events"
	EndpointShot          = "shot"
	EndpointDeleteSession = "delete_session"
)

// Pacing selects the arrival discipline of the load.
type Pacing string

const (
	// PacingClosed: each worker starts a new session as soon as its
	// previous one completes (think time applies within sessions).
	PacingClosed Pacing = "closed"
	// PacingOpen: sessions arrive at Config.Rate per second,
	// independent of completions.
	PacingOpen Pacing = "open"
)

// Query is one entry of the workload's query pool.
type Query struct {
	// Text is the short query issued first.
	Text string
	// Verbose optionally provides the reformulation target.
	Verbose string
	// TopicID stamps events (-1 when the query has no evaluation
	// topic).
	TopicID int
	// Relevant optionally carries ground-truth relevance by shot ID;
	// when nil, the virtual user samples its relevance belief at
	// Config.RelevanceRate.
	Relevant map[string]bool
}

// Config parameterises a load run.
type Config struct {
	// Client is the SDK handle to the target server. Required unless
	// Clients is set.
	Client *client.Client
	// Clients optionally spreads virtual users round-robin over
	// several equivalent endpoints — e.g. the replicas of a front tier
	// driven directly, or several ivrroute instances. When set, Client
	// may be nil; when both are set, Client is ignored.
	Clients []*client.Client
	// Users is the number of concurrent virtual users (default 1).
	Users int
	// Sessions is the total number of sessions to run (0 = unbounded;
	// bound the run with Duration or the context instead).
	Sessions int
	// Iterations is the number of query iterations per session
	// (default 3).
	Iterations int
	// Pacing selects the arrival discipline (default PacingClosed).
	Pacing Pacing
	// Rate is the open-loop session arrival rate per second (required
	// when Pacing is PacingOpen).
	Rate float64
	// ThinkTime is the mean pause between query iterations (0 = no
	// pauses; jittered ±50% per pause).
	ThinkTime time.Duration
	// RampUp staggers worker starts across this window, so a run
	// doesn't hit the server with Users simultaneous session creates.
	RampUp time.Duration
	// Duration bounds the run's wall clock (0 = until Sessions are
	// done or the context is cancelled).
	Duration time.Duration
	// PageLimit is the search page size requested per iteration
	// (default 20).
	PageLimit int
	// Seed fixes the behaviour streams (per-worker streams derive
	// from it).
	Seed int64
	// Stereotypes are assigned round-robin to virtual users (default:
	// the built-in population).
	Stereotypes []simulation.Stereotype
	// Iface is the interaction-environment model (default
	// ui.Desktop()).
	Iface *ui.Interface
	// Queries is the workload's query pool. Required.
	Queries []Query
	// RelevanceRate is the probability a result is believed relevant
	// when its query carries no ground truth (default 0.2).
	RelevanceRate float64
	// FetchShots also fetches GET /shots/{id} for every clicked
	// result, as a front-end rendering a player would.
	FetchShots bool
	// TraceSample asks the server to echo its span tree for every Nth
	// search across the whole pool (0 = off). Sampled trees land in
	// Report.TraceSamples, capped at maxTraceSamples, so a long run
	// keeps representative traces without unbounded memory.
	TraceSample int
}

// Driver runs one configured workload. Create with New; a Driver is
// single-use per Run call but Run may be called again for a fresh
// measurement.
type Driver struct {
	cfg Config
}

// New validates a config and applies defaults.
func New(cfg Config) (*Driver, error) {
	if len(cfg.Clients) == 0 {
		if cfg.Client == nil {
			return nil, fmt.Errorf("loadgen: nil client")
		}
		cfg.Clients = []*client.Client{cfg.Client}
	}
	for _, c := range cfg.Clients {
		if c == nil {
			return nil, fmt.Errorf("loadgen: nil client in Clients")
		}
	}
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: empty query pool")
	}
	if cfg.Users <= 0 {
		cfg.Users = 1
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 3
	}
	if cfg.PageLimit <= 0 {
		cfg.PageLimit = 20
	}
	if cfg.Pacing == "" {
		cfg.Pacing = PacingClosed
	}
	switch cfg.Pacing {
	case PacingClosed:
	case PacingOpen:
		if cfg.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: open-loop pacing needs a positive Rate")
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown pacing %q", cfg.Pacing)
	}
	if cfg.Sessions < 0 || cfg.ThinkTime < 0 || cfg.RampUp < 0 || cfg.Duration < 0 {
		return nil, fmt.Errorf("loadgen: negative config value")
	}
	if cfg.Sessions == 0 && cfg.Duration == 0 {
		return nil, fmt.Errorf("loadgen: unbounded run; set Sessions or Duration")
	}
	if len(cfg.Stereotypes) == 0 {
		cfg.Stereotypes = simulation.Stereotypes()
	}
	for _, st := range cfg.Stereotypes {
		if err := st.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.Iface == nil {
		cfg.Iface = ui.Desktop()
	}
	if err := cfg.Iface.Validate(); err != nil {
		return nil, err
	}
	if cfg.RelevanceRate == 0 {
		cfg.RelevanceRate = 0.2
	}
	if cfg.RelevanceRate < 0 || cfg.RelevanceRate > 1 {
		return nil, fmt.Errorf("loadgen: RelevanceRate %v outside [0,1]", cfg.RelevanceRate)
	}
	if cfg.TraceSample < 0 {
		return nil, fmt.Errorf("loadgen: negative TraceSample")
	}
	return &Driver{cfg: cfg}, nil
}

// worker is one virtual user: its own behaviour PRNG, policy, and
// telemetry shard — nothing shared on the hot path.
type worker struct {
	id  int
	cfg *Config
	// c is this worker's endpoint (Config.Clients round-robin by
	// worker, so one virtual user keeps talking to one place).
	c   *client.Client
	pol simulation.Policy
	rng *rand.Rand
	col *shardCollector
	// traceSeq is the pool-wide search counter backing TraceSample:
	// shared across workers so "every Nth search" means the Nth of the
	// whole run, not of one virtual user. Nil when sampling is off.
	traceSeq *atomic.Int64
}

// traceSampled claims the next pool-wide search ordinal and reports
// whether this search should carry the trace-echo request.
func (w *worker) traceSampled() bool {
	if w.traceSeq == nil {
		return false
	}
	return (w.traceSeq.Add(1)-1)%int64(w.cfg.TraceSample) == 0
}

// Run executes the workload until the session budget, Duration, or
// ctx expires, and returns the merged report. Individual session
// failures (server errors, timeouts) are recorded in the report, not
// returned; Run errors only on setup problems or full cancellation
// before any work.
func (d *Driver) Run(ctx context.Context) (*Report, error) {
	cfg := d.cfg
	shards, elapsed, dropped := runPool(ctx, &cfg, func(ctx context.Context, w *worker, _ int) {
		w.runSession(ctx)
	})
	rep := buildReport(&cfg, shards, elapsed)
	rep.DroppedArrivals = dropped
	return rep, nil
}

// runPool runs the worker pool with the configured pacing and
// ramp-up, returning the per-worker telemetry shards, the measured
// wall clock, and the open-loop dropped-arrival count.
func runPool(ctx context.Context, cfg *Config, work func(context.Context, *worker, int)) ([]*shardCollector, time.Duration, int64) {
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}
	workers := make([]*worker, cfg.Users)
	shards := make([]*shardCollector, cfg.Users)
	var traceSeq *atomic.Int64
	if cfg.TraceSample > 0 {
		traceSeq = new(atomic.Int64)
	}
	for i := range workers {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		shards[i] = newShardCollector()
		workers[i] = &worker{
			id:  i,
			cfg: cfg,
			c:   cfg.Clients[i%len(cfg.Clients)],
			pol: simulation.Policy{
				Stereotype: cfg.Stereotypes[i%len(cfg.Stereotypes)],
				Iface:      cfg.Iface,
				Rand:       rng,
			},
			rng:      rng,
			col:      shards[i],
			traceSeq: traceSeq,
		}
	}

	// Session sequence dispensing: closed-loop claims from a counter,
	// open-loop receives timed arrivals (dropping when the backlog is
	// full, so the arrival process stays open).
	var next atomic.Int64
	var droppedN atomic.Int64
	var tokens chan int
	if cfg.Pacing == PacingOpen {
		tokens = make(chan int, cfg.Users*8)
		go func() {
			defer close(tokens)
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			if interval <= 0 {
				interval = time.Microsecond
			}
			tick := time.NewTicker(interval)
			defer tick.Stop()
			seq := 0
			for cfg.Sessions == 0 || seq < cfg.Sessions {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- seq:
					default:
						droppedN.Add(1)
					}
					seq++
				}
			}
		}()
	}
	claim := func() (int, bool) {
		if tokens != nil {
			select {
			case <-ctx.Done():
				return 0, false
			case seq, ok := <-tokens:
				return seq, ok
			}
		}
		seq := int(next.Add(1) - 1)
		if cfg.Sessions > 0 && seq >= cfg.Sessions {
			return 0, false
		}
		return seq, ctx.Err() == nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			// Ramp-up: stagger worker starts across the window.
			if cfg.RampUp > 0 && cfg.Users > 1 {
				delay := cfg.RampUp * time.Duration(w.id) / time.Duration(cfg.Users)
				select {
				case <-ctx.Done():
					return
				case <-time.After(delay):
				}
			}
			for {
				seq, ok := claim()
				if !ok {
					return
				}
				work(ctx, w, seq)
			}
		}(w)
	}
	wg.Wait()
	return shards, time.Since(start), droppedN.Load()
}

// runSession drives one generic-traffic session: a random query from
// the pool, behaviour from the worker's stereotype.
func (w *worker) runSession(ctx context.Context) {
	cfg := w.cfg
	q := cfg.Queries[w.rng.Intn(len(cfg.Queries))]
	w.driveSession(ctx, &sessionSpec{
		req:     client.CreateSessionRequest{UserID: fmt.Sprintf("vu%03d", w.id)},
		pol:     w.pol,
		topicID: q.TopicID,
		short:   q.Text,
		verbose: q.Verbose,
		relevant: func(shotID string) bool {
			if q.Relevant != nil {
				return q.Relevant[shotID]
			}
			return w.rng.Float64() < cfg.RelevanceRate
		},
	})
}

// sessionSpec parameterises one session for driveSession: the study
// path and the generic traffic path differ only in where queries,
// relevance, and result recording come from.
type sessionSpec struct {
	req     client.CreateSessionRequest
	pol     simulation.Policy
	topicID int
	// short/verbose are the session's query and its reformulation
	// target.
	short, verbose string
	// relevant reports the user's (ground-truth or sampled) relevance
	// belief for a result.
	relevant func(shotID string) bool
	// keepEvents retains the emitted event log on the outcome.
	keepEvents bool
	// onPage observes each iteration's fetched page (the study path
	// evaluates rankings here).
	onPage func(it int, page *client.SearchPage)
}

// sessionOutcome reports one driven session.
type sessionOutcome struct {
	sessionID    string
	events       []ilog.Event
	distinctSeen int
	// err is the first failure; aborted marks failures caused by
	// context cancellation (run deadline, Ctrl-C) rather than the
	// server.
	err     error
	aborted bool
}

// driveSession runs one full virtual-user session — create → N ×
// (search → examine → events [→ shot views]) → delete — timing every
// SDK call into the worker's telemetry shard.
func (w *worker) driveSession(ctx context.Context, spec *sessionSpec) *sessionOutcome {
	cfg := w.cfg
	out := &sessionOutcome{}
	fail := func(err error) *sessionOutcome {
		out.err = err
		out.aborted = ctx.Err() != nil
		if out.aborted {
			w.col.sessionsAborted++
		} else {
			w.col.sessionsFailed++
		}
		return out
	}
	err := w.col.timed(EndpointCreateSession, func() error {
		var err error
		out.sessionID, err = w.c.CreateSession(ctx, spec.req)
		return err
	})
	if err != nil {
		return fail(err)
	}
	defer func() {
		// Always end the session server-side, even after a failure or
		// cancellation: a leaked session would skew the server's live
		// gauge. The delete runs on a detached context so the run
		// deadline expiring does not turn cleanup into a failure.
		dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
		defer cancel()
		delErr := w.col.timed(EndpointDeleteSession, func() error {
			return w.c.DeleteSession(dctx, out.sessionID)
		})
		switch {
		case out.err != nil:
		case delErr != nil:
			out.err = delErr
			w.col.sessionsFailed++
		default:
			w.col.sessions++
		}
	}()

	budget := cfg.Iface.SessionBudget
	seen := map[string]bool{}
	queryText := spec.short
	for it := 0; it < cfg.Iterations; it++ {
		if ctx.Err() != nil {
			return fail(ctx.Err())
		}
		queryText = spec.pol.Reformulate(it, queryText, spec.short, spec.verbose)
		qCost := cfg.Iface.QueryCost(len(queryText))
		if budget < qCost {
			break
		}
		budget -= qCost

		sampled := w.traceSampled()
		var page *client.SearchPage
		err := w.col.timed(EndpointSearch, func() error {
			var err error
			page, err = w.c.Search(ctx, client.SearchRequest{
				SessionID: out.sessionID, Query: queryText, Limit: cfg.PageLimit,
				Trace: sampled,
			})
			return err
		})
		if err != nil {
			return fail(err)
		}
		if sampled && page.Trace != nil {
			w.col.addTrace(TraceSample{
				Query:      queryText,
				RequestID:  page.RequestID,
				DurationMS: float64(page.Trace.DurUS) / 1e3,
				Root:       page.Trace,
			})
		}
		w.col.iterations++
		if page.Partial {
			w.col.partials++
		}
		if spec.onPage != nil {
			spec.onPage(it, page)
		}

		// Replay the stereotype's examination of the page, batching
		// the resulting events (the query event leads the batch, as
		// in the in-process simulator's log). Views stop at the
		// stereotype's patience — the policy never looks further.
		events := []ilog.Event{w.stamp(ilog.Event{
			Action: ilog.ActionQuery, Query: queryText, Step: it, Rank: -1,
		}, spec, out.sessionID)}
		var clicked []string
		emit := func(e ilog.Event) error {
			if e.Action == ilog.ActionClickKeyframe {
				clicked = append(clicked, e.ShotID)
			}
			events = append(events, w.stamp(e, spec, out.sessionID))
			return nil
		}
		views := make([]simulation.ResultView, 0, min(len(page.Hits), spec.pol.Stereotype.Patience))
		for i := range page.Hits {
			if i >= spec.pol.Stereotype.Patience {
				break
			}
			h := &page.Hits[i]
			views = append(views, simulation.ResultView{
				ShotID: h.ShotID, Relevant: spec.relevant(h.ShotID), Seconds: h.Seconds,
			})
		}
		if err := spec.pol.Examine(views, it, seen, &budget, emit); err != nil {
			return fail(err)
		}
		err = w.col.timed(EndpointEvents, func() error {
			_, err := w.c.SendEvents(ctx, out.sessionID, events)
			return err
		})
		if err != nil {
			return fail(err)
		}
		w.col.events += int64(len(events))
		if spec.keepEvents {
			out.events = append(out.events, events...)
		}

		if cfg.FetchShots {
			for _, shotID := range clicked {
				err := w.col.timed(EndpointShot, func() error {
					_, err := w.c.Shot(ctx, shotID)
					return err
				})
				if err != nil {
					return fail(err)
				}
			}
		}
		w.think(ctx)
	}
	out.distinctSeen = len(seen)
	return out
}

// stamp fills the envelope fields the in-process simulator's emit
// stamps: real wall-clock time, session, user, interface, topic. The
// server overrides the session ID on ingest; stamping it anyway keeps
// locally saved logs valid.
func (w *worker) stamp(e ilog.Event, spec *sessionSpec, sessionID string) ilog.Event {
	e.Time = time.Now()
	e.SessionID = sessionID
	e.UserID = spec.req.UserID
	e.Interface = w.cfg.Iface.Name
	e.TopicID = spec.topicID
	return e
}

// think pauses between iterations under closed-loop pacing, jittered
// ±50% around the configured mean.
func (w *worker) think(ctx context.Context) {
	if w.cfg.ThinkTime <= 0 {
		return
	}
	d := time.Duration(float64(w.cfg.ThinkTime) * (0.5 + w.rng.Float64()))
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}
