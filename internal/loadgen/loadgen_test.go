package loadgen_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/simulation"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/ui"
	"repro/internal/webapi"
)

// newStack builds a real server over a tiny archive plus an SDK
// client: loadgen's integration surface is the genuine HTTP stack.
func newStack(t *testing.T) (*client.Client, *synth.Archive, *webapi.Server) {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{UseImplicit: true, UseProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := webapi.NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	return c, arch, srv
}

// queriesFromArchive builds a query pool with ground truth from the
// archive's evaluation topics.
func queriesFromArchive(arch *synth.Archive) []loadgen.Query {
	var out []loadgen.Query
	for _, topic := range arch.Truth.SearchTopics {
		rel := map[string]bool{}
		for shot, g := range arch.Truth.Qrels[topic.ID] {
			rel[string(shot)] = g >= 1
		}
		out = append(out, loadgen.Query{
			Text: topic.Query, Verbose: topic.Verbose, TopicID: topic.ID, Relevant: rel,
		})
	}
	return out
}

// TestDriverMatchesServerCounters is the closed-loop scale test: 50
// concurrent virtual users drive a full simulated-session workload
// and every client-observed request total must equal the server's
// /api/v1/metrics counter for the corresponding route.
func TestDriverMatchesServerCounters(t *testing.T) {
	c, arch, _ := newStack(t)
	d, err := loadgen.New(loadgen.Config{
		Client:     c,
		Users:      50,
		Sessions:   120,
		Iterations: 2,
		PageLimit:  10,
		Seed:       7,
		Queries:    queriesFromArchive(arch),
		FetchShots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 120 || rep.SessionsFailed != 0 {
		t.Fatalf("sessions = %d ok / %d failed, want 120/0\n%s", rep.Sessions, rep.SessionsFailed, rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("client errors = %d\n%s", rep.Errors, rep)
	}
	if rep.Iterations != 240 {
		t.Errorf("iterations = %d, want 240", rep.Iterations)
	}
	if rep.Requests == 0 || rep.RequestsPerSec <= 0 {
		t.Errorf("empty report: %+v", rep)
	}

	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	routeFor := map[string]string{
		loadgen.EndpointCreateSession: "POST /api/v1/sessions",
		loadgen.EndpointSearch:        "GET /api/v1/search",
		loadgen.EndpointEvents:        "POST /api/v1/events",
		loadgen.EndpointShot:          "GET /api/v1/shots/{id}",
		loadgen.EndpointDeleteSession: "DELETE /api/v1/sessions/{id}",
	}
	for endpoint, route := range routeFor {
		clientN := rep.Endpoints[endpoint].Requests
		serverN := m.Routes[route].Count
		if clientN == 0 {
			t.Errorf("endpoint %s saw no traffic", endpoint)
		}
		if clientN != serverN {
			t.Errorf("%s: client total %d != server %s count %d", endpoint, clientN, route, serverN)
		}
		if lat := m.Routes[route].Latency; lat.Count != uint64(serverN) {
			t.Errorf("%s: server latency count %d != route count %d", route, lat.Count, serverN)
		}
	}
	if int64(m.Sessions.Created) != rep.Sessions {
		t.Errorf("server sessions created = %d, want %d", m.Sessions.Created, rep.Sessions)
	}
	if m.Sessions.Live != 0 {
		t.Errorf("server live sessions = %d after run, want 0 (all deleted)", m.Sessions.Live)
	}
	// Latency quantiles must be ordered on both sides.
	for name, e := range rep.Endpoints {
		l := e.Latency
		if l.P50MS > l.P95MS || l.P95MS > l.P99MS || l.P99MS > l.MaxMS*1.1 {
			t.Errorf("%s: quantiles out of order: %+v", name, l)
		}
	}
	// The report round-trips through JSON (the BENCH summary format).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back loadgen.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || len(back.Endpoints) != len(rep.Endpoints) {
		t.Errorf("JSON round-trip mismatch: %+v vs %+v", back, rep)
	}
}

// TestOpenLoopPacing runs the open-loop arrival process and checks
// the run honours the duration bound and paces arrivals.
func TestOpenLoopPacing(t *testing.T) {
	c, arch, _ := newStack(t)
	d, err := loadgen.New(loadgen.Config{
		Client:     c,
		Users:      8,
		Sessions:   10,
		Iterations: 1,
		Pacing:     loadgen.PacingOpen,
		Rate:       200,
		Duration:   10 * time.Second,
		PageLimit:  5,
		Seed:       11,
		Queries:    queriesFromArchive(arch),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := rep.Sessions + rep.SessionsFailed + rep.DroppedArrivals
	if done < 10 {
		t.Fatalf("open loop finished %d of 10 arrivals\n%s", done, rep)
	}
	// 10 arrivals at 200/s take >= ~45ms of pacing.
	if rep.ElapsedSeconds < 0.04 {
		t.Errorf("open loop too fast for the arrival rate: %.3fs", rep.ElapsedSeconds)
	}
}

// TestRunStudyRemote replays a small (user, topic) study over HTTP
// and checks it produces evaluated sessions like the in-process
// study.
func TestRunStudyRemote(t *testing.T) {
	c, arch, srv := newStack(t)
	users := simulation.MakeUsers(3)
	topics := arch.Truth.SearchTopics
	if len(topics) > 4 {
		topics = topics[:4]
	}
	pairs := simulation.AllPairs(users, topics)
	res, err := loadgen.RunStudy(context.Background(), loadgen.StudyConfig{
		Client:     c,
		Workers:    6,
		Iterations: 2,
		PageLimit:  50,
		Qrels:      arch.Truth.Qrels,
		Seed:       2008,
	}, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed sessions: %d\n%s", res.Failed, res.Report)
	}
	if len(res.Sessions) != len(pairs) {
		t.Fatalf("sessions = %d, want %d", len(res.Sessions), len(pairs))
	}
	if len(res.Events) == 0 {
		t.Error("study produced no events")
	}
	for i := range res.Events {
		if err := res.Events[i].Validate(); err != nil {
			t.Fatalf("event %d invalid (log would not save): %v", i, err)
		}
	}
	for _, sr := range res.Sessions {
		if len(sr.PerIteration) == 0 || len(sr.FinalRanking) == 0 {
			t.Fatalf("session %s has no evaluated iterations", sr.SessionID)
		}
	}
	if res.MeanFinal.AP < 0 || res.MeanFinal.AP > 1 {
		t.Errorf("mean final AP = %v", res.MeanFinal.AP)
	}
	if res.Report.Sessions != int64(len(pairs)) {
		t.Errorf("report sessions = %d, want %d", res.Report.Sessions, len(pairs))
	}
	// All sessions were deleted server-side.
	if live := srv.Manager().Stats().Live; live != 0 {
		t.Errorf("server live sessions after study = %d, want 0", live)
	}
}

// TestStudyReproducible: same seed, same pairs -> identical event
// logs per pair, despite concurrent completion order.
func TestStudyReproducible(t *testing.T) {
	c, arch, _ := newStack(t)
	users := simulation.MakeUsers(2)
	topics := arch.Truth.SearchTopics[:2]
	pairs := simulation.AllPairs(users, topics)
	run := func() *loadgen.StudyResult {
		res, err := loadgen.RunStudy(context.Background(), loadgen.StudyConfig{
			Client: c, Workers: 4, Iterations: 2, PageLimit: 20,
			Qrels: arch.Truth.Qrels, Seed: 99,
		}, pairs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("failed sessions: %d", res.Failed)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Sessions {
		ae, be := a.Sessions[i].Events, b.Sessions[i].Events
		if len(ae) != len(be) {
			t.Fatalf("pair %d: %d events vs %d", i, len(ae), len(be))
		}
		for j := range ae {
			if ae[j].Action != be[j].Action || ae[j].ShotID != be[j].ShotID || ae[j].Rank != be[j].Rank {
				t.Fatalf("pair %d event %d differs: %+v vs %+v", i, j, ae[j], be[j])
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	c, arch, _ := newStack(t)
	queries := queriesFromArchive(arch)
	cases := []loadgen.Config{
		{},                            // nil client
		{Client: c},                   // no queries
		{Client: c, Queries: queries}, // unbounded (no Sessions/Duration)
		{Client: c, Queries: queries, Sessions: 1, Pacing: loadgen.PacingOpen},               // open loop without rate
		{Client: c, Queries: queries, Sessions: 1, Pacing: "weird"},                          // unknown pacing
		{Client: c, Queries: queries, Sessions: 1, RelevanceRate: 2},                         // bad relevance rate
		{Client: c, Queries: queries, Sessions: 1, ThinkTime: -time.Second},                  // negative
		{Client: c, Queries: queries, Sessions: 1, Iface: &ui.Interface{}},                   // invalid iface
		{Client: c, Queries: queries, Sessions: 1, Stereotypes: []simulation.Stereotype{{}}}, // invalid stereotype
	}
	for i, cfg := range cases {
		if _, err := loadgen.New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := loadgen.New(loadgen.Config{Client: c, Queries: queries, Sessions: 1}); err != nil {
		t.Errorf("minimal valid config rejected: %v", err)
	}
}

// TestDurationExpiryAbortsCleanly: when the run deadline cuts
// sessions short, they count as aborted (not failed) and are still
// deleted server-side via the detached cleanup context.
func TestDurationExpiryAbortsCleanly(t *testing.T) {
	c, arch, srv := newStack(t)
	d, err := loadgen.New(loadgen.Config{
		Client:     c,
		Users:      4,
		Sessions:   0, // duration-bound
		Iterations: 100,
		ThinkTime:  40 * time.Millisecond,
		Duration:   250 * time.Millisecond,
		PageLimit:  5,
		Seed:       3,
		Queries:    queriesFromArchive(arch),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsFailed != 0 {
		t.Fatalf("deadline expiry marked %d sessions failed (want aborted)\n%s", rep.SessionsFailed, rep)
	}
	if rep.SessionsAborted == 0 {
		t.Fatalf("no sessions aborted at the deadline; report:\n%s", rep)
	}
	if live := srv.Manager().Stats().Live; live != 0 {
		t.Errorf("aborted sessions leaked server-side: %d live", live)
	}
}

// TestDriverSpreadsOverClients pins the multi-endpoint mode ivrload's
// comma-separated -server uses: virtual users are split round-robin
// over the given clients, and every target serves a share of the load.
func TestDriverSpreadsOverClients(t *testing.T) {
	c1, arch, srv1 := newStack(t)
	c2, _, srv2 := newStack(t)
	d, err := loadgen.New(loadgen.Config{
		Clients:    []*client.Client{c1, c2},
		Users:      4,
		Sessions:   12,
		Iterations: 1,
		PageLimit:  5,
		Seed:       9,
		Queries:    queriesFromArchive(arch),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 12 || rep.SessionsFailed != 0 {
		t.Fatalf("sessions = %d ok / %d failed, want 12/0\n%s", rep.Sessions, rep.SessionsFailed, rep)
	}
	n1 := srv1.Manager().Stats().Created
	n2 := srv2.Manager().Stats().Created
	if n1 == 0 || n2 == 0 || n1+n2 != 12 {
		t.Fatalf("session split %d/%d, want both targets loaded summing to 12", n1, n2)
	}
}

// TestTraceSampling drives a run with TraceSample and checks every
// sampled search yielded a server-reported span tree with the serve
// tier's stages, correlated by request ID.
func TestTraceSampling(t *testing.T) {
	c, arch, _ := newStack(t)
	d, err := loadgen.New(loadgen.Config{
		Client:      c,
		Users:       4,
		Sessions:    8,
		Iterations:  2,
		PageLimit:   5,
		Seed:        11,
		Queries:     queriesFromArchive(arch),
		TraceSample: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SessionsFailed != 0 || rep.Errors != 0 {
		t.Fatalf("failed sessions/errors: %d/%d\n%s", rep.SessionsFailed, rep.Errors, rep)
	}
	// 8 sessions × 2 iterations = 16 searches; every 2nd is sampled.
	if want := rep.Iterations / 2; int64(len(rep.TraceSamples)) != want {
		t.Fatalf("trace samples = %d, want %d of %d searches", len(rep.TraceSamples), want, rep.Iterations)
	}
	for _, s := range rep.TraceSamples {
		if s.RequestID == "" {
			t.Errorf("sample %q missing request ID", s.Query)
		}
		if s.Root == nil {
			t.Fatalf("sample %q has no span tree", s.Query)
		}
		if s.Root.Tier != "serve" {
			t.Errorf("sample root tier = %q, want serve", s.Root.Tier)
		}
		names := map[string]bool{}
		var walk func(sp *trace.Span)
		walk = func(sp *trace.Span) {
			names[sp.Name] = true
			for _, ch := range sp.Children {
				walk(ch)
			}
		}
		walk(s.Root)
		if !names["session"] {
			t.Errorf("sample %q span tree lacks a session span: %v", s.Query, names)
		}
	}
}
