package loadgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// maxTraceSamples bounds how many sampled span trees a run retains
// (per worker shard and again after the merge): trace sampling is for
// eyeballing representative request shapes, not for archiving every
// trace of a long soak.
const maxTraceSamples = 32

// TraceSample is one server-reported span tree captured because trace
// sampling selected its search (Config.TraceSample).
type TraceSample struct {
	Query      string      `json:"query"`
	RequestID  string      `json:"request_id"`
	DurationMS float64     `json:"duration_ms"`
	Root       *trace.Span `json:"trace"`
}

// endpointShard is one worker's telemetry for one endpoint. Counters
// are worker-local (single writer, read only after the pool joins);
// the histogram is atomic anyway, letting report code merge shards
// without coordination.
type endpointShard struct {
	count  int64
	errors int64
	// shed and deadline split typed backpressure answers (429
	// "overloaded", 504 "deadline_exceeded") out of errors: under an
	// overload test they are the system working as designed, and
	// folding them into errors would make a correct brownout look like
	// a broken server.
	shed     int64
	deadline int64
	hist     *metrics.Histogram
}

// shardCollector is one worker's full telemetry: per-endpoint shards
// plus workload counters. Never shared between goroutines.
type shardCollector struct {
	endpoints       map[string]*endpointShard
	sessions        int64
	sessionsFailed  int64
	sessionsAborted int64
	iterations      int64
	events          int64
	// partials counts search pages served degraded (partial: true).
	partials int64
	traces   []TraceSample
}

// addTrace retains one sampled span tree, dropping samples beyond the
// shard's cap.
func (c *shardCollector) addTrace(s TraceSample) {
	if len(c.traces) < maxTraceSamples {
		c.traces = append(c.traces, s)
	}
}

func newShardCollector() *shardCollector {
	return &shardCollector{endpoints: make(map[string]*endpointShard)}
}

func (c *shardCollector) endpoint(name string) *endpointShard {
	sh := c.endpoints[name]
	if sh == nil {
		sh = &endpointShard{hist: &metrics.Histogram{}}
		c.endpoints[name] = sh
	}
	return sh
}

// timed runs one client call, recording its latency and outcome
// class: ok, typed shed, typed deadline refusal, or plain error.
func (c *shardCollector) timed(name string, fn func() error) error {
	start := time.Now()
	err := fn()
	sh := c.endpoint(name)
	sh.hist.Observe(time.Since(start))
	sh.count++
	switch {
	case err == nil:
	case client.IsOverloaded(err):
		sh.shed++
	case client.IsDeadlineExceeded(err):
		sh.deadline++
	default:
		sh.errors++
	}
	return err
}

// EndpointStats is one endpoint's merged client-side view. Shed and
// DeadlineExceeded are typed backpressure outcomes, disjoint from
// Errors.
type EndpointStats struct {
	Requests         int64                  `json:"requests"`
	Errors           int64                  `json:"errors"`
	Shed             int64                  `json:"shed,omitempty"`
	DeadlineExceeded int64                  `json:"deadline_exceeded,omitempty"`
	Latency          metrics.LatencySummary `json:"latency"`
}

// Topology describes the retrieval tier behind the server a run hit,
// read from the `search` block of /api/v1/metrics after the run, so a
// BENCH summary records whether its numbers came from an in-process
// fan-out or a distributed scatter/gather tier (and how wide each
// was).
type Topology struct {
	// Distributed is true when the server merges remote segment
	// backends (ivrserve -segment-addrs).
	Distributed bool `json:"distributed"`
	// Backends counts remote segment servers (0 when in-process).
	Backends int `json:"backends,omitempty"`
	// Segments counts index segments behind the merge.
	Segments int `json:"segments,omitempty"`
	// Workers is the server's fan-out worker bound.
	Workers int `json:"workers,omitempty"`
}

// String renders the topology line ivrload prints.
func (t Topology) String() string {
	if t.Distributed {
		return fmt.Sprintf("%d remote segments over %d backends (workers %d)",
			t.Segments, t.Backends, t.Workers)
	}
	return fmt.Sprintf("in-process, %d segments (workers %d)", t.Segments, t.Workers)
}

// Report is the outcome of a load run: workload totals plus
// per-endpoint throughput and latency quantiles. Marshal it for a
// machine-readable BENCH summary; String renders the human table.
type Report struct {
	Users          int     `json:"users"`
	Pacing         Pacing  `json:"pacing"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Sessions       int64   `json:"sessions"`
	SessionsFailed int64   `json:"sessions_failed"`
	// SessionsAborted counts sessions cut short by the run deadline
	// or cancellation — incomplete, but not server failures.
	SessionsAborted int64 `json:"sessions_aborted,omitempty"`
	Iterations      int64 `json:"iterations"`
	EventsSent      int64 `json:"events_sent"`
	Requests        int64 `json:"requests"`
	Errors          int64 `json:"errors"`
	// Shed and DeadlineExceeded total the typed backpressure outcomes
	// (429 "overloaded" and 504 "deadline_exceeded") across endpoints;
	// PartialResults counts search pages answered degraded. All three
	// are disjoint from Errors: under deliberate overload they are the
	// protection working, not the server failing.
	Shed             int64                    `json:"shed,omitempty"`
	DeadlineExceeded int64                    `json:"deadline_exceeded,omitempty"`
	PartialResults   int64                    `json:"partial_results,omitempty"`
	DroppedArrivals  int64                    `json:"dropped_arrivals,omitempty"`
	RequestsPerSec   float64                  `json:"requests_per_sec"`
	Endpoints        map[string]EndpointStats `json:"endpoints"`
	// Topology is filled by the driver (ivrload) from the server's
	// post-run metrics; nil when the server was not inspected.
	Topology *Topology `json:"topology,omitempty"`
	// TraceSamples are the span trees captured by Config.TraceSample,
	// capped at maxTraceSamples across the whole run.
	TraceSamples []TraceSample `json:"trace_samples,omitempty"`
}

// buildReport merges the per-worker shards into one report.
func buildReport(cfg *Config, shards []*shardCollector, elapsed time.Duration) *Report {
	rep := &Report{
		Users:          cfg.Users,
		Pacing:         cfg.Pacing,
		ElapsedSeconds: elapsed.Seconds(),
		Endpoints:      make(map[string]EndpointStats),
	}
	merged := make(map[string]*endpointShard)
	for _, col := range shards {
		rep.Sessions += col.sessions
		rep.SessionsFailed += col.sessionsFailed
		rep.SessionsAborted += col.sessionsAborted
		rep.Iterations += col.iterations
		rep.EventsSent += col.events
		rep.PartialResults += col.partials
		for _, s := range col.traces {
			if len(rep.TraceSamples) < maxTraceSamples {
				rep.TraceSamples = append(rep.TraceSamples, s)
			}
		}
		for name, sh := range col.endpoints {
			m := merged[name]
			if m == nil {
				m = &endpointShard{hist: &metrics.Histogram{}}
				merged[name] = m
			}
			m.count += sh.count
			m.errors += sh.errors
			m.shed += sh.shed
			m.deadline += sh.deadline
			m.hist.Merge(sh.hist)
		}
	}
	for name, m := range merged {
		rep.Endpoints[name] = EndpointStats{
			Requests:         m.count,
			Errors:           m.errors,
			Shed:             m.shed,
			DeadlineExceeded: m.deadline,
			Latency:          m.hist.Summary(),
		}
		rep.Requests += m.count
		rep.Errors += m.errors
		rep.Shed += m.shed
		rep.DeadlineExceeded += m.deadline
	}
	if rep.ElapsedSeconds > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / rep.ElapsedSeconds
	}
	return rep
}

// String renders the report as the table ivrload prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d users, %s pacing, %.2fs\n", r.Users, r.Pacing, r.ElapsedSeconds)
	fmt.Fprintf(&b, "  sessions: %d ok, %d failed", r.Sessions, r.SessionsFailed)
	if r.SessionsAborted > 0 {
		fmt.Fprintf(&b, ", %d aborted at deadline", r.SessionsAborted)
	}
	fmt.Fprintf(&b, "   iterations: %d   events sent: %d\n", r.Iterations, r.EventsSent)
	fmt.Fprintf(&b, "  requests: %d (%.1f/s), %d errors", r.Requests, r.RequestsPerSec, r.Errors)
	if r.Shed > 0 {
		fmt.Fprintf(&b, ", %d shed", r.Shed)
	}
	if r.DeadlineExceeded > 0 {
		fmt.Fprintf(&b, ", %d deadline-exceeded", r.DeadlineExceeded)
	}
	if r.PartialResults > 0 {
		fmt.Fprintf(&b, ", %d partial pages", r.PartialResults)
	}
	if r.DroppedArrivals > 0 {
		fmt.Fprintf(&b, ", %d arrivals dropped (server saturated)", r.DroppedArrivals)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-16s %9s %7s %7s %9s %9s %9s %9s %9s %9s\n",
		"endpoint", "requests", "errors", "shed", "deadline", "mean", "p50", "p95", "p99", "max")
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := r.Endpoints[name]
		fmt.Fprintf(&b, "  %-16s %9d %7d %7d %9d %8.1fms %8.1fms %8.1fms %8.1fms %8.1fms\n",
			name, e.Requests, e.Errors, e.Shed, e.DeadlineExceeded,
			e.Latency.MeanMS, e.Latency.P50MS, e.Latency.P95MS, e.Latency.P99MS, e.Latency.MaxMS)
	}
	return b.String()
}
