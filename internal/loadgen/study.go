package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/client"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/simulation"
	"repro/internal/synth"
	"repro/internal/ui"
)

// StudyConfig parameterises a remote user study: the same
// (user, topic) design internal/simulation runs in-process, replayed
// over HTTP. The caller owns the archive-side knowledge (topics and
// qrels); the server only sees sessions, searches and events.
type StudyConfig struct {
	// Client is the SDK handle to the target server. Required.
	Client *client.Client
	// Workers bounds concurrent sessions (default 8). Unlike the
	// in-process study, sessions run concurrently: per-session seeds
	// keep each session's behaviour reproducible even though
	// completion order is not.
	Workers int
	// Iterations is the number of query iterations per session
	// (default 3).
	Iterations int
	// PageLimit is the ranking depth fetched per iteration; it bounds
	// the evaluated ranking (default 100).
	PageLimit int
	// Iface is the interaction-environment model (default
	// ui.Desktop()).
	Iface *ui.Interface
	// Qrels supply ground-truth relevance for behaviour and metrics.
	Qrels synth.Qrels
	// Seed fixes per-session behaviour streams.
	Seed int64
	// RampUp staggers worker starts (optional).
	RampUp time.Duration
	// FetchShots also fetches shot metadata for clicked results.
	FetchShots bool
}

// StudySessionResult is one remote session's outcome, the HTTP
// counterpart of simulation.SessionResult.
type StudySessionResult struct {
	// SessionID is the server-assigned session identifier.
	SessionID string
	UserID    string
	TopicID   int
	// Events is the interaction log the virtual user sent.
	Events []ilog.Event
	// PerIteration holds the metrics of the ranking page fetched at
	// each query iteration (depth bounded by PageLimit).
	PerIteration []eval.Metrics
	// Final is the last iteration's metrics.
	Final eval.Metrics
	// FinalRanking is the shot ranking of the last iteration.
	FinalRanking []string
	// DistinctSeen counts distinct shots examined.
	DistinctSeen int
	// Err records a failed session (excluded from aggregates).
	Err error
	// Aborted marks sessions cut short by context cancellation (run
	// deadline, Ctrl-C) rather than a server failure.
	Aborted bool
}

// StudyResult aggregates a remote study: retrieval quality like the
// in-process study, plus the load report of the HTTP traffic that
// produced it.
type StudyResult struct {
	Sessions []*StudySessionResult
	// Events concatenates every successful session's log in pair
	// order.
	Events []ilog.Event
	// MeanFinal / MeanFirst average final- and first-iteration
	// metrics over successful sessions.
	MeanFinal eval.Metrics
	MeanFirst eval.Metrics
	// Failed counts sessions that errored server-side; Aborted counts
	// sessions cut short by cancellation.
	Failed  int
	Aborted int
	// Report is the merged client-side telemetry of the study run.
	Report *Report
}

// RunStudy replays an explicit (user, topic) assignment over HTTP —
// the remote counterpart of simulation.RunStudyPairs, wrapping the
// loadgen worker pool. Session i uses seed+i*7919, mirroring the
// in-process seed derivation.
func RunStudy(ctx context.Context, cfg StudyConfig, pairs []simulation.StudyPair) (*StudyResult, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("loadgen: nil client")
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("loadgen: study needs at least one (user, topic) pair")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Workers > len(pairs) {
		cfg.Workers = len(pairs)
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 3
	}
	if cfg.PageLimit <= 0 {
		cfg.PageLimit = 100
	}
	if cfg.Iface == nil {
		cfg.Iface = ui.Desktop()
	}
	if err := cfg.Iface.Validate(); err != nil {
		return nil, err
	}
	for _, pair := range pairs {
		if pair.User == nil || pair.Topic == nil {
			return nil, fmt.Errorf("loadgen: pair with nil user or topic")
		}
		if err := pair.User.Stereotype.Validate(); err != nil {
			return nil, err
		}
	}

	// The study rides the generic pool: pacing is closed-loop (a lab
	// study has no arrival process), one task per pair.
	poolCfg := &Config{
		Client:     cfg.Client,
		Clients:    []*client.Client{cfg.Client},
		Users:      cfg.Workers,
		Sessions:   len(pairs),
		Iterations: cfg.Iterations,
		Pacing:     PacingClosed,
		PageLimit:  cfg.PageLimit,
		Seed:       cfg.Seed,
		Iface:      cfg.Iface,
		RampUp:     cfg.RampUp,
		FetchShots: cfg.FetchShots,
		// Unused by the study path but required by the generic
		// validation; kept coherent anyway.
		Queries:       []Query{{Text: "-"}},
		RelevanceRate: 0.2,
		Stereotypes:   simulation.Stereotypes(),
	}
	results := make([]*StudySessionResult, len(pairs))
	shards, elapsed, _ := runPool(ctx, poolCfg, func(ctx context.Context, w *worker, seq int) {
		results[seq] = runStudySession(ctx, &cfg, w, pairs[seq], seq)
	})

	res := &StudyResult{Report: buildReport(poolCfg, shards, elapsed)}
	var finals, firsts []eval.Metrics
	for _, sr := range results {
		if sr == nil {
			continue // cancelled before this pair started
		}
		res.Sessions = append(res.Sessions, sr)
		if sr.Err != nil {
			if sr.Aborted {
				res.Aborted++
			} else {
				res.Failed++
			}
			continue
		}
		res.Events = append(res.Events, sr.Events...)
		finals = append(finals, sr.Final)
		if len(sr.PerIteration) > 0 {
			firsts = append(firsts, sr.PerIteration[0])
		}
	}
	res.MeanFinal = eval.Mean(finals)
	res.MeanFirst = eval.Mean(firsts)
	return res, nil
}

// runStudySession drives one (user, topic) pair through the shared
// session driver, computing per-iteration retrieval metrics from the
// fetched pages.
func runStudySession(ctx context.Context, cfg *StudyConfig, w *worker, pair simulation.StudyPair, seq int) *StudySessionResult {
	user, topic := pair.User, pair.Topic
	sr := &StudySessionResult{TopicID: topic.ID}

	req := client.CreateSessionRequest{}
	if user.Profile != nil {
		req.UserID = user.Profile.UserID
		req.Interests = map[string]float64{}
		for _, cat := range user.Profile.Categories() {
			req.Interests[cat.String()] = user.Profile.Interest(cat)
		}
	}
	if req.UserID == "" {
		req.UserID = "anon"
	}
	sr.UserID = req.UserID

	judg := eval.Judgments{}
	for shot, g := range cfg.Qrels[topic.ID] {
		judg[string(shot)] = g
	}
	out := w.driveSession(ctx, &sessionSpec{
		req: req,
		// Per-session behaviour stream, derived like the in-process
		// study so session seq behaves identically run to run.
		pol: simulation.Policy{
			Stereotype: user.Stereotype,
			Iface:      cfg.Iface,
			Rand:       rand.New(rand.NewSource(cfg.Seed + int64(seq)*7919)),
		},
		topicID:    topic.ID,
		short:      topic.Query,
		verbose:    topic.Verbose,
		relevant:   func(shotID string) bool { return judg[shotID] >= 1 },
		keepEvents: true,
		onPage: func(_ int, page *client.SearchPage) {
			ids := make([]string, len(page.Hits))
			for i := range page.Hits {
				ids[i] = page.Hits[i].ShotID
			}
			sr.PerIteration = append(sr.PerIteration, eval.Compute(ids, judg))
			sr.FinalRanking = ids
		},
	})
	sr.SessionID = out.sessionID
	sr.Events = out.events
	sr.DistinctSeen = out.distinctSeen
	sr.Err = out.err
	sr.Aborted = out.aborted
	if n := len(sr.PerIteration); n > 0 {
		sr.Final = sr.PerIteration[n-1]
	}
	return sr
}

// ToRun exports the study's final rankings as a TREC run with one
// query ID per session ("t<topic>-<session>"), mirroring
// simulation.StudyResult.ToRun so remote studies feed the same
// downstream tooling.
func (sr *StudyResult) ToRun(tag string) *eval.Run {
	run := eval.NewRun(tag)
	for _, s := range sr.Sessions {
		if s.Err != nil || len(s.FinalRanking) == 0 {
			continue
		}
		run.Add(studyQueryID(s), s.FinalRanking)
	}
	return run
}

// ToQrels duplicates each topic's judgements under every session
// query ID of the study, matching ToRun's naming.
func (sr *StudyResult) ToQrels(qrels synth.Qrels) eval.QrelSet {
	qs := eval.QrelSet{}
	for _, s := range sr.Sessions {
		if s.Err != nil || len(s.FinalRanking) == 0 {
			continue
		}
		judg := eval.Judgments{}
		for shot, g := range qrels[s.TopicID] {
			judg[string(shot)] = g
		}
		qs[studyQueryID(s)] = judg
	}
	return qs
}

func studyQueryID(s *StudySessionResult) string {
	return fmt.Sprintf("t%02d-%s", s.TopicID, s.SessionID)
}
