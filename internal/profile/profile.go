// Package profile implements static user profiles: the declared,
// registration-time interest model the paper contrasts with implicit
// feedback ("users have to provide personal information such as
// demographics, preferences or ratings, i.e. when they register for a
// service"). A profile scores news categories; the adaptive model uses
// those scores to re-rank, and can slowly drift the profile from
// observed behaviour.
package profile

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/collection"
)

// Profile is one user's static interest model. Interests are in
// [0, 1] per category, where 0.5 is neutral: boosts are computed
// relative to neutrality so an all-0.5 profile changes nothing.
type Profile struct {
	UserID string
	// interests maps categories to [0,1]; missing = Neutral.
	interests map[collection.Category]float64
	// Keywords are declared interest terms ("football", "elections"),
	// usable for profile-side query augmentation.
	Keywords []string
}

// Neutral is the no-preference interest level.
const Neutral = 0.5

// New creates a neutral profile.
func New(userID string) *Profile {
	return &Profile{
		UserID:    userID,
		interests: make(map[collection.Category]float64),
	}
}

// SetInterest declares the user's interest in a category; v is clamped
// to [0,1].
func (p *Profile) SetInterest(cat collection.Category, v float64) *Profile {
	p.interests[cat] = clamp01(v)
	return p
}

// Interest returns the interest in cat (Neutral when undeclared).
func (p *Profile) Interest(cat collection.Category) float64 {
	if v, ok := p.interests[cat]; ok {
		return v
	}
	return Neutral
}

// Boost maps interest to a signed boost in [-1, 1]: positive for
// liked categories, negative for disliked, zero for neutral.
func (p *Profile) Boost(cat collection.Category) float64 {
	return 2 * (p.Interest(cat) - Neutral)
}

// Categories returns the declared categories in a fixed order.
func (p *Profile) Categories() []collection.Category {
	out := make([]collection.Category, 0, len(p.interests))
	for c := range p.interests {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopCategories returns up to n categories by descending interest
// among the declared ones (ties by category order).
func (p *Profile) TopCategories(n int) []collection.Category {
	cats := p.Categories()
	sort.SliceStable(cats, func(i, j int) bool {
		return p.Interest(cats[i]) > p.Interest(cats[j])
	})
	if n < len(cats) {
		cats = cats[:n]
	}
	return cats
}

// Update drifts the interest in cat toward signal (in [0,1]) with
// learning rate lr: the mechanism by which observed behaviour slowly
// reshapes the static profile. lr is clamped to [0,1].
func (p *Profile) Update(cat collection.Category, signal, lr float64) {
	lr = clamp01(lr)
	cur := p.Interest(cat)
	p.interests[cat] = clamp01(cur + lr*(clamp01(signal)-cur))
}

// Decay relaxes every declared interest toward Neutral by factor
// f in [0,1] (0 = no change, 1 = fully neutral), modelling interest
// staleness between sessions.
func (p *Profile) Decay(f float64) {
	f = clamp01(f)
	for c, v := range p.interests {
		p.interests[c] = v + f*(Neutral-v)
	}
}

// CosineSimilarity compares two profiles over the full category space
// using their boost vectors; it returns 0 when either profile is
// entirely neutral. Used to find like-minded users for the community
// recommendation graph.
func CosineSimilarity(a, b *Profile) float64 {
	var dot, na, nb float64
	for _, cat := range collection.AllCategories() {
		x, y := a.Boost(cat), b.Boost(cat)
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// profileJSON is the serialised form: category names as keys.
type profileJSON struct {
	UserID    string             `json:"user"`
	Interests map[string]float64 `json:"interests"`
	Keywords  []string           `json:"keywords,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *Profile) MarshalJSON() ([]byte, error) {
	pj := profileJSON{
		UserID:    p.UserID,
		Interests: make(map[string]float64, len(p.interests)),
		Keywords:  p.Keywords,
	}
	for c, v := range p.interests {
		pj.Interests[c.String()] = v
	}
	return json.Marshal(pj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var pj profileJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	p.UserID = pj.UserID
	p.Keywords = pj.Keywords
	p.interests = make(map[collection.Category]float64, len(pj.Interests))
	for name, v := range pj.Interests {
		cat, err := collection.ParseCategory(name)
		if err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		if v < 0 || v > 1 {
			return fmt.Errorf("profile: interest %q=%v outside [0,1]", name, v)
		}
		p.interests[cat] = v
	}
	return nil
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}
