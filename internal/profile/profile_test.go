package profile

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/collection"
)

func TestNewNeutral(t *testing.T) {
	p := New("u1")
	for _, c := range collection.AllCategories() {
		if p.Interest(c) != Neutral {
			t.Errorf("undeclared interest %v != Neutral", c)
		}
		if p.Boost(c) != 0 {
			t.Errorf("neutral boost %v != 0", c)
		}
	}
}

func TestSetInterestAndBoost(t *testing.T) {
	p := New("u1").
		SetInterest(collection.CatSports, 1.0).
		SetInterest(collection.CatPolitics, 0.0).
		SetInterest(collection.CatHealth, 0.5)
	if p.Boost(collection.CatSports) != 1 {
		t.Errorf("boost(sports) = %v", p.Boost(collection.CatSports))
	}
	if p.Boost(collection.CatPolitics) != -1 {
		t.Errorf("boost(politics) = %v", p.Boost(collection.CatPolitics))
	}
	if p.Boost(collection.CatHealth) != 0 {
		t.Errorf("boost(health) = %v", p.Boost(collection.CatHealth))
	}
	// Clamping.
	p.SetInterest(collection.CatCrime, 7)
	if p.Interest(collection.CatCrime) != 1 {
		t.Error("SetInterest should clamp to 1")
	}
	p.SetInterest(collection.CatCrime, -7)
	if p.Interest(collection.CatCrime) != 0 {
		t.Error("SetInterest should clamp to 0")
	}
}

func TestCategoriesAndTop(t *testing.T) {
	p := New("u").
		SetInterest(collection.CatSports, 0.9).
		SetInterest(collection.CatWeather, 0.2).
		SetInterest(collection.CatScience, 0.7)
	cats := p.Categories()
	if len(cats) != 3 {
		t.Fatalf("Categories = %v", cats)
	}
	for i := 1; i < len(cats); i++ {
		if cats[i-1] >= cats[i] {
			t.Error("Categories not sorted")
		}
	}
	top := p.TopCategories(2)
	if len(top) != 2 || top[0] != collection.CatSports || top[1] != collection.CatScience {
		t.Errorf("TopCategories = %v", top)
	}
	if got := p.TopCategories(100); len(got) != 3 {
		t.Errorf("TopCategories(100) = %v", got)
	}
}

func TestUpdateDrift(t *testing.T) {
	p := New("u")
	p.Update(collection.CatSports, 1.0, 0.5)
	if got := p.Interest(collection.CatSports); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("after update = %v, want 0.75", got)
	}
	p.Update(collection.CatSports, 1.0, 0.5)
	if got := p.Interest(collection.CatSports); math.Abs(got-0.875) > 1e-12 {
		t.Errorf("after 2nd update = %v, want 0.875", got)
	}
	// lr clamped; out-of-range signal clamped.
	p.Update(collection.CatSports, 5, 5)
	if p.Interest(collection.CatSports) != 1 {
		t.Errorf("clamped update = %v", p.Interest(collection.CatSports))
	}
}

func TestDecayTowardNeutral(t *testing.T) {
	p := New("u").SetInterest(collection.CatSports, 1.0).SetInterest(collection.CatPolitics, 0.0)
	p.Decay(0.5)
	if got := p.Interest(collection.CatSports); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("decayed high = %v", got)
	}
	if got := p.Interest(collection.CatPolitics); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("decayed low = %v", got)
	}
	p.Decay(1)
	if p.Interest(collection.CatSports) != Neutral {
		t.Error("full decay should neutralise")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := New("a").SetInterest(collection.CatSports, 1).SetInterest(collection.CatPolitics, 0)
	b := New("b").SetInterest(collection.CatSports, 1).SetInterest(collection.CatPolitics, 0)
	c := New("c").SetInterest(collection.CatSports, 0).SetInterest(collection.CatPolitics, 1)
	if got := CosineSimilarity(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical profiles sim = %v", got)
	}
	if got := CosineSimilarity(a, c); math.Abs(got+1) > 1e-12 {
		t.Errorf("opposite profiles sim = %v", got)
	}
	neutral := New("n")
	if got := CosineSimilarity(a, neutral); got != 0 {
		t.Errorf("neutral sim = %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := New("u42").SetInterest(collection.CatSports, 0.9).SetInterest(collection.CatWeather, 0.1)
	p.Keywords = []string{"football", "cup"}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var got Profile
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.UserID != "u42" {
		t.Errorf("UserID = %q", got.UserID)
	}
	if got.Interest(collection.CatSports) != 0.9 || got.Interest(collection.CatWeather) != 0.1 {
		t.Error("interests lost in round trip")
	}
	if len(got.Keywords) != 2 {
		t.Errorf("keywords = %v", got.Keywords)
	}
}

func TestUnmarshalRejectsBadData(t *testing.T) {
	var p Profile
	if err := json.Unmarshal([]byte(`{"user":"u","interests":{"astrology":0.5}}`), &p); err == nil {
		t.Error("unknown category accepted")
	}
	if err := json.Unmarshal([]byte(`{"user":"u","interests":{"sports":1.5}}`), &p); err == nil {
		t.Error("out-of-range interest accepted")
	}
	if err := json.Unmarshal([]byte(`{broken`), &p); err == nil {
		t.Error("broken json accepted")
	}
}

// Property: Update keeps interests in [0,1] and moves toward signal.
func TestPropertyUpdateBounded(t *testing.T) {
	f := func(start, signal, lr float64) bool {
		p := New("u").SetInterest(collection.CatCrime, start)
		before := p.Interest(collection.CatCrime)
		p.Update(collection.CatCrime, signal, lr)
		after := p.Interest(collection.CatCrime)
		if after < 0 || after > 1 {
			return false
		}
		s := clamp01(signal)
		// After must lie between before and the clamped signal.
		lo, hi := math.Min(before, s), math.Max(before, s)
		return after >= lo-1e-12 && after <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
