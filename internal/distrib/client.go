package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Fault sentinels, matchable through errors.Is on any *BackendError.
var (
	// ErrBadResponse marks a backend reply the merge tier refused to
	// trust: wrong content type, undecodable JSON, missing required
	// keys, or a segment echo that does not match the request. Garbage
	// from a backend must become this error — never a silently wrong
	// ranking.
	ErrBadResponse = errors.New("distrib: malformed backend response")
	// ErrBackendStatus marks a non-200 RPC reply (the envelope's code
	// and message are included in the wrapping error text).
	ErrBackendStatus = errors.New("distrib: backend returned error status")
)

// BackendError reports a failed RPC against one segment backend.
type BackendError struct {
	// Addr is the backend's base URL; Segment is the global segment
	// ordinal being scored (-1 for stats/topology calls).
	Addr    string
	Segment int
	Err     error
}

// Error implements error.
func (e *BackendError) Error() string {
	if e.Segment < 0 {
		return fmt.Sprintf("distrib: backend %s: %v", e.Addr, e.Err)
	}
	return fmt.Sprintf("distrib: backend %s segment %d: %v", e.Addr, e.Segment, e.Err)
}

// Unwrap exposes the underlying fault for errors.Is/As.
func (e *BackendError) Unwrap() error { return e.Err }

// Timeout reports whether the fault was a deadline (slow backend), as
// opposed to a refused connection or a protocol error.
func (e *BackendError) Timeout() bool {
	return os.IsTimeout(e.Err) || errors.Is(e.Err, context.DeadlineExceeded)
}

// backend is the RPC client for one segment server, with per-backend
// telemetry: request/error counters and a search-latency histogram
// (lock-free, shared with the /api/v1/metrics substrate). hc carries
// the per-query RPC deadline; statsHC has none, so the (much larger)
// startup stats download is bounded by the Connect context instead.
type backend struct {
	addr     string
	hc       *http.Client
	statsHC  *http.Client
	requests atomic.Int64
	errors   atomic.Int64
	latency  metrics.Histogram
}

func newBackend(addr string, hc, statsHC *http.Client) *backend {
	return &backend{addr: strings.TrimRight(addr, "/"), hc: hc, statsHC: statsHC}
}

// fail counts and wraps one fault.
func (b *backend) fail(segment int, err error) error {
	b.errors.Add(1)
	return &BackendError{Addr: b.addr, Segment: segment, Err: err}
}

// maxResponseBody caps how much of a backend reply the merge tier
// will buffer (the stats dump of a full synth archive is ~0.5 MiB, so
// this is wide headroom; a response that actually hits the cap names
// it instead of masquerading as corruption).
const maxResponseBody = 64 << 20

// decodeRPC validates status and content type, then decodes the body.
// Error statuses surface the envelope's code/message when one parses.
func decodeRPC(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody+1))
	if err != nil {
		return fmt.Errorf("read body: %w", err)
	}
	if len(body) > maxResponseBody {
		return fmt.Errorf("%w: body exceeds %d bytes", ErrBadResponse, maxResponseBody)
	}
	if resp.StatusCode != http.StatusOK {
		var env rpcErrorEnvelope
		if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
			return fmt.Errorf("%w: %d %s: %s", ErrBackendStatus,
				resp.StatusCode, env.Error.Code, env.Error.Message)
		}
		return fmt.Errorf("%w: status %d", ErrBackendStatus, resp.StatusCode)
	}
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err != nil || mt != "application/json" {
		return fmt.Errorf("%w: content type %q", ErrBadResponse, resp.Header.Get("Content-Type"))
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	return nil
}

// stats fetches the backend's topology and statistics export.
func (b *backend) stats(ctx context.Context) (*StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+StatsPath, nil)
	if err != nil {
		return nil, b.fail(-1, err)
	}
	resp, err := b.statsHC.Do(req)
	if err != nil {
		return nil, b.fail(-1, err)
	}
	var out StatsResponse
	if err := decodeRPC(resp, &out); err != nil {
		return nil, b.fail(-1, err)
	}
	if out.Segments <= 0 || len(out.Hosted) == 0 {
		return nil, b.fail(-1, fmt.Errorf("%w: empty topology", ErrBadResponse))
	}
	return &out, nil
}

// search scores one segment remotely. The response is trusted only
// after validation: required keys present, segment echo matching, and
// candidate count consistent with the hit list.
func (b *backend) search(ctx context.Context, sreq SearchRequest) (*SearchResponse, error) {
	b.requests.Add(1)
	start := time.Now()
	body, err := json.Marshal(sreq)
	if err != nil {
		return nil, b.fail(sreq.Segment, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+SearchPath, bytes.NewReader(body))
	if err != nil {
		return nil, b.fail(sreq.Segment, err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Cross-process correlation: forward the query's request ID and ask
	// the backend to echo its server-side span tree, which is grafted
	// under the current (per-segment) span — client-observed RPC time
	// and server-observed scoring time then sit parent and child in one
	// tree, making network/queue time the visible gap between them.
	tr := trace.FromContext(ctx)
	if tr != nil {
		req.Header.Set(trace.RequestIDHeader, tr.ID)
		req.Header.Set(trace.Header, trace.RequestEcho)
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return nil, b.fail(sreq.Segment, err)
	}
	if tr != nil {
		if remote, derr := trace.DecodeSpan(resp.Header.Get(trace.Header)); derr == nil {
			trace.SpanFromContext(ctx).Graft(remote)
		}
	}
	var out SearchResponse
	if err := decodeRPC(resp, &out); err != nil {
		return nil, b.fail(sreq.Segment, err)
	}
	switch {
	case out.Segment == nil || out.Candidates == nil:
		return nil, b.fail(sreq.Segment, fmt.Errorf("%w: missing segment/candidates keys", ErrBadResponse))
	case *out.Segment != sreq.Segment:
		return nil, b.fail(sreq.Segment, fmt.Errorf("%w: scored segment %d, asked for %d",
			ErrBadResponse, *out.Segment, sreq.Segment))
	case *out.Candidates < len(out.Hits):
		return nil, b.fail(sreq.Segment, fmt.Errorf("%w: %d candidates < %d hits",
			ErrBadResponse, *out.Candidates, len(out.Hits)))
	}
	b.latency.Observe(time.Since(start))
	return &out, nil
}
