package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/trace"
)

// Fault sentinels, matchable through errors.Is on any *BackendError.
var (
	// ErrBadResponse marks a backend reply the merge tier refused to
	// trust: wrong content type, undecodable body, missing required
	// keys, or a segment echo that does not match the request. Garbage
	// from a backend must become this error — never a silently wrong
	// ranking.
	ErrBadResponse = errors.New("distrib: malformed backend response")
	// ErrBackendStatus marks a non-200 RPC reply (the envelope's code
	// and message are included in the wrapping error text).
	ErrBackendStatus = errors.New("distrib: backend returned error status")
)

// statusError carries the HTTP status of a non-200 RPC reply alongside
// the ErrBackendStatus chain, so codec negotiation can tell "the
// backend refused this request encoding" (400/415) apart from routing
// and server faults without parsing error text.
type statusError struct {
	status int
	code   string // envelope code when one parsed ("" otherwise)
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }

// Unwrap keeps errors.Is(err, ErrBackendStatus) matching.
func (e *statusError) Unwrap() error { return e.err }

// BackendError reports a failed RPC against one segment backend.
type BackendError struct {
	// Addr is the backend's base URL; Segment is the global segment
	// ordinal being scored (-1 for stats/topology calls).
	Addr    string
	Segment int
	Err     error
}

// Error implements error.
func (e *BackendError) Error() string {
	if e.Segment < 0 {
		return fmt.Sprintf("distrib: backend %s: %v", e.Addr, e.Err)
	}
	return fmt.Sprintf("distrib: backend %s segment %d: %v", e.Addr, e.Segment, e.Err)
}

// Unwrap exposes the underlying fault for errors.Is/As.
func (e *BackendError) Unwrap() error { return e.Err }

// Timeout reports whether the fault was a deadline (slow backend), as
// opposed to a refused connection or a protocol error.
func (e *BackendError) Timeout() bool {
	return os.IsTimeout(e.Err) || errors.Is(e.Err, context.DeadlineExceeded)
}

// backend is the RPC client for one segment server, with per-backend
// telemetry: request/error counters and a search-latency histogram
// (lock-free, shared with the /api/v1/metrics substrate). hc carries
// the per-query RPC deadline; statsHC has none, so the (much larger)
// startup stats download is bounded by the Connect context instead.
type backend struct {
	addr    string
	hc      *http.Client
	statsHC *http.Client
	// useBinary is the negotiated search-body codec: it starts from the
	// cluster option (binary by default) and latches to false the first
	// time this backend rejects a binary body — a JSON-only backend
	// costs one failed probe ever, not one per query.
	useBinary atomic.Bool
	// healthy is the routing signal: health probes and search outcomes
	// both feed it. An unhealthy replica is deprioritized — tried only
	// after every healthy twin — never excluded, so a topology whose
	// replicas are all marked down still gets served if any of them
	// actually answers.
	healthy        atomic.Bool
	requests       atomic.Int64
	errors         atomic.Int64
	binSearches    atomic.Int64
	jsonSearches   atomic.Int64
	codecFallbacks atomic.Int64
	// hedges counts search RPCs sent to this backend as latency hedges
	// (the twin of a slow primary); failovers counts RPCs re-routed to
	// this backend after a sibling replica failed; probeFails counts
	// failed health probes.
	hedges     atomic.Int64
	failovers  atomic.Int64
	probeFails atomic.Int64
	latency    metrics.Histogram
	// brk is this backend's circuit breaker (nil = disabled; all
	// breaker methods are nil-safe). Set by Cluster.assemble.
	brk *breaker
}

func newBackend(addr string, hc, statsHC *http.Client, binary bool) *backend {
	b := &backend{addr: strings.TrimRight(addr, "/"), hc: hc, statsHC: statsHC}
	b.useBinary.Store(binary)
	b.healthy.Store(true)
	return b
}

// fail counts and wraps one fault. A context cancellation is the
// caller abandoning the RPC — a hedged request losing its race, or a
// client going away — not a backend fault, so it is wrapped but not
// counted against the backend.
func (b *backend) fail(segment int, err error) error {
	if !errors.Is(err, context.Canceled) {
		b.errors.Add(1)
	}
	return &BackendError{Addr: b.addr, Segment: segment, Err: err}
}

// maxResponseBody caps how much of a backend reply the merge tier
// will buffer (the stats dump of a full synth archive is ~0.5 MiB, so
// this is wide headroom; a response that actually hits the cap names
// it instead of masquerading as corruption).
const maxResponseBody = 64 << 20

// appendAll drains r into dst, reusing dst's capacity — the pooled
// replacement for io.ReadAll on the per-query paths.
func appendAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// readRPCBody buffers the reply into dst's storage, enforcing the
// response cap, and turns non-200 statuses into statusError (carrying
// the envelope's code/message when one parses).
func readRPCBody(resp *http.Response, dst []byte) ([]byte, error) {
	defer resp.Body.Close()
	body, err := appendAll(dst, io.LimitReader(resp.Body, maxResponseBody+1))
	if err != nil {
		return body, fmt.Errorf("read body: %w", err)
	}
	if len(body) > maxResponseBody {
		return body, fmt.Errorf("%w: body exceeds %d bytes", ErrBadResponse, maxResponseBody)
	}
	if resp.StatusCode != http.StatusOK {
		var env rpcErrorEnvelope
		if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
			return body, &statusError{status: resp.StatusCode, code: env.Error.Code,
				err: fmt.Errorf("%w: %d %s: %s",
					ErrBackendStatus, resp.StatusCode, env.Error.Code, env.Error.Message)}
		}
		return body, &statusError{status: resp.StatusCode,
			err: fmt.Errorf("%w: status %d", ErrBackendStatus, resp.StatusCode)}
	}
	return body, nil
}

// decodeRPC validates status and content type, then decodes a JSON
// body (the stats/topology path; search goes through searchOnce).
func decodeRPC(resp *http.Response, v any) error {
	body, err := readRPCBody(resp, nil)
	if err != nil {
		return err
	}
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err != nil || mt != "application/json" {
		return fmt.Errorf("%w: content type %q", ErrBadResponse, resp.Header.Get("Content-Type"))
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	return nil
}

// stats fetches the backend's topology and statistics export.
func (b *backend) stats(ctx context.Context) (*StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+StatsPath, nil)
	if err != nil {
		return nil, b.fail(-1, err)
	}
	resp, err := b.statsHC.Do(req)
	if err != nil {
		return nil, b.fail(-1, err)
	}
	var out StatsResponse
	if err := decodeRPC(resp, &out); err != nil {
		return nil, b.fail(-1, err)
	}
	if out.Segments <= 0 || len(out.Hosted) == 0 {
		return nil, b.fail(-1, fmt.Errorf("%w: empty topology", ErrBadResponse))
	}
	return &out, nil
}

// search scores one segment remotely, speaking the negotiated codec.
// The response is trusted only after validation: required keys
// present, segment echo matching, and candidate count consistent with
// the hit list. Callers own resp.Hits and should hand the slice to
// recycleWireHits once converted.
func (b *backend) search(ctx context.Context, sreq SearchRequest) (*SearchResponse, error) {
	b.requests.Add(1)
	start := time.Now()
	out, err := b.searchOnce(ctx, &sreq, b.useBinary.Load())
	if err != nil && b.useBinary.Load() && demotesBinary(err) {
		// The backend rejected the binary body outright: it predates the
		// codec (400, the frame is not JSON) or refuses the media type
		// (415). Latch this backend to JSON and retry the query once on
		// the fallback — negotiation must cost a query a round trip, not
		// an error.
		b.useBinary.Store(false)
		b.codecFallbacks.Add(1)
		out, err = b.searchOnce(ctx, &sreq, false)
	}
	if err != nil {
		return nil, b.fail(sreq.Segment, err)
	}
	b.latency.Observe(time.Since(start))
	return out, nil
}

// demotesBinary reports whether a search fault plausibly means "the
// backend did not understand the binary request body". Anything other
// than a 400/415 envelope — timeouts, routing 404s, 5xx — is a real
// fault that must surface instead of triggering a codec retry.
func demotesBinary(err error) bool {
	var se *statusError
	if !errors.As(err, &se) {
		return false
	}
	return se.status == http.StatusBadRequest || se.status == http.StatusUnsupportedMediaType
}

// searchOnce performs one search RPC in the given codec. Request body
// buffers, their bytes.Reader wrapper, and the response read buffer
// all come from pools, so a steady-state scatter round allocates
// nothing for framing.
func (b *backend) searchOnce(ctx context.Context, sreq *SearchRequest, binary bool) (*SearchResponse, error) {
	// Deadline propagation: re-mint the remaining budget as a relative
	// header on the outgoing RPC. A budget too small to round-trip is
	// answered here — typed — instead of shipping a request the far
	// side would only reject.
	deadline, haveDeadline := overload.RemainingFromContext(ctx)
	if haveDeadline && deadline < overload.MinForward {
		return nil, overload.ErrDeadlineExceeded
	}
	bodyBuf := getBuf()
	contentType := "application/json"
	if binary {
		b.binSearches.Add(1)
		contentType = ContentTypeBinary
		*bodyBuf = appendSearchRequest((*bodyBuf)[:0], sreq)
	} else {
		b.jsonSearches.Add(1)
		w := bytes.NewBuffer((*bodyBuf)[:0])
		if err := json.NewEncoder(w).Encode(sreq); err != nil {
			putBuf(bodyBuf)
			return nil, err
		}
		*bodyBuf = w.Bytes()
	}
	rd := readerPool.Get().(*bytes.Reader)
	rd.Reset(*bodyBuf)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.addr+SearchPath, rd)
	if err != nil {
		putBuf(bodyBuf)
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if haveDeadline {
		req.Header.Set(overload.DeadlineHeader, overload.FormatDeadline(deadline))
	}
	// Cross-process correlation: forward the query's request ID and ask
	// the backend to echo its server-side span tree, which is grafted
	// under the current (per-segment) span — client-observed RPC time
	// and server-observed scoring time then sit parent and child in one
	// tree, making network/queue time the visible gap between them.
	tr := trace.FromContext(ctx)
	if tr != nil {
		req.Header.Set(trace.RequestIDHeader, tr.ID)
		req.Header.Set(trace.Header, trace.RequestEcho)
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		// The transport may retain the body reader briefly on aborted
		// requests; let the GC reclaim this pair instead of recycling.
		return nil, err
	}
	rd.Reset(nil)
	readerPool.Put(rd)
	defer putBuf(bodyBuf)
	if tr != nil {
		if remote, derr := trace.DecodeSpan(resp.Header.Get(trace.Header)); derr == nil {
			trace.SpanFromContext(ctx).Graft(remote)
		}
	}
	respBuf := getBuf()
	defer putBuf(respBuf)
	body, err := readRPCBody(resp, (*respBuf)[:0])
	*respBuf = body[:0]
	if err != nil {
		return nil, err
	}
	out := &SearchResponse{}
	mt, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	switch mt {
	case ContentTypeBinary:
		var seg, cand int
		out.Segment, out.Candidates = &seg, &cand
		out.Hits = getWireHits()
		if derr := decodeSearchResponse(body, out); derr != nil {
			recycleWireHits(out.Hits)
			return nil, fmt.Errorf("%w: %v", ErrBadResponse, derr)
		}
	case "application/json":
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if derr := dec.Decode(out); derr != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadResponse, derr)
		}
	default:
		return nil, fmt.Errorf("%w: content type %q", ErrBadResponse, resp.Header.Get("Content-Type"))
	}
	switch {
	case out.Segment == nil || out.Candidates == nil:
		return nil, fmt.Errorf("%w: missing segment/candidates keys", ErrBadResponse)
	case *out.Segment != sreq.Segment:
		return nil, fmt.Errorf("%w: scored segment %d, asked for %d",
			ErrBadResponse, *out.Segment, sreq.Segment)
	case *out.Candidates < len(out.Hits):
		return nil, fmt.Errorf("%w: %d candidates < %d hits",
			ErrBadResponse, *out.Candidates, len(out.Hits))
	}
	return out, nil
}
