package distrib

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseTopology drives the descriptor parser with arbitrary
// bytes. The contract under fuzzing: never panic, classify every
// rejection as exactly one of the typed sentinels, and on acceptance
// return a descriptor that upholds every invariant the rest of the
// package (Connect, Reload, the admin endpoint) relies on without
// re-checking — non-empty groups, normalized schemeful addresses
// unique across the file, and sorted duplicate-free declared ordinals.
func FuzzParseTopology(f *testing.F) {
	seeds := []string{
		`{"version":1,"groups":[{"segments":[0,1],"replicas":["http://a:1","http://b:1"]}]}`,
		`{"groups":[{"replicas":["http://a:1"]},{"replicas":["http://b:1"]}]}`,
		`{"groups":[{"replicas":[]}]}`,
		`{"groups":[{"segments":[0],"replicas":["http://a:1"]},{"segments":[0],"replicas":["http://b:1"]}]}`,
		`{"groups":[{"replicas":["http://a:1","http://a:1/"]}]}`,
		`{"version":99,"groups":[{"replicas":["http://a:1"]}]}`,
		`{"groups":[{"segments":[-3],"replicas":["http://a:1"]}]}`,
		`{"groups":[{"replicas":["no-scheme"]}]}`,
		`{"groups":[{"replicas":["http://a:1"]}]}trailing`,
		`[]`, `null`, `42`, `"x"`, `{`, ``, "\xff\xfe", `{"unknown":1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		desc, err := ParseTopology(data)
		if err != nil {
			syntax := errors.Is(err, ErrTopologySyntax)
			invalid := errors.Is(err, ErrTopologyInvalid)
			if syntax == invalid {
				t.Fatalf("rejection not typed exactly once (syntax=%v invalid=%v): %v", syntax, invalid, err)
			}
			if desc != nil {
				t.Fatal("rejected parse returned a descriptor — a caller could partially apply it")
			}
			return
		}
		if desc.Version != TopologyVersion {
			t.Fatalf("accepted descriptor has version %d", desc.Version)
		}
		if len(desc.Groups) == 0 {
			t.Fatal("accepted descriptor has no groups")
		}
		seenAddr := make(map[string]bool)
		for _, g := range desc.Groups {
			if len(g.Replicas) == 0 {
				t.Fatal("accepted group with empty replica set")
			}
			for _, addr := range g.Replicas {
				if addr == "" || strings.HasSuffix(addr, "/") || !strings.Contains(addr, "://") {
					t.Fatalf("accepted non-normalized address %q", addr)
				}
				if seenAddr[addr] {
					t.Fatalf("accepted duplicate address %q", addr)
				}
				seenAddr[addr] = true
			}
			for i, ord := range g.Segments {
				if ord < 0 {
					t.Fatalf("accepted negative ordinal %d", ord)
				}
				if i > 0 && g.Segments[i-1] >= ord {
					t.Fatalf("accepted unsorted/duplicate ordinals %v", g.Segments)
				}
			}
		}
	})
}
