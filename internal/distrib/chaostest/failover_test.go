package chaostest

import (
	"testing"
	"time"

	"repro/internal/distrib"
	"repro/internal/retrieval"
	"repro/internal/search"
)

// summaryOf picks one backend's telemetry row by address.
func summaryOf(t *testing.T, c *distrib.Cluster, addr string) retrieval.BackendSummary {
	t.Helper()
	for _, s := range c.BackendSummaries() {
		if s.Addr == addr {
			return s
		}
	}
	t.Fatalf("no summary for backend %s", addr)
	return retrieval.BackendSummary{}
}

func one(t *testing.T, eng *search.Engine, q string) {
	t.Helper()
	if _, err := eng.Search(eng.ParseText(q), search.Options{K: 5, Scorer: search.BM25{}}); err != nil {
		t.Fatalf("search: %v", err)
	}
}

// TestFailoverDeterministic pins the error-driven failover path with
// no timing involved at all: the preferred replica's connection is
// severed, so the very first query fails over to the twin, marks the
// victim unhealthy, and every subsequent query routes twin-first
// without another failover.
func TestFailoverDeterministic(t *testing.T) {
	h := New(t, Config{Seed: 3, Docs: 80, Segments: 2, Groups: 1, Replicas: 2})
	c := h.Connect()
	eng := c.NewEngine(nil, 2)
	primary, twin := h.Groups[0][0], h.Groups[0][1]

	// Fresh per-ordinal rotation starts at replica 0, so with both
	// replicas healthy the first query's two segment RPCs both prefer
	// the primary.
	primary.Injector.Set(Kill)
	one(t, eng, "goal match")

	ps, ts := summaryOf(t, c, primary.Addr()), summaryOf(t, c, twin.Addr())
	if ps.Healthy {
		t.Error("primary still marked healthy after severed RPCs")
	}
	if ts.Failovers != 2 {
		t.Errorf("twin failovers = %d, want 2 (one per ordinal)", ts.Failovers)
	}
	if ps.Errors != 2 {
		t.Errorf("primary errors = %d, want 2", ps.Errors)
	}

	// Second query: the unhealthy primary is deprioritized, so the twin
	// answers directly — no new failovers, no new primary errors.
	one(t, eng, "storm vote")
	if after := summaryOf(t, c, twin.Addr()); after.Failovers != 2 {
		t.Errorf("healthy-first routing still failing over (failovers = %d)", after.Failovers)
	}
	if after := summaryOf(t, c, primary.Addr()); after.Errors != 2 {
		t.Errorf("deprioritized primary was still tried first (errors = %d)", after.Errors)
	}

	// Heal: one probe pass restores the primary into rotation.
	primary.Injector.Set(Off)
	c.ProbeNow(t.Context())
	if s := summaryOf(t, c, primary.Addr()); !s.Healthy {
		t.Error("primary unhealthy after heal + probe")
	}
}

// TestHedgeDeterministic drives the hedge path on the fake clock: the
// primary hangs (never errors, never answers), the test advances the
// clock past the hedge budget, and the twin's duplicate wins — zero
// failed queries, exactly one hedge counted, and the hanging RPC's
// cancellation not booked as a backend error.
func TestHedgeDeterministic(t *testing.T) {
	h := New(t, Config{Seed: 5, Docs: 60, Segments: 1, Groups: 1, Replicas: 2})
	c := h.Connect(distrib.WithHedge(50 * time.Millisecond))
	eng := c.NewEngine(nil, 1)
	primary, twin := h.Groups[0][0], h.Groups[0][1]

	primary.Injector.Set(Hang)
	done := make(chan error, 1)
	go func() {
		_, err := eng.Search(eng.ParseText("goal crowd"), search.Options{K: 5, Scorer: search.BM25{}})
		done <- err
	}()
	// The query is now in flight against the hanging primary with its
	// hedge timer armed; only advancing the clock can unblock it.
	h.Clock.AwaitTimers(1)
	select {
	case err := <-done:
		t.Fatalf("query finished before the hedge budget elapsed (err=%v)", err)
	default:
	}
	h.Clock.Advance(50 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("hedged query failed: %v", err)
	}

	if s := summaryOf(t, c, twin.Addr()); s.Hedges != 1 {
		t.Errorf("twin hedges = %d, want 1", s.Hedges)
	}
	if s := summaryOf(t, c, primary.Addr()); s.Errors != 0 {
		t.Errorf("hanging primary booked %d errors; a cancelled hedge loser is not a backend fault", s.Errors)
	}

	// Healed primary, next query: rotation moves to the twin (healthy,
	// position 1 of the rotated order) and answers inside the budget —
	// no new hedge fires without an Advance.
	primary.Injector.Set(Off)
	one(t, eng, "vote summit")
	if s := summaryOf(t, c, twin.Addr()); s.Hedges != 1 {
		t.Errorf("hedges grew to %d without the clock advancing", s.Hedges)
	}
}

// TestProbeDrivenRouting: a probe pass alone (no failed query needed)
// steers routing away from a dead replica — the victim serves zero
// search RPCs while unhealthy and rejoins after a healing probe.
func TestProbeDrivenRouting(t *testing.T) {
	h := New(t, Config{Seed: 13, Docs: 80, Segments: 2, Groups: 1, Replicas: 2})
	c := h.Connect()
	eng := c.NewEngine(nil, 2)
	victim, twin := h.Groups[0][0], h.Groups[0][1]

	victim.Injector.Set(Kill)
	c.ProbeNow(t.Context())
	vs := summaryOf(t, c, victim.Addr())
	if vs.Healthy || vs.ProbeFailures == 0 {
		t.Fatalf("probe did not mark the victim: healthy=%v probe_failures=%d", vs.Healthy, vs.ProbeFailures)
	}

	for i := 0; i < 4; i++ {
		one(t, eng, "goal storm")
	}
	if s := summaryOf(t, c, victim.Addr()); s.Errors != 0 {
		t.Errorf("probed-out replica was still tried (%d errors)", s.Errors)
	}
	if s := summaryOf(t, c, twin.Addr()); s.Failovers != 0 {
		t.Errorf("probe-driven routing should avoid failovers, got %d", s.Failovers)
	}

	victim.Injector.Set(Off)
	c.ProbeNow(t.Context())
	if s := summaryOf(t, c, victim.Addr()); !s.Healthy {
		t.Error("victim unhealthy after healing probe")
	}
}

// TestProbeLoopOnFakeClock: the background probe loop ticks on the
// injected clock — advancing it runs a probe pass without any real
// time passing.
func TestProbeLoopOnFakeClock(t *testing.T) {
	h := New(t, Config{Seed: 17, Docs: 60, Segments: 1, Groups: 1, Replicas: 2})
	c := h.Connect(distrib.WithProbeInterval(time.Second))
	victim := h.Groups[0][0]
	victim.Injector.Set(Kill)

	// The loop armed its first tick at connect; fire it and wait for
	// the health bit to flip.
	h.Clock.AwaitTimers(1)
	h.Clock.Advance(time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for summaryOf(t, c, victim.Addr()).Healthy {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never marked the dead replica unhealthy")
		}
		time.Sleep(time.Millisecond)
	}
}
