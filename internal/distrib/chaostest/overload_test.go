package chaostest

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/distrib"
	"repro/internal/overload"
	"repro/internal/search"
)

// requestTotal sums search RPC launches across every replica — the
// "segment work" an expired or budget-denied query must not cause.
func requestTotal(c *distrib.Cluster) int64 {
	var total int64
	for _, s := range c.BackendSummaries() {
		total += s.Requests
	}
	return total
}

// mustFail runs one query expected to fail (breaker/budget scripts
// deliberately exhaust every replica of an ordinal).
func mustFail(t *testing.T, eng *search.Engine, q string) {
	t.Helper()
	if _, err := eng.Search(eng.ParseText(q), search.Options{K: 5, Scorer: search.BM25{}}); err == nil {
		t.Fatalf("query %q succeeded with every replica scripted dead", q)
	}
}

// TestExpiredDeadlineDoesZeroSegmentWork pins the deadline-propagation
// contract at the scatter layer: a query whose latency budget is
// already spent answers the typed overload.ErrDeadlineExceeded without
// launching a single segment RPC — no wasted scoring work, no backend
// traffic, purely a clock read.
func TestExpiredDeadlineDoesZeroSegmentWork(t *testing.T) {
	h := New(t, Config{Seed: 23, Docs: 80, Segments: 2, Groups: 1, Replicas: 2})
	c := h.Connect()
	eng := c.NewEngine(nil, 2)

	// Warm query: prove the scatter path works before expiring budgets,
	// and establish the request baseline.
	one(t, eng, "goal match")
	base := requestTotal(c)
	if base == 0 {
		t.Fatal("warm query launched no segment RPCs; baseline is meaningless")
	}

	ctx, cancel := overload.WithBudget(context.Background(), 5*time.Millisecond, h.Clock)
	defer cancel()
	h.Clock.Advance(5 * time.Millisecond)

	_, err := eng.SearchContext(ctx, eng.ParseText("goal match"), search.Options{K: 5, Scorer: search.BM25{}})
	if !errors.Is(err, overload.ErrDeadlineExceeded) {
		t.Fatalf("expired-budget query returned %v, want overload.ErrDeadlineExceeded", err)
	}
	if got := requestTotal(c); got != base {
		t.Errorf("expired-budget query launched %d segment RPCs, want 0", got-base)
	}
}

// TestRetryBudgetBoundsRetries pins retry amplification under a
// flapping replica group: with a token-bucket budget of burst 2 and
// earn ratio 0.1, sustained flapping on every replica exhausts the
// bucket, further failovers are denied, and the total RPC traffic the
// replicas see stays bounded by primaries + granted retries — the
// retry storm a naive failover loop would unleash cannot happen.
func TestRetryBudgetBoundsRetries(t *testing.T) {
	h := New(t, Config{Seed: 29, Docs: 80, Segments: 1, Groups: 1, Replicas: 2})
	// Breakers off so the budget is the only thing limiting retries.
	c := h.Connect(distrib.WithRetryBudget(0.1, 2), distrib.WithBreaker(0, 0))
	eng := c.NewEngine(nil, 1)
	for _, b := range h.Groups[0] {
		b.Injector.Set(Flap)
	}

	const n = 40
	for _, q := range Queries(31, n) {
		// Failures are expected once the budget runs dry: a denied
		// failover fails the query rather than amplifying traffic.
		_, _ = eng.Search(eng.ParseText(q), search.Options{K: 5, Scorer: search.BM25{}})
	}

	st := c.RetryBudget()
	if st.Denied == 0 {
		t.Error("budget never denied a retry under sustained flapping")
	}
	maxTaken := int64(2 + n/10) // burst + earned at ratio 0.1
	if st.Taken > maxTaken {
		t.Errorf("budget granted %d retries, want <= %d (burst + earned)", st.Taken, maxTaken)
	}
	if total := requestTotal(c); total > int64(n)+st.Taken {
		t.Errorf("replicas saw %d RPCs from %d queries with %d granted retries — amplification unbounded",
			total, n, st.Taken)
	}
}

// TestBreakerLifecycle scripts a full breaker cycle on the fake clock:
// consecutive failures trip it open, an open breaker still admits a
// sole replica as last resort (never a black hole), a successful
// health probe arms probation without waiting out the cooldown, a
// probation success closes it — and a second trip recovers via the
// cooldown-elapsed path instead.
func TestBreakerLifecycle(t *testing.T) {
	h := New(t, Config{Seed: 37, Docs: 60, Segments: 1, Groups: 1, Replicas: 1})
	c := h.Connect(distrib.WithBreaker(3, time.Minute))
	eng := c.NewEngine(nil, 1)
	solo := h.Groups[0][0]

	solo.Injector.Set(Kill)
	for i := 0; i < 3; i++ {
		mustFail(t, eng, "goal match")
	}
	if s := summaryOf(t, c, solo.Addr()); s.Breaker != distrib.BreakerOpen || s.BreakerTrips != 1 {
		t.Fatalf("after 3 consecutive failures: breaker=%s trips=%d, want open/1", s.Breaker, s.BreakerTrips)
	}

	// Open shapes routing, it never black-holes: the sole replica is
	// still tried as last resort, and the failure restarts the cooldown.
	mustFail(t, eng, "vote storm")
	if s := summaryOf(t, c, solo.Addr()); s.Breaker != distrib.BreakerOpen {
		t.Fatalf("breaker left open without a successful trial: %s", s.Breaker)
	}

	// A successful health probe arms probation immediately — no
	// cooldown wait — and the next query is the single trial RPC.
	solo.Injector.Set(Off)
	c.ProbeNow(t.Context())
	if s := summaryOf(t, c, solo.Addr()); s.Breaker != distrib.BreakerHalfOpen {
		t.Fatalf("after healing probe: breaker=%s, want half_open", s.Breaker)
	}
	one(t, eng, "goal crowd")
	if s := summaryOf(t, c, solo.Addr()); s.Breaker != distrib.BreakerClosed || s.BreakerTrips != 1 {
		t.Fatalf("after trial success: breaker=%s trips=%d, want closed/1", s.Breaker, s.BreakerTrips)
	}

	// Second trip recovers through the cooldown instead of a probe.
	solo.Injector.Set(Kill)
	for i := 0; i < 3; i++ {
		mustFail(t, eng, "storm anthem")
	}
	if s := summaryOf(t, c, solo.Addr()); s.Breaker != distrib.BreakerOpen || s.BreakerTrips != 2 {
		t.Fatalf("second trip: breaker=%s trips=%d, want open/2", s.Breaker, s.BreakerTrips)
	}
	solo.Injector.Set(Off)
	h.Clock.Advance(time.Minute)
	one(t, eng, "summit anthem")
	if s := summaryOf(t, c, solo.Addr()); s.Breaker != distrib.BreakerClosed {
		t.Fatalf("after cooldown + trial success: breaker=%s, want closed", s.Breaker)
	}
}

// TestDegradedPartialMatchesRestrictedOracle pins the degraded-mode
// contract: with one whole replica group dead past failover, a
// WithDegraded engine answers the merged ranking of the surviving
// segments flagged partial — bit-identical to an in-process oracle
// restricted to exactly those segments' documents, with the failed
// ordinals named. Never torn, never silent.
func TestDegradedPartialMatchesRestrictedOracle(t *testing.T) {
	h := New(t, Config{Seed: 41, Docs: 120, Segments: 4, Groups: 2, Replicas: 2})
	c := h.Connect(distrib.WithDegraded())
	eng := c.NewEngine(nil, 4)

	// Group 1 hosts ordinals 1 and 3 (round-robin split); kill both of
	// its replicas so failover cannot save those segments.
	for _, b := range h.Groups[1] {
		b.Injector.Set(Kill)
	}

	// The corpus assigns document s%04d round-robin to segment i%4, so
	// the oracle restriction is a pure ID predicate.
	oracle := h.Oracle()
	surviving := func(id string) bool {
		var i int
		if _, err := fmt.Sscanf(id, "s%04d", &i); err != nil {
			t.Fatalf("unexpected doc id %q", id)
		}
		return i%4 == 0 || i%4 == 2
	}

	opts := search.Options{K: 10, Scorer: search.BM25{}}
	for _, qt := range Queries(43, 8) {
		got, err := eng.Search(eng.ParseText(qt), opts)
		if err != nil {
			t.Fatalf("q=%q: degraded query failed outright: %v", qt, err)
		}
		if !got.Partial {
			t.Fatalf("q=%q: partial flag unset with a whole group down", qt)
		}
		if len(got.FailedSegments) != 2 || got.FailedSegments[0] != 1 || got.FailedSegments[1] != 3 {
			t.Fatalf("q=%q: failed segments %v, want [1 3]", qt, got.FailedSegments)
		}
		oopts := opts
		oopts.Filter = surviving
		want, werr := oracle.Search(oracle.ParseText(qt), oopts)
		if werr != nil {
			t.Fatalf("q=%q: oracle: %v", qt, werr)
		}
		if got.Candidates != want.Candidates || len(got.Hits) != len(want.Hits) {
			t.Fatalf("q=%q: degraded %d hits/%d candidates, restricted oracle %d/%d",
				qt, len(got.Hits), got.Candidates, len(want.Hits), want.Candidates)
		}
		for i := range got.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Fatalf("q=%q rank %d: degraded %+v, restricted oracle %+v", qt, i, got.Hits[i], want.Hits[i])
			}
		}
	}

	// Heal the group: full-topology answers stop carrying the flag and
	// parity with the unrestricted oracle returns.
	for _, b := range h.Groups[1] {
		b.Injector.Set(Off)
	}
	c.ProbeNow(t.Context())
	got, err := eng.Search(eng.ParseText("goal match"), opts)
	if err != nil {
		t.Fatalf("healed query failed: %v", err)
	}
	if got.Partial || len(got.FailedSegments) != 0 {
		t.Fatalf("healed topology still partial: %+v", got.FailedSegments)
	}
}
