// Package chaostest is an in-process chaos harness for the replicated
// scatter/gather tier: it hosts real segment servers behind scriptable
// fault injectors (kill, hang, slow, garbage, flap, torn mid-response)
// and wires them to a distrib.Cluster whose clock and health prober
// are injected, so failover, hedging and probe-driven routing can be
// driven deterministically — no real sleeps — and asserted under
// -race. The tests in this package are the executable form of the
// availability contract: killing any single replica of a 2-way
// topology never fails a query and never changes a ranking.
package chaostest

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distrib"
	"repro/internal/index"
	"repro/internal/search"
)

// Mode is one injected fault. Kill, Hang and Flap apply to every RPC
// path (a dead process is dead for stats, health and search alike);
// Slow, Garbage and Torn scope to the search path, modelling a
// process that is up but misbehaving under load.
type Mode int32

const (
	// Off forwards requests untouched.
	Off Mode = iota
	// Kill severs the TCP connection before any bytes are written — a
	// SIGKILLed or panicked process as the client sees it.
	Kill
	// Hang accepts the request and never answers until the client
	// gives up (deadline or cancellation) — a wedged process.
	Hang
	// Slow sleeps Delay before forwarding — an overloaded process.
	Slow
	// Garbage answers 200 with bytes no codec can decode — memory
	// corruption or a proxy mangling the body.
	Garbage
	// Flap alternates Off and Kill per request — a crash-looping
	// process racing its supervisor.
	Flap
	// Torn writes the response headers and half the real body, then
	// severs the connection — death mid-response, the hardest fault for
	// a streaming client to classify.
	Torn
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Kill:
		return "kill"
	case Hang:
		return "hang"
	case Slow:
		return "slow"
	case Garbage:
		return "garbage"
	case Flap:
		return "flap"
	case Torn:
		return "torn"
	}
	return fmt.Sprintf("mode(%d)", int32(m))
}

// Injector wraps one segment server's handler with a scriptable
// fault. Mode changes are atomic, so a test can flip faults while
// queries are in flight.
type Injector struct {
	next  http.Handler
	mode  atomic.Int32
	delay atomic.Int64 // Slow's sleep, nanoseconds
	seq   atomic.Uint64
	// Faulted counts requests that hit an active fault.
	Faulted atomic.Int64
}

// NewInjector wraps next; the injector starts Off.
func NewInjector(next http.Handler) *Injector {
	return &Injector{next: next}
}

// Set scripts the current fault mode.
func (in *Injector) Set(m Mode) { in.mode.Store(int32(m)) }

// Mode reports the current fault mode.
func (in *Injector) Mode() Mode { return Mode(in.mode.Load()) }

// SetDelay scripts Slow's per-request delay.
func (in *Injector) SetDelay(d time.Duration) { in.delay.Store(int64(d)) }

// sever kills the underlying connection without a response.
func sever(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mode := in.Mode()
	searchPath := r.URL.Path == distrib.SearchPath
	switch mode {
	case Kill:
		in.Faulted.Add(1)
		sever(w)
		return
	case Hang:
		in.Faulted.Add(1)
		// Drain the body first: net/http only watches for client
		// disconnect (and cancels r.Context()) once the request body is
		// consumed, and a hang that outlives its client must still end
		// when the client abandons the call.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		return
	case Flap:
		if in.seq.Add(1)%2 == 1 {
			in.Faulted.Add(1)
			sever(w)
			return
		}
	case Slow:
		if searchPath {
			in.Faulted.Add(1)
			time.Sleep(time.Duration(in.delay.Load()))
		}
	case Garbage:
		if searchPath {
			in.Faulted.Add(1)
			w.Header().Set("Content-Type", distrib.ContentTypeBinary)
			_, _ = w.Write([]byte("\xde\xad\xbe\xef not a frame"))
			return
		}
	case Torn:
		if searchPath {
			in.Faulted.Add(1)
			rec := httptest.NewRecorder()
			in.next.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(body[:len(body)/2])
			// Abort with the promised Content-Length unmet: the client
			// sees an unexpected EOF mid-body.
			panic(http.ErrAbortHandler)
		}
	}
	in.next.ServeHTTP(w, r)
}

// FakeClock is a manual distrib.Clock: timers fire only when the test
// advances it, so hedge budgets and probe ticks become deterministic
// script points instead of real sleeps.
type FakeClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	timers  []*fakeTimer
	created int
}

type fakeTimer struct {
	when time.Time
	ch   chan time.Time
}

// NewFakeClock starts at an arbitrary fixed instant.
func NewFakeClock() *FakeClock {
	c := &FakeClock{now: time.Unix(1_200_000_000, 0)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now implements distrib.Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements distrib.Clock: the returned channel fires when the
// test has advanced past d.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{when: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.timers = append(c.timers, t)
	c.created++
	c.cond.Broadcast()
	return t.ch
}

// AwaitTimers blocks until at least n timers have ever been created —
// the synchronization point that makes "the query has armed its hedge
// timer" an observable event instead of a sleep.
func (c *FakeClock) AwaitTimers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.created < n {
		c.cond.Wait()
	}
}

// Advance moves the clock and fires every timer now due.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.when.After(c.now) {
			t.ch <- c.now
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

// Backend is one injector-wrapped segment server replica.
type Backend struct {
	Injector *Injector
	Hosted   []int
	ts       *httptest.Server
}

// Addr returns the replica's base URL.
func (b *Backend) Addr() string { return b.ts.URL }

// Close shuts the replica's listener down (the harness closes all
// backends at cleanup; tests close one early to model a vanished
// process whose port answers nothing at all).
func (b *Backend) Close() { b.ts.Close() }

// Config sizes a harness.
type Config struct {
	Seed     int64
	Docs     int
	Segments int
	Groups   int // replica groups; ordinals split round-robin
	Replicas int // replicas per group
}

// Harness is a full replicated topology in one process: a deterministic
// corpus built into a single oracle index and a sharded build, served
// by Groups×Replicas injector-wrapped segment servers.
type Harness struct {
	tb      testing.TB
	Single  *index.Index
	Sharded *index.Sharded
	Groups  [][]*Backend
	Clock   *FakeClock

	mu     sync.Mutex
	byAddr map[string]*Backend
}

// New builds the corpus and starts every replica, all faults Off.
func New(tb testing.TB, cfg Config) *Harness {
	tb.Helper()
	if cfg.Docs == 0 {
		cfg.Docs = 120
	}
	if cfg.Segments == 0 {
		cfg.Segments = 4
	}
	if cfg.Groups == 0 {
		cfg.Groups = 2
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	h := &Harness{tb: tb, Clock: NewFakeClock(), byAddr: make(map[string]*Backend)}
	h.Single, h.Sharded = buildCorpus(tb, cfg.Seed, cfg.Docs, cfg.Segments)
	for g := 0; g < cfg.Groups; g++ {
		var hosted []int
		for ord := 0; ord < cfg.Segments; ord++ {
			if ord%cfg.Groups == g {
				hosted = append(hosted, ord)
			}
		}
		var reps []*Backend
		for r := 0; r < cfg.Replicas; r++ {
			reps = append(reps, h.StartReplica(hosted))
		}
		h.Groups = append(h.Groups, reps)
	}
	return h
}

// StartReplica boots one more injector-wrapped replica hosting the
// given ordinals (reload tests swap these into the topology).
func (h *Harness) StartReplica(hosted []int) *Backend {
	h.tb.Helper()
	srv, err := distrib.NewSegmentServer(distrib.ServerConfig{Sharded: h.Sharded, Hosted: hosted})
	if err != nil {
		h.tb.Fatal(err)
	}
	in := NewInjector(srv.Handler())
	ts := httptest.NewServer(in)
	h.tb.Cleanup(ts.Close)
	b := &Backend{Injector: in, Hosted: append([]int(nil), hosted...), ts: ts}
	h.mu.Lock()
	h.byAddr[ts.URL] = b
	h.mu.Unlock()
	return b
}

// Desc builds the current topology descriptor.
func (h *Harness) Desc() *distrib.TopologyDesc {
	desc := &distrib.TopologyDesc{Version: distrib.TopologyVersion}
	for _, reps := range h.Groups {
		var g distrib.TopologyGroup
		for _, b := range reps {
			g.Replicas = append(g.Replicas, b.Addr())
		}
		desc.Groups = append(desc.Groups, g)
	}
	return desc
}

// Prober is a synthetic health probe that consults the injector
// instead of the network: replicas scripted dead (Kill, Hang, Flap)
// probe unhealthy, everything else healthy. Deterministic — a probe
// pass depends only on the scripted modes, never on timing.
func (h *Harness) Prober() distrib.Prober {
	return func(_ context.Context, addr string) error {
		h.mu.Lock()
		b := h.byAddr[addr]
		h.mu.Unlock()
		if b == nil {
			return fmt.Errorf("chaostest: probe of unknown replica %s", addr)
		}
		switch b.Injector.Mode() {
		case Kill, Hang, Flap:
			return fmt.Errorf("chaostest: replica %s scripted %s", addr, b.Injector.Mode())
		}
		return nil
	}
}

// Connect wires a cluster over the harness topology with the fake
// clock and synthetic prober injected (callers may append more
// options, e.g. distrib.WithHedge).
func (h *Harness) Connect(opts ...distrib.Option) *distrib.Cluster {
	h.tb.Helper()
	base := []distrib.Option{
		distrib.WithClock(h.Clock),
		distrib.WithProber(h.Prober()),
	}
	c, err := distrib.ConnectTopology(context.Background(), h.Desc(), append(base, opts...)...)
	if err != nil {
		h.tb.Fatal(err)
	}
	h.tb.Cleanup(c.Close)
	return c
}

// Oracle returns a sequential engine over the single-segment build —
// the in-process ranking every chaos script is compared against.
func (h *Harness) Oracle() *search.Engine {
	return search.NewEngine(h.Single, nil)
}

// Queries draws n deterministic multi-term queries from the corpus
// vocabulary (including a never-matching term).
func Queries(seed int64, n int) []string {
	vocab := []string{"goal", "match", "vote", "storm", "anthem", "summit", "crowd", "election", "missing"}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		q := vocab[rng.Intn(len(vocab))]
		for j := 0; j < rng.Intn(3); j++ {
			q += " " + vocab[rng.Intn(len(vocab))]
		}
		out[i] = q
	}
	return out
}

// buildCorpus mirrors the distrib package's parity-test corpus: the
// same vocabulary-driven random stream built into one single index
// (the oracle) and one sharded build (what the replicas serve).
func buildCorpus(tb testing.TB, seed int64, docs, segments int) (*index.Index, *index.Sharded) {
	tb.Helper()
	vocab := []string{
		"goal", "match", "referee", "vote", "budget", "storm", "flood",
		"anthem", "strike", "summit", "crowd", "stadium", "election",
	}
	gen := func(add func(*index.Document) error) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < docs; i++ {
			d := index.NewDocument(fmt.Sprintf("s%04d", i))
			for j := 0; j < 2+rng.Intn(12); j++ {
				d.AddTerms(index.FieldText, vocab[rng.Intn(len(vocab))])
			}
			if rng.Intn(3) == 0 {
				d.SetTermCount(index.FieldConcept, vocab[rng.Intn(len(vocab))], 1+rng.Intn(9))
			}
			if err := add(d); err != nil {
				tb.Fatal(err)
			}
		}
	}
	sb := index.NewBuilder()
	gen(sb.AddDocument)
	shb := index.NewShardedBuilder(segments)
	gen(shb.AddDocument)
	sh, err := shb.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return sb.Build(), sh
}
