package chaostest

// The mid-stream death suite: what an API client (and the front-tier
// router proxying it) observes when a segment backend dies while an
// NDJSON search stream is being produced. The serving contract is
// complete-page-or-typed-error: because the merge tier finishes the
// whole scatter/gather before the first NDJSON byte is written, a
// backend death can only ever surface as an error envelope — never as
// a torn stream that parses halfway.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/router"
	"repro/internal/synth"
	"repro/internal/webapi"
)

// streamTier is a full serving stack over injector-wrapped segment
// backends: chaos-capable segment tier → merge tier → webapi → router.
type streamTier struct {
	backends [][]*Backend // group → replicas
	cluster  *distrib.Cluster
	serve    *httptest.Server
	front    *httptest.Server // router in front of serve
	sid      string
	query    string
}

func newStreamTier(t *testing.T, replicas int) *streamTier {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.BuildShardedIndex(arch.Collection, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := &streamTier{}
	desc := &distrib.TopologyDesc{Version: distrib.TopologyVersion}
	for ord := 0; ord < 2; ord++ {
		var reps []*Backend
		var g distrib.TopologyGroup
		for r := 0; r < replicas; r++ {
			srv, err := distrib.NewSegmentServer(distrib.ServerConfig{Sharded: sh, Hosted: []int{ord}})
			if err != nil {
				t.Fatal(err)
			}
			in := NewInjector(srv.Handler())
			ts := httptest.NewServer(in)
			t.Cleanup(ts.Close)
			reps = append(reps, &Backend{Injector: in, Hosted: []int{ord}, ts: ts})
			g.Replicas = append(g.Replicas, ts.URL)
		}
		st.backends = append(st.backends, reps)
		desc.Groups = append(desc.Groups, g)
	}
	st.cluster, err = distrib.ConnectTopology(context.Background(), desc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.cluster.Close)
	// No result cache: every stream request must really scatter to the
	// (possibly faulted) backends instead of replaying a cached page.
	sys, err := core.NewSystem(st.cluster.NewEngine(nil, 2), arch.Collection, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := webapi.NewServer(sys, webapi.WithTopologyAdmin(st.cluster))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	st.serve = httptest.NewServer(srv.Handler())
	t.Cleanup(st.serve.Close)
	rt, err := router.New(router.Config{
		Replicas:      []string{st.serve.URL},
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	st.front = httptest.NewServer(rt)
	t.Cleanup(st.front.Close)

	sdk, err := client.New(st.front.URL)
	if err != nil {
		t.Fatal(err)
	}
	st.sid, err = sdk.CreateSession(context.Background(), client.CreateSessionRequest{UserID: "chaos"})
	if err != nil {
		t.Fatal(err)
	}
	st.query = arch.Truth.SearchTopics[0].Query
	return st
}

// fetchStream GETs the NDJSON stream endpoint and classifies the raw
// body. Returns (complete, envelope): complete means a 200 whose body
// is well-formed NDJSON closed by a summary line; envelope means a
// non-200 whose body is one well-formed error envelope. Anything else
// — a 200 body that stops without its summary line, a line that does
// not parse, trailing garbage — fails the test: that is a torn body.
func (st *streamTier) fetchStream(t *testing.T, base string) (complete, envelope bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/search/stream?session=%s&q=%s",
		base, st.sid, strings.ReplaceAll(st.query, " ", "+")))
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("stream body died mid-read (torn body): %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
			t.Fatalf("status %d with non-envelope body %q", resp.StatusCode, body)
		}
		return false, true
	}
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sawSummary := false
	for sc.Scan() {
		if sawSummary {
			t.Fatalf("NDJSON line after the summary terminator: %q", sc.Text())
		}
		var line struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("torn NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "hit":
		case "summary":
			sawSummary = true
		default:
			t.Fatalf("unknown stream line type %q", line.Type)
		}
	}
	if !sawSummary {
		t.Fatal("200 NDJSON stream ended without its summary line — torn body")
	}
	return true, false
}

// TestStreamBackendDeathUnreplicated: with single-replica groups there
// is nowhere to fail over, so a backend tearing its response mid-body
// must surface as a typed error envelope through both the serve tier
// and the router — and service must recover the moment the backend
// heals.
func TestStreamBackendDeathUnreplicated(t *testing.T) {
	st := newStreamTier(t, 1)
	if ok, _ := st.fetchStream(t, st.front.URL); !ok {
		t.Fatal("clean stream did not complete")
	}
	for _, mode := range []Mode{Torn, Kill, Garbage} {
		st.backends[0][0].Injector.Set(mode)
		for _, base := range []string{st.serve.URL, st.front.URL} {
			if _, env := st.fetchStream(t, base); !env {
				t.Fatalf("mode %s via %s: faulted stream did not produce an error envelope", mode, base)
			}
		}
		st.backends[0][0].Injector.Set(Off)
		if ok, _ := st.fetchStream(t, st.front.URL); !ok {
			t.Fatalf("mode %s: stream did not recover after heal", mode)
		}
	}
}

// TestStreamBackendDeathReplicated: with a twin per group the same
// faults are absorbed by failover — every stream completes through the
// router, zero failed requests, while the victim is dead and after a
// live topology reload re-admits it.
func TestStreamBackendDeathReplicated(t *testing.T) {
	st := newStreamTier(t, 2)
	victim := st.backends[0][0]
	for _, mode := range []Mode{Torn, Kill, Garbage, Flap} {
		victim.Injector.Set(mode)
		for i := 0; i < 3; i++ {
			if ok, _ := st.fetchStream(t, st.front.URL); !ok {
				t.Fatalf("mode %s: stream %d failed despite a healthy twin", mode, i)
			}
		}
		victim.Injector.Set(Off)
	}

	// Live reload through the admin endpoint. While the victim is dead,
	// a descriptor naming it must be rejected wholesale (every replica
	// is revalidated before the swap) and serving must continue; once
	// the victim "restarts" (heals), the same POST re-admits it.
	victim.Injector.Set(Kill)
	desc, err := json.Marshal(st.clusterDesc())
	if err != nil {
		t.Fatal(err)
	}
	post := func() int {
		t.Helper()
		resp, err := http.Post(st.serve.URL+"/api/v1/admin/topology", "application/json", strings.NewReader(string(desc)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := post(); status != http.StatusBadRequest {
		t.Fatalf("admin POST naming a dead replica: status %d, want 400", status)
	}
	if ok, _ := st.fetchStream(t, st.front.URL); !ok {
		t.Fatal("stream failed after a rejected reload")
	}
	victim.Injector.Set(Off)
	if status := post(); status != http.StatusOK {
		t.Fatalf("admin POST after replica restart: status %d, want 200", status)
	}
	if ok, _ := st.fetchStream(t, st.front.URL); !ok {
		t.Fatal("stream failed after live reload re-admitted the replica")
	}
}

// clusterDesc rebuilds the descriptor for the current backend layout.
func (st *streamTier) clusterDesc() *distrib.TopologyDesc {
	desc := &distrib.TopologyDesc{Version: distrib.TopologyVersion}
	for _, reps := range st.backends {
		var g distrib.TopologyGroup
		for _, b := range reps {
			g.Replicas = append(g.Replicas, b.Addr())
		}
		desc.Groups = append(desc.Groups, g)
	}
	return desc
}
