package chaostest

import (
	"sync"
	"testing"
	"time"

	"repro/internal/distrib"
	"repro/internal/search"
)

// assertParity requires the cluster engine's ranking to be
// bit-identical (IDs, scores, candidate counts) to the in-process
// oracle for every query — the invariant no fault script may bend.
func assertParity(t *testing.T, eng, oracle *search.Engine, queries []string, k int) {
	t.Helper()
	for _, qt := range queries {
		opts := search.Options{K: k, Scorer: search.BM25{}}
		got, gerr := eng.Search(eng.ParseText(qt), opts)
		want, werr := oracle.Search(oracle.ParseText(qt), opts)
		if gerr != nil || werr != nil {
			t.Fatalf("q=%q: cluster err %v, oracle err %v", qt, gerr, werr)
		}
		if got.Candidates != want.Candidates || len(got.Hits) != len(want.Hits) {
			t.Fatalf("q=%q: %d hits/%d candidates, oracle %d/%d",
				qt, len(got.Hits), got.Candidates, len(want.Hits), want.Candidates)
		}
		for i := range got.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Fatalf("q=%q rank %d: %+v, oracle %+v", qt, i, got.Hits[i], want.Hits[i])
			}
		}
	}
}

// hammer runs every query `rounds` times across `workers` goroutines
// and fails the test on any query error — the zero-failed-query
// assertion, exercised concurrently so -race sees the fault paths.
func hammer(t *testing.T, eng *search.Engine, queries []string, workers, rounds int) {
	t.Helper()
	errc := make(chan error, workers*rounds*len(queries))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, qt := range queries {
					if _, err := eng.Search(eng.ParseText(qt), search.Options{K: 10, Scorer: search.BM25{}}); err != nil {
						errc <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	failed := 0
	for err := range errc {
		failed++
		if failed <= 3 {
			t.Errorf("query failed under chaos: %v", err)
		}
	}
	if failed > 0 {
		t.Fatalf("%d failed queries, want 0", failed)
	}
}

// TestChaosScripts is the tentpole assertion: under every fault script
// — a replica killed, wedged slow, answering garbage, flapping, or
// tearing responses mid-body — a 2-way replicated topology serves
// every query with rankings bit-identical to the in-process oracle,
// and recovers cleanly when the fault heals.
func TestChaosScripts(t *testing.T) {
	scripts := []struct {
		name string
		mode Mode
		opts []distrib.Option
	}{
		// Slow is the one script that needs real time: the wedged replica
		// is only abandoned when the RPC deadline expires, so it runs with
		// a tight timeout. Hang is its deterministic cousin below in
		// TestHedgeDeterministic.
		{"kill", Kill, nil},
		{"garbage", Garbage, nil},
		{"torn", Torn, nil},
		{"flap", Flap, nil},
		{"slow", Slow, []distrib.Option{distrib.WithTimeout(150 * time.Millisecond)}},
	}
	for _, sc := range scripts {
		t.Run(sc.name, func(t *testing.T) {
			h := New(t, Config{Seed: 7, Docs: 100, Segments: 4, Groups: 2, Replicas: 2})
			c := h.Connect(sc.opts...)
			eng := c.NewEngine(nil, 4)
			oracle := h.Oracle()
			queries := Queries(23, 6)

			assertParity(t, eng, oracle, queries, 10)

			victim := h.Groups[0][0]
			victim.Injector.Set(sc.mode)
			if sc.mode == Slow {
				victim.Injector.SetDelay(2 * time.Second)
			}
			workers, rounds := 4, 3
			if sc.mode == Slow {
				// Each slow-path hit costs one real RPC deadline; keep the
				// wall clock bounded.
				workers, rounds = 2, 1
			}
			hammer(t, eng, queries, workers, rounds)
			assertParity(t, eng, oracle, queries, 10)
			if victim.Injector.Faulted.Load() == 0 {
				t.Fatalf("fault script %s never intercepted a request — the test proved nothing", sc.name)
			}

			// Heal and converge: a probe pass restores routing preference,
			// and parity still holds.
			victim.Injector.Set(Off)
			c.ProbeNow(t.Context())
			hammer(t, eng, queries, 2, 2)
			assertParity(t, eng, oracle, queries, 10)
			for _, s := range c.BackendSummaries() {
				if !s.Healthy {
					t.Errorf("replica %s still unhealthy after heal + probe", s.Addr)
				}
			}
		})
	}
}

// TestChaosReloadSwapsReplica: with one replica of group 0 dead, the
// topology is live-reloaded to replace it — while queries hammer the
// cluster — and the swap is atomic: zero failed queries throughout,
// the dead replica gone from the routing table afterwards.
func TestChaosReloadSwapsReplica(t *testing.T) {
	h := New(t, Config{Seed: 11, Docs: 100, Segments: 4, Groups: 2, Replicas: 2})
	c := h.Connect()
	eng := c.NewEngine(nil, 4)
	oracle := h.Oracle()
	queries := Queries(29, 6)

	dead := h.Groups[0][0]
	dead.Injector.Set(Kill)
	hammer(t, eng, queries, 4, 2)

	// Swap a fresh replica in for the dead one, under query load.
	fresh := h.StartReplica(dead.Hosted)
	h.Groups[0][0] = fresh
	done := make(chan struct{})
	go func() {
		defer close(done)
		hammer(t, eng, queries, 4, 4)
	}()
	if err := c.Reload(t.Context(), h.Desc()); err != nil {
		t.Fatalf("reload: %v", err)
	}
	<-done
	assertParity(t, eng, oracle, queries, 10)

	for _, addr := range c.Backends() {
		if addr == dead.Addr() {
			t.Fatalf("dead replica %s still in topology after reload", addr)
		}
	}
	found := false
	for _, addr := range c.Backends() {
		if addr == fresh.Addr() {
			found = true
		}
	}
	if !found {
		t.Fatalf("fresh replica %s not in topology after reload", fresh.Addr())
	}
	if v := c.Topology(); v.Reloads != 1 {
		t.Fatalf("reloads = %d, want 1", v.Reloads)
	}
}
