package distrib

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ilog"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/synth"
	"repro/internal/text"
)

// buildCorpus builds the same random document stream into one single
// index and one n-segment sharded index (the same generator as
// internal/search's parallel parity tests, so the two suites pin the
// same document space from both sides of the process boundary).
func buildCorpus(t testing.TB, seed int64, docs, segments int) (*index.Index, *index.Sharded) {
	t.Helper()
	vocab := []string{
		"goal", "match", "referee", "vote", "budget", "storm", "flood",
		"anthem", "strike", "summit", "crowd", "stadium", "election",
	}
	gen := func(add func(*index.Document) error) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < docs; i++ {
			d := index.NewDocument(fmt.Sprintf("s%04d", i))
			for j := 0; j < 2+rng.Intn(12); j++ {
				d.AddTerms(index.FieldText, vocab[rng.Intn(len(vocab))])
			}
			if rng.Intn(3) == 0 {
				d.SetTermCount(index.FieldConcept, vocab[rng.Intn(len(vocab))], 1+rng.Intn(9))
			}
			if err := add(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	sb := index.NewBuilder()
	gen(sb.AddDocument)
	shb := index.NewShardedBuilder(segments)
	gen(shb.AddDocument)
	sh, err := shb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sb.Build(), sh
}

// queriesFor draws random multi-term queries from the corpus
// vocabulary (including a term that never matches).
func queriesFor(seed int64, n int) []string {
	vocab := []string{"goal", "match", "vote", "storm", "anthem", "summit", "crowd", "election", "missing"}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		q := vocab[rng.Intn(len(vocab))]
		for j := 0; j < rng.Intn(3); j++ {
			q += " " + vocab[rng.Intn(len(vocab))]
		}
		out[i] = q
	}
	return out
}

// startTopology splits the sharded build's ordinals round-robin across
// `servers` httptest-hosted segment servers and returns their base
// URLs. Every server is built over the full sharded index (as real
// ivrsegment processes are) but hosts only its assigned ordinals.
func startTopology(t testing.TB, sh *index.Sharded, servers int) []string {
	t.Helper()
	if servers > sh.NumSegments() {
		servers = sh.NumSegments()
	}
	addrs := make([]string, servers)
	for s := 0; s < servers; s++ {
		var hosted []int
		for ord := 0; ord < sh.NumSegments(); ord++ {
			if ord%servers == s {
				hosted = append(hosted, ord)
			}
		}
		srv, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: hosted})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		addrs[s] = ts.URL
	}
	return addrs
}

// connectCluster connects to a topology or fails the test.
func connectCluster(t testing.TB, addrs []string, opts ...Option) *Cluster {
	t.Helper()
	c, err := Connect(context.Background(), addrs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDistributedParity is the tentpole guarantee: rankings from the
// scatter/gather merge tier over httptest-hosted segment servers are
// bit-identical (IDs, scores, global doc ids, candidate counts) to
// both the in-process sharded fan-out and the sequential single-index
// scan, across seeds, scorers, segment counts and K.
func TestDistributedParity(t *testing.T) {
	scorers := []search.Scorer{
		search.BM25{}, search.BM25{K1: 1.6, B: 0.3},
		search.TFIDF{},
		search.DirichletLM{}, search.DirichletLM{Mu: 500},
	}
	for _, seed := range []int64{1, 2008, 77} {
		for _, segments := range []int{2, 3, 5} {
			single, sh := buildCorpus(t, seed, 120, segments)
			addrs := startTopology(t, sh, 2)
			cluster := connectCluster(t, addrs)
			an := text.NewAnalyzer()
			seq := search.NewEngine(single, an)
			par := search.NewShardedEngine(sh, an, 4)
			dist := cluster.NewEngine(an, 4)
			for qi, qt := range queriesFor(seed, 8) {
				for _, scorer := range scorers {
					for _, k := range []int{5, 50, 1000} {
						opts := search.Options{K: k, Scorer: scorer}
						want, err := seq.Search(seq.ParseText(qt), opts)
						if err != nil {
							t.Fatal(err)
						}
						local, err := par.Search(par.ParseText(qt), opts)
						if err != nil {
							t.Fatal(err)
						}
						got, err := dist.Search(dist.ParseText(qt), opts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("seed=%d segs=%d q%d=%q scorer=%s k=%d: distributed ranking diverged from sequential\n got %+v\nwant %+v",
								seed, segments, qi, qt, scorer.Name(), k, got.Hits, want.Hits)
						}
						if !reflect.DeepEqual(got, local) {
							t.Fatalf("seed=%d segs=%d q%d=%q scorer=%s k=%d: distributed ranking diverged from in-process fan-out",
								seed, segments, qi, qt, scorer.Name(), k)
						}
					}
				}
			}
		}
	}
}

// TestDistributedFilterParity pins the filtered path: opaque filters
// cannot cross the process boundary, so the merge tier fetches full
// candidate lists and filters before the top-k cut — output must still
// be bit-identical.
func TestDistributedFilterParity(t *testing.T) {
	single, sh := buildCorpus(t, 9, 100, 3)
	addrs := startTopology(t, sh, 2)
	cluster := connectCluster(t, addrs)
	an := text.NewAnalyzer()
	seq := search.NewEngine(single, an)
	dist := cluster.NewEngine(an, 3)
	filter := func(id string) bool { return id[len(id)-1]%2 == 0 }
	for _, qt := range queriesFor(9, 6) {
		want, err := seq.Search(seq.ParseText(qt), search.Options{K: 40, Filter: filter})
		if err != nil {
			t.Fatal(err)
		}
		got, err := dist.Search(dist.ParseText(qt), search.Options{K: 40, Filter: filter})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("q=%q: filtered distributed ranking diverged\n got %+v\nwant %+v", qt, got.Hits, want.Hits)
		}
	}
}

// TestDistributedConceptParity covers the concept field end to end.
func TestDistributedConceptParity(t *testing.T) {
	single, sh := buildCorpus(t, 21, 90, 4)
	addrs := startTopology(t, sh, 2)
	cluster := connectCluster(t, addrs)
	seq := search.NewEngine(single, nil)
	dist := cluster.NewEngine(nil, 4)
	want, err := seq.Search(search.ConceptQuery("crowd", "stadium"), search.Options{K: 40})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.Search(search.ConceptQuery("crowd", "stadium"), search.Options{K: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("concept-field distributed ranking diverged")
	}
}

// TestDistributedStatsView pins the aggregated statistics surface the
// expander and recommenders read through the engine.
func TestDistributedStatsView(t *testing.T) {
	single, sh := buildCorpus(t, 31, 80, 4)
	addrs := startTopology(t, sh, 2)
	cluster := connectCluster(t, addrs)
	seq := search.NewEngine(single, nil)
	dist := cluster.NewEngine(nil, 0)
	if dist.NumDocs() != seq.NumDocs() {
		t.Errorf("NumDocs %d vs %d", dist.NumDocs(), seq.NumDocs())
	}
	if dist.NumSegments() != sh.NumSegments() {
		t.Errorf("NumSegments %d, want %d", dist.NumSegments(), sh.NumSegments())
	}
	for _, term := range []string{"goal", "storm", "missing"} {
		if got, want := dist.DocFreq(index.FieldText, term), seq.DocFreq(index.FieldText, term); got != want {
			t.Errorf("DocFreq(%q) %d vs %d", term, got, want)
		}
	}
	if d, ok := dist.DocIDOf("s0007"); !ok || single.ExternalID(d) != "s0007" {
		t.Errorf("DocIDOf mismatch: %d %v", d, ok)
	}
	if _, ok := dist.DocIDOf("nope"); ok {
		t.Error("DocIDOf invented a document")
	}
	if dist.Index() != nil {
		t.Error("distributed engine leaked a single-index view")
	}
}

// TestDistributedSystemParity runs the full adaptive stack — expander,
// evidence accumulation, profile rescoring and the evidence-keyed
// result cache — over a distributed engine and an in-process one, and
// requires identical rankings at every iteration. This is the
// end-to-end guarantee that ivrserve -segment-addrs serves the same
// product.
func TestDistributedSystemParity(t *testing.T) {
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := core.BuildShardedIndex(arch.Collection, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startTopology(t, sh, 2)
	cluster := connectCluster(t, addrs)
	if cluster.NumDocs() != arch.Collection.NumShots() {
		t.Fatalf("cluster indexes %d docs, collection has %d shots", cluster.NumDocs(), arch.Collection.NumShots())
	}

	cfg := core.Config{UseImplicit: true, UseProfile: true, CacheSize: 64}
	distSys, err := core.NewSystem(cluster.NewEngine(nil, 3), arch.Collection, cfg)
	if err != nil {
		t.Fatal(err)
	}
	localSys, err := core.NewSystemFromCollection(arch.Collection, cfg)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{}
	for _, topic := range arch.Truth.SearchTopics {
		queries = append(queries, topic.Query)
		if len(queries) == 4 {
			break
		}
	}
	dSess := distSys.NewSession("u1", nil)
	lSess := localSys.NewSession("u1", nil)
	for qi, qt := range queries {
		dRes, err := dSess.Query(qt)
		if err != nil {
			t.Fatal(err)
		}
		lRes, err := lSess.Query(qt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dRes, lRes) {
			t.Fatalf("iteration %d (%q): adapted distributed ranking diverged\n got %v\nwant %v",
				qi, qt, dRes.IDs()[:min(5, len(dRes.Hits))], lRes.IDs()[:min(5, len(lRes.Hits))])
		}
		// Feed identical implicit evidence into both sessions so the
		// next iteration exercises the expander over each engine's
		// statistics surface.
		for i, h := range dRes.Hits {
			if i >= 2 {
				break
			}
			if err := dSess.ObserveAll(clickEvents(dSess.ID(), h.ID, i)); err != nil {
				t.Fatal(err)
			}
			if err := lSess.ObserveAll(clickEvents(lSess.ID(), h.ID, i)); err != nil {
				t.Fatal(err)
			}
		}
		if d, l := dSess.EvidenceFingerprint(), lSess.EvidenceFingerprint(); d != l {
			t.Fatalf("iteration %d: evidence fingerprints diverged (%x vs %x)", qi, d, l)
		}
	}
	// The distributed system's cache saw every unfiltered query.
	if snap := distSys.RetrievalSnapshot(); snap.Cache.Misses == 0 {
		t.Error("distributed system never touched its result cache")
	}
}

// TestDistributedKernelParityConcurrent is the 2-backend companion to
// internal/search's kernel parity suite: many goroutines query one
// merge tier over two segment servers at once, every answer compared
// against the sequential single-index scan, per scorer. Under -race
// this pins that the pooled kernel state (dense accumulators, top-k
// heaps, recycled hit slices) is never shared across the concurrent
// segment RPCs on either side of the process boundary.
func TestDistributedKernelParityConcurrent(t *testing.T) {
	single, sh := buildCorpus(t, 67, 140, 4)
	addrs := startTopology(t, sh, 2)
	cluster := connectCluster(t, addrs)
	an := text.NewAnalyzer()
	seq := search.NewEngine(single, an)
	dist := cluster.NewEngine(an, 4)
	scorers := []search.Scorer{search.BM25{}, search.TFIDF{}, search.DirichletLM{}}
	queries := queriesFor(67, 4)
	type caseKey struct{ qi, si int }
	wants := make(map[caseKey]search.Results)
	for qi, qt := range queries {
		for si, scorer := range scorers {
			want, err := seq.Search(seq.ParseText(qt), search.Options{K: 25, Scorer: scorer})
			if err != nil {
				t.Fatal(err)
			}
			wants[caseKey{qi, si}] = want
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				for qi, qt := range queries {
					for si, scorer := range scorers {
						got, err := dist.Search(dist.ParseText(qt), search.Options{K: 25, Scorer: scorer})
						if err != nil {
							errs <- err
							return
						}
						if !reflect.DeepEqual(got, wants[caseKey{qi, si}]) {
							errs <- fmt.Errorf("q=%q scorer=%s: concurrent distributed ranking diverged", qt, scorer.Name())
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// clickEvents is the implicit evidence of one clicked-and-played
// result.
func clickEvents(sessionID, shotID string, rank int) []ilog.Event {
	return []ilog.Event{
		{SessionID: sessionID, Action: ilog.ActionClickKeyframe, ShotID: shotID, Rank: rank, TopicID: -1},
		{SessionID: sessionID, Action: ilog.ActionPlay, ShotID: shotID, Rank: rank, Seconds: 5, TopicID: -1},
	}
}
