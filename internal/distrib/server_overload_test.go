package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/metrics"
	"repro/internal/overload"
)

// postSearchDeadline posts a valid search carrying an X-IVR-Deadline
// header.
func postSearchDeadline(t *testing.T, url, deadline string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(validSearchRequest())
	req, err := http.NewRequest("POST", url+SearchPath, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(overload.DeadlineHeader, deadline)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRPCSearchDeadlineHeader pins the segment tier's deadline
// protocol: spent budgets answer the typed 504 before any body is
// read, malformed budgets are the caller's bug (400, never a shed),
// and a live budget scores normally.
func TestRPCSearchDeadlineHeader(t *testing.T) {
	ts, srv, _ := newRPCServer(t, 2)

	for _, v := range []string{"0", "-40"} {
		wantRPCEnvelope(t, postSearchDeadline(t, ts.URL, v), http.StatusGatewayTimeout, codeDeadline)
	}
	if n := srv.deadline.Load(); n != 2 {
		t.Errorf("deadline_exceeded counter = %d after 2 spent budgets, want 2", n)
	}

	for _, v := range []string{"bogus", "+250", "2.5", "600001"} {
		wantRPCEnvelope(t, postSearchDeadline(t, ts.URL, v), http.StatusBadRequest, codeInvalid)
	}

	resp := postSearchDeadline(t, ts.URL, "5000")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live-budget search: status %d, want 200", resp.StatusCode)
	}
	if n := srv.deadline.Load(); n != 2 {
		t.Errorf("deadline_exceeded counter moved to %d on non-deadline outcomes", n)
	}
}

// TestRPCSearchShedEnvelope pins the admission refusal: with the sole
// concurrency slot held, a search RPC is shed as a typed 429 with a
// Retry-After the merge tier and SDK honour — and admits again the
// moment the slot frees.
func TestRPCSearchShedEnvelope(t *testing.T) {
	_, sh := buildCorpus(t, 3, 60, 2)
	srv, err := NewSegmentServer(ServerConfig{
		Sharded:   sh,
		Admission: metrics.AdmissionConfig{InitialLimit: 1, MinLimit: 1, MaxQueue: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ticket, err := srv.gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(validSearchRequest())
	resp := postSearch(t, ts.URL, body)
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	wantRPCEnvelope(t, resp, http.StatusTooManyRequests, codeOverloaded)

	ticket.Release()
	ok := postSearch(t, ts.URL, body)
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("post-release search: status %d, want 200", ok.StatusCode)
	}
	if st := srv.gate.Stats(); st.Shed != 1 {
		t.Errorf("gate shed count = %d, want 1", st.Shed)
	}
}
