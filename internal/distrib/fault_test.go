package distrib

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
)

// TestConnectBackendDown: a dead address at connect time is a typed
// *BackendError, not a hang (the RPC timeout bounds it).
func TestConnectBackendDown(t *testing.T) {
	start := time.Now()
	_, err := Connect(context.Background(),
		[]string{"http://127.0.0.1:1"}, WithTimeout(500*time.Millisecond))
	if err == nil {
		t.Fatal("connect to dead backend succeeded")
	}
	var be *BackendError
	if !errors.As(err, &be) {
		t.Fatalf("error %v (%T) is not a *BackendError", err, err)
	}
	if be.Segment != -1 {
		t.Errorf("stats-phase error carries segment %d, want -1", be.Segment)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("connect took %v, not bounded by the RPC timeout", elapsed)
	}
}

// TestConnectTopologyValidation: incoherent topologies are rejected at
// connect time, before any query can return a silently partial or
// doubled ranking.
func TestConnectTopologyValidation(t *testing.T) {
	_, sh := buildCorpus(t, 5, 60, 4)
	startWith := func(hosted []int) string {
		t.Helper()
		srv, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: hosted})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts.URL
	}
	ctx := context.Background()

	t.Run("missing segment", func(t *testing.T) {
		_, err := Connect(ctx, []string{startWith([]int{0, 1})})
		if err == nil || !contains(err, "hosted by no backend") {
			t.Fatalf("missing segments accepted: %v", err)
		}
	})
	t.Run("duplicate segment", func(t *testing.T) {
		_, err := Connect(ctx, []string{startWith([]int{0, 1, 2, 3}), startWith([]int{3})})
		if err == nil || !contains(err, "hosted by both") {
			t.Fatalf("doubled segment accepted: %v", err)
		}
	})
	t.Run("different collection", func(t *testing.T) {
		_, other := buildCorpus(t, 99, 60, 4)
		osrv, err := NewSegmentServer(ServerConfig{Sharded: other, Hosted: []int{2, 3}})
		if err != nil {
			t.Fatal(err)
		}
		ots := httptest.NewServer(osrv.Handler())
		t.Cleanup(ots.Close)
		_, err = Connect(ctx, []string{startWith([]int{0, 1}), ots.URL})
		if err == nil || !contains(err, "different collection") {
			t.Fatalf("mixed-corpus topology accepted: %v", err)
		}
	})
	t.Run("different source hash", func(t *testing.T) {
		// Same index content, but the servers claim different source
		// archives (metadata the merge tier serves locally could
		// diverge even when the indexed text agrees).
		a, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: []int{0, 1}, SourceHash: 111})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: []int{2, 3}, SourceHash: 222})
		if err != nil {
			t.Fatal(err)
		}
		ats, bts := httptest.NewServer(a.Handler()), httptest.NewServer(b.Handler())
		t.Cleanup(ats.Close)
		t.Cleanup(bts.Close)
		_, err = Connect(ctx, []string{ats.URL, bts.URL})
		if err == nil || !contains(err, "different collection") {
			t.Fatalf("mixed source hashes accepted: %v", err)
		}
	})
	t.Run("different segment count", func(t *testing.T) {
		_, other := buildCorpus(t, 5, 60, 2)
		osrv, err := NewSegmentServer(ServerConfig{Sharded: other})
		if err != nil {
			t.Fatal(err)
		}
		ots := httptest.NewServer(osrv.Handler())
		t.Cleanup(ots.Close)
		_, err = Connect(ctx, []string{startWith([]int{0, 1, 2, 3}), ots.URL})
		if err == nil {
			t.Fatal("mixed segment counts accepted")
		}
	})
}

func contains(err error, substr string) bool {
	return err != nil && strings.Contains(err.Error(), substr)
}

// TestBackendDiesAfterConnect: a backend that goes down between
// queries surfaces as search.SegmentError wrapping *BackendError with
// the failed ordinal — never a partial ranking.
func TestBackendDiesAfterConnect(t *testing.T) {
	_, sh := buildCorpus(t, 7, 80, 4)
	aliveSrv, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	alive := httptest.NewServer(aliveSrv.Handler())
	t.Cleanup(alive.Close)
	dyingSrv, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dying := httptest.NewServer(dyingSrv.Handler())

	cluster := connectCluster(t, []string{alive.URL, dying.URL}, WithTimeout(time.Second))
	eng := cluster.NewEngine(nil, 4)
	if _, err := eng.Search(eng.ParseText("goal vote"), search.Options{K: 10}); err != nil {
		t.Fatalf("healthy topology failed: %v", err)
	}

	dying.Close()
	_, err = eng.Search(eng.ParseText("goal vote"), search.Options{K: 10})
	if err == nil {
		t.Fatal("search over a dead backend returned a ranking")
	}
	var se *search.SegmentError
	if !errors.As(err, &se) {
		t.Fatalf("error %v (%T) is not a *search.SegmentError", err, err)
	}
	if se.Segment != 1 && se.Segment != 3 {
		t.Errorf("failed segment %d, want 1 or 3 (the dead backend's)", se.Segment)
	}
	var be *BackendError
	if !errors.As(err, &be) {
		t.Fatalf("segment error does not wrap *BackendError: %v", err)
	}
	if be.Addr != dying.URL {
		t.Errorf("blamed backend %s, want %s", be.Addr, dying.URL)
	}
	// Telemetry counted the fault against the dead backend.
	for _, s := range cluster.BackendSummaries() {
		if s.Addr == dying.URL && s.Errors == 0 {
			t.Error("dead backend's error counter stayed zero")
		}
	}
}

// slowSwitch wraps a segment server handler and stalls /rpc/v1/search
// while enabled.
type slowSwitch struct {
	inner http.Handler
	delay time.Duration
	on    atomic.Bool
}

func (s *slowSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.on.Load() && r.URL.Path == SearchPath {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(s.delay):
		}
	}
	s.inner.ServeHTTP(w, r)
}

// TestSlowBackend: a stalled backend hits the per-RPC deadline and
// surfaces as a typed timeout within bounded wall-clock time — the
// merge tier can never hang on one slow segment.
func TestSlowBackend(t *testing.T) {
	_, sh := buildCorpus(t, 11, 60, 2)
	srv, err := NewSegmentServer(ServerConfig{Sharded: sh})
	if err != nil {
		t.Fatal(err)
	}
	// Stall for 1.5s: far past the 200ms RPC deadline, but short
	// enough that httptest's Close (which waits for the in-flight
	// handler) stays quiet.
	slow := &slowSwitch{inner: srv.Handler(), delay: 1500 * time.Millisecond}
	ts := httptest.NewServer(slow)
	t.Cleanup(ts.Close)

	cluster := connectCluster(t, []string{ts.URL}, WithTimeout(200*time.Millisecond))
	eng := cluster.NewEngine(nil, 2)
	slow.on.Store(true)
	start := time.Now()
	_, err = eng.Search(eng.ParseText("goal"), search.Options{K: 10})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("search against a stalled backend returned a ranking")
	}
	var be *BackendError
	if !errors.As(err, &be) {
		t.Fatalf("error %v (%T) is not a *BackendError", err, err)
	}
	if !be.Timeout() {
		t.Errorf("fault %v not reported as a timeout", be)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline-exceeded search took %v, want ~200ms", elapsed)
	}
}

// garbageSwitch serves a selectable corruption mode on the search
// endpoint, passing everything else (stats, health) through to a real
// segment server so Connect succeeds.
type garbageSwitch struct {
	inner http.Handler
	mode  atomic.Int32
}

// Corruption modes.
const (
	garbageOff         = iota // pass through
	garbageNotJSON            // 200 with a non-JSON body
	garbageWrongShape         // 200 JSON missing the required keys
	garbageWrongSeg           // 200 well-formed but wrong segment echo
	garbageErrorStatus        // 500 with an error envelope
	garbageBadContent         // 200 JSON body, text/html content type
)

func (g *garbageSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mode := g.mode.Load()
	if mode == garbageOff || r.URL.Path != SearchPath {
		g.inner.ServeHTTP(w, r)
		return
	}
	switch mode {
	case garbageNotJSON:
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, "<html>definitely not json</html>")
	case garbageWrongShape:
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{}`)
	case garbageWrongSeg:
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"segment": 9999, "hits": [], "candidates": 0}`)
	case garbageErrorStatus:
		writeRPCError(w, http.StatusInternalServerError, codeInternal, "injected fault")
	case garbageBadContent:
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `{"segment": 0, "hits": [], "candidates": 0}`)
	}
}

// TestGarbageBackend: every corruption mode surfaces as a typed error
// — a garbage body can never decay into an empty or wrong partial
// ranking.
func TestGarbageBackend(t *testing.T) {
	_, sh := buildCorpus(t, 13, 60, 2)
	srv, err := NewSegmentServer(ServerConfig{Sharded: sh})
	if err != nil {
		t.Fatal(err)
	}
	g := &garbageSwitch{inner: srv.Handler()}
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	cluster := connectCluster(t, []string{ts.URL})
	eng := cluster.NewEngine(nil, 2)
	want, err := eng.Search(eng.ParseText("goal storm"), search.Options{K: 10})
	if err != nil || len(want.Hits) == 0 {
		t.Fatalf("healthy search: %v (%d hits)", err, len(want.Hits))
	}

	cases := []struct {
		name     string
		mode     int32
		sentinel error
	}{
		{"non-json body", garbageNotJSON, ErrBadResponse},
		{"missing keys", garbageWrongShape, ErrBadResponse},
		{"wrong segment echo", garbageWrongSeg, ErrBadResponse},
		{"error status", garbageErrorStatus, ErrBackendStatus},
		{"wrong content type", garbageBadContent, ErrBadResponse},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g.mode.Store(tc.mode)
			defer g.mode.Store(garbageOff)
			_, err := eng.Search(eng.ParseText("goal storm"), search.Options{K: 10})
			if err == nil {
				t.Fatal("corrupted backend produced a ranking")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("error %v does not match sentinel %v", err, tc.sentinel)
			}
			var be *BackendError
			if !errors.As(err, &be) {
				t.Fatalf("error %v (%T) is not a *BackendError", err, err)
			}
		})
	}

	// Recovery: clearing the fault restores bit-identical service.
	got, err := eng.Search(eng.ParseText("goal storm"), search.Options{K: 10})
	if err != nil {
		t.Fatalf("recovered search failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-fault ranking differs from pre-fault ranking")
	}
}

// TestConcurrentSearchWithFlappingBackend hammers one engine from many
// goroutines while a backend flaps between healthy and corrupt (run
// under -race in CI): every call must return either the exact healthy
// ranking or a typed error — nothing in between.
func TestConcurrentSearchWithFlappingBackend(t *testing.T) {
	_, sh := buildCorpus(t, 17, 100, 4)
	srv, err := NewSegmentServer(ServerConfig{Sharded: sh})
	if err != nil {
		t.Fatal(err)
	}
	g := &garbageSwitch{inner: srv.Handler()}
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	cluster := connectCluster(t, []string{ts.URL})
	eng := cluster.NewEngine(nil, 4)
	want, err := eng.Search(eng.ParseText("goal vote"), search.Options{K: 25})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				g.mode.Store(garbageWrongShape)
			} else {
				g.mode.Store(garbageOff)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, err := eng.Search(eng.ParseText("goal vote"), search.Options{K: 25})
				if err != nil {
					if !errors.Is(err, ErrBadResponse) {
						errs <- fmt.Errorf("unexpected error kind: %w", err)
						return
					}
					continue
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("flapping backend produced a divergent ranking")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
