package distrib

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// Topology fault sentinels, matchable through errors.Is on any error
// returned by the descriptor parser or by a reload. The split matters
// operationally: a syntax or validation error means the descriptor
// itself is bad (fix the file), a mismatch error means the descriptor
// is well-formed but names backends that cannot serve this collection
// (wrong archive, wrong segment count) — either way the running
// topology is left untouched.
var (
	// ErrTopologySyntax marks a descriptor that does not parse as the
	// versioned JSON document at all.
	ErrTopologySyntax = errors.New("distrib: malformed topology descriptor")
	// ErrTopologyInvalid marks a well-formed descriptor that violates a
	// structural invariant: no groups, an empty replica set, a duplicate
	// address, or an ordinal claimed by two groups.
	ErrTopologyInvalid = errors.New("distrib: invalid topology descriptor")
	// ErrTopologyMismatch marks a reload whose backends disagree with
	// the running cluster — different collection hash, source hash,
	// segment count, or per-ordinal document counts. A mismatched
	// replica can never be swapped in.
	ErrTopologyMismatch = errors.New("distrib: topology mismatches running cluster")
)

// TopologyVersion is the current descriptor schema version. Version 0
// (the field omitted) is accepted as an alias for 1.
const TopologyVersion = 1

// TopologyGroup declares one replica set: every listed address must
// serve the same segment ordinals over the same collection build.
// Segments optionally pins which ordinals the group is expected to
// host; when present, Connect/Reload reject a group whose replicas
// report a different hosted set, catching an operator who pointed a
// group entry at the wrong processes.
type TopologyGroup struct {
	Segments []int    `json:"segments,omitempty"`
	Replicas []string `json:"replicas"`
}

// TopologyDesc is the parsed topology descriptor: the replica groups a
// merge tier scatters over. The JSON form is
//
//	{
//	  "version": 1,
//	  "groups": [
//	    {"segments": [0,1], "replicas": ["http://h1a:8091", "http://h1b:8091"]},
//	    {"segments": [2,3], "replicas": ["http://h2a:8092", "http://h2b:8092"]}
//	  ]
//	}
//
// with "segments" optional (hosted ordinals are discovered from each
// replica's /rpc/v1/stats and validated for coherence either way).
type TopologyDesc struct {
	Version int             `json:"version,omitempty"`
	Groups  []TopologyGroup `json:"groups"`
}

// ParseTopology parses and validates a descriptor document. The
// returned descriptor is normalized: addresses are trimmed of
// trailing slashes and declared segment lists are sorted. Errors are
// typed (ErrTopologySyntax / ErrTopologyInvalid) and the parser never
// returns a descriptor that violates its invariants, so a caller can
// hand any successfully parsed descriptor straight to a reload.
func ParseTopology(data []byte) (*TopologyDesc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var desc TopologyDesc
	if err := dec.Decode(&desc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTopologySyntax, err)
	}
	// Trailing garbage after the document is as suspect as a bad body:
	// reject instead of silently ignoring half the input.
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: trailing data after descriptor", ErrTopologySyntax)
	}
	if err := validateTopology(&desc); err != nil {
		return nil, err
	}
	return &desc, nil
}

// validateTopology enforces the structural invariants and normalizes
// the descriptor in place.
func validateTopology(desc *TopologyDesc) error {
	if desc.Version != 0 && desc.Version != TopologyVersion {
		return fmt.Errorf("%w: unsupported version %d (want %d)", ErrTopologyInvalid, desc.Version, TopologyVersion)
	}
	desc.Version = TopologyVersion
	if len(desc.Groups) == 0 {
		return fmt.Errorf("%w: no replica groups", ErrTopologyInvalid)
	}
	seenAddr := make(map[string]int)
	seenOrd := make(map[int]int)
	for gi := range desc.Groups {
		g := &desc.Groups[gi]
		if len(g.Replicas) == 0 {
			return fmt.Errorf("%w: group %d has an empty replica set", ErrTopologyInvalid, gi)
		}
		for ri, addr := range g.Replicas {
			addr = strings.TrimRight(strings.TrimSpace(addr), "/")
			if addr == "" {
				return fmt.Errorf("%w: group %d replica %d is empty", ErrTopologyInvalid, gi, ri)
			}
			if !strings.Contains(addr, "://") {
				return fmt.Errorf("%w: group %d replica %q has no scheme", ErrTopologyInvalid, gi, addr)
			}
			if prev, dup := seenAddr[addr]; dup {
				return fmt.Errorf("%w: address %q appears in groups %d and %d", ErrTopologyInvalid, addr, prev, gi)
			}
			seenAddr[addr] = gi
			g.Replicas[ri] = addr
		}
		for _, ord := range g.Segments {
			if ord < 0 {
				return fmt.Errorf("%w: group %d declares negative segment %d", ErrTopologyInvalid, gi, ord)
			}
			if prev, dup := seenOrd[ord]; dup {
				return fmt.Errorf("%w: segment %d declared by groups %d and %d", ErrTopologyInvalid, ord, prev, gi)
			}
			seenOrd[ord] = gi
		}
		sort.Ints(g.Segments)
	}
	return nil
}

// ParseAddrGroups parses the -segment-addrs command-line syntax into a
// descriptor: groups separated by commas, replicas within a group
// separated by "|". "http://a,http://b" is the classic unreplicated
// topology; "http://a|http://a2,http://b|http://b2" is the same two
// groups with a twin each.
func ParseAddrGroups(s string) (*TopologyDesc, error) {
	desc := &TopologyDesc{Version: TopologyVersion}
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		var g TopologyGroup
		for _, rep := range strings.Split(part, "|") {
			if rep = strings.TrimSpace(rep); rep != "" {
				g.Replicas = append(g.Replicas, rep)
			}
		}
		desc.Groups = append(desc.Groups, g)
	}
	if err := validateTopology(desc); err != nil {
		return nil, err
	}
	return desc, nil
}

// flatDesc lifts a plain address list into single-replica groups (the
// Connect([]string) compatibility shape).
func flatDesc(addrs []string) *TopologyDesc {
	desc := &TopologyDesc{Version: TopologyVersion}
	for _, a := range addrs {
		desc.Groups = append(desc.Groups, TopologyGroup{Replicas: []string{a}})
	}
	return desc
}

// ReplicaView is one replica's row in the topology view.
type ReplicaView struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// TopologyGroupView is one replica group in the topology view.
type TopologyGroupView struct {
	Segments []int         `json:"segments"`
	Replicas []ReplicaView `json:"replicas"`
}

// TopologyView is the merge tier's live topology: what
// GET /api/v1/admin/topology serves and what a reload summary reports.
type TopologyView struct {
	Segments     int                 `json:"segments"`
	Reloads      int64               `json:"reloads"`
	ReloadErrors int64               `json:"reload_errors"`
	Groups       []TopologyGroupView `json:"groups"`
}

// WatchTopologyFile polls path every interval (on the cluster's clock)
// and applies the descriptor whenever the file's mtime or size
// changes. A descriptor that fails to parse or validate — or a reload
// the backends reject — is logged through logf and the running
// topology stays untouched; the watcher keeps polling, so fixing the
// file recovers without a restart. The returned stop function ends the
// watch; Close stops it too.
func (c *Cluster) WatchTopologyFile(path string, interval time.Duration, logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	done := make(chan struct{})
	var lastMod time.Time
	var lastSize int64
	if fi, err := os.Stat(path); err == nil {
		lastMod, lastSize = fi.ModTime(), fi.Size()
	}
	go func() {
		for {
			select {
			case <-done:
				return
			case <-c.stop:
				return
			case <-c.clock.After(interval):
			}
			fi, err := os.Stat(path)
			if err != nil {
				continue // transient (editor replace); retry next tick
			}
			if fi.ModTime().Equal(lastMod) && fi.Size() == lastSize {
				continue
			}
			lastMod, lastSize = fi.ModTime(), fi.Size()
			data, err := os.ReadFile(path)
			if err != nil {
				logf("topology watch: read %s: %v", path, err)
				continue
			}
			if err := c.ApplyTopology(nil, data); err != nil {
				logf("topology watch: %s rejected: %v", path, err)
				continue
			}
			logf("topology watch: %s applied (%d groups)", path, len(c.Topology().Groups))
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
