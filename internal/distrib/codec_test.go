package distrib

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/search"
)

// codecRequest builds a request with every field shape the codec must
// preserve: multi-term lists, a negative K, and floats whose bits a
// lossy format would mangle.
func codecRequest() SearchRequest {
	return SearchRequest{
		Segment: 3,
		Field:   "text",
		Terms: []WireTerm{
			{Term: "goal", Weight: 1},
			{Term: "stadium", Weight: 0.3333333333333333},
			{Term: "", Weight: 0},
		},
		Stats: []WireTermStats{
			{N: 60, AvgDocLen: 7.142857142857143, TotalLen: 420, DF: 20, CF: 35, Weight: 1},
			{N: 60, AvgDocLen: 7.142857142857143, TotalLen: 420, DF: 0, CF: 0, Weight: 0.3333333333333333},
			{N: 60, AvgDocLen: 7.142857142857143, TotalLen: 420, DF: 1, CF: 1, Weight: 0},
		},
		Scorer: ScorerSpec{Name: "bm25", K1: 1.2000000000000002, B: 0.75},
		K:      -1,
	}
}

// TestBinaryCodecRoundTrip pins both message types bit-exactly through
// encode/decode, including reuse of a pooled destination struct.
func TestBinaryCodecRoundTrip(t *testing.T) {
	want := codecRequest()
	frame := appendSearchRequest(nil, &want)
	// Decode into a dirty struct: stale fields must not leak through.
	got := SearchRequest{
		Segment: 99, Field: "concept", K: 7,
		Terms: []WireTerm{{Term: "stale", Weight: 9}},
		Stats: []WireTermStats{{N: 1}},
	}
	if err := decodeSearchRequest(frame, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("request round trip:\n got %+v\nwant %+v", got, want)
	}

	hits := []WireHit{
		{Doc: 0, ID: "", Score: math.Nextafter(1, 2)},
		{Doc: math.MaxUint32, ID: "s0042", Score: 7.614729834512345},
		{Doc: 17, ID: "shot", Score: 0},
	}
	rframe := appendSearchResponse(nil, 5, hits, 123)
	var seg, cand int
	out := SearchResponse{Segment: &seg, Candidates: &cand}
	if err := decodeSearchResponse(rframe, &out); err != nil {
		t.Fatal(err)
	}
	if seg != 5 || cand != 123 || !reflect.DeepEqual(out.Hits, hits) {
		t.Fatalf("response round trip: segment=%d candidates=%d hits=%+v", seg, cand, out.Hits)
	}
	for i := range hits {
		if math.Float64bits(out.Hits[i].Score) != math.Float64bits(hits[i].Score) {
			t.Fatalf("hit %d score bits changed across the wire", i)
		}
	}

	// Empty hit lists are a normal result, not an error.
	empty := appendSearchResponse(nil, 0, nil, 0)
	out = SearchResponse{Segment: &seg, Candidates: &cand, Hits: []WireHit{{ID: "stale"}}}
	if err := decodeSearchResponse(empty, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Hits) != 0 {
		t.Fatalf("empty response decoded %d hits", len(out.Hits))
	}
}

// TestBinaryCodecMalformed drives the decoder's structural checks:
// every case must error, never panic, never silently accept.
func TestBinaryCodecMalformed(t *testing.T) {
	good := appendSearchRequest(nil, &SearchRequest{
		Field: "text", Terms: []WireTerm{{Term: "goal", Weight: 1}},
		Stats: []WireTermStats{{N: 1, DF: 1, CF: 1, Weight: 1}}, Scorer: ScorerSpec{Name: "bm25"}, K: 10,
	})
	goodResp := appendSearchResponse(nil, 0, []WireHit{{Doc: 1, ID: "x", Score: 1}}, 1)
	mutate := func(src []byte, fn func([]byte)) []byte {
		b := append([]byte(nil), src...)
		fn(b)
		return b
	}
	hugeCount := func(src []byte, v uint64) []byte {
		// Replace the term-count varint (first byte after segment,
		// field "text") with an inflated value and fix the frame length.
		b := append([]byte(nil), src[:binHeaderLen+1+1+4]...)
		b = binary.AppendUvarint(b, v)
		b = append(b, src[binHeaderLen+1+1+4+1:]...)
		binary.LittleEndian.PutUint32(b[6:10], uint32(len(b)-binHeaderLen))
		return b
	}
	cases := []struct {
		name string
		req  bool
		buf  []byte
	}{
		{"empty", true, nil},
		{"short header", true, good[:binHeaderLen-1]},
		{"bad magic", true, mutate(good, func(b []byte) { b[0] = 'X' })},
		{"bad version", true, mutate(good, func(b []byte) { b[4] = 9 })},
		{"wrong msg type", true, goodResp},
		{"wrong msg type resp", false, good},
		{"length larger than frame", true, mutate(good, func(b []byte) {
			binary.LittleEndian.PutUint32(b[6:10], uint32(len(b)))
		})},
		{"length smaller than frame", true, mutate(good, func(b []byte) {
			binary.LittleEndian.PutUint32(b[6:10], 1)
		})},
		{"truncated payload", true, mutate(good[:len(good)-3], func(b []byte) {
			binary.LittleEndian.PutUint32(b[6:10], uint32(len(b)-binHeaderLen))
		})},
		{"term count over cap", true, hugeCount(good, maxWireTerms+1)},
		{"term count over payload", true, hugeCount(good, maxWireTerms-1)},
		{"hit count over payload", false, mutate(goodResp, func(b []byte) {
			// nHits sits after two 1-byte varints (segment, candidates).
			b[binHeaderLen+2] = 200
		})},
		{"trailing bytes", true, mutate(append(good, 0xAA), func(b []byte) {
			binary.LittleEndian.PutUint32(b[6:10], uint32(len(b)-binHeaderLen))
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.req {
				err = decodeSearchRequest(tc.buf, &SearchRequest{})
			} else {
				var seg, cand int
				err = decodeSearchResponse(tc.buf, &SearchResponse{Segment: &seg, Candidates: &cand})
			}
			if err == nil {
				t.Fatal("malformed frame decoded without error")
			}
		})
	}
}

// TestBinaryCodecCorruptionFuzz flips random bits and truncates valid
// frames at random offsets: the decoders must never panic (errors are
// fine — and for payload corruption past the header, decoding to the
// wrong values without an error is acceptable only because the server
// re-validates every field semantically).
func TestBinaryCodecCorruptionFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(2026))
	req := codecRequest()
	reqFrame := appendSearchRequest(nil, &req)
	respFrame := appendSearchResponse(nil, 2, []WireHit{
		{Doc: 9, ID: "s0009", Score: 3.25}, {Doc: 14, ID: "s0014", Score: 1.5},
	}, 7)
	for trial := 0; trial < 500; trial++ {
		for _, src := range [][]byte{reqFrame, respFrame} {
			b := append([]byte(nil), src...)
			switch r.Intn(3) {
			case 0:
				b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
			case 1:
				b = b[:r.Intn(len(b))]
			default:
				b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
				b = b[:1+r.Intn(len(b))]
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("trial %d: decoder panicked: %v", trial, p)
					}
				}()
				_ = decodeSearchRequest(b, &SearchRequest{})
				var seg, cand int
				_ = decodeSearchResponse(b, &SearchResponse{Segment: &seg, Candidates: &cand})
			}()
		}
	}
}

// TestRPCSearchBinaryEndpoint is the server half of the negotiation
// contract: a binary request gets a binary response whose decoded
// hits are bit-identical to the JSON rendering of the same query, and
// the codec counters attribute each body to its framing.
func TestRPCSearchBinaryEndpoint(t *testing.T) {
	ts, srv, _ := newRPCServer(t, 3)
	req := validSearchRequest()

	jbody, _ := json.Marshal(req)
	jresp := postSearch(t, ts.URL, jbody)
	var want SearchResponse
	if err := json.NewDecoder(jresp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()

	frame := appendSearchRequest(nil, &req)
	resp, err := http.Post(ts.URL+SearchPath, ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeBinary {
		t.Fatalf("binary request answered with content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if cl := resp.ContentLength; cl != int64(buf.Len()) {
		t.Fatalf("Content-Length %d, body %d bytes", cl, buf.Len())
	}
	var seg, cand int
	got := SearchResponse{Segment: &seg, Candidates: &cand}
	if err := decodeSearchResponse(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if seg != *want.Segment || cand != *want.Candidates || !reflect.DeepEqual(got.Hits, want.Hits) {
		t.Fatalf("binary response diverged from JSON:\n got seg=%d cand=%d %+v\nwant seg=%d cand=%d %+v",
			seg, cand, got.Hits, *want.Segment, *want.Candidates, want.Hits)
	}
	if len(frame) >= len(jbody) {
		t.Errorf("binary request (%d bytes) not smaller than JSON (%d bytes)", len(frame), len(jbody))
	}
	snapJSON, snapBin := srv.codec.json.Load(), srv.codec.binary.Load()
	if snapJSON != 1 || snapBin != 1 {
		t.Fatalf("codec counters json=%d binary=%d, want 1/1", snapJSON, snapBin)
	}
}

// TestRPCSearchBinaryErrors mirrors the JSON guards on the binary
// path: oversized bodies 413 before decode, malformed frames 400, and
// both answer with the JSON error envelope.
func TestRPCSearchBinaryErrors(t *testing.T) {
	ts, _, _ := newRPCServer(t, 2)
	post := func(body []byte) *http.Response {
		resp, err := http.Post(ts.URL+SearchPath, ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	big := make([]byte, MaxSearchBody+16)
	copy(big, binMagic[:])
	wantRPCEnvelope(t, post(big), http.StatusRequestEntityTooLarge, codeTooLarge)
	wantRPCEnvelope(t, post([]byte("not a frame")), http.StatusBadRequest, codeInvalid)
	req := validSearchRequest()
	frame := appendSearchRequest(nil, &req)
	wantRPCEnvelope(t, post(frame[:len(frame)-2]), http.StatusBadRequest, codeInvalid)
}

// TestCodecNegotiationFallback pins the mixed-version story: against a
// backend that rejects the binary media type, the client demotes that
// backend to JSON, retries the same query transparently, and never
// sends binary again — one fallback, zero failed queries.
func TestCodecNegotiationFallback(t *testing.T) {
	_, sh := buildCorpus(t, 3, 60, 2)
	srv, err := NewSegmentServer(ServerConfig{Sharded: sh})
	if err != nil {
		t.Fatal(err)
	}
	// A "legacy" front that refuses the binary codec the way a
	// pre-codec server would reject a frame: 400 on a body that is not
	// JSON (415 is exercised as the other demotion trigger).
	rejects := 0
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == SearchPath && r.Header.Get("Content-Type") != "application/json" {
			rejects++
			status, code := http.StatusBadRequest, codeInvalid
			if rejects%2 == 0 {
				status, code = http.StatusUnsupportedMediaType, codeInvalid
			}
			writeRPCError(w, status, code, "cannot parse body")
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer legacy.Close()

	c := connectCluster(t, []string{legacy.URL})
	b := c.backendsNow()[0]
	req := validSearchRequest()
	resp, err := b.search(context.Background(), req)
	if err != nil {
		t.Fatalf("search through legacy backend: %v", err)
	}
	if *resp.Segment != 0 || len(resp.Hits) == 0 {
		t.Fatalf("fallback search returned %+v", resp)
	}
	if rejects != 1 {
		t.Fatalf("legacy backend saw %d binary bodies, want exactly 1", rejects)
	}
	if b.useBinary.Load() {
		t.Error("backend not demoted to JSON after rejection")
	}
	if b.codecFallbacks.Load() != 1 || b.binSearches.Load() != 1 || b.jsonSearches.Load() != 1 {
		t.Errorf("counters fallbacks=%d bin=%d json=%d, want 1/1/1",
			b.codecFallbacks.Load(), b.binSearches.Load(), b.jsonSearches.Load())
	}
	// Subsequent queries go straight to JSON.
	if _, err := b.search(context.Background(), req); err != nil {
		t.Fatalf("post-demotion search: %v", err)
	}
	if rejects != 1 {
		t.Fatalf("demoted backend sent binary again (%d rejections)", rejects)
	}
}

// TestDistributedCodecParity: rankings through the binary codec are
// bit-identical to the same cluster forced onto JSON — the codec can
// change bytes on the wire, never a score or an order.
func TestDistributedCodecParity(t *testing.T) {
	_, sh := buildCorpus(t, 11, 90, 3)
	addrs := startTopology(t, sh, 2)
	binC := connectCluster(t, addrs)
	jsonC := connectCluster(t, addrs, WithJSONCodec())
	binEng := binC.NewEngine(nil, 2)
	jsonEng := jsonC.NewEngine(nil, 2)
	for _, qt := range queriesFor(5, 8) {
		for _, k := range []int{3, 10, 1000} {
			opts := search.Options{K: k, Scorer: search.BM25{}}
			bres, berr := binEng.Search(binEng.ParseText(qt), opts)
			jres, jerr := jsonEng.Search(jsonEng.ParseText(qt), opts)
			if berr != nil || jerr != nil {
				t.Fatalf("q=%q k=%d: errors %v / %v", qt, k, berr, jerr)
			}
			if !reflect.DeepEqual(bres, jres) {
				t.Fatalf("q=%q k=%d: binary and JSON rankings diverged", qt, k)
			}
		}
	}
	for _, b := range binC.backendsNow() {
		if b.binSearches.Load() == 0 || b.jsonSearches.Load() != 0 {
			t.Errorf("backend %s: bin=%d json=%d, want all-binary", b.addr, b.binSearches.Load(), b.jsonSearches.Load())
		}
	}
	for _, b := range jsonC.backendsNow() {
		if b.binSearches.Load() != 0 {
			t.Errorf("backend %s sent binary despite WithJSONCodec", b.addr)
		}
	}
}

// TestSegmentPrometheusCodecFamilies: the scrape surface the CI smoke
// test asserts against — codec split and kernel block-max counters.
func TestSegmentPrometheusCodecFamilies(t *testing.T) {
	ts, _, _ := newRPCServer(t, 2)
	req := validSearchRequest()
	frame := appendSearchRequest(nil, &req)
	resp, err := http.Post(ts.URL+SearchPath, ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	scrape, err := http.Get(ts.URL + MetricsAliasPath)
	if err != nil {
		t.Fatal(err)
	}
	defer scrape.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(scrape.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`ivr_rpc_codec_requests_total{codec="binary"} 1`,
		`ivr_rpc_codec_requests_total{codec="json"}`,
		"# TYPE ivr_kernel_blocks_skipped_total counter",
		"ivr_kernel_segment_scans_total",
		"ivr_kernel_postings_skipped_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// --- per-hop codec micro-benchmarks (JSON vs binary) ---

func benchRequest() SearchRequest {
	req := SearchRequest{
		Segment: 2,
		Field:   "text",
		Scorer:  ScorerSpec{Name: "bm25"},
		K:       10,
	}
	for i := 0; i < 4; i++ {
		req.Terms = append(req.Terms, WireTerm{Term: "anthem", Weight: 1})
		req.Stats = append(req.Stats, WireTermStats{
			N: 12000, AvgDocLen: 7.42, TotalLen: 89000, DF: 340, CF: 612, Weight: 1,
		})
	}
	return req
}

func benchHits(n int) []WireHit {
	hits := make([]WireHit, n)
	for i := range hits {
		hits[i] = WireHit{Doc: uint32(i * 7), ID: "s01234", Score: 7.61472983 / float64(i+1)}
	}
	return hits
}

func BenchmarkSearchRequestBinary(b *testing.B) {
	req := benchRequest()
	var dec SearchRequest
	buf := appendSearchRequest(nil, &req)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendSearchRequest(buf[:0], &req)
		if err := decodeSearchRequest(buf, &dec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchRequestJSON(b *testing.B) {
	req := benchRequest()
	var dec SearchRequest
	ref, _ := json.Marshal(&req)
	b.SetBytes(int64(len(ref)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := json.Marshal(&req)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.Unmarshal(buf, &dec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchResponseBinary(b *testing.B) {
	hits := benchHits(10)
	var seg, cand int
	out := SearchResponse{Segment: &seg, Candidates: &cand}
	buf := appendSearchResponse(nil, 2, hits, 4321)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendSearchResponse(buf[:0], 2, hits, 4321)
		if err := decodeSearchResponse(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchResponseJSON(b *testing.B) {
	hits := benchHits(10)
	seg, cand := 2, 4321
	resp := SearchResponse{Segment: &seg, Candidates: &cand, Hits: hits}
	var out SearchResponse
	ref, _ := json.Marshal(&resp)
	b.SetBytes(int64(len(ref)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := json.Marshal(&resp)
		if err != nil {
			b.Fatal(err)
		}
		out.Hits = out.Hits[:0]
		if err := json.Unmarshal(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}
