package distrib

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/overload"
	"repro/internal/retrieval"
	"repro/internal/search"
	"repro/internal/text"
	"repro/internal/trace"
)

// DefaultRPCTimeout bounds one segment RPC when no option overrides
// it. A segment scoring pass is sub-millisecond work; five seconds is
// generous headroom for a loaded backend while still guaranteeing a
// hung backend surfaces as a typed timeout instead of a stalled query.
const DefaultRPCTimeout = 5 * time.Second

// statsDeadline bounds the startup statistics download when the
// Connect context carries no deadline of its own.
const statsDeadline = 2 * time.Minute

// Clock abstracts the time source the cluster's hedge timers and
// probe loop run on. Production uses the real clock; the chaos tests
// inject a manual one so hedge and probe behaviour is exercised
// deterministically, without real sleeps.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Prober checks one backend's liveness; nil error marks it healthy.
// The default prober GETs /rpc/v1/healthz under the RPC timeout;
// tests inject synthetic probers for deterministic health scripting.
type Prober func(ctx context.Context, addr string) error

// Option configures Connect.
type Option func(*clusterConfig)

type clusterConfig struct {
	timeout         time.Duration
	hc              *http.Client
	forceJSON       bool
	hedgeAfter      time.Duration
	probeInterval   time.Duration
	clock           Clock
	prober          Prober
	retryRatio      float64
	retryBurst      int
	breakerFails    int
	breakerCooldown time.Duration
	degraded        bool
}

// Overload-protection defaults: retried traffic (hedges + failovers)
// is bounded to 10% of primary traffic with a 64-token burst; a
// replica trips its breaker open after 5 consecutive retryable faults
// and re-enters rotation via one probation RPC after a successful
// probe or a 5s cooldown.
const (
	defaultRetryRatio      = 0.1
	defaultRetryBurst      = 64
	defaultBreakerFails    = 5
	defaultBreakerCooldown = 5 * time.Second
)

// WithTimeout bounds each segment RPC (default DefaultRPCTimeout).
func WithTimeout(d time.Duration) Option {
	return func(c *clusterConfig) { c.timeout = d }
}

// WithJSONCodec forces every search RPC onto the JSON body codec
// instead of negotiating the binary framing — the escape hatch for
// codec-vs-codec benchmarking and debugging with readable captures.
func WithJSONCodec() Option {
	return func(c *clusterConfig) { c.forceJSON = true }
}

// WithHTTPClient substitutes the transport (tests inject
// httptest-backed clients; WithTimeout still applies unless the
// client already sets one).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *clusterConfig) { c.hc = hc }
}

// WithHedge arms latency hedging: when a segment RPC has not answered
// after d and the ordinal has an idle twin replica, the same request
// is sent to the twin and the first success wins (the loser is
// cancelled, and a cancelled loser is never counted as a backend
// fault). 0 disables hedging (the default). Hedges are visible per
// backend in BackendSummaries and as ivr_rpc_hedge_total on the serve
// tier's Prometheus scrape.
func WithHedge(d time.Duration) Option {
	return func(c *clusterConfig) { c.hedgeAfter = d }
}

// WithProbeInterval starts a background health-probe loop ticking
// every d: each replica is probed (default prober: GET /rpc/v1/healthz
// under the RPC timeout) and its health bit feeds routing — healthy
// replicas are preferred, unhealthy ones tried last. 0 (the default)
// disables the loop; health is then driven by search outcomes and by
// explicit ProbeNow calls.
func WithProbeInterval(d time.Duration) Option {
	return func(c *clusterConfig) { c.probeInterval = d }
}

// WithClock substitutes the time source for hedge timers, the probe
// loop and the topology file watcher (tests).
func WithClock(clk Clock) Option {
	return func(c *clusterConfig) { c.clock = clk }
}

// WithProber substitutes the health probe implementation (tests).
func WithProber(p Prober) Option {
	return func(c *clusterConfig) { c.prober = p }
}

// WithRetryBudget tunes the cluster-wide retry token bucket: hedges
// and failovers spend a token each, primaries earn ratio tokens, and
// the balance starts at (and is capped by) burst. ratio <= 0 disables
// the budget (every retry is granted). The default is ratio 0.1,
// burst 64 — retried traffic bounded to ~10% of primary traffic.
func WithRetryBudget(ratio float64, burst int) Option {
	return func(c *clusterConfig) {
		c.retryRatio = ratio
		c.retryBurst = burst
	}
}

// WithBreaker tunes the per-backend circuit breakers: a replica whose
// search RPCs fail `fails` consecutive times trips open and is skipped
// (whenever a twin is available) until a successful health probe or
// the cooldown arms a single probation RPC. fails <= 0 disables the
// breakers. The default is 5 failures, 5s cooldown.
func WithBreaker(fails int, cooldown time.Duration) Option {
	return func(c *clusterConfig) {
		c.breakerFails = fails
		c.breakerCooldown = cooldown
	}
}

// WithDegraded arms degraded-mode search on engines built by
// NewEngine: when some segments answer and others fail (replicas down
// past failover, budget-denied retries), the query returns the merged
// results of the answering segments marked partial instead of
// failing — never torn, never silent.
func WithDegraded() Option {
	return func(c *clusterConfig) { c.degraded = true }
}

// Cluster is the merge tier's view of a replicated segment-server
// topology: each segment ordinal is served by a replica group, scatter
// requests route to healthy replicas with failover and optional
// hedging, and the whole replica layout can be swapped at runtime
// (Reload) without touching the startup-aggregated statistics — a
// reload is only accepted when the new backends serve the exact same
// collection build. Safe for concurrent use.
type Cluster struct {
	cfg      clusterConfig
	searchHC *http.Client
	statsHC  *http.Client
	clock    Clock
	prober   Prober

	// Immutable after Connect: the collection identity and statistics.
	nSegs      int
	numDocs    int
	hash       uint64
	sourceHash uint64
	stats      *globalStats
	segments   []search.SegmentSearcher
	segDocs    []int

	// state is the live routing table, swapped atomically by Reload.
	state atomic.Pointer[topoState]

	mu         sync.Mutex // serializes reloads; guards known
	known      map[string]*backend
	reloads    atomic.Int64
	reloadErrs atomic.Int64

	// budget bounds retry amplification cluster-wide (never nil after
	// Connect; an unlimited bucket when WithRetryBudget disables it).
	budget *retryBudget

	stop     chan struct{}
	stopOnce sync.Once
}

// topoState is one immutable routing table: the replica groups and a
// per-ordinal rotation cursor spreading load across healthy twins.
type topoState struct {
	desc     *TopologyDesc
	backends []*backend
	groups   [][]*backend // ordinal -> replicas
	rr       []atomic.Uint32
}

// order returns the preference order for one ordinal's replicas:
// healthy replicas first (rotated per query so twins share load),
// then unhealthy ones — an all-down group is still tried rather than
// failed outright, so a stale health bit can never black-hole an
// ordinal that would actually answer.
func (st *topoState) order(ord int) []*backend {
	reps := st.groups[ord]
	if len(reps) == 1 {
		return reps
	}
	start := int(st.rr[ord].Add(1)-1) % len(reps)
	out := make([]*backend, 0, len(reps))
	var down []*backend
	for i := 0; i < len(reps); i++ {
		b := reps[(start+i)%len(reps)]
		if b.healthy.Load() {
			out = append(out, b)
		} else {
			down = append(down, b)
		}
	}
	return append(out, down...)
}

// Connect wires a cluster over an unreplicated topology: each address
// forms its own single-replica group. See ConnectTopology for the
// replicated form.
func Connect(ctx context.Context, addrs []string, opts ...Option) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distrib: no backend addresses")
	}
	desc := flatDesc(addrs)
	if err := validateTopology(desc); err != nil {
		return nil, err
	}
	return ConnectTopology(ctx, desc, opts...)
}

// ConnectTopology fetches /rpc/v1/stats from every replica of every
// group, validates that the addresses assemble into exactly one
// coherent topology (same segment count and collection hash
// everywhere, every ordinal hosted by exactly one group, twins within
// a group hosting identical ordinal sets, round-robin segment sizes),
// and aggregates the collection-wide statistics the engine will ship
// with every query. This is the once-at-startup half of the parity
// contract: after Connect, no query ever consults a per-segment
// statistic, and no reload can change the statistics — only where
// they are served from.
func ConnectTopology(ctx context.Context, desc *TopologyDesc, opts ...Option) (*Cluster, error) {
	if desc == nil || len(desc.Groups) == 0 {
		return nil, fmt.Errorf("distrib: no backend addresses")
	}
	cfg := clusterConfig{
		timeout:         DefaultRPCTimeout,
		clock:           realClock{},
		retryRatio:      defaultRetryRatio,
		retryBurst:      defaultRetryBurst,
		breakerFails:    defaultBreakerFails,
		breakerCooldown: defaultBreakerCooldown,
	}
	for _, o := range opts {
		o(&cfg)
	}
	base := cfg.hc
	if base == nil {
		base = &http.Client{}
	}
	// Two clients off one transport: search RPCs (and health probes)
	// carry the tight per-query deadline, while the startup stats
	// download — orders of magnitude larger than any search body — is
	// bounded only by the Connect context (statsDeadline below when the
	// caller set none), so a big dictionary dump cannot force the
	// operator to loosen the per-query deadline.
	searchHC, statsHC := *base, *base
	if searchHC.Timeout == 0 {
		searchHC.Timeout = cfg.timeout
	}
	statsHC.Timeout = 0

	c := &Cluster{
		cfg:      cfg,
		searchHC: &searchHC,
		statsHC:  &statsHC,
		clock:    cfg.clock,
		prober:   cfg.prober,
		known:    make(map[string]*backend),
		stop:     make(chan struct{}),
	}
	if c.prober == nil {
		c.prober = c.defaultProbe
	}
	c.budget = newRetryBudget(cfg.retryRatio, cfg.retryBurst)

	asm, err := c.assemble(ctx, desc, nil)
	if err != nil {
		return nil, err
	}
	c.nSegs = asm.n
	c.numDocs = asm.numDocs
	c.hash = asm.hash
	c.sourceHash = asm.sourceHash
	gs, err := aggregateStats(asm.n, asm.numDocs, asm.segStats)
	if err != nil {
		return nil, err
	}
	c.stats = gs
	c.segments = make([]search.SegmentSearcher, asm.n)
	c.segDocs = make([]int, asm.n)
	for ord := range c.segments {
		c.segments[ord] = &remoteSegment{
			c:       c,
			ordinal: ord,
			numDocs: asm.segStats[ord].NumDocs,
		}
		c.segDocs[ord] = asm.segStats[ord].NumDocs
	}
	c.adopt(asm.st)
	if cfg.probeInterval > 0 {
		go c.probeLoop()
	}
	return c, nil
}

// adopt swaps in a new routing table and refreshes the known-backend
// map. Callers hold mu (or are still single-threaded in Connect).
func (c *Cluster) adopt(st *topoState) {
	c.state.Store(st)
	c.known = make(map[string]*backend, len(st.backends))
	for _, b := range st.backends {
		c.known[b.addr] = b
	}
}

// assembled is everything discovered while validating one descriptor
// against its live backends.
type assembled struct {
	st         *topoState
	segStats   []*SegmentStats // indexed by ordinal
	n          int
	numDocs    int
	hash       uint64
	sourceHash uint64
}

// assemble fetches stats from every replica of the descriptor and
// validates the full topology. reuse (nil-able) maps addresses to
// existing backends so a reload keeps telemetry, negotiated codec and
// health state for replicas that stay. Nothing is mutated on the
// cluster: the caller decides whether to adopt the returned state.
func (c *Cluster) assemble(ctx context.Context, desc *TopologyDesc, reuse map[string]*backend) (*assembled, error) {
	statsCtx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		statsCtx, cancel = context.WithTimeout(ctx, statsDeadline)
		defer cancel()
	}

	st := &topoState{desc: desc}
	groupOf := make([][]*backend, len(desc.Groups))
	for gi, g := range desc.Groups {
		groupOf[gi] = make([]*backend, len(g.Replicas))
		for ri, addr := range g.Replicas {
			b := reuse[addr]
			if b == nil {
				b = newBackend(addr, c.searchHC, c.statsHC, !c.cfg.forceJSON)
				b.brk = newBreaker(c.clock, c.cfg.breakerFails, c.cfg.breakerCooldown)
			}
			groupOf[gi][ri] = b
			st.backends = append(st.backends, b)
		}
	}
	stats := make([]*StatsResponse, len(st.backends))
	errs := make([]error, len(st.backends))
	var wg sync.WaitGroup
	for i, b := range st.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			stats[i], errs[i] = b.stats(statsCtx)
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Topology agreement across every replica of every group.
	n := stats[0].Segments
	hash := stats[0].CollectionHash
	sourceHash := stats[0].SourceHash
	for i, stt := range stats {
		if stt.Segments != n {
			return nil, fmt.Errorf("distrib: backend %s reports %d segments, %s reports %d",
				st.backends[i].addr, stt.Segments, st.backends[0].addr, n)
		}
		if stt.CollectionHash != hash || stt.SourceHash != sourceHash {
			return nil, fmt.Errorf("distrib: backend %s was built from a different collection than %s (hashes %x/%x vs %x/%x)",
				st.backends[i].addr, st.backends[0].addr,
				stt.CollectionHash, stt.SourceHash, hash, sourceHash)
		}
	}

	// Group coherence: twins must host identical ordinal sets, and each
	// ordinal must be owned by exactly one group.
	hostedOf := func(flat int) []int {
		out := make([]int, 0, len(stats[flat].Hosted))
		for j := range stats[flat].Hosted {
			out = append(out, stats[flat].Hosted[j].Segment)
		}
		sort.Ints(out)
		return out
	}
	asm := &assembled{st: st, n: n, hash: hash, sourceHash: sourceHash}
	asm.segStats = make([]*SegmentStats, n)
	ownerGroup := make([]int, n)
	for ord := range ownerGroup {
		ownerGroup[ord] = -1
	}
	groups := make([][]*backend, n)
	flat := 0
	for gi, g := range desc.Groups {
		first := flat
		firstHosted := hostedOf(first)
		for ri := range g.Replicas {
			idx := flat
			flat++
			if ri == 0 {
				continue
			}
			if twin := hostedOf(idx); !equalInts(twin, firstHosted) {
				return nil, fmt.Errorf("distrib: replica %s hosts segments %v but its group twin %s hosts %v",
					st.backends[idx].addr, twin, st.backends[first].addr, firstHosted)
			}
		}
		if len(g.Segments) > 0 && !equalInts(g.Segments, firstHosted) {
			return nil, fmt.Errorf("%w: group %d declares segments %v but its replicas host %v",
				ErrTopologyMismatch, gi, g.Segments, firstHosted)
		}
		for j := range stats[first].Hosted {
			seg := &stats[first].Hosted[j]
			if seg.Segment < 0 || seg.Segment >= n {
				return nil, fmt.Errorf("distrib: backend %s hosts segment %d outside topology of %d",
					st.backends[first].addr, seg.Segment, n)
			}
			if prev := ownerGroup[seg.Segment]; prev >= 0 {
				return nil, fmt.Errorf("distrib: segment %d hosted by both %s and %s",
					seg.Segment, desc.Groups[prev].Replicas[0], st.backends[first].addr)
			}
			if len(seg.ExtIDs) != seg.NumDocs {
				return nil, fmt.Errorf("distrib: backend %s segment %d: %d ext ids for %d docs",
					st.backends[first].addr, seg.Segment, len(seg.ExtIDs), seg.NumDocs)
			}
			ownerGroup[seg.Segment] = gi
			asm.segStats[seg.Segment] = seg
			groups[seg.Segment] = groupOf[gi]
		}
		// Record the discovered hosting in the normalized descriptor so
		// TopologyView and reload summaries name real ordinals.
		desc.Groups[gi].Segments = firstHosted
	}
	for ord, gi := range ownerGroup {
		if gi < 0 {
			return nil, fmt.Errorf("distrib: segment %d hosted by no backend", ord)
		}
		asm.numDocs += asm.segStats[ord].NumDocs
	}
	// Round-robin size invariant: the global DocID arithmetic
	// (global = local*n + ordinal) depends on it, exactly as in
	// index.NewSharded.
	for ord, sgs := range asm.segStats {
		want := asm.numDocs / n
		if ord < asm.numDocs%n {
			want++
		}
		if sgs.NumDocs != want {
			return nil, fmt.Errorf("distrib: segment %d holds %d docs, round-robin split of %d over %d expects %d",
				ord, sgs.NumDocs, asm.numDocs, n, want)
		}
	}
	st.groups = groups
	st.rr = make([]atomic.Uint32, n)
	return asm, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reload validates a new descriptor against the running cluster and
// atomically swaps the routing table. The swap is all-or-nothing: any
// unreachable replica, incoherent group, or — decisive — a backend
// whose collection or source hash differs from the running cluster's
// (ErrTopologyMismatch) rejects the whole reload and leaves the
// current topology serving. Replicas present in both topologies keep
// their telemetry, health state and negotiated codec; replicas that
// leave finish their in-flight RPCs and are no longer routed to or
// probed.
func (c *Cluster) Reload(ctx context.Context, desc *TopologyDesc) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	asm, err := c.assemble(ctx, desc, c.known)
	if err != nil {
		c.reloadErrs.Add(1)
		return err
	}
	if asm.n != c.nSegs || asm.hash != c.hash || asm.sourceHash != c.sourceHash {
		c.reloadErrs.Add(1)
		return fmt.Errorf("%w: new backends serve %d segments hash %x/%x, cluster serves %d segments hash %x/%x",
			ErrTopologyMismatch, asm.n, asm.hash, asm.sourceHash, c.nSegs, c.hash, c.sourceHash)
	}
	c.adopt(asm.st)
	c.reloads.Add(1)
	return nil
}

// ApplyTopology parses a descriptor document and reloads onto it —
// the admin-endpoint and file-watcher entry point. A nil ctx is
// accepted (background). Errors are typed: ErrTopologySyntax /
// ErrTopologyInvalid for a bad document, ErrTopologyMismatch for
// backends that cannot serve this collection, *BackendError for an
// unreachable replica. On any error the running topology is untouched.
func (c *Cluster) ApplyTopology(ctx context.Context, descriptor []byte) error {
	desc, err := ParseTopology(descriptor)
	if err != nil {
		c.reloadErrs.Add(1)
		return err
	}
	return c.Reload(ctx, desc)
}

// Topology snapshots the live routing table for the admin surface.
func (c *Cluster) Topology() TopologyView {
	st := c.state.Load()
	view := TopologyView{
		Segments:     c.nSegs,
		Reloads:      c.reloads.Load(),
		ReloadErrors: c.reloadErrs.Load(),
	}
	// Reconstruct groups from the descriptor order so the view mirrors
	// what the operator wrote.
	flat := 0
	for _, g := range st.desc.Groups {
		gv := TopologyGroupView{Segments: append([]int(nil), g.Segments...)}
		for range g.Replicas {
			b := st.backends[flat]
			flat++
			gv.Replicas = append(gv.Replicas, ReplicaView{Addr: b.addr, Healthy: b.healthy.Load()})
		}
		view.Groups = append(view.Groups, gv)
	}
	return view
}

// DescribeTopology implements the webapi admin interface.
func (c *Cluster) DescribeTopology() any { return c.Topology() }

// defaultProbe GETs the replica's /rpc/v1/healthz under the RPC
// deadline; any transport fault or non-200 marks it unhealthy.
func (c *Cluster) defaultProbe(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+HealthPath, nil)
	if err != nil {
		return err
	}
	resp, err := c.searchHC.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("distrib: healthz status %d", resp.StatusCode)
	}
	return nil
}

// ProbeNow health-probes every replica of the current topology once,
// concurrently, and updates the routing health bits. The probe loop
// calls this on its tick; tests call it directly for deterministic
// health transitions.
func (c *Cluster) ProbeNow(ctx context.Context) {
	st := c.state.Load()
	var wg sync.WaitGroup
	for _, b := range st.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			err := c.prober(ctx, b.addr)
			if err != nil {
				b.probeFails.Add(1)
			} else {
				// A live probe arms an open breaker's probation trial, so
				// a recovered replica re-enters rotation one probe interval
				// after it comes back.
				b.brk.onProbeSuccess()
			}
			b.healthy.Store(err == nil)
		}(b)
	}
	wg.Wait()
}

func (c *Cluster) probeLoop() {
	for {
		select {
		case <-c.stop:
			return
		case <-c.clock.After(c.cfg.probeInterval):
		}
		c.ProbeNow(context.Background())
	}
}

// Close stops the background probe loop and any topology file
// watcher. In-flight RPCs are unaffected. Safe to call more than once.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// NumSegments returns the topology's total segment count.
func (c *Cluster) NumSegments() int { return c.nSegs }

// NumDocs returns the collection-wide document count.
func (c *Cluster) NumDocs() int { return c.numDocs }

// SourceHash returns the backends' agreed collection source hash
// (zero when the backends were wired from bare indexes). The merge
// tier compares it against CollectionSourceHash of its own collection
// before serving, so scores and metadata cannot come from different
// archives.
func (c *Cluster) SourceHash() uint64 { return c.sourceHash }

// backendsNow snapshots the live backend objects (test hook).
func (c *Cluster) backendsNow() []*backend { return c.state.Load().backends }

// Backends returns the current backend base URLs in descriptor order.
func (c *Cluster) Backends() []string {
	st := c.state.Load()
	out := make([]string, len(st.backends))
	for i, b := range st.backends {
		out[i] = b.addr
	}
	return out
}

// NewEngine assembles the scatter/gather searcher: remote segments
// behind the same search.Engine executor and TopK merge as the
// in-process fan-out. analyzer must match the pipeline the segment
// servers indexed with (nil selects the shared default); workers
// bounds concurrent in-flight RPCs per query (0 = GOMAXPROCS). The
// engine survives topology reloads: each remote segment routes
// through the cluster's live replica table on every call.
func (c *Cluster) NewEngine(analyzer *text.Analyzer, workers int) *search.Engine {
	eng := search.NewSegmentsEngine(c.stats, c.segments, analyzer, workers)
	if c.cfg.degraded {
		eng.SetAllowPartial(true)
	}
	return eng
}

// RetryBudget snapshots the cluster-wide retry token bucket for
// telemetry surfaces (ivr_retry_budget_* on the serve tier's scrape).
func (c *Cluster) RetryBudget() RetryBudgetStats { return c.budget.stats() }

// BackendSummaries snapshots per-backend RPC telemetry for the
// `search` block of /api/v1/metrics.
func (c *Cluster) BackendSummaries() []retrieval.BackendSummary {
	st := c.state.Load()
	out := make([]retrieval.BackendSummary, len(st.backends))
	for i, b := range st.backends {
		s := retrieval.BackendSummary{
			Addr:           b.addr,
			Healthy:        b.healthy.Load(),
			Requests:       b.requests.Load(),
			Errors:         b.errors.Load(),
			BinarySearches: b.binSearches.Load(),
			JSONSearches:   b.jsonSearches.Load(),
			CodecFallbacks: b.codecFallbacks.Load(),
			Hedges:         b.hedges.Load(),
			Failovers:      b.failovers.Load(),
			ProbeFailures:  b.probeFails.Load(),
			Breaker:        b.brk.state(),
			BreakerTrips:   b.brk.tripCount(),
			Latency:        b.latency.Summary(),
		}
		for ord, group := range st.groups {
			for _, rb := range group {
				if rb == b {
					s.Segments = append(s.Segments, ord)
					break
				}
			}
		}
		sort.Ints(s.Segments)
		out[i] = s
	}
	return out
}

// retryableFault reports whether a failed segment RPC may be retried
// against a twin replica. Transport faults, timeouts, 5xx envelopes
// and garbage bodies are all safe to retry: search RPCs are pure
// reads, so a duplicate can at worst waste one scoring pass. A 4xx is
// the merge tier's own request being wrong — a twin would refuse it
// identically — and a cancelled context is the caller (or a winning
// hedge) abandoning the call.
func retryableFault(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	// A spent budget is spent everywhere: retrying a twin cannot
	// manufacture time.
	if errors.Is(err, overload.ErrDeadlineExceeded) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		if se.code == codeDeadline {
			return false
		}
		// A typed shed is per-replica pressure: the twin may have
		// capacity, so failing over is exactly right.
		if se.status == http.StatusTooManyRequests {
			return true
		}
		return se.status >= 500
	}
	return true
}

// searchOrdinal scores one ordinal with failover across its replica
// group and optional hedging: the preferred (healthy, rotated)
// replica is asked first; a retryable failure immediately fails over
// to the next replica, and — when hedging is armed — a primary that
// has not answered within the hedge budget races a twin, first
// success wins and the loser's RPC is cancelled. Returns the winning
// backend for trace attribution.
func (c *Cluster) searchOrdinal(ctx context.Context, sreq SearchRequest) (*SearchResponse, *backend, error) {
	// A request whose latency budget is already spent does zero segment
	// work: no RPC is launched, the typed error surfaces immediately.
	if overload.FromContext(ctx).Expired() {
		return nil, nil, overload.ErrDeadlineExceeded
	}
	st := c.state.Load()
	order := st.order(sreq.Segment)
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		resp *SearchResponse
		b    *backend
		err  error
	}
	results := make(chan outcome, len(order))
	next := 0
	// pick selects the next replica to try, preferring ones whose
	// breaker admits the launch; when every remaining replica is
	// breaker-blocked the head is used anyway — the breaker shapes
	// routing, it never black-holes an ordinal.
	pick := func() *backend {
		for i := next; i < len(order); i++ {
			if order[i].brk.allow() {
				// Swap only on a real reorder: a single-replica group
				// shares its slice across concurrent queries, so a
				// self-swap would be a data race.
				if i != next {
					order[i], order[next] = order[next], order[i]
				}
				break
			}
		}
		b := order[next]
		next++
		return b
	}
	launch := func(hedge, failover bool) {
		b := pick()
		if hedge {
			b.hedges.Add(1)
		}
		if failover {
			b.failovers.Add(1)
		}
		go func() {
			resp, err := b.search(actx, sreq)
			results <- outcome{resp, b, err}
		}()
	}
	c.budget.earn()
	launch(false, false)
	pending := 1
	var hedgeCh <-chan time.Time
	if c.cfg.hedgeAfter > 0 && next < len(order) {
		hedgeCh = c.clock.After(c.cfg.hedgeAfter)
	}
	var lastErr error
	for pending > 0 {
		select {
		case <-ctx.Done():
			// The query itself is gone; pending RPCs die with actx.
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			return nil, nil, lastErr
		case <-hedgeCh:
			hedgeCh = nil
			if next < len(order) && c.budget.take() {
				launch(true, false)
				pending++
			}
		case out := <-results:
			pending--
			if out.err == nil {
				out.b.healthy.Store(true)
				out.b.brk.onSuccess()
				return out.resp, out.b, nil
			}
			lastErr = out.err
			switch {
			case errors.Is(out.err, context.Canceled):
				// The caller (or a winning hedge) abandoned this RPC; it
				// says nothing about the replica.
				out.b.brk.onCanceled()
			case retryableFault(out.err):
				// Route around this replica until a probe clears it.
				out.b.healthy.Store(false)
				out.b.brk.onFailure()
				if next < len(order) && ctx.Err() == nil && c.budget.take() {
					launch(false, true)
					pending++
				}
			default:
				// A decisive refusal (4xx, spent budget) still proves the
				// link works.
				out.b.brk.onSuccess()
			}
		}
	}
	return nil, nil, lastErr
}

// remoteSegment adapts one segment ordinal — served by whichever
// replica the live topology prefers — to search.SegmentSearcher.
type remoteSegment struct {
	c       *Cluster
	ordinal int
	numDocs int
}

// NumDocs implements search.SegmentSearcher.
func (r *remoteSegment) NumDocs() int { return r.numDocs }

// SearchSegment implements search.SegmentSearcher. The compiled query
// itself cannot cross the process boundary, so the wire request
// carries its (Query, []TermStats, Scorer) source triple; the far side
// re-compiles from those identical inputs and runs the same kernel on
// the same constants, which keeps remote scores bit-identical to
// in-process ones — from any replica of the ordinal's group, because
// every replica is validated (collection hash) to hold the same
// build. Filters are opaque predicates that cannot cross the boundary
// either, so a filtered query fetches the segment's full candidate
// list and applies the filter merge-side before the top-k cut — the
// same filter-then-cut order as in-process, so rankings stay
// bit-identical (at the cost of a fatter response; the serving layer
// only passes filters for category-faceted queries, which also bypass
// the result cache).
func (r *remoteSegment) SearchSegment(ctx context.Context, p *search.PreparedQuery,
	filter func(string) bool, k int) (search.SegmentResult, error) {
	q, stats := p.Query(), p.Stats()
	spec, err := SpecForScorer(p.Scorer())
	if err != nil {
		return search.SegmentResult{}, err
	}
	req := SearchRequest{
		Segment: r.ordinal,
		Field:   q.Field.String(),
		Terms:   make([]WireTerm, len(q.Terms)),
		Stats:   make([]WireTermStats, len(stats)),
		Scorer:  spec,
		K:       k,
	}
	if filter != nil {
		req.K = -1 // full candidate list; filter is applied below
	}
	for i, t := range q.Terms {
		req.Terms[i] = WireTerm{Term: t.Term, Weight: t.Weight}
	}
	for i, st := range stats {
		req.Stats[i] = WireTermStats{
			N: st.N, AvgDocLen: st.AvgDocLen, TotalLen: st.TotalLen,
			DF: st.DF, CF: st.CF, Weight: st.Weight,
		}
	}
	resp, winner, err := r.c.searchOrdinal(ctx, req)
	if err != nil {
		// A segment server's typed deadline refusal surfaces to callers
		// as the overload sentinel, so the serve tier maps the whole
		// query to deadline_exceeded rather than a generic failure.
		var se *statusError
		if errors.As(err, &se) && se.code == codeDeadline && !errors.Is(err, overload.ErrDeadlineExceeded) {
			err = errors.Join(overload.ErrDeadlineExceeded, err)
		}
		return search.SegmentResult{}, err
	}
	// The engine's per-"segment" span is current in ctx here; annotate
	// it with where this ordinal actually went so a straggler or
	// failed-over backend is identifiable from the trace alone.
	if sp := trace.SpanFromContext(ctx); sp != nil && winner != nil {
		sp.SetAttr("backend", winner.addr)
	}
	if filter == nil {
		hits := make([]search.Hit, len(resp.Hits))
		for i, h := range resp.Hits {
			hits[i] = search.Hit{Doc: index.DocID(h.Doc), ID: h.ID, Score: h.Score}
		}
		recycleWireHits(resp.Hits)
		return search.SegmentResult{Hits: hits, Candidates: *resp.Candidates}, nil
	}
	if k <= 0 {
		// Honour the interface's unbounded mode: keep every candidate
		// that survives the filter (NewTopK(0) would keep none).
		k = len(resp.Hits)
		if k == 0 {
			k = 1
		}
	}
	top := search.NewTopK(k)
	candidates := 0
	for _, h := range resp.Hits {
		if !filter(h.ID) {
			continue
		}
		candidates++
		top.Offer(search.Hit{Doc: index.DocID(h.Doc), ID: h.ID, Score: h.Score})
	}
	recycleWireHits(resp.Hits)
	return search.SegmentResult{Hits: top.Ranked(), Candidates: candidates}, nil
}

// globalStats is the startup-aggregated search.StatsView over the
// whole topology: the distributed analogue of index.Sharded's
// statistics surface, computed once so queries never wait on a
// statistics RPC.
type globalStats struct {
	numDocs int
	fields  map[index.Field]*fieldAgg
	ext2id  map[string]index.DocID
}

type fieldAgg struct {
	totalLen int64
	terms    map[string]TermCounts
}

// aggregateStats folds per-segment statistics into the global view.
// segStats is indexed by ordinal and fully populated.
func aggregateStats(n, numDocs int, segStats []*SegmentStats) (*globalStats, error) {
	gs := &globalStats{
		numDocs: numDocs,
		fields:  make(map[index.Field]*fieldAgg, len(statsFields)),
		ext2id:  make(map[string]index.DocID, numDocs),
	}
	for _, f := range statsFields {
		gs.fields[f] = &fieldAgg{terms: make(map[string]TermCounts)}
	}
	for ord, st := range segStats {
		for local, ext := range st.ExtIDs {
			if _, dup := gs.ext2id[ext]; dup {
				return nil, fmt.Errorf("distrib: external id %q appears in more than one segment (segment %d)", ext, ord)
			}
			gs.ext2id[ext] = index.DocID(local*n + ord)
		}
		for _, f := range statsFields {
			fs, ok := st.Fields[f.String()]
			if !ok {
				return nil, fmt.Errorf("distrib: segment %d stats missing field %s", ord, f)
			}
			agg := gs.fields[f]
			agg.totalLen += fs.TotalLen
			for term, tc := range fs.Terms {
				cur := agg.terms[term]
				cur.DF += tc.DF
				cur.CF += tc.CF
				agg.terms[term] = cur
			}
		}
	}
	return gs, nil
}

// NumDocs implements search.StatsView.
func (g *globalStats) NumDocs() int { return g.numDocs }

// AvgDocLen implements search.StatsView with the same formula as
// index.Sharded (one float division over integer sums, so the value
// is bit-identical to the in-process aggregate).
func (g *globalStats) AvgDocLen(f index.Field) float64 {
	if g.numDocs == 0 {
		return 0
	}
	return float64(g.fields[f].totalLen) / float64(g.numDocs)
}

// TotalFieldLen implements search.StatsView.
func (g *globalStats) TotalFieldLen(f index.Field) int64 { return g.fields[f].totalLen }

// DocFreq implements search.StatsView.
func (g *globalStats) DocFreq(f index.Field, term string) int { return g.fields[f].terms[term].DF }

// CollectionFreq implements search.StatsView.
func (g *globalStats) CollectionFreq(f index.Field, term string) int64 {
	return g.fields[f].terms[term].CF
}

// DocIDOf implements search.StatsView.
func (g *globalStats) DocIDOf(ext string) (index.DocID, bool) {
	d, ok := g.ext2id[ext]
	return d, ok
}
