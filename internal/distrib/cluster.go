package distrib

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/retrieval"
	"repro/internal/search"
	"repro/internal/text"
	"repro/internal/trace"
)

// DefaultRPCTimeout bounds one segment RPC when no option overrides
// it. A segment scoring pass is sub-millisecond work; five seconds is
// generous headroom for a loaded backend while still guaranteeing a
// hung backend surfaces as a typed timeout instead of a stalled query.
const DefaultRPCTimeout = 5 * time.Second

// statsDeadline bounds the startup statistics download when the
// Connect context carries no deadline of its own.
const statsDeadline = 2 * time.Minute

// Option configures Connect.
type Option func(*clusterConfig)

type clusterConfig struct {
	timeout   time.Duration
	hc        *http.Client
	forceJSON bool
}

// WithTimeout bounds each segment RPC (default DefaultRPCTimeout).
func WithTimeout(d time.Duration) Option {
	return func(c *clusterConfig) { c.timeout = d }
}

// WithJSONCodec forces every search RPC onto the JSON body codec
// instead of negotiating the binary framing — the escape hatch for
// codec-vs-codec benchmarking and debugging with readable captures.
func WithJSONCodec() Option {
	return func(c *clusterConfig) { c.forceJSON = true }
}

// WithHTTPClient substitutes the transport (tests inject
// httptest-backed clients; WithTimeout still applies unless the
// client already sets one).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *clusterConfig) { c.hc = hc }
}

// Cluster is the merge tier's view of a static segment-server
// topology: one remote SegmentSearcher per segment ordinal plus the
// startup-aggregated global statistics. Immutable after Connect and
// safe for concurrent use.
type Cluster struct {
	backends   []*backend
	segOwner   []*backend // ordinal -> backend
	segments   []search.SegmentSearcher
	segDocs    []int
	stats      *globalStats
	numDocs    int
	sourceHash uint64
}

// Connect fetches /rpc/v1/stats from every backend, validates that
// the addresses assemble into exactly one coherent topology (same
// segment count and collection hash everywhere, every ordinal hosted
// exactly once, round-robin segment sizes), and aggregates the
// collection-wide statistics the engine will ship with every query.
// This is the once-at-startup half of the parity contract: after
// Connect, no query ever consults a per-segment statistic.
func Connect(ctx context.Context, addrs []string, opts ...Option) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distrib: no backend addresses")
	}
	cfg := clusterConfig{timeout: DefaultRPCTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	base := cfg.hc
	if base == nil {
		base = &http.Client{}
	}
	// Two clients off one transport: search RPCs carry the tight
	// per-query deadline, while the startup stats download — orders of
	// magnitude larger than any search body — is bounded only by the
	// Connect context (statsDeadline below when the caller set none),
	// so a big dictionary dump cannot force the operator to loosen the
	// per-query deadline.
	searchHC, statsHC := *base, *base
	if searchHC.Timeout == 0 {
		searchHC.Timeout = cfg.timeout
	}
	statsHC.Timeout = 0
	statsCtx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		statsCtx, cancel = context.WithTimeout(ctx, statsDeadline)
		defer cancel()
	}

	c := &Cluster{backends: make([]*backend, len(addrs))}
	stats := make([]*StatsResponse, len(addrs))
	var wg sync.WaitGroup
	errs := make([]error, len(addrs))
	for i, addr := range addrs {
		c.backends[i] = newBackend(addr, &searchHC, &statsHC, !cfg.forceJSON)
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i], errs[i] = c.backends[i].stats(statsCtx)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Topology agreement across backends.
	n := stats[0].Segments
	hash := stats[0].CollectionHash
	c.sourceHash = stats[0].SourceHash
	for i, st := range stats {
		if st.Segments != n {
			return nil, fmt.Errorf("distrib: backend %s reports %d segments, %s reports %d",
				c.backends[i].addr, st.Segments, c.backends[0].addr, n)
		}
		if st.CollectionHash != hash || st.SourceHash != c.sourceHash {
			return nil, fmt.Errorf("distrib: backend %s was built from a different collection than %s (hashes %x/%x vs %x/%x)",
				c.backends[i].addr, c.backends[0].addr,
				st.CollectionHash, st.SourceHash, hash, c.sourceHash)
		}
	}

	// Every ordinal hosted exactly once.
	c.segOwner = make([]*backend, n)
	segStats := make([]*SegmentStats, n)
	for i, st := range stats {
		for j := range st.Hosted {
			seg := &st.Hosted[j]
			if seg.Segment < 0 || seg.Segment >= n {
				return nil, fmt.Errorf("distrib: backend %s hosts segment %d outside topology of %d",
					c.backends[i].addr, seg.Segment, n)
			}
			if prev := c.segOwner[seg.Segment]; prev != nil {
				return nil, fmt.Errorf("distrib: segment %d hosted by both %s and %s",
					seg.Segment, prev.addr, c.backends[i].addr)
			}
			if len(seg.ExtIDs) != seg.NumDocs {
				return nil, fmt.Errorf("distrib: backend %s segment %d: %d ext ids for %d docs",
					c.backends[i].addr, seg.Segment, len(seg.ExtIDs), seg.NumDocs)
			}
			c.segOwner[seg.Segment] = c.backends[i]
			segStats[seg.Segment] = seg
		}
	}
	for ord, b := range c.segOwner {
		if b == nil {
			return nil, fmt.Errorf("distrib: segment %d hosted by no backend", ord)
		}
		c.numDocs += segStats[ord].NumDocs
	}
	// Round-robin size invariant: the global DocID arithmetic
	// (global = local*n + ordinal) depends on it, exactly as in
	// index.NewSharded.
	for ord, st := range segStats {
		want := c.numDocs / n
		if ord < c.numDocs%n {
			want++
		}
		if st.NumDocs != want {
			return nil, fmt.Errorf("distrib: segment %d holds %d docs, round-robin split of %d over %d expects %d",
				ord, st.NumDocs, c.numDocs, n, want)
		}
	}

	gs, err := aggregateStats(n, c.numDocs, segStats)
	if err != nil {
		return nil, err
	}
	c.stats = gs
	c.segments = make([]search.SegmentSearcher, n)
	c.segDocs = make([]int, n)
	for ord := range c.segments {
		c.segments[ord] = &remoteSegment{
			b:       c.segOwner[ord],
			ordinal: ord,
			numDocs: segStats[ord].NumDocs,
		}
		c.segDocs[ord] = segStats[ord].NumDocs
	}
	return c, nil
}

// NumSegments returns the topology's total segment count.
func (c *Cluster) NumSegments() int { return len(c.segments) }

// NumDocs returns the collection-wide document count.
func (c *Cluster) NumDocs() int { return c.numDocs }

// SourceHash returns the backends' agreed collection source hash
// (zero when the backends were wired from bare indexes). The merge
// tier compares it against CollectionSourceHash of its own collection
// before serving, so scores and metadata cannot come from different
// archives.
func (c *Cluster) SourceHash() uint64 { return c.sourceHash }

// Backends returns the backend base URLs in Connect order.
func (c *Cluster) Backends() []string {
	out := make([]string, len(c.backends))
	for i, b := range c.backends {
		out[i] = b.addr
	}
	return out
}

// NewEngine assembles the scatter/gather searcher: remote segments
// behind the same search.Engine executor and TopK merge as the
// in-process fan-out. analyzer must match the pipeline the segment
// servers indexed with (nil selects the shared default); workers
// bounds concurrent in-flight RPCs per query (0 = GOMAXPROCS).
func (c *Cluster) NewEngine(analyzer *text.Analyzer, workers int) *search.Engine {
	return search.NewSegmentsEngine(c.stats, c.segments, analyzer, workers)
}

// BackendSummaries snapshots per-backend RPC telemetry for the
// `search` block of /api/v1/metrics.
func (c *Cluster) BackendSummaries() []retrieval.BackendSummary {
	out := make([]retrieval.BackendSummary, len(c.backends))
	for i, b := range c.backends {
		s := retrieval.BackendSummary{
			Addr:           b.addr,
			Requests:       b.requests.Load(),
			Errors:         b.errors.Load(),
			BinarySearches: b.binSearches.Load(),
			JSONSearches:   b.jsonSearches.Load(),
			CodecFallbacks: b.codecFallbacks.Load(),
			Latency:        b.latency.Summary(),
		}
		for ord, owner := range c.segOwner {
			if owner == b {
				s.Segments = append(s.Segments, ord)
			}
		}
		sort.Ints(s.Segments)
		out[i] = s
	}
	return out
}

// remoteSegment adapts one remote segment to search.SegmentSearcher.
type remoteSegment struct {
	b       *backend
	ordinal int
	numDocs int
}

// NumDocs implements search.SegmentSearcher.
func (r *remoteSegment) NumDocs() int { return r.numDocs }

// SearchSegment implements search.SegmentSearcher. The compiled query
// itself cannot cross the process boundary, so the wire request
// carries its (Query, []TermStats, Scorer) source triple; the far side
// re-compiles from those identical inputs and runs the same kernel on
// the same constants, which keeps remote scores bit-identical to
// in-process ones. Filters are opaque predicates that cannot cross the
// boundary either, so a filtered query fetches the segment's full
// candidate list and applies the filter merge-side before the top-k
// cut — the same filter-then-cut order as in-process, so rankings stay
// bit-identical (at the cost of a fatter response; the serving layer
// only passes filters for category-faceted queries, which also bypass
// the result cache).
func (r *remoteSegment) SearchSegment(ctx context.Context, p *search.PreparedQuery,
	filter func(string) bool, k int) (search.SegmentResult, error) {
	q, stats := p.Query(), p.Stats()
	spec, err := SpecForScorer(p.Scorer())
	if err != nil {
		return search.SegmentResult{}, err
	}
	req := SearchRequest{
		Segment: r.ordinal,
		Field:   q.Field.String(),
		Terms:   make([]WireTerm, len(q.Terms)),
		Stats:   make([]WireTermStats, len(stats)),
		Scorer:  spec,
		K:       k,
	}
	if filter != nil {
		req.K = -1 // full candidate list; filter is applied below
	}
	for i, t := range q.Terms {
		req.Terms[i] = WireTerm{Term: t.Term, Weight: t.Weight}
	}
	for i, st := range stats {
		req.Stats[i] = WireTermStats{
			N: st.N, AvgDocLen: st.AvgDocLen, TotalLen: st.TotalLen,
			DF: st.DF, CF: st.CF, Weight: st.Weight,
		}
	}
	// The engine's per-"segment" span is current in ctx here; annotate
	// it with where this ordinal actually went so a straggler backend
	// is identifiable from the trace alone.
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.SetAttr("backend", r.b.addr)
	}
	resp, err := r.b.search(ctx, req)
	if err != nil {
		return search.SegmentResult{}, err
	}
	if filter == nil {
		hits := make([]search.Hit, len(resp.Hits))
		for i, h := range resp.Hits {
			hits[i] = search.Hit{Doc: index.DocID(h.Doc), ID: h.ID, Score: h.Score}
		}
		recycleWireHits(resp.Hits)
		return search.SegmentResult{Hits: hits, Candidates: *resp.Candidates}, nil
	}
	if k <= 0 {
		// Honour the interface's unbounded mode: keep every candidate
		// that survives the filter (NewTopK(0) would keep none).
		k = len(resp.Hits)
		if k == 0 {
			k = 1
		}
	}
	top := search.NewTopK(k)
	candidates := 0
	for _, h := range resp.Hits {
		if !filter(h.ID) {
			continue
		}
		candidates++
		top.Offer(search.Hit{Doc: index.DocID(h.Doc), ID: h.ID, Score: h.Score})
	}
	recycleWireHits(resp.Hits)
	return search.SegmentResult{Hits: top.Ranked(), Candidates: candidates}, nil
}

// globalStats is the startup-aggregated search.StatsView over the
// whole topology: the distributed analogue of index.Sharded's
// statistics surface, computed once so queries never wait on a
// statistics RPC.
type globalStats struct {
	numDocs int
	fields  map[index.Field]*fieldAgg
	ext2id  map[string]index.DocID
}

type fieldAgg struct {
	totalLen int64
	terms    map[string]TermCounts
}

// aggregateStats folds per-segment statistics into the global view.
// segStats is indexed by ordinal and fully populated.
func aggregateStats(n, numDocs int, segStats []*SegmentStats) (*globalStats, error) {
	gs := &globalStats{
		numDocs: numDocs,
		fields:  make(map[index.Field]*fieldAgg, len(statsFields)),
		ext2id:  make(map[string]index.DocID, numDocs),
	}
	for _, f := range statsFields {
		gs.fields[f] = &fieldAgg{terms: make(map[string]TermCounts)}
	}
	for ord, st := range segStats {
		for local, ext := range st.ExtIDs {
			if _, dup := gs.ext2id[ext]; dup {
				return nil, fmt.Errorf("distrib: external id %q appears in more than one segment (segment %d)", ext, ord)
			}
			gs.ext2id[ext] = index.DocID(local*n + ord)
		}
		for _, f := range statsFields {
			fs, ok := st.Fields[f.String()]
			if !ok {
				return nil, fmt.Errorf("distrib: segment %d stats missing field %s", ord, f)
			}
			agg := gs.fields[f]
			agg.totalLen += fs.TotalLen
			for term, tc := range fs.Terms {
				cur := agg.terms[term]
				cur.DF += tc.DF
				cur.CF += tc.CF
				agg.terms[term] = cur
			}
		}
	}
	return gs, nil
}

// NumDocs implements search.StatsView.
func (g *globalStats) NumDocs() int { return g.numDocs }

// AvgDocLen implements search.StatsView with the same formula as
// index.Sharded (one float division over integer sums, so the value
// is bit-identical to the in-process aggregate).
func (g *globalStats) AvgDocLen(f index.Field) float64 {
	if g.numDocs == 0 {
		return 0
	}
	return float64(g.fields[f].totalLen) / float64(g.numDocs)
}

// TotalFieldLen implements search.StatsView.
func (g *globalStats) TotalFieldLen(f index.Field) int64 { return g.fields[f].totalLen }

// DocFreq implements search.StatsView.
func (g *globalStats) DocFreq(f index.Field, term string) int { return g.fields[f].terms[term].DF }

// CollectionFreq implements search.StatsView.
func (g *globalStats) CollectionFreq(f index.Field, term string) int64 {
	return g.fields[f].terms[term].CF
}

// DocIDOf implements search.StatsView.
func (g *globalStats) DocIDOf(ext string) (index.DocID, bool) {
	d, ok := g.ext2id[ext]
	return d, ok
}
