package distrib

import (
	"sync"
	"time"
)

// Breaker state names, exported on telemetry surfaces
// (BackendSummary.Breaker, ivr_breaker_state).
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half_open"
)

// breakerStateCode maps a state name to the numeric gauge value the
// Prometheus scrape exports (0 closed, 1 half-open, 2 open — higher is
// worse, so alerts can threshold on it).
func breakerStateCode(state string) int {
	switch state {
	case BreakerOpen:
		return 2
	case BreakerHalfOpen:
		return 1
	default:
		return 0
	}
}

// breaker is one backend's circuit breaker. It composes with — rather
// than replaces — the health bit: the health bit is a routing
// *preference* (unhealthy replicas are tried last), the breaker is a
// launch *gate* with hysteresis. A replica that fails `threshold`
// consecutive search RPCs trips open; while open, the replica is
// skipped for primaries, hedges and failovers whenever any alternative
// replica is available (it is still used as a last resort, so an
// all-open group can never black-hole an ordinal that would answer).
// The breaker leaves open via exactly one probation trial RPC
// (half-open): either the cooldown elapsing or a successful health
// probe arms the trial, a trial success closes the breaker, a trial
// failure re-opens it and restarts the cooldown.
//
// All methods are nil-safe (a nil breaker is permanently closed), so
// bare backends constructed outside a Cluster keep working.
type breaker struct {
	mu        sync.Mutex
	clock     Clock
	threshold int
	cooldown  time.Duration

	open     bool
	halfOpen bool
	trial    bool // a half-open probation RPC is in flight
	fails    int  // consecutive failures while closed
	openedAt time.Time
	trips    int64
}

func newBreaker(clock Clock, threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		return nil // breaker disabled
	}
	if clock == nil {
		clock = realClock{}
	}
	return &breaker{clock: clock, threshold: threshold, cooldown: cooldown}
}

// allow reports whether a search RPC may be launched at this backend,
// claiming the single half-open trial slot when the breaker is in
// probation. An open breaker whose cooldown has elapsed transitions to
// half-open here, so recovery needs no background goroutine. Callers
// that get false may still use the backend as a last resort; the
// breaker observes the outcome either way.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if !b.halfOpen && b.cooldown > 0 && b.clock.Now().Sub(b.openedAt) >= b.cooldown {
		b.halfOpen = true
	}
	if b.halfOpen && !b.trial {
		b.trial = true
		return true
	}
	return false
}

// onSuccess records a decisive answer from the backend: the breaker
// closes and the failure streak resets. A 4xx or an out-of-budget
// refusal counts — the link demonstrably works.
func (b *breaker) onSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.open, b.halfOpen, b.trial = false, false, false
	b.fails = 0
	b.mu.Unlock()
}

// onFailure records a retryable fault. While closed it counts toward
// the trip threshold; a half-open trial failure re-opens the breaker
// and restarts the cooldown.
func (b *breaker) onFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		// Probation failed (or a straggler RPC failed while open):
		// restart the cooldown from now.
		b.halfOpen, b.trial = false, false
		b.openedAt = b.clock.Now()
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.open = true
		b.openedAt = b.clock.Now()
		b.trips++
	}
}

// onCanceled releases a claimed trial slot without judging the
// backend: a cancelled RPC (hedge loser, caller gone) says nothing
// about replica health.
func (b *breaker) onCanceled() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.trial = false
	b.mu.Unlock()
}

// onProbeSuccess arms probation after a successful health probe: an
// open breaker moves to half-open without waiting out the cooldown, so
// a recovered replica re-enters rotation one probe interval after it
// comes back, not one cooldown later.
func (b *breaker) onProbeSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.open {
		b.halfOpen = true
	}
	b.mu.Unlock()
}

// state reports the breaker's current state name.
func (b *breaker) state() string {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return BreakerClosed
	case b.halfOpen:
		return BreakerHalfOpen
	default:
		return BreakerOpen
	}
}

// tripCount reports how many times the breaker has tripped open.
func (b *breaker) tripCount() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// retryBudget is the cluster-wide token bucket bounding retry
// amplification: hedges and failovers spend a token each, and tokens
// are earned as a fraction of primary launches, so retried traffic
// converges to at most `ratio` of primary traffic no matter how hard
// the backends are failing. The initial balance (`burst`) absorbs a
// cold-start failure burst without denying the failovers that make a
// single replica loss invisible.
type retryBudget struct {
	mu sync.Mutex
	// Integer milli-tokens, so fractional earn rates accumulate
	// exactly (10 earns at ratio 0.1 buy precisely one retry — float
	// accumulation would round it away).
	earnMilli int64
	maxMilli  int64
	milli     int64
	unlimited bool
	taken     int64
	denied    int64
}

func newRetryBudget(ratio float64, burst int) *retryBudget {
	rb := &retryBudget{
		earnMilli: int64(ratio * 1000),
		maxMilli:  int64(burst) * 1000,
		milli:     int64(burst) * 1000,
	}
	if ratio <= 0 {
		rb.unlimited = true
	}
	return rb
}

// earn credits the bucket for one primary launch.
func (rb *retryBudget) earn() {
	if rb == nil || rb.unlimited {
		return
	}
	rb.mu.Lock()
	rb.milli += rb.earnMilli
	if rb.milli > rb.maxMilli {
		rb.milli = rb.maxMilli
	}
	rb.mu.Unlock()
}

// take spends one token for a hedge or failover; false means the
// budget is exhausted and the retry must not be sent.
func (rb *retryBudget) take() bool {
	if rb == nil {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.unlimited {
		rb.taken++
		return true
	}
	if rb.milli < 1000 {
		rb.denied++
		return false
	}
	rb.milli -= 1000
	rb.taken++
	return true
}

// RetryBudgetStats is a point-in-time snapshot for telemetry surfaces.
type RetryBudgetStats struct {
	// Tokens is the current balance (meaningless when Unlimited).
	Tokens float64 `json:"tokens"`
	// Taken counts granted hedge/failover launches; Denied counts
	// retries refused because the budget was spent.
	Taken  int64 `json:"taken"`
	Denied int64 `json:"denied"`
	// Unlimited marks a disabled budget (ratio <= 0).
	Unlimited bool `json:"unlimited,omitempty"`
}

func (rb *retryBudget) stats() RetryBudgetStats {
	if rb == nil {
		return RetryBudgetStats{Unlimited: true}
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return RetryBudgetStats{Tokens: float64(rb.milli) / 1000, Taken: rb.taken, Denied: rb.denied, Unlimited: rb.unlimited}
}
