package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/search"
	"repro/internal/trace"
)

// ServerConfig wires a SegmentServer.
type ServerConfig struct {
	// Sharded is the full sharded build of the collection. Every
	// server of one topology builds the same sharded index (the build
	// is deterministic in the document stream), then serves only the
	// segments assigned to it — the index layout, not the process
	// layout, fixes global doc IDs.
	Sharded *index.Sharded
	// Hosted lists the segment ordinals this server scores; empty
	// hosts every segment.
	Hosted []int
	// SourceHash fingerprints the collection the index was built from
	// (CollectionSourceHash); the merge tier compares it against its
	// own collection so scores and served metadata cannot come from
	// different archives. Zero skips the check (bare-index wiring).
	SourceHash uint64
	// Logger receives request logs (nil discards).
	Logger *slog.Logger
	// SlowQuery logs any traced request at least this slow as a
	// structured slow-query line with its full span tree (0 disables).
	SlowQuery time.Duration
	// TraceRing bounds the ring of recently finished traces served at
	// TracesPath (0 = the trace package default).
	TraceRing int
	// Admission sizes the segment tier's concurrency gate. The zero
	// value yields an effectively transparent gate (limit 4096) whose
	// ivr_admission_* families are still scrapeable; set InitialLimit
	// (and Target for AIMD adaptation) to actually bound concurrency.
	Admission metrics.AdmissionConfig
	// Clock drives X-IVR-Deadline budget expiry (nil = real time;
	// chaostest injects a manual clock for deterministic expiry).
	Clock overload.Clock
}

// SegmentServer hosts index segments behind the /rpc/v1 surface. It is
// immutable after construction and safe for concurrent use.
type SegmentServer struct {
	sh         *index.Sharded
	hosted     map[int]*index.Index
	ordinals   []int
	sourceHash uint64
	statsBody  []byte // precomputed: the index is immutable
	log        *slog.Logger
	metrics    *metrics.Registry
	codec      codecCounters
	tracer     *trace.Collector
	handler    http.Handler
	gate       *metrics.Admission
	clock      overload.Clock
	// deadline counts search RPCs answered deadline_exceeded — on
	// arrival, in the admission queue, or mid-scoring.
	deadline atomic.Int64
}

// codecCounters counts /rpc/v1/search bodies by negotiated codec —
// the observable proof (scraped by the CI smoke test) that the merge
// tier actually negotiated the binary framing instead of silently
// falling back to JSON.
type codecCounters struct {
	binary atomic.Int64
	json   atomic.Int64
}

// codecSnapshot is the JSON rendering of codecCounters.
type codecSnapshot struct {
	Binary int64 `json:"binary"`
	JSON   int64 `json:"json"`
}

// NewSegmentServer validates the hosted set and precomputes the stats
// payload (the index is immutable, so /rpc/v1/stats is a static body).
func NewSegmentServer(cfg ServerConfig) (*SegmentServer, error) {
	if cfg.Sharded == nil {
		return nil, fmt.Errorf("distrib: nil sharded index")
	}
	n := cfg.Sharded.NumSegments()
	ords := cfg.Hosted
	if len(ords) == 0 {
		ords = make([]int, n)
		for i := range ords {
			ords[i] = i
		}
	}
	s := &SegmentServer{
		sh:         cfg.Sharded,
		hosted:     make(map[int]*index.Index, len(ords)),
		sourceHash: cfg.SourceHash,
		log:        cfg.Logger,
		metrics:    metrics.NewRegistry(),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	acfg := cfg.Admission
	if acfg.InitialLimit <= 0 {
		// Transparent by default: the gate exists (so its telemetry
		// families are always present) but does not bind.
		acfg.InitialLimit = 4096
	}
	s.gate = metrics.NewAdmission(acfg)
	s.clock = cfg.Clock
	for _, ord := range ords {
		if ord < 0 || ord >= n {
			return nil, fmt.Errorf("distrib: hosted segment %d outside topology of %d segments", ord, n)
		}
		if _, dup := s.hosted[ord]; dup {
			return nil, fmt.Errorf("distrib: segment %d hosted twice", ord)
		}
		s.hosted[ord] = cfg.Sharded.Segment(ord)
		s.ordinals = append(s.ordinals, ord)
	}
	sort.Ints(s.ordinals)
	body, err := json.Marshal(s.buildStats())
	if err != nil {
		return nil, fmt.Errorf("distrib: encode stats: %w", err)
	}
	s.statsBody = body
	s.tracer = trace.NewCollector(trace.CollectorConfig{
		Tier:          trace.TierSegment,
		RingSize:      cfg.TraceRing,
		SlowThreshold: cfg.SlowQuery,
	})
	traced := trace.HTTPMiddleware(trace.HTTPConfig{
		Tier:      trace.TierSegment,
		Collector: s.tracer,
		// Only scoring work is worth a trace; probes and scrapes would
		// drown the ring.
		Skip: func(path string) bool { return path != SearchPath },
	})
	s.handler = s.withRequestLog(traced(s.routes()))
	return s, nil
}

// withRequestLog logs one line per request (method, path, status,
// duration) through the configured logger.
func (s *SegmentServer) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := metrics.NewStatusRecorder(w)
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.log.Info("rpc request",
			"method", r.Method, "path", r.URL.Path,
			"status", rec.Status(), "duration", time.Since(start))
	})
}

// Metrics exposes the server's telemetry registry (ops and tests).
func (s *SegmentServer) Metrics() *metrics.Registry { return s.metrics }

// Hosted returns the hosted segment ordinals, ascending.
func (s *SegmentServer) Hosted() []int {
	out := make([]int, len(s.ordinals))
	copy(out, s.ordinals)
	return out
}

// Handler returns the instrumented /rpc/v1 route table.
func (s *SegmentServer) Handler() http.Handler { return s.handler }

// Telemetry labels for the catch-all handlers, following the webapi
// convention ("<method> <pattern>", "*" = any method): every request
// that misses the route table lands on one of two fixed labels, so
// per-route metrics cannot explode on arbitrary request paths.
const (
	routeRPCUnmatched = "* /rpc/"
	routeUnmatched    = "* /"
)

// routes builds the RPC route table. Every handler — including both
// catch-alls — is registered through the shared metrics.Instrument
// wrapper under a fixed pattern label.
func (s *SegmentServer) routes() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.metrics.Instrument(pattern, h))
	}
	handle("GET "+StatsPath, s.handleStats)
	handle("POST "+SearchPath, s.handleSearch)
	handle("GET "+HealthPath, s.handleHealthz)
	handle("GET "+MetricsPath, s.handleMetrics)
	handle("GET "+MetricsAliasPath, s.handlePrometheus)
	handle("GET "+TracesPath, s.handleTraces)
	notFound := func(w http.ResponseWriter, r *http.Request) {
		writeRPCError(w, http.StatusNotFound, codeNotFound, "no route %s %s", r.Method, r.URL.Path)
	}
	mux.HandleFunc("/rpc/", s.metrics.Instrument(routeRPCUnmatched, notFound))
	mux.HandleFunc("/", s.metrics.Instrument(routeUnmatched, notFound))
	return mux
}

// rpcErrorEnvelope mirrors the /api/v1 error body.
type rpcErrorEnvelope struct {
	Error rpcErrorDetail `json:"error"`
}

type rpcErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeRPCJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeRPCError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeRPCJSON(w, status, rpcErrorEnvelope{Error: rpcErrorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// buildStats assembles the full statistics export of every hosted
// segment.
func (s *SegmentServer) buildStats() StatsResponse {
	resp := StatsResponse{
		Segments:       s.sh.NumSegments(),
		CollectionHash: CollectionHash(s.sh),
		SourceHash:     s.sourceHash,
	}
	for _, ord := range s.ordinals {
		seg := s.hosted[ord]
		st := SegmentStats{
			Segment: ord,
			NumDocs: seg.NumDocs(),
			ExtIDs:  make([]string, seg.NumDocs()),
			Fields:  make(map[string]FieldStats, len(statsFields)),
		}
		for d := 0; d < seg.NumDocs(); d++ {
			st.ExtIDs[d] = seg.ExternalID(index.DocID(d))
		}
		for _, f := range statsFields {
			fs := FieldStats{
				TotalLen: seg.TotalFieldLen(f),
				Terms:    make(map[string]TermCounts, seg.NumTerms(f)),
			}
			seg.EachTerm(f, func(term string, df int, cf int64) bool {
				fs.Terms[term] = TermCounts{DF: df, CF: cf}
				return true
			})
			st.Fields[f.String()] = fs
		}
		resp.Hosted = append(resp.Hosted, st)
	}
	return resp
}

func (s *SegmentServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.statsBody)
}

func (s *SegmentServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// The hashes let a prober (or an operator with curl) confirm not
	// just liveness but that this replica serves the expected build —
	// the same identity the merge tier validates on connect and reload.
	writeRPCJSON(w, http.StatusOK, struct {
		Status         string `json:"status"`
		Segments       int    `json:"segments"`
		Hosted         []int  `json:"hosted"`
		CollectionHash uint64 `json:"collection_hash"`
		SourceHash     uint64 `json:"source_hash,omitempty"`
	}{"ok", s.sh.NumSegments(), s.Hosted(), CollectionHash(s.sh), s.sourceHash})
}

func (s *SegmentServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		s.handlePrometheus(w, r)
		return
	}
	writeRPCJSON(w, http.StatusOK, struct {
		metrics.Snapshot
		Codec codecSnapshot `json:"codec"`
		// Kernel is process-wide: every hosted segment scores through
		// the same pooled kernel.
		Kernel           search.KernelStats     `json:"kernel"`
		Admission        metrics.AdmissionStats `json:"admission"`
		DeadlineExceeded int64                  `json:"deadline_exceeded"`
	}{
		Snapshot:         s.metrics.TakeSnapshot(),
		Codec:            codecSnapshot{Binary: s.codec.binary.Load(), JSON: s.codec.json.Load()},
		Kernel:           search.ReadKernelStats(),
		Admission:        s.gate.Stats(),
		DeadlineExceeded: s.deadline.Load(),
	})
}

func (s *SegmentServer) handlePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	w.WriteHeader(http.StatusOK)
	if err := s.metrics.WritePrometheus(w, trace.TierSegment); err != nil {
		return
	}
	// Segment-tier extras on the same scrape: search-body codec split
	// and the scoring kernel's block-max telemetry.
	p := metrics.NewPromWriter(w)
	p.Family("ivr_rpc_codec_requests_total", "counter")
	p.Sample("ivr_rpc_codec_requests_total", float64(s.codec.binary.Load()), "codec", "binary")
	p.Sample("ivr_rpc_codec_requests_total", float64(s.codec.json.Load()), "codec", "json")
	ks := search.ReadKernelStats()
	kernel := []struct {
		name string
		v    int64
	}{
		{"ivr_kernel_segment_scans_total", ks.SegmentScans},
		{"ivr_kernel_pruned_scans_total", ks.PrunedScans},
		{"ivr_kernel_blocks_scored_total", ks.BlocksScored},
		{"ivr_kernel_blocks_skipped_total", ks.BlocksSkipped},
		{"ivr_kernel_blocks_rescored_total", ks.BlocksRescored},
		{"ivr_kernel_postings_skipped_total", ks.PostingsSkipped},
		{"ivr_kernel_terms_skipped_total", ks.TermsSkipped},
	}
	for _, k := range kernel {
		p.Family(k.name, "counter")
		p.Sample(k.name, float64(k.v))
	}
	metrics.WriteAdmissionPrometheus(p, s.gate.Stats())
	p.Family("ivr_deadline_exceeded_total", "counter")
	p.Sample("ivr_deadline_exceeded_total", float64(s.deadline.Load()))
}

// handleTraces serves the ring of recently finished traces, newest
// first.
func (s *SegmentServer) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeRPCJSON(w, http.StatusOK, struct {
		Traces []*trace.Entry `json:"traces"`
	}{s.tracer.Traces()})
}

// searchReqPool recycles decoded search requests (and through them the
// Terms/Stats slice capacity) across queries.
var searchReqPool = sync.Pool{New: func() any { return new(SearchRequest) }}

// handleSearch scores one hosted segment with the request's global
// statistics through the same search.ScoreIndexSegment kernel the
// in-process fan-out runs. The body codec follows the request's
// Content-Type: the binary frame on the hot path, JSON as the
// universal fallback; the response is always encoded in the same
// codec the request arrived in.
func (s *SegmentServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	// Deadline first: a request whose budget is spent (or garbled) is
	// answered typed before any byte of body is read or any slot taken.
	budget, derr := overload.ParseDeadline(r.Header.Get(overload.DeadlineHeader))
	if derr != nil {
		if errors.Is(derr, overload.ErrDeadlineExpired) {
			s.deadline.Add(1)
			writeRPCError(w, http.StatusGatewayTimeout, codeDeadline,
				"deadline budget spent before arrival")
			return
		}
		writeRPCError(w, http.StatusBadRequest, codeInvalid,
			"bad %s header: %v", overload.DeadlineHeader, derr)
		return
	}
	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = overload.WithBudget(ctx, budget, s.clock)
		defer cancel()
	}
	// Admission second: shed at the concurrency limit while the refusal
	// is still cheap, with a Retry-After the merge tier and SDK honour.
	ticket, err := s.gate.Acquire(ctx)
	if err != nil {
		if errors.Is(err, metrics.ErrShed) {
			w.Header().Set("Retry-After", "1")
			writeRPCError(w, http.StatusTooManyRequests, codeOverloaded,
				"segment tier at concurrency limit")
			return
		}
		// The budget (or caller) expired while queued.
		s.deadline.Add(1)
		writeRPCError(w, http.StatusGatewayTimeout, codeDeadline,
			"deadline budget spent in admission queue")
		return
	}
	defer ticket.Release()
	r.Body = http.MaxBytesReader(w, r.Body, MaxSearchBody)
	reqMT, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	binaryReq := reqMT == ContentTypeBinary
	req := searchReqPool.Get().(*SearchRequest)
	defer searchReqPool.Put(req)
	// Reset fully: a JSON body leaves fields its keys omit untouched,
	// and this struct carries the previous query's.
	*req = SearchRequest{Terms: req.Terms[:0], Stats: req.Stats[:0]}
	_, dec := trace.StartSpan(r.Context(), "decode")
	if binaryReq {
		dec.SetAttr("codec", "binary")
	}
	bodyBuf := getBuf()
	body, err := appendAll((*bodyBuf)[:0], r.Body)
	*bodyBuf = body[:0]
	defer putBuf(bodyBuf)
	if err == nil {
		if binaryReq {
			s.codec.binary.Add(1)
			err = decodeSearchRequest(body, req)
		} else {
			s.codec.json.Add(1)
			err = json.Unmarshal(body, req)
		}
	}
	dec.End()
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeRPCError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				"request body exceeds %d bytes", MaxSearchBody)
			return
		}
		if binaryReq {
			writeRPCError(w, http.StatusBadRequest, codeInvalid, "invalid binary frame: %v", err)
			return
		}
		writeRPCError(w, http.StatusBadRequest, codeInvalid, "invalid JSON: %v", err)
		return
	}
	seg, ok := s.hosted[req.Segment]
	if !ok {
		writeRPCError(w, http.StatusNotFound, codeNotFound,
			"segment %d not hosted here (hosted: %v)", req.Segment, s.ordinals)
		return
	}
	field, err := fieldByName(req.Field)
	if err != nil {
		writeRPCError(w, http.StatusBadRequest, codeInvalid, "%v", err)
		return
	}
	if len(req.Terms) == 0 {
		writeRPCError(w, http.StatusBadRequest, codeInvalid, "empty term list")
		return
	}
	if len(req.Stats) != len(req.Terms) {
		writeRPCError(w, http.StatusBadRequest, codeInvalid,
			"%d stats for %d terms", len(req.Stats), len(req.Terms))
		return
	}
	scorer, err := req.Scorer.Scorer()
	if err != nil {
		writeRPCError(w, http.StatusBadRequest, codeInvalid, "%v", err)
		return
	}
	q := search.Query{Field: field, Terms: make([]search.WeightedTerm, len(req.Terms))}
	stats := make([]search.TermStats, len(req.Terms))
	for i, t := range req.Terms {
		if t.Weight < 0 {
			writeRPCError(w, http.StatusBadRequest, codeInvalid,
				"negative weight %v for term %q", t.Weight, t.Term)
			return
		}
		q.Terms[i] = search.WeightedTerm{Term: t.Term, Weight: t.Weight}
		ws := req.Stats[i]
		stats[i] = search.TermStats{
			N: ws.N, AvgDocLen: ws.AvgDocLen, TotalLen: ws.TotalLen,
			DF: ws.DF, CF: ws.CF, Weight: ws.Weight,
		}
	}
	ordinal := req.Segment
	// Compile from the wire statistics and run the same dense kernel
	// as the in-process fan-out: identical inputs, identical compiled
	// constants, bit-identical scores.
	_, sc := trace.StartSpan(r.Context(), "score")
	p := search.PrepareQuery(q, stats, scorer)
	res, scoreErr := p.ScoreSegmentContext(ctx, seg, func(d index.DocID) index.DocID {
		return s.sh.GlobalID(ordinal, d)
	}, nil, req.K)
	if sc != nil {
		sc.SetAttr("segment", strconv.Itoa(ordinal))
		sc.SetAttr("candidates", strconv.Itoa(res.Candidates))
		sc.End()
	}
	if scoreErr != nil {
		// The kernel aborted at a block boundary: the budget ran out
		// mid-scan. Partial accumulator state is discarded, never served.
		s.deadline.Add(1)
		writeRPCError(w, http.StatusGatewayTimeout, codeDeadline,
			"deadline budget spent during scoring")
		return
	}
	hits := getWireHits()
	for _, h := range res.Hits {
		hits = append(hits, WireHit{Doc: uint32(h.Doc), ID: h.ID, Score: h.Score})
	}
	search.RecycleHits(res.Hits)
	// Encode into a pooled buffer and stream it with an exact
	// Content-Length — one write, no chunked framing, no intermediate
	// copy on either codec.
	respBuf := getBuf()
	defer putBuf(respBuf)
	_, enc := trace.StartSpan(r.Context(), "encode")
	var encErr error
	contentType := "application/json"
	if binaryReq {
		contentType = ContentTypeBinary
		*respBuf = appendSearchResponse((*respBuf)[:0], ordinal, hits, res.Candidates)
	} else {
		buf := bytes.NewBuffer((*respBuf)[:0])
		encErr = json.NewEncoder(buf).Encode(SearchResponse{
			Segment:    &ordinal,
			Hits:       hits,
			Candidates: &res.Candidates,
		})
		*respBuf = buf.Bytes()
	}
	enc.SetAttr("bytes", strconv.Itoa(len(*respBuf)))
	enc.End()
	recycleWireHits(hits)
	if encErr != nil {
		writeRPCError(w, http.StatusInternalServerError, codeInternal, "encode response: %v", encErr)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(*respBuf)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(*respBuf)
}
