// Package distrib splits retrieval across processes: segment servers
// (cmd/ivrsegment) each host one or more index segments behind a small
// versioned HTTP RPC surface, and a merge tier (Cluster) scatters
// queries over them and gathers the partial top-k lists back through
// the exact same search.Engine merge the in-process fan-out uses.
//
// The parity mechanism is deliberate and narrow:
//
//   - collection-wide statistics (doc counts, field lengths, per-term
//     df/cf) are aggregated ONCE at startup over the same contract
//     index.Sharded pins down, and every query ships the precomputed
//     global per-term statistics to every segment;
//   - both sides of the process boundary execute the one exported
//     scoring kernel, search.ScoreIndexSegment;
//   - encoding/json round-trips float64 exactly (shortest-form
//     formatting), so scores cross the wire bit-identically.
//
// Distributed rankings are therefore bit-identical to the in-process
// engine over the same document stream — the distributed parity test
// suite pins this.
//
// RPC surface (all JSON; errors use the same envelope as /api/v1,
// {"error":{"code","message"}}):
//
//	GET  /rpc/v1/stats         segment topology + full per-term statistics
//	POST /rpc/v1/search        score one hosted segment with shipped stats
//	GET  /rpc/v1/healthz       liveness
//	GET  /rpc/v1/metrics       per-route telemetry snapshot (?format=prometheus for text exposition)
//	GET  /rpc/v1/debug/traces  ring of recently finished query traces
//	GET  /metrics              Prometheus scrape alias
//
// Search requests carry the trace header contract (X-Request-Id
// honoured and echoed; X-IVR-Trace: 1 asks the server to serialise its
// span tree into the response header — see package trace).
package distrib

import (
	"fmt"
	"hash"
	"hash/fnv"
	"math"

	"repro/internal/collection"
	"repro/internal/index"
)

// RPC paths, versioned like the public API.
const (
	StatsPath   = "/rpc/v1/stats"
	SearchPath  = "/rpc/v1/search"
	HealthPath  = "/rpc/v1/healthz"
	MetricsPath = "/rpc/v1/metrics"
	// TracesPath serves the ring of recently finished traces.
	TracesPath = "/rpc/v1/debug/traces"
	// MetricsAliasPath is the conventional Prometheus scrape path; it
	// serves MetricsPath's ?format=prometheus rendering.
	MetricsAliasPath = "/metrics"
)

// MaxSearchBody bounds /rpc/v1/search request bodies. Expanded queries
// ship at most a few dozen terms with their statistics; 1 MiB is three
// orders of magnitude of headroom.
const MaxSearchBody = 1 << 20

// Error codes in the RPC error envelope (same vocabulary as /api/v1).
const (
	codeInvalid  = "invalid_request"
	codeNotFound = "not_found"
	codeTooLarge = "body_too_large"
	codeInternal = "internal"
	// codeDeadline marks a request whose X-IVR-Deadline budget was
	// already spent (HTTP 504); retrying a twin cannot help, the budget
	// is gone everywhere.
	codeDeadline = "deadline_exceeded"
	// codeOverloaded marks a typed admission shed (HTTP 429 with
	// Retry-After); a twin replica may still have capacity, so the
	// merge tier treats it as retryable.
	codeOverloaded = "overloaded"
)

// WireTerm is one analysed query term with its query-side weight.
type WireTerm struct {
	Term   string  `json:"term"`
	Weight float64 `json:"weight"`
}

// WireTermStats carries the merge-tier-computed collection-wide
// statistics for one query term (parallel to the request's terms).
// Shipping them — instead of letting a segment consult its own partial
// statistics — is what keeps remote scoring bit-identical to the
// in-process fan-out.
type WireTermStats struct {
	N         int     `json:"n"`
	AvgDocLen float64 `json:"avg_doc_len"`
	TotalLen  int64   `json:"total_len"`
	DF        int     `json:"df"`
	CF        int64   `json:"cf"`
	Weight    float64 `json:"weight"`
}

// ScorerSpec names a scorer and its parameters on the wire. Only the
// built-in scorer families are serialisable; a custom Scorer
// implementation cannot cross the process boundary.
type ScorerSpec struct {
	Name string `json:"name"`
	// K1/B parameterise bm25, Mu parameterises dirichlet-lm; zero
	// values select each scorer's own defaults, exactly as in-process.
	K1 float64 `json:"k1,omitempty"`
	B  float64 `json:"b,omitempty"`
	Mu float64 `json:"mu,omitempty"`
}

// SearchRequest asks a segment server to score one hosted segment.
type SearchRequest struct {
	// Segment is the global segment ordinal to score.
	Segment int `json:"segment"`
	// Field is the index field name ("text" or "concept").
	Field  string          `json:"field"`
	Terms  []WireTerm      `json:"terms"`
	Stats  []WireTermStats `json:"stats"`
	Scorer ScorerSpec      `json:"scorer"`
	// K bounds the segment-local result list; K <= 0 returns every
	// candidate (the merge tier requests the full list when it must
	// apply an opaque filter itself).
	K int `json:"k"`
}

// WireHit is one scored document: the global doc ID, the external
// (shot) identifier, and the final segment-computed score.
type WireHit struct {
	Doc   uint32  `json:"doc"`
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// SearchResponse is one segment's partial result. Segment and
// Candidates are pointers so the merge tier can tell a well-formed
// empty result from a garbage body that happens to parse as JSON:
// a response missing either key is rejected as malformed.
type SearchResponse struct {
	Segment    *int      `json:"segment"`
	Hits       []WireHit `json:"hits"`
	Candidates *int      `json:"candidates"`
}

// TermCounts is one term's document and collection frequency.
type TermCounts struct {
	DF int   `json:"df"`
	CF int64 `json:"cf"`
}

// FieldStats is one field's complete statistics for one segment.
type FieldStats struct {
	TotalLen int64                 `json:"total_len"`
	Terms    map[string]TermCounts `json:"terms"`
}

// SegmentStats is everything the merge tier needs to fold one hosted
// segment into the global statistics: its ordinal, document count,
// external IDs in local doc-ID order (global ID arithmetic and
// DocIDOf come from these), and full per-field term statistics.
type SegmentStats struct {
	Segment int                   `json:"segment"`
	NumDocs int                   `json:"num_docs"`
	ExtIDs  []string              `json:"ext_ids"`
	Fields  map[string]FieldStats `json:"fields"`
}

// StatsResponse is the /rpc/v1/stats body: the topology this server
// participates in and the statistics of every segment it hosts.
type StatsResponse struct {
	// Segments is the total segment count of the sharded build, shared
	// by every server of one topology.
	Segments int `json:"segments"`
	// CollectionHash fingerprints the full document stream (see
	// CollectionHash); servers built from different corpora — or
	// different segment counts — disagree here and are rejected at
	// connect time.
	CollectionHash uint64 `json:"collection_hash"`
	// SourceHash fingerprints the source collection the index was
	// built from (see CollectionSourceHash), covering the metadata the
	// merge tier serves locally (titles, categories, durations) as
	// well as the indexed text. Zero when the server was wired from a
	// bare index with no collection.
	SourceHash uint64 `json:"source_hash,omitempty"`
	// Hosted lists the segments this server scores, ascending ordinal.
	Hosted []SegmentStats `json:"hosted"`
}

// fieldByName parses a wire field name.
func fieldByName(name string) (index.Field, error) {
	switch name {
	case index.FieldText.String():
		return index.FieldText, nil
	case index.FieldConcept.String():
		return index.FieldConcept, nil
	}
	return 0, fmt.Errorf("distrib: unknown field %q", name)
}

// statsFields enumerates the fields exported in SegmentStats.
var statsFields = []index.Field{index.FieldText, index.FieldConcept}

// hasher frames values into an FNV-1a fingerprint: integers as 8-byte
// little-endian words, strings length-prefixed. One encoding shared by
// both collection fingerprints, so the framing cannot drift between
// them.
type hasher struct {
	h   hash.Hash64
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: fnv.New64a()} }

func (hs *hasher) put(v uint64) {
	for i := range hs.buf {
		hs.buf[i] = byte(v >> (8 * i))
	}
	hs.h.Write(hs.buf[:])
}

func (hs *hasher) putStr(s string) {
	hs.put(uint64(len(s)))
	hs.h.Write([]byte(s))
}

func (hs *hasher) sum() uint64 { return hs.h.Sum64() }

// CollectionSourceHash fingerprints a collection's served content:
// every shot's identifiers, transcript, duration and concepts, plus
// its story's title and category, in shot iteration order. The merge
// tier serves shot metadata from its *local* collection while scores
// come from the segment servers, so both sides hash their collection
// and ivrserve refuses a topology whose backends were generated from
// a different archive — even one that happens to contain the same
// number of shots with the same IDs.
func CollectionSourceHash(coll *collection.Collection) uint64 {
	hs := newHasher()
	coll.Shots(func(s *collection.Shot) bool {
		hs.putStr(string(s.ID))
		hs.putStr(string(s.VideoID))
		hs.putStr(string(s.StoryID))
		hs.putStr(s.Transcript)
		hs.put(math.Float64bits(s.Duration.Seconds()))
		hs.put(uint64(len(s.Concepts)))
		for _, cs := range s.Concepts {
			hs.putStr(string(cs.Concept))
			hs.put(math.Float64bits(cs.Confidence))
		}
		if story := coll.Story(s.StoryID); story != nil {
			hs.putStr(story.Title)
			hs.putStr(story.Category.String())
		}
		return true
	})
	return hs.sum()
}

// CollectionHash fingerprints a sharded build's full content: the
// segment count, every external ID in global (insertion) order, and
// every segment's per-field statistics (total length plus the sorted
// term/df/cf dictionary). Every server of one topology computes it
// over its complete local build — each ivrsegment indexes the whole
// archive and then hosts a subset — so two servers agree if and only
// if they were built from the same document stream with the same
// segment count. The merge tier rejects a topology whose backends
// disagree, before the first query can mix statistics from different
// corpora.
func CollectionHash(sh *index.Sharded) uint64 {
	hs := newHasher()
	hs.put(uint64(sh.NumSegments()))
	hs.put(uint64(sh.NumDocs()))
	for g := 0; g < sh.NumDocs(); g++ {
		hs.putStr(sh.ExternalID(index.DocID(g)))
	}
	for ord := 0; ord < sh.NumSegments(); ord++ {
		seg := sh.Segment(ord)
		for _, f := range statsFields {
			hs.put(uint64(seg.TotalFieldLen(f)))
			seg.EachTerm(f, func(term string, df int, cf int64) bool {
				hs.putStr(term)
				hs.put(uint64(df))
				hs.put(uint64(cf))
				return true
			})
		}
	}
	return hs.sum()
}
