package distrib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/search"
)

// newRPCServer hosts every segment of a small corpus on one
// httptest-backed segment server.
func newRPCServer(t *testing.T, segments int) (*httptest.Server, *SegmentServer, *index.Sharded) {
	t.Helper()
	_, sh := buildCorpus(t, 3, 60, segments)
	srv, err := NewSegmentServer(ServerConfig{Sharded: sh})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, sh
}

// wantRPCEnvelope asserts the uniform error body (mirroring the
// /api/v1 envelope helpers in internal/webapi's tests).
func wantRPCEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error response content type %q", ct)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Error.Code != wantCode || env.Error.Message == "" {
		t.Fatalf("envelope = %+v, want code %q with message", env, wantCode)
	}
}

// validSearchRequest builds a well-formed request for segment 0.
func validSearchRequest() SearchRequest {
	return SearchRequest{
		Segment: 0,
		Field:   "text",
		Terms:   []WireTerm{{Term: "goal", Weight: 1}},
		Stats:   []WireTermStats{{N: 60, AvgDocLen: 7, TotalLen: 420, DF: 20, CF: 35, Weight: 1}},
		Scorer:  ScorerSpec{Name: "bm25"},
		K:       10,
	}
}

func postSearch(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+SearchPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRPCStatsEndpoint(t *testing.T) {
	ts, _, sh := newRPCServer(t, 3)
	resp, err := http.Get(ts.URL + StatsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Segments != 3 || len(st.Hosted) != 3 {
		t.Fatalf("topology %d/%d, want 3/3", st.Segments, len(st.Hosted))
	}
	if st.CollectionHash != CollectionHash(sh) {
		t.Error("stats hash differs from local recomputation")
	}
	for ord, seg := range st.Hosted {
		if seg.Segment != ord {
			t.Errorf("hosted[%d] is segment %d", ord, seg.Segment)
		}
		if seg.NumDocs != sh.Segment(ord).NumDocs() || len(seg.ExtIDs) != seg.NumDocs {
			t.Errorf("segment %d doc counts inconsistent", ord)
		}
		fs, ok := seg.Fields["text"]
		if !ok || fs.TotalLen != sh.Segment(ord).TotalFieldLen(index.FieldText) {
			t.Errorf("segment %d text stats wrong", ord)
		}
		if fs.Terms["goal"].DF != sh.Segment(ord).DocFreq(index.FieldText, "goal") {
			t.Errorf("segment %d df(goal) wrong", ord)
		}
	}
}

// TestRPCSearchEndpoint checks the happy path against a direct
// invocation of the shared scoring kernel.
func TestRPCSearchEndpoint(t *testing.T) {
	ts, _, sh := newRPCServer(t, 3)
	req := validSearchRequest()
	body, _ := json.Marshal(req)
	resp := postSearch(t, ts.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var out SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Segment == nil || *out.Segment != 0 || out.Candidates == nil {
		t.Fatalf("response echo missing: %+v", out)
	}
	want := search.ScoreIndexSegment(sh.Segment(0), func(d index.DocID) index.DocID {
		return sh.GlobalID(0, d)
	}, search.Query{
		Field: index.FieldText,
		Terms: []search.WeightedTerm{{Term: "goal", Weight: 1}},
	}, []search.TermStats{{N: 60, AvgDocLen: 7, TotalLen: 420, DF: 20, CF: 35, Weight: 1}},
		search.BM25{}, nil, 10)
	if *out.Candidates != want.Candidates || len(out.Hits) != len(want.Hits) {
		t.Fatalf("got %d hits/%d candidates, want %d/%d",
			len(out.Hits), *out.Candidates, len(want.Hits), want.Candidates)
	}
	for i, h := range out.Hits {
		if h.ID != want.Hits[i].ID || h.Score != want.Hits[i].Score || index.DocID(h.Doc) != want.Hits[i].Doc {
			t.Fatalf("hit %d: %+v != %+v (JSON must round-trip scores exactly)", i, h, want.Hits[i])
		}
	}
}

// TestRPCSearchErrors drives every request-validation branch into its
// envelope.
func TestRPCSearchErrors(t *testing.T) {
	ts, _, _ := newRPCServer(t, 3)
	mutate := func(fn func(*SearchRequest)) []byte {
		req := validSearchRequest()
		fn(&req)
		b, _ := json.Marshal(req)
		return b
	}
	cases := []struct {
		name       string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"malformed json", []byte("{nope"), http.StatusBadRequest, codeInvalid},
		{"not hosted", mutate(func(r *SearchRequest) { r.Segment = 7 }), http.StatusNotFound, codeNotFound},
		{"negative segment", mutate(func(r *SearchRequest) { r.Segment = -1 }), http.StatusNotFound, codeNotFound},
		{"bad field", mutate(func(r *SearchRequest) { r.Field = "vibes" }), http.StatusBadRequest, codeInvalid},
		{"empty terms", mutate(func(r *SearchRequest) { r.Terms = nil; r.Stats = nil }), http.StatusBadRequest, codeInvalid},
		{"stats mismatch", mutate(func(r *SearchRequest) { r.Stats = append(r.Stats, r.Stats[0]) }), http.StatusBadRequest, codeInvalid},
		{"unknown scorer", mutate(func(r *SearchRequest) { r.Scorer = ScorerSpec{Name: "vibes"} }), http.StatusBadRequest, codeInvalid},
		{"negative weight", mutate(func(r *SearchRequest) { r.Terms[0].Weight = -1 }), http.StatusBadRequest, codeInvalid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRPCEnvelope(t, postSearch(t, ts.URL, tc.body), tc.wantStatus, tc.wantCode)
		})
	}
}

// TestRPCSearchOversizedBody: bodies past MaxSearchBody are refused
// with 413, not read to the end.
func TestRPCSearchOversizedBody(t *testing.T) {
	ts, _, _ := newRPCServer(t, 2)
	// Valid JSON whose bulk crosses the limit, so the decoder hits the
	// MaxBytesReader cap rather than a syntax error.
	big := []byte(`{"field":"` + strings.Repeat("a", MaxSearchBody) + `"}`)
	wantRPCEnvelope(t, postSearch(t, ts.URL, big), http.StatusRequestEntityTooLarge, codeTooLarge)
}

func TestRPCHealthz(t *testing.T) {
	ts, _, _ := newRPCServer(t, 3)
	resp, err := http.Get(ts.URL + HealthPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status   string `json:"status"`
		Segments int    `json:"segments"`
		Hosted   []int  `json:"hosted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.Segments != 3 || !reflect.DeepEqual(out.Hosted, []int{0, 1, 2}) {
		t.Fatalf("healthz = %+v", out)
	}
}

// TestRPCRouteLabelNormalization is the regression test for catch-all
// label normalization on the RPC mux: arbitrary request paths must
// collapse onto the fixed "* /rpc/" and "* /" labels instead of
// minting one metrics route per path.
func TestRPCRouteLabelNormalization(t *testing.T) {
	ts, srv, _ := newRPCServer(t, 2)
	// A valid call plus a storm of junk paths.
	body, _ := json.Marshal(validSearchRequest())
	postSearch(t, ts.URL, body).Body.Close()
	for i := 0; i < 25; i++ {
		for _, path := range []string{
			fmt.Sprintf("/rpc/v1/bogus%d", i),
			fmt.Sprintf("/rpc/other/%d", i),
			fmt.Sprintf("/completely/random/%d", i),
		} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			wantRPCEnvelope(t, resp, http.StatusNotFound, codeNotFound)
		}
	}
	snap := srv.Metrics().TakeSnapshot()
	allowed := map[string]bool{
		"GET " + StatsPath:        true,
		"POST " + SearchPath:      true,
		"GET " + HealthPath:       true,
		"GET " + MetricsPath:      true,
		"GET " + MetricsAliasPath: true,
		"GET " + TracesPath:       true,
		routeRPCUnmatched:         true,
		routeUnmatched:            true,
	}
	for route := range snap.Routes {
		if !allowed[route] {
			t.Errorf("unexpected metrics route label %q — per-route metrics exploded", route)
		}
	}
	if n := snap.Routes[routeRPCUnmatched].Count; n != 50 {
		t.Errorf("%q count = %d, want 50", routeRPCUnmatched, n)
	}
	if n := snap.Routes[routeUnmatched].Count; n != 25 {
		t.Errorf("%q count = %d, want 25", routeUnmatched, n)
	}
	if snap.Totals.Errors4xx != 75 {
		t.Errorf("4xx total = %d, want 75", snap.Totals.Errors4xx)
	}
}

// TestRPCMetricsEndpoint: the RPC server publishes its own per-route
// snapshot.
func TestRPCMetricsEndpoint(t *testing.T) {
	ts, _, _ := newRPCServer(t, 2)
	if _, err := http.Get(ts.URL + StatsPath); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + MetricsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Routes map[string]struct {
			Count int64 `json:"count"`
		} `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Routes["GET "+StatsPath].Count < 1 {
		t.Errorf("stats route not counted: %+v", snap.Routes)
	}
}
