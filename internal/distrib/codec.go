package distrib

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Binary codec for the /rpc/v1/search hot path.
//
// JSON framing is the right default for the RPC surface — debuggable
// with curl, schema-evolvable, and float64-exact — but on the scatter
// path every query pays it per segment: the merge tier encodes one
// request and decodes one response per backend hop, and the segment
// server does the mirror image. The binary codec replaces exactly
// those two bodies with a length-prefixed frame that costs a fraction
// of the bytes and none of the reflection, negotiated per request via
// Content-Type with JSON kept as the universal fallback (stats,
// health, metrics, traces and every error envelope stay JSON).
//
// Frame layout:
//
//	magic    4 bytes  "IVRB"
//	version  1 byte   (1)
//	msgType  1 byte   (1 = search request, 2 = search response)
//	length   4 bytes  little-endian payload byte count (exact)
//	payload  N bytes
//
// Payload fields are varint-coded integers (signed zig-zag where the
// value can be negative, e.g. K = -1), length-prefixed strings, and
// fixed 8-byte little-endian IEEE-754 floats. Floats cross the wire
// as raw math.Float64bits, so scores and statistics stay bit-exact —
// the same guarantee shortest-form JSON formatting gives the fallback
// path, without the format/parse round trip.
//
// Decoders are defensive in the same spirit as the index file reader:
// every length is validated against the bytes actually present, term
// and hit counts are capped before any allocation sizes off them, and
// a frame with trailing bytes is rejected, never silently accepted.
const ContentTypeBinary = "application/x-ivr-search"

const (
	binVersion       = 1
	binMsgSearchReq  = 1
	binMsgSearchResp = 2
	// binHeaderLen is the fixed frame prefix: magic, version, msgType,
	// payload length.
	binHeaderLen = 10
)

var binMagic = [4]byte{'I', 'V', 'R', 'B'}

// Decode caps: structural limits checked before any count is trusted.
const (
	// maxWireTerms bounds term/stats list lengths; MaxSearchBody admits
	// far fewer real terms, so this only guards allocation sizing
	// against a hostile count.
	maxWireTerms = 4096
	// maxWireString bounds one term, field, scorer name, or doc ID.
	maxWireString = 1 << 16
	// minWireHit is the smallest encodable hit (one-byte doc varint,
	// empty ID, 8-byte score); a declared hit count is only trusted if
	// that many minimal hits would fit in the remaining payload.
	minWireHit = 10
)

// --- encoding ---

// beginFrame starts a frame in dst (which must be empty): header with
// a zero length to be patched by endFrame.
func beginFrame(dst []byte, msgType byte) []byte {
	dst = append(dst, binMagic[:]...)
	return append(dst, binVersion, msgType, 0, 0, 0, 0)
}

// endFrame patches the payload length now that it is known.
func endFrame(dst []byte) []byte {
	binary.LittleEndian.PutUint32(dst[binHeaderLen-4:binHeaderLen], uint32(len(dst)-binHeaderLen))
	return dst
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendSearchRequest encodes one search request frame into dst.
func appendSearchRequest(dst []byte, req *SearchRequest) []byte {
	dst = beginFrame(dst, binMsgSearchReq)
	dst = binary.AppendVarint(dst, int64(req.Segment))
	dst = appendStr(dst, req.Field)
	dst = binary.AppendUvarint(dst, uint64(len(req.Terms)))
	for i := range req.Terms {
		dst = appendStr(dst, req.Terms[i].Term)
		dst = appendF64(dst, req.Terms[i].Weight)
	}
	dst = binary.AppendUvarint(dst, uint64(len(req.Stats)))
	for i := range req.Stats {
		st := &req.Stats[i]
		dst = binary.AppendVarint(dst, int64(st.N))
		dst = appendF64(dst, st.AvgDocLen)
		dst = binary.AppendVarint(dst, st.TotalLen)
		dst = binary.AppendVarint(dst, int64(st.DF))
		dst = binary.AppendVarint(dst, st.CF)
		dst = appendF64(dst, st.Weight)
	}
	dst = appendStr(dst, req.Scorer.Name)
	dst = appendF64(dst, req.Scorer.K1)
	dst = appendF64(dst, req.Scorer.B)
	dst = appendF64(dst, req.Scorer.Mu)
	dst = binary.AppendVarint(dst, int64(req.K))
	return endFrame(dst)
}

// appendSearchResponse encodes one search response frame into dst.
func appendSearchResponse(dst []byte, segment int, hits []WireHit, candidates int) []byte {
	dst = beginFrame(dst, binMsgSearchResp)
	dst = binary.AppendVarint(dst, int64(segment))
	dst = binary.AppendVarint(dst, int64(candidates))
	dst = binary.AppendUvarint(dst, uint64(len(hits)))
	for i := range hits {
		dst = binary.AppendUvarint(dst, uint64(hits[i].Doc))
		dst = appendStr(dst, hits[i].ID)
		dst = appendF64(dst, hits[i].Score)
	}
	return endFrame(dst)
}

// --- decoding ---

// binReader walks a frame payload; every accessor validates remaining
// bytes before consuming them.
type binReader struct {
	buf []byte
	off int
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) f64() (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("truncated float at offset %d", r.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

func (r *binReader) str() (string, error) {
	l, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if l > maxWireString {
		return "", fmt.Errorf("string length %d exceeds %d", l, maxWireString)
	}
	if r.off+int(l) > len(r.buf) {
		return "", fmt.Errorf("truncated string at offset %d", r.off)
	}
	s := string(r.buf[r.off : r.off+int(l)])
	r.off += int(l)
	return s, nil
}

// remaining returns the unconsumed payload byte count.
func (r *binReader) remaining() int { return len(r.buf) - r.off }

// done rejects trailing garbage after a complete message.
func (r *binReader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("%d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// openFrame validates the header and returns the payload. The declared
// length must match the frame exactly — a concatenated or truncated
// frame is an error, not a prefix decode.
func openFrame(frame []byte, msgType byte) ([]byte, error) {
	if len(frame) < binHeaderLen {
		return nil, fmt.Errorf("frame shorter than %d-byte header", binHeaderLen)
	}
	if !bytes.Equal(frame[:4], binMagic[:]) {
		return nil, fmt.Errorf("bad magic %q", frame[:4])
	}
	if frame[4] != binVersion {
		return nil, fmt.Errorf("unsupported codec version %d", frame[4])
	}
	if frame[5] != msgType {
		return nil, fmt.Errorf("message type %d, want %d", frame[5], msgType)
	}
	if n := binary.LittleEndian.Uint32(frame[6:binHeaderLen]); int64(n) != int64(len(frame)-binHeaderLen) {
		return nil, fmt.Errorf("declared payload %d bytes, frame carries %d", n, len(frame)-binHeaderLen)
	}
	return frame[binHeaderLen:], nil
}

// decodeSearchRequest decodes a request frame into req, reusing the
// Terms/Stats capacity req already carries (the server pools request
// structs across queries).
func decodeSearchRequest(frame []byte, req *SearchRequest) error {
	payload, err := openFrame(frame, binMsgSearchReq)
	if err != nil {
		return err
	}
	r := binReader{buf: payload}
	seg, err := r.varint()
	if err != nil {
		return err
	}
	req.Segment = int(seg)
	if req.Field, err = r.str(); err != nil {
		return err
	}
	nTerms, err := r.uvarint()
	if err != nil {
		return err
	}
	if nTerms > maxWireTerms {
		return fmt.Errorf("term count %d exceeds %d", nTerms, maxWireTerms)
	}
	req.Terms = req.Terms[:0]
	for i := uint64(0); i < nTerms; i++ {
		var t WireTerm
		if t.Term, err = r.str(); err != nil {
			return err
		}
		if t.Weight, err = r.f64(); err != nil {
			return err
		}
		req.Terms = append(req.Terms, t)
	}
	nStats, err := r.uvarint()
	if err != nil {
		return err
	}
	if nStats > maxWireTerms {
		return fmt.Errorf("stats count %d exceeds %d", nStats, maxWireTerms)
	}
	req.Stats = req.Stats[:0]
	for i := uint64(0); i < nStats; i++ {
		var st WireTermStats
		n, err := r.varint()
		if err != nil {
			return err
		}
		st.N = int(n)
		if st.AvgDocLen, err = r.f64(); err != nil {
			return err
		}
		if st.TotalLen, err = r.varint(); err != nil {
			return err
		}
		df, err := r.varint()
		if err != nil {
			return err
		}
		st.DF = int(df)
		if st.CF, err = r.varint(); err != nil {
			return err
		}
		if st.Weight, err = r.f64(); err != nil {
			return err
		}
		req.Stats = append(req.Stats, st)
	}
	if req.Scorer.Name, err = r.str(); err != nil {
		return err
	}
	if req.Scorer.K1, err = r.f64(); err != nil {
		return err
	}
	if req.Scorer.B, err = r.f64(); err != nil {
		return err
	}
	if req.Scorer.Mu, err = r.f64(); err != nil {
		return err
	}
	k, err := r.varint()
	if err != nil {
		return err
	}
	req.K = int(k)
	return r.done()
}

// decodeSearchResponse decodes a response frame into out. out.Segment
// and out.Candidates must point at storage (the binary codec has no
// optional keys — presence is structural); out.Hits' capacity is
// reused, so callers can feed a pooled slice.
func decodeSearchResponse(frame []byte, out *SearchResponse) error {
	payload, err := openFrame(frame, binMsgSearchResp)
	if err != nil {
		return err
	}
	r := binReader{buf: payload}
	seg, err := r.varint()
	if err != nil {
		return err
	}
	*out.Segment = int(seg)
	cand, err := r.varint()
	if err != nil {
		return err
	}
	*out.Candidates = int(cand)
	nHits, err := r.uvarint()
	if err != nil {
		return err
	}
	if nHits > uint64(r.remaining()/minWireHit) {
		return fmt.Errorf("hit count %d exceeds payload capacity", nHits)
	}
	out.Hits = out.Hits[:0]
	for i := uint64(0); i < nHits; i++ {
		var h WireHit
		doc, err := r.uvarint()
		if err != nil {
			return err
		}
		if doc > math.MaxUint32 {
			return fmt.Errorf("doc id %d exceeds uint32", doc)
		}
		h.Doc = uint32(doc)
		if h.ID, err = r.str(); err != nil {
			return err
		}
		if h.Score, err = r.f64(); err != nil {
			return err
		}
		out.Hits = append(out.Hits, h)
	}
	return r.done()
}

// --- pooled scratch ---

// maxPooledBuf caps the backing capacity a recycled buffer may retain:
// a pathological response should not pin megabytes in the pool.
const maxPooledBuf = 1 << 20

// bufPool recycles frame encode/decode byte buffers. One scatter round
// borrows a request buffer per hop on the client, and a request-read
// plus response-encode buffer per query on the server — steady state
// allocates nothing for framing.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// readerPool recycles the bytes.Reader each client hop wraps its
// request body in.
var readerPool = sync.Pool{New: func() any { return bytes.NewReader(nil) }}

// wireHitPool recycles the hit slices binary response decoding fills;
// the merge tier returns them once hits are converted to search.Hits.
var wireHitPool = sync.Pool{New: func() any {
	h := make([]WireHit, 0, 64)
	return &h
}}

func getWireHits() []WireHit {
	return (*wireHitPool.Get().(*[]WireHit))[:0]
}

// recycleWireHits returns a decoded hit slice to the pool. Safe on
// JSON-decoded (non-pooled) slices too — any capacity re-enters the
// pool. Slices grown by an unbounded (k <= 0) candidate dump are
// dropped instead of pinning their worst case forever.
func recycleWireHits(hits []WireHit) {
	if cap(hits) == 0 || cap(hits) > 1<<15 {
		return
	}
	h := hits[:0]
	wireHitPool.Put(&h)
}
