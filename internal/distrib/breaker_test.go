package distrib

import (
	"sync"
	"testing"
	"time"
)

// manualClock is a trivial settable clock for breaker unit tests (the
// chaostest package has the full fake; importing it here would cycle).
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (m *manualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

func (m *manualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	return ch // never fires; breaker tests only use Now
}

func (m *manualClock) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.mu.Unlock()
}

func TestBreakerTripAndCooldownRecovery(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	br := newBreaker(clk, 3, time.Second)
	for i := 0; i < 2; i++ {
		if !br.allow() {
			t.Fatalf("closed breaker denied launch %d", i)
		}
		br.onFailure()
	}
	if got := br.state(); got != BreakerClosed {
		t.Fatalf("state after 2 failures = %s, want closed", got)
	}
	br.onFailure() // third consecutive failure trips
	if got := br.state(); got != BreakerOpen {
		t.Fatalf("state after 3 failures = %s, want open", got)
	}
	if br.tripCount() != 1 {
		t.Fatalf("trips = %d, want 1", br.tripCount())
	}
	if br.allow() {
		t.Fatal("open breaker admitted a launch before cooldown")
	}
	// Cooldown elapsing arms exactly one probation trial.
	clk.Advance(time.Second)
	if !br.allow() {
		t.Fatal("cooldown elapsed but trial denied")
	}
	if got := br.state(); got != BreakerHalfOpen {
		t.Fatalf("state during trial = %s, want half_open", got)
	}
	if br.allow() {
		t.Fatal("second trial admitted while first in flight")
	}
	// Trial failure re-opens and restarts the cooldown.
	br.onFailure()
	if got := br.state(); got != BreakerOpen {
		t.Fatalf("state after failed trial = %s, want open", got)
	}
	if br.allow() {
		t.Fatal("re-opened breaker admitted without a new cooldown")
	}
	clk.Advance(time.Second)
	if !br.allow() {
		t.Fatal("second cooldown elapsed but trial denied")
	}
	br.onSuccess()
	if got := br.state(); got != BreakerClosed {
		t.Fatalf("state after successful trial = %s, want closed", got)
	}
	if !br.allow() {
		t.Fatal("closed breaker denied launch after recovery")
	}
}

func TestBreakerProbeArmsProbation(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	br := newBreaker(clk, 1, time.Hour)
	br.onFailure()
	if got := br.state(); got != BreakerOpen {
		t.Fatalf("state = %s, want open", got)
	}
	if br.allow() {
		t.Fatal("open breaker admitted with cooldown pending")
	}
	// A successful probe short-circuits the cooldown.
	br.onProbeSuccess()
	if got := br.state(); got != BreakerHalfOpen {
		t.Fatalf("state after probe = %s, want half_open", got)
	}
	if !br.allow() {
		t.Fatal("probe-armed trial denied")
	}
	// A cancelled trial releases the slot without judging the backend.
	br.onCanceled()
	if got := br.state(); got != BreakerHalfOpen {
		t.Fatalf("state after cancelled trial = %s, want half_open", got)
	}
	if !br.allow() {
		t.Fatal("trial slot not released after cancellation")
	}
	br.onSuccess()
	if got := br.state(); got != BreakerClosed {
		t.Fatalf("state = %s, want closed", got)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	br := newBreaker(&manualClock{}, 3, time.Second)
	br.onFailure()
	br.onFailure()
	br.onSuccess() // streak resets
	br.onFailure()
	br.onFailure()
	if got := br.state(); got != BreakerClosed {
		t.Fatalf("flapping replica tripped breaker: %s", got)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var br *breaker
	if !br.allow() {
		t.Fatal("nil breaker denied launch")
	}
	br.onSuccess()
	br.onFailure()
	br.onCanceled()
	br.onProbeSuccess()
	if got := br.state(); got != BreakerClosed {
		t.Fatalf("nil breaker state = %s", got)
	}
	if br.tripCount() != 0 {
		t.Fatal("nil breaker has trips")
	}
	if newBreaker(nil, 0, time.Second) != nil {
		t.Fatal("threshold 0 should disable the breaker")
	}
}

func TestRetryBudgetBoundsAmplification(t *testing.T) {
	rb := newRetryBudget(0.1, 2)
	// The burst is spendable immediately...
	if !rb.take() || !rb.take() {
		t.Fatal("initial burst not grantable")
	}
	// ...then an empty bucket denies, typed in the stats.
	if rb.take() {
		t.Fatal("empty budget granted a retry")
	}
	// Ten primaries earn exactly one retry token.
	for i := 0; i < 10; i++ {
		rb.earn()
	}
	if !rb.take() {
		t.Fatal("earned token not grantable")
	}
	if rb.take() {
		t.Fatal("budget granted beyond earnings")
	}
	s := rb.stats()
	if s.Taken != 3 || s.Denied != 2 {
		t.Fatalf("taken=%d denied=%d, want 3/2", s.Taken, s.Denied)
	}
	// Earnings cap at the burst.
	for i := 0; i < 1000; i++ {
		rb.earn()
	}
	if got := rb.stats().Tokens; got != 2 {
		t.Fatalf("tokens = %v, want capped at 2", got)
	}
}

func TestRetryBudgetUnlimitedAndNil(t *testing.T) {
	rb := newRetryBudget(0, 64)
	for i := 0; i < 100; i++ {
		if !rb.take() {
			t.Fatal("unlimited budget denied")
		}
	}
	if s := rb.stats(); !s.Unlimited || s.Taken != 100 || s.Denied != 0 {
		t.Fatalf("unlimited stats: %+v", s)
	}
	var nilRB *retryBudget
	nilRB.earn()
	if !nilRB.take() {
		t.Fatal("nil budget denied")
	}
	if !nilRB.stats().Unlimited {
		t.Fatal("nil budget stats not marked unlimited")
	}
}
