package distrib

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/search"
)

// startReplicated hosts a sharded build as groups×replicas httptest
// segment servers: ordinals are split round-robin over the groups, and
// every replica of a group hosts the group's full ordinal set. Returns
// the descriptor and the per-group address matrix.
func startReplicated(t testing.TB, sh *index.Sharded, groups, replicas int) (*TopologyDesc, [][]string) {
	t.Helper()
	desc := &TopologyDesc{Version: TopologyVersion}
	matrix := make([][]string, groups)
	for g := 0; g < groups; g++ {
		var hosted []int
		for ord := 0; ord < sh.NumSegments(); ord++ {
			if ord%groups == g {
				hosted = append(hosted, ord)
			}
		}
		var addrs []string
		for r := 0; r < replicas; r++ {
			srv, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: hosted})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			addrs = append(addrs, ts.URL)
		}
		matrix[g] = addrs
		desc.Groups = append(desc.Groups, TopologyGroup{Replicas: append([]string(nil), addrs...)})
	}
	return desc, matrix
}

func TestParseTopology(t *testing.T) {
	good := []byte(`{"version":1,"groups":[
		{"segments":[1,0],"replicas":["http://a:1/","http://b:1"]},
		{"replicas":["http://c:1"]}]}`)
	desc, err := ParseTopology(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(desc.Groups))
	}
	// Normalization: trailing slash trimmed, declared segments sorted.
	if desc.Groups[0].Replicas[0] != "http://a:1" {
		t.Errorf("addr not normalized: %q", desc.Groups[0].Replicas[0])
	}
	if !reflect.DeepEqual(desc.Groups[0].Segments, []int{0, 1}) {
		t.Errorf("segments not sorted: %v", desc.Groups[0].Segments)
	}
	// Version omitted is an alias for 1.
	if d, err := ParseTopology([]byte(`{"groups":[{"replicas":["http://a:1"]}]}`)); err != nil {
		t.Errorf("version-0 descriptor rejected: %v", err)
	} else if d.Version != TopologyVersion {
		t.Errorf("version not normalized: %d", d.Version)
	}

	syntax := map[string]string{
		"not json":      `{"groups":`,
		"trailing data": `{"groups":[{"replicas":["http://a:1"]}]} extra`,
		"unknown field": `{"groups":[{"replicas":["http://a:1"]}],"extra":1}`,
		"wrong type":    `{"groups":"http://a:1"}`,
	}
	for name, doc := range syntax {
		if _, err := ParseTopology([]byte(doc)); !errors.Is(err, ErrTopologySyntax) {
			t.Errorf("%s: err = %v, want ErrTopologySyntax", name, err)
		}
	}

	invalid := map[string]string{
		"bad version":      `{"version":7,"groups":[{"replicas":["http://a:1"]}]}`,
		"no groups":        `{"version":1,"groups":[]}`,
		"empty replicas":   `{"groups":[{"replicas":[]}]}`,
		"empty addr":       `{"groups":[{"replicas":["  "]}]}`,
		"no scheme":        `{"groups":[{"replicas":["a:1"]}]}`,
		"dup addr":         `{"groups":[{"replicas":["http://a:1"]},{"replicas":["http://a:1/"]}]}`,
		"negative ordinal": `{"groups":[{"segments":[-1],"replicas":["http://a:1"]}]}`,
		"dup ordinal":      `{"groups":[{"segments":[0],"replicas":["http://a:1"]},{"segments":[0],"replicas":["http://b:1"]}]}`,
	}
	for name, doc := range invalid {
		if _, err := ParseTopology([]byte(doc)); !errors.Is(err, ErrTopologyInvalid) {
			t.Errorf("%s: err = %v, want ErrTopologyInvalid", name, err)
		}
	}
}

func TestParseAddrGroups(t *testing.T) {
	desc, err := ParseAddrGroups("http://a:1|http://a2:1, http://b:1")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"http://a:1", "http://a2:1"}, {"http://b:1"}}
	for g, reps := range want {
		if !reflect.DeepEqual(desc.Groups[g].Replicas, reps) {
			t.Errorf("group %d = %v, want %v", g, desc.Groups[g].Replicas, reps)
		}
	}
	if _, err := ParseAddrGroups(""); !errors.Is(err, ErrTopologyInvalid) {
		t.Errorf("empty list: err = %v, want ErrTopologyInvalid", err)
	}
	if _, err := ParseAddrGroups("http://a:1|http://a:1"); !errors.Is(err, ErrTopologyInvalid) {
		t.Errorf("dup replica: err = %v, want ErrTopologyInvalid", err)
	}
}

// TestReplicatedParity: a 2-way replicated topology returns rankings
// bit-identical to the in-process sharded oracle, and the view reports
// every replica.
func TestReplicatedParity(t *testing.T) {
	single, sh := buildCorpus(t, 41, 120, 4)
	desc, _ := startReplicated(t, sh, 2, 2)
	c, err := ConnectTopology(context.Background(), desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	eng := c.NewEngine(nil, 4)
	oracle := search.NewEngine(single, nil)
	for _, qt := range queriesFor(17, 10) {
		opts := search.Options{K: 10, Scorer: search.BM25{}}
		got, gerr := eng.Search(eng.ParseText(qt), opts)
		want, werr := oracle.Search(oracle.ParseText(qt), opts)
		if gerr != nil || werr != nil {
			t.Fatalf("q=%q: %v / %v", qt, gerr, werr)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("q=%q: %d hits vs oracle %d", qt, len(got.Hits), len(want.Hits))
		}
		for i := range got.Hits {
			if got.Hits[i].ID != want.Hits[i].ID || got.Hits[i].Score != want.Hits[i].Score {
				t.Fatalf("q=%q rank %d: %+v vs oracle %+v", qt, i, got.Hits[i], want.Hits[i])
			}
		}
	}
	view := c.Topology()
	if len(view.Groups) != 2 || len(view.Groups[0].Replicas) != 2 {
		t.Fatalf("view = %+v, want 2 groups × 2 replicas", view)
	}
	for _, g := range view.Groups {
		if len(g.Segments) != 2 {
			t.Errorf("group hosts %v, want 2 ordinals", g.Segments)
		}
		for _, r := range g.Replicas {
			if !r.Healthy {
				t.Errorf("replica %s unhealthy after clean queries", r.Addr)
			}
		}
	}
}

// TestConnectReplicaCoherence: a group whose twins host different
// ordinal sets, or whose declared segments disagree with what the
// replicas report, is rejected at connect.
func TestConnectReplicaCoherence(t *testing.T) {
	_, sh := buildCorpus(t, 42, 80, 4)
	mk := func(hosted []int) string {
		srv, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: hosted})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts.URL
	}
	// Twins hosting different ordinals.
	desc := &TopologyDesc{Groups: []TopologyGroup{
		{Replicas: []string{mk([]int{0, 1}), mk([]int{0, 2})}},
		{Replicas: []string{mk([]int{2, 3})}},
	}}
	if _, err := ConnectTopology(context.Background(), desc); err == nil ||
		!strings.Contains(err.Error(), "group twin") {
		t.Errorf("incoherent group: err = %v, want group-twin mismatch", err)
	}
	// Declared segments contradicting the replicas' reports.
	desc = &TopologyDesc{Groups: []TopologyGroup{
		{Segments: []int{0, 1}, Replicas: []string{mk([]int{0, 1})}},
		{Segments: []int{2}, Replicas: []string{mk([]int{2, 3})}},
	}}
	if err := validateTopology(desc); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectTopology(context.Background(), desc); !errors.Is(err, ErrTopologyMismatch) {
		t.Errorf("declared/discovered conflict: err = %v, want ErrTopologyMismatch", err)
	}
}

// TestTopologyReload: a reload atomically swaps a replica in, keeps
// telemetry for surviving backends, and rejects — without touching the
// running table — descriptors whose backends are unreachable or serve
// a different collection.
func TestTopologyReload(t *testing.T) {
	_, sh := buildCorpus(t, 43, 120, 4)
	desc, matrix := startReplicated(t, sh, 2, 2)
	c, err := ConnectTopology(context.Background(), desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	eng := c.NewEngine(nil, 4)
	query := func() {
		t.Helper()
		if _, err := eng.Search(eng.ParseText("goal match"), search.Options{K: 5, Scorer: search.BM25{}}); err != nil {
			t.Fatalf("search: %v", err)
		}
	}
	query()

	// A fresh replica for group 0 joins; one old twin leaves.
	srv, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	fresh := httptest.NewServer(srv.Handler())
	defer fresh.Close()
	next := &TopologyDesc{Groups: []TopologyGroup{
		{Replicas: []string{matrix[0][0], fresh.URL}},
		{Replicas: append([]string(nil), matrix[1]...)},
	}}
	if err := c.Reload(context.Background(), next); err != nil {
		t.Fatalf("reload: %v", err)
	}
	query()
	after := c.Backends()
	found := false
	for _, a := range after {
		if a == fresh.URL {
			found = true
		}
	}
	if !found {
		t.Fatalf("backends after reload %v missing %s", after, fresh.URL)
	}
	if v := c.Topology(); v.Reloads != 1 || v.ReloadErrors != 0 {
		t.Fatalf("reload counters = %d/%d, want 1/0", v.Reloads, v.ReloadErrors)
	}

	// Unreachable replica: rejected wholesale, table unchanged.
	bad := &TopologyDesc{Groups: []TopologyGroup{
		{Replicas: []string{matrix[0][0], "http://127.0.0.1:1"}},
		{Replicas: append([]string(nil), matrix[1]...)},
	}}
	var be *BackendError
	if err := c.Reload(context.Background(), bad); !errors.As(err, &be) {
		t.Fatalf("unreachable reload: err = %v, want *BackendError", err)
	}
	if !reflect.DeepEqual(c.Backends(), after) {
		t.Fatal("rejected reload mutated the routing table")
	}
	query()

	// A replica built from a different corpus: typed mismatch, no swap.
	_, alien := buildCorpus(t, 999, 120, 4)
	asrv, err := NewSegmentServer(ServerConfig{Sharded: alien, Hosted: []int{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	ats := httptest.NewServer(asrv.Handler())
	defer ats.Close()
	if err := c.ApplyTopology(context.Background(),
		[]byte(fmt.Sprintf(`{"groups":[{"replicas":[%q]}]}`, ats.URL))); !errors.Is(err, ErrTopologyMismatch) {
		t.Fatalf("alien reload: err = %v, want ErrTopologyMismatch", err)
	}
	if !reflect.DeepEqual(c.Backends(), after) {
		t.Fatal("mismatched reload mutated the routing table")
	}
	if err := c.ApplyTopology(context.Background(), []byte(`{"groups":`)); !errors.Is(err, ErrTopologySyntax) {
		t.Fatalf("garbage descriptor: err = %v, want ErrTopologySyntax", err)
	}
	if v := c.Topology(); v.Reloads != 1 || v.ReloadErrors != 3 {
		t.Fatalf("reload counters = %d/%d, want 1/3", v.Reloads, v.ReloadErrors)
	}
	query()
}

// TestWatchTopologyFile: touching the descriptor file hot-reloads it;
// a broken edit is rejected and the previous topology keeps serving.
func TestWatchTopologyFile(t *testing.T) {
	_, sh := buildCorpus(t, 44, 80, 2)
	desc, matrix := startReplicated(t, sh, 2, 1)
	c, err := ConnectTopology(context.Background(), desc)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	path := filepath.Join(t.TempDir(), "topo.json")
	write := func(doc string) {
		t.Helper()
		// Write-and-rename so the watcher never reads a half-written file,
		// and bump mtime explicitly: coarse filesystem clocks plus a
		// same-size body can otherwise make the edit invisible.
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
		future := time.Now().Add(time.Duration(len(doc)) * time.Second)
		if err := os.Chtimes(path, future, future); err != nil {
			t.Fatal(err)
		}
	}
	write(fmt.Sprintf(`{"groups":[{"replicas":[%q]},{"replicas":[%q]}]}`, matrix[0][0], matrix[1][0]))
	stop := c.WatchTopologyFile(path, time.Millisecond, t.Logf)
	defer stop()

	// Twin joins group 0 via the file.
	srv, err := NewSegmentServer(ServerConfig{Sharded: sh, Hosted: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	twin := httptest.NewServer(srv.Handler())
	defer twin.Close()
	write(fmt.Sprintf(`{"groups":[{"replicas":[%q,%q]},{"replicas":[%q]}]}`,
		matrix[0][0], twin.URL, matrix[1][0]))
	deadline := time.Now().Add(5 * time.Second)
	for c.Topology().Reloads == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never applied the updated descriptor")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(c.Backends()); got != 3 {
		t.Fatalf("backends after watch reload = %d, want 3", got)
	}

	// A broken edit is rejected; the applied topology stays.
	write(`{"groups":[]}`)
	for c.Topology().ReloadErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never rejected the broken descriptor")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(c.Backends()); got != 3 {
		t.Fatalf("broken descriptor changed the topology (backends = %d)", got)
	}
}
