package distrib

import (
	"fmt"

	"repro/internal/search"
)

// Scorer wire names (the scorers' own Name() strings).
const (
	scorerBM25      = "bm25"
	scorerTFIDF     = "tfidf"
	scorerDirichlet = "dirichlet-lm"
)

// SpecForScorer renders a scorer into its wire form. Only the built-in
// scorer families cross the process boundary; any other Scorer
// implementation is rejected, because silently substituting a default
// on the far side would corrupt rankings without an error.
func SpecForScorer(s search.Scorer) (ScorerSpec, error) {
	switch sc := s.(type) {
	case search.BM25:
		return ScorerSpec{Name: scorerBM25, K1: sc.K1, B: sc.B}, nil
	case search.TFIDF:
		return ScorerSpec{Name: scorerTFIDF}, nil
	case search.DirichletLM:
		return ScorerSpec{Name: scorerDirichlet, Mu: sc.Mu}, nil
	case nil:
		return ScorerSpec{}, fmt.Errorf("distrib: nil scorer")
	}
	return ScorerSpec{}, fmt.Errorf("distrib: scorer %T is not serialisable over the segment RPC", s)
}

// Scorer reconstructs the scorer a spec names. Zero-valued parameters
// select each scorer's own defaults, exactly as in-process.
func (sp ScorerSpec) Scorer() (search.Scorer, error) {
	switch sp.Name {
	case scorerBM25:
		return search.BM25{K1: sp.K1, B: sp.B}, nil
	case scorerTFIDF:
		return search.TFIDF{}, nil
	case scorerDirichlet:
		return search.DirichletLM{Mu: sp.Mu}, nil
	}
	return nil, fmt.Errorf("distrib: unknown scorer %q", sp.Name)
}
