package search

import "repro/internal/index"

// scoreIndexSegmentMapOracle is the pre-kernel scoring implementation,
// kept verbatim as the reference oracle: a map accumulator with
// per-posting interface dispatch into the Scorer. The dense pooled
// kernel must stay bit-identical to this function — same hit IDs, same
// scores, same candidate counts — across every scorer, K, seed,
// segment count and filter the parity suite throws at it. Do not
// "improve" this function; its naivety is the point.
func scoreIndexSegmentMapOracle(seg *index.Index, globalID func(index.DocID) index.DocID,
	q Query, stats []TermStats, scorer Scorer, filter func(string) bool, k int) SegmentResult {
	acc := make(map[index.DocID]float64)
	for ti, t := range q.Terms {
		if stats[ti].DF == 0 || t.Weight == 0 {
			continue
		}
		it := seg.Postings(q.Field, t.Term)
		for it.Next() {
			doc := it.Doc()
			acc[doc] += scorer.TermScore(stats[ti], it.TF(), seg.DocLen(q.Field, doc))
		}
	}
	if k <= 0 {
		k = len(acc)
		if k == 0 {
			k = 1
		}
	}
	sumW := q.SumWeights()
	top := NewTopK(k)
	candidates := 0
	for doc, score := range acc {
		id := seg.ExternalID(doc)
		if filter != nil && !filter(id) {
			continue
		}
		candidates++
		score += scorer.DocScore(sumW, seg.DocLen(q.Field, doc))
		top.Offer(Hit{Doc: globalID(doc), ID: id, Score: score})
	}
	return SegmentResult{Hits: top.Ranked(), Candidates: candidates}
}

// globalStatsFor assembles the collection-wide TermStats the engine
// would compute for q over stats (a StatsView), exactly as
// Engine.Search does.
func globalStatsFor(q Query, sv StatsView) []TermStats {
	n := sv.NumDocs()
	avgdl := sv.AvgDocLen(q.Field)
	totalLen := sv.TotalFieldLen(q.Field)
	stats := make([]TermStats, len(q.Terms))
	for i, t := range q.Terms {
		stats[i] = TermStats{
			N: n, AvgDocLen: avgdl, TotalLen: totalLen,
			DF: sv.DocFreq(q.Field, t.Term), CF: sv.CollectionFreq(q.Field, t.Term),
			Weight: t.Weight,
		}
	}
	return stats
}
