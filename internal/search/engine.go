package search

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/overload"
	"repro/internal/text"
	"repro/internal/trace"
)

// WeightedTerm is an analyzed query term with a query-side weight.
// Plain user terms carry weight 1; relevance-feedback expansion terms
// carry fractional weights.
type WeightedTerm struct {
	Term   string
	Weight float64
}

// Query is a fully analysed, executable query against one field.
type Query struct {
	Field index.Field
	Terms []WeightedTerm
}

// SumWeights returns the total query weight (the LM doc-score mass).
func (q Query) SumWeights() float64 {
	var s float64
	for _, t := range q.Terms {
		s += t.Weight
	}
	return s
}

// Hit is one retrieved document.
type Hit struct {
	Doc index.DocID
	// ID is the external (shot) identifier.
	ID    string
	Score float64
}

// Results is a ranked result list.
type Results struct {
	Hits []Hit
	// Candidates is the number of documents that matched at least one
	// query term (before top-k truncation).
	Candidates int
	// Partial marks a degraded-mode ranking: one or more segments
	// failed (or ran out of deadline budget) and the list merges only
	// the segments that answered. Never set unless the engine was
	// explicitly put in degraded mode (SetAllowPartial); partiality is
	// always flagged, never silent.
	Partial bool
	// FailedSegments lists the ordinals missing from a Partial
	// ranking, lowest first (empty when Partial is false).
	FailedSegments []int
}

// IDs returns the hit IDs in rank order.
func (r Results) IDs() []string {
	out := make([]string, len(r.Hits))
	for i, h := range r.Hits {
		out[i] = h.ID
	}
	return out
}

// Options configures one search call.
type Options struct {
	// K bounds the result list; zero selects DefaultK.
	K int
	// Scorer defaults to BM25{}.
	Scorer Scorer
	// Filter, when non-nil, drops documents for which it returns false
	// before ranking (used e.g. to exclude already-seen shots). On a
	// multi-segment engine the filter is called from several worker
	// goroutines at once, so it must be safe for concurrent use (pure
	// functions over immutable data, like the core package's metadata
	// filters, are).
	Filter func(id string) bool
}

// DefaultK is the default result-list depth, sized to a result page of
// keyframes in the desktop interface.
const DefaultK = 100

// SegmentObserver receives per-segment execution telemetry: the
// segment ordinal, how many candidate documents it contributed, and
// how long scoring it took. Implementations must be safe for
// concurrent use — segments report from worker goroutines.
type SegmentObserver func(segment, candidates int, d time.Duration)

// StatsView is the collection-wide statistics surface shared by a
// monolithic *index.Index, an *index.Sharded, and a distributed
// merge tier aggregating remote segments. Scoring always uses these
// global statistics — never per-segment ones — which is what makes
// any segmented execution return bit-identical scores to a
// single-index scan.
type StatsView interface {
	NumDocs() int
	AvgDocLen(index.Field) float64
	TotalFieldLen(index.Field) int64
	DocFreq(index.Field, string) int
	CollectionFreq(index.Field, string) int64
	DocIDOf(string) (index.DocID, bool)
}

// Engine executes queries against a set of segments — a single local
// index, a sharded index fanned out over a worker pool, or remote
// segment servers behind a scatter/gather merge tier. It is safe for
// concurrent use; all state is read-only after construction.
type Engine struct {
	segs     []SegmentSearcher
	single   *index.Index   // non-nil when wrapping exactly one local Index
	sharded  *index.Sharded // non-nil when wrapping a local sharded index
	stats    StatsView
	analyzer *text.Analyzer
	workers  int
	obs      SegmentObserver
	// allowPartial switches the merge into degraded mode: segment
	// failures are tolerated as long as at least one segment answers,
	// and the merged ranking is flagged Results.Partial.
	allowPartial bool
}

// NewEngine wraps a single index with the analysis pipeline used at
// query time. analyzer may be nil, selecting the default pipeline; it
// must match the pipeline used at indexing time for text retrieval to
// work.
func NewEngine(ix *index.Index, analyzer *text.Analyzer) *Engine {
	if analyzer == nil {
		analyzer = text.NewAnalyzer()
	}
	return &Engine{
		segs:     []SegmentSearcher{localSegment{seg: ix, ordinal: 0, stride: 1}},
		single:   ix,
		stats:    ix,
		analyzer: analyzer,
		workers:  1,
	}
}

// NewShardedEngine wraps a sharded index. Queries score every segment
// on a pool of `workers` goroutines (0 selects GOMAXPROCS) and merge
// the per-segment top-k lists; ranking output is identical to a
// single-index engine over the same document stream.
func NewShardedEngine(sh *index.Sharded, analyzer *text.Analyzer, workers int) *Engine {
	segs := make([]SegmentSearcher, sh.NumSegments())
	for i := range segs {
		segs[i] = localSegment{seg: sh.Segment(i), ordinal: i, stride: sh.NumSegments()}
	}
	e := NewSegmentsEngine(sh, segs, analyzer, workers)
	e.sharded = sh
	return e
}

// NewSegmentsEngine assembles an engine over arbitrary segments — the
// constructor the distributed merge tier uses to put remote segment
// servers behind the same scatter/gather executor and TopK merge as
// the in-process fan-out. stats must aggregate collection-wide
// statistics over exactly the documents the segments hold; workers
// bounds the fan-out pool (0 selects GOMAXPROCS).
func NewSegmentsEngine(stats StatsView, segs []SegmentSearcher, analyzer *text.Analyzer, workers int) *Engine {
	if analyzer == nil {
		analyzer = text.NewAnalyzer()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		segs:     segs,
		stats:    stats,
		analyzer: analyzer,
		workers:  workers,
	}
}

// Index exposes the underlying index when the engine wraps exactly one
// (read-only use). Sharded and distributed engines return nil; use
// NumDocs/DocFreq and friends, which aggregate across segments.
func (e *Engine) Index() *index.Index { return e.single }

// Sharded exposes the underlying sharded index (nil for single-index
// and distributed engines).
func (e *Engine) Sharded() *index.Sharded { return e.sharded }

// NumSegments reports how many index segments the engine scores.
func (e *Engine) NumSegments() int { return len(e.segs) }

// SegmentDocs returns the document count of segment i.
func (e *Engine) SegmentDocs(i int) int { return e.segs[i].NumDocs() }

// Workers reports the fan-out worker bound.
func (e *Engine) Workers() int { return e.workers }

// NumDocs returns the collection-wide document count.
func (e *Engine) NumDocs() int { return e.stats.NumDocs() }

// DocFreq returns the collection-wide document frequency of term in
// field f.
func (e *Engine) DocFreq(f index.Field, term string) int { return e.stats.DocFreq(f, term) }

// DocIDOf maps an external identifier to its global DocID.
func (e *Engine) DocIDOf(ext string) (index.DocID, bool) { return e.stats.DocIDOf(ext) }

// SetSegmentObserver installs a telemetry hook invoked once per
// segment per search. Install at wiring time, before the engine serves
// queries; the engine does not synchronise the field itself.
func (e *Engine) SetSegmentObserver(obs SegmentObserver) { e.obs = obs }

// SetAllowPartial switches the engine into degraded mode: when one or
// more segments fail mid-scatter (backend down, deadline spent) but at
// least one answers, the merge returns the answering segments' hits
// flagged Results.Partial instead of failing the whole query. Off by
// default — full-or-error is the contract the parity suites pin — and
// like SetSegmentObserver it must be set at wiring time.
func (e *Engine) SetAllowPartial(ok bool) { e.allowPartial = ok }

// Analyzer exposes the query analysis pipeline.
func (e *Engine) Analyzer() *text.Analyzer { return e.analyzer }

// ParseText analyses free text into a text-field query with unit
// weights. Duplicate terms accumulate weight.
func (e *Engine) ParseText(queryText string) Query {
	counts := e.analyzer.TermCounts(queryText)
	terms := make([]WeightedTerm, 0, len(counts))
	for t, c := range counts {
		terms = append(terms, WeightedTerm{Term: t, Weight: float64(c)})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	return Query{Field: index.FieldText, Terms: terms}
}

// ConceptQuery builds a concept-field query from concept names.
func ConceptQuery(concepts ...string) Query {
	terms := make([]WeightedTerm, 0, len(concepts))
	for _, c := range concepts {
		terms = append(terms, WeightedTerm{Term: c, Weight: 1})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	return Query{Field: index.FieldConcept, Terms: terms}
}

// Search executes q and returns the top-K hits ordered by descending
// score, ties broken by ascending external ID for reproducibility. On
// a multi-segment engine the segments are scored concurrently on the
// worker pool and merged; the ranking is identical to the sequential
// single-index scan because scoring uses collection-wide statistics
// and the rank order is total (score, then ID). A failed segment
// (possible only on remote segments) surfaces as a *SegmentError;
// partial rankings are never returned, because a missing segment's
// documents would silently vanish from the result.
func (e *Engine) Search(q Query, opts Options) (Results, error) {
	return e.SearchContext(context.Background(), q, opts)
}

// SearchContext is Search with a caller context: cancellation reaches
// remote segments, and when ctx carries a trace the query records
// "prepare", per-"segment", and "merge" spans into it. With no trace
// in ctx the span calls are no-op nil-span fast paths, keeping the
// untraced hot path at the PR 5 cost.
func (e *Engine) SearchContext(ctx context.Context, q Query, opts Options) (Results, error) {
	if len(q.Terms) == 0 {
		return Results{}, nil
	}
	// A request whose latency budget is already spent does no segment
	// work at all: answer the typed error immediately.
	if overload.FromContext(ctx).Expired() {
		return Results{}, overload.ErrDeadlineExceeded
	}
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	scorer := opts.Scorer
	if scorer == nil {
		scorer = BM25{}
	}
	for _, t := range q.Terms {
		if t.Weight < 0 {
			return Results{}, fmt.Errorf("search: negative weight %v for term %q", t.Weight, t.Term)
		}
	}

	// Collection-wide statistics, computed once, compiled into the
	// prepared query, and shared by every segment worker.
	_, prep := trace.StartSpan(ctx, "prepare")
	n := e.stats.NumDocs()
	avgdl := e.stats.AvgDocLen(q.Field)
	totalLen := e.stats.TotalFieldLen(q.Field)
	stats := make([]TermStats, len(q.Terms))
	for i, t := range q.Terms {
		stats[i] = TermStats{
			N: n, AvgDocLen: avgdl, TotalLen: totalLen,
			DF: e.stats.DocFreq(q.Field, t.Term), CF: e.stats.CollectionFreq(q.Field, t.Term),
			Weight: t.Weight,
		}
	}
	p := PrepareQuery(q, stats, scorer)
	if prep != nil {
		prep.SetAttr("terms", strconv.Itoa(len(q.Terms)))
		prep.End()
	}

	results := make([]segmentOutcome, len(e.segs))
	if workers := min(e.workers, len(e.segs)); workers <= 1 {
		for i := range e.segs {
			results[i] = e.runSegment(ctx, i, p, opts.Filter, k)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(e.segs) {
						return
					}
					results[i] = e.runSegment(ctx, i, p, opts.Filter, k)
				}
			}()
		}
		wg.Wait()
	}

	// Merge: each segment kept its k best, so the global top-k is in
	// the union; the total (score, ID) order makes the merge
	// order-independent. Surface the lowest-ordinal failure for
	// deterministic error reporting. Per-segment hit lists are dead
	// after the merge, so they go back to the kernel's pool.
	_, mrg := trace.StartSpan(ctx, "merge")
	top := getTopK(k)
	candidates := 0
	succeeded := 0
	for _, r := range results {
		if r.err == nil {
			succeeded++
		}
	}
	var failed []int
	for i, r := range results {
		if r.err != nil {
			// Degraded mode tolerates the failure (flagged below) as
			// long as some segment answers; otherwise fail whole, so a
			// missing segment's documents never vanish silently.
			if e.allowPartial && succeeded > 0 {
				failed = append(failed, i)
				continue
			}
			putTopK(top)
			mrg.End()
			// Recycle the hits of segments that did answer.
			for _, done := range results[i+1:] {
				if done.err == nil {
					RecycleHits(done.res.Hits)
				}
			}
			return Results{}, &SegmentError{Segment: i, Err: r.err}
		}
		candidates += r.res.Candidates
		for _, h := range r.res.Hits {
			top.Offer(h)
		}
		RecycleHits(r.res.Hits)
	}
	hits := top.Ranked()
	putTopK(top)
	if mrg != nil {
		mrg.SetAttr("candidates", strconv.Itoa(candidates))
		if len(failed) > 0 {
			mrg.SetAttr("partial", strconv.Itoa(len(failed)))
		}
		mrg.End()
	}
	return Results{Hits: hits, Candidates: candidates, Partial: len(failed) > 0, FailedSegments: failed}, nil
}

// SearchMultiField runs the same information need against several
// field queries and fuses the ranked lists. A nil fuser selects
// CombSUM with min-max normalisation.
func (e *Engine) SearchMultiField(queries []Query, opts Options, fuser Fuser) (Results, error) {
	if fuser == nil {
		fuser = CombSUM{}
	}
	lists := make([][]Hit, 0, len(queries))
	for _, q := range queries {
		r, err := e.Search(q, opts)
		if err != nil {
			return Results{}, err
		}
		if len(r.Hits) > 0 {
			lists = append(lists, r.Hits)
		}
	}
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	fused := Fuse(fuser, lists, k)
	return Results{Hits: fused, Candidates: len(fused)}, nil
}
