package search

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/text"
)

// WeightedTerm is an analyzed query term with a query-side weight.
// Plain user terms carry weight 1; relevance-feedback expansion terms
// carry fractional weights.
type WeightedTerm struct {
	Term   string
	Weight float64
}

// Query is a fully analysed, executable query against one field.
type Query struct {
	Field index.Field
	Terms []WeightedTerm
}

// SumWeights returns the total query weight (the LM doc-score mass).
func (q Query) SumWeights() float64 {
	var s float64
	for _, t := range q.Terms {
		s += t.Weight
	}
	return s
}

// Hit is one retrieved document.
type Hit struct {
	Doc index.DocID
	// ID is the external (shot) identifier.
	ID    string
	Score float64
}

// Results is a ranked result list.
type Results struct {
	Hits []Hit
	// Candidates is the number of documents that matched at least one
	// query term (before top-k truncation).
	Candidates int
}

// IDs returns the hit IDs in rank order.
func (r Results) IDs() []string {
	out := make([]string, len(r.Hits))
	for i, h := range r.Hits {
		out[i] = h.ID
	}
	return out
}

// Options configures one search call.
type Options struct {
	// K bounds the result list; zero selects DefaultK.
	K int
	// Scorer defaults to BM25{}.
	Scorer Scorer
	// Filter, when non-nil, drops documents for which it returns false
	// before ranking (used e.g. to exclude already-seen shots).
	Filter func(id string) bool
}

// DefaultK is the default result-list depth, sized to a result page of
// keyframes in the desktop interface.
const DefaultK = 100

// Engine executes queries against an index. It is safe for concurrent
// use; all state is read-only.
type Engine struct {
	ix       *index.Index
	analyzer *text.Analyzer
}

// NewEngine wraps an index with the analysis pipeline used at query
// time. analyzer may be nil, selecting the default pipeline; it must
// match the pipeline used at indexing time for text retrieval to work.
func NewEngine(ix *index.Index, analyzer *text.Analyzer) *Engine {
	if analyzer == nil {
		analyzer = text.NewAnalyzer()
	}
	return &Engine{ix: ix, analyzer: analyzer}
}

// Index exposes the underlying index (read-only use).
func (e *Engine) Index() *index.Index { return e.ix }

// Analyzer exposes the query analysis pipeline.
func (e *Engine) Analyzer() *text.Analyzer { return e.analyzer }

// ParseText analyses free text into a text-field query with unit
// weights. Duplicate terms accumulate weight.
func (e *Engine) ParseText(queryText string) Query {
	counts := e.analyzer.TermCounts(queryText)
	terms := make([]WeightedTerm, 0, len(counts))
	for t, c := range counts {
		terms = append(terms, WeightedTerm{Term: t, Weight: float64(c)})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	return Query{Field: index.FieldText, Terms: terms}
}

// ConceptQuery builds a concept-field query from concept names.
func ConceptQuery(concepts ...string) Query {
	terms := make([]WeightedTerm, 0, len(concepts))
	for _, c := range concepts {
		terms = append(terms, WeightedTerm{Term: c, Weight: 1})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	return Query{Field: index.FieldConcept, Terms: terms}
}

// Search executes q and returns the top-K hits ordered by descending
// score, ties broken by ascending external ID for reproducibility.
func (e *Engine) Search(q Query, opts Options) (Results, error) {
	if len(q.Terms) == 0 {
		return Results{}, nil
	}
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	scorer := opts.Scorer
	if scorer == nil {
		scorer = BM25{}
	}
	for _, t := range q.Terms {
		if t.Weight < 0 {
			return Results{}, fmt.Errorf("search: negative weight %v for term %q", t.Weight, t.Term)
		}
	}
	n := e.ix.NumDocs()
	avgdl := e.ix.AvgDocLen(q.Field)
	totalLen := e.ix.TotalFieldLen(q.Field)

	acc := make(map[index.DocID]float64)
	for _, t := range q.Terms {
		df := e.ix.DocFreq(q.Field, t.Term)
		if df == 0 || t.Weight == 0 {
			continue
		}
		st := TermStats{
			N: n, AvgDocLen: avgdl, TotalLen: totalLen,
			DF: df, CF: e.ix.CollectionFreq(q.Field, t.Term),
			Weight: t.Weight,
		}
		it := e.ix.Postings(q.Field, t.Term)
		for it.Next() {
			doc := it.Doc()
			acc[doc] += scorer.TermScore(st, it.TF(), e.ix.DocLen(q.Field, doc))
		}
	}
	sumW := q.SumWeights()
	top := newTopK(k)
	candidates := 0
	for doc, score := range acc {
		id := e.ix.ExternalID(doc)
		if opts.Filter != nil && !opts.Filter(id) {
			continue
		}
		candidates++
		score += scorer.DocScore(sumW, e.ix.DocLen(q.Field, doc))
		top.offer(Hit{Doc: doc, ID: id, Score: score})
	}
	return Results{Hits: top.ranked(), Candidates: candidates}, nil
}

// SearchMultiField runs the same information need against several
// field queries and fuses the ranked lists. A nil fuser selects
// CombSUM with min-max normalisation.
func (e *Engine) SearchMultiField(queries []Query, opts Options, fuser Fuser) (Results, error) {
	if fuser == nil {
		fuser = CombSUM{}
	}
	lists := make([][]Hit, 0, len(queries))
	for _, q := range queries {
		r, err := e.Search(q, opts)
		if err != nil {
			return Results{}, err
		}
		if len(r.Hits) > 0 {
			lists = append(lists, r.Hits)
		}
	}
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	fused := Fuse(fuser, lists, k)
	return Results{Hits: fused, Candidates: len(fused)}, nil
}
