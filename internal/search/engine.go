package search

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/text"
)

// WeightedTerm is an analyzed query term with a query-side weight.
// Plain user terms carry weight 1; relevance-feedback expansion terms
// carry fractional weights.
type WeightedTerm struct {
	Term   string
	Weight float64
}

// Query is a fully analysed, executable query against one field.
type Query struct {
	Field index.Field
	Terms []WeightedTerm
}

// SumWeights returns the total query weight (the LM doc-score mass).
func (q Query) SumWeights() float64 {
	var s float64
	for _, t := range q.Terms {
		s += t.Weight
	}
	return s
}

// Hit is one retrieved document.
type Hit struct {
	Doc index.DocID
	// ID is the external (shot) identifier.
	ID    string
	Score float64
}

// Results is a ranked result list.
type Results struct {
	Hits []Hit
	// Candidates is the number of documents that matched at least one
	// query term (before top-k truncation).
	Candidates int
}

// IDs returns the hit IDs in rank order.
func (r Results) IDs() []string {
	out := make([]string, len(r.Hits))
	for i, h := range r.Hits {
		out[i] = h.ID
	}
	return out
}

// Options configures one search call.
type Options struct {
	// K bounds the result list; zero selects DefaultK.
	K int
	// Scorer defaults to BM25{}.
	Scorer Scorer
	// Filter, when non-nil, drops documents for which it returns false
	// before ranking (used e.g. to exclude already-seen shots). On a
	// multi-segment engine the filter is called from several worker
	// goroutines at once, so it must be safe for concurrent use (pure
	// functions over immutable data, like the core package's metadata
	// filters, are).
	Filter func(id string) bool
}

// DefaultK is the default result-list depth, sized to a result page of
// keyframes in the desktop interface.
const DefaultK = 100

// SegmentObserver receives per-segment execution telemetry: the
// segment ordinal, how many candidate documents it contributed, and
// how long scoring it took. Implementations must be safe for
// concurrent use — segments report from worker goroutines.
type SegmentObserver func(segment, candidates int, d time.Duration)

// statsView is the collection-wide statistics surface shared by a
// monolithic *index.Index and an *index.Sharded. Scoring always uses
// these global statistics — never per-segment ones — which is what
// makes sharded execution return bit-identical scores to a
// single-index scan.
type statsView interface {
	NumDocs() int
	AvgDocLen(index.Field) float64
	TotalFieldLen(index.Field) int64
	DocFreq(index.Field, string) int
	CollectionFreq(index.Field, string) int64
	DocIDOf(string) (index.DocID, bool)
}

// Engine executes queries against an index, either a single segment or
// a sharded index fanned out over a worker pool. It is safe for
// concurrent use; all state is read-only after construction.
type Engine struct {
	segs     []*index.Index
	sharded  *index.Sharded // nil when wrapping a single Index
	stats    statsView
	analyzer *text.Analyzer
	workers  int
	obs      SegmentObserver
}

// NewEngine wraps a single index with the analysis pipeline used at
// query time. analyzer may be nil, selecting the default pipeline; it
// must match the pipeline used at indexing time for text retrieval to
// work.
func NewEngine(ix *index.Index, analyzer *text.Analyzer) *Engine {
	if analyzer == nil {
		analyzer = text.NewAnalyzer()
	}
	return &Engine{
		segs:     []*index.Index{ix},
		stats:    ix,
		analyzer: analyzer,
		workers:  1,
	}
}

// NewShardedEngine wraps a sharded index. Queries score every segment
// on a pool of `workers` goroutines (0 selects GOMAXPROCS) and merge
// the per-segment top-k lists; ranking output is identical to a
// single-index engine over the same document stream.
func NewShardedEngine(sh *index.Sharded, analyzer *text.Analyzer, workers int) *Engine {
	if analyzer == nil {
		analyzer = text.NewAnalyzer()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	segs := make([]*index.Index, sh.NumSegments())
	for i := range segs {
		segs[i] = sh.Segment(i)
	}
	return &Engine{
		segs:     segs,
		sharded:  sh,
		stats:    sh,
		analyzer: analyzer,
		workers:  workers,
	}
}

// Index exposes the underlying index when the engine wraps exactly one
// (read-only use). A sharded engine returns nil; use NumDocs/DocFreq
// and friends, which aggregate across segments.
func (e *Engine) Index() *index.Index {
	if e.sharded != nil {
		return nil
	}
	return e.segs[0]
}

// Sharded exposes the underlying sharded index (nil for a
// single-index engine).
func (e *Engine) Sharded() *index.Sharded { return e.sharded }

// NumSegments reports how many index segments the engine scores.
func (e *Engine) NumSegments() int { return len(e.segs) }

// SegmentDocs returns the document count of segment i.
func (e *Engine) SegmentDocs(i int) int { return e.segs[i].NumDocs() }

// Workers reports the fan-out worker bound.
func (e *Engine) Workers() int { return e.workers }

// NumDocs returns the collection-wide document count.
func (e *Engine) NumDocs() int { return e.stats.NumDocs() }

// DocFreq returns the collection-wide document frequency of term in
// field f.
func (e *Engine) DocFreq(f index.Field, term string) int { return e.stats.DocFreq(f, term) }

// DocIDOf maps an external identifier to its global DocID.
func (e *Engine) DocIDOf(ext string) (index.DocID, bool) { return e.stats.DocIDOf(ext) }

// SetSegmentObserver installs a telemetry hook invoked once per
// segment per search. Install at wiring time, before the engine serves
// queries; the engine does not synchronise the field itself.
func (e *Engine) SetSegmentObserver(obs SegmentObserver) { e.obs = obs }

// Analyzer exposes the query analysis pipeline.
func (e *Engine) Analyzer() *text.Analyzer { return e.analyzer }

// ParseText analyses free text into a text-field query with unit
// weights. Duplicate terms accumulate weight.
func (e *Engine) ParseText(queryText string) Query {
	counts := e.analyzer.TermCounts(queryText)
	terms := make([]WeightedTerm, 0, len(counts))
	for t, c := range counts {
		terms = append(terms, WeightedTerm{Term: t, Weight: float64(c)})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	return Query{Field: index.FieldText, Terms: terms}
}

// ConceptQuery builds a concept-field query from concept names.
func ConceptQuery(concepts ...string) Query {
	terms := make([]WeightedTerm, 0, len(concepts))
	for _, c := range concepts {
		terms = append(terms, WeightedTerm{Term: c, Weight: 1})
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
	return Query{Field: index.FieldConcept, Terms: terms}
}

// globalID converts a segment-local document id to the engine-wide id.
func (e *Engine) globalID(segment int, local index.DocID) index.DocID {
	if e.sharded == nil {
		return local
	}
	return e.sharded.GlobalID(segment, local)
}

// segmentResult is one segment's contribution to a query.
type segmentResult struct {
	hits       []Hit
	candidates int
}

// scoreSegment runs term-at-a-time scoring over one segment using the
// precomputed *global* term statistics, and keeps the segment's local
// top-k. Because every document lives in exactly one segment and term
// contributions accumulate in query-term order exactly as in the
// monolithic scan, per-document scores are bit-identical to the
// sequential path.
func (e *Engine) scoreSegment(segment int, q Query, stats []TermStats, scorer Scorer,
	filter func(string) bool, k int) segmentResult {
	start := time.Now()
	seg := e.segs[segment]
	acc := make(map[index.DocID]float64)
	for ti, t := range q.Terms {
		if stats[ti].DF == 0 || t.Weight == 0 {
			continue
		}
		it := seg.Postings(q.Field, t.Term)
		for it.Next() {
			doc := it.Doc()
			acc[doc] += scorer.TermScore(stats[ti], it.TF(), seg.DocLen(q.Field, doc))
		}
	}
	sumW := q.SumWeights()
	top := NewTopK(k)
	candidates := 0
	for doc, score := range acc {
		id := seg.ExternalID(doc)
		if filter != nil && !filter(id) {
			continue
		}
		candidates++
		score += scorer.DocScore(sumW, seg.DocLen(q.Field, doc))
		top.Offer(Hit{Doc: e.globalID(segment, doc), ID: id, Score: score})
	}
	if e.obs != nil {
		e.obs(segment, candidates, time.Since(start))
	}
	return segmentResult{hits: top.Ranked(), candidates: candidates}
}

// Search executes q and returns the top-K hits ordered by descending
// score, ties broken by ascending external ID for reproducibility. On
// a multi-segment engine the segments are scored concurrently on the
// worker pool and merged; the ranking is identical to the sequential
// single-index scan because scoring uses collection-wide statistics
// and the rank order is total (score, then ID).
func (e *Engine) Search(q Query, opts Options) (Results, error) {
	if len(q.Terms) == 0 {
		return Results{}, nil
	}
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	scorer := opts.Scorer
	if scorer == nil {
		scorer = BM25{}
	}
	for _, t := range q.Terms {
		if t.Weight < 0 {
			return Results{}, fmt.Errorf("search: negative weight %v for term %q", t.Weight, t.Term)
		}
	}

	// Collection-wide statistics, computed once and shared by every
	// segment worker.
	n := e.stats.NumDocs()
	avgdl := e.stats.AvgDocLen(q.Field)
	totalLen := e.stats.TotalFieldLen(q.Field)
	stats := make([]TermStats, len(q.Terms))
	for i, t := range q.Terms {
		stats[i] = TermStats{
			N: n, AvgDocLen: avgdl, TotalLen: totalLen,
			DF: e.stats.DocFreq(q.Field, t.Term), CF: e.stats.CollectionFreq(q.Field, t.Term),
			Weight: t.Weight,
		}
	}

	results := make([]segmentResult, len(e.segs))
	if workers := min(e.workers, len(e.segs)); workers <= 1 {
		for i := range e.segs {
			results[i] = e.scoreSegment(i, q, stats, scorer, opts.Filter, k)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(e.segs) {
						return
					}
					results[i] = e.scoreSegment(i, q, stats, scorer, opts.Filter, k)
				}
			}()
		}
		wg.Wait()
	}

	// Merge: each segment kept its k best, so the global top-k is in
	// the union; the total (score, ID) order makes the merge
	// order-independent.
	top := NewTopK(k)
	candidates := 0
	for _, r := range results {
		candidates += r.candidates
		for _, h := range r.hits {
			top.Offer(h)
		}
	}
	return Results{Hits: top.Ranked(), Candidates: candidates}, nil
}

// SearchMultiField runs the same information need against several
// field queries and fuses the ranked lists. A nil fuser selects
// CombSUM with min-max normalisation.
func (e *Engine) SearchMultiField(queries []Query, opts Options, fuser Fuser) (Results, error) {
	if fuser == nil {
		fuser = CombSUM{}
	}
	lists := make([][]Hit, 0, len(queries))
	for _, q := range queries {
		r, err := e.Search(q, opts)
		if err != nil {
			return Results{}, err
		}
		if len(r.Hits) > 0 {
			lists = append(lists, r.Hits)
		}
	}
	k := opts.K
	if k <= 0 {
		k = DefaultK
	}
	fused := Fuse(fuser, lists, k)
	return Results{Hits: fused, Candidates: len(fused)}, nil
}
