package search

import "sort"

// Fuser combines multiple ranked lists over the same document space
// into one. Implementations must be deterministic.
type Fuser interface {
	Name() string
	// fuse maps each document ID to its combined score given its
	// per-list normalised scores and ranks.
	fuse(entries map[string][]fuseEntry) map[string]float64
}

// fuseEntry is one document's appearance in one input list.
type fuseEntry struct {
	// score is min-max normalised within its list to [0,1].
	score float64
	// rank is the zero-based position in its list.
	rank int
}

// Fuse combines ranked lists with the given fuser and returns the top
// k fused hits (score-descending, ID ties ascending). Input lists are
// not modified. Lists may have different lengths; empty lists are
// ignored.
func Fuse(f Fuser, lists [][]Hit, k int) []Hit {
	entries := make(map[string][]fuseEntry)
	for _, list := range lists {
		if len(list) == 0 {
			continue
		}
		lo, hi := list[len(list)-1].Score, list[0].Score
		span := hi - lo
		for rank, h := range list {
			norm := 1.0
			if span > 0 {
				norm = (h.Score - lo) / span
			}
			entries[h.ID] = append(entries[h.ID], fuseEntry{score: norm, rank: rank})
		}
	}
	scores := f.fuse(entries)
	top := NewTopK(k)
	for id, s := range scores {
		top.Offer(Hit{ID: id, Score: s})
	}
	return top.Ranked()
}

// CombSUM sums normalised scores across lists.
type CombSUM struct{}

// Name implements Fuser.
func (CombSUM) Name() string { return "combsum" }

func (CombSUM) fuse(entries map[string][]fuseEntry) map[string]float64 {
	out := make(map[string]float64, len(entries))
	for id, es := range entries {
		var s float64
		for _, e := range es {
			s += e.score
		}
		out[id] = s
	}
	return out
}

// CombMNZ multiplies the CombSUM score by the number of lists the
// document appears in, rewarding multi-evidence agreement.
type CombMNZ struct{}

// Name implements Fuser.
func (CombMNZ) Name() string { return "combmnz" }

func (CombMNZ) fuse(entries map[string][]fuseEntry) map[string]float64 {
	out := make(map[string]float64, len(entries))
	for id, es := range entries {
		var s float64
		for _, e := range es {
			s += e.score
		}
		out[id] = s * float64(len(es))
	}
	return out
}

// Borda assigns each document max(0, L-rank) points per list of
// nominal length L (the longest input list).
type Borda struct{}

// Name implements Fuser.
func (Borda) Name() string { return "borda" }

func (Borda) fuse(entries map[string][]fuseEntry) map[string]float64 {
	maxLen := 0
	for _, es := range entries {
		for _, e := range es {
			if e.rank+1 > maxLen {
				maxLen = e.rank + 1
			}
		}
	}
	out := make(map[string]float64, len(entries))
	for id, es := range entries {
		var s float64
		for _, e := range es {
			s += float64(maxLen - e.rank)
		}
		out[id] = s
	}
	return out
}

// RRF is reciprocal rank fusion: sum of 1/(K+rank+1) with the standard
// K=60 damping.
type RRF struct {
	// K is the damping constant; zero selects 60.
	K float64
}

// Name implements Fuser.
func (RRF) Name() string { return "rrf" }

func (r RRF) fuse(entries map[string][]fuseEntry) map[string]float64 {
	k := r.K
	if k == 0 {
		k = 60
	}
	out := make(map[string]float64, len(entries))
	for id, es := range entries {
		var s float64
		for _, e := range es {
			s += 1 / (k + float64(e.rank) + 1)
		}
		out[id] = s
	}
	return out
}

// WeightedHits scales a hit list's scores by w, returning a new list;
// used to weight evidence sources before CombSUM fusion.
func WeightedHits(hits []Hit, w float64) []Hit {
	out := make([]Hit, len(hits))
	for i, h := range hits {
		h.Score *= w
		out[i] = h
	}
	return out
}

// Rescore adds boost(id)*alpha to each hit's score and re-sorts,
// returning a new list. It is the primitive the profile re-ranker is
// built from.
func Rescore(hits []Hit, alpha float64, boost func(id string) float64) []Hit {
	out := make([]Hit, len(hits))
	copy(out, hits)
	for i := range out {
		out[i].Score += alpha * boost(out[i].ID)
	}
	sort.Slice(out, func(i, j int) bool { return hitLess(out[i], out[j]) })
	return out
}
