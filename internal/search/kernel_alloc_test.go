package search

import (
	"testing"

	"repro/internal/index"
	"repro/internal/text"
)

// Steady-state allocation budgets for the dense kernel. The kernel's
// pooled state (accumulator, top-k heap, hit slice) makes a warm
// segment scan nearly allocation-free; these pins keep it that way.
//
// kernelScanAllocBudget bounds one warm PrepareQuery + ScoreSegment
// pass (the per-segment unit of work): the prepared query itself (two
// allocations: header + compiled term slice) plus slack of one for
// runtime noise. engineSearchAllocBudget bounds a full warm
// Engine.Search over a 4-segment sharded index — parse, stats, compile,
// fan-out, merge — and exists so regressions anywhere on the query path
// (not just inside the kernel) fail a tier-1 test instead of surfacing
// three PRs later in a benchmark trajectory.
const (
	kernelScanAllocBudget   = 8
	engineSearchAllocBudget = 60
)

// TestKernelAllocBudget pins the steady-state allocation count of the
// dense kernel under testing.AllocsPerRun. Skipped under -race (the
// instrumentation defeats escape analysis) — CI runs the test suite
// both ways, so the budget is still enforced on every push.
func TestKernelAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	single, _ := buildCorpus(t, 2008, 200, 1)
	eng := NewEngine(single, text.NewAnalyzer())
	q := eng.ParseText("goal storm vote election")
	stats := globalStatsFor(q, single)
	ident := func(d index.DocID) index.DocID { return d }
	for _, scorer := range parityScorers() {
		p := PrepareQuery(q, stats, scorer)
		// Warm the pools: the budget is a steady-state claim.
		for i := 0; i < 3; i++ {
			RecycleHits(p.ScoreSegment(single, ident, nil, 50).Hits)
		}
		allocs := testing.AllocsPerRun(50, func() {
			pq := PrepareQuery(q, stats, scorer)
			res := pq.ScoreSegment(single, ident, nil, 50)
			RecycleHits(res.Hits)
		})
		if allocs > kernelScanAllocBudget {
			t.Errorf("scorer=%s: %.1f allocs per warm kernel scan, budget %d",
				scorer.Name(), allocs, kernelScanAllocBudget)
		}
	}
}

// TestEngineSearchAllocBudget pins the full uncached query path: a
// warm Engine.Search on a 4-segment sharded engine must stay under the
// budget per query, scorers included.
func TestEngineSearchAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	_, sh := buildCorpus(t, 2008, 200, 4)
	// One worker: a multi-goroutine fan-out charges goroutine wakeups
	// to the measured function, which is scheduler noise, not the
	// query path's allocation behaviour.
	eng := NewShardedEngine(sh, text.NewAnalyzer(), 1)
	q := eng.ParseText("goal storm vote election")
	for i := 0; i < 3; i++ {
		if _, err := eng.Search(q, Options{K: 50}); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := eng.Search(q, Options{K: 50}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > engineSearchAllocBudget {
		t.Errorf("%.1f allocs per warm Engine.Search, budget %d", allocs, engineSearchAllocBudget)
	}
}
