package search

import (
	"container/heap"
	"sort"
)

// hitLess orders hits for final ranking: higher score first, then
// ascending ID so equal-scored runs are reproducible across processes.
func hitLess(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// TopK is a bounded min-heap keeping the K best hits seen so far: the
// streaming alternative to sorting a full candidate list and cutting
// it to K (O(n log k) instead of O(n log n), and O(k) memory). Because
// (score desc, ID asc) is a total order, the kept set — and therefore
// Ranked's output — is independent of Offer order, which is what lets
// parallel segment scorers merge without re-sorting candidates.
//
// A TopK is single-goroutine; merge concurrent producers by offering
// their Ranked() outputs into one final TopK.
type TopK struct {
	k    int
	heap hitHeap
}

// NewTopK returns an empty collector bounded to the k best hits.
func NewTopK(k int) *TopK { return &TopK{k: k} }

// Offer considers one hit.
func (t *TopK) Offer(h Hit) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		heap.Push(&t.heap, h)
		return
	}
	// The heap root is the current worst of the kept set; replace it
	// when the candidate ranks strictly better.
	if hitLess(h, t.heap[0]) {
		t.heap[0] = h
		heap.Fix(&t.heap, 0)
	}
}

// Len reports how many hits are currently kept.
func (t *TopK) Len() int { return len(t.heap) }

// Ranked extracts the kept hits in final rank order.
func (t *TopK) Ranked() []Hit {
	out := make([]Hit, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool { return hitLess(out[i], out[j]) })
	return out
}

// hitHeap is a min-heap by rank quality: the root is the *worst* kept
// hit, so it can be evicted cheaply.
type hitHeap []Hit

func (h hitHeap) Len() int { return len(h) }

// Less inverts hitLess: the heap keeps the worst-ranked element on top.
func (h hitHeap) Less(i, j int) bool { return hitLess(h[j], h[i]) }

func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *hitHeap) Push(x any) { *h = append(*h, x.(Hit)) }

func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
