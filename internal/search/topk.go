package search

import (
	"container/heap"
	"sort"
)

// hitLess orders hits for final ranking: higher score first, then
// ascending ID so equal-scored runs are reproducible across processes.
func hitLess(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// topK is a bounded min-heap keeping the K best hits seen so far.
type topK struct {
	k    int
	heap hitHeap
}

func newTopK(k int) *topK { return &topK{k: k} }

// offer considers one hit.
func (t *topK) offer(h Hit) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		heap.Push(&t.heap, h)
		return
	}
	// The heap root is the current worst of the kept set; replace it
	// when the candidate ranks strictly better.
	if hitLess(h, t.heap[0]) {
		t.heap[0] = h
		heap.Fix(&t.heap, 0)
	}
}

// ranked extracts the kept hits in final rank order.
func (t *topK) ranked() []Hit {
	out := make([]Hit, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool { return hitLess(out[i], out[j]) })
	return out
}

// hitHeap is a min-heap by rank quality: the root is the *worst* kept
// hit, so it can be evicted cheaply.
type hitHeap []Hit

func (h hitHeap) Len() int { return len(h) }

// Less inverts hitLess: the heap keeps the worst-ranked element on top.
func (h hitHeap) Less(i, j int) bool { return hitLess(h[j], h[i]) }

func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *hitHeap) Push(x any) { *h = append(*h, x.(Hit)) }

func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
