package search

import "slices"

// hitLess orders hits for final ranking: higher score first, then
// ascending ID so equal-scored runs are reproducible across processes.
func hitLess(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// hitCompare is hitLess as a three-way comparison for slices.SortFunc.
func hitCompare(a, b Hit) int {
	if hitLess(a, b) {
		return -1
	}
	if hitLess(b, a) {
		return 1
	}
	return 0
}

// TopK is a bounded min-heap keeping the K best hits seen so far: the
// streaming alternative to sorting a full candidate list and cutting
// it to K (O(n log k) instead of O(n log n), and O(k) memory). Because
// (score desc, ID asc) is a total order, the kept set — and therefore
// Ranked's output — is independent of Offer order, which is what lets
// parallel segment scorers merge without re-sorting candidates.
//
// The heap is hand-rolled over []Hit rather than container/heap: the
// standard interface moves elements through `any`, which boxes every
// offered Hit onto the heap — one allocation per candidate document on
// the scoring hot path.
//
// A TopK is single-goroutine; merge concurrent producers by offering
// their Ranked() outputs into one final TopK.
type TopK struct {
	k    int
	heap []Hit // min-heap by rank quality: heap[0] is the worst kept hit
}

// NewTopK returns an empty collector bounded to the k best hits.
func NewTopK(k int) *TopK { return &TopK{k: k} }

// Reset re-arms the collector for a new bound, keeping the underlying
// heap storage (the kernel recycles TopKs through a pool).
func (t *TopK) Reset(k int) {
	t.k = k
	t.heap = t.heap[:0]
}

// Offer considers one hit.
func (t *TopK) Offer(h Hit) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, h)
		t.up(len(t.heap) - 1)
		return
	}
	// The heap root is the current worst of the kept set; replace it
	// when the candidate ranks strictly better.
	if hitLess(h, t.heap[0]) {
		t.heap[0] = h
		t.down(0)
	}
}

// up restores the heap property from leaf i toward the root. The heap
// order inverts hitLess: a node ranks no better than its children.
func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !hitLess(t.heap[parent], t.heap[i]) {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

// down restores the heap property from node i toward the leaves.
func (t *TopK) down(i int) {
	n := len(t.heap)
	for {
		worst := i
		if l := 2*i + 1; l < n && hitLess(t.heap[worst], t.heap[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && hitLess(t.heap[worst], t.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// Len reports how many hits are currently kept.
func (t *TopK) Len() int { return len(t.heap) }

// Floor returns the worst kept score and whether the collector is full
// (Len() == k). Once full, no hit scoring strictly below the floor can
// enter the kept set — the threshold block-max early termination in
// the scoring kernel prunes against.
func (t *TopK) Floor() (float64, bool) {
	if t.k <= 0 || len(t.heap) < t.k {
		return 0, false
	}
	return t.heap[0].Score, true
}

// Ranked extracts the kept hits in final rank order (the collector is
// left intact). The result is never nil, so an empty ranking encodes
// as [] on the JSON surfaces.
func (t *TopK) Ranked() []Hit {
	return t.AppendRanked(make([]Hit, 0, len(t.heap)))
}

// AppendRanked appends the kept hits in final rank order to dst and
// returns the extended slice — the allocation-free form of Ranked for
// callers recycling hit slices through a pool.
func (t *TopK) AppendRanked(dst []Hit) []Hit {
	start := len(dst)
	dst = append(dst, t.heap...)
	slices.SortFunc(dst[start:], hitCompare)
	return dst
}
