package search

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// The scoring kernel. The adaptive loop re-runs retrieval after every
// implicit-feedback event, so uncached query scoring is the system's
// hottest path. This file compiles a (Query, []TermStats, Scorer)
// triple into a PreparedQuery — per-term scoring constants hoisted out
// of the posting loop, so the inner loop is pure arithmetic with no
// interface dispatch — and scores segments through dense, pooled
// accumulator state instead of a per-query map.
//
// Everything here is pinned bit-identical to the straightforward
// map-accumulator + interface-dispatch scan (kept as the reference
// oracle in the parity tests): constants are hoisted only where the
// floating-point operation order is provably unchanged, and documents
// accumulate term contributions in query-term order exactly as before.

// scorerKind selects the compiled inner loop.
type scorerKind uint8

const (
	// kindGeneric scores through the Scorer interface per posting —
	// the fallback for scorer implementations the compiler does not
	// know. Correct for any Scorer, but pays interface dispatch.
	kindGeneric scorerKind = iota
	kindBM25
	kindTFIDF
	kindDirichlet
)

// kernelTerm is one query term's compiled scoring state. The float
// constants are kind-specific; unused ones stay zero.
type kernelTerm struct {
	term string
	// ti indexes the original stats slice (generic path).
	ti int
	// zero marks a term whose every contribution is exactly +0 but
	// whose postings must still be walked, because touching a document
	// registers it as a candidate (Dirichlet with CF == 0: the oracle
	// adds 0.0 through the map, which makes the doc a candidate).
	zero bool

	// BM25: wIdf = Weight*idf, k1p1 = K1+1, k1, b, oneMinusB = 1-b,
	// maxAvg = max(AvgDocLen, 1e-9).
	// TFIDF: weight, idf.
	// Dirichlet: weight, muPc = mu * (CF/TotalLen).
	wIdf      float64
	k1p1      float64
	k1        float64
	b         float64
	oneMinusB float64
	maxAvg    float64
	weight    float64
	idf       float64
	muPc      float64
}

// PreparedQuery is a query compiled for the scoring kernel: the
// original (Query, []TermStats, Scorer) triple — still exposed for
// wire serialisation and reference scoring — plus per-term constants
// with all document-independent arithmetic (IDF, BM25 saturation
// constants, Dirichlet collection models) precomputed, so scoring a
// posting costs a few multiplications and no interface calls.
//
// The engine compiles once per query and hands the same PreparedQuery
// to every segment worker; the distributed segment servers compile
// from the identical wire statistics, so both sides of the process
// boundary run the same kernel on the same constants. A PreparedQuery
// is immutable after PrepareQuery and safe for concurrent use.
type PreparedQuery struct {
	query  Query
	stats  []TermStats
	scorer Scorer

	kind  scorerKind
	terms []kernelTerm
	sumW  float64
	mu    float64 // Dirichlet doc-score smoothing mass
}

// PrepareQuery compiles a query against precomputed global term
// statistics (parallel to q.Terms) for a scorer. Terms with DF == 0 or
// zero weight are dropped at compile time, mirroring the scan's skip
// condition.
func PrepareQuery(q Query, stats []TermStats, scorer Scorer) *PreparedQuery {
	kernelCounters.compiles.Add(1)
	p := &PreparedQuery{
		query:  q,
		stats:  stats,
		scorer: scorer,
		sumW:   q.SumWeights(),
		terms:  make([]kernelTerm, 0, len(q.Terms)),
	}
	switch s := scorer.(type) {
	case BM25:
		p.kind = kindBM25
		k1, b := s.params()
		for ti, t := range q.Terms {
			if stats[ti].DF == 0 || t.Weight == 0 {
				continue
			}
			st := stats[ti]
			idf := math.Log(1 + (float64(st.N)-float64(st.DF)+0.5)/(float64(st.DF)+0.5))
			p.terms = append(p.terms, kernelTerm{
				term: t.Term, ti: ti,
				wIdf: st.Weight * idf, k1p1: k1 + 1, k1: k1, b: b,
				oneMinusB: 1 - b, maxAvg: math.Max(st.AvgDocLen, 1e-9),
			})
		}
	case TFIDF:
		p.kind = kindTFIDF
		for ti, t := range q.Terms {
			if stats[ti].DF == 0 || t.Weight == 0 {
				continue
			}
			st := stats[ti]
			p.terms = append(p.terms, kernelTerm{
				term: t.Term, ti: ti,
				weight: st.Weight,
				idf:    math.Log(float64(st.N+1) / float64(st.DF)),
			})
		}
	case DirichletLM:
		p.kind = kindDirichlet
		p.mu = s.mu()
		for ti, t := range q.Terms {
			if stats[ti].DF == 0 || t.Weight == 0 {
				continue
			}
			st := stats[ti]
			kt := kernelTerm{term: t.Term, ti: ti, weight: st.Weight}
			if st.CF == 0 || st.TotalLen == 0 {
				// The reference TermScore returns 0 here, but the scan
				// still walks the postings and registers candidates.
				kt.zero = true
			} else {
				pc := float64(st.CF) / float64(st.TotalLen)
				kt.muPc = p.mu * pc
			}
			p.terms = append(p.terms, kt)
		}
	default:
		p.kind = kindGeneric
		for ti, t := range q.Terms {
			if stats[ti].DF == 0 || t.Weight == 0 {
				continue
			}
			p.terms = append(p.terms, kernelTerm{term: t.Term, ti: ti})
		}
	}
	return p
}

// Query returns the original query.
func (p *PreparedQuery) Query() Query { return p.query }

// Stats returns the global term statistics the query was compiled
// against (parallel to Query().Terms; read-only).
func (p *PreparedQuery) Stats() []TermStats { return p.stats }

// Scorer returns the scorer the query was compiled for.
func (p *PreparedQuery) Scorer() Scorer { return p.scorer }

// kernelBlock bounds one postings decode burst. 256 postings keep the
// scratch (256*4 + 256*4 bytes) comfortably inside L1 alongside the
// touched accumulator lines.
const kernelBlock = 256

// accumulator is the dense per-segment scoring state, recycled through
// accPool. scores holds one float64 per segment document; epochs marks
// which entries belong to the current query (an entry is live iff
// epochs[d] == epoch), so "clearing" between queries is one counter
// increment — O(touched candidates), never O(numDocs). touched lists
// the live DocIDs for the candidate sweep.
type accumulator struct {
	scores  []float64
	epochs  []uint32
	epoch   uint32
	touched []index.DocID

	// postings decode scratch, kept alongside the accumulator so one
	// pool Get arms the whole per-segment scan.
	docBuf [kernelBlock]index.DocID
	tfBuf  [kernelBlock]uint32
}

// reset arms the accumulator for a segment of n documents.
func (a *accumulator) reset(n int) {
	if cap(a.scores) < n {
		a.scores = make([]float64, n)
		a.epochs = make([]uint32, n)
	} else {
		a.scores = a.scores[:n]
		a.epochs = a.epochs[:n]
	}
	a.epoch++
	if a.epoch == 0 {
		// uint32 wraparound: stale entries could alias the new epoch,
		// so pay one full clear every 2^32 queries. Clear the whole
		// capacity, not just [:n] — a later reset for a larger segment
		// would otherwise see pre-wrap values beyond n.
		clear(a.epochs[:cap(a.epochs)])
		a.epoch = 1
	}
	a.touched = a.touched[:0]
}

// add accumulates a term contribution for document d. First touch in
// this epoch initialises the slot (0 + s == s bit-identically for
// every non-negative s, matching the map oracle's zero-value add).
func (a *accumulator) add(d index.DocID, s float64) {
	if a.epochs[d] != a.epoch {
		a.epochs[d] = a.epoch
		a.scores[d] = s
		a.touched = append(a.touched, d)
	} else {
		a.scores[d] += s
	}
}

// Pools. All three cycle through sync.Pool so a steady-state query
// allocates nothing for accumulator state, top-k heaps, or hit slices;
// the counters feed the kernel block of /api/v1/metrics.
var (
	accPool  = sync.Pool{New: func() any { kernelCounters.accAllocs.Add(1); return new(accumulator) }}
	topKPool = sync.Pool{New: func() any { kernelCounters.topKAllocs.Add(1); return new(TopK) }}
	hitsPool = sync.Pool{New: func() any {
		kernelCounters.hitsAllocs.Add(1)
		s := make([]Hit, 0, DefaultK)
		return &s
	}}
	// hitsBoxPool recycles the *[]Hit headers themselves: getHits hands
	// out a naked slice, so RecycleHits would otherwise re-box it (one
	// heap allocation per recycle — the very cost the pool removes).
	// Empty boxes cycle here between a Get and the matching Recycle.
	hitsBoxPool = sync.Pool{New: func() any { return new([]Hit) }}
)

func getAccumulator(n int) *accumulator {
	kernelCounters.accGets.Add(1)
	a := accPool.Get().(*accumulator)
	a.reset(n)
	return a
}

func putAccumulator(a *accumulator) { accPool.Put(a) }

func getTopK(k int) *TopK {
	kernelCounters.topKGets.Add(1)
	t := topKPool.Get().(*TopK)
	t.Reset(k)
	return t
}

func putTopK(t *TopK) { topKPool.Put(t) }

// getHits returns an empty, non-nil hit slice with pooled backing
// storage, parking the emptied box for RecycleHits to reuse.
func getHits() []Hit {
	kernelCounters.hitsGets.Add(1)
	bp := hitsPool.Get().(*[]Hit)
	s := (*bp)[:0]
	*bp = nil
	hitsBoxPool.Put(bp)
	return s
}

// RecycleHits hands a hit slice back to the kernel's pool. Callers
// must not retain any reference to the slice afterwards. The engine
// recycles per-segment hit lists after merging them; the distributed
// segment server recycles after encoding the wire response. Recycling
// is always optional — an unreturned slice is ordinary garbage.
func RecycleHits(hits []Hit) {
	if cap(hits) == 0 {
		return
	}
	bp := hitsBoxPool.Get().(*[]Hit)
	*bp = hits[:0]
	hitsPool.Put(bp)
}

// kernelStatsCounters aggregates kernel pool telemetry (atomics; the
// hot path only ever increments).
type kernelStatsCounters struct {
	compiles   atomic.Int64
	scans      atomic.Int64
	accGets    atomic.Int64
	accAllocs  atomic.Int64
	topKGets   atomic.Int64
	topKAllocs atomic.Int64
	hitsGets   atomic.Int64
	hitsAllocs atomic.Int64
}

var kernelCounters kernelStatsCounters

// KernelStats is a snapshot of the scoring kernel's pool telemetry:
// Compiles counts PrepareQuery calls, Scans counts per-segment kernel
// executions, and each pool reports how many Gets it served against
// how many backing objects it ever had to allocate — a healthy steady
// state shows Allocs plateauing while Gets grows.
type KernelStats struct {
	Compiles        int64 `json:"compiles"`
	SegmentScans    int64 `json:"segment_scans"`
	AccumulatorGets int64 `json:"accumulator_gets"`
	AccumulatorNews int64 `json:"accumulator_allocs"`
	TopKGets        int64 `json:"topk_gets"`
	TopKNews        int64 `json:"topk_allocs"`
	HitSliceGets    int64 `json:"hit_slice_gets"`
	HitSliceNews    int64 `json:"hit_slice_allocs"`
}

// ReadKernelStats snapshots the process-wide kernel telemetry.
func ReadKernelStats() KernelStats {
	return KernelStats{
		Compiles:        kernelCounters.compiles.Load(),
		SegmentScans:    kernelCounters.scans.Load(),
		AccumulatorGets: kernelCounters.accGets.Load(),
		AccumulatorNews: kernelCounters.accAllocs.Load(),
		TopKGets:        kernelCounters.topKGets.Load(),
		TopKNews:        kernelCounters.topKAllocs.Load(),
		HitSliceGets:    kernelCounters.hitsGets.Load(),
		HitSliceNews:    kernelCounters.hitsAllocs.Load(),
	}
}

// ScoreSegment runs the compiled kernel over one in-memory index
// segment: term-at-a-time accumulation into the dense pooled
// accumulator, then the segment-local top-k cut. globalID converts the
// segment's local doc IDs to engine-wide IDs; k <= 0 keeps every
// candidate. Rankings, scores and candidate counts are bit-identical
// to the reference map scan (see ScoreIndexSegment's contract); the
// parity suite pins this per scorer, seed, K and segment count.
//
// The returned SegmentResult.Hits may come from the kernel's slice
// pool; hand it back with RecycleHits once it is dead.
func (p *PreparedQuery) ScoreSegment(seg *index.Index, globalID func(index.DocID) index.DocID,
	filter func(string) bool, k int) SegmentResult {
	kernelCounters.scans.Add(1)
	acc := getAccumulator(seg.NumDocs())
	docLens := seg.DocLens(p.query.Field)
	for i := range p.terms {
		kt := &p.terms[i]
		it := seg.PostingsFor(p.query.Field, kt.term)
		switch p.kind {
		case kindBM25:
			for {
				n := it.NextBlock(acc.docBuf[:], acc.tfBuf[:])
				if n == 0 {
					break
				}
				for j := 0; j < n; j++ {
					d := acc.docBuf[j]
					tf := float64(acc.tfBuf[j])
					norm := kt.k1 * (kt.oneMinusB + kt.b*float64(docLens[d])/kt.maxAvg)
					acc.add(d, kt.wIdf*(tf*kt.k1p1)/(tf+norm))
				}
			}
		case kindTFIDF:
			for {
				n := it.NextBlock(acc.docBuf[:], acc.tfBuf[:])
				if n == 0 {
					break
				}
				for j := 0; j < n; j++ {
					d := acc.docBuf[j]
					ltf := 1 + math.Log(float64(acc.tfBuf[j]))
					acc.add(d, kt.weight*ltf*kt.idf/math.Sqrt(math.Max(float64(docLens[d]), 1)))
				}
			}
		case kindDirichlet:
			for {
				n := it.NextBlock(acc.docBuf[:], acc.tfBuf[:])
				if n == 0 {
					break
				}
				for j := 0; j < n; j++ {
					d := acc.docBuf[j]
					if kt.zero {
						acc.add(d, 0)
						continue
					}
					acc.add(d, kt.weight*math.Log(1+float64(acc.tfBuf[j])/kt.muPc))
				}
			}
		default: // kindGeneric: per-posting interface dispatch
			st := p.stats[kt.ti]
			for {
				n := it.NextBlock(acc.docBuf[:], acc.tfBuf[:])
				if n == 0 {
					break
				}
				for j := 0; j < n; j++ {
					d := acc.docBuf[j]
					acc.add(d, p.scorer.TermScore(st, int(acc.tfBuf[j]), int(docLens[d])))
				}
			}
		}
	}
	if k <= 0 {
		k = len(acc.touched)
		if k == 0 {
			k = 1
		}
	}
	top := getTopK(k)
	candidates := 0
	for _, d := range acc.touched {
		id := seg.ExternalID(d)
		if filter != nil && !filter(id) {
			continue
		}
		candidates++
		score := acc.scores[d]
		switch p.kind {
		case kindDirichlet:
			score += p.sumW * math.Log(p.mu/(float64(docLens[d])+p.mu))
		case kindGeneric:
			score += p.scorer.DocScore(p.sumW, int(docLens[d]))
			// BM25 and TFIDF have no per-document correction; skipping the
			// +0 add is exact because accumulated scores are never -0.
		}
		top.Offer(Hit{Doc: globalID(d), ID: id, Score: score})
	}
	hits := top.AppendRanked(getHits())
	putTopK(top)
	putAccumulator(acc)
	return SegmentResult{Hits: hits, Candidates: candidates}
}
