package search

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/overload"
)

// The scoring kernel. The adaptive loop re-runs retrieval after every
// implicit-feedback event, so uncached query scoring is the system's
// hottest path. This file compiles a (Query, []TermStats, Scorer)
// triple into a PreparedQuery — per-term scoring constants hoisted out
// of the posting loop, so the inner loop is pure arithmetic with no
// interface dispatch — and scores segments through dense, pooled
// accumulator state instead of a per-query map.
//
// Everything here is pinned bit-identical to the straightforward
// map-accumulator + interface-dispatch scan (kept as the reference
// oracle in the parity tests): constants are hoisted only where the
// floating-point operation order is provably unchanged, and documents
// accumulate term contributions in query-term order exactly as before.

// scorerKind selects the compiled inner loop.
type scorerKind uint8

const (
	// kindGeneric scores through the Scorer interface per posting —
	// the fallback for scorer implementations the compiler does not
	// know. Correct for any Scorer, but pays interface dispatch.
	kindGeneric scorerKind = iota
	kindBM25
	kindTFIDF
	kindDirichlet
)

// kernelTerm is one query term's compiled scoring state. The float
// constants are kind-specific; unused ones stay zero.
type kernelTerm struct {
	term string
	// ti indexes the original stats slice (generic path).
	ti int
	// zero marks a term whose every contribution is exactly +0 but
	// whose postings must still be walked, because touching a document
	// registers it as a candidate (Dirichlet with CF == 0: the oracle
	// adds 0.0 through the map, which makes the doc a candidate).
	zero bool

	// BM25: wIdf = Weight*idf, k1p1 = K1+1, k1, b, oneMinusB = 1-b,
	// maxAvg = max(AvgDocLen, 1e-9).
	// TFIDF: weight, idf.
	// Dirichlet: weight, muPc = mu * (CF/TotalLen).
	wIdf      float64
	k1p1      float64
	k1        float64
	b         float64
	oneMinusB float64
	maxAvg    float64
	weight    float64
	idf       float64
	muPc      float64
}

// PreparedQuery is a query compiled for the scoring kernel: the
// original (Query, []TermStats, Scorer) triple — still exposed for
// wire serialisation and reference scoring — plus per-term constants
// with all document-independent arithmetic (IDF, BM25 saturation
// constants, Dirichlet collection models) precomputed, so scoring a
// posting costs a few multiplications and no interface calls.
//
// The engine compiles once per query and hands the same PreparedQuery
// to every segment worker; the distributed segment servers compile
// from the identical wire statistics, so both sides of the process
// boundary run the same kernel on the same constants. A PreparedQuery
// is immutable after PrepareQuery and safe for concurrent use.
type PreparedQuery struct {
	query  Query
	stats  []TermStats
	scorer Scorer

	kind  scorerKind
	terms []kernelTerm
	sumW  float64
	mu    float64 // Dirichlet doc-score smoothing mass

	// prunable marks a query whose per-posting contributions are
	// provably non-negative and monotone in tf with a closed-form upper
	// bound (BM25 and TFIDF with sane, finite constants) — the
	// precondition for block-max early termination. Dirichlet carries a
	// negative per-document correction and generic scorers have unknown
	// sign, so both always run the full scan.
	prunable bool
}

// PrepareQuery compiles a query against precomputed global term
// statistics (parallel to q.Terms) for a scorer. Terms with DF == 0 or
// zero weight are dropped at compile time, mirroring the scan's skip
// condition.
func PrepareQuery(q Query, stats []TermStats, scorer Scorer) *PreparedQuery {
	kernelCounters.compiles.Add(1)
	p := &PreparedQuery{
		query:  q,
		stats:  stats,
		scorer: scorer,
		sumW:   q.SumWeights(),
		terms:  make([]kernelTerm, 0, len(q.Terms)),
	}
	switch s := scorer.(type) {
	case BM25:
		p.kind = kindBM25
		k1, b := s.params()
		// Pruning needs the saturation curve monotone increasing in tf
		// and the length norm bounded below by k1*(1-b): k1 >= 0 and
		// b in [0,1]. Hostile wire stats are vetted per term below.
		p.prunable = k1 >= 0 && b >= 0 && b <= 1
		for ti, t := range q.Terms {
			if stats[ti].DF == 0 || t.Weight == 0 {
				continue
			}
			st := stats[ti]
			idf := math.Log(1 + (float64(st.N)-float64(st.DF)+0.5)/(float64(st.DF)+0.5))
			kt := kernelTerm{
				term: t.Term, ti: ti,
				wIdf: st.Weight * idf, k1p1: k1 + 1, k1: k1, b: b,
				oneMinusB: 1 - b, maxAvg: math.Max(st.AvgDocLen, 1e-9),
			}
			// A negative or non-finite weighted IDF (possible with
			// adversarial remote statistics) breaks the non-negative
			// contribution invariant: fail safe to the full scan.
			if !(kt.wIdf >= 0) || math.Signbit(kt.wIdf) || math.IsInf(kt.wIdf, 0) {
				p.prunable = false
			}
			p.terms = append(p.terms, kt)
		}
	case TFIDF:
		p.kind = kindTFIDF
		p.prunable = true
		for ti, t := range q.Terms {
			if stats[ti].DF == 0 || t.Weight == 0 {
				continue
			}
			st := stats[ti]
			kt := kernelTerm{
				term: t.Term, ti: ti,
				weight: st.Weight,
				idf:    math.Log(float64(st.N+1) / float64(st.DF)),
			}
			if !(kt.weight >= 0) || math.IsInf(kt.weight, 0) ||
				!(kt.idf >= 0) || math.IsInf(kt.idf, 0) {
				p.prunable = false
			}
			p.terms = append(p.terms, kt)
		}
	case DirichletLM:
		p.kind = kindDirichlet
		p.mu = s.mu()
		for ti, t := range q.Terms {
			if stats[ti].DF == 0 || t.Weight == 0 {
				continue
			}
			st := stats[ti]
			kt := kernelTerm{term: t.Term, ti: ti, weight: st.Weight}
			if st.CF == 0 || st.TotalLen == 0 {
				// The reference TermScore returns 0 here, but the scan
				// still walks the postings and registers candidates.
				kt.zero = true
			} else {
				pc := float64(st.CF) / float64(st.TotalLen)
				kt.muPc = p.mu * pc
			}
			p.terms = append(p.terms, kt)
		}
	default:
		p.kind = kindGeneric
		for ti, t := range q.Terms {
			if stats[ti].DF == 0 || t.Weight == 0 {
				continue
			}
			p.terms = append(p.terms, kernelTerm{term: t.Term, ti: ti})
		}
	}
	return p
}

// Query returns the original query.
func (p *PreparedQuery) Query() Query { return p.query }

// Stats returns the global term statistics the query was compiled
// against (parallel to Query().Terms; read-only).
func (p *PreparedQuery) Stats() []TermStats { return p.stats }

// Scorer returns the scorer the query was compiled for.
func (p *PreparedQuery) Scorer() Scorer { return p.scorer }

// kernelBlock bounds one postings decode burst. 256 postings keep the
// scratch (256*4 + 256*4 bytes) comfortably inside L1 alongside the
// touched accumulator lines.
const kernelBlock = 256

// accumulator is the dense per-segment scoring state, recycled through
// accPool. scores holds one float64 per segment document; epochs marks
// which entries belong to the current query (an entry is live iff
// epochs[d] == epoch), so "clearing" between queries is one counter
// increment — O(touched candidates), never O(numDocs). touched lists
// the live DocIDs for the candidate sweep.
type accumulator struct {
	scores  []float64
	epochs  []uint32
	epoch   uint32
	touched []index.DocID

	// postings decode scratch, kept alongside the accumulator so one
	// pool Get arms the whole per-segment scan.
	docBuf [kernelBlock]index.DocID
	tfBuf  [kernelBlock]uint32

	// Block-max pruning state, armed per scan by ScoreSegment. its and
	// rem are per-term scratch (iterators fetched up front so term
	// upper bounds are known before scoring; rem[i] bounds everything
	// terms after i can still contribute). floorH, when floorK > 0, is
	// a raw min-heap over the k largest first-touch scores: since
	// BM25/TFIDF contributions are non-negative, a document's final
	// score is at least its first contribution, so once full the root
	// is a valid lower bound on the segment's true k-th best final
	// score. A bare []float64 heap — not a TopK — because the floor is
	// offered every first touch on the hottest loop in the system: the
	// common case is one float compare against the root, with no Hit
	// copies and no tie-breaking ID compares (rank ties are irrelevant
	// to a value bound).
	its    []index.PostingsIterator
	rem    []float64
	floorK int
	floorH []float64
}

// offerFloor feeds one first-touch score to the floor heap: grow until
// k values are held, then replace the minimum only when s beats it.
func (a *accumulator) offerFloor(s float64) {
	h := a.floorH
	if len(h) == a.floorK {
		if s <= h[0] {
			return
		}
		// Replace the root and sift the new value down.
		i, n := 0, len(h)
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			if r := l + 1; r < n && h[r] < h[l] {
				l = r
			}
			if h[l] >= s {
				break
			}
			h[i] = h[l]
			i = l
		}
		h[i] = s
		return
	}
	// Growing phase (first k touches of the scan): push and sift up.
	h = append(h, s)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= s {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = s
	a.floorH = h
}

// floorScore returns the current pruning threshold and whether the
// floor heap has filled (only a full heap bounds the k-th best score).
func (a *accumulator) floorScore() (float64, bool) {
	if len(a.floorH) < a.floorK {
		return 0, false
	}
	return a.floorH[0], true
}

// iters returns per-term iterator scratch of length n.
func (a *accumulator) iters(n int) []index.PostingsIterator {
	if cap(a.its) < n {
		a.its = make([]index.PostingsIterator, n)
	}
	return a.its[:n]
}

// remBuf returns per-term suffix-bound scratch of length n.
func (a *accumulator) remBuf(n int) []float64 {
	if cap(a.rem) < n {
		a.rem = make([]float64, n)
	}
	return a.rem[:n]
}

// reset arms the accumulator for a segment of n documents.
func (a *accumulator) reset(n int) {
	if cap(a.scores) < n {
		a.scores = make([]float64, n)
		a.epochs = make([]uint32, n)
	} else {
		a.scores = a.scores[:n]
		a.epochs = a.epochs[:n]
	}
	a.epoch++
	if a.epoch == 0 {
		// uint32 wraparound: stale entries could alias the new epoch,
		// so pay one full clear every 2^32 queries. Clear the whole
		// capacity, not just [:n] — a later reset for a larger segment
		// would otherwise see pre-wrap values beyond n.
		clear(a.epochs[:cap(a.epochs)])
		a.epoch = 1
	}
	a.touched = a.touched[:0]
	a.floorK = 0
}

// add accumulates a term contribution for document d. First touch in
// this epoch initialises the slot (0 + s == s bit-identically for
// every non-negative s, matching the map oracle's zero-value add).
func (a *accumulator) add(d index.DocID, s float64) {
	if a.epochs[d] != a.epoch {
		a.epochs[d] = a.epoch
		a.scores[d] = s
		a.touched = append(a.touched, d)
		if a.floorK > 0 {
			a.offerFloor(s)
		}
	} else {
		a.scores[d] += s
	}
}

// Pools. All three cycle through sync.Pool so a steady-state query
// allocates nothing for accumulator state, top-k heaps, or hit slices;
// the counters feed the kernel block of /api/v1/metrics.
var (
	accPool  = sync.Pool{New: func() any { kernelCounters.accAllocs.Add(1); return new(accumulator) }}
	topKPool = sync.Pool{New: func() any { kernelCounters.topKAllocs.Add(1); return new(TopK) }}
	hitsPool = sync.Pool{New: func() any {
		kernelCounters.hitsAllocs.Add(1)
		s := make([]Hit, 0, DefaultK)
		return &s
	}}
	// hitsBoxPool recycles the *[]Hit headers themselves: getHits hands
	// out a naked slice, so RecycleHits would otherwise re-box it (one
	// heap allocation per recycle — the very cost the pool removes).
	// Empty boxes cycle here between a Get and the matching Recycle.
	hitsBoxPool = sync.Pool{New: func() any { return new([]Hit) }}
)

func getAccumulator(n int) *accumulator {
	kernelCounters.accGets.Add(1)
	a := accPool.Get().(*accumulator)
	a.reset(n)
	return a
}

func putAccumulator(a *accumulator) { accPool.Put(a) }

func getTopK(k int) *TopK {
	kernelCounters.topKGets.Add(1)
	t := topKPool.Get().(*TopK)
	t.Reset(k)
	return t
}

func putTopK(t *TopK) { topKPool.Put(t) }

// getHits returns an empty, non-nil hit slice with pooled backing
// storage, parking the emptied box for RecycleHits to reuse.
func getHits() []Hit {
	kernelCounters.hitsGets.Add(1)
	bp := hitsPool.Get().(*[]Hit)
	s := (*bp)[:0]
	*bp = nil
	hitsBoxPool.Put(bp)
	return s
}

// RecycleHits hands a hit slice back to the kernel's pool. Callers
// must not retain any reference to the slice afterwards. The engine
// recycles per-segment hit lists after merging them; the distributed
// segment server recycles after encoding the wire response. Recycling
// is always optional — an unreturned slice is ordinary garbage.
func RecycleHits(hits []Hit) {
	if cap(hits) == 0 {
		return
	}
	bp := hitsBoxPool.Get().(*[]Hit)
	*bp = hits[:0]
	hitsPool.Put(bp)
}

// kernelStatsCounters aggregates kernel pool telemetry (atomics; the
// hot path only ever increments).
type kernelStatsCounters struct {
	compiles   atomic.Int64
	scans      atomic.Int64
	accGets    atomic.Int64
	accAllocs  atomic.Int64
	topKGets   atomic.Int64
	topKAllocs atomic.Int64
	hitsGets   atomic.Int64
	hitsAllocs atomic.Int64

	// block-max early-termination telemetry
	prunedScans     atomic.Int64
	blocksScored    atomic.Int64
	blocksSkipped   atomic.Int64
	blocksRescored  atomic.Int64
	postingsSkipped atomic.Int64
	termsSkipped    atomic.Int64
}

// scanCounters batches one scan's block-max telemetry so the hot loops
// touch plain ints; flush pays the atomics once per segment scan.
type scanCounters struct {
	pruned          bool
	blocksScored    int64
	blocksSkipped   int64
	blocksRescored  int64
	postingsSkipped int64
	termsSkipped    int64
}

func (c *scanCounters) flush() {
	if c.pruned {
		kernelCounters.prunedScans.Add(1)
	}
	if c.blocksScored != 0 {
		kernelCounters.blocksScored.Add(c.blocksScored)
	}
	if c.blocksSkipped != 0 {
		kernelCounters.blocksSkipped.Add(c.blocksSkipped)
	}
	if c.blocksRescored != 0 {
		kernelCounters.blocksRescored.Add(c.blocksRescored)
	}
	if c.postingsSkipped != 0 {
		kernelCounters.postingsSkipped.Add(c.postingsSkipped)
	}
	if c.termsSkipped != 0 {
		kernelCounters.termsSkipped.Add(c.termsSkipped)
	}
}

var kernelCounters kernelStatsCounters

// KernelStats is a snapshot of the scoring kernel's pool telemetry:
// Compiles counts PrepareQuery calls, Scans counts per-segment kernel
// executions, and each pool reports how many Gets it served against
// how many backing objects it ever had to allocate — a healthy steady
// state shows Allocs plateauing while Gets grows.
type KernelStats struct {
	Compiles        int64 `json:"compiles"`
	SegmentScans    int64 `json:"segment_scans"`
	AccumulatorGets int64 `json:"accumulator_gets"`
	AccumulatorNews int64 `json:"accumulator_allocs"`
	TopKGets        int64 `json:"topk_gets"`
	TopKNews        int64 `json:"topk_allocs"`
	HitSliceGets    int64 `json:"hit_slice_gets"`
	HitSliceNews    int64 `json:"hit_slice_allocs"`

	// Block-max early termination: PrunedScans counts scans that ran
	// with pruning armed; BlocksSkipped postings blocks whose tf run
	// and scoring arithmetic were bypassed (PostingsSkipped the
	// postings inside them), BlocksRescored blocks whose bound allowed
	// a skip but an already-touched document forced an exact score,
	// TermsSkipped query terms whose every block was skipped.
	PrunedScans     int64 `json:"pruned_scans"`
	BlocksScored    int64 `json:"blocks_scored"`
	BlocksSkipped   int64 `json:"blocks_skipped"`
	BlocksRescored  int64 `json:"blocks_rescored"`
	PostingsSkipped int64 `json:"postings_skipped"`
	TermsSkipped    int64 `json:"terms_skipped"`
}

// ReadKernelStats snapshots the process-wide kernel telemetry.
func ReadKernelStats() KernelStats {
	return KernelStats{
		Compiles:        kernelCounters.compiles.Load(),
		SegmentScans:    kernelCounters.scans.Load(),
		AccumulatorGets: kernelCounters.accGets.Load(),
		AccumulatorNews: kernelCounters.accAllocs.Load(),
		TopKGets:        kernelCounters.topKGets.Load(),
		TopKNews:        kernelCounters.topKAllocs.Load(),
		HitSliceGets:    kernelCounters.hitsGets.Load(),
		HitSliceNews:    kernelCounters.hitsAllocs.Load(),
		PrunedScans:     kernelCounters.prunedScans.Load(),
		BlocksScored:    kernelCounters.blocksScored.Load(),
		BlocksSkipped:   kernelCounters.blocksSkipped.Load(),
		BlocksRescored:  kernelCounters.blocksRescored.Load(),
		PostingsSkipped: kernelCounters.postingsSkipped.Load(),
		TermsSkipped:    kernelCounters.termsSkipped.Load(),
	}
}

// termBound returns an upper bound on a single posting's contribution
// from kt given the largest term frequency m it can carry. Only valid
// for the prunable kinds: BM25's saturation is monotone increasing in
// tf and its length norm is at least k1*(1-b) (document length only
// shrinks the score), TFIDF's 1+log(tf) is monotone and its
// sqrt(max(docLen,1)) divisor is at least 1.
func (p *PreparedQuery) termBound(kt *kernelTerm, maxTF uint32) float64 {
	if maxTF == 0 {
		return 0
	}
	m := float64(maxTF)
	switch p.kind {
	case kindBM25:
		return kt.wIdf * (m * kt.k1p1) / (m + kt.k1*kt.oneMinusB)
	case kindTFIDF:
		return kt.weight * kt.idf * (1 + math.Log(m))
	}
	return math.Inf(1)
}

// skipBlock attempts the block-max skip for the open block of it given
// bound (the block's best possible contribution plus everything later
// terms can still add). A skip decodes only the block's doc run — new
// documents are registered with a zero contribution so candidate
// counts stay exact — and drops the tf run unread.
//
// skipped == false means the caller must score the block exactly:
// either the floor heap is not full yet, the bound reaches the floor,
// or an already-touched document in the block could still be lifted to
// the floor (its exact accumulated score plus the bound reaches the
// floor — such a document's accumulated score IS exact, because by
// induction a document only ever has a contribution skipped once its
// final total is provably below the floor, after which it can never
// enter the top k and its accumulated value never surfaces). In that
// last case the doc run is already consumed into acc.docBuf; decoded
// reports how many entries, so the caller decodes only the pending tf
// run.
func skipBlock(acc *accumulator, it *index.PostingsIterator, bound float64, c *scanCounters) (decoded int, skipped bool) {
	theta, full := acc.floorScore()
	if !full || !(bound < theta) {
		return 0, false
	}
	nd := it.DecodeBlockDocs(acc.docBuf[:])
	for j := 0; j < nd; j++ {
		d := acc.docBuf[j]
		if acc.epochs[d] == acc.epoch && acc.scores[d]+bound >= theta {
			c.blocksRescored++
			return nd, false
		}
	}
	for j := 0; j < nd; j++ {
		if d := acc.docBuf[j]; acc.epochs[d] != acc.epoch {
			acc.add(d, 0)
		}
	}
	c.blocksSkipped++
	c.postingsSkipped += int64(nd)
	return nd, true
}

// ScoreSegment runs the compiled kernel over one in-memory index
// segment: term-at-a-time accumulation into the dense pooled
// accumulator, then the segment-local top-k cut. globalID converts the
// segment's local doc IDs to engine-wide IDs; k <= 0 keeps every
// candidate. Rankings, scores and candidate counts are bit-identical
// to the reference map scan (see ScoreIndexSegment's contract); the
// parity suite pins this per scorer, seed, K and segment count.
//
// For prunable queries (see PreparedQuery.prunable) with a positive k
// and no filter, the scan applies block-max early termination: a
// first-touch score floor (lower bound on the segment's final k-th
// score, valid because contributions are non-negative) lets whole
// postings blocks skip their tf decode and scoring arithmetic when the
// block's maxTF-derived bound plus all later terms' bounds cannot
// reach it. Doc runs are always decoded, so candidate counts — which
// are user-visible — stay exact; this is the deliberate deviation
// from classic DAAT WAND, which trades candidate accounting away.
// Early termination never changes any reported hit, score bit, or
// candidate count: a skipped contribution always belongs to a document
// whose true final score is strictly below the true k-th best, and a
// document belonging to the true top k always fails the skip check, so
// its score stays exact.
//
// The returned SegmentResult.Hits may come from the kernel's slice
// pool; hand it back with RecycleHits once it is dead.
func (p *PreparedQuery) ScoreSegment(seg *index.Index, globalID func(index.DocID) index.DocID,
	filter func(string) bool, k int) SegmentResult {
	res, _ := p.scoreSegment(nil, seg, globalID, filter, k)
	return res
}

// ScoreSegmentContext is ScoreSegment with a deadline seam: when the
// context carries an overload.Budget, the per-block scan loop polls it
// and aborts with overload.ErrDeadlineExceeded the moment the budget
// is spent — an expired request stops burning CPU mid-segment instead
// of finishing a ranking nobody is waiting for. Without a budget the
// checkpoint is a nil-receiver check per block, so the idle hot path
// is unchanged (the alloc-budget and bench suites pin this).
func (p *PreparedQuery) ScoreSegmentContext(ctx context.Context, seg *index.Index,
	globalID func(index.DocID) index.DocID, filter func(string) bool, k int) (SegmentResult, error) {
	b := overload.FromContext(ctx)
	if b.Expired() {
		return SegmentResult{}, overload.ErrDeadlineExceeded
	}
	return p.scoreSegment(b, seg, globalID, filter, k)
}

func (p *PreparedQuery) scoreSegment(b *overload.Budget, seg *index.Index, globalID func(index.DocID) index.DocID,
	filter func(string) bool, k int) (SegmentResult, error) {
	kernelCounters.scans.Add(1)
	acc := getAccumulator(seg.NumDocs())
	docLens := seg.DocLens(p.query.Field)
	its := acc.iters(len(p.terms))
	for i := range p.terms {
		its[i] = seg.PostingsFor(p.query.Field, p.terms[i].term)
	}
	// Filtered queries cannot prune: the floor would bound the
	// unfiltered k-th score, which can exceed the filtered one.
	prune := p.prunable && k > 0 && filter == nil
	var c scanCounters
	var rem []float64
	if prune {
		c.pruned = true
		rem = acc.remBuf(len(p.terms))
		tail := 0.0
		for i := len(p.terms) - 1; i >= 0; i-- {
			rem[i] = tail
			tail += p.termBound(&p.terms[i], its[i].MaxTF())
		}
		acc.floorK = k
		acc.floorH = acc.floorH[:0]
	}
	expired := false
	for i := range p.terms {
		if expired {
			break
		}
		kt := &p.terms[i]
		it := &its[i]
		switch p.kind {
		case kindBM25:
			scored, skippedAny := false, false
			for {
				if b.Expired() {
					expired = true
					break
				}
				_, blockMax, ok := it.BlockBound()
				if !ok {
					break
				}
				n := 0
				if prune {
					var skipped bool
					n, skipped = skipBlock(acc, it, p.termBound(kt, blockMax)+rem[i], &c)
					if skipped {
						skippedAny = true
						continue
					}
				}
				// A failed skip has already consumed the doc run into
				// acc.docBuf (n > 0); otherwise decode it now.
				if n == 0 {
					n = it.DecodeBlockDocs(acc.docBuf[:])
				}
				it.DecodeBlockTFs(acc.tfBuf[:n])
				for j := 0; j < n; j++ {
					d := acc.docBuf[j]
					tf := float64(acc.tfBuf[j])
					norm := kt.k1 * (kt.oneMinusB + kt.b*float64(docLens[d])/kt.maxAvg)
					acc.add(d, kt.wIdf*(tf*kt.k1p1)/(tf+norm))
				}
				c.blocksScored++
				scored = true
			}
			if skippedAny && !scored {
				c.termsSkipped++
			}
		case kindTFIDF:
			scored, skippedAny := false, false
			for {
				if b.Expired() {
					expired = true
					break
				}
				_, blockMax, ok := it.BlockBound()
				if !ok {
					break
				}
				n := 0
				if prune {
					var skipped bool
					n, skipped = skipBlock(acc, it, p.termBound(kt, blockMax)+rem[i], &c)
					if skipped {
						skippedAny = true
						continue
					}
				}
				if n == 0 {
					n = it.DecodeBlockDocs(acc.docBuf[:])
				}
				it.DecodeBlockTFs(acc.tfBuf[:n])
				for j := 0; j < n; j++ {
					d := acc.docBuf[j]
					ltf := 1 + math.Log(float64(acc.tfBuf[j]))
					acc.add(d, kt.weight*ltf*kt.idf/math.Sqrt(math.Max(float64(docLens[d]), 1)))
				}
				c.blocksScored++
				scored = true
			}
			if skippedAny && !scored {
				c.termsSkipped++
			}
		case kindDirichlet:
			for {
				if b.Expired() {
					expired = true
					break
				}
				n := it.NextBlock(acc.docBuf[:], acc.tfBuf[:])
				if n == 0 {
					break
				}
				for j := 0; j < n; j++ {
					d := acc.docBuf[j]
					if kt.zero {
						acc.add(d, 0)
						continue
					}
					acc.add(d, kt.weight*math.Log(1+float64(acc.tfBuf[j])/kt.muPc))
				}
			}
		default: // kindGeneric: per-posting interface dispatch
			st := p.stats[kt.ti]
			for {
				if b.Expired() {
					expired = true
					break
				}
				n := it.NextBlock(acc.docBuf[:], acc.tfBuf[:])
				if n == 0 {
					break
				}
				for j := 0; j < n; j++ {
					d := acc.docBuf[j]
					acc.add(d, p.scorer.TermScore(st, int(acc.tfBuf[j]), int(docLens[d])))
				}
			}
		}
	}
	acc.floorK = 0
	// Drop the iterators' views into the segment blob so a pooled
	// accumulator never pins a retired segment's memory.
	clear(its)
	c.flush()
	if expired {
		putAccumulator(acc)
		return SegmentResult{}, overload.ErrDeadlineExceeded
	}
	if k <= 0 {
		k = len(acc.touched)
		if k == 0 {
			k = 1
		}
	}
	top := getTopK(k)
	candidates := 0
	for _, d := range acc.touched {
		id := seg.ExternalID(d)
		if filter != nil && !filter(id) {
			continue
		}
		candidates++
		score := acc.scores[d]
		switch p.kind {
		case kindDirichlet:
			score += p.sumW * math.Log(p.mu/(float64(docLens[d])+p.mu))
		case kindGeneric:
			score += p.scorer.DocScore(p.sumW, int(docLens[d]))
			// BM25 and TFIDF have no per-document correction; skipping the
			// +0 add is exact because accumulated scores are never -0.
		}
		top.Offer(Hit{Doc: globalID(d), ID: id, Score: score})
	}
	hits := top.AppendRanked(getHits())
	putTopK(top)
	putAccumulator(acc)
	return SegmentResult{Hits: hits, Candidates: candidates}, nil
}
