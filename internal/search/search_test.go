package search

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/index"
	"repro/internal/text"
)

// buildEngine indexes the given ext->text docs through the standard
// analyzer and returns an engine over them.
func buildEngine(t testing.TB, docs map[string]string) *Engine {
	t.Helper()
	an := text.NewAnalyzer()
	b := index.NewBuilder()
	exts := make([]string, 0, len(docs))
	for ext := range docs {
		exts = append(exts, ext)
	}
	sort.Strings(exts)
	for _, ext := range exts {
		doc := index.NewDocument(ext).AddTerms(index.FieldText, an.Terms(docs[ext])...)
		if err := b.AddDocument(doc); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(b.Build(), an)
}

func newsDocs() map[string]string {
	return map[string]string{
		"d0": "the chancellor announced the budget vote in parliament",
		"d1": "the cup final goal decided the football match",
		"d2": "football fans celebrated the second goal goal goal",
		"d3": "parliament debated the budget budget budget vote",
		"d4": "weather brings heavy snow across the north",
	}
}

func TestSearchFindsRelevantDocs(t *testing.T) {
	e := buildEngine(t, newsDocs())
	r, err := e.Search(e.ParseText("football goal"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) < 2 {
		t.Fatalf("got %d hits, want >= 2", len(r.Hits))
	}
	got := map[string]bool{}
	for _, h := range r.Hits {
		got[h.ID] = true
	}
	if !got["d1"] || !got["d2"] {
		t.Errorf("missing football docs in %v", r.IDs())
	}
	if got["d4"] {
		t.Error("weather doc matched football query")
	}
}

func TestSearchStemmingBridgesForms(t *testing.T) {
	e := buildEngine(t, map[string]string{"d0": "the goals were celebrated"})
	r, err := e.Search(e.ParseText("goal celebration"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) != 1 || r.Hits[0].ID != "d0" {
		t.Errorf("stemmed match failed: %v", r.IDs())
	}
}

func TestSearchScoresDescendingAndDeterministic(t *testing.T) {
	e := buildEngine(t, newsDocs())
	for _, scorer := range []Scorer{BM25{}, TFIDF{}, DirichletLM{}} {
		r, err := e.Search(e.ParseText("budget vote"), Options{Scorer: scorer})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(r.Hits); i++ {
			if r.Hits[i-1].Score < r.Hits[i].Score {
				t.Errorf("%s: scores not descending", scorer.Name())
			}
			if r.Hits[i-1].Score == r.Hits[i].Score && r.Hits[i-1].ID >= r.Hits[i].ID {
				t.Errorf("%s: tie not broken by ID", scorer.Name())
			}
		}
		// d3 repeats budget 3x and has vote: must beat d0.
		if len(r.Hits) >= 2 && r.Hits[0].ID != "d3" {
			t.Errorf("%s: top hit = %s, want d3", scorer.Name(), r.Hits[0].ID)
		}
		// Re-running gives the identical list.
		r2, _ := e.Search(e.ParseText("budget vote"), Options{Scorer: scorer})
		if !reflect.DeepEqual(r.Hits, r2.Hits) {
			t.Errorf("%s: non-deterministic results", scorer.Name())
		}
	}
}

func TestSearchTopKBound(t *testing.T) {
	docs := map[string]string{}
	for i := 0; i < 50; i++ {
		docs[fmt.Sprintf("d%02d", i)] = "common term appears everywhere"
	}
	e := buildEngine(t, docs)
	r, err := e.Search(e.ParseText("common term"), Options{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) != 7 {
		t.Errorf("len(hits) = %d, want 7", len(r.Hits))
	}
	if r.Candidates != 50 {
		t.Errorf("candidates = %d, want 50", r.Candidates)
	}
}

func TestSearchFilter(t *testing.T) {
	e := buildEngine(t, newsDocs())
	r, err := e.Search(e.ParseText("football goal"), Options{
		Filter: func(id string) bool { return id != "d2" },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range r.Hits {
		if h.ID == "d2" {
			t.Error("filtered doc leaked into results")
		}
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	e := buildEngine(t, newsDocs())
	r, err := e.Search(Query{}, Options{})
	if err != nil || len(r.Hits) != 0 {
		t.Errorf("empty query: %v, %v", r.Hits, err)
	}
	r, err = e.Search(e.ParseText("the of and"), Options{}) // all stopwords
	if err != nil || len(r.Hits) != 0 {
		t.Errorf("stopword query: %v, %v", r.Hits, err)
	}
}

func TestSearchRejectsNegativeWeights(t *testing.T) {
	e := buildEngine(t, newsDocs())
	q := Query{Field: index.FieldText, Terms: []WeightedTerm{{Term: "goal", Weight: -1}}}
	if _, err := e.Search(q, Options{}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestQueryWeightsInfluenceRanking(t *testing.T) {
	e := buildEngine(t, newsDocs())
	// Heavily weight "budget": d3 should dominate even vs football docs.
	q := Query{Field: index.FieldText, Terms: []WeightedTerm{
		{Term: text.Stem("budget"), Weight: 5},
		{Term: text.Stem("goal"), Weight: 0.1},
	}}
	r, err := e.Search(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hits[0].ID != "d3" {
		t.Errorf("top = %s, want d3", r.Hits[0].ID)
	}
}

func TestConceptQuery(t *testing.T) {
	an := text.NewAnalyzer()
	b := index.NewBuilder()
	d0 := index.NewDocument("s0").AddTerms(index.FieldText, "irrelevant")
	d0.SetTermCount(index.FieldConcept, "anchor_person", 9)
	d1 := index.NewDocument("s1").AddTerms(index.FieldText, "irrelevant")
	d1.SetTermCount(index.FieldConcept, "sports_venue", 8)
	for _, d := range []*index.Document{d0, d1} {
		if err := b.AddDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(b.Build(), an)
	r, err := e.Search(ConceptQuery("sports_venue"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) != 1 || r.Hits[0].ID != "s1" {
		t.Errorf("concept search = %v", r.IDs())
	}
}

func TestBM25MonotonicInTF(t *testing.T) {
	st := TermStats{N: 1000, AvgDocLen: 50, DF: 10, CF: 100, Weight: 1}
	prev := 0.0
	for tf := 1; tf <= 20; tf++ {
		s := BM25{}.TermScore(st, tf, 50)
		if s <= prev {
			t.Fatalf("BM25 not increasing at tf=%d", tf)
		}
		prev = s
	}
}

func TestBM25IDFOrdering(t *testing.T) {
	rare := TermStats{N: 1000, AvgDocLen: 50, DF: 2, Weight: 1}
	common := TermStats{N: 1000, AvgDocLen: 50, DF: 900, Weight: 1}
	if (BM25{}).TermScore(rare, 1, 50) <= (BM25{}).TermScore(common, 1, 50) {
		t.Error("rare term should outscore common term")
	}
}

func TestBM25LengthNormalisation(t *testing.T) {
	st := TermStats{N: 1000, AvgDocLen: 50, DF: 10, Weight: 1}
	short := BM25{}.TermScore(st, 2, 20)
	long := BM25{}.TermScore(st, 2, 200)
	if short <= long {
		t.Error("longer doc should be penalised at equal tf")
	}
}

func TestDirichletDocScoreNegativeForLongDocs(t *testing.T) {
	lm := DirichletLM{Mu: 100}
	if lm.DocScore(2, 50) >= lm.DocScore(2, 10) {
		t.Error("longer docs should receive more negative correction")
	}
}

// Property: BM25 scores are non-negative and finite for any sane stats.
func TestPropertyBM25Finite(t *testing.T) {
	f := func(df8, tf8, dl8 uint8) bool {
		df := 1 + int(df8)%999
		tf := 1 + int(tf8)
		dl := 1 + int(dl8)
		st := TermStats{N: 1000, AvgDocLen: 50, DF: df, Weight: 1}
		s := BM25{}.TermScore(st, tf, dl)
		return s >= 0 && !math.IsInf(s, 0) && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuseCombSUM(t *testing.T) {
	a := []Hit{{ID: "x", Score: 10}, {ID: "y", Score: 5}, {ID: "z", Score: 0}}
	b := []Hit{{ID: "y", Score: 4}, {ID: "x", Score: 2}, {ID: "w", Score: 0}}
	fused := Fuse(CombSUM{}, [][]Hit{a, b}, 10)
	if len(fused) != 4 {
		t.Fatalf("fused %d ids, want 4", len(fused))
	}
	// x: 1.0 + 0.5 = 1.5; y: 0.5 + 1.0 = 1.5; tie broken by ID: x first.
	if fused[0].ID != "x" || fused[1].ID != "y" {
		t.Errorf("order = %v", []string{fused[0].ID, fused[1].ID})
	}
}

func TestFuseCombMNZRewardsAgreement(t *testing.T) {
	a := []Hit{{ID: "both", Score: 1}, {ID: "onlyA", Score: 0.9}}
	b := []Hit{{ID: "both", Score: 1}, {ID: "onlyB", Score: 0.9}}
	fused := Fuse(CombMNZ{}, [][]Hit{a, b}, 10)
	if fused[0].ID != "both" {
		t.Errorf("top = %s, want both", fused[0].ID)
	}
}

func TestFuseBorda(t *testing.T) {
	a := []Hit{{ID: "p", Score: 3}, {ID: "q", Score: 2}, {ID: "r", Score: 1}}
	b := []Hit{{ID: "q", Score: 9}, {ID: "p", Score: 8}, {ID: "r", Score: 7}}
	fused := Fuse(Borda{}, [][]Hit{a, b}, 10)
	// p: 3+2=5, q: 2+3=5, r: 1+1=2 -> p,q tie (ID order), r last.
	if fused[2].ID != "r" {
		t.Errorf("Borda last = %s, want r", fused[2].ID)
	}
}

func TestFuseRRF(t *testing.T) {
	a := []Hit{{ID: "p", Score: 3}, {ID: "q", Score: 2}}
	b := []Hit{{ID: "q", Score: 9}, {ID: "p", Score: 8}}
	fused := Fuse(RRF{K: 1}, [][]Hit{a, b}, 10)
	// Symmetric: p and q both get 1/2+1/3; tie broken by ID.
	if fused[0].ID != "p" {
		t.Errorf("RRF top = %s", fused[0].ID)
	}
	if math.Abs(fused[0].Score-fused[1].Score) > 1e-12 {
		t.Error("symmetric ranks should tie")
	}
}

// Property: fusing a single list preserves its order.
func TestPropertyFusePreservesSingleList(t *testing.T) {
	fusers := []Fuser{CombSUM{}, CombMNZ{}, Borda{}, RRF{}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		list := make([]Hit, n)
		used := map[float64]bool{}
		for i := range list {
			s := math.Round(r.Float64()*1000) / 10
			for used[s] {
				s += 0.05
			}
			used[s] = true
			list[i] = Hit{ID: fmt.Sprintf("d%03d", i), Score: s}
		}
		sort.Slice(list, func(i, j int) bool { return hitLess(list[i], list[j]) })
		for _, fu := range fusers {
			fused := Fuse(fu, [][]Hit{list}, n)
			if len(fused) != n {
				return false
			}
			for i := range fused {
				if fused[i].ID != list[i].ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFuseEmptyInputs(t *testing.T) {
	if got := Fuse(CombSUM{}, nil, 5); len(got) != 0 {
		t.Error("fusing nothing should be empty")
	}
	if got := Fuse(CombSUM{}, [][]Hit{{}, {}}, 5); len(got) != 0 {
		t.Error("fusing empty lists should be empty")
	}
}

func TestWeightedHits(t *testing.T) {
	in := []Hit{{ID: "a", Score: 2}}
	out := WeightedHits(in, 0.5)
	if out[0].Score != 1 || in[0].Score != 2 {
		t.Error("WeightedHits must scale a copy")
	}
}

func TestRescore(t *testing.T) {
	in := []Hit{{ID: "a", Score: 1}, {ID: "b", Score: 0.9}}
	out := Rescore(in, 1.0, func(id string) float64 {
		if id == "b" {
			return 0.5
		}
		return 0
	})
	if out[0].ID != "b" {
		t.Errorf("rescore top = %s, want b", out[0].ID)
	}
	if in[0].ID != "a" {
		t.Error("Rescore mutated input")
	}
}

func TestSearchMultiField(t *testing.T) {
	an := text.NewAnalyzer()
	b := index.NewBuilder()
	d0 := index.NewDocument("s0").AddTerms(index.FieldText, an.Terms("football goal scored")...)
	d0.SetTermCount(index.FieldConcept, "sports_venue", 5)
	d1 := index.NewDocument("s1").AddTerms(index.FieldText, an.Terms("football press conference")...)
	d2 := index.NewDocument("s2").AddTerms(index.FieldText, an.Terms("budget debate")...)
	d2.SetTermCount(index.FieldConcept, "sports_venue", 5)
	for _, d := range []*index.Document{d0, d1, d2} {
		if err := b.AddDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(b.Build(), an)
	r, err := e.SearchMultiField([]Query{
		e.ParseText("football"),
		ConceptQuery("sports_venue"),
	}, Options{K: 10}, CombMNZ{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hits) == 0 || r.Hits[0].ID != "s0" {
		t.Errorf("multi-field top = %v, want s0 first", r.IDs())
	}
}

func TestTopKOfferOrderIndependent(t *testing.T) {
	hits := make([]Hit, 100)
	for i := range hits {
		hits[i] = Hit{ID: fmt.Sprintf("d%03d", i), Score: float64(i % 10)}
	}
	a := NewTopK(10)
	for _, h := range hits {
		a.Offer(h)
	}
	b := NewTopK(10)
	for i := len(hits) - 1; i >= 0; i-- {
		b.Offer(hits[i])
	}
	if !reflect.DeepEqual(a.Ranked(), b.Ranked()) {
		t.Error("topK result depends on offer order")
	}
}

func BenchmarkSearchBM25(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	docs := map[string]string{}
	words := []string{"budget", "vote", "goal", "football", "minister", "storm", "market", "shares", "hospital", "school"}
	for i := 0; i < 2000; i++ {
		n := 20 + r.Intn(40)
		var s []byte
		for j := 0; j < n; j++ {
			s = append(s, words[r.Intn(len(words))]...)
			s = append(s, ' ')
		}
		docs[fmt.Sprintf("d%04d", i)] = string(s)
	}
	e := buildEngine(b, docs)
	q := e.ParseText("budget vote football")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(q, Options{K: 50}); err != nil {
			b.Fatal(err)
		}
	}
}
