// Package search implements ranked retrieval over the inverted index:
// BM25, TF-IDF and Dirichlet language-model scoring, term-at-a-time
// query execution with a deterministic top-k, and rank fusion
// operators (CombSUM, CombMNZ, Borda, RRF) used to merge text, concept
// and personalised evidence.
package search

import "math"

// TermStats carries the collection statistics a scorer needs for one
// query term.
type TermStats struct {
	// N is the number of documents in the index.
	N int
	// AvgDocLen is the mean field length.
	AvgDocLen float64
	// TotalLen is the total token count of the field.
	TotalLen int64
	// DF and CF are the term's document and collection frequencies.
	DF int
	CF int64
	// Weight is the query-side term weight (1 for plain queries;
	// expansion terms carry fractional weights).
	Weight float64
}

// Scorer turns per-term and per-document statistics into additive
// relevance scores. Implementations must be stateless and safe for
// concurrent use.
type Scorer interface {
	// Name identifies the scorer in run metadata and experiment tables.
	Name() string
	// TermScore returns the score contribution of one matching term
	// occurrence set (tf > 0) in a document.
	TermScore(st TermStats, tf, docLen int) float64
	// DocScore returns a per-document additive correction applied once
	// per candidate document (used by language models to account for
	// unmatched query mass). sumWeights is the total query weight.
	DocScore(sumWeights float64, docLen int) float64
}

// BM25 is the Okapi BM25 ranking function.
type BM25 struct {
	// K1 controls term-frequency saturation; B controls length
	// normalisation. Zero values select the standard 1.2 / 0.75.
	K1, B float64
}

// Name implements Scorer.
func (s BM25) Name() string { return "bm25" }

func (s BM25) params() (k1, b float64) {
	k1, b = s.K1, s.B
	if k1 == 0 {
		k1 = 1.2
	}
	if b == 0 {
		b = 0.75
	}
	return k1, b
}

// TermScore implements Scorer.
func (s BM25) TermScore(st TermStats, tf, docLen int) float64 {
	k1, b := s.params()
	idf := math.Log(1 + (float64(st.N)-float64(st.DF)+0.5)/(float64(st.DF)+0.5))
	norm := k1 * (1 - b + b*float64(docLen)/math.Max(st.AvgDocLen, 1e-9))
	return st.Weight * idf * (float64(tf) * (k1 + 1)) / (float64(tf) + norm)
}

// DocScore implements Scorer (no per-document correction for BM25).
func (s BM25) DocScore(float64, int) float64 { return 0 }

// TFIDF is a classic log-tf × idf weighting with square-root length
// normalisation, the family of the vector-space systems the paper's
// era compared against.
type TFIDF struct{}

// Name implements Scorer.
func (TFIDF) Name() string { return "tfidf" }

// TermScore implements Scorer.
func (TFIDF) TermScore(st TermStats, tf, docLen int) float64 {
	if st.DF == 0 {
		return 0
	}
	idf := math.Log(float64(st.N+1) / float64(st.DF))
	ltf := 1 + math.Log(float64(tf))
	return st.Weight * ltf * idf / math.Sqrt(math.Max(float64(docLen), 1))
}

// DocScore implements Scorer.
func (TFIDF) DocScore(float64, int) float64 { return 0 }

// DirichletLM is query-likelihood retrieval with Dirichlet-prior
// smoothing.
type DirichletLM struct {
	// Mu is the smoothing mass; zero selects the standard 2000 scaled
	// down for short shot transcripts (250).
	Mu float64
}

// Name implements Scorer.
func (s DirichletLM) Name() string { return "dirichlet-lm" }

func (s DirichletLM) mu() float64 {
	if s.Mu == 0 {
		return 250
	}
	return s.Mu
}

// TermScore implements Scorer. Uses the rank-equivalent decomposition
// log(1 + tf/(mu*p(t|C))), with the document-dependent remainder in
// DocScore.
func (s DirichletLM) TermScore(st TermStats, tf, docLen int) float64 {
	if st.CF == 0 || st.TotalLen == 0 {
		return 0
	}
	pc := float64(st.CF) / float64(st.TotalLen)
	return st.Weight * math.Log(1+float64(tf)/(s.mu()*pc))
}

// DocScore implements Scorer: the |q|·log(mu/(dl+mu)) term shared by
// all query terms.
func (s DirichletLM) DocScore(sumWeights float64, docLen int) float64 {
	mu := s.mu()
	return sumWeights * math.Log(mu/(float64(docLen)+mu))
}
