package search

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/index"
	"repro/internal/text"
)

// quirkyScorer is a deliberately unknown Scorer implementation: it
// forces the kernel onto the generic (interface-dispatch) path and has
// a non-zero DocScore, so the per-candidate correction is exercised
// there too.
type quirkyScorer struct{}

func (quirkyScorer) Name() string { return "quirky" }

func (quirkyScorer) TermScore(st TermStats, tf, docLen int) float64 {
	return st.Weight * float64(tf) / float64(docLen+1) * math.Log1p(float64(st.DF))
}

func (quirkyScorer) DocScore(sumWeights float64, docLen int) float64 {
	return -0.01 * sumWeights * math.Log1p(float64(docLen))
}

// parityScorers is the kernel parity matrix: every compiled fast path
// (default and explicitly parameterised) plus the generic fallback.
func parityScorers() []Scorer {
	return []Scorer{
		BM25{}, BM25{K1: 1.6, B: 0.3},
		TFIDF{},
		DirichletLM{}, DirichletLM{Mu: 500},
		quirkyScorer{},
	}
}

// TestKernelParityWithMapOracle is the tentpole guarantee of the dense
// kernel rewrite: PrepareQuery + ScoreSegment must return bit-identical
// results — hit IDs, scores, global doc IDs, candidate counts — to the
// retired map-accumulator implementation (scoreIndexSegmentMapOracle),
// across seeds × scorers × K (bounded and unbounded) × segment counts
// × filtered/unfiltered, per segment of a sharded build.
func TestKernelParityWithMapOracle(t *testing.T) {
	evenFilter := func(id string) bool { return id[len(id)-1]%2 == 0 }
	for _, seed := range []int64{1, 2008, 77} {
		for _, segments := range []int{1, 2, 3, 8} {
			single, sh := buildCorpus(t, seed, 120, segments)
			an := text.NewAnalyzer()
			eng := NewEngine(single, an)
			for qi, qt := range queriesFor(seed, 10) {
				q := eng.ParseText(qt)
				for _, scorer := range parityScorers() {
					stats := globalStatsFor(q, sh)
					p := PrepareQuery(q, stats, scorer)
					for _, k := range []int{3, 50, 1000, -1} {
						for _, filter := range []func(string) bool{nil, evenFilter} {
							// Per segment of the sharded build (global stats,
							// local postings — exactly the fan-out contract).
							for ord := 0; ord < sh.NumSegments(); ord++ {
								seg := sh.Segment(ord)
								globalID := func(d index.DocID) index.DocID {
									return d*index.DocID(sh.NumSegments()) + index.DocID(ord)
								}
								want := scoreIndexSegmentMapOracle(seg, globalID, q, stats, scorer, filter, k)
								got := p.ScoreSegment(seg, globalID, filter, k)
								if !reflect.DeepEqual(got, want) {
									t.Fatalf("seed=%d segs=%d ord=%d q%d=%q scorer=%s k=%d filtered=%v: dense kernel diverged from map oracle\n got %+v\nwant %+v",
										seed, segments, ord, qi, qt, scorer.Name(), k, filter != nil, got.Hits, want.Hits)
								}
								// The monolithic single-index scan must agree too
								// (same stats, identity globalID) when the shard
								// count is 1.
								if segments == 1 && ord == 0 {
									ident := func(d index.DocID) index.DocID { return d }
									mono := ScoreIndexSegment(single, ident, q, stats, scorer, filter, k)
									wantMono := scoreIndexSegmentMapOracle(single, ident, q, stats, scorer, filter, k)
									if !reflect.DeepEqual(mono, wantMono) {
										t.Fatalf("seed=%d q%d scorer=%s k=%d: ScoreIndexSegment wrapper diverged from oracle",
											seed, qi, scorer.Name(), k)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestKernelParityZeroCFDirichlet pins the subtlest oracle behaviour:
// a Dirichlet term whose wire statistics carry CF == 0 contributes
// exactly zero score but still registers every posting's document as a
// candidate (the oracle's map-add of 0.0). Coherent local statistics
// never produce this shape — only hand-built or malformed wire stats
// do — which is precisely why it needs a pin.
func TestKernelParityZeroCFDirichlet(t *testing.T) {
	single, _ := buildCorpus(t, 7, 60, 1)
	eng := NewEngine(single, nil)
	q := eng.ParseText("goal storm")
	stats := globalStatsFor(q, single)
	for i := range stats {
		stats[i].CF = 0 // malformed on purpose: DF > 0, CF == 0
	}
	ident := func(d index.DocID) index.DocID { return d }
	for _, scorer := range []Scorer{DirichletLM{}, DirichletLM{Mu: 123}} {
		want := scoreIndexSegmentMapOracle(single, ident, q, stats, scorer, nil, 50)
		got := ScoreIndexSegment(single, ident, q, stats, scorer, nil, 50)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scorer=%s: zero-CF Dirichlet diverged from oracle\n got %+v\nwant %+v",
				scorer.Name(), got, want)
		}
		if got.Candidates == 0 {
			t.Fatal("zero-CF terms must still register candidates")
		}
		for _, h := range got.Hits {
			if h.Score == 0 {
				continue
			}
			// Score is the pure DocScore remainder; just ensure it is
			// finite (the zero-branch must not produce NaN/Inf).
			if math.IsNaN(h.Score) || math.IsInf(h.Score, 0) {
				t.Fatalf("zero-CF Dirichlet produced non-finite score %v", h.Score)
			}
		}
	}
}

// TestKernelEngineParityWithOracleMerge rebuilds the engine-level
// answer from oracle-scored segments (oracle per segment + TopK merge,
// the retired execution plan) and requires Engine.Search over the same
// sharded index to match bit-for-bit — the end-to-end form of the
// kernel parity claim.
func TestKernelEngineParityWithOracleMerge(t *testing.T) {
	for _, seed := range []int64{3, 2008} {
		_, sh := buildCorpus(t, seed, 150, 4)
		an := text.NewAnalyzer()
		eng := NewShardedEngine(sh, an, 4)
		for _, qt := range queriesFor(seed, 8) {
			q := eng.ParseText(qt)
			for _, scorer := range parityScorers() {
				const k = 30
				stats := globalStatsFor(q, sh)
				top := NewTopK(k)
				candidates := 0
				for ord := 0; ord < sh.NumSegments(); ord++ {
					ordinal := ord
					res := scoreIndexSegmentMapOracle(sh.Segment(ord), func(d index.DocID) index.DocID {
						return d*index.DocID(sh.NumSegments()) + index.DocID(ordinal)
					}, q, stats, scorer, nil, k)
					candidates += res.Candidates
					for _, h := range res.Hits {
						top.Offer(h)
					}
				}
				want := Results{Hits: top.Ranked(), Candidates: candidates}
				got, err := eng.Search(q, Options{K: k, Scorer: scorer})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d q=%q scorer=%s: engine diverged from oracle merge\n got %+v\nwant %+v",
						seed, qt, scorer.Name(), got.Hits, want.Hits)
				}
			}
		}
	}
}

// TestKernelParityConcurrent hammers one engine from many goroutines
// while comparing every answer against the oracle-merged ranking:
// under -race this pins that the pooled accumulators, top-k heaps and
// hit slices are never shared across concurrent scans.
func TestKernelParityConcurrent(t *testing.T) {
	_, sh := buildCorpus(t, 55, 140, 4)
	eng := NewShardedEngine(sh, text.NewAnalyzer(), 4)
	queries := queriesFor(55, 6)
	wants := make([]Results, len(queries))
	for i, qt := range queries {
		q := eng.ParseText(qt)
		stats := globalStatsFor(q, sh)
		top := NewTopK(25)
		candidates := 0
		for ord := 0; ord < sh.NumSegments(); ord++ {
			ordinal := ord
			res := scoreIndexSegmentMapOracle(sh.Segment(ord), func(d index.DocID) index.DocID {
				return d*index.DocID(sh.NumSegments()) + index.DocID(ordinal)
			}, q, stats, BM25{}, nil, 25)
			candidates += res.Candidates
			for _, h := range res.Hits {
				top.Offer(h)
			}
		}
		wants[i] = Results{Hits: top.Ranked(), Candidates: candidates}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 15; iter++ {
				for i, qt := range queries {
					got, err := eng.Search(eng.ParseText(qt), Options{K: 25})
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, wants[i]) {
						errs <- fmt.Errorf("q=%q: concurrent kernel result diverged from oracle", qt)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
