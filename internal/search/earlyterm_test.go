package search

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/index"
)

// buildSkewedIndex builds a corpus shaped so block-max pruning
// provably fires: 4096 documents (32 postings blocks for a term in
// every doc), where the first 200 documents carry the term "common"
// with tf=8 and a short document (high impact) while the rest carry it
// with tf=1 inside a longer document (low impact). Once the floor heap
// fills from the high-impact prefix, the tf=1 blocks' maxTF-derived
// bounds cannot reach it and their tf runs are skipped. A second term
// "extra" on a sparse subset exercises multi-term suffix bounds.
func buildSkewedIndex(t *testing.T) *index.Index {
	t.Helper()
	b := index.NewBuilder()
	for d := 0; d < 4096; d++ {
		doc := index.NewDocument(fmt.Sprintf("shot%04d", d))
		if d < 200 {
			doc.SetTermCount(index.FieldText, "common", 8)
		} else {
			doc.SetTermCount(index.FieldText, "common", 1)
			doc.SetTermCount(index.FieldText, "filler", 11)
		}
		if d%17 == 0 {
			doc.SetTermCount(index.FieldText, "extra", 1+d%3)
		}
		if err := b.AddDocument(doc); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestBlockMaxParityAndSkips is the early-termination acceptance pin:
// on a corpus where pruning must fire, ScoreSegment skips a nonzero
// number of postings blocks while every hit, score bit, and candidate
// count stays identical to the retired map oracle — block-max early
// termination is observable only through the telemetry counters.
func TestBlockMaxParityAndSkips(t *testing.T) {
	ix := buildSkewedIndex(t)
	ident := func(d index.DocID) index.DocID { return d }
	queries := []string{"common", "common extra", "extra common filler"}
	for _, scorer := range []Scorer{BM25{}, BM25{K1: 1.6, B: 0.3}, TFIDF{}} {
		t.Run(scorer.Name(), func(t *testing.T) {
			before := ReadKernelStats()
			for _, qt := range queries {
				q := Query{Field: index.FieldText}
				for _, term := range strings.Fields(qt) {
					q.Terms = append(q.Terms, WeightedTerm{Term: term, Weight: 1})
				}
				stats := make([]TermStats, len(q.Terms))
				for i, qterm := range q.Terms {
					stats[i] = TermStats{
						N:         ix.NumDocs(),
						AvgDocLen: ix.AvgDocLen(q.Field),
						TotalLen:  ix.TotalFieldLen(q.Field),
						DF:        ix.DocFreq(q.Field, qterm.Term),
						CF:        ix.CollectionFreq(q.Field, qterm.Term),
						Weight:    qterm.Weight,
					}
				}
				p := PrepareQuery(q, stats, scorer)
				for _, k := range []int{4, 16, 64, 5000, -1} {
					want := scoreIndexSegmentMapOracle(ix, ident, q, stats, scorer, nil, k)
					got := p.ScoreSegment(ix, ident, nil, k)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("q=%q k=%d: pruned kernel diverged from map oracle\n got %d hits %d candidates\nwant %d hits %d candidates",
							qt, k, len(got.Hits), got.Candidates, len(want.Hits), want.Candidates)
					}
					RecycleHits(got.Hits)
				}
			}
			after := ReadKernelStats()
			if after.PrunedScans == before.PrunedScans {
				t.Error("no scan ran with pruning armed")
			}
			if after.BlocksSkipped == before.BlocksSkipped {
				t.Error("block-max pruning skipped zero blocks on the skewed corpus")
			}
			if after.PostingsSkipped == before.PostingsSkipped {
				t.Error("block-max pruning skipped zero postings on the skewed corpus")
			}
		})
	}
}

// TestBlockMaxDisabledPaths pins the fail-safe preconditions: filters,
// unbounded K, Dirichlet (negative per-document correction), generic
// scorers, and hostile statistics (negative weighted IDF) must all run
// the full scan — pruning never arms.
func TestBlockMaxDisabledPaths(t *testing.T) {
	ix := buildSkewedIndex(t)
	ident := func(d index.DocID) index.DocID { return d }
	q := Query{Field: index.FieldText, Terms: []WeightedTerm{{Term: "common", Weight: 1}}}
	goodStats := []TermStats{{
		N: ix.NumDocs(), AvgDocLen: ix.AvgDocLen(q.Field), TotalLen: ix.TotalFieldLen(q.Field),
		DF: ix.DocFreq(q.Field, "common"), CF: ix.CollectionFreq(q.Field, "common"), Weight: 1,
	}}
	cases := []struct {
		name   string
		stats  []TermStats
		scorer Scorer
		filter func(string) bool
		k      int
	}{
		{"filtered", goodStats, BM25{}, func(id string) bool { return id[len(id)-1]%2 == 0 }, 16},
		{"unbounded", goodStats, BM25{}, nil, -1},
		{"dirichlet", goodStats, DirichletLM{}, nil, 16},
		{"generic", goodStats, quirkyScorer{}, nil, 16},
		// DF > N drives BM25's IDF negative: contributions are no
		// longer non-negative, so the bound math would be unsound.
		{"hostile stats", []TermStats{{
			N: 1, AvgDocLen: goodStats[0].AvgDocLen, TotalLen: goodStats[0].TotalLen,
			DF: ix.DocFreq(q.Field, "common"), CF: goodStats[0].CF, Weight: 1,
		}}, BM25{}, nil, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := ReadKernelStats()
			p := PrepareQuery(q, tc.stats, tc.scorer)
			want := scoreIndexSegmentMapOracle(ix, ident, q, tc.stats, tc.scorer, tc.filter, tc.k)
			got := p.ScoreSegment(ix, ident, tc.filter, tc.k)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("full scan diverged from map oracle")
			}
			RecycleHits(got.Hits)
			after := ReadKernelStats()
			if after.PrunedScans != before.PrunedScans {
				t.Error("pruning armed on a scan that must run unpruned")
			}
			if after.BlocksSkipped != before.BlocksSkipped {
				t.Error("blocks skipped on a scan that must run unpruned")
			}
		})
	}
}
