package search

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/index"
	"repro/internal/trace"
)

// SegmentResult is one segment's contribution to a query: its local
// top-k (already fully scored, with global doc IDs) and how many of
// its documents matched at least one query term after filtering.
type SegmentResult struct {
	Hits       []Hit
	Candidates int
}

// SegmentSearcher is one scoreable partition of the collection. The
// engine computes collection-wide term statistics once per query,
// compiles them into a PreparedQuery, and hands the same compiled
// query to every segment, so a segment never consults its own
// (partial) statistics: that contract is what keeps any composition of
// segments — in-process or behind an RPC surface — bit-identical to a
// monolithic scan. Implementations must be safe for concurrent use.
type SegmentSearcher interface {
	// NumDocs reports the segment's document count (telemetry sizing).
	NumDocs() int
	// SearchSegment scores the segment with the compiled query (which
	// carries the precomputed global term statistics), applies filter,
	// and returns the segment's k best hits. k <= 0 means "all
	// candidates" (used when a filter must be applied by the caller
	// instead). ctx carries cancellation and the query's trace (when
	// one is active); remote segments propagate both across the RPC
	// boundary, local segments may ignore it.
	SearchSegment(ctx context.Context, p *PreparedQuery, filter func(string) bool, k int) (SegmentResult, error)
}

// SegmentError reports which segment of a fan-out failed. In-process
// segments never fail; remote segments surface transport and protocol
// faults here, so callers can tell *which* backend broke.
type SegmentError struct {
	Segment int
	Err     error
}

// Error implements error.
func (e *SegmentError) Error() string {
	return fmt.Sprintf("search: segment %d: %v", e.Segment, e.Err)
}

// Unwrap exposes the underlying fault for errors.Is/As.
func (e *SegmentError) Unwrap() error { return e.Err }

// ScoreIndexSegment is the per-segment scoring kernel entry point:
// it compiles the query (PrepareQuery) and runs the dense-accumulator
// scan (PreparedQuery.ScoreSegment) over one in-memory index segment
// using the precomputed *global* term statistics, followed by the
// segment-local top-k cut. globalID converts the segment's local doc
// IDs to engine-wide IDs. Because every document lives in exactly one
// segment and term contributions accumulate in query-term order
// exactly as in the monolithic scan, per-document scores are
// bit-identical to the sequential path — and to the map-accumulator
// reference implementation the parity tests keep as an oracle. This
// one kernel executes on both sides of the process boundary — the
// in-process fan-out and the remote segment servers — which is what
// pins distributed rankings to the local ones. Callers issuing many
// segment scans for one query should PrepareQuery once and call
// ScoreSegment per segment instead.
//
// k <= 0 keeps every candidate (callers that must filter after the
// fact request the full list).
func ScoreIndexSegment(seg *index.Index, globalID func(index.DocID) index.DocID,
	q Query, stats []TermStats, scorer Scorer, filter func(string) bool, k int) SegmentResult {
	return PrepareQuery(q, stats, scorer).ScoreSegment(seg, globalID, filter, k)
}

// localSegment adapts one in-memory index segment to SegmentSearcher.
// Global IDs follow the round-robin layout index.Sharded pins down:
// global = local*stride + ordinal (stride 1, ordinal 0 for a
// monolithic index, where global == local).
type localSegment struct {
	seg     *index.Index
	ordinal int
	stride  int
}

// NumDocs implements SegmentSearcher.
func (l localSegment) NumDocs() int { return l.seg.NumDocs() }

// SearchSegment implements SegmentSearcher. In-process scoring cannot
// fail on its own, but it honours a latency budget in ctx: the kernel
// polls it per postings block and aborts with
// overload.ErrDeadlineExceeded once it is spent.
func (l localSegment) SearchSegment(ctx context.Context, p *PreparedQuery,
	filter func(string) bool, k int) (SegmentResult, error) {
	return p.ScoreSegmentContext(ctx, l.seg, l.globalID, filter, k)
}

func (l localSegment) globalID(d index.DocID) index.DocID {
	return d*index.DocID(l.stride) + index.DocID(l.ordinal)
}

// runSegment executes one segment and reports its telemetry; the
// observed duration covers the full segment call, so for a remote
// segment it includes the RPC round trip. When the query is traced,
// each segment gets one "segment" span (a remote segment grafts the
// backend's echoed server-side tree under it).
func (e *Engine) runSegment(ctx context.Context, i int, p *PreparedQuery,
	filter func(string) bool, k int) segmentOutcome {
	ctx, sp := trace.StartSpan(ctx, "segment")
	if sp != nil {
		sp.SetAttr("ordinal", strconv.Itoa(i))
	}
	start := time.Now()
	res, err := e.segs[i].SearchSegment(ctx, p, filter, k)
	sp.End()
	if err != nil {
		return segmentOutcome{err: err}
	}
	if e.obs != nil {
		e.obs(i, res.Candidates, time.Since(start))
	}
	return segmentOutcome{res: res}
}

// segmentOutcome is one segment's execution result inside a fan-out.
type segmentOutcome struct {
	res SegmentResult
	err error
}
