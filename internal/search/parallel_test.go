package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/text"
)

// buildCorpus builds the same random document stream into one single
// index and one n-segment sharded index.
func buildCorpus(t testing.TB, seed int64, docs, segments int) (*index.Index, *index.Sharded) {
	t.Helper()
	vocab := []string{
		"goal", "match", "referee", "vote", "budget", "storm", "flood",
		"anthem", "strike", "summit", "crowd", "stadium", "election",
	}
	gen := func(add func(*index.Document) error) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < docs; i++ {
			d := index.NewDocument(fmt.Sprintf("s%04d", i))
			for j := 0; j < 2+rng.Intn(12); j++ {
				d.AddTerms(index.FieldText, vocab[rng.Intn(len(vocab))])
			}
			if rng.Intn(3) == 0 {
				d.SetTermCount(index.FieldConcept, vocab[rng.Intn(len(vocab))], 1+rng.Intn(9))
			}
			if err := add(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	sb := index.NewBuilder()
	gen(sb.AddDocument)
	shb := index.NewShardedBuilder(segments)
	gen(shb.AddDocument)
	sh, err := shb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sb.Build(), sh
}

// queriesFor draws random multi-term queries from the corpus vocabulary.
func queriesFor(seed int64, n int) []string {
	vocab := []string{"goal", "match", "vote", "storm", "anthem", "summit", "crowd", "election", "missing"}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		q := vocab[rng.Intn(len(vocab))]
		for j := 0; j < rng.Intn(3); j++ {
			q += " " + vocab[rng.Intn(len(vocab))]
		}
		out[i] = q
	}
	return out
}

// TestParallelScoreParity is the engine-level parity guarantee: the
// sharded parallel executor must return bit-identical rankings
// (IDs, scores, and global doc ids) to the sequential single-index
// scan, across seeds, scorers, segment counts and K.
func TestParallelScoreParity(t *testing.T) {
	scorers := []Scorer{BM25{}, TFIDF{}, DirichletLM{}}
	for _, seed := range []int64{1, 2008, 77} {
		for _, segments := range []int{2, 3, 8} {
			single, sh := buildCorpus(t, seed, 120, segments)
			an := text.NewAnalyzer()
			seq := NewEngine(single, an)
			par := NewShardedEngine(sh, an, 4)
			for qi, qt := range queriesFor(seed, 12) {
				for _, scorer := range scorers {
					for _, k := range []int{5, 50, 1000} {
						opts := Options{K: k, Scorer: scorer}
						want, err := seq.Search(seq.ParseText(qt), opts)
						if err != nil {
							t.Fatal(err)
						}
						got, err := par.Search(par.ParseText(qt), opts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("seed=%d segs=%d q%d=%q scorer=%s k=%d: parallel ranking diverged\n got %+v\nwant %+v",
								seed, segments, qi, qt, scorer.Name(), k, got.Hits, want.Hits)
						}
					}
				}
			}
		}
	}
}

// TestParallelMatchesSequentialExecutionOfSameSegments pins down that
// the worker-pool path and the in-order path over the *same* sharded
// index agree (executor parity, independent of index construction).
func TestParallelMatchesSequentialExecutionOfSameSegments(t *testing.T) {
	_, sh := buildCorpus(t, 5, 90, 4)
	an := text.NewAnalyzer()
	par := NewShardedEngine(sh, an, 8)
	seq := NewShardedEngine(sh, an, 1)
	for _, qt := range queriesFor(5, 10) {
		want, err := seq.Search(seq.ParseText(qt), Options{K: 30})
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Search(par.ParseText(qt), Options{K: 30})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("q=%q: worker-pool result differs from in-order result", qt)
		}
	}
}

func TestParallelFilterAndConceptField(t *testing.T) {
	single, sh := buildCorpus(t, 9, 100, 3)
	an := text.NewAnalyzer()
	seq := NewEngine(single, an)
	par := NewShardedEngine(sh, an, 3)
	filter := func(id string) bool { return id[len(id)-1]%2 == 0 }
	want, err := seq.Search(seq.ParseText("goal storm"), Options{K: 40, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.Search(par.ParseText("goal storm"), Options{K: 40, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("filtered parallel ranking diverged")
	}
	wantC, err := seq.Search(ConceptQuery("crowd", "stadium"), Options{K: 40})
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := par.Search(ConceptQuery("crowd", "stadium"), Options{K: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatal("concept-field parallel ranking diverged")
	}
}

// TestParallelSearchConcurrent exercises the fan-out under the race
// detector: many goroutines searching one sharded engine at once.
func TestParallelSearchConcurrent(t *testing.T) {
	_, sh := buildCorpus(t, 13, 150, 4)
	eng := NewShardedEngine(sh, text.NewAnalyzer(), 4)
	want, err := eng.Search(eng.ParseText("goal vote"), Options{K: 25})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := eng.Search(eng.ParseText("goal vote"), Options{K: 25})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("concurrent search diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSegmentObserver(t *testing.T) {
	_, sh := buildCorpus(t, 21, 60, 3)
	eng := NewShardedEngine(sh, text.NewAnalyzer(), 2)
	var mu sync.Mutex
	seen := make(map[int]int)
	total := 0
	eng.SetSegmentObserver(func(segment, candidates int, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for segment %d", segment)
		}
		mu.Lock()
		seen[segment]++
		total += candidates
		mu.Unlock()
	})
	res, err := eng.Search(eng.ParseText("goal"), Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != eng.NumSegments() {
		t.Fatalf("observer saw %d segments, want %d", len(seen), eng.NumSegments())
	}
	if total != res.Candidates {
		t.Errorf("observer candidates %d != result candidates %d", total, res.Candidates)
	}
}

// failingSegment simulates a remote segment backend that errors.
type failingSegment struct {
	inner SegmentSearcher
	err   error
}

func (f failingSegment) NumDocs() int { return f.inner.NumDocs() }

func (f failingSegment) SearchSegment(ctx context.Context, p *PreparedQuery,
	filter func(string) bool, k int) (SegmentResult, error) {
	if f.err != nil {
		return SegmentResult{}, f.err
	}
	return f.inner.SearchSegment(ctx, p, filter, k)
}

// wrapSegments adapts a sharded index into the SegmentSearcher form a
// custom (e.g. remote) composition would use.
func wrapSegments(sh *index.Sharded) []SegmentSearcher {
	segs := make([]SegmentSearcher, sh.NumSegments())
	for i := range segs {
		segs[i] = localSegment{seg: sh.Segment(i), ordinal: i, stride: sh.NumSegments()}
	}
	return segs
}

// TestSegmentsEngineParity pins that an engine assembled through the
// custom-segment constructor (the distributed merge tier's path) is
// bit-identical to the built-in sharded engine.
func TestSegmentsEngineParity(t *testing.T) {
	_, sh := buildCorpus(t, 41, 90, 3)
	an := text.NewAnalyzer()
	builtin := NewShardedEngine(sh, an, 3)
	custom := NewSegmentsEngine(sh, wrapSegments(sh), an, 3)
	for _, qt := range queriesFor(41, 8) {
		want, err := builtin.Search(builtin.ParseText(qt), Options{K: 30})
		if err != nil {
			t.Fatal(err)
		}
		got, err := custom.Search(custom.ParseText(qt), Options{K: 30})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("q=%q: custom-segment engine diverged", qt)
		}
	}
}

// TestSegmentErrorPropagation: a failing segment yields a typed
// *SegmentError naming the lowest failed ordinal, never a partial
// ranking — on both the sequential and the worker-pool path.
func TestSegmentErrorPropagation(t *testing.T) {
	_, sh := buildCorpus(t, 43, 80, 4)
	boom := fmt.Errorf("backend unplugged")
	for _, workers := range []int{1, 4} {
		segs := wrapSegments(sh)
		segs[2] = failingSegment{inner: segs[2], err: boom}
		eng := NewSegmentsEngine(sh, segs, nil, workers)
		_, err := eng.Search(eng.ParseText("goal vote"), Options{K: 10})
		if err == nil {
			t.Fatalf("workers=%d: failing segment produced a ranking", workers)
		}
		var se *SegmentError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: error %v (%T) is not *SegmentError", workers, err, err)
		}
		if se.Segment != 2 {
			t.Errorf("workers=%d: blamed segment %d, want 2", workers, se.Segment)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: cause not preserved through Unwrap", workers)
		}
	}
}

// TestScoreIndexSegmentUnboundedK: k <= 0 returns every candidate in
// rank order (the path a filtered remote query takes).
func TestScoreIndexSegmentUnboundedK(t *testing.T) {
	single, _ := buildCorpus(t, 47, 70, 2)
	eng := NewEngine(single, nil)
	q := eng.ParseText("goal storm vote")
	stats := make([]TermStats, len(q.Terms))
	for i, term := range q.Terms {
		stats[i] = TermStats{
			N: single.NumDocs(), AvgDocLen: single.AvgDocLen(q.Field),
			TotalLen: single.TotalFieldLen(q.Field),
			DF:       single.DocFreq(q.Field, term.Term),
			CF:       single.CollectionFreq(q.Field, term.Term),
			Weight:   term.Weight,
		}
	}
	ident := func(d index.DocID) index.DocID { return d }
	all := ScoreIndexSegment(single, ident, q, stats, BM25{}, nil, -1)
	if len(all.Hits) != all.Candidates {
		t.Fatalf("unbounded k kept %d of %d candidates", len(all.Hits), all.Candidates)
	}
	cut := ScoreIndexSegment(single, ident, q, stats, BM25{}, nil, 10)
	if !reflect.DeepEqual(all.Hits[:len(cut.Hits)], cut.Hits) {
		t.Fatal("bounded result is not a prefix of the unbounded ranking")
	}
}

func TestShardedEngineStats(t *testing.T) {
	single, sh := buildCorpus(t, 31, 40, 4)
	seq := NewEngine(single, nil)
	par := NewShardedEngine(sh, nil, 0)
	if par.Index() != nil {
		t.Error("sharded engine leaked a single-index view")
	}
	if seq.Index() == nil {
		t.Error("single engine hid its index")
	}
	if par.NumDocs() != seq.NumDocs() {
		t.Errorf("NumDocs %d vs %d", par.NumDocs(), seq.NumDocs())
	}
	if par.DocFreq(index.FieldText, "goal") != seq.DocFreq(index.FieldText, "goal") {
		t.Error("aggregated DocFreq mismatch")
	}
	if par.Workers() <= 0 {
		t.Error("workers not defaulted")
	}
	if d, ok := par.DocIDOf("s0007"); !ok || single.ExternalID(d) != "s0007" {
		t.Errorf("DocIDOf mismatch: %d %v", d, ok)
	}
}
