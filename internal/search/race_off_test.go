//go:build !race

package search

// raceEnabled reports whether the race detector instrumented this
// build. Allocation-budget assertions only run without it: race
// instrumentation defeats escape analysis in ways that charge extra
// allocations to code that is allocation-free in production builds.
const raceEnabled = false
