package search

import (
	"testing"

	"repro/internal/index"
	"repro/internal/text"
)

// BenchmarkScoreSegment is the kernel micro-benchmark behind
// BENCH_kernel.json: one segment scan per iteration, per scorer, with
// the dense pooled kernel ("dense") against the retired map-accumulator
// implementation ("map"), so the trajectory file can quote a direct
// before/after for the exact function the fan-out executes.
func BenchmarkScoreSegment(b *testing.B) {
	single, _ := buildCorpus(b, 2008, 2000, 1)
	eng := NewEngine(single, text.NewAnalyzer())
	q := eng.ParseText("goal storm vote election crowd")
	stats := globalStatsFor(q, single)
	ident := func(d index.DocID) index.DocID { return d }
	for _, scorer := range []Scorer{BM25{}, TFIDF{}, DirichletLM{}} {
		b.Run(scorer.Name()+"/dense", func(b *testing.B) {
			p := PrepareQuery(q, stats, scorer)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := p.ScoreSegment(single, ident, nil, 100)
				RecycleHits(res.Hits)
			}
		})
		b.Run(scorer.Name()+"/dense-compile", func(b *testing.B) {
			// Compile included: the shape one full query pays.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := ScoreIndexSegment(single, ident, q, stats, scorer, nil, 100)
				RecycleHits(res.Hits)
			}
		})
		b.Run(scorer.Name()+"/map", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scoreIndexSegmentMapOracle(single, ident, q, stats, scorer, nil, 100)
			}
		})
	}
}
