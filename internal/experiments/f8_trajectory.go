package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// SessionAdaptation (F8) operationalises the paper's §1 claim that an
// adaptive model "can be useful to significantly reduce the number of
// steps the user has to perform before he retrieves satisfying search
// results": per-iteration metric trajectories for the baseline (flat —
// same query, same ranking) vs the combined adaptive system (rising),
// plus the mean iterations until a relevant shot tops the list.
func SessionAdaptation(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	type traj struct {
		perIter []eval.Metrics // means per iteration
		toFirst float64        // mean iterations to Success@1 (penalised at max+1)
	}
	run := func(cfg core.Config, seedOff int64) (traj, error) {
		sums := make([]eval.Metrics, p.Iterations)
		counts := make([]int, p.Iterations)
		var toFirstSum float64
		var sessions int
		sys, err := c.system(cfg)
		if err != nil {
			return traj{}, err
		}
		seq := 0
		for _, topic := range c.topics {
			for ui2, user := range c.users {
				sim, err := simulation.New(c.arch, sys, ui.Desktop(), user.Stereotype,
					p.Seed+seedOff+int64(seq)*61)
				if err != nil {
					return traj{}, err
				}
				sr, err := sim.RunSession(fmt.Sprintf("f8-%02d-%02d", topic.ID, ui2), nil, topic, p.Iterations)
				if err != nil {
					return traj{}, err
				}
				seq++
				sessions++
				first := float64(p.Iterations + 1)
				for it, m := range sr.PerIteration {
					if it < p.Iterations {
						sums[it] = addMetrics(sums[it], m)
						counts[it]++
					}
					if m.Success1 > 0 && float64(it+1) < first {
						first = float64(it + 1)
					}
				}
				toFirstSum += first
			}
		}
		out := traj{perIter: make([]eval.Metrics, p.Iterations)}
		for i := range sums {
			if counts[i] > 0 {
				out.perIter[i] = divMetrics(sums[i], float64(counts[i]))
			}
		}
		if sessions > 0 {
			out.toFirst = toFirstSum / float64(sessions)
		}
		return out, nil
	}
	base, err := run(core.Config{}, 801)
	if err != nil {
		return nil, err
	}
	adapt, err := run(core.Config{UseProfile: true, UseImplicit: true}, 801)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "F8",
		Title:  "Adaptation over session iterations (P@10 / R@100 trajectories)",
		Header: []string{"iteration", "base P@10", "adapt P@10", "base R@100", "adapt R@100"},
	}
	for it := 0; it < p.Iterations; it++ {
		table.AddRow(itoa(it+1),
			f3(base.perIter[it].P10), f3(adapt.perIter[it].P10),
			f3(base.perIter[it].R100), f3(adapt.perIter[it].R100))
	}
	table.AddNote("mean iterations to first relevant-at-rank-1: base %.2f vs adaptive %.2f (lower is better)",
		base.toFirst, adapt.toFirst)
	gapFirst := adapt.perIter[0].P10 - base.perIter[0].P10
	gapLast := adapt.perIter[p.Iterations-1].P10 - base.perIter[p.Iterations-1].P10
	table.AddNote("P@10 gap grows with iterations: first %+0.3f vs last %+0.3f (expected widening)", gapFirst, gapLast)
	return table, nil
}

func addMetrics(a, b eval.Metrics) eval.Metrics {
	a.AP += b.AP
	a.RR += b.RR
	a.NDCG10 += b.NDCG10
	a.P5 += b.P5
	a.P10 += b.P10
	a.P20 += b.P20
	a.R10 += b.R10
	a.R100 += b.R100
	a.Bpref += b.Bpref
	a.Success1 += b.Success1
	a.Success5 += b.Success5
	a.Success10 += b.Success10
	return a
}

func divMetrics(a eval.Metrics, n float64) eval.Metrics {
	a.AP /= n
	a.RR /= n
	a.NDCG10 /= n
	a.P5 /= n
	a.P10 /= n
	a.P20 /= n
	a.R10 /= n
	a.R100 /= n
	a.Bpref /= n
	a.Success1 /= n
	a.Success5 /= n
	a.Success10 /= n
	return a
}
