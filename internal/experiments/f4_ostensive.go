package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/feedback"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// OstensiveDecay (F4) reproduces the ostensive-model motivation
// (Campbell & van Rijsbergen): the user's need drifts mid-session from
// topic A to topic B; evidence from the A phase pollutes adaptation
// unless discounted. Sweeping the half-life should give an inverted-U:
// very fast decay forgets useful fresh evidence, no decay drags stale
// interest into the drifted phase.
func OstensiveDecay(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	if len(c.topics) < 2 {
		return nil, fmt.Errorf("experiments: F4 needs >= 2 topics")
	}
	halfLives := []float64{0.5, 1, 2, 4, 8, math.Inf(1)}
	table := &Table{
		ID:     "F4",
		Title:  "Ostensive decay half-life vs post-drift MAP (need shifts topic mid-session)",
		Header: []string{"half-life (steps)", "MAP(topic B phase)", "P@10"},
	}
	// Evidence is deliberately scarce (few examinations and clicks per
	// iteration): with plentiful per-step evidence the freshest step
	// alone suffices and decay can only help; scarcity is what makes
	// multi-step accumulation — and hence the decay trade-off — real.
	scarce := simulation.Casual()
	scarce.Name = "scarce"
	scarce.Patience = 4
	scarce.ClickRel = 0.12
	scarce.ClickNonRel = 0.03
	best, bestHL := -1.0, 0.0
	var first, last float64
	for hi, hl := range halfLives {
		var scheme feedback.Scheme
		label := fmt.Sprintf("%g", hl)
		if math.IsInf(hl, 1) {
			scheme = feedback.DefaultGraded() // no decay
			label = "no decay"
		} else {
			ost, err := feedback.NewOstensive(feedback.DefaultGraded(), hl)
			if err != nil {
				return nil, err
			}
			scheme = ost
		}
		sys, err := c.system(core.Config{UseImplicit: true, Scheme: scheme})
		if err != nil {
			return nil, err
		}
		var ms []eval.Metrics
		seq := 0
		for ti := range c.topics {
			topicA := c.topics[ti]
			topicB := c.topics[(ti+1)%len(c.topics)]
			for ui2 := range c.users {
				sim, err := simulation.New(c.arch, sys, ui.Desktop(), scarce,
					p.Seed+401+int64(seq)*131)
				if err != nil {
					return nil, err
				}
				sid := fmt.Sprintf("f4-h%d-t%02d-u%02d", hi, ti, ui2)
				sr, err := sim.RunDriftSession(sid, nil, topicA, topicB, p.Iterations, p.Iterations)
				if err != nil {
					return nil, err
				}
				seq++
				ms = append(ms, sr.Final)
			}
		}
		m := eval.Mean(ms)
		table.AddRow(label, f3(m.AP), f3(m.P10))
		if m.AP > best {
			best, bestHL = m.AP, hl
		}
		if hi == 0 {
			first = m.AP
		}
		last = m.AP
	}
	interior := !math.IsInf(bestHL, 1) && bestHL > halfLives[0]
	table.AddNote("best half-life: %g (MAP %.3f); inverted-U (interior optimum beats both extremes): %v",
		bestHL, best, interior && best >= first && best >= last)
	return table, nil
}
