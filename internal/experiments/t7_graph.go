package experiments

import (
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/feedback"
	"repro/internal/ilog"
	"repro/internal/recommend"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// ImplicitGraph (T7) reproduces the Vallet et al. findings the paper
// summarises ("the performance of the users in retrieving relevant
// videos improved, and users were able to explore the collection to a
// greater extent"): a community graph is mined from a training
// population's logs, then a cold-start user's query is answered (a) by
// plain search and (b) by graph recommendation; the graph should raise
// early precision and surface relevant shots plain search misses.
func ImplicitGraph(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	sys, err := c.system(core.Config{UseImplicit: true})
	if err != nil {
		return nil, err
	}
	// Training population interacts; their logs build the graph.
	study, err := simulation.RunStudy(c.arch, sys, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+701)
	if err != nil {
		return nil, err
	}
	graph, err := buildGraph(c, study)
	if err != nil {
		return nil, err
	}

	table := &Table{
		ID:     "T7",
		Title:  "Community implicit graph vs plain search (cold-start users)",
		Header: []string{"approach", "P@10", "MRR", "relevant found@10", "distinct shots surfaced"},
	}
	var searchMs, graphMs []eval.Metrics
	searchSurfaced := map[string]bool{}
	graphSurfaced := map[string]bool{}
	searchRelFound, graphRelFound := 0, 0
	for _, topic := range c.topics {
		judg := c.judgments(topic.ID)
		res, err := sys.SearchOnce(topic.Query)
		if err != nil {
			return nil, err
		}
		searchIDs := res.IDs()
		if len(searchIDs) > 10 {
			searchIDs = searchIDs[:10]
		}
		searchMs = append(searchMs, eval.Compute(searchIDs, judg))
		for _, id := range searchIDs {
			searchSurfaced[id] = true
			if judg[id] >= 1 {
				searchRelFound++
			}
		}
		recs, err := graph.RecommendShots(
			[]recommend.Seed{{Node: recommend.QueryNode(topic.Query), Mass: 1}},
			recommend.Options{K: 10})
		if err != nil {
			return nil, err
		}
		recIDs := make([]string, len(recs))
		for i, r := range recs {
			recIDs[i] = r.ShotID
			graphSurfaced[r.ShotID] = true
			if judg[r.ShotID] >= 1 {
				graphRelFound++
			}
		}
		graphMs = append(graphMs, eval.Compute(recIDs, judg))
	}
	sm, gm := eval.Mean(searchMs), eval.Mean(graphMs)
	table.AddRow("plain search", f3(sm.P10), f3(sm.RR), itoa(searchRelFound), itoa(len(searchSurfaced)))
	table.AddRow("implicit graph", f3(gm.P10), f3(gm.RR), itoa(graphRelFound), itoa(len(graphSurfaced)))
	newRel := 0
	for _, topic := range c.topics {
		judg := c.judgments(topic.ID)
		recs, err := graph.RecommendShots(
			[]recommend.Seed{{Node: recommend.QueryNode(topic.Query), Mass: 1}},
			recommend.Options{K: 10})
		if err != nil {
			return nil, err
		}
		res, err := sys.SearchOnce(topic.Query)
		if err != nil {
			return nil, err
		}
		inSearch := map[string]bool{}
		for i, id := range res.IDs() {
			if i >= 10 {
				break
			}
			inSearch[id] = true
		}
		for _, r := range recs {
			if judg[r.ShotID] >= 1 && !inSearch[r.ShotID] {
				newRel++
			}
		}
	}
	table.AddNote("graph surfaced %d relevant shots absent from search's top-10 (exploration gain)", newRel)
	table.AddNote("graph P@10 %.3f vs search %.3f (Vallet shape: graph helps early precision)", gm.P10, sm.P10)
	table.AddNote("graph nodes=%d edges=%d from %d sessions", graph.NumNodes(), graph.NumEdges(), len(study.Sessions))
	return table, nil
}

// GraphAlgorithms (T7a) ablates the recommendation traversal: local
// spreading activation (the Vallet-style original) against global
// personalised PageRank over the identical community graph.
func GraphAlgorithms(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	sys, err := c.system(core.Config{UseImplicit: true})
	if err != nil {
		return nil, err
	}
	study, err := simulation.RunStudy(c.arch, sys, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+701)
	if err != nil {
		return nil, err
	}
	graph, err := buildGraph(c, study)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "T7a",
		Title:  "Graph traversal ablation: spreading activation vs personalised PageRank",
		Header: []string{"algorithm", "P@10", "MRR", "nDCG@10"},
	}
	type recommender struct {
		name string
		rec  func(query string) ([]recommend.Scored, error)
	}
	algos := []recommender{
		{"spreading activation", func(q string) ([]recommend.Scored, error) {
			return graph.RecommendShots(
				[]recommend.Seed{{Node: recommend.QueryNode(q), Mass: 1}},
				recommend.Options{K: 10})
		}},
		{"personalised pagerank", func(q string) ([]recommend.Scored, error) {
			return graph.RecommendShotsPPR(
				[]recommend.Seed{{Node: recommend.QueryNode(q), Mass: 1}},
				recommend.Options{K: 10}, recommend.PPROptions{})
		}},
	}
	for _, algo := range algos {
		var ms []eval.Metrics
		for _, topic := range c.topics {
			judg := c.judgments(topic.ID)
			recs, err := algo.rec(topic.Query)
			if err != nil {
				return nil, err
			}
			ids := make([]string, len(recs))
			for i, r := range recs {
				ids[i] = r.ShotID
			}
			ms = append(ms, eval.Compute(ids, judg))
		}
		m := eval.Mean(ms)
		table.AddRow(algo.name, f3(m.P10), f3(m.RR), f3(m.NDCG10))
	}
	table.AddNote("both traversals run on the identical graph (%d nodes, %d edges)", graph.NumNodes(), graph.NumEdges())
	return table, nil
}

// buildGraph folds a study's logs into a community graph: per session,
// evidence mass per shot under the graded scheme, shots ordered by
// first click.
func buildGraph(c *context, study *simulation.StudyResult) (*recommend.Graph, error) {
	graph := recommend.NewGraph()
	_, groups := ilog.BySession(study.Events)
	for _, sr := range study.Sessions {
		events := groups[sr.SessionID]
		acc := feedback.NewAccumulator(feedback.DefaultGraded())
		var order []string
		seen := map[string]bool{}
		var query, user string
		for _, e := range events {
			if e.Action == ilog.ActionQuery {
				query = e.Query
				user = e.UserID
				continue
			}
			shot := c.arch.Collection.Shot(collection.ShotID(e.ShotID))
			secs := 0.0
			if shot != nil {
				secs = shot.Duration.Seconds()
			}
			if ev, ok := feedback.FromEvent(e, secs); ok {
				if err := acc.Observe(ev); err != nil {
					return nil, err
				}
				if e.Action == ilog.ActionClickKeyframe && !seen[e.ShotID] {
					seen[e.ShotID] = true
					order = append(order, e.ShotID)
				}
			}
		}
		mass := acc.Mass()
		var weighted []recommend.WeightedShot
		for _, id := range order {
			if mass[id] > 0 {
				weighted = append(weighted, recommend.WeightedShot{ShotID: id, Mass: mass[id]})
			}
		}
		if len(weighted) == 0 {
			continue
		}
		if err := graph.ObserveSession(user, query, weighted); err != nil {
			return nil, err
		}
	}
	return graph, nil
}
