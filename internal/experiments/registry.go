package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment at the given scale.
type Runner func(Params) (*Table, error)

// entry pairs a runner with its catalogue metadata.
type entry struct {
	id     string
	title  string
	runner Runner
}

// catalogue lists every experiment in DESIGN.md order.
var catalogue = []entry{
	{"T1", "System comparison: baseline / profile / implicit / combined", SystemComparison},
	{"T1a", "Combined-system alpha x beta ablation", T1Ablation},
	{"T2", "Per-indicator value (RQ1)", IndicatorValue},
	{"T3", "Feature weighting schemes (RQ2)", WeightingSchemes},
	{"T3a", "Expansion-term count ablation", T3Ablation},
	{"F4", "Ostensive decay half-life sweep", OstensiveDecay},
	{"T5", "Desktop vs interactive TV environments", Environments},
	{"F6", "Dwell-time reliability across task types", DwellReliability},
	{"T7", "Community implicit graph recommendation", ImplicitGraph},
	{"T7a", "Graph traversal ablation: spreading activation vs PPR", GraphAlgorithms},
	{"F8", "Adaptation trajectory over session iterations", SessionAdaptation},
	{"T9", "ASR word-error-rate sensitivity", ASRSensitivity},
	{"T10", "Concept-detector accuracy sweep", ConceptAccuracy},
	{"T11", "Simulation fidelity (Kendall tau)", SimulationFidelity},
}

// IDs returns the experiment identifiers in catalogue order.
func IDs() []string {
	out := make([]string, len(catalogue))
	for i, e := range catalogue {
		out[i] = e.id
	}
	return out
}

// Title returns an experiment's catalogue title.
func Title(id string) (string, error) {
	for _, e := range catalogue {
		if e.id == id {
			return e.title, nil
		}
	}
	return "", fmt.Errorf("experiments: unknown experiment %q", id)
}

// Run executes one experiment by ID.
func Run(id string, p Params) (*Table, error) {
	for _, e := range catalogue {
		if e.id == id {
			return e.runner(p)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, known)
}

// RunAll executes the full catalogue, returning tables in order. It
// stops at the first failure.
func RunAll(p Params) ([]*Table, error) {
	out := make([]*Table, 0, len(catalogue))
	for _, e := range catalogue {
		t, err := e.runner(p)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.id, err)
		}
		out = append(out, t)
	}
	return out, nil
}
