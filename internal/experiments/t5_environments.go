package experiments

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// Environments (T5) contrasts the two interaction environments of §3:
// the same users and topics run through the desktop and the TV
// interface models. Expected shape: desktop sessions emit several
// times more implicit events and gain more from implicit adaptation;
// TV recovers part of the gap through cheap explicit ratings while
// paying a much higher per-query effort.
func Environments(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "T5",
		Title: "Interaction environments: desktop vs interactive TV",
		Header: []string{
			"environment", "implicit/sess", "explicit/sess", "queries/sess",
			"MAP(first)", "MAP(final)", "adaptation gain",
		},
	}
	type envResult struct {
		implicit, explicit float64
		gain               float64
	}
	results := map[string]envResult{}
	pairs := simulation.AlignedPairs(c.topics, p.Users)
	for _, iface := range ui.Environments() {
		sys, err := c.system(core.Config{UseProfile: true, UseImplicit: true})
		if err != nil {
			return nil, err
		}
		study, err := simulation.RunStudyPairs(c.arch, sys, iface, pairs, p.Iterations, p.Seed+501)
		if err != nil {
			return nil, err
		}
		stats := ilog.AnalyzeSessions(study.Events)
		implicit, explicit, queries := ilog.MeanEventsPerSession(stats)
		gain := eval.RelImprovement(study.MeanFirst.AP, study.MeanFinal.AP)
		results[iface.Name] = envResult{implicit: implicit, explicit: explicit, gain: gain}
		table.AddRow(iface.Name,
			f1(implicit), f1(explicit), f1(queries),
			f3(study.MeanFirst.AP), f3(study.MeanFinal.AP), pct(gain))
	}
	d, tv := results["desktop"], results["tv"]
	ratio := 0.0
	if tv.implicit > 0 {
		ratio = d.implicit / tv.implicit
	}
	table.AddNote("desktop emits %.1fx the implicit evidence of tv (expected x3-x10)", ratio)
	table.AddNote("tv leans on explicit ratings: %.1f/session vs desktop %.1f (expected tv >> desktop)",
		tv.explicit, d.explicit)
	table.AddNote("desktop adaptation gain %s vs tv %s (expected desktop >= tv)", pct(d.gain), pct(tv.gain))
	return table, nil
}
