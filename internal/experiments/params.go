package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simulation"
	"repro/internal/synth"
)

// Params scales an experiment run. Every runner is deterministic in
// its Params value.
type Params struct {
	// Seed drives archive generation and all simulations.
	Seed int64
	// Archive is the synthetic collection configuration.
	Archive synth.Config
	// Users is the simulated participant count.
	Users int
	// Topics caps how many search topics are evaluated (0 = all).
	Topics int
	// Iterations is the query cycles per session.
	Iterations int
}

// Default returns the full-scale parameters used for EXPERIMENTS.md.
func Default() Params {
	return Params{
		Seed:       2008,
		Archive:    synth.DefaultConfig(),
		Users:      6,
		Topics:     0,
		Iterations: 4,
	}
}

// Quick returns reduced parameters for tests and smoke runs.
func Quick() Params {
	return Params{
		Seed:       2008,
		Archive:    synth.TinyConfig(),
		Users:      3,
		Topics:     6,
		Iterations: 3,
	}
}

// validate rejects unusable parameter sets.
func (p Params) validate() error {
	if p.Users <= 0 {
		return fmt.Errorf("experiments: Users must be positive")
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("experiments: Iterations must be positive")
	}
	if p.Topics < 0 {
		return fmt.Errorf("experiments: negative Topics")
	}
	return nil
}

// context is the shared setup most runners need.
type context struct {
	p      Params
	arch   *synth.Archive
	topics []*synth.SearchTopic
	users  []*simulation.StudyUser
}

// setup generates the archive and the participant population.
func setup(p Params) (*context, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	arch, err := synth.Generate(p.Archive, p.Seed)
	if err != nil {
		return nil, err
	}
	topics := arch.Truth.SearchTopics
	if p.Topics > 0 && p.Topics < len(topics) {
		topics = topics[:p.Topics]
	}
	return &context{
		p:      p,
		arch:   arch,
		topics: topics,
		users:  simulation.MakeUsers(p.Users),
	}, nil
}

// system builds an adaptive system over the context's archive.
func (c *context) system(cfg core.Config) (*core.System, error) {
	return core.NewSystemFromCollection(c.arch.Collection, cfg)
}

// judgments converts one topic's qrels.
func (c *context) judgments(topicID int) eval.Judgments {
	j := eval.Judgments{}
	for shot, g := range c.arch.Truth.Qrels[topicID] {
		j[string(shot)] = g
	}
	return j
}

// apVector flattens a per-topic AP map into a vector ordered by topic
// ID, aligned across systems for paired significance tests.
func apVector(perTopic map[int]float64) []float64 {
	ids := make([]int, 0, len(perTopic))
	for id := range perTopic {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = perTopic[id]
	}
	return out
}
