package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/search"
	"repro/internal/synth"
)

// ConceptAccuracy (T10) sweeps simulated concept-detector quality,
// reproducing the paper's TRECVID observation that concept detection
// "turned out to be not efficient enough to bridge the semantic gap":
// concept-only retrieval is weak at era-typical detector accuracy, but
// fusing concepts with text still adds value, increasingly so as
// detectors improve.
func ConceptAccuracy(p Params) (*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "T10",
		Title:  "Concept-detector accuracy sweep (FPR fixed at 5%, fixed archive)",
		Header: []string{"detector TPR", "MAP concepts-only", "MAP text", "MAP fused", "fusion vs text"},
	}
	// One archive; only the detector outputs are regenerated per step,
	// so the text column stays constant and the sweep isolates
	// detector quality.
	arch, err := synth.Generate(p.Archive, p.Seed)
	if err != nil {
		return nil, err
	}
	topics := arch.Truth.SearchTopics
	if p.Topics > 0 && p.Topics < len(topics) {
		topics = topics[:p.Topics]
	}
	var conceptMAPs []float64
	for _, tpr := range []float64{0.3, 0.5, 0.65, 0.8, 0.95} {
		coll, err := synth.RedetectArchive(arch, synth.DetectorModel{TPR: tpr, FPR: 0.05}, p.Seed+10000)
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystemFromCollection(coll, core.Config{})
		if err != nil {
			return nil, err
		}
		var conceptMs, textMs, fusedMs []eval.Metrics
		for _, st := range topics {
			judg := eval.Judgments{}
			for shot, g := range arch.Truth.Qrels[st.ID] {
				judg[string(shot)] = g
			}
			topic := arch.Truth.Topics[st.TopicID]
			concepts := make([]string, len(topic.Concepts))
			for i, cc := range topic.Concepts {
				concepts[i] = string(cc)
			}
			cr, err := sys.Engine().Search(search.ConceptQuery(concepts...), search.Options{K: 100})
			if err != nil {
				return nil, err
			}
			conceptMs = append(conceptMs, eval.Compute(cr.IDs(), judg))

			tr, err := sys.SearchOnce(st.Query)
			if err != nil {
				return nil, err
			}
			textMs = append(textMs, eval.Compute(tr.IDs(), judg))

			fr, err := sys.SearchWithConcepts(st.Query, concepts, 0.5)
			if err != nil {
				return nil, err
			}
			fusedMs = append(fusedMs, eval.Compute(fr.IDs(), judg))
		}
		cm, tm, fm := eval.Mean(conceptMs), eval.Mean(textMs), eval.Mean(fusedMs)
		conceptMAPs = append(conceptMAPs, cm.AP)
		table.AddRow(fmt.Sprintf("%.0f%%", tpr*100),
			f3(cm.AP), f3(tm.AP), f3(fm.AP), fmt.Sprintf("%+.3f", fm.AP-tm.AP))
	}
	rises := 0
	for i := 1; i < len(conceptMAPs); i++ {
		if conceptMAPs[i] >= conceptMAPs[i-1]-0.02 {
			rises++
		}
	}
	table.AddNote("concept-only MAP improves with detector TPR in %d/%d steps (expected monotone-ish rise)",
		rises, len(conceptMAPs)-1)
	table.AddNote("concept-only retrieval stays below text even at high TPR — the semantic gap: concepts are coarse topic evidence, not story discriminators")
	return table, nil
}
