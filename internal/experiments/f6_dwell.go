package experiments

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/ilog"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// DwellReliability (F6) reproduces Kelly & Belkin's negative result:
// the precision of "dwell time above threshold implies relevance"
// varies strongly with the information-seeking task, so no single
// threshold works across contexts. Three task types (fact-find,
// background, leisure) modulate the same stereotype's dwell behaviour.
func DwellReliability(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	oracle := func(topicID int, shotID string) bool {
		return c.arch.Truth.Qrels.Grade(topicID, collection.ShotID(shotID)) >= 1
	}
	thresholds := []float64{2, 5, 10, 20}
	header := []string{"task type"}
	for _, t := range thresholds {
		header = append(header, fmt.Sprintf("P(rel|dwell>=%gs)", t))
	}
	header = append(header, "plays")
	table := &Table{
		ID:     "F6",
		Title:  "Dwell-time reliability across task types (precision of dwell-threshold rule)",
		Header: header,
	}
	sys, err := c.system(core.Config{UseImplicit: true})
	if err != nil {
		return nil, err
	}
	// bestThreshold[task] tracks which threshold wins per task.
	bestThreshold := map[string]float64{}
	for ti, tt := range simulation.TaskTypes() {
		st := tt.Apply(simulation.Casual())
		var events []ilog.Event
		seq := 0
		for _, topic := range c.topics {
			for range c.users {
				sim, err := simulation.New(c.arch, sys, ui.Desktop(), st, p.Seed+601+int64(ti*1000+seq)*17)
				if err != nil {
					return nil, err
				}
				sr, err := sim.RunSession(fmt.Sprintf("f6-%s-%d", tt.Name, seq), nil, topic, p.Iterations)
				if err != nil {
					return nil, err
				}
				seq++
				events = append(events, sr.Events...)
			}
		}
		row := []string{tt.Name}
		plays := 0
		bestP, bestT := -1.0, 0.0
		for _, thr := range thresholds {
			total, rel := 0, 0
			for _, e := range events {
				if e.Action != ilog.ActionPlay || e.Seconds < thr {
					continue
				}
				total++
				if oracle(e.TopicID, e.ShotID) {
					rel++
				}
			}
			prec := 0.0
			if total > 0 {
				prec = float64(rel) / float64(total)
			}
			if prec > bestP {
				bestP, bestT = prec, thr
			}
			row = append(row, f3(prec))
		}
		for _, e := range events {
			if e.Action == ilog.ActionPlay {
				plays++
			}
		}
		row = append(row, itoa(plays))
		table.AddRow(row...)
		bestThreshold[tt.Name] = bestT
	}
	allSame := true
	var ref float64
	first := true
	for _, thr := range bestThreshold {
		if first {
			ref, first = thr, false
			continue
		}
		if thr != ref {
			allSame = false
		}
	}
	table.AddNote("Kelly & Belkin shape (no single threshold dominates across tasks): %v", !allSame)
	return table, nil
}
