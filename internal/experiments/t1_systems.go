package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// SystemComparison (T1) operationalises RQ3 and the Agichtein et al.
// claim: four systems — baseline, profile-only, implicit-only,
// combined — serve the same simulated user study; the adaptive systems
// should order baseline < profile < implicit < combined, with
// implicit-only in the +10–35% relative-MAP band.
func SystemComparison(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "T1",
		Title:  "System comparison: static profile vs implicit feedback vs combined (desktop)",
		Header: []string{"system", "MAP", "P@10", "nDCG@10", "dMAP", "p(t-test)", "p(wilcoxon)"},
	}
	// Interest-aligned task assignment: participants search topics in
	// categories they declared interest in — the paper's news
	// personalisation scenario (and how interactive studies assign
	// tasks). Every system serves the identical assignment.
	pairs := simulation.AlignedPairs(c.topics, p.Users)
	var baseAPs []float64
	var baseMAP float64
	maps := map[string]float64{}
	for _, name := range core.Presets() {
		cfg, err := core.Preset(name)
		if err != nil {
			return nil, err
		}
		sys, err := c.system(cfg)
		if err != nil {
			return nil, err
		}
		study, err := simulation.RunStudyPairs(c.arch, sys, ui.Desktop(), pairs, p.Iterations, p.Seed+101)
		if err != nil {
			return nil, err
		}
		aps := apVector(study.PerTopicAP)
		m := study.MeanFinal
		mapVal := meanFloat(aps)
		maps[name] = mapVal
		if name == core.PresetBaseline {
			baseAPs = aps
			baseMAP = mapVal
			table.AddRow(name, f3(mapVal), f3(m.P10), f3(m.NDCG10), "-", "-", "-")
			continue
		}
		tt, err := eval.PairedTTest(baseAPs, aps)
		if err != nil {
			return nil, err
		}
		wx, err := eval.WilcoxonSignedRank(baseAPs, aps)
		if err != nil {
			return nil, err
		}
		table.AddRow(name, f3(mapVal), f3(m.P10), f3(m.NDCG10),
			pct(eval.RelImprovement(baseMAP, mapVal)), pv(tt.P), pv(wx.P))
	}
	imp := eval.RelImprovement(baseMAP, maps[core.PresetImplicit])
	table.AddNote("implicit-only vs baseline: %s relative MAP (Agichtein band: +10%%..+35%%)", pct(imp))
	orderOK := maps[core.PresetCombined] >= maps[core.PresetImplicit] &&
		maps[core.PresetImplicit] >= maps[core.PresetProfile] &&
		maps[core.PresetProfile] >= maps[core.PresetBaseline]
	table.AddNote("expected ordering combined >= implicit >= profile >= baseline holds: %v", orderOK)
	return table, nil
}

// T1Ablation sweeps the combined system's profile/implicit mixing
// parameters (the DESIGN.md ablation): ProfileAlpha and ExpandBeta.
func T1Ablation(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "T1a",
		Title:  "Combined-system ablation: profile weight alpha x expansion weight beta",
		Header: []string{"alpha", "beta", "MAP", "P@10"},
	}
	pairs := simulation.AlignedPairs(c.topics, p.Users)
	for _, alpha := range []float64{0.05, 0.2, 0.5} {
		for _, beta := range []float64{0.1, 0.4, 0.8} {
			sys, err := c.system(core.Config{
				UseProfile: true, UseImplicit: true,
				ProfileAlpha: alpha, ExpandBeta: beta,
			})
			if err != nil {
				return nil, err
			}
			study, err := simulation.RunStudyPairs(c.arch, sys, ui.Desktop(), pairs, p.Iterations, p.Seed+103)
			if err != nil {
				return nil, err
			}
			table.AddRow(fmt.Sprintf("%.2f", alpha), fmt.Sprintf("%.2f", beta),
				f3(study.MeanFinal.AP), f3(study.MeanFinal.P10))
		}
	}
	return table, nil
}

func meanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
