package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestTableFormatting checks the renderer independent of any runner.
func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:     "TX",
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1.000")
	tab.AddRow("beta-long-name", "2.000")
	tab.AddNote("a note with %d", 42)
	s := tab.String()
	for _, want := range []string{"TX — demo", "alpha", "beta-long-name", "note: a note with 42"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestFormattersStable(t *testing.T) {
	if f3(0.12345) != "0.123" || f1(3.27) != "3.3" {
		t.Error("numeric formatting wrong")
	}
	if pct(12.3) != "+12.3%" || pct(-5) != "-5.0%" {
		t.Errorf("pct formatting wrong: %s %s", pct(12.3), pct(-5))
	}
	if !strings.HasSuffix(pv(0.001), "**") || !strings.HasSuffix(pv(0.03), "*") || strings.HasSuffix(pv(0.5), "*") {
		t.Error("p-value stars wrong")
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Users: 0, Iterations: 1},
		{Users: 1, Iterations: 0},
		{Users: 1, Iterations: 1, Topics: -1},
	}
	for i, p := range bad {
		p.Archive = Quick().Archive
		if _, err := setup(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(catalogue) {
		t.Fatal("IDs incomplete")
	}
	for _, id := range ids {
		if _, err := Title(id); err != nil {
			t.Errorf("Title(%s): %v", id, err)
		}
	}
	if _, err := Title("T99"); err == nil {
		t.Error("unknown title accepted")
	}
	if _, err := Run("T99", Quick()); err == nil {
		t.Error("unknown runner accepted")
	}
}

func TestApVector(t *testing.T) {
	v := apVector(map[int]float64{3: 0.3, 1: 0.1, 2: 0.2})
	if len(v) != 3 || v[0] != 0.1 || v[1] != 0.2 || v[2] != 0.3 {
		t.Errorf("apVector = %v", v)
	}
}

// Each runner executes at Quick scale and produces a well-formed
// table. These are integration tests across the whole stack, so they
// are grouped into one test with subtests for -run filtering.
func TestRunnersQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runners are slow")
	}
	p := Quick()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, p)
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if tab.ID == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("%s produced malformed table: %+v", id, tab)
			}
			for ri, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("%s row %d has %d cells for %d columns", id, ri, len(row), len(tab.Header))
				}
			}
			// Every numeric cell parses.
			for _, row := range tab.Rows {
				for _, cell := range row[1:] {
					c := strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
					c = strings.TrimSuffix(c, "*")
					c = strings.TrimSuffix(c, "*")
					if c == "-" || c == "no decay" {
						continue
					}
					c = strings.TrimSuffix(c, "%")
					if _, err := strconv.ParseFloat(c, 64); err != nil {
						t.Errorf("%s: unparseable cell %q", id, cell)
					}
				}
			}
		})
	}
}

// TestRunnersDeterministic re-runs one cheap runner and compares
// output byte-for-byte.
func TestRunnersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	p := Quick()
	a, err := Run("T9", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("T9", p)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("T9 not deterministic")
	}
}
