package experiments

import (
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// SimulationFidelity (T11) validates the paper's central methodology
// bet (§2.2): that simulation is a faithful "pre-implementation
// method", i.e. the ordering of systems under fresh simulated users
// matches their ordering under replayed logs from a different
// population. We generate a reference log with the baseline system and
// one user population, replay it through all four presets, and compare
// that ordering (Kendall tau) against the ordering from live
// simulation with a different seed/population.
func SimulationFidelity(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	// Reference logs: a *held-out* population interacting with the
	// baseline system (their behaviour is adaptation-free, so the log
	// is system-neutral evidence).
	refSys, err := c.system(core.Config{})
	if err != nil {
		return nil, err
	}
	refUsers := simulation.MakeUsers(p.Users + 3)[p.Users:] // disjoint-ish population
	refStudy, err := simulation.RunStudy(c.arch, refSys, ui.Desktop(), refUsers, c.topics, p.Iterations, p.Seed+1101)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "T11",
		Title:  "Simulation fidelity: live-simulation MAP vs log-replay MAP per system",
		Header: []string{"system", "MAP (live sim)", "MAP (log replay)"},
	}
	var liveVec, replayVec []float64
	for _, name := range core.Presets() {
		cfg, err := core.Preset(name)
		if err != nil {
			return nil, err
		}
		sys, err := c.system(cfg)
		if err != nil {
			return nil, err
		}
		live, err := simulation.RunStudy(c.arch, sys, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+1102)
		if err != nil {
			return nil, err
		}
		replayMs, err := simulation.Replay(sys, refStudy.Events, c.arch.Truth.Qrels)
		if err != nil {
			return nil, err
		}
		replayMAP := eval.Mean(replayMs).AP
		liveVec = append(liveVec, live.MeanFinal.AP)
		replayVec = append(replayVec, replayMAP)
		table.AddRow(name, f3(live.MeanFinal.AP), f3(replayMAP))
	}
	tau, err := eval.KendallTau(liveVec, replayVec)
	if err != nil {
		return nil, err
	}
	table.AddNote("Kendall tau between system orderings: %.3f (target >= 0.7: simulation ranks systems like log replay)", tau)
	return table, nil
}
