package experiments

import (
	"strconv"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/ilog"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// IndicatorValue (T2) answers RQ1: which interface actions are
// positive indicators of relevance? Two measurements per indicator:
// the log-side precision (how often the action targeted relevant
// material) and the retrieval value of adapting on that indicator
// alone (single-indicator MAP vs no adaptation).
func IndicatorValue(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	oracle := func(topicID int, shotID string) bool {
		return c.arch.Truth.Qrels.Grade(topicID, collection.ShotID(shotID)) >= 1
	}
	// Generate the observational log with the combined system (the
	// realistic deployment) and the full user population.
	combined, err := c.system(core.Config{UseProfile: true, UseImplicit: true})
	if err != nil {
		return nil, err
	}
	study, err := simulation.RunStudy(c.arch, combined, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+201)
	if err != nil {
		return nil, err
	}
	stats := ilog.AnalyzeIndicators(study.Events, oracle)

	// Baseline MAP for the adaptation-value column.
	baseSys, err := c.system(core.Config{})
	if err != nil {
		return nil, err
	}
	baseStudy, err := simulation.RunStudy(c.arch, baseSys, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+202)
	if err != nil {
		return nil, err
	}
	baseMAP := baseStudy.MeanFinal.AP

	table := &Table{
		ID:     "T2",
		Title:  "Per-indicator value: log precision and single-indicator adaptation MAP",
		Header: []string{"indicator", "events", "on-relevant", "precision", "solo-MAP", "dMAP vs base"},
	}
	statByAction := map[ilog.Action]ilog.IndicatorStats{}
	for _, st := range stats {
		statByAction[st.Action] = st
	}
	for _, action := range ilog.ImplicitActions() {
		st := statByAction[action]
		// Single-indicator system: a learned scheme that weighs only
		// this action.
		solo := &feedback.Learned{
			Weights:    map[ilog.Action]float64{action: 1},
			RateWeight: 0, // explicit channel off: isolate the indicator
		}
		sys, err := c.system(core.Config{UseImplicit: true, Scheme: solo})
		if err != nil {
			return nil, err
		}
		soloStudy, err := simulation.RunStudy(c.arch, sys, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+203)
		if err != nil {
			return nil, err
		}
		soloMAP := soloStudy.MeanFinal.AP
		table.AddRow(string(action),
			itoa(st.Count), itoa(st.OnRelevant), f3(st.Precision),
			f3(soloMAP), pct((soloMAP-baseMAP)/nonZero(baseMAP)*100))
	}
	// The explicit channel as the reference row.
	if st, ok := statByAction[ilog.ActionRate]; ok {
		table.AddRow("rate (explicit)", itoa(st.Count), itoa(st.OnRelevant), f3(st.Precision), "-", "-")
	}
	click := statByAction[ilog.ActionClickKeyframe].Precision
	play := statByAction[ilog.ActionPlay].Precision
	browse := statByAction[ilog.ActionBrowse].Precision
	table.AddNote("click/play are the strongest implicit indicators, browse the weakest: click=%.3f play=%.3f browse=%.3f (expected click,play >> browse)",
		click, play, browse)
	return table, nil
}

func itoa(n int) string { return strconv.Itoa(n) }

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
