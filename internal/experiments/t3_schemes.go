package experiments

import (
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/feedback"
	"repro/internal/ilog"
	"repro/internal/simulation"
	"repro/internal/ui"
)

// WeightingSchemes (T3) answers RQ2: how should the indicators be
// weighted? Five schemes run the same study: binary, graded,
// dwell-normalised, ostensive-decayed graded, and weights learned from
// a held-out training log. Expected shape: graded/ostensive > binary;
// learned >= any fixed scheme.
func WeightingSchemes(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	oracle := func(topicID int, shotID string) bool {
		return c.arch.Truth.Qrels.Grade(topicID, collection.ShotID(shotID)) >= 1
	}
	// Training pass for the learned scheme: log a study under the
	// graded default, learn per-indicator precisions, shift by the
	// base examination rate (browse precision ~= prior of examined
	// shots being relevant).
	trainSys, err := c.system(core.Config{UseImplicit: true})
	if err != nil {
		return nil, err
	}
	train, err := simulation.RunStudy(c.arch, trainSys, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+301)
	if err != nil {
		return nil, err
	}
	baseRate := examinationBaseRate(train, oracle)
	learned := feedback.LearnWeights(train.Events, oracle, baseRate)

	ost, err := feedback.NewOstensive(feedback.DefaultGraded(), 2)
	if err != nil {
		return nil, err
	}
	schemes := []feedback.Scheme{
		feedback.Binary{},
		feedback.DefaultGraded(),
		feedback.NewDwellNormalised(),
		ost,
		learned,
	}
	table := &Table{
		ID:     "T3",
		Title:  "Feature weighting schemes (implicit-only adaptation)",
		Header: []string{"scheme", "MAP", "P@10", "nDCG@10", "dMAP vs binary", "p(t-test)"},
	}
	var binAPs []float64
	var binMAP float64
	mapOf := map[string]float64{}
	for i, scheme := range schemes {
		sys, err := c.system(core.Config{UseImplicit: true, Scheme: scheme})
		if err != nil {
			return nil, err
		}
		study, err := simulation.RunStudy(c.arch, sys, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+302)
		if err != nil {
			return nil, err
		}
		aps := apVector(study.PerTopicAP)
		mapVal := meanFloat(aps)
		mapOf[scheme.Name()] = mapVal
		m := study.MeanFinal
		if i == 0 {
			binAPs, binMAP = aps, mapVal
			table.AddRow(scheme.Name(), f3(mapVal), f3(m.P10), f3(m.NDCG10), "-", "-")
			continue
		}
		tt, err := eval.PairedTTest(binAPs, aps)
		if err != nil {
			return nil, err
		}
		table.AddRow(scheme.Name(), f3(mapVal), f3(m.P10), f3(m.NDCG10),
			pct(eval.RelImprovement(binMAP, mapVal)), pv(tt.P))
	}
	table.AddNote("learned-weight base rate (examined-shot relevance prior): %.3f", baseRate)
	table.AddNote("graded beats binary: %v; learned >= graded: %v",
		mapOf["graded"] >= binMAP,
		mapOf[learned.Name()] >= mapOf["graded"]-0.02)
	return table, nil
}

// T3Ablation sweeps the expansion-term clip (the Rocchio topN
// parameter), the second DESIGN.md ablation.
func T3Ablation(p Params) (*Table, error) {
	c, err := setup(p)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:     "T3a",
		Title:  "Expansion-term count ablation (graded scheme)",
		Header: []string{"expansion terms", "MAP", "P@10"},
	}
	for _, n := range []int{2, 5, 10, 20, 40} {
		sys, err := c.system(core.Config{UseImplicit: true, ExpandTerms: n})
		if err != nil {
			return nil, err
		}
		study, err := simulation.RunStudy(c.arch, sys, ui.Desktop(), c.users, c.topics, p.Iterations, p.Seed+303)
		if err != nil {
			return nil, err
		}
		table.AddRow(itoa(n), f3(study.MeanFinal.AP), f3(study.MeanFinal.P10))
	}
	return table, nil
}

// examinationBaseRate estimates the prior probability that an examined
// (browsed-past) shot is relevant, from browse events.
func examinationBaseRate(study *simulation.StudyResult, oracle func(int, string) bool) float64 {
	total, rel := 0, 0
	for _, e := range study.Events {
		if e.Action != ilog.ActionBrowse || e.ShotID == "" {
			continue
		}
		total++
		if oracle(e.TopicID, e.ShotID) {
			rel++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(rel) / float64(total)
}
