package experiments

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/synth"
)

// ASRSensitivity (T9) quantifies the paper's premise that speech
// transcripts "are often not reliable enough to describe the actual
// content of a clip". One archive is generated with clean transcripts;
// each sweep step re-corrupts those same transcripts at a higher word
// error rate (structure, stories and qrels held fixed, so the sweep
// isolates transcript quality). Expected shape: text-only MAP declines
// monotonically with WER; concept fusion declines more slowly, its
// margin widening as text degrades.
func ASRSensitivity(p Params) (*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cfg := p.Archive
	cfg.WER = 0 // generate clean; corruption applied per sweep step
	arch, err := synth.Generate(cfg, p.Seed)
	if err != nil {
		return nil, err
	}
	topics := arch.Truth.SearchTopics
	if p.Topics > 0 && p.Topics < len(topics) {
		topics = topics[:p.Topics]
	}
	table := &Table{
		ID:     "T9",
		Title:  "ASR word-error-rate sensitivity: text-only vs text+concept fusion (fixed archive)",
		Header: []string{"WER", "measured WER", "MAP text", "MAP text+concepts", "fusion margin"},
	}
	wers := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	var textMAPs, margins []float64
	for _, wer := range wers {
		coll := arch.Collection
		if wer > 0 {
			coll, err = synth.CorruptArchive(arch, wer, p.Seed+9000)
			if err != nil {
				return nil, err
			}
		}
		sys, err := core.NewSystemFromCollection(coll, core.Config{})
		if err != nil {
			return nil, err
		}
		// Verify channel calibration against the clean transcripts.
		measured := measureArchiveWER(arch, coll)
		var textMs, fusedMs []eval.Metrics
		for _, st := range topics {
			judg := eval.Judgments{}
			for shot, g := range arch.Truth.Qrels[st.ID] {
				judg[string(shot)] = g
			}
			tr, err := sys.SearchOnce(st.Query)
			if err != nil {
				return nil, err
			}
			textMs = append(textMs, eval.Compute(tr.IDs(), judg))

			topic := arch.Truth.Topics[st.TopicID]
			concepts := make([]string, len(topic.Concepts))
			for i, cc := range topic.Concepts {
				concepts[i] = string(cc)
			}
			fr, err := sys.SearchWithConcepts(st.Query, concepts, 0.5)
			if err != nil {
				return nil, err
			}
			fusedMs = append(fusedMs, eval.Compute(fr.IDs(), judg))
		}
		tm, fm := eval.Mean(textMs), eval.Mean(fusedMs)
		textMAPs = append(textMAPs, tm.AP)
		margins = append(margins, fm.AP-tm.AP)
		table.AddRow(fmt.Sprintf("%.0f%%", wer*100), fmt.Sprintf("%.0f%%", measured*100),
			f3(tm.AP), f3(fm.AP), fmt.Sprintf("%+.3f", fm.AP-tm.AP))
	}
	drops := 0
	for i := 1; i < len(textMAPs); i++ {
		if textMAPs[i] <= textMAPs[i-1]+0.01 {
			drops++
		}
	}
	table.AddNote("text-only MAP declines with WER in %d/%d steps (expected monotone decline)", drops, len(textMAPs)-1)
	table.AddNote("fusion margin at WER=0: %+.3f; at WER=60%%: %+.3f (expected margin widens as text degrades)",
		margins[0], margins[len(margins)-1])
	return table, nil
}

// measureArchiveWER samples shots and measures the realised word error
// rate of coll's transcripts against the archive's clean ground truth.
func measureArchiveWER(arch *synth.Archive, coll *collection.Collection) float64 {
	var sum float64
	n := 0
	coll.Shots(func(s *collection.Shot) bool {
		clean := arch.Truth.CleanTranscript[s.ID]
		sum += synth.MeasureWER(clean, s.Transcript)
		n++
		return n < 200 // sample is plenty for calibration display
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
