// Package experiments implements the derived experiment suite of
// DESIGN.md: one runner per table/figure, each reproducing a research
// question of the paper or a quantitative claim it cites, over the
// synthetic archive. Runners are deterministic in their Params.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a paper-style results table: what cmd/ivrbench prints and
// EXPERIMENTS.md records.
type Table struct {
	// ID is the experiment identifier from DESIGN.md ("T1", "F4", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carry shape findings and significance annotations.
	Notes []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			// Right-align numeric-looking cells, left-align labels.
			if i == 0 {
				sb.WriteString(c)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Cell formatting helpers shared by all runners.

// f3 formats a metric to three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f1 formats to one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// pct formats a relative improvement percentage.
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

// pv formats a p-value with significance stars.
func pv(p float64) string {
	switch {
	case p < 0.01:
		return fmt.Sprintf("%.4f**", p)
	case p < 0.05:
		return fmt.Sprintf("%.4f*", p)
	}
	return fmt.Sprintf("%.4f", p)
}
