package retrieval

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/search"
)

func res(ids ...string) search.Results {
	hits := make([]search.Hit, len(ids))
	for i, id := range ids {
		hits[i] = search.Hit{ID: id, Score: float64(len(ids) - i)}
	}
	return search.Results{Hits: hits, Candidates: len(ids)}
}

func TestCacheHitMissLRU(t *testing.T) {
	c := NewCache(2)
	calls := 0
	get := func(key string, r search.Results) search.Results {
		t.Helper()
		out, _, err := c.Do(key, func() (search.Results, error) { calls++; return r, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	get("a", res("x"))
	get("a", res("SHOULD NOT RUN"))
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	get("b", res("y"))
	get("c", res("z")) // evicts "a" (LRU tail)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	get("a", res("x2"))
	if calls != 4 {
		t.Fatalf("compute ran %d times, want 4 (a was evicted)", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 2 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRatio <= 0 || st.HitRatio >= 1 {
		t.Fatalf("hit ratio = %v", st.HitRatio)
	}
}

func TestCacheReturnsIsolatedCopies(t *testing.T) {
	c := NewCache(4)
	first, _, err := c.Do("k", func() (search.Results, error) { return res("a", "b"), nil })
	if err != nil {
		t.Fatal(err)
	}
	first.Hits[0].ID = "mutated"
	first.Hits[0].Score = -99
	second, hit, err := c.Do("k", func() (search.Results, error) { return res("nope"), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("expected hit")
	}
	if second.Hits[0].ID != "a" || second.Hits[0].Score != 2 {
		t.Fatalf("cache entry was corrupted by caller mutation: %+v", second.Hits[0])
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (search.Results, error) { return search.Results{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	out, hit, err := c.Do("k", func() (search.Results, error) { return res("ok"), nil })
	if err != nil || hit {
		t.Fatalf("after error: hit=%v err=%v", hit, err)
	}
	if len(out.Hits) != 1 || out.Hits[0].ID != "ok" {
		t.Fatalf("recomputed result wrong: %+v", out)
	}
}

func TestNilCacheComputesDirectly(t *testing.T) {
	var c *Cache
	if c.Enabled() {
		t.Fatal("nil cache claims enabled")
	}
	out, hit, err := c.Do("k", func() (search.Results, error) { return res("a"), nil })
	if err != nil || hit || len(out.Hits) != 1 {
		t.Fatalf("nil cache Do: %+v %v %v", out, hit, err)
	}
	if st := c.Stats(); st.Enabled {
		t.Fatal("nil cache stats enabled")
	}
	if NewCache(0) != nil {
		t.Fatal("capacity 0 should build the disabled cache")
	}
}

// TestCacheSingleflight proves concurrent misses on one key run the
// computation once and share the result.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	var computes atomic.Int64
	start := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	const callers = 16
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			out, _, err := c.Do("hot", func() (search.Results, error) {
				computes.Add(1)
				<-release
				return res("r"), nil
			})
			if err != nil || len(out.Hits) != 1 || out.Hits[0].ID != "r" {
				t.Errorf("caller got %+v, %v", out, err)
			}
		}()
	}
	close(start)
	time.Sleep(20 * time.Millisecond) // let callers pile onto the flight
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computation ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d shared", st, callers-1)
	}
}

// TestCacheConcurrent hammers mixed keys under the race detector.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				out, _, err := c.Do(key, func() (search.Results, error) { return res(key), nil })
				if err != nil {
					t.Error(err)
					return
				}
				if len(out.Hits) != 1 || out.Hits[0].ID != key {
					t.Errorf("key %s got %+v", key, out.Hits)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
}

func TestFingerprints(t *testing.T) {
	q1 := search.Query{Terms: []search.WeightedTerm{{Term: "cup", Weight: 1}, {Term: "final", Weight: 1}}}
	q2 := search.Query{Terms: []search.WeightedTerm{{Term: "cup", Weight: 1}, {Term: "final", Weight: 1}}}
	if QueryKey(q1) != QueryKey(q2) {
		t.Error("identical queries fingerprint differently")
	}
	q2.Terms[1].Weight = 1.5
	if QueryKey(q1) == QueryKey(q2) {
		t.Error("weight change not reflected in query key")
	}
	m1 := map[string]float64{"s1": 1, "s2": 0.5}
	m2 := map[string]float64{"s2": 0.5, "s1": 1}
	if EvidenceKey(m1) != EvidenceKey(m2) {
		t.Error("evidence key depends on map order")
	}
	m2["s3"] = 0.1
	if EvidenceKey(m1) == EvidenceKey(m2) {
		t.Error("new evidence not reflected in key")
	}
	if EvidenceKey(nil) != 0 {
		t.Error("empty evidence should key to 0")
	}
	if Key(1, 2, "a") == Key(1, 2, "b") {
		t.Error("config not reflected in key")
	}
	if Key(1, 2, "a") != Key(1, 2, "a") {
		t.Error("key not deterministic")
	}
}

func TestSegmentTimings(t *testing.T) {
	st := NewSegmentTimings([]int{10, 20})
	st.Observe(0, 5, time.Millisecond)
	st.Observe(1, 7, 2*time.Millisecond)
	st.Observe(1, 7, 3*time.Millisecond)
	st.Observe(9, 0, time.Millisecond) // out of range: ignored
	sums := st.Summaries()
	if len(sums) != 2 {
		t.Fatalf("%d summaries", len(sums))
	}
	if sums[0].Docs != 10 || sums[0].Searches != 1 {
		t.Errorf("segment 0: %+v", sums[0])
	}
	if sums[1].Docs != 20 || sums[1].Searches != 2 || sums[1].Latency.MaxMS <= 0 {
		t.Errorf("segment 1: %+v", sums[1])
	}
}

// TestCachePanicUnwedgesKey: a panicking computation must not wedge
// its key — waiters get ErrComputePanicked, the panic propagates to
// the originating caller, and the next lookup recomputes.
func TestCachePanicUnwedgesKey(t *testing.T) {
	c := NewCache(4)
	entered := make(chan struct{})
	release := make(chan struct{})
	var waitErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the originating caller")
			}
		}()
		_, _, _ = c.Do("k", func() (search.Results, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	go func() {
		defer wg.Done()
		<-entered // ensure we join the in-flight call, not start our own
		// Non-deterministic join: if the first call already cleaned
		// up, this Do recomputes ("a", waitErr nil) instead of sharing
		// the panic; both are acceptable, a hang is not.
		_, _, waitErr = c.Do("k", func() (search.Results, error) { return res("a"), nil })
	}()
	close(release)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cache deadlocked after a panicking computation")
	}
	if waitErr != nil && !errors.Is(waitErr, ErrComputePanicked) {
		t.Fatalf("waiter error = %v, want ErrComputePanicked or nil", waitErr)
	}
	// The key must be free again: a fresh computation (or the waiter's
	// recompute) serves "a"; the panicked attempt cached nothing.
	got, hit, err := c.Do("k", func() (search.Results, error) { return res("a"), nil })
	if err != nil || len(got.Hits) != 1 || got.Hits[0].ID != "a" {
		t.Fatalf("recompute after panic: hits=%v hit=%v err=%v", got.Hits, hit, err)
	}
	if st := c.Stats(); st.Entries > 1 {
		t.Fatalf("panicked result was cached: %+v", st)
	}
}
