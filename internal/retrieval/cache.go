// Package retrieval is the serving-side engine layer above raw search:
// an LRU result cache keyed on (normalized query, evidence-state
// fingerprint, configuration) with single-flight de-duplication, plus
// the telemetry snapshot the /api/v1/metrics endpoint publishes for
// it.
//
// The paper's adaptive loop re-runs retrieval after every implicit
// feedback event, and simulated-study traffic makes repeated
// near-identical queries the common case. The cache exploits exactly
// the structure of that loop: a session's ranking is a deterministic
// function of the analysed query, the implicit-evidence state, and the
// system configuration — so those three fingerprints ARE the cache
// key, and a new implicit event invalidates naturally by changing the
// key rather than by any explicit purge.
package retrieval

import (
	"container/list"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"repro/internal/search"
)

// ErrComputePanicked is surfaced to single-flight waiters whose shared
// computation panicked in the originating goroutine (where the panic
// itself propagates). Never cached; the next lookup recomputes.
var ErrComputePanicked = errors.New("retrieval: cached computation panicked")

// Cache is a bounded LRU over ranked results with single-flight
// computation: concurrent misses on the same key run the underlying
// search once and share the result. Safe for concurrent use. A nil
// *Cache is a valid disabled cache (Do computes directly, Stats
// reports Enabled=false).
type Cache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List               // front = most recently used
	entries map[string]*list.Element // key -> *entry element
	flight  map[string]*flightCall

	hits      int64
	misses    int64
	shared    int64
	evictions int64
	// partialSkips counts computations whose result was degraded
	// (Results.Partial) and therefore not stored: a partial page is an
	// overload artifact of one moment, never a servable ranking later.
	partialSkips int64
}

// entry is one cached ranking.
type entry struct {
	key string
	res search.Results
}

// flightCall is one in-progress computation other callers can wait on.
type flightCall struct {
	done chan struct{}
	res  search.Results
	err  error
}

// NewCache builds a cache bounded to capacity entries. capacity <= 0
// returns nil: the disabled cache.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		cap:     capacity,
		lru:     list.New(),
		entries: make(map[string]*list.Element, capacity),
		flight:  make(map[string]*flightCall),
	}
}

// Enabled reports whether the cache stores anything.
func (c *Cache) Enabled() bool { return c != nil }

// Len reports the resident entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Do returns the ranking for key, computing it with fn on a miss.
// Concurrent callers missing on the same key wait for one
// computation (single-flight); errors are shared with waiters and
// never cached. The returned Results carries a fresh Hits slice, so
// callers may re-slice or re-rank without corrupting the cache.
func (c *Cache) Do(key string, fn func() (search.Results, error)) (search.Results, bool, error) {
	if c == nil {
		res, err := fn()
		return res, false, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		res := copyResults(el.Value.(*entry).res)
		c.mu.Unlock()
		return res, true, nil
	}
	if call, ok := c.flight[key]; ok {
		c.shared++
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return search.Results{}, false, call.err
		}
		return copyResults(call.res), true, nil
	}
	call := &flightCall{done: make(chan struct{})}
	c.flight[key] = call
	c.misses++
	c.mu.Unlock()

	// The cleanup is deferred so that a panicking fn (anticipated: the
	// webapi layer recovers handler panics per request) still releases
	// the flight entry and wakes waiters with an error — otherwise every
	// future lookup of this key would block forever on call.done. The
	// panic itself propagates to the caller unchanged.
	finished := false
	func() {
		defer func() {
			if !finished {
				call.err = ErrComputePanicked
			}
			close(call.done)
			c.mu.Lock()
			delete(c.flight, key)
			switch {
			case call.err != nil:
			case call.res.Partial:
				// Degraded-mode results are served to the waiters of this
				// flight but never stored: the next lookup re-retrieves.
				c.partialSkips++
			default:
				c.insert(key, call.res)
			}
			c.mu.Unlock()
		}()
		call.res, call.err = fn()
		finished = true
	}()
	if call.err != nil {
		return search.Results{}, false, call.err
	}
	return copyResults(call.res), false, nil
}

// insert stores one entry, evicting from the LRU tail past capacity.
// Caller holds c.mu; the flight map guarantees key is not yet resident
// (all other Do calls for it parked on this computation).
func (c *Cache) insert(key string, res search.Results) {
	c.entries[key] = c.lru.PushFront(&entry{key: key, res: res})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.entries, tail.Value.(*entry).key)
		c.evictions++
	}
}

// copyResults clones the Hits slice (Hit values are plain data); other
// fields — including the degraded-mode markers — copy by value.
func copyResults(r search.Results) search.Results {
	hits := make([]search.Hit, len(r.Hits))
	copy(hits, r.Hits)
	r.Hits = hits
	r.FailedSegments = append([]int(nil), r.FailedSegments...)
	return r
}

// CacheSnapshot is the cache section of the telemetry snapshot.
type CacheSnapshot struct {
	Enabled bool `json:"enabled"`
	// Hits counts lookups served from a resident entry; Shared counts
	// lookups that piggybacked on an in-flight computation
	// (single-flight); Misses counts computations actually run.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Shared    int64 `json:"shared"`
	Evictions int64 `json:"evictions"`
	// PartialSkips counts degraded (partial) results served but not
	// stored.
	PartialSkips int64 `json:"partial_skips,omitempty"`
	Entries      int   `json:"entries"`
	Capacity     int   `json:"capacity"`
	// HitRatio is (Hits+Shared)/(Hits+Shared+Misses), 0 before traffic.
	HitRatio float64 `json:"hit_ratio"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheSnapshot {
	if c == nil {
		return CacheSnapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheSnapshot{
		Enabled:      true,
		Hits:         c.hits,
		Misses:       c.misses,
		Shared:       c.shared,
		Evictions:    c.evictions,
		PartialSkips: c.partialSkips,
		Entries:      c.lru.Len(),
		Capacity:     c.cap,
	}
	if total := s.Hits + s.Shared + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits+s.Shared) / float64(total)
	}
	return s
}

// Fingerprint is an incrementally-built FNV-1a key component. The
// cache key is the concatenation of the query, evidence and config
// fingerprints; collisions are 64-bit-hash unlikely and at worst serve
// a ranking for a colliding state, never a stale one for the same
// state.
type Fingerprint struct {
	h uint64
}

// NewFingerprint starts an empty fingerprint.
func NewFingerprint() *Fingerprint {
	return &Fingerprint{h: 14695981039346656037} // FNV-1a offset basis
}

const fnvPrime = 1099511628211

// AddString mixes in a string (length-prefixed so concatenations
// cannot collide).
func (f *Fingerprint) AddString(s string) *Fingerprint {
	f.AddUint64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		f.h = (f.h ^ uint64(s[i])) * fnvPrime
	}
	return f
}

// AddUint64 mixes in one 64-bit value.
func (f *Fingerprint) AddUint64(v uint64) *Fingerprint {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	for _, x := range b {
		f.h = (f.h ^ uint64(x)) * fnvPrime
	}
	return f
}

// AddFloat64 mixes in a float's exact bit pattern.
func (f *Fingerprint) AddFloat64(v float64) *Fingerprint {
	return f.AddUint64(math.Float64bits(v))
}

// Sum returns the 64-bit fingerprint.
func (f *Fingerprint) Sum() uint64 { return f.h }

// QueryKey fingerprints an analysed query: field plus the sorted
// (term, weight) list. Because ParseText lower-cases, stems and sorts,
// textual variants of the same information need ("Cup FINAL!", "cup
// final") collapse to the same key.
func QueryKey(q search.Query) uint64 {
	f := NewFingerprint()
	f.AddUint64(uint64(q.Field))
	for _, t := range q.Terms {
		f.AddString(t.Term)
		f.AddFloat64(t.Weight)
	}
	return f.Sum()
}

// EvidenceKey fingerprints an implicit-evidence state: the per-shot
// relevance mass map (sorted for determinism). Any new implicit event
// — and, under step-decaying schemes, any step advance — changes the
// mass and therefore the key, which is the cache's evidence-safety
// property.
func EvidenceKey(mass map[string]float64) uint64 {
	if len(mass) == 0 {
		return 0
	}
	ids := make([]string, 0, len(mass))
	for id := range mass {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	f := NewFingerprint()
	for _, id := range ids {
		f.AddString(id)
		f.AddFloat64(mass[id])
	}
	return f.Sum()
}

// hashString is a convenience FNV-1a over a plain string.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Key assembles the final cache key from the three fingerprint
// components.
func Key(queryKey, evidenceKey uint64, configKey string) string {
	f := NewFingerprint()
	f.AddUint64(queryKey)
	f.AddUint64(evidenceKey)
	f.AddUint64(hashString(configKey))
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], f.Sum())
	binary.BigEndian.PutUint64(b[8:], queryKey)
	const hex = "0123456789abcdef"
	out := make([]byte, 32)
	for i, x := range b {
		out[2*i] = hex[x>>4]
		out[2*i+1] = hex[x&0xf]
	}
	return string(out)
}
