package retrieval

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/search"
	"repro/internal/trace"
)

// SegmentSummary is one index segment's execution telemetry: how many
// documents it holds, how many times it has been scored, and its
// scoring-latency quantiles.
type SegmentSummary struct {
	Segment  int                    `json:"segment"`
	Docs     int                    `json:"docs"`
	Searches int64                  `json:"searches"`
	Latency  metrics.LatencySummary `json:"latency"`
}

// BackendSummary is one remote segment backend's telemetry: which
// segments it scores, how many RPCs it has served and failed, and its
// RPC latency quantiles (round trip as seen from the merge tier).
type BackendSummary struct {
	Addr string `json:"addr"`
	// Healthy is the routing health bit: false after a failed probe or
	// a retryable RPC fault, true again after a success. An unhealthy
	// replica is deprioritized, not excluded.
	Healthy  bool  `json:"healthy"`
	Segments []int `json:"segments"`
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// BinarySearches/JSONSearches split the search RPCs by negotiated
	// body codec; CodecFallbacks counts permanent demotions to JSON
	// after a backend rejected a binary body (at most one per backend
	// per process, so nonzero here means a mixed-version topology).
	BinarySearches int64 `json:"binary_searches"`
	JSONSearches   int64 `json:"json_searches"`
	CodecFallbacks int64 `json:"codec_fallbacks,omitempty"`
	// Hedges counts search RPCs sent to this backend as the hedged
	// duplicate of a slow twin; Failovers counts RPCs sent here because
	// a twin failed; ProbeFailures counts health-probe rejections.
	Hedges        int64 `json:"hedges"`
	Failovers     int64 `json:"failovers"`
	ProbeFailures int64 `json:"probe_failures,omitempty"`
	// Breaker is the replica's circuit-breaker state ("closed",
	// "half_open", "open"; empty when breakers are disabled) and
	// BreakerTrips how many times it has tripped open.
	Breaker      string                 `json:"breaker,omitempty"`
	BreakerTrips int64                  `json:"breaker_trips,omitempty"`
	Latency      metrics.LatencySummary `json:"latency"`
}

// RetryBudgetSummary mirrors the distributed merge tier's retry token
// bucket (distrib.RetryBudgetStats) for the metrics surface.
type RetryBudgetSummary struct {
	Tokens    float64 `json:"tokens"`
	Taken     int64   `json:"taken"`
	Denied    int64   `json:"denied"`
	Unlimited bool    `json:"unlimited,omitempty"`
}

// Snapshot is the retrieval-engine section of the /api/v1/metrics
// body: cache counters plus per-segment fan-out timing, and — when
// the engine is a distributed merge tier — per-backend RPC telemetry.
type Snapshot struct {
	Cache CacheSnapshot `json:"cache"`
	// Segments is present when the engine fans out over more than one
	// segment (or when timing is wired at all). On a distributed
	// engine the per-segment latency includes the RPC round trip.
	Segments []SegmentSummary `json:"segments,omitempty"`
	// Workers is the fan-out worker bound (1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Backends is present only on a distributed merge tier: one entry
	// per remote segment server.
	Backends []BackendSummary `json:"backends,omitempty"`
	// RetryBudget is present only on a distributed merge tier: the
	// cluster-wide hedge/failover token bucket.
	RetryBudget *RetryBudgetSummary `json:"retry_budget,omitempty"`
	// Kernel reports the scoring kernel's pool telemetry (compiled
	// queries, segment scans, accumulator/top-k/hit-slice reuse). The
	// counters are process-wide: every engine in the process scores
	// through the same pooled kernel.
	Kernel search.KernelStats `json:"kernel"`
	// Stages is present when query tracing is wired: per-stage duration
	// quantiles (expand, prepare, segment, merge, ...) aggregated from
	// the span data of traced requests. Only traced requests feed these
	// histograms, so counts lag the totals above when tracing is
	// sampled.
	Stages []trace.StageSummary `json:"stages,omitempty"`
}

// SegmentTimings accumulates per-segment scoring latency. Observe is
// lock-free (the histograms are atomic), so it can sit directly on the
// engine's fan-out hot path as a search.SegmentObserver.
type SegmentTimings struct {
	docs  []int
	hists []*metrics.Histogram
}

// NewSegmentTimings sizes the collector for segments with the given
// document counts.
func NewSegmentTimings(docs []int) *SegmentTimings {
	st := &SegmentTimings{docs: docs, hists: make([]*metrics.Histogram, len(docs))}
	for i := range st.hists {
		st.hists[i] = &metrics.Histogram{}
	}
	return st
}

// Observe records one segment scoring pass (candidates is accepted to
// match search.SegmentObserver; the per-pass latency is what is kept).
func (st *SegmentTimings) Observe(segment, candidates int, d time.Duration) {
	if segment < 0 || segment >= len(st.hists) {
		return
	}
	st.hists[segment].Observe(d)
}

// Summaries snapshots every segment's telemetry.
func (st *SegmentTimings) Summaries() []SegmentSummary {
	out := make([]SegmentSummary, len(st.hists))
	for i, h := range st.hists {
		out[i] = SegmentSummary{
			Segment:  i,
			Docs:     st.docs[i],
			Searches: int64(h.Count()),
			Latency:  h.Summary(),
		}
	}
	return out
}
