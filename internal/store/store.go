// Package store persists complete archives — the collection (videos,
// stories, shots with transcripts, keyframes and concept annotations)
// plus the evaluation ground truth (topics, search topics, qrels,
// clean transcripts) — in a single versioned, CRC-checksummed binary
// container. It is the "recording framework" half of the paper's
// proposal: once a broadcast archive is built it can be stored, shipped
// and reopened without regenerating.
//
// Format (version 1):
//
//	magic    8 bytes  "IVRARC\x00\x01"
//	payload  N bytes  varint-encoded sections (config, collection, truth)
//	crc32    4 bytes  big-endian IEEE checksum of payload
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/collection"
	"repro/internal/synth"
)

var magic = [8]byte{'I', 'V', 'R', 'A', 'R', 'C', 0, 1}

// Errors surfaced by the container layer.
var (
	ErrBadFormat = errors.New("store: not an archive file or unsupported version")
	ErrChecksum  = errors.New("store: checksum mismatch (file corrupt)")
)

// writer accumulates the payload.
type writer struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (w *writer) uvarint(v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.buf.Write(w.scratch[:n])
}

func (w *writer) varint(v int64) {
	n := binary.PutVarint(w.scratch[:], v)
	w.buf.Write(w.scratch[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *writer) f64(v float64) {
	w.uvarint(math.Float64bits(v))
}

// reader decodes the payload.
type reader struct {
	buf []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at %d", ErrBadFormat, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at %d", ErrBadFormat, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) str() (string, error) {
	l, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if r.off+int(l) > len(r.buf) {
		return "", fmt.Errorf("%w: truncated string at %d", ErrBadFormat, r.off)
	}
	s := string(r.buf[r.off : r.off+int(l)])
	r.off += int(l)
	return s, nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(v), nil
}

// Write serialises an archive to w.
func Write(w io.Writer, arch *synth.Archive) (int64, error) {
	if arch == nil || arch.Collection == nil || arch.Truth == nil {
		return 0, fmt.Errorf("store: incomplete archive")
	}
	var p writer
	writeConfig(&p, arch.Config)
	writeCollection(&p, arch.Collection)
	writeTruth(&p, arch.Truth)

	payload := p.buf.Bytes()
	var total int64
	n, err := w.Write(magic[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("store: write header: %w", err)
	}
	n, err = w.Write(payload)
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("store: write payload: %w", err)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	n, err = w.Write(crc[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("store: write checksum: %w", err)
	}
	return total, nil
}

// Read deserialises an archive from r, verifying magic and checksum.
func Read(r io.Reader) (*synth.Archive, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	if len(raw) < len(magic)+4 || !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, ErrBadFormat
	}
	payload := raw[len(magic) : len(raw)-4]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(raw[len(raw)-4:]) {
		return nil, ErrChecksum
	}
	p := &reader{buf: payload}
	cfg, err := readConfig(p)
	if err != nil {
		return nil, err
	}
	coll, err := readCollection(p)
	if err != nil {
		return nil, err
	}
	truth, err := readTruth(p, coll)
	if err != nil {
		return nil, err
	}
	if p.off != len(p.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormat, len(p.buf)-p.off)
	}
	if err := coll.Validate(); err != nil {
		return nil, fmt.Errorf("store: loaded collection invalid: %w", err)
	}
	return &synth.Archive{Collection: coll, Truth: truth, Config: cfg}, nil
}

// Save writes the archive atomically (temp file + rename).
func Save(path string, arch *synth.Archive) error {
	dir := "."
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			dir = path[:i]
			break
		}
	}
	tmp, err := os.CreateTemp(dir, ".ivrarc-*")
	if err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := Write(tmp, arch); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	return nil
}

// Load reads an archive file written by Save.
func Load(path string) (*synth.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func writeConfig(p *writer, cfg synth.Config) {
	p.varint(int64(cfg.Days))
	p.varint(int64(cfg.StoriesPerVideo))
	p.varint(int64(cfg.MinShotsPerStory))
	p.varint(int64(cfg.MaxShotsPerStory))
	p.varint(int64(cfg.MinWordsPerShot))
	p.varint(int64(cfg.MaxWordsPerShot))
	p.varint(int64(cfg.NumTopics))
	p.varint(int64(cfg.NumSearchTopics))
	p.varint(int64(cfg.BackgroundVocab))
	p.varint(int64(cfg.TermsPerTopic))
	p.varint(int64(cfg.TermsPerCategory))
	p.f64(cfg.TopicMix)
	p.f64(cfg.CategoryMix)
	p.f64(cfg.LeakMix)
	p.f64(cfg.WER)
	p.f64(cfg.Detector.TPR)
	p.f64(cfg.Detector.FPR)
	p.f64(cfg.MinShotSeconds)
	p.f64(cfg.MaxShotSeconds)
	p.varint(int64(cfg.MaxKeyframesPerShot))
	p.str(cfg.Channel)
	p.varint(cfg.StartDate.UnixNano())
}

func readConfig(p *reader) (synth.Config, error) {
	var cfg synth.Config
	ints := []*int{
		&cfg.Days, &cfg.StoriesPerVideo, &cfg.MinShotsPerStory, &cfg.MaxShotsPerStory,
		&cfg.MinWordsPerShot, &cfg.MaxWordsPerShot, &cfg.NumTopics, &cfg.NumSearchTopics,
		&cfg.BackgroundVocab, &cfg.TermsPerTopic, &cfg.TermsPerCategory,
	}
	for _, dst := range ints {
		v, err := p.varint()
		if err != nil {
			return cfg, err
		}
		*dst = int(v)
	}
	floats := []*float64{
		&cfg.TopicMix, &cfg.CategoryMix, &cfg.LeakMix, &cfg.WER,
		&cfg.Detector.TPR, &cfg.Detector.FPR, &cfg.MinShotSeconds, &cfg.MaxShotSeconds,
	}
	for _, dst := range floats {
		v, err := p.f64()
		if err != nil {
			return cfg, err
		}
		*dst = v
	}
	v, err := p.varint()
	if err != nil {
		return cfg, err
	}
	cfg.MaxKeyframesPerShot = int(v)
	if cfg.Channel, err = p.str(); err != nil {
		return cfg, err
	}
	ns, err := p.varint()
	if err != nil {
		return cfg, err
	}
	cfg.StartDate = time.Unix(0, ns).UTC()
	return cfg, nil
}

func writeCollection(p *writer, coll *collection.Collection) {
	p.uvarint(uint64(coll.NumVideos()))
	coll.Videos(func(v *collection.Video) bool {
		p.str(string(v.ID))
		p.str(v.Title)
		p.str(v.Channel)
		p.varint(v.Broadcast.UnixNano())
		p.varint(int64(v.Duration))
		return true
	})
	p.uvarint(uint64(coll.NumStories()))
	coll.Stories(func(st *collection.Story) bool {
		p.str(string(st.ID))
		p.str(string(st.VideoID))
		p.varint(int64(st.Index))
		p.str(st.Title)
		p.uvarint(uint64(st.Category))
		p.varint(int64(st.TopicID))
		return true
	})
	p.uvarint(uint64(coll.NumShots()))
	coll.Shots(func(sh *collection.Shot) bool {
		p.str(string(sh.ID))
		p.str(string(sh.VideoID))
		p.str(string(sh.StoryID))
		p.varint(int64(sh.Index))
		p.uvarint(uint64(sh.Kind))
		p.varint(int64(sh.Start))
		p.varint(int64(sh.Duration))
		p.str(sh.Transcript)
		p.uvarint(uint64(len(sh.Keyframes)))
		for _, kf := range sh.Keyframes {
			p.varint(int64(kf.Offset))
		}
		p.uvarint(uint64(len(sh.Concepts)))
		for _, cs := range sh.Concepts {
			p.str(string(cs.Concept))
			p.f64(cs.Confidence)
		}
		p.uvarint(uint64(len(sh.TrueConcepts)))
		for _, c := range sh.TrueConcepts {
			p.str(string(c))
		}
		return true
	})
}

func readCollection(p *reader) (*collection.Collection, error) {
	coll := collection.New()
	nVideos, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nVideos; i++ {
		v := &collection.Video{}
		var id string
		if id, err = p.str(); err != nil {
			return nil, err
		}
		v.ID = collection.VideoID(id)
		if v.Title, err = p.str(); err != nil {
			return nil, err
		}
		if v.Channel, err = p.str(); err != nil {
			return nil, err
		}
		ns, err := p.varint()
		if err != nil {
			return nil, err
		}
		v.Broadcast = time.Unix(0, ns).UTC()
		dur, err := p.varint()
		if err != nil {
			return nil, err
		}
		v.Duration = time.Duration(dur)
		if err := coll.AddVideo(v); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	nStories, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nStories; i++ {
		st := &collection.Story{}
		var s string
		if s, err = p.str(); err != nil {
			return nil, err
		}
		st.ID = collection.StoryID(s)
		if s, err = p.str(); err != nil {
			return nil, err
		}
		st.VideoID = collection.VideoID(s)
		idx, err := p.varint()
		if err != nil {
			return nil, err
		}
		st.Index = int(idx)
		if st.Title, err = p.str(); err != nil {
			return nil, err
		}
		cat, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		st.Category = collection.Category(cat)
		tid, err := p.varint()
		if err != nil {
			return nil, err
		}
		st.TopicID = int(tid)
		if err := coll.AddStory(st); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	nShots, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nShots; i++ {
		sh := &collection.Shot{}
		var s string
		if s, err = p.str(); err != nil {
			return nil, err
		}
		sh.ID = collection.ShotID(s)
		if s, err = p.str(); err != nil {
			return nil, err
		}
		sh.VideoID = collection.VideoID(s)
		if s, err = p.str(); err != nil {
			return nil, err
		}
		sh.StoryID = collection.StoryID(s)
		idx, err := p.varint()
		if err != nil {
			return nil, err
		}
		sh.Index = int(idx)
		kind, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		sh.Kind = collection.ShotKind(kind)
		start, err := p.varint()
		if err != nil {
			return nil, err
		}
		sh.Start = time.Duration(start)
		dur, err := p.varint()
		if err != nil {
			return nil, err
		}
		sh.Duration = time.Duration(dur)
		if sh.Transcript, err = p.str(); err != nil {
			return nil, err
		}
		nKF, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		for k := uint64(0); k < nKF; k++ {
			off, err := p.varint()
			if err != nil {
				return nil, err
			}
			sh.Keyframes = append(sh.Keyframes, collection.Keyframe{
				ShotID: sh.ID, Offset: time.Duration(off),
			})
		}
		nCS, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		for k := uint64(0); k < nCS; k++ {
			cname, err := p.str()
			if err != nil {
				return nil, err
			}
			conf, err := p.f64()
			if err != nil {
				return nil, err
			}
			sh.Concepts = append(sh.Concepts, collection.ConceptScore{
				Concept: collection.Concept(cname), Confidence: conf,
			})
		}
		nTC, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		for k := uint64(0); k < nTC; k++ {
			cname, err := p.str()
			if err != nil {
				return nil, err
			}
			sh.TrueConcepts = append(sh.TrueConcepts, collection.Concept(cname))
		}
		if err := coll.AddShot(sh); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return coll, nil
}

func writeTruth(p *writer, truth *synth.GroundTruth) {
	p.uvarint(uint64(len(truth.Topics)))
	for _, t := range truth.Topics {
		p.varint(int64(t.ID))
		p.uvarint(uint64(t.Category))
		p.uvarint(uint64(len(t.Terms)))
		for _, term := range t.Terms {
			p.str(term)
		}
		p.uvarint(uint64(len(t.Concepts)))
		for _, c := range t.Concepts {
			p.str(string(c))
		}
		p.f64(t.Popularity)
	}
	p.uvarint(uint64(len(truth.SearchTopics)))
	for _, st := range truth.SearchTopics {
		p.varint(int64(st.ID))
		p.varint(int64(st.TopicID))
		p.str(st.Query)
		p.str(st.Verbose)
		p.uvarint(uint64(st.Category))
	}
	// Qrels in sorted order for deterministic bytes.
	topicIDs := make([]int, 0, len(truth.Qrels))
	for id := range truth.Qrels {
		topicIDs = append(topicIDs, id)
	}
	sort.Ints(topicIDs)
	p.uvarint(uint64(len(topicIDs)))
	for _, tid := range topicIDs {
		p.varint(int64(tid))
		m := truth.Qrels[tid]
		ids := make([]string, 0, len(m))
		for sid := range m {
			ids = append(ids, string(sid))
		}
		sort.Strings(ids)
		p.uvarint(uint64(len(ids)))
		for _, sid := range ids {
			p.str(sid)
			p.varint(int64(m[collection.ShotID(sid)]))
		}
	}
	// Clean transcripts, sorted by shot ID.
	ids := make([]string, 0, len(truth.CleanTranscript))
	for sid := range truth.CleanTranscript {
		ids = append(ids, string(sid))
	}
	sort.Strings(ids)
	p.uvarint(uint64(len(ids)))
	for _, sid := range ids {
		p.str(sid)
		p.str(truth.CleanTranscript[collection.ShotID(sid)])
	}
}

func readTruth(p *reader, coll *collection.Collection) (*synth.GroundTruth, error) {
	truth := &synth.GroundTruth{
		Qrels:           make(synth.Qrels),
		StoryTopic:      make(map[collection.StoryID]int),
		CleanTranscript: make(map[collection.ShotID]string),
	}
	nTopics, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTopics; i++ {
		t := &synth.Topic{}
		id, err := p.varint()
		if err != nil {
			return nil, err
		}
		t.ID = int(id)
		cat, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		t.Category = collection.Category(cat)
		nTerms, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		for k := uint64(0); k < nTerms; k++ {
			term, err := p.str()
			if err != nil {
				return nil, err
			}
			t.Terms = append(t.Terms, term)
		}
		nC, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		for k := uint64(0); k < nC; k++ {
			c, err := p.str()
			if err != nil {
				return nil, err
			}
			t.Concepts = append(t.Concepts, collection.Concept(c))
		}
		if t.Popularity, err = p.f64(); err != nil {
			return nil, err
		}
		truth.Topics = append(truth.Topics, t)
	}
	nST, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nST; i++ {
		st := &synth.SearchTopic{}
		id, err := p.varint()
		if err != nil {
			return nil, err
		}
		st.ID = int(id)
		tid, err := p.varint()
		if err != nil {
			return nil, err
		}
		st.TopicID = int(tid)
		if st.Query, err = p.str(); err != nil {
			return nil, err
		}
		if st.Verbose, err = p.str(); err != nil {
			return nil, err
		}
		cat, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		st.Category = collection.Category(cat)
		truth.SearchTopics = append(truth.SearchTopics, st)
	}
	nQ, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nQ; i++ {
		tid, err := p.varint()
		if err != nil {
			return nil, err
		}
		nIDs, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		m := make(map[collection.ShotID]int, nIDs)
		for k := uint64(0); k < nIDs; k++ {
			sid, err := p.str()
			if err != nil {
				return nil, err
			}
			grade, err := p.varint()
			if err != nil {
				return nil, err
			}
			m[collection.ShotID(sid)] = int(grade)
		}
		truth.Qrels[int(tid)] = m
	}
	nCT, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nCT; i++ {
		sid, err := p.str()
		if err != nil {
			return nil, err
		}
		txt, err := p.str()
		if err != nil {
			return nil, err
		}
		truth.CleanTranscript[collection.ShotID(sid)] = txt
	}
	// StoryTopic is derivable from the stories.
	coll.Stories(func(st *collection.Story) bool {
		truth.StoryTopic[st.ID] = st.TopicID
		return true
	})
	return truth, nil
}
