package store

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/synth"
)

func makeArchive(t testing.TB, seed int64) *synth.Archive {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return arch
}

func TestRoundTrip(t *testing.T) {
	arch := makeArchive(t, 1)
	var buf bytes.Buffer
	if _, err := Write(&buf, arch); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertArchivesEqual(t, arch, got)
}

func TestSaveLoad(t *testing.T) {
	arch := makeArchive(t, 2)
	path := filepath.Join(t.TempDir(), "a.ivrarc")
	if err := Save(path, arch); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertArchivesEqual(t, arch, got)
}

func assertArchivesEqual(t *testing.T, want, got *synth.Archive) {
	t.Helper()
	// Config round-trips exactly.
	if !reflect.DeepEqual(want.Config, got.Config) {
		t.Errorf("config mismatch:\n got %+v\nwant %+v", got.Config, want.Config)
	}
	// Collection: same sizes, same IDs in order, same shot payloads.
	if got.Collection.NumVideos() != want.Collection.NumVideos() ||
		got.Collection.NumStories() != want.Collection.NumStories() ||
		got.Collection.NumShots() != want.Collection.NumShots() {
		t.Fatalf("collection sizes differ")
	}
	if !reflect.DeepEqual(got.Collection.ShotIDs(), want.Collection.ShotIDs()) {
		t.Fatal("shot ID order differs")
	}
	for _, id := range want.Collection.ShotIDs() {
		ws, gs := want.Collection.Shot(id), got.Collection.Shot(id)
		if ws.Transcript != gs.Transcript || ws.Kind != gs.Kind ||
			ws.Start != gs.Start || ws.Duration != gs.Duration || ws.Index != gs.Index {
			t.Fatalf("shot %s basic fields differ", id)
		}
		if !reflect.DeepEqual(ws.Keyframes, gs.Keyframes) {
			t.Fatalf("shot %s keyframes differ", id)
		}
		if !reflect.DeepEqual(ws.Concepts, gs.Concepts) {
			t.Fatalf("shot %s concepts differ", id)
		}
		if !reflect.DeepEqual(ws.TrueConcepts, gs.TrueConcepts) {
			t.Fatalf("shot %s true concepts differ", id)
		}
	}
	for _, id := range want.Collection.StoryIDs() {
		wst, gst := want.Collection.Story(id), got.Collection.Story(id)
		if wst.Title != gst.Title || wst.Category != gst.Category || wst.TopicID != gst.TopicID {
			t.Fatalf("story %s differs", id)
		}
		if !reflect.DeepEqual(wst.Shots, gst.Shots) {
			t.Fatalf("story %s shot list differs", id)
		}
	}
	for _, id := range want.Collection.VideoIDs() {
		wv, gv := want.Collection.Video(id), got.Collection.Video(id)
		if wv.Title != gv.Title || !wv.Broadcast.Equal(gv.Broadcast) || wv.Duration != gv.Duration {
			t.Fatalf("video %s differs", id)
		}
	}
	// Truth.
	if !reflect.DeepEqual(want.Truth.Qrels, got.Truth.Qrels) {
		t.Error("qrels differ")
	}
	if !reflect.DeepEqual(want.Truth.StoryTopic, got.Truth.StoryTopic) {
		t.Error("story-topic map differs")
	}
	if !reflect.DeepEqual(want.Truth.CleanTranscript, got.Truth.CleanTranscript) {
		t.Error("clean transcripts differ")
	}
	if len(want.Truth.Topics) != len(got.Truth.Topics) {
		t.Fatal("topic counts differ")
	}
	for i := range want.Truth.Topics {
		if !reflect.DeepEqual(want.Truth.Topics[i], got.Truth.Topics[i]) {
			t.Fatalf("topic %d differs", i)
		}
	}
	for i := range want.Truth.SearchTopics {
		if !reflect.DeepEqual(want.Truth.SearchTopics[i], got.Truth.SearchTopics[i]) {
			t.Fatalf("search topic %d differs", i)
		}
	}
}

func TestDeterministicBytes(t *testing.T) {
	arch := makeArchive(t, 3)
	var a, b bytes.Buffer
	if _, err := Write(&a, arch); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(&b, arch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialisation is not byte-deterministic")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("definitely not an archive")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("garbage: %v", err)
	}
	if _, err := Read(strings.NewReader("")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("empty: %v", err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	arch := makeArchive(t, 4)
	var buf bytes.Buffer
	if _, err := Write(&buf, arch); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	corrupt := make([]byte, len(raw))
	copy(corrupt, raw)
	corrupt[len(magic)+10] ^= 0x55
	if _, err := Read(bytes.NewReader(corrupt)); !errors.Is(err, ErrChecksum) {
		t.Errorf("bit flip: %v, want ErrChecksum", err)
	}
	if _, err := Read(bytes.NewReader(raw[:len(raw)*2/3])); err == nil {
		t.Error("truncation accepted")
	}
}

// TestCorruptionFuzz flips random bytes throughout the file and
// requires Read to fail cleanly (error, never panic, never silently
// succeed with altered payload bytes).
func TestCorruptionFuzz(t *testing.T) {
	arch := makeArchive(t, 5)
	var buf bytes.Buffer
	if _, err := Write(&buf, arch); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		corrupt := make([]byte, len(raw))
		copy(corrupt, raw)
		pos := r.Intn(len(corrupt))
		bit := byte(1 << r.Intn(8))
		corrupt[pos] ^= bit
		_, err := Read(bytes.NewReader(corrupt))
		if pos >= len(magic) && pos < len(raw)-4 {
			// Payload flip must be caught by the checksum.
			if err == nil {
				t.Fatalf("trial %d: payload corruption at %d accepted", trial, pos)
			}
		} else if err == nil {
			t.Fatalf("trial %d: header/footer corruption at %d accepted", trial, pos)
		}
	}
}

func TestWriteRejectsIncomplete(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, nil); err == nil {
		t.Error("nil archive accepted")
	}
	if _, err := Write(&buf, &synth.Archive{}); err == nil {
		t.Error("empty archive accepted")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "none.ivrarc")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadedArchiveIsUsable(t *testing.T) {
	arch := makeArchive(t, 6)
	var buf bytes.Buffer
	if _, err := Write(&buf, arch); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded archive supports the standard evaluation path.
	if got.Collection.Validate() != nil {
		t.Fatal("loaded collection invalid")
	}
	for _, st := range got.Truth.SearchTopics {
		if got.Truth.Qrels.NumRelevant(st.ID, 1) == 0 {
			t.Errorf("topic %d lost its qrels", st.ID)
		}
	}
}

func BenchmarkWriteRead(b *testing.B) {
	arch := makeArchive(b, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := Write(&buf, arch); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
