package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/collection"
)

// ASRChannel is a word-error channel simulating automatic speech
// recognition over broadcast audio. It degrades ground-truth text with
// substitutions, deletions and insertions at a configurable overall
// word error rate, reproducing the paper's premise that "textual
// sources of video clips, i.e. speech transcripts, are often not
// reliable enough".
type ASRChannel struct {
	// WER is the total word error rate in [0,1): the probability that
	// any given word participates in an error.
	WER float64
	// SubFrac, DelFrac, InsFrac split WER among error kinds; they are
	// normalised internally, so only ratios matter. Zero values fall
	// back to the empirical broadcast-ASR split 60/25/15.
	SubFrac, DelFrac, InsFrac float64
	// Lexicon supplies substitute/inserted words; typically the
	// background vocabulary. Must be non-empty when WER > 0.
	Lexicon []string
}

// normalised returns the per-word probabilities of each error kind.
func (a *ASRChannel) normalised() (sub, del, ins float64) {
	s, d, i := a.SubFrac, a.DelFrac, a.InsFrac
	if s == 0 && d == 0 && i == 0 {
		s, d, i = 0.60, 0.25, 0.15
	}
	tot := s + d + i
	return a.WER * s / tot, a.WER * d / tot, a.WER * i / tot
}

// Corrupt passes text through the channel. With WER == 0 the input is
// returned unchanged (fast path).
func (a *ASRChannel) Corrupt(r *rand.Rand, text string) string {
	if a.WER <= 0 {
		return text
	}
	words := strings.Fields(text)
	if len(words) == 0 {
		return text
	}
	sub, del, ins := a.normalised()
	out := make([]string, 0, len(words)+2)
	for _, w := range words {
		p := r.Float64()
		switch {
		case p < sub:
			out = append(out, a.Lexicon[r.Intn(len(a.Lexicon))])
		case p < sub+del:
			// dropped
		case p < sub+del+ins:
			out = append(out, w, a.Lexicon[r.Intn(len(a.Lexicon))])
		default:
			out = append(out, w)
		}
	}
	return strings.Join(out, " ")
}

// CorruptArchive rebuilds an archive's collection with the clean
// transcripts passed through a fresh ASR channel at the given WER.
// Everything else (structure, stories, concepts, keyframes, qrels) is
// preserved, so sweeps over WER isolate transcript quality — the T9
// experiment's requirement. The source archive is not modified.
func CorruptArchive(arch *Archive, wer float64, seed int64) (*collection.Collection, error) {
	if wer < 0 || wer >= 1 {
		return nil, fmt.Errorf("synth: WER %v outside [0,1)", wer)
	}
	r := rand.New(rand.NewSource(seed))
	// Rebuild the lexicon deterministically from the archive config so
	// substitutions come from the same background vocabulary.
	vr := rand.New(rand.NewSource(seed + 1))
	vocab, err := NewVocabulary(vr, arch.Config.BackgroundVocab, collection.NumCategories,
		arch.Config.TermsPerCategory, arch.Config.NumTopics*arch.Config.TermsPerTopic)
	if err != nil {
		return nil, err
	}
	ch := ASRChannel{WER: wer, Lexicon: vocab.Background}
	out := collection.New()
	var buildErr error
	arch.Collection.Videos(func(v *collection.Video) bool {
		nv := *v
		nv.Stories = nil
		nv.Shots = nil
		buildErr = out.AddVideo(&nv)
		return buildErr == nil
	})
	if buildErr != nil {
		return nil, buildErr
	}
	arch.Collection.Stories(func(st *collection.Story) bool {
		ns := *st
		ns.Shots = nil
		buildErr = out.AddStory(&ns)
		return buildErr == nil
	})
	if buildErr != nil {
		return nil, buildErr
	}
	arch.Collection.Shots(func(sh *collection.Shot) bool {
		nsh := *sh
		clean, ok := arch.Truth.CleanTranscript[sh.ID]
		if !ok {
			buildErr = fmt.Errorf("synth: no clean transcript for %s", sh.ID)
			return false
		}
		nsh.Transcript = ch.Corrupt(r, clean)
		buildErr = out.AddShot(&nsh)
		return buildErr == nil
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return out, nil
}

// MeasureWER computes the standard word error rate of hypothesis
// against reference: the word-level Levenshtein distance (substitutions
// + deletions + insertions) divided by the reference length. It is used
// by tests and the T9 experiment to verify the channel is calibrated.
func MeasureWER(reference, hypothesis string) float64 {
	ref := strings.Fields(reference)
	hyp := strings.Fields(hypothesis)
	if len(ref) == 0 {
		return 0
	}
	// Two-row dynamic program over the (ref x hyp) edit lattice.
	prev := make([]int, len(hyp)+1)
	cur := make([]int, len(hyp)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ref); i++ {
		cur[0] = i
		for j := 1; j <= len(hyp); j++ {
			sub := prev[j-1]
			if ref[i-1] != hyp[j-1] {
				sub++
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			m := sub
			if del < m {
				m = del
			}
			if ins < m {
				m = ins
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(hyp)]) / float64(len(ref))
}
