package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/collection"
)

// Config parameterises archive generation. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Days is the number of daily bulletins to record.
	Days int
	// StoriesPerVideo is the number of stories per bulletin.
	StoriesPerVideo int
	// MinShotsPerStory/MaxShotsPerStory bound story length in shots.
	MinShotsPerStory, MaxShotsPerStory int
	// MinWordsPerShot/MaxWordsPerShot bound ground-truth transcript length.
	MinWordsPerShot, MaxWordsPerShot int
	// NumTopics is the number of ground-truth news topics.
	NumTopics int
	// NumSearchTopics is how many evaluation queries to emit (<= NumTopics).
	NumSearchTopics int
	// Vocabulary partition sizes.
	BackgroundVocab, TermsPerTopic, TermsPerCategory int
	// TopicMix/CategoryMix are the probabilities that a generated word
	// is drawn from the story's topic / category vocabulary; the rest
	// is Zipfian background.
	TopicMix, CategoryMix float64
	// LeakMix is the probability that a word is drawn from a *random
	// other* topic's vocabulary, simulating the polysemy and shared
	// vocabulary that make real news retrieval non-separable (the
	// semantic gap's textual face). Without leakage, topic queries
	// would be trivially perfect.
	LeakMix float64
	// WER is the simulated ASR word error rate.
	WER float64
	// Detector simulates concept detection quality.
	Detector DetectorModel
	// MinShotSeconds/MaxShotSeconds bound shot duration.
	MinShotSeconds, MaxShotSeconds float64
	// MaxKeyframesPerShot bounds keyframes (>=1 always emitted).
	MaxKeyframesPerShot int
	// Channel and StartDate label the generated broadcasts.
	Channel   string
	StartDate time.Time
}

// DefaultConfig models a month of one-per-day half-hour bulletins: the
// scale of the news-archive scenario in the paper's framework proposal.
func DefaultConfig() Config {
	return Config{
		Days:                30,
		StoriesPerVideo:     10,
		MinShotsPerStory:    3,
		MaxShotsPerStory:    8,
		MinWordsPerShot:     25,
		MaxWordsPerShot:     70,
		NumTopics:           120,
		NumSearchTopics:     25,
		BackgroundVocab:     4000,
		TermsPerTopic:       12,
		TermsPerCategory:    30,
		TopicMix:            0.18,
		CategoryMix:         0.15,
		LeakMix:             0.15,
		WER:                 0.20,
		Detector:            DefaultDetector(),
		MinShotSeconds:      4,
		MaxShotSeconds:      30,
		MaxKeyframesPerShot: 3,
		Channel:             "SYN1",
		StartDate:           time.Date(2007, 11, 5, 13, 0, 0, 0, time.UTC),
	}
}

// TinyConfig is a fast configuration for tests and examples.
func TinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Days = 6
	cfg.StoriesPerVideo = 5
	cfg.NumTopics = 24
	cfg.NumSearchTopics = 8
	cfg.BackgroundVocab = 800
	return cfg
}

// validate rejects incoherent configurations early.
func (c Config) validate() error {
	switch {
	case c.Days <= 0 || c.StoriesPerVideo <= 0:
		return fmt.Errorf("synth: Days and StoriesPerVideo must be positive")
	case c.MinShotsPerStory <= 0 || c.MaxShotsPerStory < c.MinShotsPerStory:
		return fmt.Errorf("synth: bad shots-per-story range [%d,%d]", c.MinShotsPerStory, c.MaxShotsPerStory)
	case c.MinWordsPerShot <= 0 || c.MaxWordsPerShot < c.MinWordsPerShot:
		return fmt.Errorf("synth: bad words-per-shot range [%d,%d]", c.MinWordsPerShot, c.MaxWordsPerShot)
	case c.NumTopics <= 0:
		return fmt.Errorf("synth: NumTopics must be positive")
	case c.NumSearchTopics < 0 || c.NumSearchTopics > c.NumTopics:
		return fmt.Errorf("synth: NumSearchTopics %d outside [0,%d]", c.NumSearchTopics, c.NumTopics)
	case c.NumSearchTopics > c.Days*c.StoriesPerVideo:
		return fmt.Errorf("synth: %d search topics cannot all air in %d story slots",
			c.NumSearchTopics, c.Days*c.StoriesPerVideo)
	case c.TopicMix < 0 || c.CategoryMix < 0 || c.LeakMix < 0 || c.TopicMix+c.CategoryMix+c.LeakMix >= 1:
		return fmt.Errorf("synth: TopicMix+CategoryMix+LeakMix must stay below 1")
	case c.WER < 0 || c.WER >= 1:
		return fmt.Errorf("synth: WER %v outside [0,1)", c.WER)
	case c.MinShotSeconds <= 0 || c.MaxShotSeconds < c.MinShotSeconds:
		return fmt.Errorf("synth: bad shot seconds range [%v,%v]", c.MinShotSeconds, c.MaxShotSeconds)
	case c.MaxKeyframesPerShot < 1:
		return fmt.Errorf("synth: MaxKeyframesPerShot must be >= 1")
	}
	return nil
}

// GroundTruth carries everything the evaluation and simulation layers
// need but retrieval code must never see.
type GroundTruth struct {
	Topics       []*Topic
	SearchTopics []*SearchTopic
	Qrels        Qrels
	// StoryTopic maps each story to the topic that generated it.
	StoryTopic map[collection.StoryID]int
	// CleanTranscript is the pre-ASR text of each shot.
	CleanTranscript map[collection.ShotID]string
}

// Archive bundles a generated collection with its ground truth.
type Archive struct {
	Collection *collection.Collection
	Truth      *GroundTruth
	Config     Config
}

// Generate builds a complete synthetic archive. The same (cfg, seed)
// always produces the identical archive.
func Generate(cfg Config, seed int64) (*Archive, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	vocab, err := NewVocabulary(r, cfg.BackgroundVocab, collection.NumCategories,
		cfg.TermsPerCategory, cfg.NumTopics*cfg.TermsPerTopic)
	if err != nil {
		return nil, err
	}
	topics := generateTopics(r, vocab, cfg.NumTopics, cfg.TermsPerTopic)
	searchTopics := makeSearchTopics(r, topics, cfg.NumSearchTopics)

	g := &generator{
		cfg:    cfg,
		r:      r,
		vocab:  vocab,
		topics: topics,
		zipf:   newZipfSampler(r, cfg.BackgroundVocab),
		asr: ASRChannel{
			WER:     cfg.WER,
			Lexicon: vocab.Background,
		},
		coll: collection.New(),
		truth: &GroundTruth{
			Topics:          topics,
			SearchTopics:    searchTopics,
			Qrels:           make(Qrels),
			StoryTopic:      make(map[collection.StoryID]int),
			CleanTranscript: make(map[collection.ShotID]string),
		},
	}
	if err := g.run(); err != nil {
		return nil, err
	}
	g.buildQrels()
	if err := g.coll.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated collection failed validation: %w", err)
	}
	return &Archive{Collection: g.coll, Truth: g.truth, Config: cfg}, nil
}

type generator struct {
	cfg    Config
	r      *rand.Rand
	vocab  *Vocabulary
	topics []*Topic
	zipf   *zipfSampler
	asr    ASRChannel
	coll   *collection.Collection
	truth  *GroundTruth
	// uncovered tracks evaluated topics that have not yet aired;
	// slotsLeft counts remaining story slots. Together they let the
	// scheduler guarantee that every search topic has relevant
	// material in the archive.
	uncovered map[int]bool
	slotsLeft int
}

func (g *generator) run() error {
	g.uncovered = make(map[int]bool, len(g.truth.SearchTopics))
	for _, st := range g.truth.SearchTopics {
		g.uncovered[st.TopicID] = true
	}
	g.slotsLeft = g.cfg.Days * g.cfg.StoriesPerVideo
	for day := 0; day < g.cfg.Days; day++ {
		if err := g.makeVideo(day); err != nil {
			return err
		}
	}
	return nil
}

// pickTopic selects a topic for a story slot. Half the slots follow
// topic popularity (lead stories recur); the other half rotate through
// the topic list so minor topics cycle through bulletins. When the
// remaining slot budget just covers the still-unaired evaluation
// topics, those are force-scheduled so qrels are never empty.
func (g *generator) pickTopic(day, slot int, used map[int]bool) *Topic {
	g.slotsLeft--
	if len(g.uncovered) > g.slotsLeft {
		// Must cover an unaired evaluation topic now; take the lowest
		// ID for determinism.
		best := -1
		for id := range g.uncovered {
			if best == -1 || id < best {
				best = id
			}
		}
		delete(g.uncovered, best)
		return g.topics[best]
	}
	pick := func(t *Topic) *Topic {
		delete(g.uncovered, t.ID)
		return t
	}
	rotation := (day*g.cfg.StoriesPerVideo + slot) % len(g.topics)
	if !used[rotation] && g.r.Float64() < 0.5 {
		return pick(g.topics[rotation])
	}
	// Popularity-weighted sampling with a few retries to avoid
	// duplicate topics inside one bulletin.
	var total float64
	for _, t := range g.topics {
		total += t.Popularity
	}
	for attempt := 0; attempt < 8; attempt++ {
		x := g.r.Float64() * total
		for _, t := range g.topics {
			x -= t.Popularity
			if x <= 0 {
				if !used[t.ID] {
					return pick(t)
				}
				break
			}
		}
	}
	return pick(g.topics[rotation])
}

func (g *generator) makeVideo(day int) error {
	vid := collection.VideoID(fmt.Sprintf("v%04d", day))
	date := g.cfg.StartDate.AddDate(0, 0, day)
	video := &collection.Video{
		ID:        vid,
		Title:     fmt.Sprintf("%s News %s", g.cfg.Channel, date.Format("2006-01-02")),
		Channel:   g.cfg.Channel,
		Broadcast: date,
	}
	if err := g.coll.AddVideo(video); err != nil {
		return err
	}
	var cursor time.Duration
	shotIndex := 0
	used := make(map[int]bool, g.cfg.StoriesPerVideo)
	for slot := 0; slot < g.cfg.StoriesPerVideo; slot++ {
		topic := g.pickTopic(day, slot, used)
		used[topic.ID] = true
		aspect := g.sampleAspect(topic)
		sid := collection.StoryID(fmt.Sprintf("%s_t%02d", vid, slot))
		// The headline is written from the story's own vocabulary, not
		// the canonical topic terms — editors phrase stories their own
		// way, which is what makes title indexing non-trivial.
		titleLen := 3
		if titleLen > len(aspect) {
			titleLen = len(aspect)
		}
		story := &collection.Story{
			ID:       sid,
			VideoID:  vid,
			Index:    slot,
			Title:    strings.Join(aspect[:titleLen], " "),
			Category: topic.Category,
			TopicID:  topic.ID,
		}
		if err := g.coll.AddStory(story); err != nil {
			return err
		}
		g.truth.StoryTopic[sid] = topic.ID
		nShots := g.cfg.MinShotsPerStory + g.r.Intn(g.cfg.MaxShotsPerStory-g.cfg.MinShotsPerStory+1)
		for s := 0; s < nShots; s++ {
			shot, err := g.makeShot(vid, sid, topic, aspect, shotIndex, s, nShots, cursor)
			if err != nil {
				return err
			}
			cursor = shot.End()
			shotIndex++
		}
	}
	video.Duration = cursor
	return nil
}

// shotKind assigns a production role: stories open on the anchor, then
// cut between report, interview and graphics footage; weather stories
// use weather footage.
func (g *generator) shotKind(topic *Topic, pos, total int) collection.ShotKind {
	if pos == 0 {
		return collection.ShotAnchor
	}
	if topic.Category == collection.CatWeather {
		return collection.ShotWeather
	}
	switch p := g.r.Float64(); {
	case p < 0.55:
		return collection.ShotReport
	case p < 0.80:
		return collection.ShotInterview
	default:
		return collection.ShotGraphics
	}
}

// sampleAspect picks the vocabulary "aspect" one story uses: a
// rank-biased subset of its topic's terms. Different stories on the
// same topic phrase it differently, so a keyword query reaches only
// the stories sharing its vocabulary — the query/content mismatch that
// gives relevance feedback something to bridge.
func (g *generator) sampleAspect(topic *Topic) []string {
	k := len(topic.Terms) / 3
	if k < 3 {
		k = 3
	}
	if k > len(topic.Terms) {
		k = len(topic.Terms)
	}
	// Uniform subset: any story is about as likely to use deep
	// vocabulary as headline vocabulary, so a short query reaches only
	// the stories that happen to share its words. Keep topic-rank
	// order so the within-story frequency bias still favours the
	// story's most characteristic terms.
	perm := g.r.Perm(len(topic.Terms))[:k]
	sort.Ints(perm)
	aspect := make([]string, k)
	for i, idx := range perm {
		aspect[i] = topic.Terms[idx]
	}
	return aspect
}

// shotText draws the ground-truth transcript for one shot. Anchor
// shots lean generic (the anchor frames the story); field footage is
// denser in topical vocabulary. The topical draw uses the story's
// aspect, not the full topic vocabulary.
func (g *generator) shotText(topic *Topic, aspect []string, kind collection.ShotKind, nWords int) string {
	topicMix := g.cfg.TopicMix
	if kind == collection.ShotAnchor {
		topicMix /= 2
	}
	catTerms := g.vocab.Category[topic.Category]
	words := make([]string, nWords)
	for i := range words {
		switch p := g.r.Float64(); {
		case p < topicMix:
			// Aspect terms follow a within-story rank bias: earlier
			// terms are more characteristic and more frequent.
			k := g.r.Intn(len(aspect))
			if j := g.r.Intn(len(aspect)); j < k {
				k = j
			}
			words[i] = aspect[k]
		case p < topicMix+g.cfg.CategoryMix:
			words[i] = catTerms[g.r.Intn(len(catTerms))]
		case p < topicMix+g.cfg.CategoryMix+g.cfg.LeakMix && len(g.topics) > 1:
			// Cross-topic leakage: vocabulary shared with another
			// topic (polysemy). Rank-biased like the topical draw.
			other := g.topics[g.r.Intn(len(g.topics))]
			if other.ID == topic.ID {
				words[i] = g.vocab.Background[g.zipf.rank()]
				break
			}
			k := g.r.Intn(len(other.Terms))
			if j := g.r.Intn(len(other.Terms)); j < k {
				k = j
			}
			words[i] = other.Terms[k]
		default:
			words[i] = g.vocab.Background[g.zipf.rank()]
		}
	}
	return strings.Join(words, " ")
}

func (g *generator) makeShot(vid collection.VideoID, sid collection.StoryID, topic *Topic,
	aspect []string, videoShotIdx, storyPos, storyLen int, start time.Duration) (*collection.Shot, error) {

	id := collection.ShotID(fmt.Sprintf("%s_s%03d", vid, videoShotIdx))
	kind := g.shotKind(topic, storyPos, storyLen)
	secs := g.cfg.MinShotSeconds + g.r.Float64()*(g.cfg.MaxShotSeconds-g.cfg.MinShotSeconds)
	dur := time.Duration(secs * float64(time.Second))

	nWords := g.cfg.MinWordsPerShot + g.r.Intn(g.cfg.MaxWordsPerShot-g.cfg.MinWordsPerShot+1)
	clean := g.shotText(topic, aspect, kind, nWords)
	noisy := g.asr.Corrupt(g.r, clean)

	truthConcepts := g.trueConcepts(topic, kind)
	shot := &collection.Shot{
		ID:           id,
		VideoID:      vid,
		StoryID:      sid,
		Index:        videoShotIdx,
		Kind:         kind,
		Start:        start,
		Duration:     dur,
		Transcript:   noisy,
		TrueConcepts: truthConcepts,
		Concepts:     g.cfg.Detector.Detect(g.r, truthConcepts),
	}
	nKF := 1
	if g.cfg.MaxKeyframesPerShot > 1 {
		nKF += g.r.Intn(g.cfg.MaxKeyframesPerShot)
	}
	for k := 0; k < nKF; k++ {
		off := time.Duration(float64(dur) * (float64(k) + 0.5) / float64(nKF))
		shot.Keyframes = append(shot.Keyframes, collection.Keyframe{ShotID: id, Offset: off})
	}
	if err := g.coll.AddShot(shot); err != nil {
		return nil, err
	}
	g.truth.CleanTranscript[id] = clean
	return shot, nil
}

// trueConcepts composes ground truth: kind-determined concepts plus a
// sample of the topic's concept signature.
func (g *generator) trueConcepts(topic *Topic, kind collection.ShotKind) []collection.Concept {
	set := map[collection.Concept]bool{}
	switch kind {
	case collection.ShotAnchor:
		set["anchor_person"] = true
		set["studio_setting"] = true
		set["face"] = true
	case collection.ShotWeather:
		set["weather_map"] = true
		set["graphics_text"] = true
	case collection.ShotGraphics:
		set["graphics_text"] = true
		set["charts"] = true
	case collection.ShotInterview:
		set["interview_setting"] = true
		set["face"] = true
		set["person"] = true
	case collection.ShotReport:
		set["person"] = true
		if g.r.Float64() < 0.5 {
			set["outdoor"] = true
		} else {
			set["indoor"] = true
		}
	}
	// Field footage carries the topic signature; anchor shots only
	// sometimes (a cutaway graphic behind the anchor).
	signatureP := 0.8
	if kind == collection.ShotAnchor {
		signatureP = 0.25
	}
	for _, c := range topic.Concepts {
		if g.r.Float64() < signatureP {
			set[c] = true
		}
	}
	out := make([]collection.Concept, 0, len(set))
	for _, c := range collection.ConceptVocabulary { // deterministic order
		if set[c] {
			out = append(out, c)
		}
	}
	return out
}

// buildQrels derives graded relevance from story topics: field footage
// of a story on the query topic is fully relevant (2); the anchor
// lead-in and graphics are marginal (1).
func (g *generator) buildQrels() {
	byTopic := map[int][]*collection.Shot{}
	g.coll.Shots(func(s *collection.Shot) bool {
		tid, ok := g.truth.StoryTopic[s.StoryID]
		if ok {
			byTopic[tid] = append(byTopic[tid], s)
		}
		return true
	})
	for _, st := range g.truth.SearchTopics {
		m := make(map[collection.ShotID]int)
		for _, s := range byTopic[st.TopicID] {
			switch s.Kind {
			case collection.ShotReport, collection.ShotInterview, collection.ShotWeather:
				m[s.ID] = 2
			default:
				m[s.ID] = 1
			}
		}
		g.truth.Qrels[st.ID] = m
	}
}
