package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/collection"
)

// DetectorModel simulates a bank of high-level concept detectors in the
// TRECVID style. For every (shot, concept) pair the simulated detector
// fires with probability TPR when the concept is truly present and FPR
// when it is absent; fired detections carry a confidence score whose
// distribution also depends on ground truth, so confidence thresholds
// behave the way real detector scores do.
type DetectorModel struct {
	// TPR is the true-positive (hit) rate in [0,1].
	TPR float64
	// FPR is the false-positive (false alarm) rate in [0,1].
	FPR float64
}

// DefaultDetector reflects mid-2000s TRECVID detector quality: useful
// but far from reliable — the semantic gap the paper describes.
func DefaultDetector() DetectorModel { return DetectorModel{TPR: 0.65, FPR: 0.05} }

// confidence draws a detection confidence: present concepts score
// Beta-like high, absent ones low, with heavy overlap at mid-range.
func (d DetectorModel) confidence(r *rand.Rand, present bool) float64 {
	// Sum of two uniforms gives a cheap triangular distribution.
	tri := (r.Float64() + r.Float64()) / 2
	if present {
		return 0.5 + tri/2 // [0.5, 1), peak at 0.75
	}
	return tri / 2 // [0, 0.5), peak at 0.25
}

// Detect produces the noisy detector output for a shot given its
// ground-truth concepts. Output order follows the global concept
// vocabulary, so it is deterministic.
func (d DetectorModel) Detect(r *rand.Rand, truth []collection.Concept) []collection.ConceptScore {
	truthSet := make(map[collection.Concept]bool, len(truth))
	for _, c := range truth {
		truthSet[c] = true
	}
	var out []collection.ConceptScore
	for _, c := range collection.ConceptVocabulary {
		present := truthSet[c]
		var fire bool
		if present {
			fire = r.Float64() < d.TPR
		} else {
			fire = r.Float64() < d.FPR
		}
		if fire {
			out = append(out, collection.ConceptScore{
				Concept:    c,
				Confidence: d.confidence(r, present),
			})
		}
	}
	return out
}

// RedetectArchive rebuilds an archive's collection with detector
// outputs regenerated at the given quality over the *same* ground
// truth. Transcripts, structure and qrels are untouched, so detector
// sweeps isolate concept quality — the T10 experiment's requirement.
// The source archive is not modified.
func RedetectArchive(arch *Archive, d DetectorModel, seed int64) (*collection.Collection, error) {
	if d.TPR < 0 || d.TPR > 1 || d.FPR < 0 || d.FPR > 1 {
		return nil, fmt.Errorf("synth: detector rates outside [0,1]: %+v", d)
	}
	r := rand.New(rand.NewSource(seed))
	out := collection.New()
	var buildErr error
	arch.Collection.Videos(func(v *collection.Video) bool {
		nv := *v
		nv.Stories = nil
		nv.Shots = nil
		buildErr = out.AddVideo(&nv)
		return buildErr == nil
	})
	if buildErr != nil {
		return nil, buildErr
	}
	arch.Collection.Stories(func(st *collection.Story) bool {
		ns := *st
		ns.Shots = nil
		buildErr = out.AddStory(&ns)
		return buildErr == nil
	})
	if buildErr != nil {
		return nil, buildErr
	}
	arch.Collection.Shots(func(sh *collection.Shot) bool {
		nsh := *sh
		nsh.Concepts = d.Detect(r, sh.TrueConcepts)
		buildErr = out.AddShot(&nsh)
		return buildErr == nil
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return out, nil
}

// Accuracy summarises detector output quality against ground truth over
// a set of shots; used by the T10 experiment harness.
type Accuracy struct {
	TruePositives, FalsePositives int
	FalseNegatives, TrueNegatives int
}

// Precision of the detections.
func (a Accuracy) Precision() float64 {
	d := a.TruePositives + a.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(a.TruePositives) / float64(d)
}

// Recall of the detections.
func (a Accuracy) Recall() float64 {
	d := a.TruePositives + a.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(a.TruePositives) / float64(d)
}

// MeasureDetector accumulates detector accuracy over shots.
func MeasureDetector(shots []*collection.Shot) Accuracy {
	var acc Accuracy
	for _, s := range shots {
		fired := make(map[collection.Concept]bool, len(s.Concepts))
		for _, cs := range s.Concepts {
			fired[cs.Concept] = true
		}
		truth := make(map[collection.Concept]bool, len(s.TrueConcepts))
		for _, c := range s.TrueConcepts {
			truth[c] = true
		}
		for _, c := range collection.ConceptVocabulary {
			switch {
			case truth[c] && fired[c]:
				acc.TruePositives++
			case truth[c] && !fired[c]:
				acc.FalseNegatives++
			case !truth[c] && fired[c]:
				acc.FalsePositives++
			default:
				acc.TrueNegatives++
			}
		}
	}
	return acc
}
