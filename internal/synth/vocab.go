// Package synth generates synthetic news-video archives with known
// ground truth. It is the substitute for the BBC One O'Clock News
// recordings and the TRECVID collections the paper assumes: a
// topic-mixture language model over a Zipfian vocabulary produces shot
// transcripts; a word-error channel simulates ASR; per-concept
// true/false-positive rates simulate high-level concept detectors. The
// generator also emits TREC-style search topics and relevance
// judgements, which is what makes simulated user studies and metric
// computation possible without proprietary data.
//
// Everything is driven by an explicit *rand.Rand so a (Config, seed)
// pair identifies a collection exactly.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Word construction: pronounceable CVC-syllable words so generated
// transcripts look plausibly like language to a human reading logs, and
// so the Porter stemmer treats them like ordinary words.
var (
	onsets = []string{
		"b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h",
		"j", "k", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s", "sh",
		"sl", "sp", "st", "str", "t", "th", "tr", "v", "w", "z",
	}
	nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "ee", "oa", "oo", "ou"}
	codas  = []string{"", "b", "ck", "d", "g", "l", "ll", "m", "n", "nd", "ng", "nt", "p", "r", "rd", "rk", "rn", "s", "ss", "st", "t", "th", "x"}
)

// syllableCount returns how many syllables word index i receives; the
// distribution skews short, like natural lexicons.
func syllableCount(r *rand.Rand) int {
	switch p := r.Float64(); {
	case p < 0.35:
		return 1
	case p < 0.80:
		return 2
	default:
		return 3
	}
}

// makeWord builds one pronounceable word.
func makeWord(r *rand.Rand) string {
	var sb strings.Builder
	n := syllableCount(r)
	for i := 0; i < n; i++ {
		sb.WriteString(onsets[r.Intn(len(onsets))])
		sb.WriteString(nuclei[r.Intn(len(nuclei))])
		if i == n-1 || r.Float64() < 0.4 {
			sb.WriteString(codas[r.Intn(len(codas))])
		}
	}
	return sb.String()
}

// Vocabulary is the partitioned lexicon of a synthetic archive:
//
//   - Background: high-frequency general vocabulary, sampled Zipfian;
//   - Category[c]: terms characteristic of news category c;
//   - Topic terms are allocated per topic by the generator from a
//     dedicated pool so that distinct topics have distinct signatures.
//
// All words are unique across the whole lexicon.
type Vocabulary struct {
	Background []string
	Category   [][]string // indexed by collection.Category
	TopicPool  []string   // consumed K-at-a-time per topic
}

// NewVocabulary builds a lexicon with the given partition sizes. Words
// are guaranteed unique; generation is deterministic in r.
func NewVocabulary(r *rand.Rand, background, categories, perCategory, topicPool int) (*Vocabulary, error) {
	if background <= 0 || categories <= 0 || perCategory <= 0 || topicPool <= 0 {
		return nil, fmt.Errorf("synth: vocabulary sizes must be positive (got %d/%d/%d/%d)",
			background, categories, perCategory, topicPool)
	}
	total := background + categories*perCategory + topicPool
	seen := make(map[string]struct{}, total)
	words := make([]string, 0, total)
	for len(words) < total {
		w := makeWord(r)
		if len(w) < 3 {
			continue
		}
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		words = append(words, w)
	}
	v := &Vocabulary{Background: words[:background]}
	off := background
	v.Category = make([][]string, categories)
	for c := 0; c < categories; c++ {
		v.Category[c] = words[off : off+perCategory]
		off += perCategory
	}
	v.TopicPool = words[off:]
	return v, nil
}

// zipfSampler samples background-word ranks with a Zipf(s=1.1)
// distribution, matching the heavy-tailed term statistics retrieval
// models are tuned for.
type zipfSampler struct {
	z *rand.Zipf
	n int
}

func newZipfSampler(r *rand.Rand, n int) *zipfSampler {
	return &zipfSampler{z: rand.NewZipf(r, 1.1, 1.0, uint64(n-1)), n: n}
}

// rank returns a vocabulary rank in [0, n).
func (s *zipfSampler) rank() int { return int(s.z.Uint64()) }
