package synth

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/collection"
)

// Topic is a ground-truth news topic: a recurring subject (an election,
// a cup run, an epidemic) that spawns stories across broadcasts. Topics
// are the unit relevance is defined against.
type Topic struct {
	ID       int
	Category collection.Category
	// Terms is the topic's characteristic vocabulary, most
	// characteristic first. Story text and search queries draw from it.
	Terms []string
	// Concepts ground-truth visual concepts associated with the topic.
	Concepts []collection.Concept
	// Popularity weights how often the topic is scheduled into
	// bulletins; Zipf-ish across topics.
	Popularity float64
}

// Title renders a human-readable pseudo-headline for the topic.
func (t *Topic) Title() string {
	n := 3
	if len(t.Terms) < n {
		n = len(t.Terms)
	}
	return strings.Join(t.Terms[:n], " ")
}

// SearchTopic is a TREC-style evaluation topic: a query plus the
// ground-truth topic it targets. Qrels are derived from story TopicIDs.
type SearchTopic struct {
	ID      int
	TopicID int
	// Query is the short keyword query a user would issue.
	Query string
	// Verbose is a longer "description" field, used by simulated users
	// who reformulate.
	Verbose  string
	Category collection.Category
}

// Qrels maps search-topic ID -> shot ID -> relevance grade.
// Grades: 0 unjudged/non-relevant, 1 marginally relevant (anchor lead-in
// shots of a relevant story), 2 fully relevant (report/interview footage
// of a relevant story).
type Qrels map[int]map[collection.ShotID]int

// Relevant returns the IDs of shots with grade >= minGrade for a topic,
// in deterministic (sorted) order.
func (q Qrels) Relevant(searchTopic, minGrade int) []collection.ShotID {
	m := q[searchTopic]
	out := make([]collection.ShotID, 0, len(m))
	for id, g := range m {
		if g >= minGrade {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Grade returns the relevance grade of a shot for a search topic.
func (q Qrels) Grade(searchTopic int, shot collection.ShotID) int {
	return q[searchTopic][shot]
}

// NumRelevant counts shots with grade >= minGrade.
func (q Qrels) NumRelevant(searchTopic, minGrade int) int {
	n := 0
	for _, g := range q[searchTopic] {
		if g >= minGrade {
			n++
		}
	}
	return n
}

// generateTopics allocates per-topic vocabulary and concepts.
func generateTopics(r *rand.Rand, v *Vocabulary, numTopics, termsPerTopic int) []*Topic {
	topics := make([]*Topic, numTopics)
	for i := 0; i < numTopics; i++ {
		cat := collection.Category(i % collection.NumCategories)
		start := i * termsPerTopic
		end := start + termsPerTopic
		if end > len(v.TopicPool) {
			end = len(v.TopicPool)
		}
		terms := make([]string, end-start)
		copy(terms, v.TopicPool[start:end])
		pool := collection.CategoryConcepts(cat)
		nc := 2 + r.Intn(3)
		if nc > len(pool) {
			nc = len(pool)
		}
		perm := r.Perm(len(pool))
		concepts := make([]collection.Concept, nc)
		for j := 0; j < nc; j++ {
			concepts[j] = pool[perm[j]]
		}
		topics[i] = &Topic{
			ID:       i,
			Category: cat,
			Terms:    terms,
			Concepts: concepts,
			// Zipf-ish popularity: topic 0 is the running lead story.
			Popularity: 1.0 / float64(1+i),
		}
	}
	return topics
}

// makeSearchTopics builds one evaluation query per selected topic.
// Topics are stride-sampled across the popularity range so the
// evaluation set spans running lead stories and rare one-off items,
// like a TREC topic set spans frequency bands.
func makeSearchTopics(r *rand.Rand, topics []*Topic, n int) []*SearchTopic {
	if n > len(topics) {
		n = len(topics)
	}
	stride := 1
	if n > 0 {
		stride = len(topics) / n
		if stride < 1 {
			stride = 1
		}
	}
	out := make([]*SearchTopic, 0, n)
	for i := 0; i < n; i++ {
		t := topics[i*stride]
		// Keyword query: 2-3 of the topic's most characteristic terms.
		qn := 2 + r.Intn(2)
		if qn > len(t.Terms) {
			qn = len(t.Terms)
		}
		query := strings.Join(t.Terms[:qn], " ")
		// Verbose form adds deeper topical terms, as a TREC
		// "description" would.
		vn := qn + 2
		if vn > len(t.Terms) {
			vn = len(t.Terms)
		}
		verbose := strings.Join(t.Terms[:vn], " ")
		out = append(out, &SearchTopic{
			ID:       i,
			TopicID:  t.ID,
			Query:    query,
			Verbose:  verbose,
			Category: t.Category,
		})
	}
	return out
}
