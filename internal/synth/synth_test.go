package synth

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/collection"
)

func TestVocabularyPartition(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v, err := NewVocabulary(r, 100, 5, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Background) != 100 || len(v.Category) != 5 || len(v.TopicPool) != 60 {
		t.Fatalf("partition sizes wrong: %d/%d/%d", len(v.Background), len(v.Category), len(v.TopicPool))
	}
	seen := map[string]bool{}
	check := func(words []string) {
		for _, w := range words {
			if len(w) < 3 {
				t.Errorf("word %q too short", w)
			}
			if seen[w] {
				t.Errorf("duplicate word %q across partitions", w)
			}
			seen[w] = true
		}
	}
	check(v.Background)
	for _, c := range v.Category {
		if len(c) != 10 {
			t.Errorf("category partition size %d, want 10", len(c))
		}
		check(c)
	}
	check(v.TopicPool)
}

func TestVocabularyDeterministic(t *testing.T) {
	a, err := NewVocabulary(rand.New(rand.NewSource(7)), 50, 3, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewVocabulary(rand.New(rand.NewSource(7)), 50, 3, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different vocabularies")
	}
}

func TestVocabularyRejectsBadSizes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := NewVocabulary(r, 0, 1, 1, 1); err == nil {
		t.Error("want error for zero background size")
	}
}

func TestASRZeroWERIdentity(t *testing.T) {
	ch := ASRChannel{WER: 0}
	in := "the quick brown fox"
	if got := ch.Corrupt(rand.New(rand.NewSource(1)), in); got != in {
		t.Errorf("WER=0 changed text: %q", got)
	}
}

func TestASRCalibration(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	lex := make([]string, 200)
	for i := range lex {
		lex[i] = makeWord(r)
	}
	ref := strings.Repeat("alpha beta gamma delta epsilon ", 400)
	for _, wer := range []float64{0.1, 0.3, 0.5} {
		ch := ASRChannel{WER: wer, Lexicon: lex}
		hyp := ch.Corrupt(r, ref)
		measured := MeasureWER(ref, hyp)
		if math.Abs(measured-wer) > 0.05 {
			t.Errorf("target WER %v, measured %v", wer, measured)
		}
	}
}

func TestMeasureWEREdgeCases(t *testing.T) {
	if MeasureWER("", "anything") != 0 {
		t.Error("empty reference should measure 0")
	}
	if got := MeasureWER("a b c", "a b c"); got != 0 {
		t.Errorf("identical strings measure %v", got)
	}
	if got := MeasureWER("a b c d", ""); got != 1 {
		t.Errorf("total deletion measures %v, want 1", got)
	}
}

func TestDetectorRates(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := DetectorModel{TPR: 0.7, FPR: 0.1}
	truth := []collection.Concept{"anchor_person", "face", "outdoor"}
	var tp, fn, fp, tn int
	const trials = 2000
	for i := 0; i < trials; i++ {
		out := d.Detect(r, truth)
		fired := map[collection.Concept]bool{}
		for _, cs := range out {
			fired[cs.Concept] = true
			present := false
			for _, c := range truth {
				if c == cs.Concept {
					present = true
				}
			}
			if present && cs.Confidence < 0.5 {
				t.Fatalf("present concept confidence %v < 0.5", cs.Confidence)
			}
			if !present && cs.Confidence >= 0.5 {
				t.Fatalf("absent concept confidence %v >= 0.5", cs.Confidence)
			}
		}
		for _, c := range collection.ConceptVocabulary {
			present := c == "anchor_person" || c == "face" || c == "outdoor"
			switch {
			case present && fired[c]:
				tp++
			case present && !fired[c]:
				fn++
			case !present && fired[c]:
				fp++
			default:
				tn++
			}
		}
	}
	gotTPR := float64(tp) / float64(tp+fn)
	gotFPR := float64(fp) / float64(fp+tn)
	if math.Abs(gotTPR-0.7) > 0.03 {
		t.Errorf("TPR = %v, want ~0.7", gotTPR)
	}
	if math.Abs(gotFPR-0.1) > 0.02 {
		t.Errorf("FPR = %v, want ~0.1", gotFPR)
	}
}

func TestGenerateTiny(t *testing.T) {
	arch, err := Generate(TinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c := arch.Collection
	cfg := arch.Config
	if c.NumVideos() != cfg.Days {
		t.Errorf("videos = %d, want %d", c.NumVideos(), cfg.Days)
	}
	if c.NumStories() != cfg.Days*cfg.StoriesPerVideo {
		t.Errorf("stories = %d, want %d", c.NumStories(), cfg.Days*cfg.StoriesPerVideo)
	}
	if got := c.NumShots(); got < cfg.Days*cfg.StoriesPerVideo*cfg.MinShotsPerStory {
		t.Errorf("too few shots: %d", got)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("generated collection invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TinyConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TinyConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	idsA, idsB := a.Collection.ShotIDs(), b.Collection.ShotIDs()
	if !reflect.DeepEqual(idsA, idsB) {
		t.Fatal("shot ID sequences differ across identical seeds")
	}
	for _, id := range idsA {
		if a.Collection.Shot(id).Transcript != b.Collection.Shot(id).Transcript {
			t.Fatalf("transcripts differ for %s", id)
		}
	}
	if !reflect.DeepEqual(a.Truth.Qrels, b.Truth.Qrels) {
		t.Error("qrels differ across identical seeds")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(TinyConfig(), 1)
	b, _ := Generate(TinyConfig(), 2)
	same := true
	for _, id := range a.Collection.ShotIDs() {
		sb := b.Collection.Shot(id)
		if sb == nil || a.Collection.Shot(id).Transcript != sb.Transcript {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical transcripts")
	}
}

func TestEverySearchTopicHasRelevantShots(t *testing.T) {
	arch, err := Generate(TinyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range arch.Truth.SearchTopics {
		if n := arch.Truth.Qrels.NumRelevant(st.ID, 1); n == 0 {
			t.Errorf("search topic %d (%q) has no relevant shots", st.ID, st.Query)
		}
	}
}

func TestQrelsGrading(t *testing.T) {
	arch, err := Generate(TinyConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	q := arch.Truth.Qrels
	c := arch.Collection
	for _, st := range arch.Truth.SearchTopics {
		for shotID, grade := range q[st.ID] {
			shot := c.Shot(shotID)
			if shot == nil {
				t.Fatalf("qrels references missing shot %s", shotID)
			}
			story := c.Story(shot.StoryID)
			if arch.Truth.StoryTopic[story.ID] != st.TopicID {
				t.Errorf("qrels topic %d includes shot of topic %d", st.TopicID, arch.Truth.StoryTopic[story.ID])
			}
			switch shot.Kind {
			case collection.ShotReport, collection.ShotInterview, collection.ShotWeather:
				if grade != 2 {
					t.Errorf("field shot %s graded %d, want 2", shotID, grade)
				}
			default:
				if grade != 1 {
					t.Errorf("lead-in shot %s graded %d, want 1", shotID, grade)
				}
			}
		}
		// Relevant() respects minGrade and is sorted.
		all := q.Relevant(st.ID, 1)
		strong := q.Relevant(st.ID, 2)
		if len(strong) > len(all) {
			t.Error("minGrade filter inverted")
		}
		for i := 1; i < len(all); i++ {
			if all[i-1] >= all[i] {
				t.Error("Relevant output not sorted")
			}
		}
	}
}

func TestTopicTermsDisjoint(t *testing.T) {
	arch, err := Generate(TinyConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, topic := range arch.Truth.Topics {
		for _, term := range topic.Terms {
			if prev, dup := seen[term]; dup {
				t.Errorf("term %q shared by topics %d and %d", term, prev, topic.ID)
			}
			seen[term] = topic.ID
		}
	}
}

func TestTranscriptsCarryTopicSignal(t *testing.T) {
	cfg := TinyConfig()
	cfg.WER = 0
	arch, err := Generate(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	// For each topic, its stories' concatenated field-shot text should
	// contain at least one of the topic's terms far more often than a
	// random other topic's terms.
	c := arch.Collection
	for _, topic := range arch.Truth.Topics[:4] {
		own, other := 0, 0
		otherTerms := arch.Truth.Topics[(topic.ID+1)%len(arch.Truth.Topics)].Terms
		c.Shots(func(s *collection.Shot) bool {
			if arch.Truth.StoryTopic[s.StoryID] != topic.ID {
				return true
			}
			for _, w := range strings.Fields(s.Transcript) {
				for _, tw := range topic.Terms {
					if w == tw {
						own++
					}
				}
				for _, ow := range otherTerms {
					if w == ow {
						other++
					}
				}
			}
			return true
		})
		if own <= other*3 {
			t.Errorf("topic %d: own-term count %d not >> other-term count %d", topic.ID, own, other)
		}
	}
}

func TestCleanTranscriptRecorded(t *testing.T) {
	cfg := TinyConfig()
	cfg.WER = 0.3
	arch, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	arch.Collection.Shots(func(s *collection.Shot) bool {
		clean, ok := arch.Truth.CleanTranscript[s.ID]
		if !ok || clean == "" {
			t.Fatalf("missing clean transcript for %s", s.ID)
		}
		if clean != s.Transcript {
			n++
		}
		return true
	})
	if n == 0 {
		t.Error("WER=0.3 left every transcript untouched")
	}
}

func TestCorruptArchive(t *testing.T) {
	cfg := TinyConfig()
	cfg.WER = 0
	arch, err := Generate(cfg, 41)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := CorruptArchive(arch, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Validate(); err != nil {
		t.Fatalf("corrupted collection invalid: %v", err)
	}
	if coll.NumShots() != arch.Collection.NumShots() {
		t.Fatal("shot count changed")
	}
	// Structure preserved, transcripts changed, realised WER near target.
	var werSum float64
	changed := 0
	n := 0
	coll.Shots(func(s *collection.Shot) bool {
		orig := arch.Collection.Shot(s.ID)
		if s.Kind != orig.Kind || s.StoryID != orig.StoryID || s.Duration != orig.Duration {
			t.Fatalf("shot %s structure changed", s.ID)
		}
		clean := arch.Truth.CleanTranscript[s.ID]
		if s.Transcript != clean {
			changed++
		}
		werSum += MeasureWER(clean, s.Transcript)
		n++
		return true
	})
	if changed == 0 {
		t.Error("WER 0.3 changed nothing")
	}
	if avg := werSum / float64(n); math.Abs(avg-0.3) > 0.05 {
		t.Errorf("realised WER %v, want ~0.3", avg)
	}
	// Source untouched.
	arch.Collection.Shots(func(s *collection.Shot) bool {
		if s.Transcript != arch.Truth.CleanTranscript[s.ID] {
			t.Fatal("CorruptArchive mutated the source archive")
		}
		return true
	})
	// Validation.
	if _, err := CorruptArchive(arch, 1.0, 7); err == nil {
		t.Error("WER 1.0 accepted")
	}
	if _, err := CorruptArchive(arch, -0.1, 7); err == nil {
		t.Error("negative WER accepted")
	}
}

func TestRedetectArchive(t *testing.T) {
	arch, err := Generate(TinyConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	coll, err := RedetectArchive(arch, DetectorModel{TPR: 0.95, FPR: 0.01}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Validate(); err != nil {
		t.Fatalf("redetected collection invalid: %v", err)
	}
	// Transcripts and ground truth are untouched; detections improved.
	var before, after Accuracy
	shotsB := make([]*collection.Shot, 0, arch.Collection.NumShots())
	arch.Collection.Shots(func(s *collection.Shot) bool {
		shotsB = append(shotsB, s)
		return true
	})
	before = MeasureDetector(shotsB)
	shotsA := make([]*collection.Shot, 0, coll.NumShots())
	coll.Shots(func(s *collection.Shot) bool {
		orig := arch.Collection.Shot(s.ID)
		if s.Transcript != orig.Transcript {
			t.Fatal("RedetectArchive changed a transcript")
		}
		shotsA = append(shotsA, s)
		return true
	})
	after = MeasureDetector(shotsA)
	if after.Recall() <= before.Recall() {
		t.Errorf("TPR 0.95 should beat default recall: %v vs %v", after.Recall(), before.Recall())
	}
	if after.Precision() <= before.Precision() {
		t.Errorf("FPR 0.01 should beat default precision: %v vs %v", after.Precision(), before.Precision())
	}
	if _, err := RedetectArchive(arch, DetectorModel{TPR: 2}, 9); err == nil {
		t.Error("bad detector rates accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.MinShotsPerStory = 5; c.MaxShotsPerStory = 2 },
		func(c *Config) { c.MinWordsPerShot = 0 },
		func(c *Config) { c.NumTopics = 0 },
		func(c *Config) { c.NumSearchTopics = 1000 },
		func(c *Config) { c.Days = 1; c.StoriesPerVideo = 2; c.NumSearchTopics = 8 },
		func(c *Config) { c.TopicMix = 0.9; c.CategoryMix = 0.3 },
		func(c *Config) { c.WER = 1.0 },
		func(c *Config) { c.MinShotSeconds = 0 },
		func(c *Config) { c.MaxKeyframesPerShot = 0 },
	}
	for i, mutate := range bad {
		cfg := TinyConfig()
		mutate(&cfg)
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// Property: any valid small config generates a collection that passes
// validation and covers every emitted search topic with >= 1 relevant.
func TestGeneratePropertyValid(t *testing.T) {
	if testing.Short() {
		t.Skip("property generation is slow")
	}
	f := func(seed int64, daysRaw, storiesRaw uint8) bool {
		cfg := TinyConfig()
		cfg.Days = 2 + int(daysRaw%5)
		cfg.StoriesPerVideo = 3 + int(storiesRaw%4)
		if slots := cfg.Days * cfg.StoriesPerVideo; cfg.NumSearchTopics > slots {
			cfg.NumSearchTopics = slots
		}
		arch, err := Generate(cfg, seed)
		if err != nil {
			return false
		}
		if arch.Collection.Validate() != nil {
			return false
		}
		for _, st := range arch.Truth.SearchTopics {
			if arch.Truth.Qrels.NumRelevant(st.ID, 1) == 0 {
				return false
			}
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfgq); err != nil {
		t.Error(err)
	}
}

func TestSearchTopicQueries(t *testing.T) {
	arch, err := Generate(TinyConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range arch.Truth.SearchTopics {
		if st.Query == "" {
			t.Errorf("topic %d has empty query", st.ID)
		}
		if len(strings.Fields(st.Verbose)) < len(strings.Fields(st.Query)) {
			t.Errorf("topic %d verbose shorter than query", st.ID)
		}
		topic := arch.Truth.Topics[st.TopicID]
		for _, qw := range strings.Fields(st.Query) {
			found := false
			for _, tw := range topic.Terms {
				if qw == tw {
					found = true
				}
			}
			if !found {
				t.Errorf("query term %q not in topic %d vocabulary", qw, st.TopicID)
			}
		}
	}
}

func TestShotKindDistribution(t *testing.T) {
	arch, err := Generate(TinyConfig(), 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[collection.ShotKind]int{}
	arch.Collection.Stories(func(story *collection.Story) bool {
		first := arch.Collection.Shot(story.Shots[0])
		if first.Kind != collection.ShotAnchor {
			t.Errorf("story %s does not open on anchor shot", story.ID)
		}
		for _, id := range story.Shots {
			counts[arch.Collection.Shot(id).Kind]++
		}
		return true
	})
	if counts[collection.ShotReport] == 0 || counts[collection.ShotInterview] == 0 {
		t.Errorf("missing field footage kinds: %v", counts)
	}
}

func BenchmarkGenerateTiny(b *testing.B) {
	cfg := TinyConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
