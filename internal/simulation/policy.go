package simulation

import (
	"math/rand"

	"repro/internal/ilog"
	"repro/internal/ui"
)

// Policy is the per-iteration user-behaviour model extracted from the
// in-process Simulator: given a displayed result list, it decides —
// under a stereotype's probabilities and an interface's affordance
// costs — what the user does, emitting the interaction events. It
// knows nothing about where the results came from, so the same policy
// drives both the in-process simulator (results from core.System) and
// the HTTP load generator (results from a /api/v1/search page).
//
// A Policy owns no state beyond its PRNG; budget and the cross-
// iteration seen-set live with the caller, mirroring how a session
// outlives its iterations. Not safe for concurrent use (shared PRNG);
// create one per virtual user.
type Policy struct {
	// Stereotype is the behaviour model (click/dwell/rating
	// probabilities, patience).
	Stereotype Stereotype
	// Iface is the interaction-environment capability/cost model.
	Iface *ui.Interface
	// Rand is the behaviour randomness stream.
	Rand *rand.Rand
}

// ResultView is what the policy needs to know about one displayed
// result: identity, ground-truth relevance (or a sampled belief, for
// pure load runs without qrels), and the shot's duration for play
// events.
type ResultView struct {
	ShotID   string
	Relevant bool
	Seconds  float64
}

// Reformulate decides the query text for iteration it: a persistent
// user (ReformulateProb > 0) who is still on the short form after an
// unsatisfying first pass may switch to the verbose description. The
// probability draw is guarded so non-reformulating stereotypes
// consume no randomness.
func (p *Policy) Reformulate(it int, current, short, verbose string) string {
	if p.Stereotype.ReformulateProb > 0 && it > 0 && current == short &&
		verbose != "" && p.Rand.Float64() < p.Stereotype.ReformulateProb {
		return verbose
	}
	return current
}

// Examine walks the user down a result list, emitting interaction
// events under the stereotype until patience or the effort budget is
// exhausted. seen accumulates distinct examined shots across
// iterations; budget is decremented by each action's interface cost.
// A non-nil emit error aborts the walk and is returned.
func (p *Policy) Examine(results []ResultView, step int, seen map[string]bool,
	budget *float64, emit func(ilog.Event) error) error {

	st, iface, r := p.Stereotype, p.Iface, p.Rand
	browseCost := iface.ActionCost(ilog.ActionBrowse)
	for rank, res := range results {
		if rank >= st.Patience {
			break
		}
		// Paging: every PageSize results costs one browse action.
		if rank > 0 && rank%iface.PageSize == 0 {
			if *budget < browseCost {
				break
			}
			*budget -= browseCost
		}
		id := res.ShotID
		seen[id] = true
		truth := res.Relevant
		// The examined item leaves a (weak) browse trace.
		if err := emit(ilog.Event{Action: ilog.ActionBrowse, ShotID: id, Step: step, Rank: rank}); err != nil {
			return err
		}
		// Perception of relevance from keyframe + title.
		perceived := truth
		if r.Float64() > st.Accuracy {
			perceived = !perceived
		}
		clickP := st.ClickNonRel
		if perceived {
			clickP = st.ClickRel
		}
		if r.Float64() >= clickP {
			continue
		}
		// Highlight metadata before committing to playback.
		if iface.Supports(ilog.ActionHighlight) && r.Float64() < st.HighlightProb {
			cost := iface.ActionCost(ilog.ActionHighlight)
			if *budget >= cost {
				*budget -= cost
				if err := emit(ilog.Event{Action: ilog.ActionHighlight, ShotID: id, Step: step, Rank: rank}); err != nil {
					return err
				}
			}
		}
		// Click to start playback.
		clickCost := iface.ActionCost(ilog.ActionClickKeyframe)
		if *budget < clickCost {
			break
		}
		*budget -= clickCost
		if err := emit(ilog.Event{Action: ilog.ActionClickKeyframe, ShotID: id, Step: step, Rank: rank}); err != nil {
			return err
		}
		// Play: dwell governed by true relevance (the user finds out).
		playCost := iface.ActionCost(ilog.ActionPlay)
		if *budget < playCost {
			break
		}
		*budget -= playCost
		frac := st.PlayFracNonRel
		if truth {
			frac = st.PlayFracRel
		}
		// Jitter ±25% of the mean fraction, clamped to [0.02, 1].
		frac *= 0.75 + r.Float64()*0.5
		if frac > 1 {
			frac = 1
		}
		if frac < 0.02 {
			frac = 0.02
		}
		if err := emit(ilog.Event{
			Action: ilog.ActionPlay, ShotID: id, Step: step, Rank: rank,
			Seconds: frac * res.Seconds,
		}); err != nil {
			return err
		}
		// Slide/scrub within the playing video.
		if iface.Supports(ilog.ActionSlide) && r.Float64() < st.SlideProb {
			cost := iface.ActionCost(ilog.ActionSlide)
			if *budget >= cost {
				*budget -= cost
				if err := emit(ilog.Event{
					Action: ilog.ActionSlide, ShotID: id, Step: step, Rank: rank,
					Seconds: res.Seconds * 0.3,
				}); err != nil {
					return err
				}
			}
		}
		// Explicit rating after viewing; propensity scales with how
		// prominent the rating affordance is in this environment.
		rateP := st.RateProb * iface.RateAffinity
		if rateP > 1 {
			rateP = 1
		}
		if iface.Supports(ilog.ActionRate) && r.Float64() < rateP {
			cost := iface.ActionCost(ilog.ActionRate)
			if *budget >= cost {
				*budget -= cost
				verdict := truth
				if r.Float64() > st.RateAccuracy {
					verdict = !verdict
				}
				value := -1
				if verdict {
					value = 1
				}
				if err := emit(ilog.Event{
					Action: ilog.ActionRate, ShotID: id, Step: step, Rank: rank, Value: value,
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
