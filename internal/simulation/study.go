package simulation

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/ui"
)

// StudyUser is one participant: a static profile plus a behaviour
// stereotype.
type StudyUser struct {
	Profile    *profile.Profile
	Stereotype Stereotype
}

// MakeUsers builds a deterministic participant population: user i
// prefers one category strongly and dislikes another (the declared,
// registration-time knowledge static profiles capture), with the
// built-in stereotypes assigned round-robin.
func MakeUsers(n int) []*StudyUser {
	stereos := Stereotypes()
	out := make([]*StudyUser, n)
	for i := 0; i < n; i++ {
		p := profile.New(fmt.Sprintf("u%03d", i))
		liked := collection.Category(i % collection.NumCategories)
		disliked := collection.Category((i + collection.NumCategories/2) % collection.NumCategories)
		p.SetInterest(liked, 0.9)
		p.SetInterest(disliked, 0.2)
		out[i] = &StudyUser{Profile: p, Stereotype: stereos[i%len(stereos)]}
	}
	return out
}

// StudyPair is one (participant, task) assignment in a study.
type StudyPair struct {
	User  *StudyUser
	Topic *synth.SearchTopic
}

// AllPairs crosses every user with every topic (the interest-agnostic
// design: tasks are assigned regardless of what the user cares about).
func AllPairs(users []*StudyUser, topics []*synth.SearchTopic) []StudyPair {
	out := make([]StudyPair, 0, len(users)*len(topics))
	for _, topic := range topics {
		for _, u := range users {
			out = append(out, StudyPair{User: u, Topic: topic})
		}
	}
	return out
}

// AlignedPairs assigns each topic to users whose declared interests
// include the topic's category — the paper's news-personalisation
// scenario, where people search the topics they care about. perTopic
// users are created for each topic (profiles liking its category at
// 0.9 and disliking a distant category), with stereotypes rotating.
func AlignedPairs(topics []*synth.SearchTopic, perTopic int) []StudyPair {
	stereos := Stereotypes()
	var out []StudyPair
	seq := 0
	for _, topic := range topics {
		for k := 0; k < perTopic; k++ {
			p := profile.New(fmt.Sprintf("au%03d", seq))
			p.SetInterest(topic.Category, 0.9)
			disliked := collection.Category((int(topic.Category) + collection.NumCategories/2) % collection.NumCategories)
			p.SetInterest(disliked, 0.2)
			out = append(out, StudyPair{
				User:  &StudyUser{Profile: p, Stereotype: stereos[seq%len(stereos)]},
				Topic: topic,
			})
			seq++
		}
	}
	return out
}

// StudyResult aggregates a whole simulated user study.
type StudyResult struct {
	Sessions []*SessionResult
	// Events concatenates every session's log in execution order.
	Events []ilog.Event
	// MeanFinal averages the final-iteration metrics over sessions.
	MeanFinal eval.Metrics
	// MeanFirst averages the first-iteration metrics (the un-adapted
	// ranking) over sessions.
	MeanFirst eval.Metrics
	// PerTopicAP maps topic ID -> mean final AP over that topic's
	// sessions (the per-query vector significance tests consume).
	PerTopicAP map[int]float64
	// MeanDistinctSeen is the mean exploration (distinct shots
	// examined per session).
	MeanDistinctSeen float64
}

// RunStudy simulates every (user, topic) pair for the given number of
// query iterations and aggregates. Seeds are derived per session so
// the study is reproducible and individual sessions are independent.
func RunStudy(arch *synth.Archive, sys *core.System, iface *ui.Interface,
	users []*StudyUser, topics []*synth.SearchTopic, iterations int, seed int64) (*StudyResult, error) {

	if len(users) == 0 || len(topics) == 0 {
		return nil, fmt.Errorf("simulation: study needs users and topics")
	}
	return RunStudyPairs(arch, sys, iface, AllPairs(users, topics), iterations, seed)
}

// RunStudyPairs simulates an explicit (user, topic) assignment list;
// RunStudy is the all-pairs convenience over it.
func RunStudyPairs(arch *synth.Archive, sys *core.System, iface *ui.Interface,
	pairs []StudyPair, iterations int, seed int64) (*StudyResult, error) {

	if len(pairs) == 0 {
		return nil, fmt.Errorf("simulation: study needs at least one (user, topic) pair")
	}
	res := &StudyResult{PerTopicAP: make(map[int]float64)}
	perTopicN := make(map[int]int)
	var finals, firsts []eval.Metrics
	var seenSum float64
	for sessionSeq, pair := range pairs {
		user, topic := pair.User, pair.Topic
		if user == nil || topic == nil {
			return nil, fmt.Errorf("simulation: pair %d has nil user or topic", sessionSeq)
		}
		sim, err := New(arch, sys, iface, user.Stereotype, seed+int64(sessionSeq)*7919)
		if err != nil {
			return nil, err
		}
		sid := fmt.Sprintf("study-%s-t%02d-s%03d", iface.Name, topic.ID, sessionSeq)
		// Each session gets a fresh copy of the profile: sessions
		// must not contaminate each other through drift.
		p := cloneProfile(user.Profile)
		sr, err := sim.RunSession(sid, p, topic, iterations)
		if err != nil {
			return nil, err
		}
		res.Sessions = append(res.Sessions, sr)
		res.Events = append(res.Events, sr.Events...)
		finals = append(finals, sr.Final)
		if len(sr.PerIteration) > 0 {
			firsts = append(firsts, sr.PerIteration[0])
		}
		res.PerTopicAP[topic.ID] += sr.Final.AP
		perTopicN[topic.ID]++
		seenSum += float64(sr.DistinctSeen)
	}
	for tid, n := range perTopicN {
		if n > 0 {
			res.PerTopicAP[tid] /= float64(n)
		}
	}
	res.MeanFinal = eval.Mean(finals)
	res.MeanFirst = eval.Mean(firsts)
	if len(res.Sessions) > 0 {
		res.MeanDistinctSeen = seenSum / float64(len(res.Sessions))
	}
	return res, nil
}

// cloneProfile deep-copies a profile via its JSON form.
func cloneProfile(p *profile.Profile) *profile.Profile {
	if p == nil {
		return nil
	}
	data, err := p.MarshalJSON()
	if err != nil {
		// A profile always marshals; reaching here is programmer error.
		panic(fmt.Sprintf("simulation: clone profile: %v", err))
	}
	var out profile.Profile
	if err := out.UnmarshalJSON(data); err != nil {
		panic(fmt.Sprintf("simulation: clone profile: %v", err))
	}
	return &out
}

// ToRun exports a study's final rankings as a TREC run: one query ID
// per session ("t<topic>-<session>"), so downstream tooling can score
// sessions individually. ToQrels builds the matching qrel set.
func (sr *StudyResult) ToRun(tag string) *eval.Run {
	run := eval.NewRun(tag)
	for _, s := range sr.Sessions {
		if len(s.FinalRanking) == 0 {
			continue
		}
		run.Add(sessionQueryID(s), s.FinalRanking)
	}
	return run
}

// ToQrels duplicates each topic's judgements under every session query
// ID of the study, matching ToRun's naming.
func (sr *StudyResult) ToQrels(qrels synth.Qrels) eval.QrelSet {
	qs := eval.QrelSet{}
	for _, s := range sr.Sessions {
		if len(s.FinalRanking) == 0 {
			continue
		}
		judg := eval.Judgments{}
		for shot, g := range qrels[s.TopicID] {
			judg[string(shot)] = g
		}
		qs[sessionQueryID(s)] = judg
	}
	return qs
}

func sessionQueryID(s *SessionResult) string {
	return fmt.Sprintf("t%02d-%s", s.TopicID, s.SessionID)
}

// Replay feeds a recorded interaction log through a system: queries
// re-execute (now under the replaying system's adaptation), other
// events become implicit evidence, exactly as Vallet et al. replayed
// past-user logs. It returns the final metrics per replayed session,
// keyed in sorted session order.
func Replay(sys *core.System, events []ilog.Event, qrels synth.Qrels) ([]eval.Metrics, error) {
	keys, groups := ilog.BySession(events)
	var out []eval.Metrics
	for _, key := range keys {
		group := groups[key]
		sess := sys.NewSession("replay-"+key, nil)
		var last eval.Metrics
		ran := false
		judg := eval.Judgments{}
		if len(group) > 0 {
			for shot, g := range qrels[group[0].TopicID] {
				judg[string(shot)] = g
			}
		}
		for _, e := range group {
			if e.Action == ilog.ActionQuery {
				res, err := sess.Query(e.Query)
				if err != nil {
					return nil, fmt.Errorf("simulation: replay %s: %w", key, err)
				}
				last = eval.Compute(res.IDs(), judg)
				ran = true
				continue
			}
			if err := sess.Observe(e); err != nil {
				return nil, fmt.Errorf("simulation: replay %s: %w", key, err)
			}
		}
		if ran {
			out = append(out, last)
		}
	}
	return out, nil
}
