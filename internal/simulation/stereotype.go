// Package simulation implements the simulated-user evaluation
// framework the paper proposes (§2.2): GUMS-style stereotype behaviour
// models interacting with interface capability models over the
// synthetic archive, emitting interaction logs and per-iteration
// retrieval metrics. Simulation replaces the laboratory user study —
// "a cheap and repeatable methodology to fine tune video retrieval
// systems".
package simulation

import (
	"fmt"
)

// Stereotype is a probabilistic user behaviour model ("simple
// stereotype user behaviour" in Finin's GUMS sense). All probabilities
// are in [0,1].
type Stereotype struct {
	Name string
	// Accuracy is the probability the user correctly perceives a
	// result's relevance from its keyframe/title before clicking.
	Accuracy float64
	// ClickRel / ClickNonRel: probability of clicking a keyframe given
	// the result is perceived relevant / non-relevant.
	ClickRel, ClickNonRel float64
	// PlayFracRel / PlayFracNonRel: mean fraction of a clicked shot the
	// user plays, given its true relevance (users discover the truth
	// while watching).
	PlayFracRel, PlayFracNonRel float64
	// HighlightProb: probability of highlighting a result's metadata
	// while examining it (when the interface affords it).
	HighlightProb float64
	// SlideProb: probability of scrubbing within a played video.
	SlideProb float64
	// RateProb: probability of rating a shot after playing it (explicit
	// feedback; cheap on TV).
	RateProb float64
	// RateAccuracy: probability the post-viewing rating matches true
	// relevance (watching is nearly reliable).
	RateAccuracy float64
	// Patience is the maximum results examined per query iteration.
	Patience int
	// ReformulateProb: per-iteration probability (after the first)
	// that the user reformulates to the topic's verbose description —
	// adding the deeper terms a persistent searcher recalls. The
	// built-in stereotypes leave this at 0; studies that model
	// reformulating users opt in.
	ReformulateProb float64
}

// Validate checks all fields are in range.
func (s Stereotype) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("simulation: stereotype without name")
	}
	probs := map[string]float64{
		"Accuracy": s.Accuracy, "ClickRel": s.ClickRel, "ClickNonRel": s.ClickNonRel,
		"PlayFracRel": s.PlayFracRel, "PlayFracNonRel": s.PlayFracNonRel,
		"HighlightProb": s.HighlightProb, "SlideProb": s.SlideProb,
		"RateProb": s.RateProb, "RateAccuracy": s.RateAccuracy,
		"ReformulateProb": s.ReformulateProb,
	}
	for name, v := range probs {
		if v < 0 || v > 1 {
			return fmt.Errorf("simulation: %s: %s=%v outside [0,1]", s.Name, name, v)
		}
	}
	if s.Patience <= 0 {
		return fmt.Errorf("simulation: %s: patience must be positive", s.Name)
	}
	return nil
}

// Diligent is a focused, careful searcher: reliable perception, deep
// examination, watches relevant material through.
func Diligent() Stereotype {
	return Stereotype{
		Name: "diligent", Accuracy: 0.9,
		ClickRel: 0.75, ClickNonRel: 0.05,
		PlayFracRel: 0.85, PlayFracNonRel: 0.20,
		HighlightProb: 0.30, SlideProb: 0.20,
		RateProb: 0.30, RateAccuracy: 0.95,
		Patience: 30,
	}
}

// Casual is the average non-expert user the paper wants studied.
func Casual() Stereotype {
	return Stereotype{
		Name: "casual", Accuracy: 0.75,
		ClickRel: 0.50, ClickNonRel: 0.10,
		PlayFracRel: 0.65, PlayFracNonRel: 0.25,
		HighlightProb: 0.15, SlideProb: 0.10,
		RateProb: 0.10, RateAccuracy: 0.90,
		Patience: 12,
	}
}

// Sloppy is an inattentive user producing noisy implicit signals.
func Sloppy() Stereotype {
	return Stereotype{
		Name: "sloppy", Accuracy: 0.6,
		ClickRel: 0.40, ClickNonRel: 0.20,
		PlayFracRel: 0.50, PlayFracNonRel: 0.35,
		HighlightProb: 0.10, SlideProb: 0.05,
		RateProb: 0.05, RateAccuracy: 0.80,
		Patience: 8,
	}
}

// Stereotypes returns the built-in population in a fixed order.
func Stereotypes() []Stereotype {
	return []Stereotype{Diligent(), Casual(), Sloppy()}
}

// TaskType modulates dwell behaviour by information-seeking task, the
// contextual factor Kelly & Belkin showed confounds display time as an
// indicator. It overrides the stereotype's play fractions.
type TaskType struct {
	Name string
	// PlayFracRel / PlayFracNonRel replace the stereotype's values.
	PlayFracRel, PlayFracNonRel float64
}

// TaskTypes returns the three studied task contexts:
//
//   - fact-find: the user verifies a specific fact and bails out
//     quickly even from relevant footage;
//   - background: the user gathers context and watches almost
//     everything for a while, relevant or not;
//   - leisure: mixed viewing, dwell moderately correlated with
//     relevance.
func TaskTypes() []TaskType {
	return []TaskType{
		{Name: "fact-find", PlayFracRel: 0.30, PlayFracNonRel: 0.10},
		{Name: "background", PlayFracRel: 0.90, PlayFracNonRel: 0.65},
		{Name: "leisure", PlayFracRel: 0.70, PlayFracNonRel: 0.30},
	}
}

// Apply returns a copy of st with the task's dwell behaviour.
func (tt TaskType) Apply(st Stereotype) Stereotype {
	st.Name = st.Name + "/" + tt.Name
	st.PlayFracRel = tt.PlayFracRel
	st.PlayFracNonRel = tt.PlayFracNonRel
	return st
}
