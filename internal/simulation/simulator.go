package simulation

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/ui"
)

// Simulator drives stereotype users through search sessions against an
// adaptive system, producing interaction logs and per-iteration
// metrics. One Simulator is bound to one archive + system + interface;
// it is not safe for concurrent use (it owns a PRNG).
type Simulator struct {
	arch  *synth.Archive
	sys   *core.System
	iface *ui.Interface
	st    Stereotype
	pol   Policy
	r     *rand.Rand
	clock time.Time
}

// New wires a simulator. seed fixes the behaviour stream.
func New(arch *synth.Archive, sys *core.System, iface *ui.Interface, st Stereotype, seed int64) (*Simulator, error) {
	if arch == nil || sys == nil || iface == nil {
		return nil, fmt.Errorf("simulation: archive, system and interface are required")
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if err := iface.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	return &Simulator{
		arch:  arch,
		sys:   sys,
		iface: iface,
		st:    st,
		pol:   Policy{Stereotype: st, Iface: iface, Rand: r},
		r:     r,
		clock: arch.Config.StartDate.AddDate(0, 1, 0), // study period after recording
	}, nil
}

// SessionResult is the outcome of one simulated session.
type SessionResult struct {
	SessionID string
	UserID    string
	TopicID   int
	Interface string
	// Events is the full interaction log of the session.
	Events []ilog.Event
	// PerIteration holds the metrics of the ranking shown at each
	// query iteration.
	PerIteration []eval.Metrics
	// Final is the last iteration's metrics.
	Final eval.Metrics
	// FinalRanking is the shot ranking of the last query iteration
	// (for TREC run-file export).
	FinalRanking []string
	// DistinctSeen counts distinct shots the user examined (the
	// exploration measure of the Vallet study).
	DistinctSeen int
	// EffortSpent is the interaction effort consumed (interface cost
	// units).
	EffortSpent float64
}

// relevant answers true relevance from the ground-truth qrels.
func (s *Simulator) relevant(topicID int, shotID string) bool {
	return s.arch.Truth.Qrels.Grade(topicID, collection.ShotID(shotID)) >= 1
}

// judgments converts a topic's qrels to eval form.
func (s *Simulator) judgments(topicID int) eval.Judgments {
	j := eval.Judgments{}
	for shot, g := range s.arch.Truth.Qrels[topicID] {
		j[string(shot)] = g
	}
	return j
}

// tick advances the simulated wall clock.
func (s *Simulator) tick(d time.Duration) time.Time {
	s.clock = s.clock.Add(d)
	return s.clock
}

// RunSession simulates one user performing one search task for up to
// maxIterations query cycles or until the interface effort budget runs
// out. user may be nil (neutral profile).
func (s *Simulator) RunSession(sessionID string, user *profile.Profile,
	topic *synth.SearchTopic, maxIterations int) (*SessionResult, error) {

	if topic == nil {
		return nil, fmt.Errorf("simulation: nil topic")
	}
	if maxIterations <= 0 {
		return nil, fmt.Errorf("simulation: maxIterations must be positive")
	}
	userID := "anon"
	if user != nil {
		userID = user.UserID
	}
	res := &SessionResult{
		SessionID: sessionID,
		UserID:    userID,
		TopicID:   topic.ID,
		Interface: s.iface.Name,
	}
	sess := s.sys.NewSession(sessionID, user)
	judg := s.judgments(topic.ID)
	budget := s.iface.SessionBudget
	seen := map[string]bool{}

	emit := func(e ilog.Event) error {
		e.Time = s.tick(time.Second + time.Duration(s.r.Intn(3000))*time.Millisecond)
		e.SessionID = sessionID
		e.UserID = userID
		e.Interface = s.iface.Name
		e.TopicID = topic.ID
		res.Events = append(res.Events, e)
		return sess.Observe(e)
	}

	queryText := topic.Query
	for it := 0; it < maxIterations; it++ {
		// Persistent users may reformulate to the verbose form after
		// an unsatisfying first pass.
		queryText = s.pol.Reformulate(it, queryText, topic.Query, topic.Verbose)
		qCost := s.iface.QueryCost(len(queryText))
		if budget < qCost {
			break
		}
		budget -= qCost
		if err := emit(ilog.Event{Action: ilog.ActionQuery, Query: queryText, Step: it, Rank: -1}); err != nil {
			return nil, err
		}
		results, err := sess.Query(queryText)
		if err != nil {
			return nil, err
		}
		res.PerIteration = append(res.PerIteration, eval.Compute(results.IDs(), judg))
		res.FinalRanking = results.IDs()

		if err := s.examine(results.IDs(), it, judg, seen, &budget, emit); err != nil {
			return nil, err
		}
	}
	if n := len(res.PerIteration); n > 0 {
		res.Final = res.PerIteration[n-1]
	}
	res.DistinctSeen = len(seen)
	res.EffortSpent = s.iface.SessionBudget - budget
	return res, nil
}

// RunDriftSession simulates the mid-session interest change the
// ostensive model targets (Campbell & van Rijsbergen, cited in §1):
// the user works on topicA for itersA iterations, then their need
// shifts to topicB for itersB iterations *within the same session*, so
// stale topicA evidence pollutes adaptation unless it is discounted.
// Returned metrics cover only the topicB phase, judged against topicB.
func (s *Simulator) RunDriftSession(sessionID string, user *profile.Profile,
	topicA, topicB *synth.SearchTopic, itersA, itersB int) (*SessionResult, error) {

	if topicA == nil || topicB == nil {
		return nil, fmt.Errorf("simulation: nil topic")
	}
	if itersA <= 0 || itersB <= 0 {
		return nil, fmt.Errorf("simulation: drift session needs positive iteration counts")
	}
	userID := "anon"
	if user != nil {
		userID = user.UserID
	}
	res := &SessionResult{
		SessionID: sessionID,
		UserID:    userID,
		TopicID:   topicB.ID,
		Interface: s.iface.Name,
	}
	sess := s.sys.NewSession(sessionID, user)
	budget := s.iface.SessionBudget * 2 // two tasks' worth of attention
	seen := map[string]bool{}

	phase := func(topic *synth.SearchTopic, iters, stepBase int, record bool) error {
		judg := s.judgments(topic.ID)
		emit := func(e ilog.Event) error {
			e.Time = s.tick(time.Second + time.Duration(s.r.Intn(3000))*time.Millisecond)
			e.SessionID = sessionID
			e.UserID = userID
			e.Interface = s.iface.Name
			e.TopicID = topic.ID
			res.Events = append(res.Events, e)
			return sess.Observe(e)
		}
		for it := 0; it < iters; it++ {
			step := stepBase + it
			qCost := s.iface.QueryCost(len(topic.Query))
			if budget < qCost {
				return nil
			}
			budget -= qCost
			if err := emit(ilog.Event{Action: ilog.ActionQuery, Query: topic.Query, Step: step, Rank: -1}); err != nil {
				return err
			}
			results, err := sess.Query(topic.Query)
			if err != nil {
				return err
			}
			if record {
				res.PerIteration = append(res.PerIteration, eval.Compute(results.IDs(), judg))
			}
			if err := s.examine(results.IDs(), step, judg, seen, &budget, emit); err != nil {
				return err
			}
		}
		return nil
	}
	if err := phase(topicA, itersA, 0, false); err != nil {
		return nil, err
	}
	if err := phase(topicB, itersB, itersA, true); err != nil {
		return nil, err
	}
	if n := len(res.PerIteration); n > 0 {
		res.Final = res.PerIteration[n-1]
	}
	res.DistinctSeen = len(seen)
	return res, nil
}

// examine adapts the shared behaviour policy to in-process results:
// relevance comes from the ground-truth qrels and shot durations from
// the archive. Views stop at the stereotype's patience — the policy
// never looks further, so resolving deeper durations would be wasted
// collection lookups on the experiment hot path.
func (s *Simulator) examine(ids []string, step int, judg eval.Judgments,
	seen map[string]bool, budget *float64, emit func(ilog.Event) error) error {

	n := min(len(ids), s.st.Patience)
	views := make([]ResultView, n)
	for i, id := range ids[:n] {
		views[i] = ResultView{ShotID: id, Relevant: judg[id] >= 1, Seconds: s.shotSeconds(id)}
	}
	return s.pol.Examine(views, step, seen, budget, emit)
}

// shotSeconds resolves a shot's duration.
func (s *Simulator) shotSeconds(id string) float64 {
	shot := s.arch.Collection.Shot(collection.ShotID(id))
	if shot == nil {
		return 0
	}
	return shot.Duration.Seconds()
}
