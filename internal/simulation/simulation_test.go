package simulation

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ilog"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/ui"
)

// evalRun adapts eval.EvaluateRun for test readability.
func evalRun(run *eval.Run, qs eval.QrelSet) (map[string]eval.Metrics, eval.Metrics, []string) {
	return eval.EvaluateRun(run, qs)
}

func fixture(t testing.TB, cfg core.Config) (*synth.Archive, *core.System) {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return arch, sys
}

func TestStereotypesValid(t *testing.T) {
	for _, st := range Stereotypes() {
		if err := st.Validate(); err != nil {
			t.Errorf("%s: %v", st.Name, err)
		}
	}
	bad := Casual()
	bad.Accuracy = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad accuracy accepted")
	}
	bad = Casual()
	bad.Patience = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero patience accepted")
	}
	bad = Casual()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
}

func TestTaskTypesApply(t *testing.T) {
	base := Casual()
	for _, tt := range TaskTypes() {
		st := tt.Apply(base)
		if st.PlayFracRel != tt.PlayFracRel || st.PlayFracNonRel != tt.PlayFracNonRel {
			t.Errorf("%s not applied", tt.Name)
		}
		if err := st.Validate(); err != nil {
			t.Errorf("%s produces invalid stereotype: %v", tt.Name, err)
		}
		if st.Name == base.Name {
			t.Error("task type should rename stereotype")
		}
	}
}

func TestRunSessionProducesValidLog(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	sim, err := New(arch, sys, ui.Desktop(), Diligent(), 1)
	if err != nil {
		t.Fatal(err)
	}
	topic := arch.Truth.SearchTopics[0]
	sr, err := sim.RunSession("sess-1", nil, topic, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Events) == 0 {
		t.Fatal("no events produced")
	}
	queries := 0
	for i, e := range sr.Events {
		if err := e.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if e.SessionID != "sess-1" || e.Interface != "desktop" || e.TopicID != topic.ID {
			t.Fatalf("event %d metadata wrong: %+v", i, e)
		}
		if e.Action == ilog.ActionQuery {
			queries++
		}
		if i > 0 && e.Time.Before(sr.Events[i-1].Time) {
			t.Fatal("event times not monotone")
		}
	}
	if queries != len(sr.PerIteration) {
		t.Errorf("queries %d != iterations %d", queries, len(sr.PerIteration))
	}
	if queries == 0 || queries > 3 {
		t.Errorf("query count %d outside (0,3]", queries)
	}
	if sr.DistinctSeen == 0 {
		t.Error("no shots examined")
	}
	if sr.EffortSpent <= 0 || sr.EffortSpent > ui.Desktop().SessionBudget {
		t.Errorf("effort = %v", sr.EffortSpent)
	}
	if sr.Final != sr.PerIteration[len(sr.PerIteration)-1] {
		t.Error("Final != last iteration")
	}
}

func TestRunSessionDeterministic(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	topic := arch.Truth.SearchTopics[1]
	run := func() *SessionResult {
		sim, err := New(arch, sys, ui.Desktop(), Casual(), 42)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := sim.RunSession("d", nil, topic, 3)
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a, b := run(), run()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
	if !reflect.DeepEqual(a.PerIteration, b.PerIteration) {
		t.Error("metrics differ across identical runs")
	}
}

func TestTVAffordancesRespected(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	sim, err := New(arch, sys, ui.TV(), Diligent(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sim.RunSession("tv-1", nil, arch.Truth.SearchTopics[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sr.Events {
		if e.Action == ilog.ActionSlide || e.Action == ilog.ActionHighlight {
			t.Fatalf("tv emitted unsupported action %s", e.Action)
		}
	}
}

func TestDesktopEmitsMoreImplicitThanTV(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	topic := arch.Truth.SearchTopics[0]
	count := func(iface *ui.Interface) int {
		total := 0
		for s := int64(0); s < 5; s++ {
			sim, err := New(arch, sys, iface, Casual(), 100+s)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := sim.RunSession("x", nil, topic, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range sr.Events {
				switch e.Action {
				case ilog.ActionQuery, ilog.ActionRate:
				default:
					total++
				}
			}
		}
		return total
	}
	d, tv := count(ui.Desktop()), count(ui.TV())
	if d <= tv {
		t.Errorf("desktop implicit events %d should exceed tv %d", d, tv)
	}
}

func TestSimulatorValidation(t *testing.T) {
	arch, sys := fixture(t, core.Config{})
	if _, err := New(nil, sys, ui.Desktop(), Casual(), 1); err == nil {
		t.Error("nil archive accepted")
	}
	bad := Casual()
	bad.ClickRel = 2
	if _, err := New(arch, sys, ui.Desktop(), bad, 1); err == nil {
		t.Error("invalid stereotype accepted")
	}
	sim, _ := New(arch, sys, ui.Desktop(), Casual(), 1)
	if _, err := sim.RunSession("s", nil, nil, 3); err == nil {
		t.Error("nil topic accepted")
	}
	if _, err := sim.RunSession("s", nil, arch.Truth.SearchTopics[0], 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestMakeUsers(t *testing.T) {
	users := MakeUsers(7)
	if len(users) != 7 {
		t.Fatalf("made %d users", len(users))
	}
	for i, u := range users {
		if u.Profile == nil || u.Profile.UserID == "" {
			t.Fatalf("user %d has no profile", i)
		}
		if err := u.Stereotype.Validate(); err != nil {
			t.Fatalf("user %d stereotype: %v", i, err)
		}
		if len(u.Profile.Categories()) != 2 {
			t.Errorf("user %d should declare 2 interests", i)
		}
	}
	// Stereotypes rotate.
	if users[0].Stereotype.Name == users[1].Stereotype.Name {
		t.Error("stereotypes should rotate")
	}
}

func TestRunStudyAggregates(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	users := MakeUsers(2)
	topics := arch.Truth.SearchTopics[:3]
	study, err := RunStudy(arch, sys, ui.Desktop(), users, topics, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Sessions) != len(users)*len(topics) {
		t.Errorf("sessions = %d, want %d", len(study.Sessions), len(users)*len(topics))
	}
	if len(study.Events) == 0 {
		t.Error("study produced no events")
	}
	if len(study.PerTopicAP) != len(topics) {
		t.Errorf("per-topic AP for %d topics, want %d", len(study.PerTopicAP), len(topics))
	}
	if study.MeanDistinctSeen <= 0 {
		t.Error("no exploration recorded")
	}
	// Session IDs unique.
	seen := map[string]bool{}
	for _, s := range study.Sessions {
		if seen[s.SessionID] {
			t.Fatalf("duplicate session id %s", s.SessionID)
		}
		seen[s.SessionID] = true
	}
	if _, err := RunStudy(arch, sys, ui.Desktop(), nil, topics, 2, 5); err == nil {
		t.Error("no users accepted")
	}
}

func TestStudyProfilesDoNotLeakAcrossSessions(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseProfile: true, ProfileLearnRate: 0.5})
	users := MakeUsers(1)
	before, _ := users[0].Profile.MarshalJSON()
	_, err := RunStudy(arch, sys, ui.Desktop(), users, arch.Truth.SearchTopics[:2], 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := users[0].Profile.MarshalJSON()
	if string(before) != string(after) {
		t.Error("study mutated the caller's profile")
	}
}

func TestReplayReproducesAdaptation(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	users := MakeUsers(2)
	topics := arch.Truth.SearchTopics[:2]
	study, err := RunStudy(arch, sys, ui.Desktop(), users, topics, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the logs through a baseline and through the adaptive
	// system: the adaptive replay should do at least as well on MAP.
	baseSys, err := core.NewSystemFromCollection(arch.Collection, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	baseM, err := Replay(baseSys, study.Events, arch.Truth.Qrels)
	if err != nil {
		t.Fatal(err)
	}
	adaptM, err := Replay(sys, study.Events, arch.Truth.Qrels)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseM) != len(adaptM) || len(baseM) != len(study.Sessions) {
		t.Fatalf("replay session counts: base=%d adapt=%d want=%d", len(baseM), len(adaptM), len(study.Sessions))
	}
	var baseSum, adaptSum float64
	for i := range baseM {
		baseSum += baseM[i].AP
		adaptSum += adaptM[i].AP
	}
	if adaptSum < baseSum {
		t.Errorf("adaptive replay MAP sum %v below baseline %v", adaptSum, baseSum)
	}
}

func TestRunDriftSession(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	topicA, topicB := arch.Truth.SearchTopics[0], arch.Truth.SearchTopics[1]
	sim, err := New(arch, sys, ui.Desktop(), Casual(), 77)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sim.RunDriftSession("drift", nil, topicA, topicB, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Metrics cover only the B phase.
	if len(sr.PerIteration) == 0 || len(sr.PerIteration) > 3 {
		t.Fatalf("B-phase iterations = %d, want 1..3", len(sr.PerIteration))
	}
	if sr.TopicID != topicB.ID {
		t.Errorf("result topic = %d, want %d", sr.TopicID, topicB.ID)
	}
	// Events span both phases, with topic IDs switching.
	sawA, sawB := false, false
	for _, e := range sr.Events {
		if err := e.Validate(); err != nil {
			t.Fatalf("invalid event: %v", err)
		}
		switch e.TopicID {
		case topicA.ID:
			sawA = true
		case topicB.ID:
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Errorf("drift session missed a phase: A=%v B=%v", sawA, sawB)
	}
	// Validation.
	if _, err := sim.RunDriftSession("x", nil, nil, topicB, 1, 1); err == nil {
		t.Error("nil topic accepted")
	}
	if _, err := sim.RunDriftSession("x", nil, topicA, topicB, 0, 1); err == nil {
		t.Error("zero phase-A iterations accepted")
	}
	if _, err := sim.RunDriftSession("x", nil, topicA, topicB, 1, 0); err == nil {
		t.Error("zero phase-B iterations accepted")
	}
}

func TestAlignedPairs(t *testing.T) {
	arch, _ := fixture(t, core.Config{})
	topics := arch.Truth.SearchTopics[:3]
	pairs := AlignedPairs(topics, 2)
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(pairs))
	}
	for _, pr := range pairs {
		if pr.User.Profile.Interest(pr.Topic.Category) < 0.8 {
			t.Errorf("pair user not aligned with topic category %s", pr.Topic.Category)
		}
	}
	all := AllPairs(MakeUsers(2), topics)
	if len(all) != 6 {
		t.Errorf("AllPairs = %d, want 6", len(all))
	}
}

func TestRunStudyPairsValidation(t *testing.T) {
	arch, sys := fixture(t, core.Config{})
	if _, err := RunStudyPairs(arch, sys, ui.Desktop(), nil, 2, 1); err == nil {
		t.Error("empty pairs accepted")
	}
	if _, err := RunStudyPairs(arch, sys, ui.Desktop(), []StudyPair{{}}, 2, 1); err == nil {
		t.Error("nil pair members accepted")
	}
}

func TestReformulation(t *testing.T) {
	arch, sys := fixture(t, core.Config{})
	topic := arch.Truth.SearchTopics[0]
	st := Diligent()
	st.ReformulateProb = 1 // always reformulate after the first pass
	sim, err := New(arch, sys, ui.Desktop(), st, 5)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sim.RunSession("reform", nil, topic, 3)
	if err != nil {
		t.Fatal(err)
	}
	var queries []string
	for _, e := range sr.Events {
		if e.Action == ilog.ActionQuery {
			queries = append(queries, e.Query)
		}
	}
	if len(queries) < 2 {
		t.Fatalf("need >= 2 query iterations, got %d", len(queries))
	}
	if queries[0] != topic.Query {
		t.Errorf("first query = %q, want the short form", queries[0])
	}
	for _, q := range queries[1:] {
		if q != topic.Verbose {
			t.Errorf("reformulated query = %q, want verbose form %q", q, topic.Verbose)
		}
	}
	// Built-in stereotypes never reformulate.
	sim2, err := New(arch, sys, ui.Desktop(), Diligent(), 5)
	if err != nil {
		t.Fatal(err)
	}
	sr2, err := sim2.RunSession("noreform", nil, topic, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sr2.Events {
		if e.Action == ilog.ActionQuery && e.Query != topic.Query {
			t.Errorf("default stereotype reformulated: %q", e.Query)
		}
	}
	// Validation range check.
	bad := Diligent()
	bad.ReformulateProb = 2
	if err := bad.Validate(); err == nil {
		t.Error("ReformulateProb > 1 accepted")
	}
}

func TestFinalRankingExported(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	sim, err := New(arch, sys, ui.Desktop(), Casual(), 9)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sim.RunSession("fr", nil, arch.Truth.SearchTopics[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.FinalRanking) == 0 {
		t.Fatal("no final ranking recorded")
	}
	seen := map[string]bool{}
	for _, id := range sr.FinalRanking {
		if seen[id] {
			t.Fatalf("duplicate id %s in final ranking", id)
		}
		seen[id] = true
	}
}

func TestStudyRunExport(t *testing.T) {
	arch, sys := fixture(t, core.Config{UseImplicit: true})
	study, err := RunStudy(arch, sys, ui.Desktop(), MakeUsers(2), arch.Truth.SearchTopics[:2], 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := study.ToRun("test-system")
	if run.Tag != "test-system" {
		t.Errorf("tag = %q", run.Tag)
	}
	if len(run.Rankings) != len(study.Sessions) {
		t.Errorf("run covers %d sessions of %d", len(run.Rankings), len(study.Sessions))
	}
	qs := study.ToQrels(arch.Truth.Qrels)
	perQ, mean, skipped := evalRun(run, qs)
	if len(skipped) != 0 {
		t.Errorf("skipped queries: %v", skipped)
	}
	if len(perQ) != len(study.Sessions) || mean.AP <= 0 {
		t.Errorf("run evaluation broken: %d queries, MAP %v", len(perQ), mean.AP)
	}
}

func TestCloneProfileNil(t *testing.T) {
	if cloneProfile(nil) != nil {
		t.Error("clone of nil should be nil")
	}
	p := profile.New("x")
	c := cloneProfile(p)
	if c == p || c.UserID != "x" {
		t.Error("clone broken")
	}
}

func BenchmarkRunSession(b *testing.B) {
	arch, sys := fixture(b, core.Config{UseImplicit: true})
	topic := arch.Truth.SearchTopics[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(arch, sys, ui.Desktop(), Casual(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.RunSession("b", nil, topic, 3); err != nil {
			b.Fatal(err)
		}
	}
}
