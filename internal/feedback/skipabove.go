package feedback

import (
	"sort"

	"repro/internal/ilog"
)

// ActionSkip is a *synthesised* evidence kind produced by
// ApplySkipAbove — it never appears in raw interaction logs. It
// represents Joachims' "click > skip above" heuristic: a result the
// user demonstrably examined (browsed past) at a rank above one they
// then clicked carries negative relevance evidence.
const ActionSkip ilog.Action = "skip_above"

// ApplySkipAbove reinterprets a session's event stream under the
// skip-above heuristic and returns the derived evidence list:
//
//   - browse events at ranks above the step's deepest click, whose
//     shot was not itself clicked in that step, become ActionSkip
//     evidence (negative under the schemes);
//   - every other shot-directed event converts as usual.
//
// shotSeconds resolves shot durations for dwell normalisation (may be
// nil). The input order is preserved within each step.
func ApplySkipAbove(events []ilog.Event, shotSeconds func(string) float64) []Evidence {
	secs := shotSeconds
	if secs == nil {
		secs = func(string) float64 { return 0 }
	}
	// Group indices by step, preserving order.
	steps := map[int][]int{}
	for i, e := range events {
		steps[e.Step] = append(steps[e.Step], i)
	}
	stepKeys := make([]int, 0, len(steps))
	for s := range steps {
		stepKeys = append(stepKeys, s)
	}
	sort.Ints(stepKeys)

	var out []Evidence
	for _, step := range stepKeys {
		idxs := steps[step]
		// Deepest clicked rank and the clicked shots of this step.
		deepestClick := -1
		clicked := map[string]bool{}
		for _, i := range idxs {
			e := events[i]
			if e.Action == ilog.ActionClickKeyframe && e.ShotID != "" {
				clicked[e.ShotID] = true
				if e.Rank > deepestClick {
					deepestClick = e.Rank
				}
			}
		}
		for _, i := range idxs {
			e := events[i]
			if e.ShotID == "" {
				continue
			}
			if e.Action == ilog.ActionBrowse && deepestClick >= 0 &&
				e.Rank >= 0 && e.Rank < deepestClick && !clicked[e.ShotID] {
				out = append(out, Evidence{
					ShotID:      e.ShotID,
					Action:      ActionSkip,
					ShotSeconds: secs(e.ShotID),
					Step:        e.Step,
				})
				continue
			}
			if ev, ok := FromEvent(e, secs(e.ShotID)); ok {
				out = append(out, ev)
			}
		}
	}
	return out
}
