package feedback

import (
	"math"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/text"
)

// Expander performs Rocchio-style query expansion from implicit
// relevance mass: terms characteristic of positively-weighted shots
// are added to the query with fractional weights, adapting the
// retrieval model to the inferred interest.
//
// Because the adaptive loop re-expands after every implicit-feedback
// event, the same shot transcripts are analysed over and over; the
// expander therefore memoizes each shot's analysed term profile
// (stemmed term, 1+log tf, idf — every per-shot value that does not
// depend on the query or the evidence mass) the first time the shot
// contributes evidence. The memo requires docText and df to be stable:
// a shot ID must always resolve to the same transcript and a term to
// the same document frequency, which holds for the immutable
// collection and index the system wires in. Candidate scores are
// bit-identical to the unmemoized computation — the cached values are
// produced by exactly the expressions the per-query path used, and the
// remaining per-query arithmetic is unchanged.
type Expander struct {
	analyzer *text.Analyzer
	// docText resolves a shot's transcript.
	docText func(shotID string) (string, bool)
	// df and numDocs supply idf statistics (typically backed by the
	// index).
	df      func(term string) int
	numDocs int

	// mu guards the memo maps; Candidates is called from concurrent
	// sessions of one System.
	mu sync.RWMutex
	// shotTerms memoizes each shot's analysed term profile, sorted by
	// term (nil entry: transcript unavailable). Terms with df == 0 are
	// dropped at memo-build time, exactly as the unmemoized loop
	// skipped them.
	shotTerms map[string][]shotTerm
}

// shotTerm is one memoized (shot, term) contribution source:
// ltf = 1 + log tf(term, shot) and idf = log((N+1)/df(term)), the two
// factors of the Rocchio score that do not depend on the query.
type shotTerm struct {
	term string
	ltf  float64
	idf  float64
}

// NewExpander wires an expander. analyzer may be nil (default
// pipeline). docText and df must be non-nil, and must be stable: the
// expander memoizes per-shot analysis under the assumption that a shot
// always yields the same transcript and a term the same frequency.
func NewExpander(analyzer *text.Analyzer, docText func(string) (string, bool),
	df func(string) int, numDocs int) *Expander {
	if analyzer == nil {
		analyzer = text.NewAnalyzer()
	}
	return &Expander{
		analyzer:  analyzer,
		docText:   docText,
		df:        df,
		numDocs:   numDocs,
		shotTerms: make(map[string][]shotTerm),
	}
}

// termsOf returns shot id's memoized term profile, analysing and
// caching it on first use.
func (x *Expander) termsOf(id string) []shotTerm {
	x.mu.RLock()
	cached, ok := x.shotTerms[id]
	x.mu.RUnlock()
	if ok {
		return cached
	}
	var built []shotTerm
	if txt, ok := x.docText(id); ok {
		counts := x.analyzer.TermCounts(txt)
		built = make([]shotTerm, 0, len(counts))
		for term, tf := range counts {
			df := x.df(term)
			if df == 0 {
				continue
			}
			built = append(built, shotTerm{
				term: term,
				ltf:  1 + math.Log(float64(tf)),
				idf:  math.Log(float64(x.numDocs+1) / float64(df)),
			})
		}
		sort.Slice(built, func(i, j int) bool { return built[i].term < built[j].term })
	}
	x.mu.Lock()
	// A racing goroutine may have built the same profile; keep the
	// first stored copy so every caller shares one slice.
	if prior, ok := x.shotTerms[id]; ok {
		built = prior
	} else {
		x.shotTerms[id] = built
	}
	x.mu.Unlock()
	return built
}

// ExpanderForIndex builds the usual expander over an index and a
// transcript lookup.
func ExpanderForIndex(ix *index.Index, analyzer *text.Analyzer,
	docText func(string) (string, bool)) *Expander {
	return NewExpander(analyzer, docText,
		func(term string) int { return ix.DocFreq(index.FieldText, term) },
		ix.NumDocs())
}

// ExpansionTerm is one candidate expansion term with its Rocchio
// score (pre-normalisation).
type ExpansionTerm struct {
	Term  string
	Score float64
}

// Candidates scores expansion candidates from the per-shot mass map:
// score(t) = Σ_shots mass(s) · (1+log tf(t,s)) · idf(t), excluding
// terms already present in base. Results are sorted by descending
// score, ties by term.
func (x *Expander) Candidates(base search.Query, mass map[string]float64) []ExpansionTerm {
	inBase := make(map[string]bool, len(base.Terms))
	for _, t := range base.Terms {
		inBase[t.Term] = true
	}
	scores := map[string]float64{}
	// Deterministic shot order.
	ids := make([]string, 0, len(mass))
	for id := range mass {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := mass[id]
		if m == 0 {
			continue
		}
		for _, st := range x.termsOf(id) {
			if inBase[st.term] {
				continue
			}
			scores[st.term] += m * st.ltf * st.idf
		}
	}
	out := make([]ExpansionTerm, 0, len(scores))
	for t, s := range scores {
		out = append(out, ExpansionTerm{Term: t, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// Expand returns a new query: the base terms (weights untouched) plus
// up to topN positive expansion terms, their weights normalised so the
// strongest carries beta. Terms with non-positive Rocchio scores are
// never added. beta <= 0 or topN <= 0 returns the base unchanged.
func (x *Expander) Expand(base search.Query, mass map[string]float64, topN int, beta float64) search.Query {
	out := search.Query{Field: base.Field, Terms: append([]search.WeightedTerm(nil), base.Terms...)}
	if topN <= 0 || beta <= 0 || len(mass) == 0 {
		return out
	}
	cands := x.Candidates(base, mass)
	if len(cands) == 0 || cands[0].Score <= 0 {
		return out
	}
	maxScore := cands[0].Score
	added := 0
	for _, c := range cands {
		if added >= topN || c.Score <= 0 {
			break
		}
		out.Terms = append(out.Terms, search.WeightedTerm{
			Term:   c.Term,
			Weight: beta * c.Score / maxScore,
		})
		added++
	}
	return out
}
