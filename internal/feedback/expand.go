package feedback

import (
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/text"
)

// Expander performs Rocchio-style query expansion from implicit
// relevance mass: terms characteristic of positively-weighted shots
// are added to the query with fractional weights, adapting the
// retrieval model to the inferred interest.
type Expander struct {
	analyzer *text.Analyzer
	// docText resolves a shot's transcript.
	docText func(shotID string) (string, bool)
	// df and numDocs supply idf statistics (typically backed by the
	// index).
	df      func(term string) int
	numDocs int
}

// NewExpander wires an expander. analyzer may be nil (default
// pipeline). docText and df must be non-nil.
func NewExpander(analyzer *text.Analyzer, docText func(string) (string, bool),
	df func(string) int, numDocs int) *Expander {
	if analyzer == nil {
		analyzer = text.NewAnalyzer()
	}
	return &Expander{analyzer: analyzer, docText: docText, df: df, numDocs: numDocs}
}

// ExpanderForIndex builds the usual expander over an index and a
// transcript lookup.
func ExpanderForIndex(ix *index.Index, analyzer *text.Analyzer,
	docText func(string) (string, bool)) *Expander {
	return NewExpander(analyzer, docText,
		func(term string) int { return ix.DocFreq(index.FieldText, term) },
		ix.NumDocs())
}

// ExpansionTerm is one candidate expansion term with its Rocchio
// score (pre-normalisation).
type ExpansionTerm struct {
	Term  string
	Score float64
}

// Candidates scores expansion candidates from the per-shot mass map:
// score(t) = Σ_shots mass(s) · (1+log tf(t,s)) · idf(t), excluding
// terms already present in base. Results are sorted by descending
// score, ties by term.
func (x *Expander) Candidates(base search.Query, mass map[string]float64) []ExpansionTerm {
	inBase := make(map[string]bool, len(base.Terms))
	for _, t := range base.Terms {
		inBase[t.Term] = true
	}
	scores := map[string]float64{}
	// Deterministic shot order.
	ids := make([]string, 0, len(mass))
	for id := range mass {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := mass[id]
		if m == 0 {
			continue
		}
		txt, ok := x.docText(id)
		if !ok {
			continue
		}
		for term, tf := range x.analyzer.TermCounts(txt) {
			if inBase[term] {
				continue
			}
			df := x.df(term)
			if df == 0 {
				continue
			}
			idf := math.Log(float64(x.numDocs+1) / float64(df))
			scores[term] += m * (1 + math.Log(float64(tf))) * idf
		}
	}
	out := make([]ExpansionTerm, 0, len(scores))
	for t, s := range scores {
		out = append(out, ExpansionTerm{Term: t, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// Expand returns a new query: the base terms (weights untouched) plus
// up to topN positive expansion terms, their weights normalised so the
// strongest carries beta. Terms with non-positive Rocchio scores are
// never added. beta <= 0 or topN <= 0 returns the base unchanged.
func (x *Expander) Expand(base search.Query, mass map[string]float64, topN int, beta float64) search.Query {
	out := search.Query{Field: base.Field, Terms: append([]search.WeightedTerm(nil), base.Terms...)}
	if topN <= 0 || beta <= 0 || len(mass) == 0 {
		return out
	}
	cands := x.Candidates(base, mass)
	if len(cands) == 0 || cands[0].Score <= 0 {
		return out
	}
	maxScore := cands[0].Score
	added := 0
	for _, c := range cands {
		if added >= topN || c.Score <= 0 {
			break
		}
		out.Terms = append(out.Terms, search.WeightedTerm{
			Term:   c.Term,
			Weight: beta * c.Score / maxScore,
		})
		added++
	}
	return out
}
