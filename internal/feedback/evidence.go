// Package feedback implements the implicit-relevance-feedback core of
// the paper: interaction evidence, the weighting schemes that turn
// indicators into relevance mass (RQ1/RQ2), and Rocchio-style query
// expansion from that mass.
package feedback

import (
	"fmt"
	"sort"

	"repro/internal/ilog"
)

// Evidence is one piece of interaction evidence about a shot, derived
// from a logged event plus the shot metadata needed for normalisation.
type Evidence struct {
	ShotID string
	Action ilog.Action
	// Seconds is the play duration or slide span.
	Seconds float64
	// ShotSeconds is the target shot's full duration, for dwell
	// normalisation (0 when unknown).
	ShotSeconds float64
	// Rating is the explicit judgement (±1) for ActionRate events.
	Rating int
	// Step is the session iteration at which the evidence was
	// observed; the ostensive scheme discounts by age in steps.
	Step int
}

// FromEvent converts a logged event into evidence. Events without a
// shot target (queries) return ok=false.
func FromEvent(e ilog.Event, shotSeconds float64) (Evidence, bool) {
	if e.ShotID == "" {
		return Evidence{}, false
	}
	return Evidence{
		ShotID:      e.ShotID,
		Action:      e.Action,
		Seconds:     e.Seconds,
		ShotSeconds: shotSeconds,
		Rating:      e.Value,
		Step:        e.Step,
	}, true
}

// Accumulator gathers evidence across a session and converts it into
// per-shot relevance mass under a weighting scheme. Mass is recomputed
// on demand so step-dependent schemes (ostensive decay) always see the
// current session step.
type Accumulator struct {
	scheme   Scheme
	evidence []Evidence
	step     int
}

// NewAccumulator creates an accumulator under the given scheme.
func NewAccumulator(scheme Scheme) *Accumulator {
	if scheme == nil {
		scheme = DefaultGraded()
	}
	return &Accumulator{scheme: scheme}
}

// Scheme returns the accumulator's weighting scheme.
func (a *Accumulator) Scheme() Scheme { return a.scheme }

// Observe records one piece of evidence.
func (a *Accumulator) Observe(ev Evidence) error {
	if ev.ShotID == "" {
		return fmt.Errorf("feedback: evidence without shot id")
	}
	if ev.Step > a.step {
		a.step = ev.Step
	}
	a.evidence = append(a.evidence, ev)
	return nil
}

// AdvanceStep moves the session clock forward one iteration.
func (a *Accumulator) AdvanceStep() { a.step++ }

// SetStep positions the session clock explicitly (used when restoring
// persisted sessions). Steps before already-observed evidence are
// clamped up so ages never go negative.
func (a *Accumulator) SetStep(n int) {
	for _, ev := range a.evidence {
		if ev.Step > n {
			n = ev.Step
		}
	}
	a.step = n
}

// Step returns the current session step.
func (a *Accumulator) Step() int { return a.step }

// Len reports how much evidence has been observed.
func (a *Accumulator) Len() int { return len(a.evidence) }

// Reset clears all evidence and the step clock.
func (a *Accumulator) Reset() {
	a.evidence = a.evidence[:0]
	a.step = 0
}

// Evidence returns a copy of all observed evidence in observation
// order (used for session persistence and graph building).
func (a *Accumulator) Evidence() []Evidence {
	out := make([]Evidence, len(a.evidence))
	copy(out, a.evidence)
	return out
}

// Mass returns the accumulated relevance mass per shot at the current
// step. Shots whose net mass is zero are omitted; negative mass (from
// explicit negative ratings) is preserved so downstream consumers can
// demote.
func (a *Accumulator) Mass() map[string]float64 {
	m := make(map[string]float64)
	for _, ev := range a.evidence {
		w := a.scheme.Weight(ev, a.step)
		if w != 0 {
			m[ev.ShotID] += w
		}
	}
	for id, w := range m {
		if w == 0 {
			delete(m, id)
		}
	}
	return m
}

// PositiveShots returns the shot IDs with positive mass, strongest
// first (ties by ID for determinism).
func (a *Accumulator) PositiveShots() []string {
	mass := a.Mass()
	ids := make([]string, 0, len(mass))
	for id, w := range mass {
		if w > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if mass[ids[i]] != mass[ids[j]] {
			return mass[ids[i]] > mass[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
