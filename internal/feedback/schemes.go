package feedback

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ilog"
)

// Scheme converts one piece of evidence into relevance mass. Schemes
// are the object of the paper's RQ2 ("how these features have to be
// weighted"); the T3 experiment sweeps the implementations below.
type Scheme interface {
	// Name identifies the scheme in experiment tables.
	Name() string
	// Weight returns the relevance mass of ev when the session is at
	// currentStep. Positive favours the shot; negative demotes it.
	Weight(ev Evidence, currentStep int) float64
}

// Binary weighs every shot-directed indicator equally (the naive
// baseline scheme): any implicit action counts 1, explicit ratings
// count ±1.
type Binary struct{}

// Name implements Scheme.
func (Binary) Name() string { return "binary" }

// Weight implements Scheme.
func (Binary) Weight(ev Evidence, _ int) float64 {
	switch ev.Action {
	case ilog.ActionRate:
		return float64(sign(ev.Rating))
	case ActionSkip:
		return -1
	}
	return 1
}

// Graded assigns each indicator a fixed weight reflecting its assumed
// reliability. The default table encodes the qualitative ordering of
// the paper's §2.1 discussion: starting playback from a keyframe is
// strong, browsing past something is barely evidence.
type Graded struct {
	// Weights maps implicit actions to their mass; explicit ratings
	// use RateWeight * sign.
	Weights    map[ilog.Action]float64
	RateWeight float64
	name       string
}

// DefaultGraded returns the default graded scheme. The skip-above
// entry only fires on evidence synthesised by ApplySkipAbove.
func DefaultGraded() *Graded {
	return &Graded{
		Weights: map[ilog.Action]float64{
			ilog.ActionClickKeyframe: 0.8,
			ilog.ActionPlay:          0.7,
			ilog.ActionHighlight:     0.5,
			ilog.ActionSlide:         0.4,
			ilog.ActionBrowse:        0.1,
			ActionSkip:               -0.2,
		},
		RateWeight: 1.5,
		name:       "graded",
	}
}

// Name implements Scheme.
func (g *Graded) Name() string {
	if g.name == "" {
		return "graded(custom)"
	}
	return g.name
}

// Weight implements Scheme.
func (g *Graded) Weight(ev Evidence, _ int) float64 {
	if ev.Action == ilog.ActionRate {
		return g.RateWeight * float64(sign(ev.Rating))
	}
	return g.Weights[ev.Action]
}

// DwellNormalised refines the graded scheme for play events: mass
// scales with the fraction of the shot actually watched, addressing
// the Kelly & Belkin critique that absolute dwell time is misleading.
type DwellNormalised struct {
	Base *Graded
}

// NewDwellNormalised wraps the default graded table.
func NewDwellNormalised() *DwellNormalised {
	return &DwellNormalised{Base: DefaultGraded()}
}

// Name implements Scheme.
func (d *DwellNormalised) Name() string { return "dwell-normalised" }

// Weight implements Scheme.
func (d *DwellNormalised) Weight(ev Evidence, step int) float64 {
	w := d.Base.Weight(ev, step)
	if ev.Action != ilog.ActionPlay {
		return w
	}
	var frac float64
	if ev.ShotSeconds > 0 {
		frac = ev.Seconds / ev.ShotSeconds
	} else {
		// Unknown shot length: assume a typical 10s news shot.
		frac = ev.Seconds / 10
	}
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return w * frac
}

// Ostensive applies Campbell & van Rijsbergen's ostensive discount on
// top of an inner scheme: evidence loses half its mass every HalfLife
// session steps, modelling drifting information needs.
type Ostensive struct {
	Inner Scheme
	// HalfLife is the evidence half-life in session steps; must be
	// positive.
	HalfLife float64
}

// NewOstensive wraps inner (nil selects the default graded scheme).
func NewOstensive(inner Scheme, halfLife float64) (*Ostensive, error) {
	if halfLife <= 0 {
		return nil, fmt.Errorf("feedback: ostensive half-life must be positive, got %v", halfLife)
	}
	if inner == nil {
		inner = DefaultGraded()
	}
	return &Ostensive{Inner: inner, HalfLife: halfLife}, nil
}

// Name implements Scheme.
func (o *Ostensive) Name() string {
	return fmt.Sprintf("ostensive(h=%g,%s)", o.HalfLife, o.Inner.Name())
}

// Weight implements Scheme.
func (o *Ostensive) Weight(ev Evidence, currentStep int) float64 {
	age := float64(currentStep - ev.Step)
	if age < 0 {
		age = 0
	}
	return o.Inner.Weight(ev, currentStep) * math.Pow(0.5, age/o.HalfLife)
}

// Learned weights indicators by their measured reliability: the
// per-indicator precision from analysed logs, optionally shifted by a
// baseline so uninformative indicators get zero mass. This is the
// "which features are stronger" answer operationalised.
type Learned struct {
	Weights    map[ilog.Action]float64
	RateWeight float64
}

// LearnWeights estimates indicator weights from a log and a relevance
// oracle: weight = max(0, precision - baseline). baseline is typically
// the prior probability that a random examined shot is relevant
// (pass 0 for raw precisions).
func LearnWeights(events []ilog.Event, oracle ilog.RelevanceOracle, baseline float64) *Learned {
	stats := ilog.AnalyzeIndicators(events, oracle)
	l := &Learned{Weights: map[ilog.Action]float64{}, RateWeight: 1.5}
	for _, st := range stats {
		if st.Action == ilog.ActionRate {
			continue
		}
		w := st.Precision - baseline
		if w < 0 {
			w = 0
		}
		l.Weights[st.Action] = w
	}
	return l
}

// Name implements Scheme.
func (l *Learned) Name() string {
	parts := make([]string, 0, len(l.Weights))
	for a := range l.Weights {
		parts = append(parts, string(a))
	}
	sort.Strings(parts)
	return "learned(" + strings.Join(parts, ",") + ")"
}

// Weight implements Scheme.
func (l *Learned) Weight(ev Evidence, _ int) float64 {
	if ev.Action == ilog.ActionRate {
		return l.RateWeight * float64(sign(ev.Rating))
	}
	return l.Weights[ev.Action]
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
