package feedback

import (
	"testing"

	"repro/internal/ilog"
)

func skipFixtureEvents() []ilog.Event {
	// Step 0: user browses ranks 0..3, clicks rank 2.
	// -> ranks 0 and 1 are skips; rank 2 click+browse; rank 3 plain browse.
	return []ilog.Event{
		{SessionID: "s", Step: 0, Action: ilog.ActionBrowse, ShotID: "a", Rank: 0},
		{SessionID: "s", Step: 0, Action: ilog.ActionBrowse, ShotID: "b", Rank: 1},
		{SessionID: "s", Step: 0, Action: ilog.ActionBrowse, ShotID: "c", Rank: 2},
		{SessionID: "s", Step: 0, Action: ilog.ActionClickKeyframe, ShotID: "c", Rank: 2},
		{SessionID: "s", Step: 0, Action: ilog.ActionPlay, ShotID: "c", Rank: 2, Seconds: 9},
		{SessionID: "s", Step: 0, Action: ilog.ActionBrowse, ShotID: "d", Rank: 3},
		// Step 1: browsing with no click at all -> no skips.
		{SessionID: "s", Step: 1, Action: ilog.ActionBrowse, ShotID: "e", Rank: 0},
	}
}

func TestApplySkipAboveReinterpretation(t *testing.T) {
	evidence := ApplySkipAbove(skipFixtureEvents(), func(string) float64 { return 10 })
	byShot := map[string][]ilog.Action{}
	for _, ev := range evidence {
		byShot[ev.ShotID] = append(byShot[ev.ShotID], ev.Action)
	}
	for _, shot := range []string{"a", "b"} {
		if len(byShot[shot]) != 1 || byShot[shot][0] != ActionSkip {
			t.Errorf("shot %s should be a single skip, got %v", shot, byShot[shot])
		}
	}
	// The clicked shot keeps its positive evidence (browse+click+play).
	if len(byShot["c"]) != 3 {
		t.Errorf("clicked shot evidence = %v", byShot["c"])
	}
	for _, a := range byShot["c"] {
		if a == ActionSkip {
			t.Error("clicked shot marked as skip")
		}
	}
	// Below the click: plain browse.
	if len(byShot["d"]) != 1 || byShot["d"][0] != ilog.ActionBrowse {
		t.Errorf("below-click shot = %v", byShot["d"])
	}
	// Step without clicks: browse stays browse.
	if len(byShot["e"]) != 1 || byShot["e"][0] != ilog.ActionBrowse {
		t.Errorf("clickless step shot = %v", byShot["e"])
	}
}

func TestSkipEvidenceIsNegativeUnderSchemes(t *testing.T) {
	skip := Evidence{ShotID: "x", Action: ActionSkip}
	if w := (Binary{}).Weight(skip, 0); w >= 0 {
		t.Errorf("binary skip weight = %v", w)
	}
	if w := DefaultGraded().Weight(skip, 0); w >= 0 {
		t.Errorf("graded skip weight = %v", w)
	}
}

func TestSkipAboveAccumulatesNegativeMass(t *testing.T) {
	acc := NewAccumulator(DefaultGraded())
	for _, ev := range ApplySkipAbove(skipFixtureEvents(), nil) {
		if err := acc.Observe(ev); err != nil {
			t.Fatal(err)
		}
	}
	mass := acc.Mass()
	if mass["a"] >= 0 || mass["b"] >= 0 {
		t.Errorf("skipped shots should carry negative mass: %v", mass)
	}
	if mass["c"] <= 0 {
		t.Errorf("clicked shot should stay positive: %v", mass)
	}
	pos := acc.PositiveShots()
	for _, id := range pos {
		if id == "a" || id == "b" {
			t.Error("skipped shot in positive set")
		}
	}
}

func TestApplySkipAboveEmptyAndNil(t *testing.T) {
	if out := ApplySkipAbove(nil, nil); len(out) != 0 {
		t.Errorf("nil events produced evidence: %v", out)
	}
	// Query events (no shot) are dropped.
	out := ApplySkipAbove([]ilog.Event{
		{SessionID: "s", Action: ilog.ActionQuery, Query: "x", Rank: -1},
	}, nil)
	if len(out) != 0 {
		t.Errorf("query event produced evidence: %v", out)
	}
}

func TestApplySkipAboveStepIsolation(t *testing.T) {
	// A click in step 1 must not convert step 0 browses into skips.
	events := []ilog.Event{
		{SessionID: "s", Step: 0, Action: ilog.ActionBrowse, ShotID: "a", Rank: 0},
		{SessionID: "s", Step: 1, Action: ilog.ActionClickKeyframe, ShotID: "b", Rank: 5},
	}
	out := ApplySkipAbove(events, nil)
	for _, ev := range out {
		if ev.ShotID == "a" && ev.Action == ActionSkip {
			t.Error("cross-step skip synthesised")
		}
	}
}
