package feedback

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ilog"
	"repro/internal/index"
	"repro/internal/search"
	"repro/internal/text"
)

func ev(action ilog.Action, shot string, step int) Evidence {
	return Evidence{ShotID: shot, Action: action, Step: step, Seconds: 5, ShotSeconds: 10}
}

func TestFromEvent(t *testing.T) {
	e := ilog.Event{SessionID: "s", Action: ilog.ActionPlay, ShotID: "sh1", Seconds: 7, Step: 2, Value: 0}
	evd, ok := FromEvent(e, 14)
	if !ok || evd.ShotID != "sh1" || evd.Seconds != 7 || evd.ShotSeconds != 14 || evd.Step != 2 {
		t.Errorf("FromEvent = %+v, %v", evd, ok)
	}
	if _, ok := FromEvent(ilog.Event{Action: ilog.ActionQuery, Query: "x", SessionID: "s"}, 0); ok {
		t.Error("query event should not convert")
	}
}

func TestBinaryScheme(t *testing.T) {
	b := Binary{}
	if b.Weight(ev(ilog.ActionClickKeyframe, "s", 0), 0) != 1 {
		t.Error("click weight != 1")
	}
	if b.Weight(ev(ilog.ActionBrowse, "s", 0), 0) != 1 {
		t.Error("browse weight != 1")
	}
	neg := Evidence{ShotID: "s", Action: ilog.ActionRate, Rating: -1}
	if b.Weight(neg, 0) != -1 {
		t.Error("negative rating weight != -1")
	}
}

func TestGradedOrdering(t *testing.T) {
	g := DefaultGraded()
	click := g.Weight(ev(ilog.ActionClickKeyframe, "s", 0), 0)
	play := g.Weight(ev(ilog.ActionPlay, "s", 0), 0)
	browse := g.Weight(ev(ilog.ActionBrowse, "s", 0), 0)
	if !(click > browse && play > browse) {
		t.Errorf("expected click/play >> browse: %v %v %v", click, play, browse)
	}
	pos := Evidence{ShotID: "s", Action: ilog.ActionRate, Rating: 1}
	if g.Weight(pos, 0) <= click {
		t.Error("explicit positive should outweigh any implicit")
	}
}

func TestDwellNormalised(t *testing.T) {
	d := NewDwellNormalised()
	full := Evidence{ShotID: "s", Action: ilog.ActionPlay, Seconds: 10, ShotSeconds: 10}
	tenth := Evidence{ShotID: "s", Action: ilog.ActionPlay, Seconds: 1, ShotSeconds: 10}
	over := Evidence{ShotID: "s", Action: ilog.ActionPlay, Seconds: 50, ShotSeconds: 10}
	if d.Weight(full, 0) <= d.Weight(tenth, 0) {
		t.Error("watching more should weigh more")
	}
	if d.Weight(over, 0) != d.Weight(full, 0) {
		t.Error("overplay should cap at full weight")
	}
	// Non-play actions pass through.
	if d.Weight(ev(ilog.ActionClickKeyframe, "s", 0), 0) != DefaultGraded().Weight(ev(ilog.ActionClickKeyframe, "s", 0), 0) {
		t.Error("non-play should match graded")
	}
	// Unknown shot length falls back to the 10s assumption.
	unk := Evidence{ShotID: "s", Action: ilog.ActionPlay, Seconds: 5, ShotSeconds: 0}
	if w := d.Weight(unk, 0); w <= 0 {
		t.Errorf("unknown length weight = %v", w)
	}
}

func TestOstensiveDecay(t *testing.T) {
	o, err := NewOstensive(Binary{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	fresh := o.Weight(ev(ilog.ActionClickKeyframe, "s", 5), 5)
	aged2 := o.Weight(ev(ilog.ActionClickKeyframe, "s", 3), 5)
	aged4 := o.Weight(ev(ilog.ActionClickKeyframe, "s", 1), 5)
	if math.Abs(fresh-1) > 1e-12 {
		t.Errorf("fresh = %v, want 1", fresh)
	}
	if math.Abs(aged2-0.5) > 1e-12 {
		t.Errorf("one half-life = %v, want 0.5", aged2)
	}
	if math.Abs(aged4-0.25) > 1e-12 {
		t.Errorf("two half-lives = %v, want 0.25", aged4)
	}
	// Future evidence (clock skew) is not amplified.
	future := o.Weight(ev(ilog.ActionClickKeyframe, "s", 9), 5)
	if future > 1 {
		t.Errorf("future evidence weight = %v", future)
	}
	if _, err := NewOstensive(nil, 0); err == nil {
		t.Error("zero half-life accepted")
	}
	if o2, _ := NewOstensive(nil, 1); o2.Inner == nil {
		t.Error("nil inner should default")
	}
}

// Property: ostensive weight decays monotonically with age.
func TestPropertyOstensiveMonotone(t *testing.T) {
	o, _ := NewOstensive(Binary{}, 3)
	f := func(age1, age2 uint8) bool {
		a1, a2 := int(age1%50), int(age2%50)
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		w1 := o.Weight(ev(ilog.ActionPlay, "s", 100-a1), 100)
		w2 := o.Weight(ev(ilog.ActionPlay, "s", 100-a2), 100)
		return w1 >= w2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLearnWeights(t *testing.T) {
	events := []ilog.Event{
		{SessionID: "s", Action: ilog.ActionClickKeyframe, ShotID: "rel1", TopicID: 0},
		{SessionID: "s", Action: ilog.ActionClickKeyframe, ShotID: "rel2", TopicID: 0},
		{SessionID: "s", Action: ilog.ActionClickKeyframe, ShotID: "non1", TopicID: 0},
		{SessionID: "s", Action: ilog.ActionBrowse, ShotID: "non1", TopicID: 0},
		{SessionID: "s", Action: ilog.ActionBrowse, ShotID: "non2", TopicID: 0},
		{SessionID: "s", Action: ilog.ActionBrowse, ShotID: "rel1", TopicID: 0},
	}
	oracle := func(_ int, shot string) bool { return strings.HasPrefix(shot, "rel") }
	l := LearnWeights(events, oracle, 0)
	if l.Weights[ilog.ActionClickKeyframe] <= l.Weights[ilog.ActionBrowse] {
		t.Errorf("click %v should outweigh browse %v",
			l.Weights[ilog.ActionClickKeyframe], l.Weights[ilog.ActionBrowse])
	}
	// Baseline shift can zero weak indicators but never goes negative.
	l = LearnWeights(events, oracle, 0.5)
	for a, w := range l.Weights {
		if w < 0 {
			t.Errorf("negative learned weight for %s: %v", a, w)
		}
	}
	if l.Name() == "" {
		t.Error("empty name")
	}
	neg := Evidence{ShotID: "s", Action: ilog.ActionRate, Rating: -1}
	if l.Weight(neg, 0) >= 0 {
		t.Error("learned scheme should pass through explicit negatives")
	}
}

func TestAccumulatorMass(t *testing.T) {
	a := NewAccumulator(Binary{})
	if err := a.Observe(ev(ilog.ActionClickKeyframe, "sh1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(ev(ilog.ActionPlay, "sh1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(ev(ilog.ActionBrowse, "sh2", 0)); err != nil {
		t.Fatal(err)
	}
	mass := a.Mass()
	if mass["sh1"] != 2 || mass["sh2"] != 1 {
		t.Errorf("mass = %v", mass)
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
	if err := a.Observe(Evidence{}); err == nil {
		t.Error("empty evidence accepted")
	}
	a.Reset()
	if a.Len() != 0 || len(a.Mass()) != 0 || a.Step() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestAccumulatorNegativeCancels(t *testing.T) {
	a := NewAccumulator(Binary{})
	a.Observe(ev(ilog.ActionClickKeyframe, "sh1", 0))
	a.Observe(Evidence{ShotID: "sh1", Action: ilog.ActionRate, Rating: -1})
	if m := a.Mass(); len(m) != 0 {
		t.Errorf("cancelled shot still has mass: %v", m)
	}
}

func TestAccumulatorStepTracking(t *testing.T) {
	a := NewAccumulator(nil) // default graded
	a.Observe(ev(ilog.ActionPlay, "sh1", 3))
	if a.Step() != 3 {
		t.Errorf("step should follow evidence: %d", a.Step())
	}
	a.AdvanceStep()
	if a.Step() != 4 {
		t.Errorf("AdvanceStep: %d", a.Step())
	}
}

func TestAccumulatorOstensiveRecency(t *testing.T) {
	o, _ := NewOstensive(Binary{}, 1)
	a := NewAccumulator(o)
	a.Observe(ev(ilog.ActionClickKeyframe, "old", 0))
	a.Observe(ev(ilog.ActionClickKeyframe, "new", 4))
	mass := a.Mass()
	if mass["new"] <= mass["old"] {
		t.Errorf("recent evidence should dominate: %v", mass)
	}
}

func TestPositiveShotsOrdering(t *testing.T) {
	a := NewAccumulator(Binary{})
	a.Observe(ev(ilog.ActionClickKeyframe, "b", 0))
	a.Observe(ev(ilog.ActionClickKeyframe, "b", 0))
	a.Observe(ev(ilog.ActionClickKeyframe, "a", 0))
	a.Observe(ev(ilog.ActionClickKeyframe, "c", 0))
	a.Observe(Evidence{ShotID: "neg", Action: ilog.ActionRate, Rating: -1})
	got := a.PositiveShots()
	want := []string{"b", "a", "c"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("PositiveShots = %v, want %v", got, want)
	}
}

// ---- expansion ----

func expanderFixture(t *testing.T) (*Expander, *search.Engine, map[string]string) {
	t.Helper()
	docs := map[string]string{
		"sh1": "stadium goal striker celebration wembley",
		"sh2": "stadium crowd singing anthem",
		"sh3": "budget chancellor treasury deficit",
		"sh4": "goal replay referee whistle",
	}
	an := text.NewAnalyzer()
	b := index.NewBuilder()
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := b.AddDocument(index.NewDocument(id).AddTerms(index.FieldText, an.Terms(docs[id])...)); err != nil {
			t.Fatal(err)
		}
	}
	ix := b.Build()
	e := search.NewEngine(ix, an)
	x := ExpanderForIndex(ix, an, func(id string) (string, bool) {
		s, ok := docs[id]
		return s, ok
	})
	return x, e, docs
}

func TestExpandAddsTopicalTerms(t *testing.T) {
	x, e, _ := expanderFixture(t)
	base := e.ParseText("football")
	mass := map[string]float64{"sh1": 1.0, "sh4": 0.5}
	q := x.Expand(base, mass, 4, 0.5)
	if len(q.Terms) != len(base.Terms)+4 {
		t.Fatalf("expanded to %d terms, want %d", len(q.Terms), len(base.Terms)+4)
	}
	terms := map[string]float64{}
	maxW := 0.0
	for _, wt := range q.Terms[len(base.Terms):] {
		terms[wt.Term] = wt.Weight
		if wt.Weight > maxW {
			maxW = wt.Weight
		}
	}
	// "goal" appears in both positive shots: must be among the top-4
	// expansions (the positive shots' singleton terms may outscore it
	// on idf, but it cannot be outside the top 4).
	if w, ok := terms[text.Stem("goal")]; !ok {
		t.Errorf("goal not added: %v", terms)
	} else if w <= 0 || w > 0.5+1e-12 {
		t.Errorf("goal weight = %v, want in (0, 0.5]", w)
	}
	// The strongest expansion term is normalised to exactly beta.
	if math.Abs(maxW-0.5) > 1e-12 {
		t.Errorf("strongest expansion weight = %v, want 0.5", maxW)
	}
	// Budget vocabulary must not appear.
	if _, ok := terms[text.Stem("chancellor")]; ok {
		t.Error("unrelated term added")
	}
}

func TestExpandExcludesBaseTerms(t *testing.T) {
	x, e, _ := expanderFixture(t)
	base := e.ParseText("goal")
	q := x.Expand(base, map[string]float64{"sh1": 1}, 5, 0.5)
	seen := map[string]int{}
	for _, wt := range q.Terms {
		seen[wt.Term]++
	}
	if seen[text.Stem("goal")] != 1 {
		t.Errorf("base term duplicated: %v", seen)
	}
}

func TestExpandNoOpCases(t *testing.T) {
	x, e, _ := expanderFixture(t)
	base := e.ParseText("goal stadium")
	for _, q := range []search.Query{
		x.Expand(base, nil, 5, 0.5),
		x.Expand(base, map[string]float64{"sh1": 1}, 0, 0.5),
		x.Expand(base, map[string]float64{"sh1": 1}, 5, 0),
		x.Expand(base, map[string]float64{"missing": 1}, 5, 0.5),
	} {
		if len(q.Terms) != len(base.Terms) {
			t.Errorf("no-op expansion changed query: %+v", q.Terms)
		}
	}
	// Base query must not be mutated by expansion.
	_ = x.Expand(base, map[string]float64{"sh1": 1}, 5, 0.5)
	if len(base.Terms) != 2 {
		t.Error("Expand mutated base query")
	}
}

func TestExpandNegativeMassSuppresses(t *testing.T) {
	x, e, _ := expanderFixture(t)
	base := e.ParseText("football")
	// sh3 negative: its unique vocabulary must not be suggested.
	q := x.Expand(base, map[string]float64{"sh1": 1, "sh3": -2}, 10, 0.5)
	for _, wt := range q.Terms {
		if wt.Term == text.Stem("treasury") || wt.Term == text.Stem("deficit") {
			t.Errorf("negatively-massed vocabulary added: %s", wt.Term)
		}
		if wt.Weight < 0 {
			t.Errorf("negative expansion weight: %+v", wt)
		}
	}
}

func TestCandidatesDeterministic(t *testing.T) {
	x, e, _ := expanderFixture(t)
	base := e.ParseText("football")
	mass := map[string]float64{"sh1": 1, "sh2": 1, "sh4": 1}
	a := x.Candidates(base, mass)
	b := x.Candidates(base, mass)
	if len(a) == 0 {
		t.Fatal("no candidates")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("candidate order unstable")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Score < a[i].Score {
			t.Error("candidates not sorted by score")
		}
	}
}

// Property: expanded query retains base weights exactly and never
// exceeds topN additions, and expansion weights are in (0, beta].
func TestPropertyExpandBounds(t *testing.T) {
	x, e, docs := expanderFixture(t)
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	f := func(massBits uint8, topN8 uint8, betaRaw uint8) bool {
		base := e.ParseText("football goal")
		mass := map[string]float64{}
		for i, id := range ids {
			if massBits&(1<<i) != 0 {
				mass[id] = float64(i + 1)
			}
		}
		topN := int(topN8 % 6)
		beta := float64(betaRaw%10) / 10
		q := x.Expand(base, mass, topN, beta)
		if len(q.Terms) < len(base.Terms) || len(q.Terms) > len(base.Terms)+topN {
			return false
		}
		for i, wt := range q.Terms[:len(base.Terms)] {
			if wt != base.Terms[i] {
				return false
			}
		}
		for _, wt := range q.Terms[len(base.Terms):] {
			if wt.Weight <= 0 || wt.Weight > beta+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccumulatorMass(b *testing.B) {
	o, _ := NewOstensive(nil, 2)
	a := NewAccumulator(o)
	for i := 0; i < 500; i++ {
		a.Observe(Evidence{
			ShotID: "sh" + string(rune('a'+i%26)), Action: ilog.ActionPlay,
			Seconds: 5, ShotSeconds: 10, Step: i / 50,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Mass()
	}
}
