package eval

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestRunRoundTrip(t *testing.T) {
	run := NewRun("sysA")
	run.Add("1", []string{"d3", "d1", "d2"})
	run.Add("2", []string{"d9"})
	var buf bytes.Buffer
	if err := WriteRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != "sysA" {
		t.Errorf("tag = %q", got.Tag)
	}
	if !reflect.DeepEqual(got.Rankings["1"], []string{"d3", "d1", "d2"}) {
		t.Errorf("q1 ranking = %v", got.Rankings["1"])
	}
	if !reflect.DeepEqual(got.Rankings["2"], []string{"d9"}) {
		t.Errorf("q2 ranking = %v", got.Rankings["2"])
	}
}

func TestRunAddCopies(t *testing.T) {
	run := NewRun("x")
	src := []string{"a", "b"}
	run.Add("1", src)
	src[0] = "mutated"
	if run.Rankings["1"][0] != "a" {
		t.Error("Add aliased caller storage")
	}
}

func TestReadRunRejectsShortLines(t *testing.T) {
	if _, err := ReadRun(strings.NewReader("1 Q0 d1 1\n")); err == nil {
		t.Error("short line accepted")
	}
	// Blank lines and comments are fine.
	run, err := ReadRun(strings.NewReader("\n# comment\n1 Q0 d1 1 5.0 tag\n"))
	if err != nil || len(run.Rankings["1"]) != 1 {
		t.Errorf("comment handling broken: %v %v", run, err)
	}
}

func TestQrelsRoundTrip(t *testing.T) {
	qs := QrelSet{
		"1": Judgments{"d1": 2, "d2": 0},
		"7": Judgments{"d5": 1},
	}
	var buf bytes.Buffer
	if err := WriteQrels(&buf, qs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQrels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, qs) {
		t.Errorf("round trip: got %v want %v", got, qs)
	}
}

func TestQrelsDeterministicBytes(t *testing.T) {
	qs := QrelSet{"1": Judgments{"b": 1, "a": 2, "c": 0}}
	var a, b bytes.Buffer
	if err := WriteQrels(&a, qs); err != nil {
		t.Fatal(err)
	}
	if err := WriteQrels(&b, qs); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("qrels serialisation not deterministic")
	}
}

func TestReadQrelsRejectsBadLines(t *testing.T) {
	if _, err := ReadQrels(strings.NewReader("1 0 d1\n")); err == nil {
		t.Error("3-field line accepted")
	}
	if _, err := ReadQrels(strings.NewReader("1 0 d1 notanumber\n")); err == nil {
		t.Error("bad grade accepted")
	}
}

func TestEvaluateRun(t *testing.T) {
	run := NewRun("sys")
	run.Add("1", []string{"rel", "non"})
	run.Add("2", []string{"non2", "rel2"})
	run.Add("unjudged", []string{"x"})
	qs := QrelSet{
		"1": Judgments{"rel": 1},
		"2": Judgments{"rel2": 1},
	}
	perQuery, mean, skipped := EvaluateRun(run, qs)
	if len(perQuery) != 2 {
		t.Fatalf("scored %d queries", len(perQuery))
	}
	if perQuery["1"].AP != 1 {
		t.Errorf("q1 AP = %v", perQuery["1"].AP)
	}
	if perQuery["2"].AP != 0.5 {
		t.Errorf("q2 AP = %v", perQuery["2"].AP)
	}
	if mean.AP != 0.75 {
		t.Errorf("mean AP = %v", mean.AP)
	}
	if len(skipped) != 1 || skipped[0] != "unjudged" {
		t.Errorf("skipped = %v", skipped)
	}
}
