// Package eval implements the TRECVID-style evaluation layer: graded
// relevance judgements, rank metrics (AP, P@k, recall, nDCG, MRR,
// bpref) and statistical significance tests (paired t-test, Wilcoxon
// signed-rank, randomisation) used by every experiment table.
package eval

import (
	"math"
	"sort"
)

// Judgments holds the graded relevance assessments for one query:
// document ID -> grade. Grade 0 entries are explicitly-judged
// non-relevant; absent documents are unjudged (treated as
// non-relevant by the binary metrics, per TREC convention).
type Judgments map[string]int

// NumRelevant counts documents with grade >= minGrade.
func (j Judgments) NumRelevant(minGrade int) int {
	n := 0
	for _, g := range j {
		if g >= minGrade {
			n++
		}
	}
	return n
}

// Metrics is the fixed bundle of rank metrics every experiment
// reports. Cutoffs follow TRECVID practice.
type Metrics struct {
	AP     float64 // average precision (binary at MinGrade)
	RR     float64 // reciprocal rank of first relevant
	NDCG10 float64 // graded nDCG at 10
	P5     float64
	P10    float64
	P20    float64
	R10    float64 // recall at 10
	R100   float64 // recall at 100
	Bpref  float64
	// Success1/5/10: 1 if a relevant document appears in the top k.
	Success1, Success5, Success10 float64
}

// MinGrade is the binarisation threshold: grades >= MinGrade count as
// relevant for the binary metrics. The synthetic qrels grade field
// footage 2 and lead-ins 1, so the default of 1 counts both.
const MinGrade = 1

// Compute evaluates one ranked list against judgments. Rankings may
// contain unjudged documents; those count as non-relevant.
func Compute(ranking []string, judg Judgments) Metrics {
	var m Metrics
	totalRel := judg.NumRelevant(MinGrade)

	relAt := func(i int) bool { return judg[ranking[i]] >= MinGrade }

	// Precision/recall style metrics in one pass.
	relSeen := 0
	sumPrec := 0.0
	for i := range ranking {
		if relAt(i) {
			relSeen++
			sumPrec += float64(relSeen) / float64(i+1)
			if m.RR == 0 {
				m.RR = 1 / float64(i+1)
			}
		}
		switch i + 1 {
		case 1:
			m.Success1 = b2f(relSeen > 0)
		case 5:
			m.P5 = float64(relSeen) / 5
			m.Success5 = b2f(relSeen > 0)
		case 10:
			m.P10 = float64(relSeen) / 10
			m.Success10 = b2f(relSeen > 0)
			if totalRel > 0 {
				m.R10 = float64(relSeen) / float64(totalRel)
			}
		case 20:
			m.P20 = float64(relSeen) / 20
		case 100:
			if totalRel > 0 {
				m.R100 = float64(relSeen) / float64(totalRel)
			}
		}
	}
	// Short rankings: fill the cutoffs the loop never reached.
	fillShortCutoffs(&m, ranking, relSeen, totalRel)
	if totalRel > 0 {
		m.AP = sumPrec / float64(totalRel)
	}
	m.NDCG10 = ndcgAt(10, ranking, judg)
	m.Bpref = bpref(ranking, judg)
	return m
}

// fillShortCutoffs computes cutoff metrics when len(ranking) < cutoff:
// precision denominators stay at the cutoff (TREC convention), recall
// and success use everything retrieved.
func fillShortCutoffs(m *Metrics, ranking []string, relSeen, totalRel int) {
	n := len(ranking)
	any := relSeen > 0
	if n < 1 {
		m.Success1 = 0
	}
	if n < 5 {
		m.P5 = float64(relSeen) / 5
		m.Success5 = b2f(any)
	}
	if n < 10 {
		m.P10 = float64(relSeen) / 10
		m.Success10 = b2f(any)
		if totalRel > 0 {
			m.R10 = float64(relSeen) / float64(totalRel)
		}
	}
	if n < 20 {
		m.P20 = float64(relSeen) / 20
	}
	if n < 100 && totalRel > 0 {
		m.R100 = float64(relSeen) / float64(totalRel)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ndcgAt computes graded nDCG with exponential gain 2^g-1 and log2
// position discount.
func ndcgAt(k int, ranking []string, judg Judgments) float64 {
	dcg := 0.0
	for i := 0; i < k && i < len(ranking); i++ {
		g := judg[ranking[i]]
		if g > 0 {
			dcg += (math.Pow(2, float64(g)) - 1) / math.Log2(float64(i)+2)
		}
	}
	// Ideal ranking: all judged grades, descending.
	grades := make([]int, 0, len(judg))
	for _, g := range judg {
		if g > 0 {
			grades = append(grades, g)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(grades)))
	idcg := 0.0
	for i := 0; i < k && i < len(grades); i++ {
		idcg += (math.Pow(2, float64(grades[i])) - 1) / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// bpref implements Buckley & Voorhees' bpref: robust to incomplete
// judgements. Only explicitly judged non-relevant documents (grade 0
// present in the map) count against relevant ones.
func bpref(ranking []string, judg Judgments) float64 {
	r := judg.NumRelevant(MinGrade)
	if r == 0 {
		return 0
	}
	numJudgedNonRel := 0
	for _, g := range judg {
		if g < MinGrade {
			numJudgedNonRel++
		}
	}
	denom := float64(min(r, numJudgedNonRel))
	sum := 0.0
	nonRelSeen := 0
	for _, id := range ranking {
		g, judged := judg[id]
		if !judged {
			continue
		}
		if g >= MinGrade {
			if denom == 0 {
				sum += 1
			} else {
				frac := float64(min(nonRelSeen, int(denom))) / denom
				sum += 1 - frac
			}
		} else {
			nonRelSeen++
		}
	}
	return sum / float64(r)
}

// Mean averages metric bundles; empty input yields zeros.
func Mean(ms []Metrics) Metrics {
	var out Metrics
	if len(ms) == 0 {
		return out
	}
	for _, m := range ms {
		out.AP += m.AP
		out.RR += m.RR
		out.NDCG10 += m.NDCG10
		out.P5 += m.P5
		out.P10 += m.P10
		out.P20 += m.P20
		out.R10 += m.R10
		out.R100 += m.R100
		out.Bpref += m.Bpref
		out.Success1 += m.Success1
		out.Success5 += m.Success5
		out.Success10 += m.Success10
	}
	n := float64(len(ms))
	out.AP /= n
	out.RR /= n
	out.NDCG10 /= n
	out.P5 /= n
	out.P10 /= n
	out.P20 /= n
	out.R10 /= n
	out.R100 /= n
	out.Bpref /= n
	out.Success1 /= n
	out.Success5 /= n
	out.Success10 /= n
	return out
}

// APs extracts the AP column from a per-query metric slice (the usual
// input to the significance tests).
func APs(ms []Metrics) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.AP
	}
	return out
}

// RelImprovement returns (b-a)/a as a percentage; 0 when a is 0.
func RelImprovement(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
