package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestComputePerfectRanking(t *testing.T) {
	judg := Judgments{"a": 2, "b": 2, "c": 1}
	m := Compute([]string{"a", "b", "c", "x", "y"}, judg)
	approx(t, "AP", m.AP, 1, 1e-12)
	approx(t, "RR", m.RR, 1, 1e-12)
	approx(t, "NDCG10", m.NDCG10, 1, 1e-12)
	approx(t, "P5", m.P5, 3.0/5, 1e-12)
	approx(t, "R10", m.R10, 1, 1e-12)
	approx(t, "Success1", m.Success1, 1, 1e-12)
}

func TestComputeWorstRanking(t *testing.T) {
	judg := Judgments{"a": 1}
	m := Compute([]string{"x", "y", "z"}, judg)
	if m.AP != 0 || m.RR != 0 || m.NDCG10 != 0 || m.Success10 != 0 {
		t.Errorf("all-zero expected, got %+v", m)
	}
}

func TestComputeKnownAP(t *testing.T) {
	// Relevant at ranks 1 and 3, R=2: AP = (1/1 + 2/3)/2 = 5/6.
	judg := Judgments{"a": 1, "b": 1}
	m := Compute([]string{"a", "x", "b"}, judg)
	approx(t, "AP", m.AP, 5.0/6, 1e-12)
	approx(t, "RR", m.RR, 1, 1e-12)
}

func TestComputeAPCountsUnretrievedRelevant(t *testing.T) {
	// R=4 but only 1 retrieved at rank 1: AP = (1/1)/4.
	judg := Judgments{"a": 1, "b": 1, "c": 1, "d": 1}
	m := Compute([]string{"a"}, judg)
	approx(t, "AP", m.AP, 0.25, 1e-12)
}

func TestComputeMRRSecondPosition(t *testing.T) {
	judg := Judgments{"rel": 1}
	m := Compute([]string{"x", "rel"}, judg)
	approx(t, "RR", m.RR, 0.5, 1e-12)
	approx(t, "Success1", m.Success1, 0, 1e-12)
	approx(t, "Success5", m.Success5, 1, 1e-12)
}

func TestComputeShortRanking(t *testing.T) {
	judg := Judgments{"a": 1, "b": 1}
	m := Compute([]string{"a"}, judg) // shorter than every cutoff
	approx(t, "P5", m.P5, 1.0/5, 1e-12)
	approx(t, "P10", m.P10, 1.0/10, 1e-12)
	approx(t, "P20", m.P20, 1.0/20, 1e-12)
	approx(t, "R10", m.R10, 0.5, 1e-12)
	approx(t, "R100", m.R100, 0.5, 1e-12)
}

func TestComputeEmptyRanking(t *testing.T) {
	m := Compute(nil, Judgments{"a": 1})
	if m.AP != 0 || m.P10 != 0 || m.Success10 != 0 {
		t.Errorf("empty ranking should zero everything: %+v", m)
	}
}

func TestComputeNoJudgments(t *testing.T) {
	m := Compute([]string{"a", "b"}, Judgments{})
	if m.AP != 0 || m.NDCG10 != 0 {
		t.Errorf("no judgments should zero AP/nDCG: %+v", m)
	}
}

func TestNDCGPrefersGradedOrder(t *testing.T) {
	judg := Judgments{"hi": 2, "lo": 1}
	good := Compute([]string{"hi", "lo"}, judg)
	bad := Compute([]string{"lo", "hi"}, judg)
	if good.NDCG10 <= bad.NDCG10 {
		t.Errorf("nDCG(graded-correct)=%v should beat swapped=%v", good.NDCG10, bad.NDCG10)
	}
	approx(t, "good NDCG", good.NDCG10, 1, 1e-12)
}

func TestBprefJudgedNonRelevant(t *testing.T) {
	// One relevant after one judged non-relevant: bpref = 1 - 1/1 = 0.
	judg := Judgments{"rel": 1, "bad": 0}
	m := Compute([]string{"bad", "rel"}, judg)
	approx(t, "Bpref", m.Bpref, 0, 1e-12)
	// Relevant first: bpref = 1.
	m = Compute([]string{"rel", "bad"}, judg)
	approx(t, "Bpref", m.Bpref, 1, 1e-12)
	// Unjudged docs between do not hurt bpref.
	m = Compute([]string{"unjudged", "rel", "bad"}, judg)
	approx(t, "Bpref", m.Bpref, 1, 1e-12)
}

// Property: every metric stays in [0,1] for random rankings/judgments.
func TestPropertyMetricsBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		judg := Judgments{}
		for _, id := range ids {
			if r.Float64() < 0.5 {
				judg[id] = r.Intn(3)
			}
		}
		perm := r.Perm(len(ids))
		ranking := make([]string, 0, len(ids))
		for _, i := range perm {
			if r.Float64() < 0.8 {
				ranking = append(ranking, ids[i])
			}
		}
		m := Compute(ranking, judg)
		for _, v := range []float64{m.AP, m.RR, m.NDCG10, m.P5, m.P10, m.P20, m.R10, m.R100, m.Bpref, m.Success1, m.Success5, m.Success10} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: moving a relevant document strictly earlier never lowers AP.
func TestPropertyAPMonotoneUnderPromotion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(10)
		ranking := make([]string, n)
		judg := Judgments{}
		relIdx := []int{}
		for i := range ranking {
			ranking[i] = string(rune('a' + i))
			if r.Float64() < 0.4 {
				judg[ranking[i]] = 1
				relIdx = append(relIdx, i)
			}
		}
		if len(relIdx) == 0 {
			return true
		}
		before := Compute(ranking, judg).AP
		// Promote the last relevant document one position.
		i := relIdx[len(relIdx)-1]
		if i == 0 {
			return true
		}
		ranking[i-1], ranking[i] = ranking[i], ranking[i-1]
		after := Compute(ranking, judg).AP
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AP equals 1 exactly when every relevant document is
// retrieved and ranked above every non-relevant one.
func TestPropertyAPPerfectIffSeparated(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		ranking := make([]string, n)
		judg := Judgments{}
		nRel := 1 + r.Intn(n-1)
		for i := range ranking {
			ranking[i] = string(rune('a' + i))
			if i < nRel {
				judg[ranking[i]] = 1
			}
		}
		// Shuffle sometimes to create imperfect rankings.
		shuffled := r.Float64() < 0.5
		if shuffled {
			r.Shuffle(n, func(i, j int) { ranking[i], ranking[j] = ranking[j], ranking[i] })
		}
		separated := true
		seenNonRel := false
		for _, id := range ranking {
			if judg[id] >= 1 {
				if seenNonRel {
					separated = false
				}
			} else {
				seenNonRel = true
			}
		}
		ap := Compute(ranking, judg).AP
		if separated && math.Abs(ap-1) > 1e-12 {
			return false
		}
		if !separated && ap >= 1-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: nDCG never exceeds 1 and equals its own recomputation
// (pure function).
func TestPropertyNDCGStable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ids := []string{"a", "b", "c", "d", "e", "f"}
		judg := Judgments{}
		for _, id := range ids {
			if r.Float64() < 0.6 {
				judg[id] = r.Intn(3)
			}
		}
		perm := r.Perm(len(ids))
		ranking := make([]string, len(ids))
		for i, p := range perm {
			ranking[i] = ids[p]
		}
		m1 := Compute(ranking, judg)
		m2 := Compute(ranking, judg)
		return m1 == m2 && m1.NDCG10 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	ms := []Metrics{{AP: 0.2, P10: 0.4}, {AP: 0.6, P10: 0.8}}
	m := Mean(ms)
	approx(t, "mean AP", m.AP, 0.4, 1e-12)
	approx(t, "mean P10", m.P10, 0.6, 1e-12)
	empty := Mean(nil)
	if empty.AP != 0 {
		t.Error("Mean(nil) should be zero")
	}
}

func TestAPsAndRelImprovement(t *testing.T) {
	aps := APs([]Metrics{{AP: 0.1}, {AP: 0.3}})
	if len(aps) != 2 || aps[1] != 0.3 {
		t.Errorf("APs = %v", aps)
	}
	approx(t, "RelImprovement", RelImprovement(0.2, 0.25), 25, 1e-9)
	if RelImprovement(0, 1) != 0 {
		t.Error("RelImprovement with zero base should be 0")
	}
}

func TestPairedTTestKnownCase(t *testing.T) {
	// Constant improvement of 0.1 with small noise: strongly significant.
	a := []float64{0.30, 0.25, 0.40, 0.35, 0.28, 0.33, 0.27, 0.38, 0.31, 0.29}
	b := make([]float64, len(a))
	for i := range a {
		b[i] = a[i] + 0.1 + 0.001*float64(i%3)
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.001 {
		t.Errorf("p = %v, want < 0.001", res.P)
	}
	if res.Statistic <= 0 {
		t.Errorf("t = %v, want positive for improvement", res.Statistic)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	a := []float64{0.1, 0.5, 0.3, 0.7, 0.2}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.99 {
		t.Errorf("identical samples: p = %v, want ~1", res.P)
	}
}

func TestPairedTTestSymmetricNoise(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = r.Float64()
		b[i] = a[i] + (r.Float64()-0.5)*0.02 // zero-mean noise
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 {
		t.Errorf("zero-mean noise flagged significant: p=%v", res.P)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestStudentTSFAgainstKnownValues(t *testing.T) {
	// t=2.262, df=9 is the classic 0.05 two-sided critical value.
	p := 2 * studentTSF(2.262, 9)
	approx(t, "p(2.262,df9)", p, 0.05, 0.002)
	// t=1.96, df -> large approximates the normal.
	p = 2 * studentTSF(1.96, 10000)
	approx(t, "p(1.96,df1e4)", p, 0.05, 0.002)
}

func TestWilcoxonDetectsShift(t *testing.T) {
	a := make([]float64, 20)
	b := make([]float64, 20)
	r := rand.New(rand.NewSource(3))
	for i := range a {
		a[i] = r.Float64()
		b[i] = a[i] + 0.2 + 0.01*r.Float64()
	}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Errorf("clear shift: p = %v", res.P)
	}
}

func TestWilcoxonAllZeroDiffs(t *testing.T) {
	a := []float64{1, 2, 3}
	res, err := WilcoxonSignedRank(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.N != 0 {
		t.Errorf("all-zero diffs: %+v", res)
	}
}

func TestWilcoxonLengthMismatch(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRandomizationTest(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := make([]float64, 25)
	b := make([]float64, 25)
	for i := range a {
		a[i] = r.Float64()
		b[i] = a[i] + 0.15
	}
	res, err := RandomizationTest(a, b, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.01 {
		t.Errorf("constant shift: p = %v", res.P)
	}
	// Deterministic in seed.
	res2, _ := RandomizationTest(a, b, 2000, 7)
	if res.P != res2.P {
		t.Error("randomisation test not deterministic in seed")
	}
	// Identical samples: p ~ 1.
	resSame, _ := RandomizationTest(a, a, 500, 7)
	if resSame.P < 0.9 {
		t.Errorf("identical samples: p = %v", resSame.P)
	}
}

func TestKendallTau(t *testing.T) {
	tau, err := KendallTau([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "tau identical order", tau, 1, 1e-12)
	tau, _ = KendallTau([]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10})
	approx(t, "tau reversed", tau, -1, 1e-12)
	tau, _ = KendallTau([]float64{1, 2, 3}, []float64{5, 5, 5})
	approx(t, "tau all ties", tau, 0, 1e-12)
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := KendallTau([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTestResultString(t *testing.T) {
	r := TestResult{Statistic: 2.5, P: 0.003}
	if s := r.String(); s == "" || !r.Significant(0.05) {
		t.Errorf("String/Significant broken: %q", s)
	}
	weak := TestResult{Statistic: 0.5, P: 0.5}
	if weak.Significant(0.05) {
		t.Error("p=0.5 should not be significant")
	}
}

func TestJudgmentsNumRelevant(t *testing.T) {
	j := Judgments{"a": 2, "b": 1, "c": 0}
	if j.NumRelevant(1) != 2 || j.NumRelevant(2) != 1 {
		t.Errorf("NumRelevant wrong: %d/%d", j.NumRelevant(1), j.NumRelevant(2))
	}
}

func BenchmarkCompute(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	ranking := make([]string, 1000)
	judg := Judgments{}
	for i := range ranking {
		id := string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i%13))
		ranking[i] = id
		if r.Float64() < 0.05 {
			judg[id] = 1 + r.Intn(2)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(ranking, judg)
	}
}
