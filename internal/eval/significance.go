package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TestResult reports one significance test.
type TestResult struct {
	// Statistic is the test statistic (t, W, or observed mean diff).
	Statistic float64
	// P is the two-sided p-value.
	P float64
	// N is the number of pairs used (zero-difference pairs may be
	// dropped by Wilcoxon).
	N int
}

// Significant reports whether P < alpha.
func (r TestResult) Significant(alpha float64) bool { return r.P < alpha }

// String formats the result compactly for experiment tables.
func (r TestResult) String() string {
	star := ""
	if r.P < 0.01 {
		star = "**"
	} else if r.P < 0.05 {
		star = "*"
	}
	return fmt.Sprintf("stat=%.4f p=%.4f%s", r.Statistic, r.P, star)
}

// PairedTTest runs the two-sided paired Student t-test on equal-length
// samples. It returns an error for n < 2 or mismatched lengths.
func PairedTTest(a, b []float64) (TestResult, error) {
	if len(a) != len(b) {
		return TestResult{}, fmt.Errorf("eval: paired t-test needs equal lengths (%d vs %d)", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return TestResult{}, fmt.Errorf("eval: paired t-test needs n >= 2, got %d", n)
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = b[i] - a[i]
	}
	mean := meanOf(diffs)
	sd := math.Sqrt(varianceOf(diffs, mean))
	if sd == 0 {
		// All differences identical: degenerate; p=1 when diff 0, else ~0.
		p := 1.0
		if mean != 0 {
			p = 0
		}
		return TestResult{Statistic: math.Inf(sign(mean)), P: p, N: n}, nil
	}
	t := mean / (sd / math.Sqrt(float64(n)))
	df := float64(n - 1)
	p := 2 * studentTSF(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TestResult{Statistic: t, P: p, N: n}, nil
}

// WilcoxonSignedRank runs the two-sided Wilcoxon signed-rank test with
// the normal approximation (with tie and zero corrections); suitable
// for the n >= 10 query sets used in the experiments.
func WilcoxonSignedRank(a, b []float64) (TestResult, error) {
	if len(a) != len(b) {
		return TestResult{}, fmt.Errorf("eval: wilcoxon needs equal lengths (%d vs %d)", len(a), len(b))
	}
	type pair struct {
		abs  float64
		sign float64
	}
	var pairs []pair
	for i := range a {
		d := b[i] - a[i]
		if d == 0 {
			continue // standard practice: drop zero differences
		}
		pairs = append(pairs, pair{abs: math.Abs(d), sign: sign2(d)})
	}
	n := len(pairs)
	if n < 1 {
		return TestResult{Statistic: 0, P: 1, N: 0}, nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].abs < pairs[j].abs })
	// Average ranks for ties.
	ranks := make([]float64, n)
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && pairs[j].abs == pairs[i].abs {
			j++
		}
		avg := float64(i+1+j) / 2 // mean of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	var wPlus float64
	for i, p := range pairs {
		if p.sign > 0 {
			wPlus += ranks[i]
		}
	}
	nf := float64(n)
	mu := nf * (nf + 1) / 4
	sigma2 := nf*(nf+1)*(2*nf+1)/24 - tieCorrection/48
	if sigma2 <= 0 {
		return TestResult{Statistic: wPlus, P: 1, N: n}, nil
	}
	z := (wPlus - mu) / math.Sqrt(sigma2)
	p := 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return TestResult{Statistic: wPlus, P: p, N: n}, nil
}

// RandomizationTest runs Fisher's paired randomisation (sign-flip)
// test: the gold standard for IR system comparison. iters controls
// precision (10k gives ~0.01 resolution); the test is deterministic in
// seed.
func RandomizationTest(a, b []float64, iters int, seed int64) (TestResult, error) {
	if len(a) != len(b) {
		return TestResult{}, fmt.Errorf("eval: randomisation test needs equal lengths (%d vs %d)", len(a), len(b))
	}
	if iters <= 0 {
		iters = 10000
	}
	n := len(a)
	if n == 0 {
		return TestResult{Statistic: 0, P: 1, N: 0}, nil
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = b[i] - a[i]
	}
	observed := math.Abs(meanOf(diffs))
	r := rand.New(rand.NewSource(seed))
	asExtreme := 0
	for it := 0; it < iters; it++ {
		var sum float64
		for _, d := range diffs {
			if r.Intn(2) == 0 {
				sum += d
			} else {
				sum -= d
			}
		}
		if math.Abs(sum/float64(n)) >= observed-1e-15 {
			asExtreme++
		}
	}
	return TestResult{
		Statistic: meanOf(diffs),
		P:         float64(asExtreme+1) / float64(iters+1),
		N:         n,
	}, nil
}

// KendallTau computes the Kendall rank correlation between two score
// vectors (e.g. two system orderings of the same set). Ties count
// neither concordant nor discordant (tau-a over untied pairs).
func KendallTau(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: kendall tau needs equal lengths (%d vs %d)", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("eval: kendall tau needs n >= 2, got %d", n)
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			prod := da * db
			switch {
			case prod > 0:
				concordant++
			case prod < 0:
				discordant++
			}
		}
	}
	total := concordant + discordant
	if total == 0 {
		return 0, nil
	}
	return float64(concordant-discordant) / float64(total), nil
}

func meanOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func varianceOf(xs []float64, mean float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := x - mean
		s += d * d
	}
	return s / float64(len(xs)-1)
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

func sign2(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// normalSF is the standard normal survival function P(Z > z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// studentTSF is the survival function P(T > t) of Student's t with df
// degrees of freedom, via the regularised incomplete beta function.
func studentTSF(t, df float64) float64 {
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularised incomplete beta I_x(a,b) using
// the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a + math.Log(1-x)*b + lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		m2 := 2 * mf
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
