package eval

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TREC interchange formats, so runs and judgements can be exchanged
// with standard tooling (trec_eval and friends):
//
//	run file:   qid Q0 docid rank score tag
//	qrels file: qid 0 docid grade
//
// Query IDs are strings in the files; the synthetic topics use their
// integer IDs formatted in decimal.

// Run holds one system's ranked results for a set of queries.
type Run struct {
	// Tag names the system (the sixth run-file column).
	Tag string
	// Rankings maps query ID -> doc IDs in rank order.
	Rankings map[string][]string
}

// NewRun creates an empty run with the given tag.
func NewRun(tag string) *Run {
	return &Run{Tag: tag, Rankings: make(map[string][]string)}
}

// Add appends a ranking for a query, replacing any previous one.
func (r *Run) Add(queryID string, ranking []string) {
	cp := make([]string, len(ranking))
	copy(cp, ranking)
	r.Rankings[queryID] = cp
}

// QueryIDs returns the run's query IDs, sorted.
func (r *Run) QueryIDs() []string {
	out := make([]string, 0, len(r.Rankings))
	for qid := range r.Rankings {
		out = append(out, qid)
	}
	sort.Strings(out)
	return out
}

// WriteRun emits the run in TREC format. Scores are synthesised from
// ranks (descending) since rank order is what matters downstream.
func WriteRun(w io.Writer, r *Run) error {
	bw := bufio.NewWriter(w)
	for _, qid := range r.QueryIDs() {
		ranking := r.Rankings[qid]
		for rank, doc := range ranking {
			score := float64(len(ranking) - rank)
			if _, err := fmt.Fprintf(bw, "%s Q0 %s %d %g %s\n", qid, doc, rank+1, score, r.Tag); err != nil {
				return fmt.Errorf("eval: write run: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("eval: write run: %w", err)
	}
	return nil
}

// ReadRun parses a TREC run file. Documents are ordered by the rank
// column; ties and gaps in ranks follow file order.
func ReadRun(rd io.Reader) (*Run, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	run := NewRun("")
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 6 {
			return nil, fmt.Errorf("eval: run line %d: want 6 fields, got %d", line, len(fields))
		}
		qid, doc, tag := fields[0], fields[2], fields[5]
		if run.Tag == "" {
			run.Tag = tag
		}
		run.Rankings[qid] = append(run.Rankings[qid], doc)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eval: read run: %w", err)
	}
	return run, nil
}

// QrelSet maps query ID -> judgments.
type QrelSet map[string]Judgments

// WriteQrels emits judgements in TREC qrels format, sorted for
// deterministic bytes.
func WriteQrels(w io.Writer, qs QrelSet) error {
	bw := bufio.NewWriter(w)
	qids := make([]string, 0, len(qs))
	for qid := range qs {
		qids = append(qids, qid)
	}
	sort.Strings(qids)
	for _, qid := range qids {
		judg := qs[qid]
		docs := make([]string, 0, len(judg))
		for doc := range judg {
			docs = append(docs, doc)
		}
		sort.Strings(docs)
		for _, doc := range docs {
			if _, err := fmt.Fprintf(bw, "%s 0 %s %d\n", qid, doc, judg[doc]); err != nil {
				return fmt.Errorf("eval: write qrels: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("eval: write qrels: %w", err)
	}
	return nil
}

// ReadQrels parses a TREC qrels file.
func ReadQrels(rd io.Reader) (QrelSet, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	qs := QrelSet{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("eval: qrels line %d: want 4 fields, got %d", line, len(fields))
		}
		grade, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("eval: qrels line %d: bad grade %q", line, fields[3])
		}
		qid, doc := fields[0], fields[2]
		if qs[qid] == nil {
			qs[qid] = Judgments{}
		}
		qs[qid][doc] = grade
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eval: read qrels: %w", err)
	}
	return qs, nil
}

// EvaluateRun scores a run against a qrel set: per-query metrics plus
// the mean, skipping queries without judgements (their IDs are
// returned in skipped).
func EvaluateRun(run *Run, qs QrelSet) (perQuery map[string]Metrics, mean Metrics, skipped []string) {
	perQuery = make(map[string]Metrics)
	var ms []Metrics
	for _, qid := range run.QueryIDs() {
		judg, ok := qs[qid]
		if !ok || len(judg) == 0 {
			skipped = append(skipped, qid)
			continue
		}
		m := Compute(run.Rankings[qid], judg)
		perQuery[qid] = m
		ms = append(ms, m)
	}
	return perQuery, Mean(ms), skipped
}
