// Package ilog defines the interaction-log substrate: the event
// vocabulary interfaces emit, a JSONL log format with reader/writer,
// and the log analytics used to study which interface features are
// implicit indicators of relevance — the paper's central methodology
// ("to monitor the users' interactions and to analyse the resulting
// logfiles").
package ilog

import (
	"fmt"
	"time"
)

// Action is one kind of user interaction with a retrieval interface.
// The implicit set mirrors the indicator catalogue the paper takes
// from Hopfgartner & Jose's interface survey; ActionRate is the
// explicit channel (the TV remote's relevance keys).
type Action string

// The action vocabulary.
const (
	// ActionQuery: the user issued a text query.
	ActionQuery Action = "query"
	// ActionBrowse: the user browsed/paged through a result list.
	ActionBrowse Action = "browse"
	// ActionClickKeyframe: the user clicked a result keyframe to start
	// playback — the strongest implicit indicator candidate.
	ActionClickKeyframe Action = "click_keyframe"
	// ActionPlay: the user played a shot; Seconds records for how long.
	ActionPlay Action = "play"
	// ActionSlide: the user scrubbed/slid through a video's timeline.
	ActionSlide Action = "slide"
	// ActionHighlight: the user highlighted/expanded additional
	// metadata of a result entry.
	ActionHighlight Action = "highlight"
	// ActionRate: explicit relevance feedback; Value is +1/-1.
	ActionRate Action = "rate"
)

// Actions lists the full vocabulary in a fixed order.
func Actions() []Action {
	return []Action{
		ActionQuery, ActionBrowse, ActionClickKeyframe,
		ActionPlay, ActionSlide, ActionHighlight, ActionRate,
	}
}

// ImplicitActions lists the shot-directed implicit indicators (the
// subject of RQ1).
func ImplicitActions() []Action {
	return []Action{
		ActionBrowse, ActionClickKeyframe, ActionPlay,
		ActionSlide, ActionHighlight,
	}
}

// Valid reports whether a is part of the vocabulary.
func (a Action) Valid() bool {
	switch a {
	case ActionQuery, ActionBrowse, ActionClickKeyframe, ActionPlay,
		ActionSlide, ActionHighlight, ActionRate:
		return true
	}
	return false
}

// Event is one logged interaction. JSON field names form the stable
// log schema.
type Event struct {
	// Time of the interaction.
	Time time.Time `json:"t"`
	// SessionID groups the events of one search session.
	SessionID string `json:"session"`
	// UserID identifies the (simulated) user.
	UserID string `json:"user"`
	// Interface is the environment name ("desktop", "tv").
	Interface string `json:"iface"`
	// TopicID is the evaluation topic of the session (-1 outside
	// evaluations).
	TopicID int `json:"topic"`
	// Step is the session iteration (query cycle) the event belongs to.
	Step int `json:"step"`
	// Action is the interaction kind.
	Action Action `json:"action"`
	// Query carries the query string for ActionQuery events.
	Query string `json:"query,omitempty"`
	// ShotID is the target shot for shot-directed actions.
	ShotID string `json:"shot,omitempty"`
	// Rank is the zero-based result-list rank of the target when the
	// action occurred (-1 when not applicable).
	Rank int `json:"rank"`
	// Seconds is the duration for ActionPlay (how long the user
	// watched) and ActionSlide (scrub span).
	Seconds float64 `json:"seconds,omitempty"`
	// Value is the explicit rating for ActionRate: +1 or -1.
	Value int `json:"value,omitempty"`
}

// Validate checks schema invariants.
func (e *Event) Validate() error {
	if !e.Action.Valid() {
		return fmt.Errorf("ilog: unknown action %q", e.Action)
	}
	if e.SessionID == "" {
		return fmt.Errorf("ilog: event without session id")
	}
	switch e.Action {
	case ActionQuery:
		if e.Query == "" {
			return fmt.Errorf("ilog: query event without query text")
		}
	case ActionRate:
		if e.Value != 1 && e.Value != -1 {
			return fmt.Errorf("ilog: rate event with value %d (want ±1)", e.Value)
		}
		if e.ShotID == "" {
			return fmt.Errorf("ilog: rate event without shot id")
		}
	case ActionClickKeyframe, ActionPlay, ActionSlide, ActionHighlight:
		if e.ShotID == "" {
			return fmt.Errorf("ilog: %s event without shot id", e.Action)
		}
		if e.Seconds < 0 {
			return fmt.Errorf("ilog: %s event with negative seconds", e.Action)
		}
	}
	return nil
}
