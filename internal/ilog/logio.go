package ilog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Writer streams events to an io.Writer as JSON Lines. It buffers;
// call Flush (or Close on the convenience FileWriter) when done.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write validates and appends one event.
func (w *Writer) Write(e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if err := w.enc.Encode(&e); err != nil {
		return fmt.Errorf("ilog: encode: %w", err)
	}
	w.n++
	return nil
}

// WriteAll appends a batch, stopping at the first invalid event.
func (w *Writer) WriteAll(events []Event) error {
	for i, e := range events {
		if err := w.Write(e); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Count reports how many events have been written.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Read parses a JSONL event stream, validating every event.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("ilog: line %d: %w", line, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("ilog: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ilog: read: %w", err)
	}
	return out, nil
}

// SaveFile writes events to path (atomically via temp file + rename).
func SaveFile(path string, events []Event) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ivrlog-*")
	if err != nil {
		return fmt.Errorf("ilog: save: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := NewWriter(tmp)
	if err := w.WriteAll(events); err != nil {
		tmp.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("ilog: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ilog: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ilog: save: %w", err)
	}
	return nil
}

// LoadFile reads an event log from disk.
func LoadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ilog: load: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// BySession groups events by session ID; within each group the
// original order is preserved. Group keys are returned sorted for
// deterministic iteration.
func BySession(events []Event) (keys []string, groups map[string][]Event) {
	groups = make(map[string][]Event)
	for _, e := range events {
		groups[e.SessionID] = append(groups[e.SessionID], e)
	}
	keys = make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, groups
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
