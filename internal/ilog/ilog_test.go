package ilog

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func evt(session string, step int, action Action, shot string, mutate ...func(*Event)) Event {
	e := Event{
		Time:      time.Date(2007, 11, 5, 13, 0, 0, 0, time.UTC),
		SessionID: session,
		UserID:    "u1",
		Interface: "desktop",
		TopicID:   3,
		Step:      step,
		Action:    action,
		ShotID:    shot,
		Rank:      2,
	}
	if action == ActionQuery {
		e.Query = "budget vote"
		e.ShotID = ""
	}
	if action == ActionRate {
		e.Value = 1
	}
	for _, m := range mutate {
		m(&e)
	}
	return e
}

func TestEventValidate(t *testing.T) {
	good := []Event{
		evt("s1", 0, ActionQuery, ""),
		evt("s1", 0, ActionClickKeyframe, "sh1"),
		evt("s1", 0, ActionPlay, "sh1", func(e *Event) { e.Seconds = 12 }),
		evt("s1", 0, ActionRate, "sh1"),
		evt("s1", 0, ActionBrowse, ""),
	}
	for i, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("good event %d rejected: %v", i, err)
		}
	}
	bad := []Event{
		evt("s1", 0, Action("bogus"), "sh1"),
		evt("", 0, ActionQuery, ""),
		evt("s1", 0, ActionQuery, "", func(e *Event) { e.Query = "" }),
		evt("s1", 0, ActionRate, "sh1", func(e *Event) { e.Value = 3 }),
		evt("s1", 0, ActionRate, "", func(e *Event) { e.ShotID = "" }),
		evt("s1", 0, ActionPlay, ""),
		evt("s1", 0, ActionPlay, "sh1", func(e *Event) { e.Seconds = -4 }),
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad event %d accepted", i)
		}
	}
}

func TestActionsVocabulary(t *testing.T) {
	for _, a := range Actions() {
		if !a.Valid() {
			t.Errorf("listed action %q not valid", a)
		}
	}
	for _, a := range ImplicitActions() {
		if a == ActionQuery || a == ActionRate {
			t.Errorf("implicit set contains %q", a)
		}
	}
	if Action("nope").Valid() {
		t.Error("invalid action passes Valid")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	events := []Event{
		evt("s1", 0, ActionQuery, ""),
		evt("s1", 0, ActionClickKeyframe, "sh1"),
		evt("s1", 1, ActionPlay, "sh1", func(e *Event) { e.Seconds = 8.5 }),
		evt("s2", 0, ActionRate, "sh9", func(e *Event) { e.Value = -1; e.Interface = "tv" }),
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(events); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(events) {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Event{}); err == nil {
		t.Error("invalid event written")
	}
	err := w.WriteAll([]Event{evt("s", 0, ActionQuery, ""), {}})
	if err == nil || !strings.Contains(err.Error(), "event 1") {
		t.Errorf("WriteAll error = %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := Read(strings.NewReader(`{"action":"bogus","session":"s"}` + "\n")); err == nil {
		t.Error("invalid event accepted")
	}
	got, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank lines: %v %v", got, err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	events := []Event{evt("s1", 0, ActionQuery, ""), evt("s1", 0, ActionBrowse, "")}
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := SaveFile(path, events); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("loaded %d events", len(got))
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBySession(t *testing.T) {
	events := []Event{
		evt("s2", 0, ActionQuery, ""),
		evt("s1", 0, ActionQuery, ""),
		evt("s2", 1, ActionBrowse, ""),
	}
	keys, groups := BySession(events)
	if !reflect.DeepEqual(keys, []string{"s1", "s2"}) {
		t.Errorf("keys = %v", keys)
	}
	if len(groups["s2"]) != 2 || groups["s2"][1].Action != ActionBrowse {
		t.Errorf("s2 group = %+v", groups["s2"])
	}
}

func oracleRelOdd(topic int, shot string) bool {
	// shots named sh<odd> are relevant
	return len(shot) > 2 && (shot[len(shot)-1]-'0')%2 == 1
}

func TestAnalyzeIndicators(t *testing.T) {
	events := []Event{
		evt("s1", 0, ActionClickKeyframe, "sh1"), // relevant
		evt("s1", 0, ActionClickKeyframe, "sh3"), // relevant
		evt("s1", 0, ActionClickKeyframe, "sh2"), // not
		evt("s1", 0, ActionHighlight, "sh2"),     // not
		evt("s1", 0, ActionPlay, "sh1", func(e *Event) { e.Seconds = 10 }),
		evt("s1", 0, ActionPlay, "sh2", func(e *Event) { e.Seconds = 2 }),
	}
	stats := AnalyzeIndicators(events, oracleRelOdd)
	byAction := map[Action]IndicatorStats{}
	for _, s := range stats {
		byAction[s.Action] = s
	}
	click := byAction[ActionClickKeyframe]
	if click.Count != 3 || click.OnRelevant != 2 {
		t.Errorf("click stats = %+v", click)
	}
	if click.Precision < 0.66 || click.Precision > 0.67 {
		t.Errorf("click precision = %v", click.Precision)
	}
	play := byAction[ActionPlay]
	if play.MeanSeconds != 6 {
		t.Errorf("play mean seconds = %v", play.MeanSeconds)
	}
	hl := byAction[ActionHighlight]
	if hl.Precision != 0 {
		t.Errorf("highlight precision = %v", hl.Precision)
	}
	// Sorted by precision descending.
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Precision < stats[i].Precision {
			t.Error("indicator stats not sorted")
		}
	}
}

func TestAnalyzeIndicatorsNilOracle(t *testing.T) {
	events := []Event{evt("s1", 0, ActionClickKeyframe, "sh1")}
	stats := AnalyzeIndicators(events, nil)
	if len(stats) != 1 || stats[0].OnRelevant != 0 {
		t.Errorf("nil oracle stats = %+v", stats)
	}
}

func TestAnalyzeSessions(t *testing.T) {
	events := []Event{
		evt("s1", 0, ActionQuery, ""),
		evt("s1", 0, ActionClickKeyframe, "sh1"),
		evt("s1", 1, ActionPlay, "sh1", func(e *Event) { e.Seconds = 7 }),
		evt("s1", 1, ActionRate, "sh1"),
		evt("s2", 0, ActionQuery, "", func(e *Event) { e.Interface = "tv" }),
	}
	stats := AnalyzeSessions(events)
	if len(stats) != 2 {
		t.Fatalf("got %d sessions", len(stats))
	}
	s1 := stats[0]
	if s1.SessionID != "s1" || s1.Queries != 1 || s1.ImplicitEvents != 2 || s1.ExplicitEvents != 1 {
		t.Errorf("s1 stats = %+v", s1)
	}
	if s1.PlaySeconds != 7 || s1.Steps != 2 || s1.TotalEvents != 4 {
		t.Errorf("s1 stats = %+v", s1)
	}
	imp, exp, q := MeanEventsPerSession(stats)
	if imp != 1 || exp != 0.5 || q != 1 {
		t.Errorf("means = %v %v %v", imp, exp, q)
	}
	i0, e0, q0 := MeanEventsPerSession(nil)
	if i0 != 0 || e0 != 0 || q0 != 0 {
		t.Error("empty means nonzero")
	}
}

func TestDwellAnalysis(t *testing.T) {
	events := []Event{
		evt("s1", 0, ActionPlay, "sh1", func(e *Event) { e.Seconds = 2 }),  // rel, short
		evt("s1", 0, ActionPlay, "sh2", func(e *Event) { e.Seconds = 3 }),  // not, short
		evt("s1", 0, ActionPlay, "sh3", func(e *Event) { e.Seconds = 20 }), // rel, long
		evt("s1", 0, ActionClickKeyframe, "sh1"),                           // ignored
	}
	buckets, err := DwellAnalysis(events, oracleRelOdd, []float64{0, 10, 60})
	if err != nil {
		t.Fatal(err)
	}
	if buckets[0].Count != 2 || buckets[0].OnRelevant != 1 {
		t.Errorf("bucket0 = %+v", buckets[0])
	}
	if buckets[1].Count != 1 || buckets[1].Precision != 1 {
		t.Errorf("bucket1 = %+v", buckets[1])
	}
	if _, err := DwellAnalysis(events, oracleRelOdd, []float64{5}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := DwellAnalysis(events, oracleRelOdd, []float64{5, 5}); err == nil {
		t.Error("non-increasing edges accepted")
	}
}

func BenchmarkWriteRead(b *testing.B) {
	events := make([]Event, 500)
	for i := range events {
		events[i] = evt("s1", i/10, ActionClickKeyframe, "sh1")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteAll(events); err != nil {
			b.Fatal(err)
		}
		w.Flush()
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
