package ilog

import (
	"fmt"
	"sort"
)

// IndicatorStats summarises how well one action type predicted
// relevance in a log: of all events of this action, how many targeted
// a truly relevant shot. This per-indicator precision is the paper's
// RQ1 quantity ("which implicit feedback ... can be considered as a
// positive indicator of relevance").
type IndicatorStats struct {
	Action     Action
	Count      int
	OnRelevant int
	// Precision = OnRelevant / Count.
	Precision float64
	// MeanSeconds is the mean Seconds over the action's events (play
	// durations, slide spans); zero when not applicable.
	MeanSeconds float64
	// MeanRank is the mean result rank at which the action occurred.
	MeanRank float64
}

// RelevanceOracle answers whether a shot is relevant to a topic; the
// experiment harness backs it with the synthetic qrels.
type RelevanceOracle func(topicID int, shotID string) bool

// AnalyzeIndicators computes per-action statistics over a log. Events
// without a shot target (queries) are skipped. Results are ordered by
// descending precision then action name, matching the paper-style
// "which indicators are strongest" table.
func AnalyzeIndicators(events []Event, oracle RelevanceOracle) []IndicatorStats {
	type agg struct {
		count, rel int
		seconds    float64
		rankSum    float64
	}
	aggs := map[Action]*agg{}
	for _, e := range events {
		if e.ShotID == "" {
			continue
		}
		a := aggs[e.Action]
		if a == nil {
			a = &agg{}
			aggs[e.Action] = a
		}
		a.count++
		if oracle != nil && oracle(e.TopicID, e.ShotID) {
			a.rel++
		}
		a.seconds += e.Seconds
		a.rankSum += float64(e.Rank)
	}
	out := make([]IndicatorStats, 0, len(aggs))
	for action, a := range aggs {
		st := IndicatorStats{Action: action, Count: a.count, OnRelevant: a.rel}
		if a.count > 0 {
			st.Precision = float64(a.rel) / float64(a.count)
			st.MeanSeconds = a.seconds / float64(a.count)
			st.MeanRank = a.rankSum / float64(a.count)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Precision != out[j].Precision {
			return out[i].Precision > out[j].Precision
		}
		return out[i].Action < out[j].Action
	})
	return out
}

// SessionStats summarises one session's interaction volume: the
// quantity axis on which the paper contrasts desktop and TV.
type SessionStats struct {
	SessionID      string
	UserID         string
	Interface      string
	TopicID        int
	Queries        int
	ImplicitEvents int
	ExplicitEvents int
	TotalEvents    int
	PlaySeconds    float64
	Steps          int
}

// AnalyzeSessions computes per-session interaction statistics, keyed
// and ordered by session ID.
func AnalyzeSessions(events []Event) []SessionStats {
	keys, groups := BySession(events)
	out := make([]SessionStats, 0, len(keys))
	for _, k := range keys {
		st := SessionStats{SessionID: k, TopicID: -1}
		maxStep := -1
		for _, e := range groups[k] {
			st.UserID = e.UserID
			st.Interface = e.Interface
			st.TopicID = e.TopicID
			st.TotalEvents++
			switch e.Action {
			case ActionQuery:
				st.Queries++
			case ActionRate:
				st.ExplicitEvents++
			default:
				st.ImplicitEvents++
			}
			if e.Action == ActionPlay {
				st.PlaySeconds += e.Seconds
			}
			if e.Step > maxStep {
				maxStep = e.Step
			}
		}
		st.Steps = maxStep + 1
		out = append(out, st)
	}
	return out
}

// MeanEventsPerSession averages interaction volumes over sessions,
// returning (implicit, explicit, queries) means. Empty input is all
// zeros.
func MeanEventsPerSession(stats []SessionStats) (implicit, explicit, queries float64) {
	if len(stats) == 0 {
		return 0, 0, 0
	}
	for _, s := range stats {
		implicit += float64(s.ImplicitEvents)
		explicit += float64(s.ExplicitEvents)
		queries += float64(s.Queries)
	}
	n := float64(len(stats))
	return implicit / n, explicit / n, queries / n
}

// DwellBucket aggregates play events whose duration falls in
// [Lo, Hi) seconds.
type DwellBucket struct {
	Lo, Hi     float64
	Count      int
	OnRelevant int
	Precision  float64
}

// DwellAnalysis buckets play durations and measures, per bucket, how
// often long-enough dwells indicate relevance — the Kelly & Belkin
// question (F6).
func DwellAnalysis(events []Event, oracle RelevanceOracle, edges []float64) ([]DwellBucket, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("ilog: dwell analysis needs >= 2 bucket edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("ilog: bucket edges must increase")
		}
	}
	buckets := make([]DwellBucket, len(edges)-1)
	for i := range buckets {
		buckets[i] = DwellBucket{Lo: edges[i], Hi: edges[i+1]}
	}
	for _, e := range events {
		if e.Action != ActionPlay {
			continue
		}
		for i := range buckets {
			if e.Seconds >= buckets[i].Lo && e.Seconds < buckets[i].Hi {
				buckets[i].Count++
				if oracle != nil && oracle(e.TopicID, e.ShotID) {
					buckets[i].OnRelevant++
				}
				break
			}
		}
	}
	for i := range buckets {
		if buckets[i].Count > 0 {
			buckets[i].Precision = float64(buckets[i].OnRelevant) / float64(buckets[i].Count)
		}
	}
	return buckets, nil
}
