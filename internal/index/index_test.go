package index

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildSmall indexes four documents with known statistics.
func buildSmall(t *testing.T) *Index {
	t.Helper()
	b := NewBuilder()
	docs := []struct {
		ext      string
		text     []string
		concepts []string
	}{
		{"d0", []string{"goal", "match", "goal"}, []string{"stadium"}},
		{"d1", []string{"match", "referee"}, []string{"stadium", "crowd"}},
		{"d2", []string{"budget", "vote", "vote", "vote"}, nil},
		{"d3", []string{"goal"}, []string{"crowd"}},
	}
	for _, d := range docs {
		doc := NewDocument(d.ext).AddTerms(FieldText, d.text...)
		doc.AddTerms(FieldConcept, d.concepts...)
		if err := b.AddDocument(doc); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBasicStats(t *testing.T) {
	ix := buildSmall(t)
	if ix.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if df := ix.DocFreq(FieldText, "goal"); df != 2 {
		t.Errorf("df(goal) = %d, want 2", df)
	}
	if cf := ix.CollectionFreq(FieldText, "goal"); cf != 3 {
		t.Errorf("cf(goal) = %d, want 3", cf)
	}
	if df := ix.DocFreq(FieldText, "missing"); df != 0 {
		t.Errorf("df(missing) = %d", df)
	}
	if got := ix.DocLen(FieldText, 2); got != 4 {
		t.Errorf("DocLen(d2) = %d, want 4", got)
	}
	if got := ix.AvgDocLen(FieldText); got != (3+2+4+1)/4.0 {
		t.Errorf("AvgDocLen = %v", got)
	}
	if got := ix.TotalFieldLen(FieldConcept); got != 4 {
		t.Errorf("TotalFieldLen(concept) = %d, want 4", got)
	}
	if n := ix.NumTerms(FieldText); n != 5 {
		t.Errorf("NumTerms = %d, want 5", n)
	}
}

func TestExternalIDMapping(t *testing.T) {
	ix := buildSmall(t)
	for i := 0; i < ix.NumDocs(); i++ {
		ext := ix.ExternalID(DocID(i))
		id, ok := ix.DocIDOf(ext)
		if !ok || id != DocID(i) {
			t.Errorf("round trip %d -> %q -> %d (%v)", i, ext, id, ok)
		}
	}
	if _, ok := ix.DocIDOf("nope"); ok {
		t.Error("DocIDOf(nope) should miss")
	}
}

func TestPostingsIteration(t *testing.T) {
	ix := buildSmall(t)
	it := ix.Postings(FieldText, "goal")
	type pair struct {
		d  DocID
		tf int
	}
	var got []pair
	for it.Next() {
		got = append(got, pair{it.Doc(), it.TF()})
	}
	want := []pair{{0, 2}, {3, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("postings = %v, want %v", got, want)
	}
	if it.Next() {
		t.Error("Next after exhaustion should stay false")
	}
	// Missing term yields empty iterator, not nil.
	it = ix.Postings(FieldText, "absent")
	if it == nil || it.Next() {
		t.Error("missing term should give exhausted iterator")
	}
}

func TestPostingsRemaining(t *testing.T) {
	ix := buildSmall(t)
	it := ix.Postings(FieldText, "match")
	if it.Remaining() != 2 {
		t.Errorf("Remaining = %d, want 2", it.Remaining())
	}
	it.Next()
	if it.Remaining() != 1 {
		t.Errorf("Remaining after one Next = %d, want 1", it.Remaining())
	}
}

func TestTermsSorted(t *testing.T) {
	ix := buildSmall(t)
	terms := ix.Terms(FieldText)
	for i := 1; i < len(terms); i++ {
		if terms[i-1] >= terms[i] {
			t.Fatalf("terms not sorted: %v", terms)
		}
	}
	// Mutating the returned slice must not affect the index.
	terms[0] = "zzz"
	if ix.Terms(FieldText)[0] == "zzz" {
		t.Error("Terms returned shared storage")
	}
}

func TestEachTerm(t *testing.T) {
	ix := buildSmall(t)
	var terms []string
	ix.EachTerm(FieldText, func(term string, df int, cf int64) bool {
		terms = append(terms, term)
		if df != ix.DocFreq(FieldText, term) {
			t.Errorf("EachTerm df(%q)=%d, DocFreq says %d", term, df, ix.DocFreq(FieldText, term))
		}
		if cf != ix.CollectionFreq(FieldText, term) {
			t.Errorf("EachTerm cf(%q)=%d, CollectionFreq says %d", term, cf, ix.CollectionFreq(FieldText, term))
		}
		return true
	})
	if len(terms) != ix.NumTerms(FieldText) {
		t.Errorf("EachTerm visited %d terms, vocabulary has %d", len(terms), ix.NumTerms(FieldText))
	}
	for i := 1; i < len(terms); i++ {
		if terms[i-1] >= terms[i] {
			t.Fatalf("EachTerm order not sorted: %v", terms)
		}
	}
	// Early stop.
	n := 0
	ix.EachTerm(FieldText, func(string, int, int64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("EachTerm ignored early stop (visited %d)", n)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	if err := b.AddDocument(NewDocument("")); err == nil {
		t.Error("empty ext id accepted")
	}
	if err := b.AddDocument(NewDocument("x").AddTerms(FieldText, "a")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(NewDocument("x")); err == nil {
		t.Error("duplicate ext id accepted")
	}
	b.Build()
	if err := b.AddDocument(NewDocument("y")); err == nil {
		t.Error("AddDocument after Build accepted")
	}
}

func TestSetTermCount(t *testing.T) {
	b := NewBuilder()
	doc := NewDocument("d").SetTermCount(FieldConcept, "crowd", 7)
	doc.SetTermCount(FieldConcept, "flag", 3)
	doc.SetTermCount(FieldConcept, "flag", 0) // removal
	if err := b.AddDocument(doc); err != nil {
		t.Fatal(err)
	}
	ix := b.Build()
	it := ix.Postings(FieldConcept, "crowd")
	if !it.Next() || it.TF() != 7 {
		t.Error("SetTermCount weight not preserved")
	}
	if ix.DocFreq(FieldConcept, "flag") != 0 {
		t.Error("zeroed term still indexed")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := NewBuilder().Build()
	if ix.NumDocs() != 0 || ix.AvgDocLen(FieldText) != 0 {
		t.Error("empty index stats wrong")
	}
	if it := ix.Postings(FieldText, "x"); it.Next() {
		t.Error("empty index has postings")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	ix := buildSmall(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, got)
}

func TestSaveLoad(t *testing.T) {
	ix := buildSmall(t)
	path := filepath.Join(t.TempDir(), "test.ivridx")
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexesEqual(t, ix, got)
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.ivridx")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not an index at all")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("garbage accepted: %v", err)
	}
	if _, err := Read(strings.NewReader("")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("empty accepted: %v", err)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	ix := buildSmall(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a payload byte: checksum must catch it.
	corrupt := make([]byte, len(raw))
	copy(corrupt, raw)
	corrupt[len(magic)+3] ^= 0xFF
	if _, err := Read(bytes.NewReader(corrupt)); !errors.Is(err, ErrChecksum) {
		t.Errorf("corruption err = %v, want ErrChecksum", err)
	}
	// Truncation.
	if _, err := Read(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated file accepted")
	}
	// Wrong magic.
	wrong := make([]byte, len(raw))
	copy(wrong, raw)
	wrong[0] = 'X'
	if _, err := Read(bytes.NewReader(wrong)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("wrong magic err = %v, want ErrBadFormat", err)
	}
}

func assertIndexesEqual(t *testing.T, want, got *Index) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() {
		t.Fatalf("NumDocs %d != %d", got.NumDocs(), want.NumDocs())
	}
	for i := 0; i < want.NumDocs(); i++ {
		if got.ExternalID(DocID(i)) != want.ExternalID(DocID(i)) {
			t.Fatalf("extID[%d] differs", i)
		}
	}
	for f := Field(0); f < numFields; f++ {
		if !reflect.DeepEqual(got.Terms(f), want.Terms(f)) {
			t.Fatalf("field %v terms differ", f)
		}
		if got.AvgDocLen(f) != want.AvgDocLen(f) {
			t.Fatalf("field %v avgdl differs", f)
		}
		for _, term := range want.Terms(f) {
			if got.DocFreq(f, term) != want.DocFreq(f, term) {
				t.Fatalf("df(%v,%q) differs", f, term)
			}
			if got.CollectionFreq(f, term) != want.CollectionFreq(f, term) {
				t.Fatalf("cf(%v,%q) differs", f, term)
			}
			wi, gi := want.Postings(f, term), got.Postings(f, term)
			for wi.Next() {
				if !gi.Next() || gi.Doc() != wi.Doc() || gi.TF() != wi.TF() {
					t.Fatalf("postings(%v,%q) differ", f, term)
				}
			}
			if gi.Next() {
				t.Fatalf("postings(%v,%q): extra entries", f, term)
			}
		}
	}
}

// randomIndex builds an index over a random corpus, returning the
// ground-truth per-doc counts for verification.
func randomIndex(r *rand.Rand, nDocs, vocab int) (*Index, []map[string]int) {
	b := NewBuilder()
	truth := make([]map[string]int, nDocs)
	for i := 0; i < nDocs; i++ {
		counts := map[string]int{}
		nTerms := r.Intn(30)
		doc := NewDocument(fmt.Sprintf("doc-%d", i))
		for j := 0; j < nTerms; j++ {
			term := fmt.Sprintf("t%03d", r.Intn(vocab))
			counts[term]++
			doc.AddTerms(FieldText, term)
		}
		truth[i] = counts
		if err := b.AddDocument(doc); err != nil {
			panic(err)
		}
	}
	return b.Build(), truth
}

// Property: for random corpora, iterating every term's postings
// reconstructs exactly the ingested term counts.
func TestPropertyPostingsReconstructCorpus(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix, truth := randomIndex(r, 1+r.Intn(50), 40)
		recon := make([]map[string]int, ix.NumDocs())
		for i := range recon {
			recon[i] = map[string]int{}
		}
		for _, term := range ix.Terms(FieldText) {
			it := ix.Postings(FieldText, term)
			for it.Next() {
				recon[it.Doc()][term] += it.TF()
			}
		}
		for i := range truth {
			if len(truth[i]) == 0 && len(recon[i]) == 0 {
				continue
			}
			if !reflect.DeepEqual(truth[i], recon[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: serialisation round-trips random indexes exactly.
func TestPropertyPersistRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix, _ := randomIndex(r, 1+r.Intn(30), 25)
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumDocs() != ix.NumDocs() {
			return false
		}
		for _, term := range ix.Terms(FieldText) {
			a, b := ix.Postings(FieldText, term), got.Postings(FieldText, term)
			for a.Next() {
				if !b.Next() || a.Doc() != b.Doc() || a.TF() != b.TF() {
					return false
				}
			}
			if b.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: postings doc ids are strictly increasing within a term.
func TestPropertyPostingsSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix, _ := randomIndex(r, 1+r.Intn(60), 15)
		for f := Field(0); f < numFields; f++ {
			for _, term := range ix.Terms(f) {
				it := ix.Postings(f, term)
				last := -1
				for it.Next() {
					if int(it.Doc()) <= last {
						return false
					}
					if it.TF() <= 0 {
						return false
					}
					last = int(it.Doc())
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestFieldString(t *testing.T) {
	if FieldText.String() != "text" || FieldConcept.String() != "concept" {
		t.Error("field names wrong")
	}
	if !strings.Contains(Field(9).String(), "9") {
		t.Error("unknown field String")
	}
}

func BenchmarkBuild1k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	type doc struct {
		ext   string
		terms []string
	}
	docs := make([]doc, 1000)
	for i := range docs {
		n := 20 + r.Intn(50)
		terms := make([]string, n)
		for j := range terms {
			terms[j] = fmt.Sprintf("t%04d", r.Intn(2000))
		}
		docs[i] = doc{ext: fmt.Sprintf("d%d", i), terms: terms}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder()
		for _, d := range docs {
			if err := bld.AddDocument(NewDocument(d.ext).AddTerms(FieldText, d.terms...)); err != nil {
				b.Fatal(err)
			}
		}
		bld.Build()
	}
}

func BenchmarkPostingsScan(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	ix, _ := randomIndex(r, 5000, 100)
	terms := ix.Terms(FieldText)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := ix.Postings(FieldText, terms[i%len(terms)])
		for it.Next() {
		}
	}
}
