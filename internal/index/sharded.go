package index

import "fmt"

// Sharded is an inverted index split into N self-contained segments.
// Each segment is a complete *Index over a disjoint subset of the
// documents — its own dictionary, postings blob and length statistics
// — so segments can be scored independently (and in parallel) by the
// search layer. Collection-wide statistics (document count, document
// frequencies, field lengths) are aggregated across segments, which is
// what keeps sharded scoring numerically identical to scoring one
// monolithic index.
//
// Documents are assigned to segments round-robin in insertion order
// (ShardedBuilder enforces this), so the global DocID of the j-th
// document of segment i is j*NumSegments+i: exactly the document's
// insertion position. A Sharded index built from the same document
// stream as a single Index therefore agrees with it on every global
// DocID and external ID.
//
// Like Index, a Sharded is immutable once built and safe for
// concurrent use.
type Sharded struct {
	segs    []*Index
	numDocs int
}

// NewSharded assembles segments produced by a round-robin split of one
// document stream. It validates the round-robin size invariant
// (|seg i| = ceil/floor of total/N depending on i) and external-ID
// uniqueness across segments, because the global DocID arithmetic and
// reverse lookups depend on both.
func NewSharded(segs []*Index) (*Sharded, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("index: sharded index needs at least one segment")
	}
	total := 0
	for _, seg := range segs {
		if seg == nil {
			return nil, fmt.Errorf("index: nil segment")
		}
		total += seg.NumDocs()
	}
	n := len(segs)
	for i, seg := range segs {
		want := total / n
		if i < total%n {
			want++
		}
		if seg.NumDocs() != want {
			return nil, fmt.Errorf("index: segment %d holds %d docs, round-robin split of %d over %d expects %d",
				i, seg.NumDocs(), total, n, want)
		}
	}
	seen := make(map[string]bool, total)
	for i, seg := range segs {
		for d := 0; d < seg.NumDocs(); d++ {
			ext := seg.ExternalID(DocID(d))
			if seen[ext] {
				return nil, fmt.Errorf("index: external id %q appears in more than one segment (segment %d)", ext, i)
			}
			seen[ext] = true
		}
	}
	return &Sharded{segs: segs, numDocs: total}, nil
}

// NumSegments returns the segment count.
func (s *Sharded) NumSegments() int { return len(s.segs) }

// Segment returns segment i (read-only use).
func (s *Sharded) Segment(i int) *Index { return s.segs[i] }

// NumDocs returns the total document count across segments.
func (s *Sharded) NumDocs() int { return s.numDocs }

// GlobalID converts a segment-local DocID to the global (insertion
// order) DocID.
func (s *Sharded) GlobalID(segment int, local DocID) DocID {
	return local*DocID(len(s.segs)) + DocID(segment)
}

// ExternalID maps a global DocID back to the caller's identifier. It
// panics if d is out of range (programmer error), matching Index.
func (s *Sharded) ExternalID(d DocID) string {
	n := DocID(len(s.segs))
	return s.segs[d%n].ExternalID(d / n)
}

// DocIDOf maps an external identifier to its global DocID.
func (s *Sharded) DocIDOf(ext string) (DocID, bool) {
	for i, seg := range s.segs {
		if local, ok := seg.DocIDOf(ext); ok {
			return s.GlobalID(i, local), true
		}
	}
	return 0, false
}

// DocLen returns the token count of the document with global DocID d
// in field f.
func (s *Sharded) DocLen(f Field, d DocID) int {
	n := DocID(len(s.segs))
	return s.segs[d%n].DocLen(f, d/n)
}

// AvgDocLen returns the collection-wide mean token count of field f.
func (s *Sharded) AvgDocLen(f Field) float64 {
	if s.numDocs == 0 {
		return 0
	}
	return float64(s.TotalFieldLen(f)) / float64(s.numDocs)
}

// TotalFieldLen returns the total token count of field f across all
// segments.
func (s *Sharded) TotalFieldLen(f Field) int64 {
	var total int64
	for _, seg := range s.segs {
		total += seg.TotalFieldLen(f)
	}
	return total
}

// DocFreq returns the collection-wide document frequency of term in
// field f.
func (s *Sharded) DocFreq(f Field, term string) int {
	df := 0
	for _, seg := range s.segs {
		df += seg.DocFreq(f, term)
	}
	return df
}

// CollectionFreq returns the collection-wide occurrence count of term
// in field f.
func (s *Sharded) CollectionFreq(f Field, term string) int64 {
	var cf int64
	for _, seg := range s.segs {
		cf += seg.CollectionFreq(f, term)
	}
	return cf
}
