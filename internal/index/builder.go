package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Document is the unit handed to the Builder: an external identifier
// plus per-field term counts. Construct with NewDocument and the Add*
// methods; a Document may be reused after AddDocument returns because
// the builder copies what it needs.
type Document struct {
	ext    string
	counts [numFields]map[string]int
}

// NewDocument starts an empty document with the given external ID.
func NewDocument(ext string) *Document {
	return &Document{ext: ext}
}

// AddTerms increments the count of each given term by one in field f.
func (d *Document) AddTerms(f Field, terms ...string) *Document {
	if d.counts[f] == nil {
		d.counts[f] = make(map[string]int)
	}
	for _, t := range terms {
		d.counts[f][t]++
	}
	return d
}

// SetTermCount sets an explicit term count (used e.g. to encode
// detector confidence as a weight). Counts <= 0 remove the term.
func (d *Document) SetTermCount(f Field, term string, n int) *Document {
	if d.counts[f] == nil {
		d.counts[f] = make(map[string]int)
	}
	if n <= 0 {
		delete(d.counts[f], term)
		return d
	}
	d.counts[f][term] = n
	return d
}

// Len returns the total token count of field f.
func (d *Document) Len(f Field) int {
	n := 0
	for _, c := range d.counts[f] {
		n += c
	}
	return n
}

// posting is the builder's in-memory posting representation.
type posting struct {
	doc DocID
	tf  uint32
}

// Builder accumulates documents and freezes them into an Index.
// Builders are single-goroutine; the produced Index is concurrent-safe.
type Builder struct {
	postings [numFields]map[string][]posting
	docLens  [numFields][]uint32
	totalLen [numFields]uint64
	extIDs   []string
	ext2id   map[string]DocID
	built    bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	b := &Builder{ext2id: make(map[string]DocID)}
	for f := range b.postings {
		b.postings[f] = make(map[string][]posting)
	}
	return b
}

// NumDocs reports how many documents have been added so far.
func (b *Builder) NumDocs() int { return len(b.extIDs) }

// AddDocument ingests one document. External IDs must be unique and
// non-empty. Adding after Build is an error.
func (b *Builder) AddDocument(d *Document) error {
	if b.built {
		return fmt.Errorf("index: builder already built")
	}
	if d.ext == "" {
		return fmt.Errorf("index: document with empty external id")
	}
	if _, dup := b.ext2id[d.ext]; dup {
		return fmt.Errorf("index: duplicate external id %q", d.ext)
	}
	id := DocID(len(b.extIDs))
	b.ext2id[d.ext] = id
	b.extIDs = append(b.extIDs, d.ext)
	for f := Field(0); f < numFields; f++ {
		var fieldLen uint64
		// Deterministic ingest order: sort the doc's terms.
		terms := make([]string, 0, len(d.counts[f]))
		for t := range d.counts[f] {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		for _, t := range terms {
			tf := d.counts[f][t]
			b.postings[f][t] = append(b.postings[f][t], posting{doc: id, tf: uint32(tf)})
			fieldLen += uint64(tf)
		}
		b.docLens[f] = append(b.docLens[f], uint32(fieldLen))
		b.totalLen[f] += fieldLen
	}
	return nil
}

// ShardedBuilder accumulates documents into N segment builders,
// assigning documents round-robin in insertion order, and freezes them
// into a Sharded index. Like Builder it is single-goroutine; the
// produced Sharded is concurrent-safe.
type ShardedBuilder struct {
	builders []*Builder
	extSeen  map[string]struct{}
	next     int
}

// NewShardedBuilder returns an empty builder over n segments (n < 1 is
// clamped to 1).
func NewShardedBuilder(n int) *ShardedBuilder {
	if n < 1 {
		n = 1
	}
	sb := &ShardedBuilder{
		builders: make([]*Builder, n),
		extSeen:  make(map[string]struct{}),
	}
	for i := range sb.builders {
		sb.builders[i] = NewBuilder()
	}
	return sb
}

// NumDocs reports how many documents have been added so far.
func (sb *ShardedBuilder) NumDocs() int { return sb.next }

// AddDocument ingests one document into the next segment round-robin.
// External IDs must be unique across the whole sharded index, not just
// within a segment.
func (sb *ShardedBuilder) AddDocument(d *Document) error {
	if d.ext == "" {
		return fmt.Errorf("index: document with empty external id")
	}
	if _, dup := sb.extSeen[d.ext]; dup {
		return fmt.Errorf("index: duplicate external id %q", d.ext)
	}
	if err := sb.builders[sb.next%len(sb.builders)].AddDocument(d); err != nil {
		return err
	}
	sb.extSeen[d.ext] = struct{}{}
	sb.next++
	return nil
}

// Build freezes the builder into an immutable Sharded index. The
// builder must not be used afterwards. AddDocument already enforced
// round-robin assignment and cross-segment external-ID uniqueness, so
// Build assembles the Sharded directly instead of paying NewSharded's
// full re-validation scan.
func (sb *ShardedBuilder) Build() (*Sharded, error) {
	segs := make([]*Index, len(sb.builders))
	total := 0
	for i, b := range sb.builders {
		segs[i] = b.Build()
		total += segs[i].NumDocs()
	}
	return &Sharded{segs: segs, numDocs: total}, nil
}

// Build freezes the builder into an immutable Index. The builder must
// not be used afterwards.
func (b *Builder) Build() *Index {
	b.built = true
	ix := &Index{
		extIDs: b.extIDs,
		ext2id: b.ext2id,
	}
	var scratch [binary.MaxVarintLen64]byte
	var docRun, tfRun []byte // per-block scratch, reused across blocks
	for f := Field(0); f < numFields; f++ {
		fi := &ix.fields[f]
		fi.docLens = b.docLens[f]
		fi.totalLen = b.totalLen[f]
		fi.terms = make(map[string]int32, len(b.postings[f]))
		// Sort the vocabulary so blob layout and termList are
		// deterministic functions of the document set.
		terms := make([]string, 0, len(b.postings[f]))
		for t := range b.postings[f] {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		fi.termList = terms
		fi.infos = make([]termInfo, len(terms))
		// Encode postings in self-describing blocks of up to BlockSize:
		// header (n, maxTF, docBytes, tfBytes), then the delta/varint
		// doc run, then the varint tf run. Deltas continue across block
		// boundaries. Splitting the runs lets a scorer decode doc IDs
		// while byte-skipping term frequencies (block-max pruning).
		var blob []byte
		for i, t := range terms {
			plist := b.postings[f][t]
			info := termInfo{df: uint32(len(plist)), off: uint64(len(blob))}
			var prev DocID
			for start := 0; start < len(plist); start += BlockSize {
				end := start + BlockSize
				if end > len(plist) {
					end = len(plist)
				}
				docRun, tfRun = docRun[:0], tfRun[:0]
				var blockMax uint32
				for j := start; j < end; j++ {
					p := plist[j]
					delta := uint64(p.doc)
					if j > 0 {
						delta = uint64(p.doc - prev)
					}
					prev = p.doc
					n := binary.PutUvarint(scratch[:], delta)
					docRun = append(docRun, scratch[:n]...)
					n = binary.PutUvarint(scratch[:], uint64(p.tf))
					tfRun = append(tfRun, scratch[:n]...)
					if p.tf > blockMax {
						blockMax = p.tf
					}
					info.cf += uint64(p.tf)
				}
				if blockMax > info.maxTF {
					info.maxTF = blockMax
				}
				n := binary.PutUvarint(scratch[:], uint64(end-start))
				blob = append(blob, scratch[:n]...)
				n = binary.PutUvarint(scratch[:], uint64(blockMax))
				blob = append(blob, scratch[:n]...)
				n = binary.PutUvarint(scratch[:], uint64(len(docRun)))
				blob = append(blob, scratch[:n]...)
				n = binary.PutUvarint(scratch[:], uint64(len(tfRun)))
				blob = append(blob, scratch[:n]...)
				blob = append(blob, docRun...)
				blob = append(blob, tfRun...)
			}
			info.n = uint64(len(blob)) - info.off
			fi.infos[i] = info
			fi.terms[t] = int32(i)
		}
		fi.blob = blob
	}
	return ix
}
