// Package index implements the inverted-index storage engine under the
// retrieval system: a field-aware dictionary, varint-compressed posting
// lists, a document store mapping external IDs to dense internal doc
// IDs, and a versioned, checksummed on-disk format.
//
// An Index is immutable once built (Builder.Build) or loaded (Load);
// all read methods are safe for concurrent use.
package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// DocID is a dense internal document identifier assigned by the
// Builder in insertion order.
type DocID uint32

// Field identifies an indexed field. The engine indexes the ASR
// transcript text and the detector concept labels separately so they
// can be scored and fused independently.
type Field uint8

// The indexed fields.
const (
	FieldText Field = iota
	FieldConcept
	numFields
)

// String names the field.
func (f Field) String() string {
	switch f {
	case FieldText:
		return "text"
	case FieldConcept:
		return "concept"
	}
	return fmt.Sprintf("Field(%d)", uint8(f))
}

// termInfo locates one term's postings inside a field's blob.
type termInfo struct {
	df  uint32 // document frequency
	cf  uint64 // collection frequency (sum of tf)
	off uint64 // byte offset into blob
	n   uint64 // byte length in blob
}

// fieldIndex holds one field's dictionary and postings.
type fieldIndex struct {
	terms    map[string]int32 // term -> index into infos/termList
	infos    []termInfo
	termList []string // sorted unique terms
	blob     []byte   // concatenated varint postings
	docLens  []uint32 // per-doc token count in this field
	totalLen uint64   // sum of docLens
}

// Index is the immutable inverted index.
type Index struct {
	fields [numFields]fieldIndex
	extIDs []string
	ext2id map[string]DocID
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.extIDs) }

// ExternalID maps an internal DocID back to the caller's identifier.
// It panics if d is out of range (programmer error).
func (ix *Index) ExternalID(d DocID) string { return ix.extIDs[d] }

// DocIDOf maps an external identifier to its internal DocID.
func (ix *Index) DocIDOf(ext string) (DocID, bool) {
	d, ok := ix.ext2id[ext]
	return d, ok
}

// DocLen returns the token count of document d in field f.
func (ix *Index) DocLen(f Field, d DocID) int {
	fi := &ix.fields[f]
	if int(d) >= len(fi.docLens) {
		return 0
	}
	return int(fi.docLens[d])
}

// AvgDocLen returns the mean token count of field f across documents.
func (ix *Index) AvgDocLen(f Field) float64 {
	if len(ix.extIDs) == 0 {
		return 0
	}
	return float64(ix.fields[f].totalLen) / float64(len(ix.extIDs))
}

// TotalFieldLen returns the total token count in field f.
func (ix *Index) TotalFieldLen(f Field) int64 { return int64(ix.fields[f].totalLen) }

// NumTerms returns the vocabulary size of field f.
func (ix *Index) NumTerms(f Field) int { return len(ix.fields[f].termList) }

// Terms returns the sorted vocabulary of field f. The returned slice
// is a fresh copy of the entire dictionary, allocated on every call —
// O(vocabulary) work and memory — so it is a debugging/inspection
// surface, not a bulk-statistics path. Anything that needs to walk the
// vocabulary with its frequencies (the distributed stats dump, metric
// exports) must use EachTerm, which iterates the frozen dictionary in
// place without copying it.
func (ix *Index) Terms(f Field) []string {
	out := make([]string, len(ix.fields[f].termList))
	copy(out, ix.fields[f].termList)
	return out
}

// EachTerm calls fn for every term of field f in sorted order with its
// document and collection frequencies, stopping early when fn returns
// false. It is the bulk form of DocFreq/CollectionFreq used to export
// a segment's full statistics in one pass (the distributed merge tier
// aggregates these at startup).
func (ix *Index) EachTerm(f Field, fn func(term string, df int, cf int64) bool) {
	fi := &ix.fields[f]
	for _, t := range fi.termList {
		info := fi.infos[fi.terms[t]]
		if !fn(t, int(info.df), int64(info.cf)) {
			return
		}
	}
}

// DocFreq returns the number of documents containing term in field f.
func (ix *Index) DocFreq(f Field, term string) int {
	fi := &ix.fields[f]
	if i, ok := fi.terms[term]; ok {
		return int(fi.infos[i].df)
	}
	return 0
}

// CollectionFreq returns the total occurrences of term in field f.
func (ix *Index) CollectionFreq(f Field, term string) int64 {
	fi := &ix.fields[f]
	if i, ok := fi.terms[term]; ok {
		return int64(fi.infos[i].cf)
	}
	return 0
}

// Postings returns an iterator over the (doc, tf) postings of term in
// field f, in ascending DocID order. A term absent from the dictionary
// yields an exhausted iterator, never nil.
func (ix *Index) Postings(f Field, term string) *PostingsIterator {
	it := ix.PostingsFor(f, term)
	return &it
}

// PostingsFor is Postings returning the iterator by value, so callers
// on an allocation-free path (the scoring kernel iterates one per query
// term per segment) can keep it on the stack instead of paying a heap
// allocation per term.
func (ix *Index) PostingsFor(f Field, term string) PostingsIterator {
	fi := &ix.fields[f]
	i, ok := fi.terms[term]
	if !ok {
		return PostingsIterator{}
	}
	info := fi.infos[i]
	return PostingsIterator{
		buf:       fi.blob[info.off : info.off+info.n],
		remaining: int(info.df),
	}
}

// DocLens exposes field f's per-document token counts, indexed by
// DocID. The returned slice aliases the index's internal storage and
// MUST be treated as read-only; it stays valid for the index's
// lifetime (the index is immutable). The scoring kernel caches it once
// per segment scan so the per-posting length lookup is a direct slice
// load instead of a method call with its own bounds logic.
func (ix *Index) DocLens(f Field) []uint32 { return ix.fields[f].docLens }

// PostingsIterator decodes a delta/varint-compressed posting list.
// Usage:
//
//	it := ix.Postings(index.FieldText, "goal")
//	for it.Next() {
//	    use(it.Doc(), it.TF())
//	}
type PostingsIterator struct {
	buf       []byte
	remaining int
	cur       DocID
	tf        uint64
	started   bool
}

// Next advances to the next posting; it returns false when exhausted.
func (it *PostingsIterator) Next() bool {
	if it.remaining <= 0 || len(it.buf) == 0 {
		it.remaining = 0
		return false
	}
	delta, n := binary.Uvarint(it.buf)
	if n <= 0 {
		it.remaining = 0
		return false
	}
	it.buf = it.buf[n:]
	tf, n := binary.Uvarint(it.buf)
	if n <= 0 {
		it.remaining = 0
		return false
	}
	it.buf = it.buf[n:]
	if it.started {
		it.cur += DocID(delta)
	} else {
		it.cur = DocID(delta)
		it.started = true
	}
	it.tf = tf
	it.remaining--
	return true
}

// Doc returns the current posting's document. Valid after Next()==true.
func (it *PostingsIterator) Doc() DocID { return it.cur }

// TF returns the current posting's term frequency.
func (it *PostingsIterator) TF() int { return int(it.tf) }

// Remaining reports how many postings have not yet been consumed.
func (it *PostingsIterator) Remaining() int { return it.remaining }

// NextBlock decodes up to min(len(docs), len(tfs)) postings into the
// caller's buffers — docs receive absolute DocIDs (deltas already
// resolved), tfs the matching term frequencies — and returns how many
// postings were written; 0 means the iterator is exhausted. It is the
// bulk form of Next/Doc/TF: the scoring kernel drains a posting list
// through fixed scratch buffers so the accumulate loop is pure
// arithmetic over two arrays, with no per-posting iterator calls.
// NextBlock and Next may be interleaved; both advance the same cursor.
func (it *PostingsIterator) NextBlock(docs []DocID, tfs []uint32) int {
	max := len(docs)
	if len(tfs) < max {
		max = len(tfs)
	}
	n := 0
	for n < max {
		if it.remaining <= 0 || len(it.buf) == 0 {
			it.remaining = 0
			break
		}
		delta, w := binary.Uvarint(it.buf)
		if w <= 0 {
			it.remaining = 0
			break
		}
		it.buf = it.buf[w:]
		tf, w := binary.Uvarint(it.buf)
		if w <= 0 {
			it.remaining = 0
			break
		}
		it.buf = it.buf[w:]
		if it.started {
			it.cur += DocID(delta)
		} else {
			it.cur = DocID(delta)
			it.started = true
		}
		it.tf = tf
		it.remaining--
		docs[n] = it.cur
		tfs[n] = uint32(tf)
		n++
	}
	return n
}

// finish freezes a fieldIndex: sorts the dictionary and rewrites the
// term->index map to the sorted order.
func (fi *fieldIndex) finishTermList() {
	fi.termList = make([]string, 0, len(fi.terms))
	for t := range fi.terms {
		fi.termList = append(fi.termList, t)
	}
	sort.Strings(fi.termList)
}
