// Package index implements the inverted-index storage engine under the
// retrieval system: a field-aware dictionary, varint-compressed posting
// lists, a document store mapping external IDs to dense internal doc
// IDs, and a versioned, checksummed on-disk format.
//
// An Index is immutable once built (Builder.Build) or loaded (Load);
// all read methods are safe for concurrent use.
package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// DocID is a dense internal document identifier assigned by the
// Builder in insertion order.
type DocID uint32

// Field identifies an indexed field. The engine indexes the ASR
// transcript text and the detector concept labels separately so they
// can be scored and fused independently.
type Field uint8

// The indexed fields.
const (
	FieldText Field = iota
	FieldConcept
	numFields
)

// String names the field.
func (f Field) String() string {
	switch f {
	case FieldText:
		return "text"
	case FieldConcept:
		return "concept"
	}
	return fmt.Sprintf("Field(%d)", uint8(f))
}

// BlockSize is the posting count per self-describing postings block.
// Each block carries its own maximum term frequency, so a scorer can
// bound the best possible contribution of a whole block before
// deciding to decode its term frequencies (block-max early
// termination). 128 postings keep both decode runs well inside L1
// next to the touched accumulator lines.
const BlockSize = 128

// termInfo locates one term's postings inside a field's blob.
type termInfo struct {
	df    uint32 // document frequency
	cf    uint64 // collection frequency (sum of tf)
	maxTF uint32 // maximum tf across the term's postings
	off   uint64 // byte offset into blob
	n     uint64 // byte length in blob
}

// fieldIndex holds one field's dictionary and postings.
type fieldIndex struct {
	terms    map[string]int32 // term -> index into infos/termList
	infos    []termInfo
	termList []string // sorted unique terms
	blob     []byte   // concatenated block-encoded postings
	docLens  []uint32 // per-doc token count in this field
	totalLen uint64   // sum of docLens
}

// Index is the immutable inverted index.
type Index struct {
	fields [numFields]fieldIndex
	extIDs []string
	ext2id map[string]DocID
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return len(ix.extIDs) }

// ExternalID maps an internal DocID back to the caller's identifier.
// It panics if d is out of range (programmer error).
func (ix *Index) ExternalID(d DocID) string { return ix.extIDs[d] }

// DocIDOf maps an external identifier to its internal DocID.
func (ix *Index) DocIDOf(ext string) (DocID, bool) {
	d, ok := ix.ext2id[ext]
	return d, ok
}

// DocLen returns the token count of document d in field f.
func (ix *Index) DocLen(f Field, d DocID) int {
	fi := &ix.fields[f]
	if int(d) >= len(fi.docLens) {
		return 0
	}
	return int(fi.docLens[d])
}

// AvgDocLen returns the mean token count of field f across documents.
func (ix *Index) AvgDocLen(f Field) float64 {
	if len(ix.extIDs) == 0 {
		return 0
	}
	return float64(ix.fields[f].totalLen) / float64(len(ix.extIDs))
}

// TotalFieldLen returns the total token count in field f.
func (ix *Index) TotalFieldLen(f Field) int64 { return int64(ix.fields[f].totalLen) }

// NumTerms returns the vocabulary size of field f.
func (ix *Index) NumTerms(f Field) int { return len(ix.fields[f].termList) }

// Terms returns the sorted vocabulary of field f. The returned slice
// is a fresh copy of the entire dictionary, allocated on every call —
// O(vocabulary) work and memory — so it is a debugging/inspection
// surface, not a bulk-statistics path. Anything that needs to walk the
// vocabulary with its frequencies (the distributed stats dump, metric
// exports) must use EachTerm, which iterates the frozen dictionary in
// place without copying it.
func (ix *Index) Terms(f Field) []string {
	out := make([]string, len(ix.fields[f].termList))
	copy(out, ix.fields[f].termList)
	return out
}

// EachTerm calls fn for every term of field f in sorted order with its
// document and collection frequencies, stopping early when fn returns
// false. It is the bulk form of DocFreq/CollectionFreq used to export
// a segment's full statistics in one pass (the distributed merge tier
// aggregates these at startup).
func (ix *Index) EachTerm(f Field, fn func(term string, df int, cf int64) bool) {
	fi := &ix.fields[f]
	for _, t := range fi.termList {
		info := fi.infos[fi.terms[t]]
		if !fn(t, int(info.df), int64(info.cf)) {
			return
		}
	}
}

// DocFreq returns the number of documents containing term in field f.
func (ix *Index) DocFreq(f Field, term string) int {
	fi := &ix.fields[f]
	if i, ok := fi.terms[term]; ok {
		return int(fi.infos[i].df)
	}
	return 0
}

// CollectionFreq returns the total occurrences of term in field f.
func (ix *Index) CollectionFreq(f Field, term string) int64 {
	fi := &ix.fields[f]
	if i, ok := fi.terms[term]; ok {
		return int64(fi.infos[i].cf)
	}
	return 0
}

// MaxTF returns the largest term frequency of term in any single
// document of field f — the term-wide impact bound block-max early
// termination derives its per-term score ceiling from. Absent terms
// report 0.
func (ix *Index) MaxTF(f Field, term string) uint32 {
	fi := &ix.fields[f]
	if i, ok := fi.terms[term]; ok {
		return fi.infos[i].maxTF
	}
	return 0
}

// Postings returns an iterator over the (doc, tf) postings of term in
// field f, in ascending DocID order. A term absent from the dictionary
// yields an exhausted iterator, never nil.
func (ix *Index) Postings(f Field, term string) *PostingsIterator {
	it := ix.PostingsFor(f, term)
	return &it
}

// PostingsFor is Postings returning the iterator by value, so callers
// on an allocation-free path (the scoring kernel iterates one per query
// term per segment) can keep it on the stack instead of paying a heap
// allocation per term.
func (ix *Index) PostingsFor(f Field, term string) PostingsIterator {
	fi := &ix.fields[f]
	i, ok := fi.terms[term]
	if !ok {
		return PostingsIterator{}
	}
	info := fi.infos[i]
	return PostingsIterator{
		buf:       fi.blob[info.off : info.off+info.n],
		remaining: int(info.df),
		termMax:   info.maxTF,
	}
}

// DocLens exposes field f's per-document token counts, indexed by
// DocID. The returned slice aliases the index's internal storage and
// MUST be treated as read-only; it stays valid for the index's
// lifetime (the index is immutable). The scoring kernel caches it once
// per segment scan so the per-posting length lookup is a direct slice
// load instead of a method call with its own bounds logic.
func (ix *Index) DocLens(f Field) []uint32 { return ix.fields[f].docLens }

// PostingsIterator decodes a term's block-encoded posting list. Each
// block is self-describing:
//
//	uvarint n         postings in the block (1..BlockSize)
//	uvarint maxTF     largest tf in the block
//	uvarint docBytes  byte length of the doc-delta run
//	uvarint tfBytes   byte length of the tf run
//	docRun            n delta/varint doc IDs (deltas continue across blocks)
//	tfRun             n varint term frequencies
//
// Splitting doc IDs and term frequencies into separate runs is what
// makes block-max early termination cheap: candidate discovery always
// decodes the doc run (candidate counts stay exact), while a block
// whose maxTF-derived score bound cannot reach the current top-k floor
// skips its tf run — and all scoring arithmetic — entirely.
//
// Usage:
//
//	it := ix.Postings(index.FieldText, "goal")
//	for it.Next() {
//	    use(it.Doc(), it.TF())
//	}
type PostingsIterator struct {
	buf       []byte // undecoded blocks, positioned at the next header
	docRun    []byte // open block: undecoded doc-delta bytes
	tfRun     []byte // open block: undecoded tf bytes
	blockLeft int    // postings not yet consumed from the open block's doc run
	tfLeft    int    // values not yet consumed from the open block's tf run
	blockMax  uint32 // open block's max tf
	termMax   uint32 // term-wide max tf
	remaining int
	cur       DocID
	tf        uint64
	started   bool
}

// exhaust poisons the iterator on malformed input: every subsequent
// call reports exhaustion, never a partial or repeated posting.
func (it *PostingsIterator) exhaust() {
	it.remaining = 0
	it.blockLeft = 0
	it.tfLeft = 0
	it.docRun = nil
	it.tfRun = nil
	it.buf = nil
}

// openBlock parses the next block header and arms the doc/tf runs. Any
// pending (skipped) tf run of the previous block is dropped. It
// reports false when the list is exhausted or malformed.
func (it *PostingsIterator) openBlock() bool {
	if it.blockLeft > 0 {
		return true
	}
	if it.remaining <= 0 || len(it.buf) == 0 {
		it.exhaust()
		return false
	}
	buf := it.buf
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		it.exhaust()
		return false
	}
	buf = buf[w:]
	maxTF, w := binary.Uvarint(buf)
	if w <= 0 {
		it.exhaust()
		return false
	}
	buf = buf[w:]
	docBytes, w := binary.Uvarint(buf)
	if w <= 0 {
		it.exhaust()
		return false
	}
	buf = buf[w:]
	tfBytes, w := binary.Uvarint(buf)
	if w <= 0 {
		it.exhaust()
		return false
	}
	buf = buf[w:]
	if n == 0 || n > uint64(it.remaining) || n > BlockSize ||
		docBytes+tfBytes > uint64(len(buf)) {
		it.exhaust()
		return false
	}
	it.docRun = buf[:docBytes]
	it.tfRun = buf[docBytes : docBytes+tfBytes]
	it.buf = buf[docBytes+tfBytes:]
	it.blockLeft = int(n)
	it.tfLeft = int(n)
	it.blockMax = uint32(maxTF)
	return true
}

// nextDoc decodes one doc delta from the open block's doc run.
func (it *PostingsIterator) nextDoc() bool {
	delta, w := binary.Uvarint(it.docRun)
	if w <= 0 {
		it.exhaust()
		return false
	}
	it.docRun = it.docRun[w:]
	if it.started {
		it.cur += DocID(delta)
	} else {
		it.cur = DocID(delta)
		it.started = true
	}
	it.blockLeft--
	it.remaining--
	return true
}

// nextTF decodes one term frequency from the open block's tf run.
func (it *PostingsIterator) nextTF() bool {
	tf, w := binary.Uvarint(it.tfRun)
	if w <= 0 {
		it.exhaust()
		return false
	}
	it.tfRun = it.tfRun[w:]
	it.tf = tf
	it.tfLeft--
	return true
}

// Next advances to the next posting; it returns false when exhausted.
func (it *PostingsIterator) Next() bool {
	if it.blockLeft == 0 && !it.openBlock() {
		return false
	}
	return it.nextDoc() && it.nextTF()
}

// Doc returns the current posting's document. Valid after Next()==true.
func (it *PostingsIterator) Doc() DocID { return it.cur }

// TF returns the current posting's term frequency.
func (it *PostingsIterator) TF() int { return int(it.tf) }

// Remaining reports how many postings have not yet been consumed.
func (it *PostingsIterator) Remaining() int { return it.remaining }

// MaxTF returns the term-wide maximum term frequency (0 for an
// exhausted/absent-term iterator).
func (it *PostingsIterator) MaxTF() uint32 { return it.termMax }

// BlockBound opens the next block if none is pending and reports its
// undecoded posting count and its maximum term frequency. ok == false
// means the list is exhausted. The block is not consumed; follow with
// DecodeBlockDocs (+ DecodeBlockTFs) or Next.
func (it *PostingsIterator) BlockBound() (n int, maxTF uint32, ok bool) {
	if !it.openBlock() {
		return 0, 0, false
	}
	return it.blockLeft, it.blockMax, true
}

// DecodeBlockDocs decodes the open block's remaining doc IDs (deltas
// resolved to absolute DocIDs) into docs, which must have room for
// BlockBound's count, and returns how many were written. The block's
// tf run stays pending: call DecodeBlockTFs to score it, or simply
// advance to the next block to skip it — the skip is free, which is
// the point of the split-run layout.
//
// The decode loop keeps the run cursor in locals and short-circuits
// single-byte varints (the overwhelmingly common case for both block
// deltas and term frequencies) so the per-posting cost on the scoring
// hot path is a bounds check and an add, not a function call.
func (it *PostingsIterator) DecodeBlockDocs(docs []DocID) int {
	n := it.blockLeft
	if n > len(docs) {
		n = len(docs)
	}
	run := it.docRun
	cur := it.cur
	started := it.started
	for i := 0; i < n; i++ {
		var delta uint64
		if len(run) > 0 && run[0] < 0x80 {
			delta = uint64(run[0])
			run = run[1:]
		} else {
			var w int
			delta, w = binary.Uvarint(run)
			if w <= 0 {
				it.cur = cur
				it.started = started
				it.exhaust()
				return i
			}
			run = run[w:]
		}
		if started {
			cur += DocID(delta)
		} else {
			cur = DocID(delta)
			started = true
		}
		docs[i] = cur
	}
	it.docRun = run
	it.cur = cur
	it.started = started
	it.blockLeft -= n
	it.remaining -= n
	return n
}

// DecodeBlockTFs decodes the open block's pending tf run into tfs
// (aligned index-for-index with the docs DecodeBlockDocs produced) and
// returns how many were written.
func (it *PostingsIterator) DecodeBlockTFs(tfs []uint32) int {
	n := it.tfLeft
	if n > len(tfs) {
		n = len(tfs)
	}
	run := it.tfRun
	tf := it.tf
	for i := 0; i < n; i++ {
		if len(run) > 0 && run[0] < 0x80 {
			tf = uint64(run[0])
			run = run[1:]
		} else {
			var w int
			tf, w = binary.Uvarint(run)
			if w <= 0 {
				it.exhaust()
				return i
			}
			run = run[w:]
		}
		tfs[i] = uint32(tf)
	}
	it.tfRun = run
	it.tf = tf
	it.tfLeft -= n
	return n
}

// NextBlock decodes up to min(len(docs), len(tfs)) postings into the
// caller's buffers — docs receive absolute DocIDs (deltas already
// resolved), tfs the matching term frequencies — and returns how many
// postings were written; 0 means the iterator is exhausted. It is the
// bulk form of Next/Doc/TF and may span several storage blocks.
// NextBlock and Next may be interleaved; both advance the same cursor.
func (it *PostingsIterator) NextBlock(docs []DocID, tfs []uint32) int {
	max := len(docs)
	if len(tfs) < max {
		max = len(tfs)
	}
	n := 0
	for n < max {
		if it.blockLeft == 0 && !it.openBlock() {
			break
		}
		nd := it.DecodeBlockDocs(docs[n:max])
		nt := it.DecodeBlockTFs(tfs[n : n+nd])
		n += nt
		if nt < nd || nd == 0 {
			// A truncated tf run poisons the iterator (exhaust); only
			// postings with both halves decoded are reported, exactly as
			// the per-posting path counts them.
			break
		}
	}
	return n
}

// finish freezes a fieldIndex: sorts the dictionary and rewrites the
// term->index map to the sorted order.
func (fi *fieldIndex) finishTermList() {
	fi.termList = make([]string, 0, len(fi.terms))
	for t := range fi.terms {
		fi.termList = append(fi.termList, t)
	}
	sort.Strings(fi.termList)
}
