package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// On-disk format (version 2):
//
//	magic     8 bytes  "IVRIDX\x00\x02"
//	payload   N bytes  (varint-encoded sections, see below)
//	checksum  4 bytes  big-endian CRC-32 (IEEE) of payload
//
// Payload layout:
//
//	numDocs, then per doc: extID (len-prefixed)
//	per field: docLens[], totalLen, numTerms,
//	           per term: term, df, cf, maxTF, postingsLen,
//	           then the field's postings blob.
//
// Version 2 switched the postings blob to the self-describing block
// layout (per-block maxTF header, split doc/tf runs — see
// PostingsIterator) and added the per-term maxTF used for block-max
// early termination; version-1 files are rejected, not migrated, since
// indexes are rebuilt from the archive at startup anyway.
//
// The format is self-contained and position-independent; readers
// reject wrong magic, truncation, and checksum mismatches.
var magic = [8]byte{'I', 'V', 'R', 'I', 'D', 'X', 0, 2}

// Errors surfaced by the persistence layer.
var (
	ErrBadFormat = errors.New("index: not an index file or unsupported version")
	ErrChecksum  = errors.New("index: checksum mismatch (file corrupt)")
)

type payloadWriter struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
}

func (p *payloadWriter) uvarint(v uint64) {
	n := binary.PutUvarint(p.scratch[:], v)
	p.buf.Write(p.scratch[:n])
}

func (p *payloadWriter) str(s string) {
	p.uvarint(uint64(len(s)))
	p.buf.WriteString(s)
}

// WriteTo serialises the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	var p payloadWriter
	p.uvarint(uint64(len(ix.extIDs)))
	for _, ext := range ix.extIDs {
		p.str(ext)
	}
	for f := Field(0); f < numFields; f++ {
		fi := &ix.fields[f]
		p.uvarint(uint64(len(fi.docLens)))
		for _, l := range fi.docLens {
			p.uvarint(uint64(l))
		}
		p.uvarint(fi.totalLen)
		p.uvarint(uint64(len(fi.termList)))
		for _, t := range fi.termList {
			info := fi.infos[fi.terms[t]]
			p.str(t)
			p.uvarint(uint64(info.df))
			p.uvarint(info.cf)
			p.uvarint(uint64(info.maxTF))
			p.uvarint(info.n)
		}
		p.uvarint(uint64(len(fi.blob)))
		p.buf.Write(fi.blob)
	}
	payload := p.buf.Bytes()
	var total int64
	n, err := w.Write(magic[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("index: write header: %w", err)
	}
	n, err = w.Write(payload)
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("index: write payload: %w", err)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	n, err = w.Write(crc[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("index: write checksum: %w", err)
	}
	return total, nil
}

type payloadReader struct {
	buf []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrBadFormat, p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	l, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if p.off+int(l) > len(p.buf) {
		return "", fmt.Errorf("%w: truncated string at offset %d", ErrBadFormat, p.off)
	}
	s := string(p.buf[p.off : p.off+int(l)])
	p.off += int(l)
	return s, nil
}

func (p *payloadReader) bytes(n uint64) ([]byte, error) {
	if p.off+int(n) > len(p.buf) {
		return nil, fmt.Errorf("%w: truncated blob at offset %d", ErrBadFormat, p.off)
	}
	b := p.buf[p.off : p.off+int(n)]
	p.off += int(n)
	return b, nil
}

// Read deserialises an index from r, verifying magic and checksum.
func Read(r io.Reader) (*Index, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: read: %w", err)
	}
	if len(raw) < len(magic)+4 {
		return nil, ErrBadFormat
	}
	if !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, ErrBadFormat
	}
	payload := raw[len(magic) : len(raw)-4]
	want := binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrChecksum
	}
	p := &payloadReader{buf: payload}
	numDocs, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	ix := &Index{
		extIDs: make([]string, numDocs),
		ext2id: make(map[string]DocID, numDocs),
	}
	for i := uint64(0); i < numDocs; i++ {
		ext, err := p.str()
		if err != nil {
			return nil, err
		}
		if _, dup := ix.ext2id[ext]; dup {
			return nil, fmt.Errorf("%w: duplicate doc id %q", ErrBadFormat, ext)
		}
		ix.extIDs[i] = ext
		ix.ext2id[ext] = DocID(i)
	}
	for f := Field(0); f < numFields; f++ {
		fi := &ix.fields[f]
		nLens, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if nLens != numDocs {
			return nil, fmt.Errorf("%w: field %v has %d doc lengths for %d docs", ErrBadFormat, f, nLens, numDocs)
		}
		fi.docLens = make([]uint32, nLens)
		for i := range fi.docLens {
			v, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			fi.docLens[i] = uint32(v)
		}
		if fi.totalLen, err = p.uvarint(); err != nil {
			return nil, err
		}
		nTerms, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		fi.termList = make([]string, nTerms)
		fi.infos = make([]termInfo, nTerms)
		fi.terms = make(map[string]int32, nTerms)
		var off uint64
		for i := uint64(0); i < nTerms; i++ {
			term, err := p.str()
			if err != nil {
				return nil, err
			}
			df, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			cf, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			maxTF, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			blen, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			fi.termList[i] = term
			fi.infos[i] = termInfo{df: uint32(df), cf: cf, maxTF: uint32(maxTF), off: off, n: blen}
			fi.terms[term] = int32(i)
			off += blen
		}
		blobLen, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if blobLen != off {
			return nil, fmt.Errorf("%w: field %v blob length %d != postings extent %d", ErrBadFormat, f, blobLen, off)
		}
		if fi.blob, err = p.bytes(blobLen); err != nil {
			return nil, err
		}
	}
	if p.off != len(p.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormat, len(p.buf)-p.off)
	}
	return ix, nil
}

// Save writes the index atomically: to a temp file in the same
// directory, then rename.
func (ix *Index) Save(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ivridx-*")
	if err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := ix.WriteTo(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	return nil
}

// Load reads an index file written by Save/WriteTo.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
