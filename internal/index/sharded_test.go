package index

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomDocs generates a deterministic stream of documents from seed.
func randomDocs(seed int64, n int) []*Document {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"goal", "match", "vote", "budget", "storm", "crowd", "anthem", "strike"}
	docs := make([]*Document, n)
	for i := range docs {
		d := NewDocument(fmt.Sprintf("d%03d", i))
		for j := 0; j < 1+rng.Intn(6); j++ {
			d.AddTerms(FieldText, vocab[rng.Intn(len(vocab))])
		}
		if rng.Intn(2) == 0 {
			d.SetTermCount(FieldConcept, vocab[rng.Intn(len(vocab))], 1+rng.Intn(9))
		}
		docs[i] = d
	}
	return docs
}

// buildBoth builds a single index and an n-segment sharded index from
// the same document stream.
func buildBoth(t *testing.T, seed int64, docs, n int) (*Index, *Sharded) {
	t.Helper()
	single := NewBuilder()
	sharded := NewShardedBuilder(n)
	for _, d := range randomDocs(seed, docs) {
		if err := single.AddDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	// Documents are reusable after AddDocument; regenerate anyway so
	// neither builder can observe the other's ingestion.
	for _, d := range randomDocs(seed, docs) {
		if err := sharded.AddDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	sh, err := sharded.Build()
	if err != nil {
		t.Fatal(err)
	}
	return single.Build(), sh
}

func TestShardedGlobalStatsMatchSingle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		single, sh := buildBoth(t, 42, 23, n)
		if sh.NumSegments() != n {
			t.Fatalf("NumSegments = %d, want %d", sh.NumSegments(), n)
		}
		if sh.NumDocs() != single.NumDocs() {
			t.Fatalf("n=%d: NumDocs %d vs %d", n, sh.NumDocs(), single.NumDocs())
		}
		for f := Field(0); f < numFields; f++ {
			if sh.TotalFieldLen(f) != single.TotalFieldLen(f) {
				t.Errorf("n=%d f=%s: TotalFieldLen %d vs %d", n, f, sh.TotalFieldLen(f), single.TotalFieldLen(f))
			}
			if sh.AvgDocLen(f) != single.AvgDocLen(f) {
				t.Errorf("n=%d f=%s: AvgDocLen %v vs %v", n, f, sh.AvgDocLen(f), single.AvgDocLen(f))
			}
			for _, term := range single.Terms(f) {
				if sh.DocFreq(f, term) != single.DocFreq(f, term) {
					t.Errorf("n=%d: df(%s) %d vs %d", n, term, sh.DocFreq(f, term), single.DocFreq(f, term))
				}
				if sh.CollectionFreq(f, term) != single.CollectionFreq(f, term) {
					t.Errorf("n=%d: cf(%s) %d vs %d", n, term, sh.CollectionFreq(f, term), single.CollectionFreq(f, term))
				}
			}
		}
	}
}

func TestShardedGlobalDocIDsMatchInsertionOrder(t *testing.T) {
	single, sh := buildBoth(t, 7, 17, 3)
	for i := 0; i < single.NumDocs(); i++ {
		want := single.ExternalID(DocID(i))
		if got := sh.ExternalID(DocID(i)); got != want {
			t.Errorf("ExternalID(%d) = %q, want %q", i, got, want)
		}
		if sh.DocLen(FieldText, DocID(i)) != single.DocLen(FieldText, DocID(i)) {
			t.Errorf("DocLen(%d) mismatch", i)
		}
		d, ok := sh.DocIDOf(want)
		if !ok || d != DocID(i) {
			t.Errorf("DocIDOf(%q) = %d,%v, want %d", want, d, ok, i)
		}
	}
	if _, ok := sh.DocIDOf("nope"); ok {
		t.Error("DocIDOf found unknown id")
	}
}

func TestShardedSegmentsSelfContained(t *testing.T) {
	_, sh := buildBoth(t, 3, 20, 4)
	// Round-robin: segment sizes differ by at most one and sum to total.
	total := 0
	for i := 0; i < sh.NumSegments(); i++ {
		size := sh.Segment(i).NumDocs()
		if size != 5 {
			t.Errorf("segment %d holds %d docs, want 5", i, size)
		}
		total += size
	}
	if total != sh.NumDocs() {
		t.Errorf("segment sizes sum to %d, want %d", total, sh.NumDocs())
	}
	// Per-segment df never exceeds the global df.
	for i := 0; i < sh.NumSegments(); i++ {
		seg := sh.Segment(i)
		for _, term := range seg.Terms(FieldText) {
			if seg.DocFreq(FieldText, term) > sh.DocFreq(FieldText, term) {
				t.Errorf("segment %d df(%s) exceeds global", i, term)
			}
		}
	}
}

func TestShardedBuilderRejectsDuplicatesAcrossSegments(t *testing.T) {
	sb := NewShardedBuilder(2)
	if err := sb.AddDocument(NewDocument("dup").AddTerms(FieldText, "a")); err != nil {
		t.Fatal(err)
	}
	// The duplicate would land in the *other* segment, where a plain
	// per-segment builder could not catch it.
	err := sb.AddDocument(NewDocument("dup").AddTerms(FieldText, "b"))
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate across segments accepted (err=%v)", err)
	}
	if err := sb.AddDocument(NewDocument("").AddTerms(FieldText, "c")); err == nil {
		t.Fatal("empty external id accepted")
	}
}

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(nil); err == nil {
		t.Error("empty segment list accepted")
	}
	if _, err := NewSharded([]*Index{nil}); err == nil {
		t.Error("nil segment accepted")
	}
	// Violates the round-robin balance invariant: 2 docs + 0 docs.
	b := NewBuilder()
	for _, ext := range []string{"a", "b"} {
		if err := b.AddDocument(NewDocument(ext).AddTerms(FieldText, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewSharded([]*Index{b.Build(), NewBuilder().Build()}); err == nil {
		t.Error("unbalanced segments accepted")
	}
	// Duplicate external ids across hand-assembled segments.
	b1 := NewBuilder()
	if err := b1.AddDocument(NewDocument("a").AddTerms(FieldText, "x")); err != nil {
		t.Fatal(err)
	}
	b2 := NewBuilder()
	if err := b2.AddDocument(NewDocument("a").AddTerms(FieldText, "y")); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharded([]*Index{b1.Build(), b2.Build()}); err == nil {
		t.Error("duplicate external ids across segments accepted")
	}
}
