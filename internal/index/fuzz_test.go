package index

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestReadCorruptionFuzz flips random bits across serialised indexes
// and requires Read to fail cleanly — an error, never a panic, and
// never silent acceptance of payload damage.
func TestReadCorruptionFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	ix, _ := randomIndex(r, 40, 30)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for trial := 0; trial < 200; trial++ {
		corrupt := make([]byte, len(raw))
		copy(corrupt, raw)
		pos := r.Intn(len(corrupt))
		corrupt[pos] ^= byte(1 << r.Intn(8))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Read panicked on corruption at %d: %v", trial, pos, p)
				}
			}()
			_, err := Read(bytes.NewReader(corrupt))
			if pos >= len(magic) && pos < len(raw)-4 && err == nil {
				t.Fatalf("trial %d: payload corruption at %d accepted", trial, pos)
			}
		}()
	}
}

// TestReadRandomBytesFuzz feeds entirely random byte strings with a
// valid magic prefix: decoding must never panic.
func TestReadRandomBytesFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 12 + r.Intn(300)
		data := make([]byte, n)
		r.Read(data)
		copy(data, magic[:])
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Read panicked on random bytes: %v", trial, p)
				}
			}()
			// Random bytes virtually never carry a valid checksum, and
			// even if they did, structural validation must hold.
			_, _ = Read(bytes.NewReader(data))
		}()
	}
}

// TestPostingsIteratorTruncatedBuffer exercises the iterator's
// defensive paths directly against malformed block streams.
func TestPostingsIteratorTruncatedBuffer(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
		rem  int
	}{
		{"header ends mid-varint", []byte{0x80}, 3},
		{"header truncated after n", []byte{0x01}, 1},
		{"header truncated after maxTF", []byte{0x01, 0x02}, 1},
		{"header truncated after docBytes", []byte{0x01, 0x02, 0x01}, 1},
		// Header complete but docBytes+tfBytes overrun the buffer.
		{"runs overrun buffer", []byte{0x01, 0x02, 0x05, 0x05, 0xAA}, 1},
		// n claims more postings than the term has left.
		{"block count exceeds remaining", []byte{0x7F, 0x02, 0x01, 0x01, 0x01, 0x01}, 2},
		// Zero-posting block is structurally invalid.
		{"empty block", []byte{0x00, 0x00, 0x00, 0x00}, 1},
		// n claims a posting count larger than BlockSize.
		{"oversized block", append([]byte{0x81, 0x02, 0x00, 0x00, 0x00}, make([]byte, 600)...), 300},
		// Doc run truncated mid-varint (docBytes says 1 byte, but the
		// byte has its continuation bit set).
		{"doc run ends mid-varint", []byte{0x01, 0x02, 0x01, 0x01, 0x80, 0x01}, 1},
		// Valid doc run, tf run truncated mid-varint.
		{"tf run ends mid-varint", []byte{0x01, 0x02, 0x01, 0x01, 0x03, 0x80}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it := &PostingsIterator{buf: tc.buf, remaining: tc.rem}
			if it.Next() {
				t.Error("malformed block stream yielded a posting")
			}
			if it.Next() {
				t.Error("iterator did not stay exhausted")
			}
			if n, _, ok := it.BlockBound(); ok || n != 0 {
				t.Error("exhausted iterator still reports a block")
			}
		})
	}
}

// TestPostingsIteratorBlockAPI pins the split-run contract the scoring
// kernel relies on: BlockBound previews without consuming, doc runs
// decode independently of tf runs, and an undecoded tf run is silently
// dropped when the next block opens (that skip is the entire point of
// the layout).
func TestPostingsIteratorBlockAPI(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ix, _ := randomIndex(r, 400, 6) // enough docs to force multi-block terms
	for _, term := range ix.Terms(FieldText) {
		// Reference decode via Next.
		var wantDocs []DocID
		var wantTFs []uint32
		ref := ix.Postings(FieldText, term)
		var refMax uint32
		for ref.Next() {
			wantDocs = append(wantDocs, ref.Doc())
			wantTFs = append(wantTFs, uint32(ref.TF()))
			if uint32(ref.TF()) > refMax {
				refMax = uint32(ref.TF())
			}
		}
		if got := ix.MaxTF(FieldText, term); got != refMax {
			t.Fatalf("term %q: MaxTF = %d, want %d", term, got, refMax)
		}
		// Block decode, with and without tf runs.
		var docBuf [BlockSize]DocID
		var tfBuf [BlockSize]uint32
		it := ix.Postings(FieldText, term)
		if it.MaxTF() != refMax {
			t.Fatalf("term %q: iterator MaxTF = %d, want %d", term, it.MaxTF(), refMax)
		}
		pos := 0
		block := 0
		for {
			n, blockMax, ok := it.BlockBound()
			if !ok {
				break
			}
			if blockMax > refMax {
				t.Fatalf("term %q: block maxTF %d exceeds term max %d", term, blockMax, refMax)
			}
			if got := it.DecodeBlockDocs(docBuf[:]); got != n {
				t.Fatalf("term %q: DecodeBlockDocs = %d, want %d", term, got, n)
			}
			scoreBlock := block%2 == 0
			if scoreBlock {
				if got := it.DecodeBlockTFs(tfBuf[:]); got != n {
					t.Fatalf("term %q: DecodeBlockTFs = %d, want %d", term, got, n)
				}
			}
			for j := 0; j < n; j++ {
				if docBuf[j] != wantDocs[pos+j] {
					t.Fatalf("term %q: block doc[%d] = %d, want %d", term, pos+j, docBuf[j], wantDocs[pos+j])
				}
				if scoreBlock {
					if tfBuf[j] != wantTFs[pos+j] {
						t.Fatalf("term %q: block tf[%d] = %d, want %d", term, pos+j, tfBuf[j], wantTFs[pos+j])
					}
					if tfBuf[j] > blockMax {
						t.Fatalf("term %q: tf %d exceeds block max %d", term, tfBuf[j], blockMax)
					}
				}
			}
			pos += n
			block++
		}
		if pos != len(wantDocs) {
			t.Fatalf("term %q: block decode saw %d postings, want %d", term, pos, len(wantDocs))
		}
	}
}
