package index

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestReadCorruptionFuzz flips random bits across serialised indexes
// and requires Read to fail cleanly — an error, never a panic, and
// never silent acceptance of payload damage.
func TestReadCorruptionFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	ix, _ := randomIndex(r, 40, 30)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for trial := 0; trial < 200; trial++ {
		corrupt := make([]byte, len(raw))
		copy(corrupt, raw)
		pos := r.Intn(len(corrupt))
		corrupt[pos] ^= byte(1 << r.Intn(8))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Read panicked on corruption at %d: %v", trial, pos, p)
				}
			}()
			_, err := Read(bytes.NewReader(corrupt))
			if pos >= len(magic) && pos < len(raw)-4 && err == nil {
				t.Fatalf("trial %d: payload corruption at %d accepted", trial, pos)
			}
		}()
	}
}

// TestReadRandomBytesFuzz feeds entirely random byte strings with a
// valid magic prefix: decoding must never panic.
func TestReadRandomBytesFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 12 + r.Intn(300)
		data := make([]byte, n)
		r.Read(data)
		copy(data, magic[:])
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Read panicked on random bytes: %v", trial, p)
				}
			}()
			// Random bytes virtually never carry a valid checksum, and
			// even if they did, structural validation must hold.
			_, _ = Read(bytes.NewReader(data))
		}()
	}
}

// TestPostingsIteratorTruncatedBuffer exercises the iterator's
// defensive paths directly.
func TestPostingsIteratorTruncatedBuffer(t *testing.T) {
	// A buffer that ends mid-varint.
	it := &PostingsIterator{buf: []byte{0x80}, remaining: 3}
	if it.Next() {
		t.Error("truncated varint yielded a posting")
	}
	if it.Next() {
		t.Error("iterator did not stay exhausted")
	}
	// A doc delta present but tf missing.
	it = &PostingsIterator{buf: []byte{0x01}, remaining: 1}
	if it.Next() {
		t.Error("posting with missing tf yielded")
	}
}
