// Package webapi exposes the adaptive retrieval system over a
// versioned HTTP/JSON API: the concrete "desktop interface" backend
// the paper's framework proposal sketches. A front-end creates a
// session, searches (with pagination or NDJSON streaming), and feeds
// interaction events back; the server adapts subsequent rankings per
// session. Session ownership lives in core.SessionManager, so many
// front-ends can search concurrently without serializing on a global
// lock.
//
// Routes (all JSON; errors use the envelope
// {"error":{"code":"...","message":"..."}}):
//
//	POST   /api/v1/sessions                       create a session (optional profile)
//	GET    /api/v1/sessions                       paginated live-session listing
//	GET    /api/v1/sessions/{id}                  session state
//	DELETE /api/v1/sessions/{id}                  end a session
//	GET    /api/v1/search?session=&q=             adapted search; &offset=&limit= paginate,
//	                                              &cat=a,b facets by category
//	GET    /api/v1/search/stream?session=&q=      same search, streamed as NDJSON
//	                                              ({"type":"hit"}... then {"type":"summary"})
//	POST   /api/v1/events                         feed a batch of interaction events
//	GET    /api/v1/shots/{id}                     shot metadata
//	GET    /api/v1/healthz                        liveness + session stats
//	GET    /api/v1/metrics                        telemetry snapshot (per-route counters,
//	                                              latency quantiles, session-table stats);
//	                                              ?format=prometheus for text exposition
//	GET    /api/v1/debug/traces                   ring of recently finished query traces
//	GET    /api/v1/admin/topology                 live segment-replica topology (404 unless
//	                                              wired with WithTopologyAdmin)
//	POST   /api/v1/admin/topology                 validate + atomically apply a topology
//	                                              descriptor without restarting
//	GET    /metrics                               Prometheus scrape alias
//
// Legacy unversioned /api/... paths respond 308 Permanent Redirect to
// the /api/v1 equivalent. Every response carries an X-Request-Id
// header (honouring the client's, minting one otherwise).
package webapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sync/atomic"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/ilog"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/profile"
	"repro/internal/retrieval"
	"repro/internal/sessionstore"
	"repro/internal/trace"
)

// Error codes in the envelope; stable API vocabulary for clients.
const (
	codeInvalid  = "invalid_request"
	codeNotFound = "not_found"
	codeInternal = "internal"
	codeTooMany  = "too_many_sessions"
	codeDraining = "draining"
	// codeOverloaded marks a typed admission shed (429 + Retry-After):
	// the tier refused the work while refusing was still cheap.
	codeOverloaded = "overloaded"
	// codeDeadline marks a request whose X-IVR-Deadline budget was
	// spent — on arrival, queued at admission, or mid-retrieval (504).
	codeDeadline = "deadline_exceeded"
	// codeCanceled marks a search abandoned because the caller hung up
	// mid-retrieval. Nobody reads the body, but the status keeps client
	// hangups out of the 5xx ledger.
	codeCanceled = "client_closed"
)

// statusClientClosed is the nginx-convention 499 for a client that
// disconnected before the response was written.
const statusClientClosed = 499

// Pagination bounds.
const (
	defaultLimit = 20
	maxLimit     = 1000
)

// Server hosts the versioned API over one adaptive system. Safe for
// concurrent use; per-session serialization is the SessionManager's
// job. Close releases the manager's sweeper when the server owns it.
type Server struct {
	sys       *core.System
	mgr       *core.SessionManager
	log       *slog.Logger
	metrics   *metrics.Registry
	tracer    *trace.Collector
	ownsMgr   bool
	replicaID string
	topo      TopologyAdmin
	handler   http.Handler
	// gate bounds concurrent search work (admission control); clock
	// drives X-IVR-Deadline budget expiry (nil = real time).
	gate  *metrics.Admission
	clock overload.Clock
	// deadline counts searches answered deadline_exceeded; partial
	// counts degraded (partial) pages served.
	deadline atomic.Int64
	partial  atomic.Int64
}

// TopologyAdmin is the segment-replica topology surface a distributed
// merge tier (distrib.Cluster) exposes through the admin endpoint.
// ApplyTopology validates a descriptor document and atomically swaps
// the replica routing table — or rejects it wholesale, leaving the
// running topology untouched. DescribeTopology snapshots the live
// topology for the GET side.
type TopologyAdmin interface {
	ApplyTopology(ctx context.Context, descriptor []byte) error
	DescribeTopology() any
}

// Option configures a Server.
type Option func(*serverConfig)

type serverConfig struct {
	logger      *slog.Logger
	mgr         *core.SessionManager
	sessionTTL  time.Duration
	maxSessions int
	store       sessionstore.SessionStore
	replicaID   string
	slowQuery   time.Duration
	traceRing   int
	topo        TopologyAdmin
	admission   metrics.AdmissionConfig
	clock       overload.Clock
}

// WithLogger routes request and error logs (default: discard).
func WithLogger(l *slog.Logger) Option {
	return func(c *serverConfig) { c.logger = l }
}

// WithSessionTTL evicts sessions idle longer than ttl (default: no
// eviction). Ignored when WithSessionManager is given.
func WithSessionTTL(ttl time.Duration) Option {
	return func(c *serverConfig) { c.sessionTTL = ttl }
}

// WithMaxSessions caps live sessions (default: unbounded). Ignored
// when WithSessionManager is given.
func WithMaxSessions(n int) Option {
	return func(c *serverConfig) { c.maxSessions = n }
}

// WithSessionManager serves an externally owned manager; the caller
// keeps responsibility for closing it.
func WithSessionManager(m *core.SessionManager) Option {
	return func(c *serverConfig) { c.mgr = m }
}

// WithSessionStore makes sessions durable: every mutation is written
// through, misses restore lazily, and drain/shutdown flushes (see
// core.ManagerOptions.Store). The caller keeps ownership of the store
// and closes it after the server. Ignored when WithSessionManager is
// given (configure the manager's Store directly instead).
func WithSessionStore(st sessionstore.SessionStore) Option {
	return func(c *serverConfig) { c.store = st }
}

// WithReplicaID names this replica in a multi-replica deployment: the
// name is echoed on every response (X-IVR-Replica), in healthz and in
// metrics, so the front tier and dashboards can tell replicas apart.
func WithReplicaID(id string) Option {
	return func(c *serverConfig) { c.replicaID = id }
}

// WithSlowQuery logs any traced request at least this slow as a
// structured slow-query line (full span tree as JSON) through the
// process's stderr. 0 disables the log; tracing itself is always on.
func WithSlowQuery(d time.Duration) Option {
	return func(c *serverConfig) { c.slowQuery = d }
}

// WithTraceRing bounds the ring of recently finished traces served at
// /api/v1/debug/traces (default: the trace package default).
func WithTraceRing(n int) Option {
	return func(c *serverConfig) { c.traceRing = n }
}

// WithAdmission sizes the serve tier's search admission gate: at most
// InitialLimit searches in flight (AIMD-adapted toward Target when one
// is set), a bounded queue of MaxQueue absorbing bursts, and typed 429
// "overloaded" sheds past that. Without this option the gate is
// effectively transparent (limit 4096) but its ivr_admission_*
// families are still scrapeable.
func WithAdmission(cfg metrics.AdmissionConfig) Option {
	return func(c *serverConfig) { c.admission = cfg }
}

// WithOverloadClock substitutes the clock driving X-IVR-Deadline
// budget expiry (chaostest injects a manual clock; nil = real time).
func WithOverloadClock(clk overload.Clock) Option {
	return func(c *serverConfig) { c.clock = clk }
}

// WithTopologyAdmin wires the /api/v1/admin/topology endpoint to a
// distributed merge tier's topology: GET serves the live replica
// layout, POST validates and atomically applies a new descriptor
// (live reload — no restart). Without this option the endpoint
// answers 404, which is the correct shape for an in-process server
// that has no topology to administer.
func WithTopologyAdmin(t TopologyAdmin) Option {
	return func(c *serverConfig) { c.topo = t }
}

// NewServer wraps a system, building (and owning) a SessionManager
// unless one is supplied.
func NewServer(sys *core.System, opts ...Option) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("webapi: nil system")
	}
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &Server{sys: sys, mgr: cfg.mgr, log: cfg.logger, metrics: metrics.NewRegistry(), replicaID: cfg.replicaID, topo: cfg.topo, clock: cfg.clock}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	acfg := cfg.admission
	if acfg.InitialLimit <= 0 {
		// Transparent by default: the gate exists (telemetry families
		// always present) but does not bind until configured.
		acfg.InitialLimit = 4096
	}
	s.gate = metrics.NewAdmission(acfg)
	if s.mgr == nil {
		m, err := core.NewSessionManager(sys, core.ManagerOptions{
			TTL:         cfg.sessionTTL,
			MaxSessions: cfg.maxSessions,
			Store:       cfg.store,
		})
		if err != nil {
			return nil, err
		}
		s.mgr = m
		s.ownsMgr = true
	}
	s.tracer = trace.NewCollector(trace.CollectorConfig{
		Tier:          trace.TierServe,
		RingSize:      cfg.traceRing,
		SlowThreshold: cfg.slowQuery,
	})
	// Stage quantiles (expand/prepare/segment/merge/...) observed by the
	// collector surface in the retrieval section of /api/v1/metrics.
	sys.SetStageTelemetry(s.tracer.StageSummaries)
	s.handler = s.withMiddleware(s.routes())
	return s, nil
}

// Manager exposes the session manager (ops and tests).
func (s *Server) Manager() *core.SessionManager { return s.mgr }

// ReplicaID reports the name set with WithReplicaID ("" when unset).
func (s *Server) ReplicaID() string { return s.replicaID }

// BeginDrain puts the server into drain mode: resident sessions are
// flushed to the store and session-touching requests answer 503 with
// a Retry-After so the front tier re-routes them to a sibling replica.
// Returns how many sessions were flushed. There is no un-drain; the
// process is expected to shut down next.
func (s *Server) BeginDrain() (int, error) { return s.mgr.Drain() }

// Metrics exposes the server's telemetry registry (ops and tests).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// Tracer exposes the server's trace collector (ops and tests).
func (s *Server) Tracer() *trace.Collector { return s.tracer }

// Close stops the session manager when the server owns it.
func (s *Server) Close() error {
	if s.ownsMgr {
		return s.mgr.Close()
	}
	return nil
}

// Handler returns the middleware-wrapped route table.
func (s *Server) Handler() http.Handler { return s.handler }

// Telemetry labels for the two catch-all handlers. Real routes are
// labelled by their mux pattern ("GET /api/v1/search"); the catch-alls
// follow the same "<method> <pattern>" shape with "*" as the
// any-method marker so every label in /api/v1/metrics parses the same
// way.
const (
	routeLegacy    = "* /api/"
	routeUnmatched = "* /"
)

// routes builds the versioned route table plus the legacy redirect.
// Every handler is registered through instrument, which feeds the
// route's counter and latency histogram in the metrics registry.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("POST /api/v1/sessions", s.handleCreateSession)
	handle("GET /api/v1/sessions", s.handleListSessions)
	handle("GET /api/v1/sessions/{id}", s.handleGetSession)
	handle("DELETE /api/v1/sessions/{id}", s.handleDeleteSession)
	handle("GET /api/v1/search", s.handleSearch)
	handle("GET /api/v1/search/stream", s.handleSearchStream)
	handle("POST /api/v1/events", s.handleEvents)
	handle("GET /api/v1/shots/{id}", s.handleShot)
	handle("GET /api/v1/healthz", s.handleHealthz)
	handle("GET /api/v1/metrics", s.handleMetrics)
	handle("GET /api/v1/debug/traces", s.handleTraces)
	handle("GET /api/v1/admin/topology", s.handleGetTopology)
	handle("POST /api/v1/admin/topology", s.handlePostTopology)
	handle("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("/api/", s.instrument(routeLegacy, s.handleLegacy))
	mux.HandleFunc("/", s.instrument(routeUnmatched, func(w http.ResponseWriter, r *http.Request) {
		writeCode(w, http.StatusNotFound, codeNotFound, "no route %s %s", r.Method, r.URL.Path)
	}))
	return mux
}

// handleLegacy redirects unversioned /api/... paths to /api/v1/...
// with 308 (method and body preserved), and turns unknown /api/v1
// routes into envelope 404s instead of the mux's plain-text default.
func (s *Server) handleLegacy(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/api/v1/") || r.URL.Path == "/api/v1" {
		writeCode(w, http.StatusNotFound, codeNotFound, "no route %s %s", r.Method, r.URL.Path)
		return
	}
	target := "/api/v1/" + strings.TrimPrefix(r.URL.Path, "/api/")
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
}

// errorEnvelope is the uniform error body: {"error":{"code","message"}}.
type errorEnvelope struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported; the JSON
	// values here are all marshal-safe.
	_ = json.NewEncoder(w).Encode(v)
}

func writeCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: errorDetail{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeManagerErr maps SessionManager errors onto the envelope.
func writeManagerErr(w http.ResponseWriter, err error, sessionID string) {
	switch {
	case errors.Is(err, core.ErrSessionNotFound):
		writeCode(w, http.StatusNotFound, codeNotFound, "unknown session %q", sessionID)
	case errors.Is(err, core.ErrTooManySessions):
		writeCode(w, http.StatusServiceUnavailable, codeTooMany, "session capacity reached")
	case errors.Is(err, core.ErrDraining):
		// The replica is handing its sessions off; state is already in
		// the shared store, so the request succeeds anywhere else.
		w.Header().Set("Retry-After", "1")
		writeCode(w, http.StatusServiceUnavailable, codeDraining, "replica draining, retry elsewhere")
	default:
		writeCode(w, http.StatusInternalServerError, codeInternal, "%v", err)
	}
}

// createSessionRequest optionally declares a static profile.
type createSessionRequest struct {
	UserID string `json:"user_id"`
	// Interests maps category names ("sports") to [0,1].
	Interests map[string]float64 `json:"interests,omitempty"`
}

type createSessionResponse struct {
	SessionID string `json:"session_id"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeCode(w, http.StatusBadRequest, codeInvalid, "invalid JSON: %v", err)
		return
	}
	var user *profile.Profile
	if req.UserID != "" || len(req.Interests) > 0 {
		uid := req.UserID
		if uid == "" {
			uid = "anonymous"
		}
		user = profile.New(uid)
		for name, v := range req.Interests {
			cat, err := collection.ParseCategory(name)
			if err != nil {
				writeCode(w, http.StatusBadRequest, codeInvalid, "%v", err)
				return
			}
			if v < 0 || v > 1 {
				writeCode(w, http.StatusBadRequest, codeInvalid, "interest %q=%v outside [0,1]", name, v)
				return
			}
			user.SetInterest(cat, v)
		}
	}
	id, err := s.mgr.Create(user)
	if err != nil {
		writeManagerErr(w, err, "")
		return
	}
	writeJSON(w, http.StatusCreated, createSessionResponse{SessionID: id})
}

// decodeBody decodes one JSON value, tolerating an empty body (the
// create endpoint treats it as the zero request).
func decodeBody(body io.Reader, v any) error {
	err := json.NewDecoder(body).Decode(v)
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}

// sessionState reports a session's public state.
type sessionState struct {
	SessionID string             `json:"session_id"`
	Step      int                `json:"step"`
	Evidence  int                `json:"evidence"`
	SeenShots int                `json:"seen_shots"`
	LastQuery string             `json:"last_query,omitempty"`
	Interests map[string]float64 `json:"interests,omitempty"`
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var state sessionState
	err := s.mgr.With(id, func(sess *core.Session) error {
		state = sessionState{
			SessionID: id,
			Step:      sess.Step(),
			Evidence:  sess.EvidenceCount(),
			SeenShots: sess.SeenShots(),
			LastQuery: sess.LastQuery(),
			Interests: map[string]float64{},
		}
		for _, cat := range sess.User().Categories() {
			state.Interests[cat.String()] = sess.User().Interest(cat)
		}
		return nil
	})
	if err != nil {
		writeManagerErr(w, err, id)
		return
	}
	writeJSON(w, http.StatusOK, state)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Delete(id); err != nil {
		writeManagerErr(w, err, id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// sessionListEntry is one row of the sessions listing.
type sessionListEntry struct {
	SessionID   string  `json:"session_id"`
	IdleSeconds float64 `json:"idle_seconds"`
	Step        int     `json:"step"`
	Evidence    int     `json:"evidence"`
	SeenShots   int     `json:"seen_shots"`
	LastQuery   string  `json:"last_query,omitempty"`
}

// sessionListResponse is the paginated live-session directory.
type sessionListResponse struct {
	Total    int                `json:"total"`
	Offset   int                `json:"offset"`
	Limit    int                `json:"limit"`
	Sessions []sessionListEntry `json:"sessions"`
}

// handleListSessions serves the paginated live-session directory
// (?offset=&limit= as on /search). Only the requested window is
// inspected under session locks; inspection does not touch idle
// clocks, so polling the listing never keeps sessions alive. Sessions
// deleted between the snapshot and the window read are skipped.
func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	offset, limit, ok := parsePageParams(w, r)
	if !ok {
		return
	}
	infos := s.mgr.List()
	resp := sessionListResponse{
		Total:    len(infos),
		Offset:   offset,
		Limit:    limit,
		Sessions: []sessionListEntry{},
	}
	if offset < len(infos) {
		win := infos[offset:]
		if len(win) > limit {
			win = win[:limit]
		}
		now := time.Now()
		for _, info := range win {
			entry := sessionListEntry{
				SessionID:   info.ID,
				IdleSeconds: now.Sub(info.LastUsed).Seconds(),
			}
			err := s.mgr.Inspect(info.ID, func(sess *core.Session) error {
				entry.Step = sess.Step()
				entry.Evidence = sess.EvidenceCount()
				entry.SeenShots = sess.SeenShots()
				entry.LastQuery = sess.LastQuery()
				return nil
			})
			if errors.Is(err, core.ErrSessionNotFound) {
				continue // raced with Delete/expiry
			}
			if err != nil {
				writeManagerErr(w, err, info.ID)
				return
			}
			resp.Sessions = append(resp.Sessions, entry)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// sessionCounters is the session-table section of the metrics body.
type sessionCounters struct {
	Live    int   `json:"live"`
	Created int64 `json:"created"`
	Evicted int64 `json:"evicted"`
	// Durability counters (all zero without a session store).
	Restored      int64 `json:"restored,omitempty"`
	Persisted     int64 `json:"persisted,omitempty"`
	PersistErrors int64 `json:"persist_errors,omitempty"`
}

// metricsResponse is the /api/v1/metrics schema: the registry
// snapshot (uptime, in-flight gauge, per-route counters + latency
// quantiles), session-table counters, and the retrieval-engine
// section (result-cache counters + per-segment fan-out timing).
type metricsResponse struct {
	metrics.Snapshot
	Replica  string             `json:"replica,omitempty"`
	Draining bool               `json:"draining,omitempty"`
	Sessions sessionCounters    `json:"sessions"`
	Search   retrieval.Snapshot `json:"search"`
	// Admission is the serve tier's search admission gate; the overload
	// counters tally typed deadline_exceeded answers and degraded
	// (partial) pages served.
	Admission        metrics.AdmissionStats `json:"admission"`
	DeadlineExceeded int64                  `json:"deadline_exceeded,omitempty"`
	PartialResults   int64                  `json:"partial_results,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		s.handlePrometheus(w, r)
		return
	}
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, metricsResponse{
		Snapshot: s.metrics.TakeSnapshot(),
		Replica:  s.replicaID,
		Draining: s.mgr.Draining(),
		Sessions: sessionCounters{
			Live: st.Live, Created: st.Created, Evicted: st.Evicted,
			Restored: st.Restored, Persisted: st.Persisted, PersistErrors: st.PersistErrors,
		},
		Search:           s.sys.RetrievalSnapshot(),
		Admission:        s.gate.Stats(),
		DeadlineExceeded: s.deadline.Load(),
		PartialResults:   s.partial.Load(),
	})
}

// handlePrometheus serves the text exposition (format 0.0.4) scrape
// body: the shared HTTP families plus the serve tier's own sessions,
// result-cache and per-stage families.
func (s *Server) handlePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", metrics.PrometheusContentType)
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.WritePrometheus(w, trace.TierServe)
	pw := metrics.NewPromWriter(w)
	st := s.mgr.Stats()
	pw.Family("ivr_sessions_live", "gauge")
	pw.Sample("ivr_sessions_live", float64(st.Live))
	pw.Family("ivr_sessions_created_total", "counter")
	pw.Sample("ivr_sessions_created_total", float64(st.Created))
	pw.Family("ivr_sessions_evicted_total", "counter")
	pw.Sample("ivr_sessions_evicted_total", float64(st.Evicted))
	snap := s.sys.RetrievalSnapshot()
	pw.Family("ivr_cache_lookups_total", "counter")
	pw.Sample("ivr_cache_lookups_total", float64(snap.Cache.Hits), "result", "hit")
	pw.Sample("ivr_cache_lookups_total", float64(snap.Cache.Shared), "result", "shared")
	pw.Sample("ivr_cache_lookups_total", float64(snap.Cache.Misses), "result", "miss")
	if len(snap.Stages) > 0 {
		pw.Family("ivr_stage_duration_seconds", "summary")
		for _, sg := range snap.Stages {
			pw.Summary("ivr_stage_duration_seconds", sg.Latency, "stage", sg.Stage)
		}
	}
	// Replicated merge tier only: per-backend health and hedging. The
	// families are emitted whenever backends exist — even all-zero — so
	// a scrape (or the CI smoke grep) can assert their presence before
	// the first hedge fires.
	if len(snap.Backends) > 0 {
		pw.Family("ivr_backend_healthy", "gauge")
		for _, b := range snap.Backends {
			healthy := 0.0
			if b.Healthy {
				healthy = 1
			}
			pw.Sample("ivr_backend_healthy", healthy, "backend", b.Addr)
		}
		pw.Family("ivr_rpc_hedge_total", "counter")
		for _, b := range snap.Backends {
			pw.Sample("ivr_rpc_hedge_total", float64(b.Hedges), "backend", b.Addr)
		}
		pw.Family("ivr_rpc_failover_total", "counter")
		for _, b := range snap.Backends {
			pw.Sample("ivr_rpc_failover_total", float64(b.Failovers), "backend", b.Addr)
		}
		pw.Family("ivr_probe_failures_total", "counter")
		for _, b := range snap.Backends {
			pw.Sample("ivr_probe_failures_total", float64(b.ProbeFailures), "backend", b.Addr)
		}
		pw.Family("ivr_breaker_state", "gauge")
		for _, b := range snap.Backends {
			pw.Sample("ivr_breaker_state", breakerStateCode(b.Breaker), "backend", b.Addr)
		}
		pw.Family("ivr_breaker_trips_total", "counter")
		for _, b := range snap.Backends {
			pw.Sample("ivr_breaker_trips_total", float64(b.BreakerTrips), "backend", b.Addr)
		}
	}
	if rb := snap.RetryBudget; rb != nil {
		pw.Family("ivr_retry_budget_tokens", "gauge")
		pw.Sample("ivr_retry_budget_tokens", rb.Tokens)
		pw.Family("ivr_retry_budget_taken_total", "counter")
		pw.Sample("ivr_retry_budget_taken_total", float64(rb.Taken))
		pw.Family("ivr_retry_budget_denied_total", "counter")
		pw.Sample("ivr_retry_budget_denied_total", float64(rb.Denied))
	}
	metrics.WriteAdmissionPrometheus(pw, s.gate.Stats())
	pw.Family("ivr_deadline_exceeded_total", "counter")
	pw.Sample("ivr_deadline_exceeded_total", float64(s.deadline.Load()))
	pw.Family("ivr_partial_results_total", "counter")
	pw.Sample("ivr_partial_results_total", float64(s.partial.Load()))
}

// breakerStateCode maps a breaker state string to its stable gauge
// value: 0 closed (or breakers disabled), 1 open, 2 half-open.
func breakerStateCode(state string) float64 {
	switch state {
	case "open":
		return 1
	case "half_open":
		return 2
	default:
		return 0
	}
}

// maxTopologyBody bounds a POSTed topology descriptor; real
// descriptors are a few hundred bytes, so 1 MiB is pure headroom.
const maxTopologyBody = 1 << 20

func (s *Server) handleGetTopology(w http.ResponseWriter, r *http.Request) {
	if s.topo == nil {
		writeCode(w, http.StatusNotFound, codeNotFound, "no topology admin wired (in-process engine?)")
		return
	}
	writeJSON(w, http.StatusOK, s.topo.DescribeTopology())
}

func (s *Server) handlePostTopology(w http.ResponseWriter, r *http.Request) {
	if s.topo == nil {
		writeCode(w, http.StatusNotFound, codeNotFound, "no topology admin wired (in-process engine?)")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxTopologyBody+1))
	if err != nil {
		writeCode(w, http.StatusBadRequest, codeInvalid, "read descriptor: %v", err)
		return
	}
	if len(body) > maxTopologyBody {
		writeCode(w, http.StatusRequestEntityTooLarge, codeInvalid, "descriptor exceeds %d bytes", maxTopologyBody)
		return
	}
	if err := s.topo.ApplyTopology(r.Context(), body); err != nil {
		// Any rejection — syntax, invariant, unreachable replica, or
		// collection mismatch — left the running topology untouched;
		// surface the typed error text so the operator can fix the
		// descriptor and re-POST.
		writeCode(w, http.StatusBadRequest, codeInvalid, "topology rejected: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.topo.DescribeTopology())
}

// tracesResponse is the /api/v1/debug/traces body: the ring of
// recently finished traces, newest first.
type tracesResponse struct {
	Traces []*trace.Entry `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, tracesResponse{Traces: s.tracer.Traces()})
}

// searchHit is one result entry with display metadata.
type searchHit struct {
	Rank     int     `json:"rank"`
	ShotID   string  `json:"shot_id"`
	Score    float64 `json:"score"`
	StoryID  string  `json:"story_id,omitempty"`
	Title    string  `json:"title,omitempty"`
	Category string  `json:"category,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
}

// searchPage is one page of an adapted ranking.
type searchPage struct {
	SessionID string `json:"session_id"`
	Query     string `json:"query"`
	Step      int    `json:"step"`
	// Candidates counts shots matching the query before ranking cuts.
	Candidates int `json:"candidates"`
	// Total counts ranked hits available for paging (bounded by the
	// system's configured ranking depth).
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
	// Partial marks a degraded-mode page: one or more segments did not
	// answer and the ranking covers only the segments that did. Never
	// torn — every hit listed is a complete, correctly merged result
	// from an answering segment.
	Partial bool        `json:"partial,omitempty"`
	Hits    []searchHit `json:"hits"`
}

// searchParams carries the parsed, validated query of both search
// endpoints.
type searchParams struct {
	sessionID string
	query     string
	offset    int
	limit     int
	filter    core.ShotFilter
}

// parsePageParams validates the shared ?offset=&limit= pagination
// parameters; on error it has already written the 400 envelope.
func parsePageParams(w http.ResponseWriter, r *http.Request) (offset, limit int, ok bool) {
	limit = defaultLimit
	if os := r.URL.Query().Get("offset"); os != "" {
		v, err := strconv.Atoi(os)
		if err != nil || v < 0 {
			writeCode(w, http.StatusBadRequest, codeInvalid, "bad offset %q", os)
			return 0, 0, false
		}
		offset = v
	}
	if ls := r.URL.Query().Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v <= 0 || v > maxLimit {
			writeCode(w, http.StatusBadRequest, codeInvalid, "bad limit %q (1..%d)", ls, maxLimit)
			return 0, 0, false
		}
		limit = v
	}
	return offset, limit, true
}

// parseSearchParams validates the common search query string; on
// error it has already written the 400 envelope.
func (s *Server) parseSearchParams(w http.ResponseWriter, r *http.Request) (searchParams, bool) {
	p := searchParams{
		sessionID: r.URL.Query().Get("session"),
		query:     r.URL.Query().Get("q"),
	}
	if p.sessionID == "" || p.query == "" {
		writeCode(w, http.StatusBadRequest, codeInvalid, "need session and q parameters")
		return p, false
	}
	var ok bool
	if p.offset, p.limit, ok = parsePageParams(w, r); !ok {
		return p, false
	}
	// Optional category facet: ?cat=sports,politics
	if cs := r.URL.Query().Get("cat"); cs != "" {
		var cats []collection.Category
		for _, name := range strings.Split(cs, ",") {
			cat, err := collection.ParseCategory(strings.TrimSpace(name))
			if err != nil {
				writeCode(w, http.StatusBadRequest, codeInvalid, "%v", err)
				return p, false
			}
			cats = append(cats, cat)
		}
		p.filter = s.sys.CategoryFilter(cats...)
	}
	return p, true
}

// runSearch executes one adapted iteration and returns the requested
// [offset, offset+limit) page. Only the windowed hits are decorated
// with collection metadata, keeping per-request work proportional to
// the page, not the ranking depth.
func (s *Server) runSearch(ctx context.Context, p searchParams) (searchPage, error) {
	page := searchPage{
		SessionID: p.sessionID,
		Query:     p.query,
		Offset:    p.offset,
		Limit:     p.limit,
		Hits:      []searchHit{},
	}
	// The "session" span covers everything owned by the session layer:
	// lock wait, a store restore when the session is not resident, the
	// retrieval itself, and the write-through persist.
	sctx, sp := trace.StartSpan(ctx, "session")
	defer sp.End()
	err := s.mgr.WithContext(sctx, p.sessionID, func(sess *core.Session) error {
		res, err := sess.QueryFilteredContext(sctx, p.query, p.filter)
		if err != nil {
			return err
		}
		page.Step = sess.Step()
		page.Candidates = res.Candidates
		page.Total = len(res.Hits)
		if res.Partial {
			page.Partial = true
			s.partial.Add(1)
		}
		if p.offset >= len(res.Hits) {
			return nil
		}
		win := res.Hits[p.offset:]
		if len(win) > p.limit {
			win = win[:p.limit]
		}
		coll := s.sys.Collection()
		page.Hits = make([]searchHit, 0, len(win))
		for i, h := range win {
			hit := searchHit{Rank: p.offset + i, ShotID: h.ID, Score: h.Score}
			if shot := coll.Shot(collection.ShotID(h.ID)); shot != nil {
				hit.Seconds = shot.Duration.Seconds()
				if story := coll.Story(shot.StoryID); story != nil {
					hit.StoryID = string(story.ID)
					hit.Title = story.Title
					hit.Category = story.Category.String()
				}
			}
			page.Hits = append(page.Hits, hit)
		}
		return nil
	})
	return page, err
}

// overloadGate applies the serve tier's overload protocol to a search
// request: it parses the X-IVR-Deadline budget header (malformed → 400,
// already spent → 504), binds the remaining budget into the request
// context, and claims an admission ticket (limit reached with a full
// queue → typed 429 + Retry-After; budget spent while queued → 504).
// On success the caller owns the returned release func.
func (s *Server) overloadGate(w http.ResponseWriter, r *http.Request) (context.Context, func(), bool) {
	budget, err := overload.ParseDeadline(r.Header.Get(overload.DeadlineHeader))
	if err != nil {
		if errors.Is(err, overload.ErrDeadlineExpired) {
			s.deadline.Add(1)
			writeCode(w, http.StatusGatewayTimeout, codeDeadline, "deadline budget spent before arrival")
		} else {
			writeCode(w, http.StatusBadRequest, codeInvalid, "bad %s header: %v", overload.DeadlineHeader, err)
		}
		return nil, nil, false
	}
	ctx := r.Context()
	cancel := func() {}
	if budget > 0 {
		ctx, cancel = overload.WithBudget(ctx, budget, s.clock)
	}
	ticket, err := s.gate.Acquire(ctx)
	if err != nil {
		cancel()
		if errors.Is(err, metrics.ErrShed) {
			w.Header().Set("Retry-After", "1")
			writeCode(w, http.StatusTooManyRequests, codeOverloaded, "serve tier at concurrency limit")
			return nil, nil, false
		}
		s.deadline.Add(1)
		writeCode(w, http.StatusGatewayTimeout, codeDeadline, "deadline budget spent in admission queue")
		return nil, nil, false
	}
	release := func() { ticket.Release(); cancel() }
	return ctx, release, true
}

// writeSearchErr maps a search failure onto the envelope: a spent
// deadline budget — detected locally or reported by a lower tier — is
// the typed 504, everything else defers to the session-manager
// mapping.
func (s *Server) writeSearchErr(w http.ResponseWriter, err error, sessionID string) {
	if errors.Is(err, overload.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded) {
		s.deadline.Add(1)
		writeCode(w, http.StatusGatewayTimeout, codeDeadline, "deadline budget exhausted during retrieval")
		return
	}
	if errors.Is(err, context.Canceled) {
		writeCode(w, statusClientClosed, codeCanceled, "request cancelled by caller")
		return
	}
	writeManagerErr(w, err, sessionID)
}

// handleSearch serves one paginated adapted-search iteration. Every
// call advances the session's adaptation step, so page fetches after
// new evidence may legitimately reorder.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	p, ok := s.parseSearchParams(w, r)
	if !ok {
		return
	}
	ctx, release, ok := s.overloadGate(w, r)
	if !ok {
		return
	}
	defer release()
	page, err := s.runSearch(ctx, p)
	if err != nil {
		s.writeSearchErr(w, err, p.sessionID)
		return
	}
	_, enc := trace.StartSpan(r.Context(), "encode")
	writeJSON(w, http.StatusOK, page)
	enc.End()
}

// streamLine is one NDJSON line of the streaming search endpoint:
// a sequence of {"type":"hit"} lines closed by one {"type":"summary"}.
type streamLine struct {
	Type string `json:"type"`
	// Hit is set on "hit" lines.
	Hit *searchHit `json:"hit,omitempty"`
	// Summary fields, set on the final "summary" line.
	SessionID  string `json:"session_id,omitempty"`
	Query      string `json:"query,omitempty"`
	Step       int    `json:"step,omitempty"`
	Candidates int    `json:"candidates,omitempty"`
	Total      int    `json:"total,omitempty"`
	Partial    bool   `json:"partial,omitempty"`
}

// handleSearchStream serves the same ranking as handleSearch but as
// NDJSON, flushing per hit so a front-end can paint results as they
// arrive (offset/limit window the stream too).
func (s *Server) handleSearchStream(w http.ResponseWriter, r *http.Request) {
	p, ok := s.parseSearchParams(w, r)
	if !ok {
		return
	}
	ctx, release, ok := s.overloadGate(w, r)
	if !ok {
		return
	}
	defer release()
	page, err := s.runSearch(ctx, p)
	if err != nil {
		s.writeSearchErr(w, err, p.sessionID)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := range page.Hits {
		if err := enc.Encode(streamLine{Type: "hit", Hit: &page.Hits[i]}); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(streamLine{
		Type:       "summary",
		SessionID:  page.SessionID,
		Query:      page.Query,
		Step:       page.Step,
		Candidates: page.Candidates,
		Total:      page.Total,
		Partial:    page.Partial,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// eventsRequest feeds a batch of interaction events into a session.
type eventsRequest struct {
	SessionID string       `json:"session_id"`
	Events    []ilog.Event `json:"events"`
}

type eventsResponse struct {
	Observed int `json:"observed"`
}

// errBadEvent marks a client-side event validation failure inside the
// manager callback so the handler can map it to 400 instead of 500.
type errBadEvent struct{ err error }

func (e errBadEvent) Error() string { return e.err.Error() }

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var req eventsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeCode(w, http.StatusBadRequest, codeInvalid, "invalid JSON: %v", err)
		return
	}
	if req.SessionID == "" || len(req.Events) == 0 {
		writeCode(w, http.StatusBadRequest, codeInvalid, "need session_id and events")
		return
	}
	err := s.mgr.With(req.SessionID, func(sess *core.Session) error {
		for i := range req.Events {
			e := req.Events[i]
			e.SessionID = req.SessionID // server-authoritative
			if err := sess.Observe(e); err != nil {
				return errBadEvent{fmt.Errorf("event %d: %w", i, err)}
			}
		}
		return nil
	})
	if err != nil {
		var bad errBadEvent
		if errors.As(err, &bad) {
			writeCode(w, http.StatusBadRequest, codeInvalid, "%v", bad.err)
			return
		}
		writeManagerErr(w, err, req.SessionID)
		return
	}
	writeJSON(w, http.StatusOK, eventsResponse{Observed: len(req.Events)})
}

// shotResponse is the shot metadata a front-end renders.
type shotResponse struct {
	ShotID     string   `json:"shot_id"`
	VideoID    string   `json:"video_id"`
	StoryID    string   `json:"story_id"`
	Title      string   `json:"title"`
	Category   string   `json:"category"`
	Kind       string   `json:"kind"`
	Seconds    float64  `json:"seconds"`
	Transcript string   `json:"transcript"`
	Keyframes  int      `json:"keyframes"`
	Concepts   []string `json:"concepts,omitempty"`
}

func (s *Server) handleShot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	coll := s.sys.Collection()
	shot := coll.Shot(collection.ShotID(id))
	if shot == nil {
		writeCode(w, http.StatusNotFound, codeNotFound, "unknown shot %q", id)
		return
	}
	resp := shotResponse{
		ShotID:     string(shot.ID),
		VideoID:    string(shot.VideoID),
		StoryID:    string(shot.StoryID),
		Kind:       shot.Kind.String(),
		Seconds:    shot.Duration.Seconds(),
		Transcript: shot.Transcript,
		Keyframes:  len(shot.Keyframes),
	}
	if story := coll.Story(shot.StoryID); story != nil {
		resp.Title = story.Title
		resp.Category = story.Category.String()
	}
	for _, cs := range shot.Concepts {
		resp.Concepts = append(resp.Concepts, string(cs.Concept))
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthzResponse is the liveness body, with session-table stats for
// dashboards.
type healthzResponse struct {
	Status   string `json:"status"`
	Replica  string `json:"replica,omitempty"`
	Draining bool   `json:"draining,omitempty"`
	Sessions int    `json:"sessions"`
	Created  int64  `json:"sessions_created"`
	Evicted  int64  `json:"sessions_evicted"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.mgr.Stats()
	status := "ok"
	if s.mgr.Draining() {
		// Live, but asking the front tier to send sessions elsewhere.
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:   status,
		Replica:  s.replicaID,
		Draining: s.mgr.Draining(),
		Sessions: st.Live,
		Created:  st.Created,
		Evicted:  st.Evicted,
	})
}

// ErrServerClosed re-exports for callers wiring graceful shutdown.
var ErrServerClosed = errors.New("webapi: server closed")
