// Package webapi exposes the adaptive retrieval system over HTTP/JSON:
// the concrete "desktop interface" backend the paper's framework
// proposal sketches. A front-end creates a session, searches, and
// streams interaction events back; the server adapts subsequent
// rankings per session.
//
// Routes:
//
//	POST   /api/sessions              create a session (optional profile)
//	GET    /api/sessions/{id}         session state
//	DELETE /api/sessions/{id}         end a session
//	GET    /api/search?session=&q=    adapted search
//	POST   /api/events                feed interaction events
//	GET    /api/shots/{id}            shot metadata
//	GET    /api/healthz               liveness
package webapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/ilog"
	"repro/internal/profile"
)

// Server hosts sessions over one adaptive system. Safe for concurrent
// use: the session table and each session are guarded by one mutex
// (sessions are cheap; contention is not a concern at interface
// scale).
type Server struct {
	sys *core.System

	mu       sync.Mutex
	sessions map[string]*core.Session
	seq      int
}

// NewServer wraps a system.
func NewServer(sys *core.System) (*Server, error) {
	if sys == nil {
		return nil, fmt.Errorf("webapi: nil system")
	}
	return &Server{sys: sys, sessions: make(map[string]*core.Session)}, nil
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/sessions", s.handleCreateSession)
	mux.HandleFunc("GET /api/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDeleteSession)
	mux.HandleFunc("GET /api/search", s.handleSearch)
	mux.HandleFunc("POST /api/events", s.handleEvents)
	mux.HandleFunc("GET /api/shots/{id}", s.handleShot)
	mux.HandleFunc("GET /api/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// httpError is the uniform error body.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header cannot be reported; the JSON
	// values here are all marshal-safe.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, httpError{Error: fmt.Sprintf(format, args...)})
}

// createSessionRequest optionally declares a static profile.
type createSessionRequest struct {
	UserID string `json:"user_id"`
	// Interests maps category names ("sports") to [0,1].
	Interests map[string]float64 `json:"interests,omitempty"`
}

type createSessionResponse struct {
	SessionID string `json:"session_id"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	var user *profile.Profile
	if req.UserID != "" || len(req.Interests) > 0 {
		uid := req.UserID
		if uid == "" {
			uid = "anonymous"
		}
		user = profile.New(uid)
		for name, v := range req.Interests {
			cat, err := collection.ParseCategory(name)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			if v < 0 || v > 1 {
				writeErr(w, http.StatusBadRequest, "interest %q=%v outside [0,1]", name, v)
				return
			}
			user.SetInterest(cat, v)
		}
	}
	s.mu.Lock()
	s.seq++
	id := "s" + strconv.Itoa(s.seq)
	s.sessions[id] = s.sys.NewSession(id, user)
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, createSessionResponse{SessionID: id})
}

// sessionState reports a session's public state.
type sessionState struct {
	SessionID string             `json:"session_id"`
	Step      int                `json:"step"`
	Evidence  int                `json:"evidence"`
	SeenShots int                `json:"seen_shots"`
	LastQuery string             `json:"last_query,omitempty"`
	Interests map[string]float64 `json:"interests,omitempty"`
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	state := sessionState{
		SessionID: id,
		Step:      sess.Step(),
		Evidence:  sess.EvidenceCount(),
		SeenShots: sess.SeenShots(),
		LastQuery: sess.LastQuery(),
		Interests: map[string]float64{},
	}
	for _, cat := range sess.User().Categories() {
		state.Interests[cat.String()] = sess.User().Interest(cat)
	}
	writeJSON(w, http.StatusOK, state)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// searchHit is one result entry with display metadata.
type searchHit struct {
	ShotID   string  `json:"shot_id"`
	Score    float64 `json:"score"`
	StoryID  string  `json:"story_id,omitempty"`
	Title    string  `json:"title,omitempty"`
	Category string  `json:"category,omitempty"`
	Seconds  float64 `json:"seconds,omitempty"`
}

type searchResponse struct {
	SessionID  string      `json:"session_id"`
	Query      string      `json:"query"`
	Step       int         `json:"step"`
	Candidates int         `json:"candidates"`
	Hits       []searchHit `json:"hits"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	q := r.URL.Query().Get("q")
	if id == "" || q == "" {
		writeErr(w, http.StatusBadRequest, "need session and q parameters")
		return
	}
	k := 20
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 || v > 1000 {
			writeErr(w, http.StatusBadRequest, "bad k %q", ks)
			return
		}
		k = v
	}
	// Optional category facet: ?cat=sports,politics
	var filter core.ShotFilter
	if cs := r.URL.Query().Get("cat"); cs != "" {
		var cats []collection.Category
		for _, name := range strings.Split(cs, ",") {
			cat, err := collection.ParseCategory(strings.TrimSpace(name))
			if err != nil {
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			cats = append(cats, cat)
		}
		filter = s.sys.CategoryFilter(cats...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	res, err := sess.QueryFiltered(q, filter)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "search: %v", err)
		return
	}
	resp := searchResponse{
		SessionID:  id,
		Query:      q,
		Step:       sess.Step(),
		Candidates: res.Candidates,
	}
	coll := s.sys.Collection()
	for i, h := range res.Hits {
		if i >= k {
			break
		}
		hit := searchHit{ShotID: h.ID, Score: h.Score}
		if shot := coll.Shot(collection.ShotID(h.ID)); shot != nil {
			hit.Seconds = shot.Duration.Seconds()
			if story := coll.Story(shot.StoryID); story != nil {
				hit.StoryID = string(story.ID)
				hit.Title = story.Title
				hit.Category = story.Category.String()
			}
		}
		resp.Hits = append(resp.Hits, hit)
	}
	writeJSON(w, http.StatusOK, resp)
}

// eventsRequest feeds a batch of interaction events into a session.
type eventsRequest struct {
	SessionID string       `json:"session_id"`
	Events    []ilog.Event `json:"events"`
}

type eventsResponse struct {
	Observed int `json:"observed"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var req eventsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.SessionID == "" || len(req.Events) == 0 {
		writeErr(w, http.StatusBadRequest, "need session_id and events")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[req.SessionID]
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session %q", req.SessionID)
		return
	}
	for i := range req.Events {
		e := req.Events[i]
		e.SessionID = req.SessionID // server-authoritative
		if err := sess.Observe(e); err != nil {
			writeErr(w, http.StatusBadRequest, "event %d: %v", i, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Observed: len(req.Events)})
}

// shotResponse is the shot metadata a front-end renders.
type shotResponse struct {
	ShotID     string   `json:"shot_id"`
	VideoID    string   `json:"video_id"`
	StoryID    string   `json:"story_id"`
	Title      string   `json:"title"`
	Category   string   `json:"category"`
	Kind       string   `json:"kind"`
	Seconds    float64  `json:"seconds"`
	Transcript string   `json:"transcript"`
	Keyframes  int      `json:"keyframes"`
	Concepts   []string `json:"concepts,omitempty"`
}

func (s *Server) handleShot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	coll := s.sys.Collection()
	shot := coll.Shot(collection.ShotID(id))
	if shot == nil {
		writeErr(w, http.StatusNotFound, "unknown shot %q", id)
		return
	}
	resp := shotResponse{
		ShotID:     string(shot.ID),
		VideoID:    string(shot.VideoID),
		StoryID:    string(shot.StoryID),
		Kind:       shot.Kind.String(),
		Seconds:    shot.Duration.Seconds(),
		Transcript: shot.Transcript,
		Keyframes:  len(shot.Keyframes),
	}
	if story := coll.Story(shot.StoryID); story != nil {
		resp.Title = story.Title
		resp.Category = story.Category.String()
	}
	for _, cs := range shot.Concepts {
		resp.Concepts = append(resp.Concepts, string(cs.Concept))
	}
	writeJSON(w, http.StatusOK, resp)
}

// ErrServerClosed re-exports for callers wiring graceful shutdown.
var ErrServerClosed = errors.New("webapi: server closed")
