package webapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func newTestServer(t *testing.T) (*httptest.Server, *synth.Archive) {
	t.Helper()
	arch, err := synth.Generate(synth.TinyConfig(), 31)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemFromCollection(arch.Collection, core.Config{UseImplicit: true, UseProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, arch
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d, want %d (%v)", method, url, resp.StatusCode, wantStatus, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
}

func createSession(t *testing.T, ts *httptest.Server, body any) string {
	t.Helper()
	var resp struct {
		SessionID string `json:"session_id"`
	}
	doJSON(t, "POST", ts.URL+"/api/sessions", body, http.StatusCreated, &resp)
	if resp.SessionID == "" {
		t.Fatal("empty session id")
	}
	return resp.SessionID
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]string
	doJSON(t, "GET", ts.URL+"/api/healthz", nil, http.StatusOK, &out)
	if out["status"] != "ok" {
		t.Errorf("healthz = %v", out)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{
		"user_id":   "alice",
		"interests": map[string]float64{"sports": 0.9},
	})
	var state struct {
		SessionID string             `json:"session_id"`
		Step      int                `json:"step"`
		Interests map[string]float64 `json:"interests"`
	}
	doJSON(t, "GET", ts.URL+"/api/sessions/"+id, nil, http.StatusOK, &state)
	if state.SessionID != id || state.Step != 0 {
		t.Errorf("state = %+v", state)
	}
	if state.Interests["sports"] != 0.9 {
		t.Errorf("interests = %v", state.Interests)
	}
	doJSON(t, "DELETE", ts.URL+"/api/sessions/"+id, nil, http.StatusNoContent, nil)
	doJSON(t, "GET", ts.URL+"/api/sessions/"+id, nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", ts.URL+"/api/sessions/"+id, nil, http.StatusNotFound, nil)
}

func TestCreateSessionValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest("POST", ts.URL+"/api/sessions", strings.NewReader("{broken"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON: %d", resp.StatusCode)
	}
	doJSON(t, "POST", ts.URL+"/api/sessions",
		map[string]any{"user_id": "x", "interests": map[string]float64{"astrology": 0.5}},
		http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/api/sessions",
		map[string]any{"user_id": "x", "interests": map[string]float64{"sports": 1.5}},
		http.StatusBadRequest, nil)
}

func TestSearchAndAdapt(t *testing.T) {
	ts, arch := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	topic := arch.Truth.SearchTopics[0]

	var res struct {
		Step int `json:"step"`
		Hits []struct {
			ShotID   string  `json:"shot_id"`
			Score    float64 `json:"score"`
			Category string  `json:"category"`
		} `json:"hits"`
	}
	url := fmt.Sprintf("%s/api/search?session=%s&q=%s&k=5", ts.URL, id, strings.ReplaceAll(topic.Query, " ", "+"))
	doJSON(t, "GET", url, nil, http.StatusOK, &res)
	if len(res.Hits) == 0 || res.Step != 1 {
		t.Fatalf("search response: %+v", res)
	}
	if res.Hits[0].Category == "" {
		t.Error("hits missing story metadata")
	}
	// Feed clicks on the first hits.
	events := []map[string]any{
		{"action": "click_keyframe", "shot": res.Hits[0].ShotID, "rank": 0, "topic": -1, "t": "2008-01-01T00:00:00Z"},
		{"action": "play", "shot": res.Hits[0].ShotID, "rank": 0, "seconds": 12.0, "topic": -1, "t": "2008-01-01T00:00:01Z"},
	}
	var evResp struct {
		Observed int `json:"observed"`
	}
	doJSON(t, "POST", ts.URL+"/api/events",
		map[string]any{"session_id": id, "events": events}, http.StatusOK, &evResp)
	if evResp.Observed != 2 {
		t.Errorf("observed = %d", evResp.Observed)
	}
	// Second search: step advances, session state reflects evidence.
	doJSON(t, "GET", url, nil, http.StatusOK, &res)
	if res.Step != 2 {
		t.Errorf("step = %d, want 2", res.Step)
	}
	var state struct {
		Evidence int `json:"evidence"`
	}
	doJSON(t, "GET", ts.URL+"/api/sessions/"+id, nil, http.StatusOK, &state)
	if state.Evidence != 2 {
		t.Errorf("evidence = %d", state.Evidence)
	}
}

func TestSearchValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, "GET", ts.URL+"/api/search?q=x", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/api/search?session=ghost&q=x", nil, http.StatusNotFound, nil)
	id := createSession(t, ts, map[string]any{})
	doJSON(t, "GET", ts.URL+"/api/search?session="+id+"&q=x&k=0", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/api/search?session="+id+"&q=x&k=abc", nil, http.StatusBadRequest, nil)
}

func TestEventsValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	doJSON(t, "POST", ts.URL+"/api/events", map[string]any{"session_id": id}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/api/events",
		map[string]any{"session_id": "ghost", "events": []map[string]any{{"action": "browse"}}},
		http.StatusNotFound, nil)
	// Invalid event inside the batch.
	doJSON(t, "POST", ts.URL+"/api/events",
		map[string]any{"session_id": id, "events": []map[string]any{
			{"action": "rate", "shot": "x", "value": 7},
		}}, http.StatusBadRequest, nil)
}

func TestSearchCategoryFacet(t *testing.T) {
	ts, arch := newTestServer(t)
	id := createSession(t, ts, map[string]any{})
	topic := arch.Truth.SearchTopics[0]
	var res struct {
		Hits []struct {
			Category string `json:"category"`
		} `json:"hits"`
	}
	url := fmt.Sprintf("%s/api/search?session=%s&q=%s&cat=%s", ts.URL, id,
		strings.ReplaceAll(topic.Query, " ", "+"), topic.Category.String())
	doJSON(t, "GET", url, nil, http.StatusOK, &res)
	for _, h := range res.Hits {
		if h.Category != topic.Category.String() {
			t.Fatalf("facet leaked category %q", h.Category)
		}
	}
	// Unknown category rejected.
	bad := fmt.Sprintf("%s/api/search?session=%s&q=x&cat=astrology", ts.URL, id)
	doJSON(t, "GET", bad, nil, http.StatusBadRequest, nil)
}

func TestShotMetadata(t *testing.T) {
	ts, arch := newTestServer(t)
	shotID := string(arch.Collection.ShotIDs()[0])
	var shot struct {
		ShotID     string  `json:"shot_id"`
		Title      string  `json:"title"`
		Seconds    float64 `json:"seconds"`
		Transcript string  `json:"transcript"`
		Keyframes  int     `json:"keyframes"`
	}
	doJSON(t, "GET", ts.URL+"/api/shots/"+shotID, nil, http.StatusOK, &shot)
	if shot.ShotID != shotID || shot.Seconds <= 0 || shot.Transcript == "" || shot.Keyframes == 0 {
		t.Errorf("shot = %+v", shot)
	}
	doJSON(t, "GET", ts.URL+"/api/shots/nope", nil, http.StatusNotFound, nil)
}

func TestConcurrentSessions(t *testing.T) {
	ts, arch := newTestServer(t)
	topic := arch.Truth.SearchTopics[0]
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- func() error {
				var created struct {
					SessionID string `json:"session_id"`
				}
				data, _ := json.Marshal(map[string]any{})
				resp, err := http.Post(ts.URL+"/api/sessions", "application/json", bytes.NewReader(data))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
					return err
				}
				url := fmt.Sprintf("%s/api/search?session=%s&q=%s", ts.URL, created.SessionID,
					strings.ReplaceAll(topic.Query, " ", "+"))
				for j := 0; j < 5; j++ {
					r, err := http.Get(url)
					if err != nil {
						return err
					}
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						return fmt.Errorf("search status %d", r.StatusCode)
					}
				}
				return nil
			}()
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewServerNil(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil system accepted")
	}
}
